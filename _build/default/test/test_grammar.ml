(* Grammar analyses, LALR construction, the context-aware scanner/parser
   loop, and the modular determinism analysis — on small textbook grammars
   before the full CMINUS spec exercises them at scale. *)

open Grammar
module IntSet = Set.Make (Int)

(* --- a classic expression grammar ------------------------------------- *)

let owner = "host"

let expr_host : Cfg.t =
  {
    name = "host";
    terminals =
      [
        Cfg.terminal ~owner "NUM" "[0-9]+";
        Cfg.terminal ~owner "ID" "[a-zA-Z_][a-zA-Z0-9_]*";
        Cfg.keyword ~owner "PLUS" "+";
        Cfg.keyword ~owner "TIMES" "*";
        Cfg.keyword ~owner "LP" "(";
        Cfg.keyword ~owner "RP" ")";
        Cfg.keyword ~owner "COMMA" ",";
      ];
    layout = [ Cfg.terminal ~owner "WS" "[ \\t\\n\\r]+" ];
    productions =
      [
        Cfg.production ~owner ~name:"e_plus" "E" [ Cfg.N "E"; Cfg.T "PLUS"; Cfg.N "T" ];
        Cfg.production ~owner ~name:"e_t" "E" [ Cfg.N "T" ];
        Cfg.production ~owner ~name:"t_times" "T" [ Cfg.N "T"; Cfg.T "TIMES"; Cfg.N "F" ];
        Cfg.production ~owner ~name:"t_f" "T" [ Cfg.N "F" ];
        Cfg.production ~owner ~name:"f_paren" "F" [ Cfg.T "LP"; Cfg.N "E"; Cfg.T "RP" ];
        Cfg.production ~owner ~name:"f_num" "F" [ Cfg.T "NUM" ];
        Cfg.production ~owner ~name:"f_id" "F" [ Cfg.T "ID" ];
      ];
    start = Some "E";
  }

let test_first_follow () =
  let g = Analysis.intern expr_host in
  let first_names nt =
    let id = Hashtbl.find g.Analysis.nt_id nt in
    Analysis.IntSet.elements g.Analysis.first.(id)
    |> List.map (fun t -> g.Analysis.term_names.(t))
    |> List.sort String.compare
  in
  Alcotest.(check (list string)) "FIRST(E)" [ "ID"; "LP"; "NUM" ] (first_names "E");
  Alcotest.(check (list string)) "FIRST(F)" [ "ID"; "LP"; "NUM" ] (first_names "F");
  let follow = Analysis.follow g in
  let follow_names nt =
    let id = Hashtbl.find g.Analysis.nt_id nt in
    Analysis.IntSet.elements follow.(id)
    |> List.map (fun t -> g.Analysis.term_names.(t))
    |> List.sort String.compare
  in
  Alcotest.(check (list string))
    "FOLLOW(E)" [ "$EOF"; "PLUS"; "RP" ] (follow_names "E");
  Alcotest.(check (list string))
    "FOLLOW(F)" [ "$EOF"; "PLUS"; "RP"; "TIMES" ] (follow_names "F")

let test_expr_lalr () =
  let tbl = Lalr.build expr_host in
  Alcotest.(check bool) "expression grammar is LALR(1)" true (Lalr.is_lalr1 tbl);
  (* The textbook grammar (single `id` terminal) has 12 states; ours adds
     one more completed-item state because NUM and ID are distinct. *)
  Alcotest.(check int) "state count" 13 tbl.Lalr.n_states

let parse_expr src =
  let tbl = Lalr.build expr_host in
  let p = Parser.Driver.create tbl in
  Parser.Driver.parse p src

let rec sexp = function
  | Parser.Tree.Leaf tok -> tok.Lexer.Token.lexeme
  | Parser.Tree.Node (p, kids, _) ->
      "(" ^ p.Cfg.p_name ^ " " ^ String.concat " " (List.map sexp kids) ^ ")"

let test_parse_assoc_prec () =
  match parse_expr "1 + 2 * 3" with
  | Error e -> Alcotest.failf "parse failed: %a" Parser.Driver.pp_error e
  | Ok tree ->
      Alcotest.(check string)
        "precedence: * binds tighter"
        "(e_plus (e_t (t_f (f_num 1))) + (t_times (t_f (f_num 2)) * (f_num 3)))"
        (sexp tree)

let test_parse_paren () =
  match parse_expr "(1 + x) * 2" with
  | Error e -> Alcotest.failf "parse failed: %a" Parser.Driver.pp_error e
  | Ok tree ->
      Alcotest.(check string) "parenthesised"
        "(e_t (t_times (t_f (f_paren ( (e_plus (e_t (t_f (f_num 1))) + (t_f (f_id x))) ))) * (f_num 2)))"
        (sexp tree)

let test_parse_error_reporting () =
  match parse_expr "1 + * 2" with
  | Ok _ -> Alcotest.fail "expected syntax error"
  | Error e ->
      Alcotest.(check bool)
        "expected-set mentions operands" true
        (List.mem "NUM" e.Parser.Driver.expected
        && List.mem "LP" e.Parser.Driver.expected
        && not (List.mem "TIMES" e.Parser.Driver.expected))

let test_parse_eof_error () =
  match parse_expr "1 +" with
  | Ok _ -> Alcotest.fail "expected syntax error at EOF"
  | Error e ->
      Alcotest.(check bool) "mentions end of input" true
        (String.length e.Parser.Driver.message > 0)

(* --- dangling else: shift/reduce conflict must be detected -------------- *)

let dangling_else : Cfg.t =
  {
    name = "dangling";
    terminals =
      [
        Cfg.keyword ~owner "IF" "if";
        Cfg.keyword ~owner "THEN" "then";
        Cfg.keyword ~owner "ELSE" "else";
        Cfg.terminal ~owner "ID" "[a-z]+";
      ];
    layout = [ Cfg.terminal ~owner "WS" "[ \\t\\n]+" ];
    productions =
      [
        Cfg.production ~owner ~name:"s_ifthen" "S" [ Cfg.T "IF"; Cfg.N "S"; Cfg.T "THEN"; Cfg.N "S" ];
        Cfg.production ~owner ~name:"s_ifelse" "S"
          [ Cfg.T "IF"; Cfg.N "S"; Cfg.T "THEN"; Cfg.N "S"; Cfg.T "ELSE"; Cfg.N "S" ];
        Cfg.production ~owner ~name:"s_id" "S" [ Cfg.T "ID" ];
      ];
    start = Some "S";
  }

let test_dangling_else_conflict () =
  let tbl = Lalr.build dangling_else in
  Alcotest.(check bool) "has conflicts" false (Lalr.is_lalr1 tbl);
  let c = List.hd tbl.Lalr.conflicts in
  Alcotest.(check string) "on ELSE" "ELSE" tbl.Lalr.g.Analysis.term_names.(c.Lalr.c_term)

(* --- LALR-but-not-SLR grammar ------------------------------------------ *)
(* S ::= L = R | R ;  L ::= * R | id ;  R ::= L
   SLR has a shift/reduce conflict on '='; LALR(1) does not. *)

let lalr_not_slr : Cfg.t =
  {
    name = "lalr_not_slr";
    terminals =
      [
        Cfg.keyword ~owner "EQ" "=";
        Cfg.keyword ~owner "STAR" "*";
        Cfg.terminal ~owner "IDT" "[a-z]+";
      ];
    layout = [ Cfg.terminal ~owner "WS" "[ ]+" ];
    productions =
      [
        Cfg.production ~owner ~name:"s_assign" "S" [ Cfg.N "L"; Cfg.T "EQ"; Cfg.N "R" ];
        Cfg.production ~owner ~name:"s_r" "S" [ Cfg.N "R" ];
        Cfg.production ~owner ~name:"l_star" "L" [ Cfg.T "STAR"; Cfg.N "R" ];
        Cfg.production ~owner ~name:"l_id" "L" [ Cfg.T "IDT" ];
        Cfg.production ~owner ~name:"r_l" "R" [ Cfg.N "L" ];
      ];
    start = Some "S";
  }

let test_lalr_not_slr () =
  let tbl = Lalr.build lalr_not_slr in
  Alcotest.(check bool) "LALR(1) succeeds where SLR fails" true (Lalr.is_lalr1 tbl);
  let p = Parser.Driver.create tbl in
  (match Parser.Driver.parse p "* x = y" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "parse failed: %a" Parser.Driver.pp_error e);
  match Parser.Driver.parse p "x = = y" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error _ -> ()

(* --- epsilon productions ------------------------------------------------ *)

let eps_grammar : Cfg.t =
  {
    name = "eps";
    terminals =
      [ Cfg.keyword ~owner "A" "a"; Cfg.keyword ~owner "B" "b" ];
    layout = [ Cfg.terminal ~owner "WS" "[ ]+" ];
    productions =
      [
        Cfg.production ~owner ~name:"s" "S" [ Cfg.N "OptA"; Cfg.T "B" ];
        Cfg.production ~owner ~name:"opt_some" "OptA" [ Cfg.T "A" ];
        Cfg.production ~owner ~name:"opt_none" "OptA" [];
      ];
    start = Some "S";
  }

let test_epsilon () =
  let tbl = Lalr.build eps_grammar in
  Alcotest.(check bool) "eps grammar LALR" true (Lalr.is_lalr1 tbl);
  let p = Parser.Driver.create tbl in
  List.iter
    (fun (src, ok) ->
      match (Parser.Driver.parse p src, ok) with
      | Ok _, true | Error _, false -> ()
      | Ok _, false -> Alcotest.failf "%S should not parse" src
      | Error e, true ->
          Alcotest.failf "%S should parse: %a" src Parser.Driver.pp_error e)
    [ ("a b", true); ("b", true); ("a", false); ("a a b", false) ]

(* --- context-aware scanning -------------------------------------------- *)
(* An extension adds keyword "end", valid only inside brackets. Outside,
   "end" must scan as an identifier — impossible for a context-free scanner
   when both terminals are globally enabled. *)

let ctx_host : Cfg.t =
  {
    name = "host";
    terminals =
      [
        Cfg.terminal ~owner "ID" "[a-zA-Z_][a-zA-Z0-9_]*";
        Cfg.keyword ~owner "LB" "[";
        Cfg.keyword ~owner "RB" "]";
      ];
    layout = [ Cfg.terminal ~owner "WS" "[ ]+" ];
    productions =
      [
        Cfg.production ~owner ~name:"p_id" "P" [ Cfg.T "ID" ];
        Cfg.production ~owner ~name:"p_idx" "P" [ Cfg.T "ID"; Cfg.T "LB"; Cfg.N "IX"; Cfg.T "RB" ];
        Cfg.production ~owner ~name:"ix_id" "IX" [ Cfg.T "ID" ];
      ];
    start = Some "P";
  }

let ctx_ext : Cfg.t =
  {
    name = "endkw";
    terminals = [ Cfg.keyword ~owner:"endkw" "KW_end" "end" ];
    layout = [];
    productions =
      [ Cfg.production ~owner:"endkw" ~name:"ix_end" "IX" [ Cfg.T "KW_end" ] ];
    start = None;
  }

let test_context_aware_end () =
  let composed = Cfg.compose ctx_host [ ctx_ext ] in
  let tbl = Lalr.build composed in
  Alcotest.(check bool) "composed LALR" true (Lalr.is_lalr1 tbl);
  let p = Parser.Driver.create tbl in
  (* "end" as a plain identifier at top level. *)
  (match Parser.Driver.parse p "end" with
  | Ok t ->
      Alcotest.(check string) "end is an ID outside brackets" "p_id"
        (Parser.Tree.prod_name t)
  | Error e -> Alcotest.failf "parse failed: %a" Parser.Driver.pp_error e);
  (* "end" as the keyword inside brackets (keyword priority beats ID). *)
  match Parser.Driver.parse p "a[end]" with
  | Ok t -> (
      match t with
      | Parser.Tree.Node (_, [ _; _; ix; _ ], _) ->
          Alcotest.(check string) "keyword inside brackets" "ix_end"
            (Parser.Tree.prod_name ix)
      | _ -> Alcotest.fail "unexpected tree shape")
  | Error e -> Alcotest.failf "parse failed: %a" Parser.Driver.pp_error e

(* --- modular determinism analysis --------------------------------------- *)

(* A well-marked extension: adds `sum ( E )` to F via fresh keyword "sum". *)
let good_ext : Cfg.t =
  {
    name = "sumext";
    terminals = [ Cfg.keyword ~owner:"sumext" "KW_sum" "sum" ];
    layout = [];
    productions =
      [
        Cfg.production ~owner:"sumext" ~name:"f_sum" "F"
          [ Cfg.T "KW_sum"; Cfg.T "LP"; Cfg.N "E"; Cfg.T "RP" ];
      ];
    start = None;
  }

(* Tuple-style extension: initial symbol is the host's "(" and every other
   token is the host's too, violating the marking-terminal condition exactly
   as the paper's tuples extension does. *)
let tuple_like_ext : Cfg.t =
  {
    name = "tuples";
    terminals = [];
    layout = [];
    productions =
      [
        Cfg.production ~owner:"tuples" ~name:"f_tuple" "F"
          [ Cfg.T "LP"; Cfg.N "E"; Cfg.T "COMMA"; Cfg.N "E"; Cfg.T "RP" ];
      ];
    start = None;
  }

let test_determinism_good () =
  let r = Determinism.check expr_host good_ext in
  if not r.Determinism.passes then
    Alcotest.failf "expected pass: %a" Determinism.pp_report r

let test_determinism_tuples_fail () =
  let r = Determinism.check expr_host tuple_like_ext in
  Alcotest.(check bool) "tuples-style extension fails" false r.Determinism.passes;
  Alcotest.(check bool) "marking-terminal violation reported" true
    (List.exists
       (fun v -> v.Determinism.rule = "marking-terminal")
       r.Determinism.violations)

(* Second well-marked extension, to exercise the composition theorem. *)
let good_ext2 : Cfg.t =
  {
    name = "maxext";
    terminals = [ Cfg.keyword ~owner:"maxext" "KW_max" "max" ];
    layout = [];
    productions =
      [
        Cfg.production ~owner:"maxext" ~name:"f_max" "F"
          [ Cfg.T "KW_max"; Cfg.T "LP"; Cfg.N "E"; Cfg.T "COMMA"; Cfg.N "E"; Cfg.T "RP" ];
      ];
    start = None;
  }

let test_composition_theorem () =
  (* Every subset of individually-passing extensions composes LALR(1). *)
  let exts = [ good_ext; good_ext2 ] in
  List.iter
    (fun e ->
      let r = Determinism.check expr_host e in
      if not r.Determinism.passes then
        Alcotest.failf "%s should pass: %a" e.Cfg.name Determinism.pp_report r)
    exts;
  let subsets = [ []; [ good_ext ]; [ good_ext2 ]; [ good_ext; good_ext2 ] ] in
  List.iter
    (fun subset ->
      let tbl = Lalr.build (Cfg.compose expr_host subset) in
      Alcotest.(check bool)
        (Printf.sprintf "subset of size %d composes" (List.length subset))
        true (Lalr.is_lalr1 tbl))
    subsets;
  (* And the composed language actually parses programs using both. *)
  let tbl = Lalr.build (Cfg.compose expr_host exts) in
  let p = Parser.Driver.create tbl in
  match Parser.Driver.parse p "sum(1 + max(2, x)) * 3" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "composed parse failed: %a" Parser.Driver.pp_error e

let test_check_all () =
  let reports, composed =
    Determinism.check_all expr_host [ good_ext; good_ext2 ]
  in
  Alcotest.(check int) "two reports" 2 (List.length reports);
  Alcotest.(check bool) "all pass" true
    (List.for_all (fun r -> r.Determinism.passes) reports);
  match composed with
  | Ok tbl -> Alcotest.(check bool) "composition ok" true (Lalr.is_lalr1 tbl)
  | Error msg -> Alcotest.failf "composition failed: %s" msg

let test_compose_errors () =
  (* Duplicate production names are rejected at composition. *)
  let dup = { good_ext with Cfg.name = "dup" } in
  (match Cfg.compose expr_host [ good_ext; dup ] with
  | exception Cfg.Compose_error _ -> ()
  | _ -> Alcotest.fail "expected Compose_error for duplicate production");
  (* Same terminal name with different regexes is rejected. *)
  let clash =
    {
      (Cfg.empty "clash") with
      Cfg.terminals = [ Cfg.terminal ~owner:"clash" "NUM" "[0-9a-f]+" ];
      productions =
        [ Cfg.production ~owner:"clash" ~name:"f_hex" "F" [ Cfg.T "NUM" ] ];
    }
  in
  match Cfg.compose expr_host [ clash ] with
  | exception Cfg.Compose_error _ -> ()
  | _ -> Alcotest.fail "expected Compose_error for terminal regex clash"

let suite =
  [
    Alcotest.test_case "FIRST/FOLLOW" `Quick test_first_follow;
    Alcotest.test_case "expr grammar LALR(1)" `Quick test_expr_lalr;
    Alcotest.test_case "parse precedence" `Quick test_parse_assoc_prec;
    Alcotest.test_case "parse parens" `Quick test_parse_paren;
    Alcotest.test_case "syntax error expected-set" `Quick test_parse_error_reporting;
    Alcotest.test_case "syntax error at EOF" `Quick test_parse_eof_error;
    Alcotest.test_case "dangling else conflict" `Quick test_dangling_else_conflict;
    Alcotest.test_case "LALR-not-SLR" `Quick test_lalr_not_slr;
    Alcotest.test_case "epsilon productions" `Quick test_epsilon;
    Alcotest.test_case "context-aware 'end'" `Quick test_context_aware_end;
    Alcotest.test_case "isComposable accepts marked ext" `Quick test_determinism_good;
    Alcotest.test_case "isComposable rejects tuples-style ext" `Quick test_determinism_tuples_fail;
    Alcotest.test_case "composition theorem (empirical)" `Quick test_composition_theorem;
    Alcotest.test_case "check_all" `Quick test_check_all;
    Alcotest.test_case "compose errors" `Quick test_compose_errors;
  ]
