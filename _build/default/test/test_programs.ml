(* Additional whole-program coverage: interactions the focused suites do
   not reach — refcounting across early exits, nested with-loops as
   expressions, boolean-matrix logic, matrices through recursion, mask
   assignment forms, all extensions active in one program, and emission
   determinism. *)

module Nd = Runtime.Ndarray
module S = Runtime.Scalar

let all4 =
  Driver.compose
    [ Driver.matrix; Driver.transform; Driver.refptr; Driver.cilk ]

let fresh_dir () =
  let d = Filename.temp_file "mmprog" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let run_scalar ?pool src expect =
  Runtime.Rc.reset ();
  (match Driver.run ?pool all4 src [] with
  | Driver.Ok_ (Interp.Eval.VScal got) ->
      Alcotest.(check bool)
        (Printf.sprintf "result %s (got %s)" (S.to_string expect)
           (S.to_string got))
        true (S.equal got expect)
  | Driver.Ok_ v -> Alcotest.failf "non-scalar result %a" Interp.Eval.pp_value v
  | Driver.Failed ds -> Alcotest.failf "failed: %s" (Driver.diags_to_string ds));
  Alcotest.(check int) "no leaks" 0 (Runtime.Rc.live_count ())

(* --- refcounting across control flow ------------------------------------------ *)

let test_rc_early_return () =
  run_scalar
    {|
int f(int k) {
  Matrix int <1> v = init(Matrix int <1>, 100);
  if (k > 0) { return k; }
  Matrix int <1> w = init(Matrix int <1>, 50);
  return dimSize(w, 0);
}
int main() { return f(7) + f(-1); }
|}
    (S.I 57)

let test_rc_break_continue () =
  run_scalar
    {|
int main() {
  int acc = 0;
  for (int i = 0; i < 10; i++) {
    Matrix int <1> tmp = init(Matrix int <1>, 10);
    tmp[0] = i;
    if (i == 7) { break; }
    if (i % 2 == 0) { continue; }
    acc = acc + tmp[0];
  }
  return acc;
}
|}
    (S.I 9)

let test_rc_reassignment_chain () =
  run_scalar
    {|
int main() {
  Matrix int <1> a = init(Matrix int <1>, 4);
  Matrix int <1> b = a;
  a = init(Matrix int <1>, 8);
  b = a;
  a = b;
  return dimSize(a, 0) + dimSize(b, 0);
}
|}
    (S.I 16)

let test_rc_matrix_through_recursion () =
  run_scalar
    {|
int total(Matrix int <1> v, int i) {
  if (i >= dimSize(v, 0)) { return 0; }
  return v[i] + total(v, i + 1);
}
int main() {
  Matrix int <1> v = init(Matrix int <1>, 6);
  for (int i = 0; i < 6; i++) { v[i] = i * i; }
  return total(v, 0);
}
|}
    (S.I 55)

let test_rc_discarded_results () =
  run_scalar
    {|
Matrix int <1> make(int n) { return init(Matrix int <1>, n); }
int main() {
  make(100);
  make(200);
  Matrix int <1> kept = make(5);
  return dimSize(kept, 0);
}
|}
    (S.I 5)

(* --- matrix expression composition ---------------------------------------------- *)

let test_nested_with_loops () =
  (* a with-loop inside a with-loop body, both as expressions *)
  run_scalar
    {|
int main() {
  Matrix int <2> outer =
    with ([0,0] <= [i,j] < [3,3])
    genarray ([3,3],
      with ([0] <= [k] < [3]) fold (+, 0, i * 3 + j + k));
  return outer[2, 2];
}
|}
    (S.I 27)

let test_with_loop_over_expression_bounds () =
  run_scalar
    {|
int side() { return 4; }
int main() {
  int n = side();
  Matrix int <2> m =
    with ([0,0] <= [i,j] < [n,n]) genarray ([n,n], i + j);
  return with ([0,0] <= [i,j] < [n,n]) fold (max, -1, m[i,j]);
}
|}
    (S.I 6)

let test_bool_matrix_logic () =
  run_scalar
    {|
int main() {
  Matrix int <1> v = init(Matrix int <1>, 8);
  for (int i = 0; i < 8; i++) { v[i] = i; }
  Matrix bool <1> big = v >= 4;
  Matrix bool <1> even = v % 2 == 0;
  Matrix int <1> both = v[big && even];
  Matrix int <1> either = v[big || even];
  Matrix int <1> neither = v[!(big || even)];
  return dimSize(both, 0) * 100 + dimSize(either, 0) * 10 + dimSize(neither, 0);
}
|}
    (S.I 262)

let test_matrix_negation () =
  run_scalar
    {|
int main() {
  Matrix float <1> v = init(Matrix float <1>, 3);
  v[0] = 1.5;
  v[1] = -2.0;
  v[2] = 0.5;
  Matrix float <1> neg = -v;
  return (int)(neg[0] * 10.0) + (int)(neg[1] * 10.0);
}
|}
    (S.I 5)

let test_matmul_chain () =
  (* (A*B)*C with identity sanity *)
  run_scalar
    {|
int main() {
  Matrix int <2> a = init(Matrix int <2>, 2, 2);
  Matrix int <2> id = init(Matrix int <2>, 2, 2);
  a[0,0] = 1; a[0,1] = 2; a[1,0] = 3; a[1,1] = 4;
  id[0,0] = 1; id[1,1] = 1;
  Matrix int <2> b = a * id * a;
  return b[0,0] * 1000 + b[0,1] * 100 + b[1,0] * 10 + b[1,1];
}
|}
    (S.I ((7 * 1000) + (10 * 100) + (15 * 10) + 22))

let test_range_expression_arithmetic () =
  (* Fig 8's Line = (x1::x2) * m + b idiom with ints *)
  run_scalar
    {|
int main() {
  Matrix int <1> line = (2::5) * 10 + 1;
  return line[0] * 1000 + line[3];
}
|}
    (S.I ((21 * 1000) + 51))

let test_mask_fill_assignment () =
  run_scalar
    {|
int main() {
  Matrix int <1> v = init(Matrix int <1>, 6);
  for (int i = 0; i < 6; i++) { v[i] = i; }
  v[v % 2 == 0] = -1;
  int negs = with ([0] <= [i] < [6]) fold (+, 0, v[i]);
  return negs;
}
|}
    (S.I (1 + 3 + 5 - 3))

let test_whole_matrix_scalar_fill () =
  run_scalar
    {|
int main() {
  Matrix int <2> m = init(Matrix int <2>, 3, 3);
  m = 7;
  return with ([0,0] <= [i,j] < [3,3]) fold (+, 0, m[i,j]);
}
|}
    (S.I 63)

let test_gather_write_and_read () =
  run_scalar
    {|
int main() {
  Matrix int <1> v = init(Matrix int <1>, 10);
  for (int i = 0; i < 10; i++) { v[i] = i; }
  Matrix int <1> idx = 2::4;
  Matrix int <1> picked = v[idx];
  v[7::9] = picked;
  return v[7] * 100 + v[8] * 10 + v[9];
}
|}
    (S.I 234)

let test_end_arithmetic () =
  run_scalar
    {|
int main() {
  Matrix int <1> v = init(Matrix int <1>, 10);
  for (int i = 0; i < 10; i++) { v[i] = i * i; }
  return v[end] - v[end - 3];
}
|}
    (S.I (81 - 36))

(* --- cross-extension programs ------------------------------------------------------ *)

let test_all_extensions_in_one_program () =
  run_scalar
    {|
int rowTotal(Matrix int <2> m, int r) {
  int n = dimSize(m, 1);
  return with ([0] <= [j] < [n]) fold (+, 0, m[r, j]);
}
int main() {
  Matrix int <2> m = init(Matrix int <2>, 4, 8);
  m = with ([0,0] <= [i,j] < [4,8]) genarray([4,8], i * 8 + j)
    transform split j by 4, jin, jout. interchange i, jout;
  int a = 0;
  int b = 0;
  spawn a = rowTotal(m, 0);
  spawn b = rowTotal(m, 3);
  sync;
  (int, int) pair = (a, b);
  int x = 0;
  int y = 0;
  (x, y) = pair;
  return y - x;
}
|}
    (S.I (24 * 8))

let test_transform_on_genarray_then_fold () =
  Runtime.Pool.with_pool 2 (fun pool ->
      run_scalar ~pool
        {|
int main() {
  Matrix float <2> m = init(Matrix float <2>, 8, 8);
  m = with ([0,0] <= [i,j] < [8,8]) genarray([8,8], (float)(i * 8 + j))
    transform tile i, j by 4. parallelize iout;
  float total = with ([0,0] <= [i,j] < [8,8]) fold (+, 0f, m[i,j]);
  return (int) total;
}
|}
        (S.I (63 * 64 / 2)))

(* --- emission determinism and structure ---------------------------------------------- *)

let test_emission_deterministic () =
  let emit () =
    match Driver.compile_to_c all4 Eddy.Programs.fig8_scoring with
    | Driver.Ok_ t -> t
    | Driver.Failed ds ->
        Alcotest.failf "emit failed: %s" (Driver.diags_to_string ds)
  in
  Alcotest.(check string) "same source, same C" (emit ()) (emit ())

let test_all_paper_programs_emit () =
  List.iter
    (fun (name, src) ->
      match Driver.compile_to_c all4 src with
      | Driver.Ok_ text ->
          Alcotest.(check bool)
            (Printf.sprintf "%s emits nonempty C" name)
            true
            (String.length text > 200)
      | Driver.Failed ds ->
          Alcotest.failf "%s: %s" name (Driver.diags_to_string ds))
    [
      ("fig1", Eddy.Programs.fig1_temporal_mean);
      ("fig4", Eddy.Programs.fig4_conncomp);
      ("fig8", Eddy.Programs.fig8_scoring);
      ("fig9", Eddy.Programs.fig9_transformed);
      ("fig1_slice", Eddy.Programs.fig1_with_slice_copy);
    ]

(* QCheck: random small int with-loop kernels evaluated against an OCaml
   oracle built from the same parameters. *)
let prop_random_genarray_fold =
  QCheck.Test.make ~name:"random genarray+fold programs match oracle"
    ~count:40
    QCheck.(
      make
        Gen.(
          let* m = 1 -- 5 and* n = 1 -- 5 in
          let* a = 0 -- 9 and* b = 0 -- 9 and* c0 = 0 -- 9 in
          return (m, n, a, b, c0)))
    (fun (m, n, a, b, c0) ->
      let src =
        Printf.sprintf
          {|
int main() {
  Matrix int <2> g =
    with ([0,0] <= [i,j] < [%d,%d])
    genarray([%d,%d], %d * i + %d * j + %d);
  return with ([0,0] <= [i,j] < [%d,%d]) fold (+, 0, g[i,j]);
}
|}
          m n m n a b c0 m n
      in
      let expect = ref 0 in
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          expect := !expect + (a * i) + (b * j) + c0
        done
      done;
      match Driver.run all4 src [] with
      | Driver.Ok_ (Interp.Eval.VScal (S.I got)) -> got = !expect
      | _ -> false)

let suite =
  [
    Alcotest.test_case "rc: early return" `Quick test_rc_early_return;
    Alcotest.test_case "rc: break/continue" `Quick test_rc_break_continue;
    Alcotest.test_case "rc: reassignment chains" `Quick
      test_rc_reassignment_chain;
    Alcotest.test_case "rc: matrices through recursion" `Quick
      test_rc_matrix_through_recursion;
    Alcotest.test_case "rc: discarded results" `Quick test_rc_discarded_results;
    Alcotest.test_case "nested with-loops" `Quick test_nested_with_loops;
    Alcotest.test_case "with-loop over computed bounds" `Quick
      test_with_loop_over_expression_bounds;
    Alcotest.test_case "boolean-matrix logic + masks" `Quick
      test_bool_matrix_logic;
    Alcotest.test_case "matrix negation" `Quick test_matrix_negation;
    Alcotest.test_case "matmul chain" `Quick test_matmul_chain;
    Alcotest.test_case "range arithmetic (Fig 8 Line)" `Quick
      test_range_expression_arithmetic;
    Alcotest.test_case "mask fill assignment" `Quick test_mask_fill_assignment;
    Alcotest.test_case "whole-matrix scalar fill" `Quick
      test_whole_matrix_scalar_fill;
    Alcotest.test_case "gather read + range write" `Quick
      test_gather_write_and_read;
    Alcotest.test_case "end arithmetic" `Quick test_end_arithmetic;
    Alcotest.test_case "all four extensions in one program" `Quick
      test_all_extensions_in_one_program;
    Alcotest.test_case "transform + parallelize tile" `Quick
      test_transform_on_genarray_then_fold;
    Alcotest.test_case "emission is deterministic" `Quick
      test_emission_deterministic;
    Alcotest.test_case "all paper programs emit C" `Quick
      test_all_paper_programs_emit;
    QCheck_alcotest.to_alcotest prop_random_genarray_fold;
  ]

let _ = fresh_dir
