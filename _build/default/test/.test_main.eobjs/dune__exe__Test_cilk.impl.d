test/test_cilk.ml: Alcotest Driver Filename Grammar Interp List Printf Runtime String Sys
