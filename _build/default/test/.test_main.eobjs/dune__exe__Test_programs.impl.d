test/test_programs.ml: Alcotest Driver Eddy Filename Gen Interp List Printf QCheck QCheck_alcotest Runtime String Sys
