test/test_regexe.ml: Alcotest Bool Dfa List Nfa Printf QCheck QCheck_alcotest Regexe Syntax
