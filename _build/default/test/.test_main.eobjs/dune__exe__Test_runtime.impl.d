test/test_runtime.ml: Alcotest Array Atomic Filename Fun Gen List Ndarray Pool QCheck QCheck_alcotest Rc Runtime Scalar Shape Simd Sys
