test/test_eddy.ml: Alcotest Array Eddy Fun Gen Hashtbl List Option Printf QCheck QCheck_alcotest Runtime
