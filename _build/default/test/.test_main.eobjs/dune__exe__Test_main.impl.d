test/test_main.ml: Alcotest Test_ag Test_cilk Test_cir Test_eddy Test_grammar Test_pipeline Test_programs Test_regexe Test_runtime
