test/test_grammar.ml: Alcotest Analysis Array Cfg Determinism Grammar Hashtbl Int Lalr Lexer List Parser Printf Set String
