test/test_pipeline.ml: Ag Alcotest Array Cminus Driver Eddy Ext_tuples Filename Grammar Hashtbl Interp List Printf Runtime String Sys
