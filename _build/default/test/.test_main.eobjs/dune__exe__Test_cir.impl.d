test/test_cir.ml: Alcotest Array Cir Float Fun Interp List Printf QCheck QCheck_alcotest Runtime String
