test/test_ag.ml: Ag Alcotest Array Cfg Grammar Lalr Lazy Lexer List Parser Printexc
