(* Runtime substrate: shapes, ndarrays (every §III-A3 indexing mode),
   refcounting invariants, the enhanced fork-join pool, simulated SSE. *)

open Runtime

let sc = Alcotest.testable Scalar.pp Scalar.equal
let nd = Alcotest.testable Ndarray.pp Ndarray.equal

(* --- shape ---------------------------------------------------------------- *)

let test_shape_basics () =
  let s = [| 3; 4; 5 |] in
  Alcotest.(check int) "rank" 3 (Shape.rank s);
  Alcotest.(check int) "size" 60 (Shape.size s);
  Alcotest.(check (array int)) "strides" [| 20; 5; 1 |] (Shape.strides s);
  Alcotest.(check int) "offset" ((2 * 20) + (3 * 5) + 4)
    (Shape.offset s [| 2; 3; 4 |]);
  Alcotest.(check (array int)) "unoffset" [| 2; 3; 4 |] (Shape.unoffset s 59);
  Alcotest.check_raises "oob"
    (Shape.Shape_error "index 4 out of bounds for dimension 1 of [3x4x5]")
    (fun () -> ignore (Shape.offset s [| 0; 4; 0 |]))

let prop_offset_unoffset =
  QCheck.Test.make ~name:"unoffset inverts offset" ~count:200
    QCheck.(
      make
        Gen.(
          let* dims = list_size (1 -- 4) (1 -- 6) in
          let sh = Array.of_list dims in
          let* off = 0 -- (max 0 (Shape.size sh - 1)) in
          return (sh, off)))
    (fun (sh, off) -> Shape.offset sh (Shape.unoffset sh off) = off)

let test_shape_iter_order () =
  let s = [| 2; 3 |] in
  let seen = ref [] in
  Shape.iter s (fun idx -> seen := Array.copy idx :: !seen);
  Alcotest.(check int) "count" 6 (List.length !seen);
  Alcotest.(check (array int)) "first row-major" [| 0; 0 |]
    (List.nth (List.rev !seen) 0);
  Alcotest.(check (array int)) "second row-major" [| 0; 1 |]
    (List.nth (List.rev !seen) 1);
  Alcotest.(check (array int)) "last" [| 1; 2 |] (List.hd !seen)

(* --- ndarray: construction and elementwise ops ---------------------------- *)

let m23 = Ndarray.of_float_array [| 2; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6. |]

let test_elementwise () =
  let b = Ndarray.of_float_array [| 2; 3 |] [| 10.; 20.; 30.; 40.; 50.; 60. |] in
  let sum = Ndarray.arith Scalar.Add m23 b in
  Alcotest.check nd "a+b"
    (Ndarray.of_float_array [| 2; 3 |] [| 11.; 22.; 33.; 44.; 55.; 66. |])
    sum;
  let prod = Ndarray.arith Scalar.Mul m23 m23 in
  Alcotest.check nd "elementwise .*"
    (Ndarray.of_float_array [| 2; 3 |] [| 1.; 4.; 9.; 16.; 25.; 36. |])
    prod;
  (* matrix-scalar, both orders *)
  let plus2 = Ndarray.arith_scalar Scalar.Add m23 (Scalar.F 2.) ~scalar_left:false in
  Alcotest.check sc "m+2 elem" (Scalar.F 8.) (Ndarray.get plus2 [| 1; 2 |]);
  let two_minus = Ndarray.arith_scalar Scalar.Sub m23 (Scalar.F 2.) ~scalar_left:true in
  Alcotest.check sc "2-m elem" (Scalar.F (-4.)) (Ndarray.get two_minus [| 1; 2 |])

let test_elementwise_errors () =
  let wrong_shape = Ndarray.of_float_array [| 3; 2 |] (Array.make 6 0.) in
  Alcotest.check_raises "shape mismatch"
    (Shape.Shape_error "shape mismatch: [2x3] vs [3x2]") (fun () ->
      ignore (Ndarray.arith Scalar.Add m23 wrong_shape));
  let ints = Ndarray.of_int_array [| 2; 3 |] (Array.make 6 0) in
  (match Ndarray.arith Scalar.Add m23 ints with
  | exception Ndarray.Type_error _ -> ()
  | _ -> Alcotest.fail "expected Type_error for float+int matrices");
  let bools = Ndarray.of_bool_array [| 2 |] [| true; false |] in
  match Ndarray.arith Scalar.Add bools bools with
  | exception Ndarray.Type_error _ -> ()
  | _ -> Alcotest.fail "expected Type_error for bool arithmetic"

let test_cmp_and_logic () =
  let mask = Ndarray.cmp_scalar Scalar.Gt m23 (Scalar.F 3.5) ~scalar_left:false in
  Alcotest.check nd "m > 3.5"
    (Ndarray.of_bool_array [| 2; 3 |] [| false; false; false; true; true; true |])
    mask;
  Alcotest.(check int) "count_true" 3 (Ndarray.count_true mask);
  let nmask = Ndarray.not_ mask in
  Alcotest.(check int) "negated" 3 (Ndarray.count_true nmask);
  let both = Ndarray.logic Scalar.And mask nmask in
  Alcotest.(check int) "x && !x" 0 (Ndarray.count_true both)

let test_matmul () =
  let a = Ndarray.of_float_array [| 2; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let b = Ndarray.of_float_array [| 3; 2 |] [| 7.; 8.; 9.; 10.; 11.; 12. |] in
  let c = Ndarray.matmul a b in
  Alcotest.check nd "2x3 * 3x2"
    (Ndarray.of_float_array [| 2; 2 |] [| 58.; 64.; 139.; 154. |])
    c;
  Alcotest.check_raises "inner mismatch"
    (Shape.Shape_error "matrix multiplication inner dimensions: [2x3] vs [2x3]")
    (fun () -> ignore (Ndarray.matmul a a))

let prop_matmul_oracle =
  QCheck.Test.make ~name:"matmul equals naive triple loop" ~count:50
    QCheck.(
      make
        Gen.(
          let* m = 1 -- 5 and* k = 1 -- 5 and* n = 1 -- 5 in
          let* xs = array_size (return (m * k)) (float_bound_inclusive 10.) in
          let* ys = array_size (return (k * n)) (float_bound_inclusive 10.) in
          return (m, k, n, xs, ys)))
    (fun (m, k, n, xs, ys) ->
      let a = Ndarray.of_float_array [| m; k |] xs in
      let b = Ndarray.of_float_array [| k; n |] ys in
      let c = Ndarray.matmul a b in
      let ok = ref true in
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          let expect = ref 0. in
          for l = 0 to k - 1 do
            expect := !expect +. (xs.((i * k) + l) *. ys.((l * n) + j))
          done;
          let got = Scalar.to_float (Ndarray.get c [| i; j |]) in
          if abs_float (got -. !expect) > 1e-9 then ok := false
        done
      done;
      !ok)

(* --- ndarray: indexing (§III-A3 modes a-d) -------------------------------- *)

let cube =
  (* 3x4x5 cube with value 100i + 10j + k at [i,j,k] *)
  Ndarray.init_float [| 3; 4; 5 |] (fun idx ->
      float_of_int ((100 * idx.(0)) + (10 * idx.(1)) + idx.(2)))

let test_index_standard () =
  (* (a) standard indexing extracts a single element *)
  let s = Ndarray.slice cube [| At 2; At 3; At 1 |] in
  Alcotest.(check int) "rank 0" 0 (Ndarray.rank s);
  Alcotest.check sc "value" (Scalar.F 231.) (Ndarray.to_scalar s)

let test_index_range () =
  (* (b) data[0:4, end-4:end, 0:4] on a bigger cube returns 5x5x5 *)
  let big =
    Ndarray.init_float [| 10; 10; 10 |] (fun i ->
        float_of_int ((100 * i.(0)) + (10 * i.(1)) + i.(2)))
  in
  let s =
    Ndarray.slice big [| Range (0, 4); Range (5, 9); Range (0, 4) |]
  in
  Alcotest.(check (array int)) "shape 5x5x5" [| 5; 5; 5 |] (Ndarray.shape s);
  Alcotest.check sc "corner" (Scalar.F 50.) (Ndarray.get s [| 0; 0; 0 |]);
  Alcotest.check sc "other corner" (Scalar.F 494.) (Ndarray.get s [| 4; 4; 4 |])

let test_index_whole_dim () =
  (* (c) data[0, end, :] returns a vector of size dimSize(data,2) *)
  let v = Ndarray.slice cube [| At 0; At 3; All |] in
  Alcotest.(check (array int)) "vector" [| 5 |] (Ndarray.shape v);
  Alcotest.check nd "values"
    (Ndarray.of_float_array [| 5 |] [| 30.; 31.; 32.; 33.; 34. |])
    v

let test_index_logical () =
  (* (d) logical indexing by a boolean vector *)
  let v = Ndarray.of_int_array [| 6 |] [| 1; 2; 3; 4; 5; 6 |] in
  let mask = Ndarray.cmp_scalar Scalar.Eq
      (Ndarray.arith_scalar Scalar.Mod v (Scalar.I 2) ~scalar_left:false)
      (Scalar.I 1) ~scalar_left:false
  in
  let odd = Ndarray.slice v [| Mask mask |] in
  Alcotest.check nd "odd elements" (Ndarray.vec_i [ 1; 3; 5 ]) odd;
  (* logical on one dim of a matrix: data[v % 2 == 1, :] *)
  let mat =
    Ndarray.init_int [| 6; 3 |] (fun i -> (10 * i.(0)) + i.(1))
  in
  let rows = Ndarray.slice mat [| Mask mask; All |] in
  Alcotest.(check (array int)) "3x3" [| 3; 3 |] (Ndarray.shape rows);
  Alcotest.check sc "row pick" (Scalar.I 41) (Ndarray.get rows [| 2; 1 |])

let test_index_gather () =
  let v = Ndarray.of_float_array [| 6 |] [| 10.; 11.; 12.; 13.; 14.; 15. |] in
  let g = Ndarray.slice v [| Gather (Ndarray.vec_i [ 4; 0; 4 ]) |] in
  Alcotest.check nd "gather dup ok"
    (Ndarray.of_float_array [| 3 |] [| 14.; 10.; 14. |])
    g;
  Alcotest.check_raises "gather oob"
    (Shape.Shape_error "gather index 6 out of bounds in dimension 0")
    (fun () -> ignore (Ndarray.slice v [| Gather (Ndarray.vec_i [ 6 ]) |]))

let test_index_mixed () =
  (* combinations across dimensions, rank collapse only on At *)
  let s = Ndarray.slice cube [| At 1; Range (1, 2); Mask (Ndarray.of_bool_array [| 5 |] [| true; false; false; false; true |]) |] in
  Alcotest.(check (array int)) "shape 2x2" [| 2; 2 |] (Ndarray.shape s);
  Alcotest.check sc "[1,1,0]" (Scalar.F 110.) (Ndarray.get s [| 0; 0 |]);
  Alcotest.check sc "[1,2,4]" (Scalar.F 124.) (Ndarray.get s [| 1; 1 |])

let test_slice_assign () =
  let m = Ndarray.create Ndarray.EFloat [| 4; 4 |] in
  let sub = Ndarray.of_float_array [| 2; 2 |] [| 1.; 2.; 3.; 4. |] in
  Ndarray.slice_assign m [| Range (1, 2); Range (1, 2) |] sub;
  Alcotest.check sc "written" (Scalar.F 4.) (Ndarray.get m [| 2; 2 |]);
  Alcotest.check sc "untouched" (Scalar.F 0.) (Ndarray.get m [| 0; 0 |]);
  (* scoreTS-style gather write-back: scores[beginning::i] = computed *)
  let scores = Ndarray.create Ndarray.EFloat [| 6 |] in
  Ndarray.slice_assign scores [| Range (2, 4) |] (Ndarray.vec_f [ 7.; 8.; 9. ]);
  Alcotest.check nd "range write"
    (Ndarray.of_float_array [| 6 |] [| 0.; 0.; 7.; 8.; 9.; 0. |])
    scores;
  Ndarray.fill_assign scores [| Mask (Ndarray.cmp_scalar Scalar.Eq scores (Scalar.F 0.) ~scalar_left:false) |] (Scalar.F (-1.));
  Alcotest.check nd "mask fill"
    (Ndarray.of_float_array [| 6 |] [| -1.; -1.; 7.; 8.; 9.; -1. |])
    scores;
  Alcotest.check_raises "region shape mismatch"
    (Shape.Shape_error "assignment of [2] into region [3]") (fun () ->
      Ndarray.slice_assign scores [| Range (0, 2) |] (Ndarray.vec_f [ 1.; 2. ]))

let prop_slice_of_slice =
  (* slicing twice with ranges composes like slicing once *)
  QCheck.Test.make ~name:"range slice composition" ~count:100
    QCheck.(
      make
        Gen.(
          let* n = 4 -- 12 in
          let* lo1 = 0 -- (n - 2) in
          let* hi1 = lo1 -- (n - 1) in
          let w = hi1 - lo1 + 1 in
          let* lo2 = 0 -- (w - 1) in
          let* hi2 = lo2 -- (w - 1) in
          return (n, lo1, hi1, lo2, hi2)))
    (fun (n, lo1, hi1, lo2, hi2) ->
      let v = Ndarray.init_float [| n |] (fun i -> float_of_int i.(0)) in
      let a = Ndarray.slice (Ndarray.slice v [| Range (lo1, hi1) |]) [| Range (lo2, hi2) |] in
      let b = Ndarray.slice v [| Range (lo1 + lo2, lo1 + hi2) |] in
      Ndarray.equal a b)

let prop_mask_popcount =
  QCheck.Test.make ~name:"mask slice length = popcount" ~count:100
    QCheck.(make Gen.(list_size (1 -- 20) bool))
    (fun bools ->
      let n = List.length bools in
      let v = Ndarray.init_float [| n |] (fun i -> float_of_int i.(0)) in
      let mask = Ndarray.of_bool_array [| n |] (Array.of_list bools) in
      let s = Ndarray.slice v [| Mask mask |] in
      (Ndarray.shape s).(0) = List.length (List.filter Fun.id bools))

let test_range_construction () =
  Alcotest.check nd "x1::x2" (Ndarray.vec_i [ 3; 4; 5; 6 ]) (Ndarray.range 3 6);
  Alcotest.(check (array int)) "empty when hi<lo" [| 0 |]
    (Ndarray.shape (Ndarray.range 5 2))

let test_io_roundtrip () =
  let file = Filename.temp_file "mmc" ".mat" in
  Ndarray.write_file file cube;
  let back = Ndarray.read_file file in
  Sys.remove file;
  Alcotest.check nd "float roundtrip" cube back;
  let file = Filename.temp_file "mmc" ".mat" in
  let ints = Ndarray.init_int [| 3; 3 |] (fun i -> i.(0) - i.(1)) in
  Ndarray.write_file file ints;
  let back = Ndarray.read_file file in
  Sys.remove file;
  Alcotest.check nd "int roundtrip" ints back

(* --- refcounting ----------------------------------------------------------- *)

let test_rc_lifecycle () =
  Rc.reset ();
  let c = Rc.alloc ~bytes:64 "payload" in
  Alcotest.(check int) "live after alloc" 1 (Rc.live_count ());
  Alcotest.(check string) "deref" "payload" (Rc.get c);
  Rc.incr_ c;
  Rc.decr_ c;
  Alcotest.(check bool) "still live" true (Rc.is_live c);
  Rc.decr_ c;
  Alcotest.(check bool) "freed at zero" false (Rc.is_live c);
  Alcotest.(check int) "registry empty" 0 (Rc.live_count ());
  Alcotest.check_raises "use after free" (Rc.Use_after_free c.Rc.id) (fun () ->
      ignore (Rc.get c));
  Alcotest.check_raises "double free" (Rc.Double_free c.Rc.id) (fun () ->
      Rc.decr_ c)

let prop_rc_scripts =
  (* Random inc/dec scripts that never exceed the known count cannot
     double-free, and cells freed exactly once leave no residue. *)
  QCheck.Test.make ~name:"rc scripts balance" ~count:100
    QCheck.(make Gen.(list_size (1 -- 30) (0 -- 2)))
    (fun script ->
      Rc.reset ();
      let c = Rc.alloc 0 in
      let count = ref 1 in
      List.iter
        (fun op ->
          if !count > 0 then
            match op with
            | 0 | 1 ->
                Rc.incr_ c;
                incr count
            | _ ->
                Rc.decr_ c;
                decr count)
        script;
      while !count > 0 do
        Rc.decr_ c;
        decr count
      done;
      (not (Rc.is_live c)) && Rc.live_count () = 0)

(* --- pool -------------------------------------------------------------------- *)

let test_pool_parallel_for () =
  Pool.with_pool 4 (fun pool ->
      let n = 10_000 in
      let a = Array.make n 0 in
      Pool.parallel_for pool 0 n (fun i -> a.(i) <- i * 2);
      let expect = Array.init n (fun i -> i * 2) in
      Alcotest.(check bool) "all indices written once" true (a = expect))

let test_pool_fold () =
  Pool.with_pool 3 (fun pool ->
      let n = 5000 in
      let serial = n * (n - 1) / 2 in
      let par =
        Pool.parallel_fold pool 0 n ~init:0 ~body:(fun acc i -> acc + i)
          ~combine:( + )
      in
      Alcotest.(check int) "parallel fold equals serial" serial par)

let test_pool_reuse () =
  (* The enhanced fork-join model's whole point: many regions, same threads. *)
  Pool.with_pool 4 (fun pool ->
      let acc = Atomic.make 0 in
      for _ = 1 to 200 do
        Pool.parallel_for pool 0 64 (fun _ -> Atomic.incr acc)
      done;
      Alcotest.(check int) "200 small regions" (200 * 64) (Atomic.get acc))

let test_pool_single_thread () =
  Pool.with_pool 1 (fun pool ->
      let hits = ref 0 in
      Pool.parallel_for pool 0 10 (fun _ -> incr hits);
      Alcotest.(check int) "degenerate pool runs inline" 10 !hits)

let test_naive_forkjoin () =
  let a = Array.make 1000 0 in
  Pool.naive_parallel_for 3 0 1000 (fun i -> a.(i) <- i);
  Alcotest.(check bool) "naive covers range" true
    (a = Array.init 1000 Fun.id)

let prop_pool_matches_serial =
  QCheck.Test.make ~name:"parallel_for = serial for any size/threads" ~count:20
    QCheck.(make Gen.(pair (1 -- 4) (0 -- 500)))
    (fun (threads, n) ->
      Pool.with_pool threads (fun pool ->
          let a = Array.make (max n 1) 0 in
          Pool.parallel_for pool 0 n (fun i -> a.(i) <- i + 1);
          let ok = ref true in
          for i = 0 to n - 1 do
            if a.(i) <> i + 1 then ok := false
          done;
          !ok))

(* --- simd ---------------------------------------------------------------------- *)

let test_simd_ops () =
  let a = [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8. |] in
  let v = Simd.load a 2 ~width:4 in
  Alcotest.(check int) "width" 4 (Simd.width v);
  Alcotest.(check (float 0.)) "lane" 5. (Simd.lane v 2);
  let s = Simd.splat 10. ~width:4 in
  let r = Simd.add v s in
  let out = Array.make 8 0. in
  Simd.store out 0 r;
  Alcotest.(check (float 0.)) "stored" 13. out.(0);
  Alcotest.(check (float 0.)) "stored last" 16. out.(3);
  Alcotest.(check (float 1e-6)) "hsum" 58. (Simd.hsum r)

let prop_simd_equals_scalar =
  QCheck.Test.make ~name:"vector ops equal scalar loops (f32)" ~count:100
    QCheck.(
      make
        Gen.(
          pair
            (array_size (return 4) (float_bound_inclusive 100.))
            (array_size (return 4) (float_bound_inclusive 100.))))
    (fun (x, y) ->
      let vx = Simd.load x 0 ~width:4 and vy = Simd.load y 0 ~width:4 in
      let check op fop =
        let v = op vx vy in
        Array.for_all Fun.id
          (Array.init 4 (fun k ->
               Simd.lane v k = Simd.to_f32 (fop (Simd.to_f32 x.(k)) (Simd.to_f32 y.(k)))))
      in
      check Simd.add ( +. ) && check Simd.sub ( -. ) && check Simd.mul ( *. ))

let suite =
  [
    Alcotest.test_case "shape basics" `Quick test_shape_basics;
    QCheck_alcotest.to_alcotest prop_offset_unoffset;
    Alcotest.test_case "shape iter order" `Quick test_shape_iter_order;
    Alcotest.test_case "elementwise" `Quick test_elementwise;
    Alcotest.test_case "elementwise errors" `Quick test_elementwise_errors;
    Alcotest.test_case "compare and logic" `Quick test_cmp_and_logic;
    Alcotest.test_case "matmul" `Quick test_matmul;
    QCheck_alcotest.to_alcotest prop_matmul_oracle;
    Alcotest.test_case "index: standard" `Quick test_index_standard;
    Alcotest.test_case "index: range" `Quick test_index_range;
    Alcotest.test_case "index: whole dim" `Quick test_index_whole_dim;
    Alcotest.test_case "index: logical" `Quick test_index_logical;
    Alcotest.test_case "index: gather" `Quick test_index_gather;
    Alcotest.test_case "index: mixed" `Quick test_index_mixed;
    Alcotest.test_case "slice assignment" `Quick test_slice_assign;
    QCheck_alcotest.to_alcotest prop_slice_of_slice;
    QCheck_alcotest.to_alcotest prop_mask_popcount;
    Alcotest.test_case "range construction" `Quick test_range_construction;
    Alcotest.test_case "matrix file IO" `Quick test_io_roundtrip;
    Alcotest.test_case "rc lifecycle" `Quick test_rc_lifecycle;
    QCheck_alcotest.to_alcotest prop_rc_scripts;
    Alcotest.test_case "pool parallel_for" `Quick test_pool_parallel_for;
    Alcotest.test_case "pool fold" `Quick test_pool_fold;
    Alcotest.test_case "pool region reuse" `Quick test_pool_reuse;
    Alcotest.test_case "pool single thread" `Quick test_pool_single_thread;
    Alcotest.test_case "naive fork-join" `Quick test_naive_forkjoin;
    QCheck_alcotest.to_alcotest prop_pool_matches_serial;
    Alcotest.test_case "simd ops" `Quick test_simd_ops;
    QCheck_alcotest.to_alcotest prop_simd_equals_scalar;
  ]
