(* The Cilk-style extension (§VIII future work): spawn/sync semantics,
   implicit sync at function return, composability with the matrix
   extension, and the domain-specific error checks. *)

module S = Runtime.Scalar
module Nd = Runtime.Ndarray

let is_infix ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let c = Driver.compose [ Driver.matrix; Driver.refptr; Driver.cilk ]

let run_ok ?dir src =
  match Driver.run ?dir c src [] with
  | Driver.Ok_ v -> v
  | Driver.Failed ds ->
      Alcotest.failf "pipeline failed: %s" (Driver.diags_to_string ds)

let test_composability () =
  let r = Grammar.Determinism.check Driver.effective_host Driver.cilk.Driver.grammar in
  Alcotest.(check bool) "cilk passes isComposable" true
    r.Grammar.Determinism.passes;
  (* spawn/sync use fresh marking terminals: strict marking, no notes *)
  Alcotest.(check (list string)) "no anchored-operator notes" []
    (List.filter_map
       (fun v ->
         if v.Grammar.Determinism.rule = "infix-anchor" then
           Some v.Grammar.Determinism.detail
         else None)
       r.Grammar.Determinism.notes)

let test_spawn_scalar_results () =
  let src =
    {|
int fib(int n) {
  if (n <= 1) { return n; }
  int a = 0;
  int b = 0;
  spawn a = fib(n - 1);
  spawn b = fib(n - 2);
  sync;
  return a + b;
}
int main() { return fib(10); }
|}
  in
  match run_ok src with
  | Interp.Eval.VScal (S.I 55) -> ()
  | v -> Alcotest.failf "fib(10) = %a" Interp.Eval.pp_value v

let test_implicit_sync_at_return () =
  (* no explicit sync: the implicit one must still deliver the results *)
  let src =
    {|
int one() { return 1; }
int main() {
  int a = 0;
  spawn a = one();
  sync;
  int b = 0;
  spawn b = one();
  return a * 10 + b;
}
|}
  in
  (* b is assigned by the implicit sync before main returns, but the
     return expression is evaluated before it — so only a is visible:
     exactly Cilk's race rule.  Use the value to document the semantics. *)
  match run_ok src with
  | Interp.Eval.VScal (S.I 10) -> ()
  | v -> Alcotest.failf "got %a" Interp.Eval.pp_value v

let test_spawn_into_shared_matrix () =
  (* the Cilk idiom for matrix results: children write disjoint regions *)
  let src =
    {|
int fillRow(Matrix int <2> m, int row) {
  int n = dimSize(m, 1);
  for (int j = 0; j < n; j++) { m[row, j] = row * 100 + j; }
  return row;
}
int main() {
  Matrix int <2> m = init(Matrix int <2>, 4, 8);
  for (int i = 0; i < 4; i++) {
    spawn fillRow(m, i);
  }
  sync;
  writeMatrix("m.data", m);
  return 0;
}
|}
  in
  let dir = Filename.temp_file "mmcilk" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Runtime.Rc.reset ();
  ignore (run_ok ~dir src);
  Alcotest.(check int) "no leaks" 0 (Runtime.Rc.live_count ());
  let m = Interp.Eval.fetch_output ~dir "m.data" in
  let ok = ref true in
  for i = 0 to 3 do
    for j = 0 to 7 do
      if S.to_int (Nd.get m [| i; j |]) <> (i * 100) + j then ok := false
    done
  done;
  Alcotest.(check bool) "all rows filled by spawned children" true !ok

let test_cilk_with_matrix_ext () =
  (* both extensions active in one program: with-loops inside spawned
     functions *)
  let src =
    {|
int rowSum(Matrix int <2> m, int i) {
  int n = dimSize(m, 1);
  return with ([0] <= [j] < [n]) fold (+, 0, m[i, j]);
}
int main() {
  Matrix int <2> m = init(Matrix int <2>, 2, 5);
  for (int i = 0; i < 2; i++) {
    for (int j = 0; j < 5; j++) { m[i, j] = i + j; }
  }
  int a = 0;
  int b = 0;
  spawn a = rowSum(m, 0);
  spawn b = rowSum(m, 1);
  sync;
  return a * 100 + b;
}
|}
  in
  match run_ok src with
  | Interp.Eval.VScal (S.I 1015) -> () (* 0+1+2+3+4=10, 1+..+5=15 *)
  | v -> Alcotest.failf "got %a" Interp.Eval.pp_value v

let expect_error src frag =
  match Driver.run c src [] with
  | Driver.Ok_ _ -> Alcotest.failf "expected error %S" frag
  | Driver.Failed ds ->
      let text = Driver.diags_to_string ds in
      Alcotest.(check bool)
        (Printf.sprintf "mentions %S (got %s)" frag text)
        true (is_infix ~affix:frag text)

let test_cilk_errors () =
  expect_error "int main() { spawn nosuch(); return 0; }"
    "spawn of undefined function";
  expect_error
    {|int f(int x) { return x; }
      int main() { int a = 0; spawn a = f(true); sync; return a; }|}
    "spawn argument";
  expect_error
    {|Matrix int <1> f() { return init(Matrix int <1>, 3); }
      int main() { Matrix int <1> a = init(Matrix int <1>, 3);
        spawn a = f(); sync; return 0; }|}
    "spawn target must receive a scalar";
  expect_error "int f() { return 1; } int main() { spawn x = f(); return 0; }"
    "unbound spawn target"

let test_spawn_keyword_context () =
  (* without the cilk extension, `spawn` and `sync` are plain identifiers *)
  let plain = Driver.compose [ Driver.matrix ] in
  match
    Driver.run plain
      "int main() { int spawn = 3; int sync = 4; return spawn * sync; }" []
  with
  | Driver.Ok_ (Interp.Eval.VScal (S.I 12)) -> ()
  | Driver.Ok_ v -> Alcotest.failf "got %a" Interp.Eval.pp_value v
  | Driver.Failed ds -> Alcotest.failf "failed: %s" (Driver.diags_to_string ds)

let test_emitted_c () =
  let src =
    {|
int work(int x) { return x; }
int main() {
  int a = 0;
  spawn a = work(1);
  sync;
  return a;
}
|}
  in
  match Driver.compile_to_c c src with
  | Driver.Ok_ text ->
      Alcotest.(check bool) "cilk_spawn emitted" true
        (is_infix ~affix:"a = cilk_spawn work(1);" text);
      Alcotest.(check bool) "cilk_sync emitted" true
        (is_infix ~affix:"cilk_sync;" text)
  | Driver.Failed ds -> Alcotest.failf "emit failed: %s" (Driver.diags_to_string ds)

let suite =
  [
    Alcotest.test_case "cilk passes isComposable (strict marking)" `Quick
      test_composability;
    Alcotest.test_case "spawned fib" `Quick test_spawn_scalar_results;
    Alcotest.test_case "implicit sync at return (race rule)" `Quick
      test_implicit_sync_at_return;
    Alcotest.test_case "spawn into shared matrix regions" `Quick
      test_spawn_into_shared_matrix;
    Alcotest.test_case "cilk + matrix extensions together" `Quick
      test_cilk_with_matrix_ext;
    Alcotest.test_case "cilk semantic errors" `Quick test_cilk_errors;
    Alcotest.test_case "spawn/sync as identifiers without cilk" `Quick
      test_spawn_keyword_context;
    Alcotest.test_case "cilk_spawn / cilk_sync in emitted C" `Quick
      test_emitted_c;
  ]
