(* The spatio-temporal data-mining application layer (§IV): synthetic SSH
   generation with ground truth, connected components vs a flood-fill
   oracle, trough scoring on planted signatures, and eddy tracking. *)

module Nd = Runtime.Ndarray
module S = Runtime.Scalar

(* --- synthetic SSH ------------------------------------------------------------ *)

let test_generator_shape_and_determinism () =
  let a, truth = Eddy.Ssh_gen.generate ~lat:10 ~lon:12 ~time:6 ~n_eddies:3 ~seed:42 () in
  let b, _ = Eddy.Ssh_gen.generate ~lat:10 ~lon:12 ~time:6 ~n_eddies:3 ~seed:42 () in
  Alcotest.(check (array int)) "shape" [| 10; 12; 6 |] (Nd.shape a);
  Alcotest.(check bool) "deterministic for a fixed seed" true (Nd.equal a b);
  Alcotest.(check int) "truth has requested eddies" 3
    (List.length truth.Eddy.Ssh_gen.eddies);
  let c, _ = Eddy.Ssh_gen.generate ~lat:10 ~lon:12 ~time:6 ~n_eddies:3 ~seed:43 () in
  Alcotest.(check bool) "different seeds differ" false (Nd.equal a c)

let test_eddy_leaves_depression () =
  let cube, truth =
    Eddy.Ssh_gen.generate ~noise:0.0 ~swell:0.0 ~lat:16 ~lon:16 ~time:4
      ~n_eddies:1 ~seed:5 ()
  in
  let e = List.hd truth.Eddy.Ssh_gen.eddies in
  match Eddy.Ssh_gen.position e e.Eddy.Ssh_gen.t_start with
  | None -> Alcotest.fail "eddy not alive at its own start"
  | Some (ei, ej) ->
      let i = int_of_float ei and j = int_of_float ej in
      let centre =
        S.to_float (Nd.get cube [| i; j; e.Eddy.Ssh_gen.t_start |])
      in
      Alcotest.(check bool)
        (Printf.sprintf "centre is depressed (%g)" centre)
        true (centre < -0.3)

(* --- connected components ------------------------------------------------------ *)

(* flood-fill oracle *)
let flood_label (mask : Nd.t) : Nd.t =
  let sh = Nd.shape mask in
  let m = sh.(0) and n = sh.(1) in
  let out = Nd.create Nd.EInt [| m; n |] in
  let next = ref 0 in
  let at i j = S.to_bool (Nd.get mask [| i; j |]) in
  let lab i j = S.to_int (Nd.get out [| i; j |]) in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      if at i j && lab i j = 0 then begin
        incr next;
        let stack = ref [ (i, j) ] in
        while !stack <> [] do
          match !stack with
          | [] -> ()
          | (x, y) :: rest ->
              stack := rest;
              if x >= 0 && x < m && y >= 0 && y < n && at x y && lab x y = 0
              then begin
                Nd.set out [| x; y |] (S.I !next);
                stack :=
                  (x - 1, y) :: (x + 1, y) :: (x, y - 1) :: (x, y + 1) :: !stack
              end
        done
      end
    done
  done;
  out

let same_partition a b =
  let ok = ref true in
  let fwd = Hashtbl.create 16 and bwd = Hashtbl.create 16 in
  for off = 0 to Nd.size a - 1 do
    let x = S.to_int (Nd.get_flat a off) and y = S.to_int (Nd.get_flat b off) in
    if (x = 0) <> (y = 0) then ok := false
    else if x <> 0 then begin
      (match Hashtbl.find_opt fwd x with
      | Some y' -> if y <> y' then ok := false
      | None -> Hashtbl.replace fwd x y);
      match Hashtbl.find_opt bwd y with
      | Some x' -> if x <> x' then ok := false
      | None -> Hashtbl.replace bwd y x
    end
  done;
  !ok

let prop_unionfind_vs_floodfill =
  QCheck.Test.make ~name:"union-find labelling = flood fill" ~count:100
    QCheck.(
      make
        Gen.(
          let* m = 1 -- 8 and* n = 1 -- 8 in
          let* cells = array_size (return (m * n)) bool in
          return (m, n, cells)))
    (fun (m, n, cells) ->
      let mask = Nd.of_bool_array [| m; n |] cells in
      same_partition (Eddy.Conncomp.label mask) (flood_label mask))

let test_label_shapes () =
  let mask =
    Nd.of_bool_array [| 3; 5 |]
      [|
        true; true; false; true; true;
        false; false; false; false; true;
        true; false; true; false; true;
      |]
  in
  let labels = Eddy.Conncomp.label mask in
  Alcotest.(check int) "component count" 4 (Eddy.Conncomp.count_components labels);
  let comps = Eddy.Conncomp.components labels in
  Alcotest.(check int) "components listed" 4 (List.length comps);
  let sizes = List.map (fun c -> c.Eddy.Conncomp.cells) comps |> List.sort compare in
  Alcotest.(check (list int)) "component sizes" [ 1; 1; 2; 4 ] sizes

let test_detection_finds_planted_eddies () =
  let cube, truth =
    Eddy.Ssh_gen.generate ~noise:0.01 ~swell:0.02 ~lat:24 ~lon:24 ~time:8
      ~n_eddies:2 ~seed:11 ()
  in
  (* every planted eddy alive at t should have a detection near it *)
  let hits = ref 0 and alive = ref 0 in
  for t = 0 to 7 do
    let dets = Eddy.Conncomp.detect_frame ~threshold:(-0.25) (Eddy.Ssh_gen.frame cube t) in
    List.iter
      (fun e ->
        match Eddy.Ssh_gen.position e t with
        | None -> ()
        | Some (ei, ej) ->
            incr alive;
            if
              List.exists
                (fun (c : Eddy.Conncomp.component) ->
                  let ci, cj = c.Eddy.Conncomp.centroid in
                  let d = sqrt (((ci -. ei) ** 2.) +. ((cj -. ej) ** 2.)) in
                  d < 3.)
                dets
            then incr hits)
      truth.Eddy.Ssh_gen.eddies
  done;
  Alcotest.(check bool)
    (Printf.sprintf "detections cover planted eddies (%d/%d)" !hits !alive)
    true
    (float_of_int !hits >= 0.7 *. float_of_int !alive)

let test_iterative_thresholding_monotone () =
  let cube, _ =
    Eddy.Ssh_gen.generate ~lat:20 ~lon:20 ~time:2 ~n_eddies:2 ~seed:3 ()
  in
  let fr = Eddy.Ssh_gen.frame cube 0 in
  let by_threshold = Eddy.Conncomp.detect_iterative ~lo:(-0.9) ~hi:(-0.05) ~steps:6 fr in
  (* deeper thresholds select fewer cells *)
  let cellcount (_, comps) =
    List.fold_left (fun acc c -> acc + c.Eddy.Conncomp.cells) 0 comps
  in
  let counts = List.map cellcount by_threshold in
  let sorted = List.sort compare counts in
  Alcotest.(check (list int)) "cell count grows with threshold" sorted counts

(* --- temporal scoring ------------------------------------------------------------ *)

let planted_series p =
  Array.init p (fun k ->
      let fk = float_of_int k in
      if k < 10 then 1.0 +. (0.01 *. fk)
      else if k < 20 then 1.1 -. (0.1 *. (fk -. 10.))
      else if k < 30 then 0.1 +. (0.1 *. (fk -. 20.))
      else 1.1 -. (0.005 *. (fk -. 30.)))

let test_get_trough () =
  let ts = planted_series 40 in
  let trough, b, e = Eddy.Score.get_trough ts 10 in
  Alcotest.(check int) "beginning" 10 b;
  Alcotest.(check int) "end at next local max" 30 e;
  Alcotest.(check int) "trough length" 21 (Array.length trough);
  Alcotest.(check (float 1e-6)) "trough floor" 0.1
    (Array.fold_left min infinity trough)

let test_compute_area () =
  (* V-shaped trough: line from 1 to 1 over [0;4], values 1,0.5,0,0.5,1 *)
  let aoi = [| 1.; 0.5; 0.; 0.5; 1. |] in
  let area = Eddy.Score.compute_area aoi in
  Alcotest.(check int) "broadcast length" 5 (Array.length area);
  Alcotest.(check (float 1e-6)) "area = 2" 2. area.(0);
  Alcotest.(check bool) "all points get the area" true
    (Array.for_all (fun x -> abs_float (x -. 2.) < 1e-9) area)

let test_score_ranks_trough_over_noise () =
  let scores = Eddy.Score.score_ts (planted_series 40) in
  Alcotest.(check bool) "deep trough scores high" true (scores.(15) > 5.);
  Alcotest.(check bool) "shallow tail scores low" true
    (scores.(35) < 0.5 *. scores.(15))

let test_score_edge_cases () =
  Alcotest.(check (array (float 0.))) "empty" [||] (Eddy.Score.score_ts [||]);
  Alcotest.(check (array (float 0.))) "singleton" [| 0. |]
    (Eddy.Score.score_ts [| 1. |]);
  (* monotonically rising series: trimming consumes it, no troughs *)
  let rising = Array.init 10 float_of_int in
  Alcotest.(check bool) "rising series scores zero" true
    (Array.for_all (fun x -> x = 0.) (Eddy.Score.score_ts rising));
  (* monotonically falling: one trough to the end *)
  let falling = Array.init 10 (fun k -> -.float_of_int k) in
  let s = Eddy.Score.score_ts falling in
  Alcotest.(check int) "defined everywhere" 10 (Array.length s)

let test_score_cube_consistency () =
  let cube, _ =
    Eddy.Ssh_gen.generate ~lat:4 ~lon:4 ~time:30 ~n_eddies:1 ~seed:9 ()
  in
  let scored = Eddy.Score.score_cube cube in
  Alcotest.(check (array int)) "same shape" (Nd.shape cube) (Nd.shape scored);
  (* spot-check one series against score_ts *)
  let ts = Array.init 30 (fun k -> S.to_float (Nd.get cube [| 2; 3; k |])) in
  let expect = Eddy.Score.score_ts ts in
  let got = Array.init 30 (fun k -> S.to_float (Nd.get scored [| 2; 3; k |])) in
  Alcotest.(check bool) "matches per-series scoring" true (expect = got)

(* --- tracking ---------------------------------------------------------------------- *)

let det t (i, j) cells = { Eddy.Track.d_t = t; d_centroid = (i, j); d_cells = cells }

let test_tracking_continuity () =
  (* one eddy drifting right one cell per frame, one stationary *)
  let frames =
    Array.init 5 (fun t ->
        [
          det t (2., 2. +. float_of_int t) 6;
          det t (8., 8.) 5;
        ])
  in
  let tracks = Eddy.Track.run ~max_dist:2.0 frames in
  Alcotest.(check int) "two tracks" 2 (List.length tracks);
  List.iter
    (fun tr -> Alcotest.(check int) "track spans all frames" 5 (List.length tr))
    tracks

let test_tracking_gap_tolerance () =
  (* detection missing at t=2 (the §IV failure mode) *)
  let frames =
    Array.init 5 (fun t ->
        if t = 2 then [] else [ det t (3., 3. +. float_of_int t) 6 ])
  in
  let with_gap = Eddy.Track.run ~max_dist:2.5 ~max_gap:2 frames in
  Alcotest.(check int) "gap bridged: one track" 1
    (List.length (Eddy.Track.long_tracks ~min_len:3 with_gap));
  let no_gap = Eddy.Track.run ~max_dist:2.5 ~max_gap:0 frames in
  Alcotest.(check bool) "without tolerance the track fragments" true
    (List.length no_gap > 1)

let test_tracking_coverage_metric () =
  let truth = List.init 4 (fun t -> (t, (1., 1. +. float_of_int t))) in
  let perfect =
    [ List.init 4 (fun t -> det t (1., 1. +. float_of_int t) 5) ]
  in
  Alcotest.(check (float 1e-9)) "perfect coverage" 1.0
    (Eddy.Track.coverage ~truth perfect);
  Alcotest.(check (float 1e-9)) "no tracks, no coverage" 0.0
    (Eddy.Track.coverage ~truth [])

let test_end_to_end_detection_tracking () =
  let cube, truth =
    Eddy.Ssh_gen.generate ~noise:0.01 ~swell:0.02 ~lat:24 ~lon:24 ~time:10
      ~n_eddies:1 ~seed:21 ()
  in
  let e = List.hd truth.Eddy.Ssh_gen.eddies in
  let frames =
    Array.init 10 (fun t ->
        Eddy.Conncomp.detect_frame ~threshold:(-0.25) (Eddy.Ssh_gen.frame cube t)
        |> List.map (fun (c : Eddy.Conncomp.component) ->
               {
                 Eddy.Track.d_t = t;
                 d_centroid = c.Eddy.Conncomp.centroid;
                 d_cells = c.Eddy.Conncomp.cells;
               }))
  in
  let tracks = Eddy.Track.run ~max_dist:3.0 ~max_gap:1 frames in
  let truth_traj =
    List.filter_map
      (fun t ->
        Option.map (fun pos -> (t, pos)) (Eddy.Ssh_gen.position e t))
      (List.init 10 Fun.id)
  in
  let cov = Eddy.Track.coverage ~truth:truth_traj tracks in
  Alcotest.(check bool)
    (Printf.sprintf "planted eddy tracked (coverage %.2f)" cov)
    true (cov >= 0.6)

let suite =
  [
    Alcotest.test_case "generator determinism" `Quick
      test_generator_shape_and_determinism;
    Alcotest.test_case "eddies depress SSH (Fig 6)" `Quick
      test_eddy_leaves_depression;
    QCheck_alcotest.to_alcotest prop_unionfind_vs_floodfill;
    Alcotest.test_case "component statistics" `Quick test_label_shapes;
    Alcotest.test_case "detection finds planted eddies" `Quick
      test_detection_finds_planted_eddies;
    Alcotest.test_case "iterative thresholding monotone" `Quick
      test_iterative_thresholding_monotone;
    Alcotest.test_case "getTrough (Fig 8)" `Quick test_get_trough;
    Alcotest.test_case "computeArea (Fig 7)" `Quick test_compute_area;
    Alcotest.test_case "scores rank troughs over noise" `Quick
      test_score_ranks_trough_over_noise;
    Alcotest.test_case "scoring edge cases" `Quick test_score_edge_cases;
    Alcotest.test_case "score_cube = per-series scoring" `Quick
      test_score_cube_consistency;
    Alcotest.test_case "tracking continuity" `Quick test_tracking_continuity;
    Alcotest.test_case "tracking gap tolerance (§IV)" `Quick
      test_tracking_gap_tolerance;
    Alcotest.test_case "coverage metric" `Quick test_tracking_coverage_metric;
    Alcotest.test_case "detect + track end-to-end" `Quick
      test_end_to_end_detection_tracking;
  ]
