(* Regex engine: parser, NFA reference semantics, DFA equivalence,
   longest-match behaviour used by the scanner. *)

open Regexe

let dfa_of src = Dfa.of_regex (Syntax.parse src)
let matches src s = Dfa.matches (dfa_of src) s

let check_match re s expected () =
  Alcotest.(check bool) (Printf.sprintf "%s =~ %S" re s) expected (matches re s)

let basic_cases =
  [
    ("abc", "abc", true);
    ("abc", "ab", false);
    ("abc", "abcd", false);
    ("a|b", "a", true);
    ("a|b", "b", true);
    ("a|b", "c", false);
    ("a*", "", true);
    ("a*", "aaaa", true);
    ("a*", "aab", false);
    ("a+", "", false);
    ("a+", "aaa", true);
    ("a?b", "b", true);
    ("a?b", "ab", true);
    ("a?b", "aab", false);
    ("(ab)*", "ababab", true);
    ("(ab)*", "aba", false);
    ("[a-z]+", "hello", true);
    ("[a-z]+", "Hello", false);
    ("[a-zA-Z_][a-zA-Z0-9_]*", "x_42", true);
    ("[a-zA-Z_][a-zA-Z0-9_]*", "42x", false);
    ("[^0-9]+", "abc!", true);
    ("[^0-9]+", "ab3", false);
    ("[0-9]+\\.[0-9]+", "3.14", true);
    ("[0-9]+\\.[0-9]+", "314", false);
    (".", "a", true);
    (".", "\n", false);
    ("a\\*b", "a*b", true);
    ("a\\*b", "aab", false);
    ("//[^\n]*", "// comment here", true);
    ("[ \t\n\r]+", " \t\n", true);
  ]

let test_longest_match () =
  let dfa = dfa_of "[0-9]+" in
  Alcotest.(check (option int)) "digits" (Some 3) (Dfa.longest_match dfa "123abc" 0);
  Alcotest.(check (option int)) "offset" (Some 2) (Dfa.longest_match dfa "ab12cd" 2);
  Alcotest.(check (option int)) "none" None (Dfa.longest_match dfa "abc" 0);
  (* A nullable regex must not report empty matches. *)
  let star = dfa_of "a*" in
  Alcotest.(check (option int)) "no empty match" None (Dfa.longest_match star "bbb" 0);
  Alcotest.(check (option int)) "nonempty ok" (Some 2) (Dfa.longest_match star "aab" 0)

let test_parse_errors () =
  let bad = [ "(ab"; "a)"; "[abc"; "*a"; "a|"; "\\" ] in
  List.iter
    (fun src ->
      match Syntax.parse src with
      | exception Syntax.Parse_error _ -> ()
      | exception _ -> Alcotest.failf "wrong exception for %S" src
      | _ ->
          (* "a|" parses as a|ε which we accept; skip only that one *)
          if src <> "a|" then Alcotest.failf "expected parse error for %S" src)
    bad

(* QCheck: random regexes over a tiny alphabet; DFA agrees with the NFA
   reference matcher on random strings. *)
let gen_regex =
  let open QCheck.Gen in
  (* Keep regexes small: DFA subset construction is worst-case exponential
     in NFA size, and real terminal regexes are tiny. *)
  sized_size (0 -- 8) @@ fix (fun self n ->
      if n <= 1 then
        oneof
          [
            map (fun c -> Syntax.Char c) (oneofl [ 'a'; 'b'; 'c' ]);
            return Syntax.Empty;
            return (Syntax.Class (false, [ ('a', 'b') ]));
            return (Syntax.Class (true, [ ('a', 'a') ]));
          ]
      else
        oneof
          [
            map2 (fun x y -> Syntax.Seq (x, y)) (self (n / 2)) (self (n / 2));
            map2 (fun x y -> Syntax.Alt (x, y)) (self (n / 2)) (self (n / 2));
            map (fun x -> Syntax.Star x) (self (n - 1));
            map (fun x -> Syntax.Plus x) (self (n - 1));
            map (fun x -> Syntax.Opt x) (self (n - 1));
          ])

let gen_string =
  QCheck.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; 'c'; 'd' ]) (0 -- 8))

let prop_dfa_equals_nfa =
  QCheck.Test.make ~name:"dfa accepts iff nfa accepts" ~count:500
    (QCheck.make (QCheck.Gen.pair gen_regex gen_string))
    (fun (re, s) ->
      let nfa = Nfa.of_regex re in
      let dfa = Dfa.of_nfa nfa in
      Bool.equal (Nfa.accepts nfa s) (Dfa.matches dfa s))

let prop_literal_roundtrip =
  QCheck.Test.make ~name:"literal s matches exactly s" ~count:200
    (QCheck.make gen_string) (fun s ->
      let dfa = Dfa.of_regex (Syntax.literal s) in
      Dfa.matches dfa s
      && ((s = "") || not (Dfa.matches dfa (s ^ "x"))))

let suite =
  List.map
    (fun (re, s, exp) ->
      Alcotest.test_case (Printf.sprintf "%s on %S" re s) `Quick
        (check_match re s exp))
    basic_cases
  @ [
      Alcotest.test_case "longest_match" `Quick test_longest_match;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      QCheck_alcotest.to_alcotest prop_dfa_equals_nfa;
      QCheck_alcotest.to_alcotest prop_literal_roundtrip;
    ]
