(* The attribute-grammar engine (§VI-B): synthesized/inherited evaluation,
   autocopy environments, forwarding (extension constructs getting host
   semantics "for free"), higher-order decoration — demonstrated on a
   little calculator language with a `double x` extension construct — and
   the modular well-definedness analysis on declared AG specs. *)

open Grammar

let owner = "host"

(* calc: E ::= E + T | T ; T ::= NUM | ID | ( E ) ; ext: T ::= double T *)
let calc_host : Cfg.t =
  {
    name = "host";
    terminals =
      [
        Cfg.terminal ~owner "NUM" "[0-9]+";
        Cfg.terminal ~owner "ID" "[a-z]+";
        Cfg.keyword ~owner "PLUS" "+";
        Cfg.keyword ~owner "LP" "(";
        Cfg.keyword ~owner "RP" ")";
      ];
    layout = [ Cfg.terminal ~owner "WS" "[ ]+" ];
    productions =
      [
        Cfg.production ~owner ~name:"e_plus" "E" [ Cfg.N "E"; Cfg.T "PLUS"; Cfg.N "T" ];
        Cfg.production ~owner ~name:"e_t" "E" [ Cfg.N "T" ];
        Cfg.production ~owner ~name:"t_num" "T" [ Cfg.T "NUM" ];
        Cfg.production ~owner ~name:"t_id" "T" [ Cfg.T "ID" ];
        Cfg.production ~owner ~name:"t_paren" "T" [ Cfg.T "LP"; Cfg.N "E"; Cfg.T "RP" ];
      ];
    start = Some "E";
  }

let calc_ext : Cfg.t =
  {
    name = "doubler";
    terminals = [ Cfg.keyword ~owner:"doubler" "KW_double" "double" ];
    layout = [];
    productions =
      [
        Cfg.production ~owner:"doubler" ~name:"t_double" "T"
          [ Cfg.T "KW_double"; Cfg.N "T" ];
      ];
    start = None;
  }

let table = lazy (Lalr.build (Cfg.compose calc_host [ calc_ext ]))
let parse src =
  match Parser.Driver.parse (Parser.Driver.create (Lazy.force table)) src with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse: %a" Parser.Driver.pp_error e

(* Attributes: value (syn), env (inh, autocopy). *)
let value : int Ag.Engine.attr = Ag.Engine.syn "value"
let env : (string * int) list Ag.Engine.attr = Ag.Engine.inh ~autocopy:true "env"

let leafv n i =
  match Parser.Tree.leaf_text (Ag.Engine.tree (Ag.Engine.child n i)) with
  | Some s -> s
  | None -> Alcotest.fail "expected leaf"

let make_spec ~with_doubler_eq () =
  let sp = Ag.Engine.spec "calc" in
  let open Ag.Engine in
  define_syn sp ~prod:"e_plus" value (fun n ->
      get_syn (child n 0) value + get_syn (child n 2) value);
  define_syn sp ~prod:"e_t" value (fun n -> get_syn (child n 0) value);
  define_syn sp ~prod:"t_num" value (fun n -> int_of_string (leafv n 0));
  define_syn sp ~prod:"t_id" value (fun n ->
      List.assoc (leafv n 0) (get_inh n env));
  define_syn sp ~prod:"t_paren" value (fun n -> get_syn (child n 1) value);
  if with_doubler_eq then
    (* explicit equation for the extension construct *)
    define_syn sp ~prod:"t_double" value (fun n ->
        2 * get_syn (child n 1) value)
  else
    (* forwarding: `double t` forwards to `t + t`-shaped host tree, and
       gets every attribute it does not define from there (§VI-B) *)
    define_forward sp ~prod:"t_double" (fun n ->
        match Ag.Engine.tree n with
        | Parser.Tree.Node (_, [ _kw; t ], span) ->
            let plus =
              List.find
                (fun p -> p.Cfg.p_name = "e_plus")
                (Cfg.compose calc_host [ calc_ext ]).Cfg.productions
            in
            let e_t =
              List.find
                (fun p -> p.Cfg.p_name = "e_t")
                calc_host.Cfg.productions
            in
            let t_paren =
              List.find
                (fun p -> p.Cfg.p_name = "t_paren")
                calc_host.Cfg.productions
            in
            let dummy_tok name =
              Parser.Tree.Leaf
                {
                  Lexer.Token.term = name;
                  term_id = 0;
                  lexeme = name;
                  span;
                }
            in
            let e_of_t = Parser.Tree.Node (e_t, [ t ], span) in
            Parser.Tree.Node
              ( t_paren,
                [
                  dummy_tok "(";
                  Parser.Tree.Node (plus, [ e_of_t; dummy_tok "+"; t ], span);
                  dummy_tok ")";
                ],
                span )
        | _ -> Alcotest.fail "bad double node");
  sp

let eval_with spec src bindings =
  let root = Ag.Engine.decorate spec (parse src) in
  Ag.Engine.set_inh root env bindings;
  Ag.Engine.get_syn root value

let test_basic_eval () =
  let sp = make_spec ~with_doubler_eq:true () in
  Alcotest.(check int) "1 + 2 + 3" 6 (eval_with sp "1 + 2 + 3" []);
  Alcotest.(check int) "(1 + 2) + 40" 43 (eval_with sp "(1 + 2) + 40" [])

let test_inherited_env () =
  let sp = make_spec ~with_doubler_eq:true () in
  (* env autocopies down to the t_id leaf through every production *)
  Alcotest.(check int) "x + (y + 1)" 30
    (eval_with sp "x + (y + 1)" [ ("x", 9); ("y", 20) ])

let test_extension_equation () =
  let sp = make_spec ~with_doubler_eq:true () in
  Alcotest.(check int) "double (2 + 3)" 10 (eval_with sp "double (2 + 3)" [])

let test_forwarding () =
  (* no explicit value equation: t_double forwards to (t + t) and the value
     attribute is computed on the forward tree *)
  let sp = make_spec ~with_doubler_eq:false () in
  Alcotest.(check int) "forwarded double" 10 (eval_with sp "double (2 + 3)" []);
  (* forwarding sees inherited attributes of the original node *)
  Alcotest.(check int) "forwarded with env" 14
    (eval_with sp "double x" [ ("x", 7) ])

let test_missing_equation () =
  let sp = Ag.Engine.spec "broken" in
  Ag.Engine.define_syn sp ~prod:"e_t" value (fun n ->
      Ag.Engine.get_syn (Ag.Engine.child n 0) value);
  let root = Ag.Engine.decorate sp (parse "1") in
  match Ag.Engine.get_syn root value with
  | exception Ag.Engine.Missing_equation { production = "t_num"; attribute = "value"; _ } -> ()
  | exception e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "expected Missing_equation"

let test_default_equation () =
  let sp = Ag.Engine.spec "defaults" in
  let count : int Ag.Engine.attr = Ag.Engine.syn "count" in
  (* default: count the node itself plus all children (collection-style) *)
  Ag.Engine.define_default sp count (fun n ->
      Array.fold_left
        (fun acc k -> acc + Ag.Engine.get_syn k count)
        1
        (Ag.Engine.children n));
  let root = Ag.Engine.decorate sp (parse "1 + 2") in
  (* nodes: e_plus, e_t, t_num(1), leaf(1), leaf(+), t_num, leaf(2) *)
  Alcotest.(check int) "default counts nodes" 7 (Ag.Engine.get_syn root count)

let test_merge_conflict () =
  let a = Ag.Engine.spec "a" and b = Ag.Engine.spec "b" in
  Ag.Engine.define_syn a ~prod:"t_num" value (fun _ -> 1);
  Ag.Engine.define_syn b ~prod:"t_num" value (fun _ -> 2);
  match Ag.Engine.merge a b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected duplicate-equation rejection"

(* --- modular well-definedness ------------------------------------------------ *)

let host_spec : Ag.Wellformed.spec =
  {
    sp_name = "host";
    attrs =
      [
        {
          a_name = "value";
          a_mode = Ag.Wellformed.Syn;
          a_autocopy = false;
          a_occurs = [ "E"; "T" ];
          a_owner = "host";
          a_default = false;
        };
        {
          a_name = "env";
          a_mode = Ag.Wellformed.Inh;
          a_autocopy = true;
          a_occurs = [ "E"; "T" ];
          a_owner = "host";
          a_default = false;
        };
      ];
    prods =
      [
        Ag.Wellformed.full_prod ~owner:"host" ~lhs:"E" ~children:[ "E"; "T" ]
          ~defines:[ "value" ] "e_plus";
        Ag.Wellformed.full_prod ~owner:"host" ~lhs:"E" ~children:[ "T" ]
          ~defines:[ "value" ] "e_t";
        Ag.Wellformed.full_prod ~owner:"host" ~lhs:"T" ~children:[]
          ~defines:[ "value" ] "t_num";
      ];
  }

let test_wellformed_pass () =
  let good : Ag.Wellformed.spec =
    {
      sp_name = "doubler";
      attrs = [];
      prods =
        [
          Ag.Wellformed.full_prod ~owner:"doubler" ~lhs:"T" ~children:[ "T" ]
            ~defines:[ "value" ] "t_double";
        ];
    }
  in
  let r = Ag.Wellformed.check ~host:host_spec good in
  if not r.Ag.Wellformed.passes then
    Alcotest.failf "expected pass: %a" Ag.Wellformed.pp_report r

let test_wellformed_forwarding_pass () =
  let fwd : Ag.Wellformed.spec =
    {
      sp_name = "fwd";
      attrs = [];
      prods =
        [
          Ag.Wellformed.full_prod ~owner:"fwd" ~lhs:"T" ~children:[ "T" ]
            ~forwards:true "t_double";
        ];
    }
  in
  let r = Ag.Wellformed.check ~host:host_spec fwd in
  Alcotest.(check bool) "forwarding satisfies synthesis" true
    r.Ag.Wellformed.passes

let test_wellformed_missing_equation () =
  let bad : Ag.Wellformed.spec =
    {
      sp_name = "bad";
      attrs = [];
      prods =
        [
          (* defines nothing and does not forward: value is missing *)
          Ag.Wellformed.full_prod ~owner:"bad" ~lhs:"T" ~children:[ "T" ]
            "t_double";
        ];
    }
  in
  let r = Ag.Wellformed.check ~host:host_spec bad in
  Alcotest.(check bool) "fails" false r.Ag.Wellformed.passes;
  Alcotest.(check bool) "complete-synthesis violation" true
    (List.exists
       (fun v -> v.Ag.Wellformed.rule = "complete-synthesis")
       r.Ag.Wellformed.violations)

let test_wellformed_orphan_attr () =
  let bad : Ag.Wellformed.spec =
    {
      sp_name = "orphan";
      attrs =
        [
          {
            a_name = "depth";
            a_mode = Ag.Wellformed.Syn;
            a_autocopy = false;
            a_occurs = [ "E" ] (* host NT! *);
            a_owner = "orphan";
            a_default = false;
          };
        ];
      prods = [];
    }
  in
  let r = Ag.Wellformed.check ~host:host_spec bad in
  Alcotest.(check bool) "fails" false r.Ag.Wellformed.passes;
  Alcotest.(check bool) "orphan-attribute violation" true
    (List.exists
       (fun v -> v.Ag.Wellformed.rule = "orphan-attribute")
       r.Ag.Wellformed.violations)

let test_wellformed_orphan_with_default () =
  let ok : Ag.Wellformed.spec =
    {
      sp_name = "aspect";
      attrs =
        [
          {
            a_name = "depth";
            a_mode = Ag.Wellformed.Syn;
            a_autocopy = false;
            a_occurs = [ "E" ];
            a_owner = "aspect";
            a_default = true (* has a default equation: fine *);
          };
        ];
      prods = [];
    }
  in
  let r = Ag.Wellformed.check ~host:host_spec ok in
  Alcotest.(check bool) "default rescues orphan attribute" true
    r.Ag.Wellformed.passes

let test_wellformed_noninterference () =
  let bad : Ag.Wellformed.spec =
    {
      sp_name = "meddler";
      attrs = [];
      prods =
        [
          (* redefines a host attribute on a host production *)
          Ag.Wellformed.full_prod ~owner:"host" ~lhs:"T" ~children:[]
            ~defines:[ "value" ] "t_num";
        ];
    }
  in
  let r = Ag.Wellformed.check ~host:host_spec bad in
  Alcotest.(check bool) "non-interference violation" true
    (List.exists
       (fun v -> v.Ag.Wellformed.rule = "non-interference")
       r.Ag.Wellformed.violations)

let suite =
  [
    Alcotest.test_case "synthesized evaluation" `Quick test_basic_eval;
    Alcotest.test_case "inherited autocopy env" `Quick test_inherited_env;
    Alcotest.test_case "extension equation" `Quick test_extension_equation;
    Alcotest.test_case "forwarding" `Quick test_forwarding;
    Alcotest.test_case "missing equation detected" `Quick test_missing_equation;
    Alcotest.test_case "default (collection) equations" `Quick
      test_default_equation;
    Alcotest.test_case "merge rejects duplicate equations" `Quick
      test_merge_conflict;
    Alcotest.test_case "well-definedness: pass" `Quick test_wellformed_pass;
    Alcotest.test_case "well-definedness: forwarding" `Quick
      test_wellformed_forwarding_pass;
    Alcotest.test_case "well-definedness: missing equation" `Quick
      test_wellformed_missing_equation;
    Alcotest.test_case "well-definedness: orphan attribute" `Quick
      test_wellformed_orphan_attr;
    Alcotest.test_case "well-definedness: default rescues orphan" `Quick
      test_wellformed_orphan_with_default;
    Alcotest.test_case "well-definedness: non-interference" `Quick
      test_wellformed_noninterference;
  ]
