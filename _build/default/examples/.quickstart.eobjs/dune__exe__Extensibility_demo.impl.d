examples/extensibility_demo.ml: Ag Cminus Driver Ext_tuples Fmt Grammar Interp List
