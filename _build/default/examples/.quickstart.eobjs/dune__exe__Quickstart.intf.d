examples/quickstart.mli:
