examples/quickstart.ml: Driver Eddy Filename Fmt Grammar Interp List Runtime Sys
