examples/eddy_scoring.ml: Array Driver Eddy Filename Fmt Interp List Runtime String Sys
