examples/extensibility_demo.mli:
