examples/transform_tuning.mli:
