examples/conncomp_map.mli:
