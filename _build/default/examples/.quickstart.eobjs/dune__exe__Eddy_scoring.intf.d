examples/eddy_scoring.mli:
