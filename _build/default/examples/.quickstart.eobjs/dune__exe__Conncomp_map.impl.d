examples/conncomp_map.ml: Array Driver Eddy Filename Fmt Hashtbl Interp List Runtime Sys
