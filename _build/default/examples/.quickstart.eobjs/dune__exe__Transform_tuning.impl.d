examples/transform_tuning.ml: Array Driver Eddy Filename Fmt Interp List Runtime Sys Unix
