(* Quickstart: compile and run the paper's Fig 1 — the temporal-mean
   program written with matrix extensions — and show the plain parallel C
   it translates to (Fig 3).

     dune exec examples/quickstart.exe
*)

let () =
  Fmt.pr "=== mmc quickstart: the Fig 1 temporal-mean program ===@.@.";
  (* 1. Pick extensions and compose the translator (§II). *)
  let c = Driver.compose [ Driver.matrix; Driver.refptr ] in
  Fmt.pr "Composed host + {matrix, refptr}; composition analyses:@.";
  List.iter
    (fun r -> Fmt.pr "  %a@." Grammar.Determinism.pp_report r)
    c.Driver.determinism_reports;
  Fmt.pr "@.";

  (* 2. The extended-C source (Fig 1). *)
  let src = Eddy.Programs.fig1_temporal_mean in
  Fmt.pr "Input program:%s@." src;

  (* 3. Provide the input matrix (a small synthetic SSH cube). *)
  let cube, _truth =
    Eddy.Ssh_gen.generate ~lat:8 ~lon:10 ~time:12 ~n_eddies:2 ~seed:1 ()
  in
  let dir = Filename.temp_file "mmc_quickstart" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Interp.Eval.provide_input ~dir "ssh.data" cube;

  (* 4. Run it on the parallel runtime. *)
  Runtime.Rc.reset ();
  (match Driver.run ~dir c src [] with
  | Driver.Ok_ _ -> ()
  | Driver.Failed ds ->
      Fmt.epr "compilation failed:@.%s@." (Driver.diags_to_string ds);
      exit 1);
  let means = Interp.Eval.fetch_output ~dir "means.data" in
  Fmt.pr "Computed means: %a@." Runtime.Ndarray.pp means;
  Fmt.pr "Live allocations after the run (refcounting check): %d@.@."
    (Runtime.Rc.live_count ());

  (* 5. Show the generated plain C (the Fig 3 loop nest). *)
  match Driver.compile_to_c c src with
  | Driver.Ok_ ctext ->
      Fmt.pr "=== generated plain C (cf. Fig 3) ===@.%s@." ctext
  | Driver.Failed ds ->
      Fmt.epr "emit failed:@.%s@." (Driver.diags_to_string ds);
      exit 1
