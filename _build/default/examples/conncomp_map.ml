(* Fig 4/5: map a connected-component labelling function over every time
   frame of an SSH cube with matrixMap, after logical-index filtering by
   date — and cross-check each frame against the native union-find
   labelling.

     dune exec examples/conncomp_map.exe
*)

module Nd = Runtime.Ndarray
module S = Runtime.Scalar

let () =
  Fmt.pr "=== connected components over time with matrixMap (Fig 4/5) ===@.@.";
  let lat = 14 and lon = 18 and time = 6 in
  let cube, _ =
    Eddy.Ssh_gen.generate ~lat ~lon ~time ~n_eddies:3 ~seed:17 ()
  in
  let dates = Nd.init_int [| time |] (fun ix -> 1012000 + ix.(0)) in
  let c = Driver.compose [ Driver.matrix; Driver.refptr ] in
  let dir = Filename.temp_file "mmc_cc" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Interp.Eval.provide_input ~dir "ssh.data" cube;
  Interp.Eval.provide_input ~dir "dates.data" dates;
  Runtime.Rc.reset ();
  Fmt.pr "Input program:%s@." Eddy.Programs.fig4_conncomp;
  (match Driver.run ~dir c Eddy.Programs.fig4_conncomp [] with
  | Driver.Ok_ _ -> ()
  | Driver.Failed ds ->
      Fmt.epr "failed:@.%s@." (Driver.diags_to_string ds);
      exit 1);
  let labels = Interp.Eval.fetch_output ~dir "eddyLabels.data" in
  Fmt.pr "Label cube: %s, leaks: %d@.@."
    (Runtime.Shape.to_string (Nd.shape labels))
    (Runtime.Rc.live_count ());
  for t = 0 to time - 1 do
    let fr = Eddy.Ssh_gen.frame cube t in
    let mask = Nd.cmp_scalar S.Lt fr (S.F (-0.25)) ~scalar_left:false in
    let oracle = Eddy.Conncomp.label mask in
    let n_oracle = Eddy.Conncomp.count_components oracle in
    (* count distinct labels produced by the translated program *)
    let seen = Hashtbl.create 8 in
    for i = 0 to lat - 1 do
      for j = 0 to lon - 1 do
        let l = S.to_int (Nd.get labels [| i; j; t |]) in
        if l > 0 then Hashtbl.replace seen l ()
      done
    done;
    Fmt.pr "frame t=%d: translated program found %d component(s), union-find oracle %d@."
      t (Hashtbl.length seen) n_oracle
  done;
  (* eddy-like filtering on the middle frame *)
  let fr = Eddy.Ssh_gen.frame cube (time / 2) in
  let dets = Eddy.Conncomp.detect_frame ~threshold:(-0.25) fr in
  Fmt.pr "@.Eddy-like components at t=%d:@." (time / 2);
  List.iter
    (fun (cmp : Eddy.Conncomp.component) ->
      let ci, cj = cmp.Eddy.Conncomp.centroid in
      Fmt.pr "  label %d: %d cells, centroid (%.1f, %.1f)@."
        cmp.Eddy.Conncomp.c_label cmp.Eddy.Conncomp.cells ci cj)
    dets
