(* §II/§VI: the extensibility workflow.  A programmer picks extensions the
   way they pick libraries; the system runs the modular determinism and
   well-definedness analyses and composes a working translator — or
   explains precisely why a selection is rejected.

     dune exec examples/extensibility_demo.exe
*)

let show_selection name sel =
  Fmt.pr "--- selecting {%s} ---@." name;
  match Driver.compose sel with
  | c ->
      List.iter
        (fun r -> Fmt.pr "  %a@." Grammar.Determinism.pp_report r)
        c.Driver.determinism_reports;
      List.iter
        (fun r -> Fmt.pr "  %a@." Ag.Wellformed.pp_report r)
        c.Driver.ag_reports;
      Fmt.pr "  composed parser: %d LALR(1) states, %d terminals@.@."
        c.Driver.table.Grammar.Lalr.n_states
        c.Driver.table.Grammar.Lalr.g.Grammar.Analysis.n_terms
  | exception Driver.Compose_failed msg ->
      Fmt.pr "  REJECTED: %s@.@." msg

let () =
  Fmt.pr "=== composable language extensions (§II, §VI) ===@.@.";
  show_selection "" [];
  show_selection "matrix" [ Driver.matrix ];
  show_selection "matrix, transform" [ Driver.matrix; Driver.transform ];
  show_selection "matrix, transform, refptr" Driver.all_extensions;

  (* The paper's tuples story: it fails isComposable, so it ships inside
     the host instead of as a selectable extension. *)
  Fmt.pr "--- the tuples extension against the bare host (§VI-A) ---@.";
  let r =
    Grammar.Determinism.check Cminus.Syntax.fragment
      Ext_tuples.Tuples_ext.grammar
  in
  Fmt.pr "  %a@.@." Grammar.Determinism.pp_report r;
  Fmt.pr
    "  ⇒ as in the paper, tuples are \"packaged as part of the host \
     language\".@.@.";

  (* A deliberately broken extension: steals a host keyword as its marking
     terminal and conflicts with host syntax. *)
  let rogue : Grammar.Cfg.t =
    {
      Grammar.Cfg.name = "rogue";
      terminals = [ Grammar.Cfg.keyword ~owner:"rogue" "KW_if2" "if" ];
      layout = [];
      productions =
        [
          Grammar.Cfg.production ~owner:"rogue" ~name:"prim_if" "Primary"
            [ Grammar.Cfg.T "KW_if2"; Grammar.Cfg.N "E" ];
        ];
      start = None;
    }
  in
  Fmt.pr "--- a rogue extension reusing the host's `if` keyword ---@.";
  let r = Grammar.Determinism.check Driver.effective_host rogue in
  Fmt.pr "  %a@.@." Grammar.Determinism.pp_report r;

  (* And the programmer-facing outcome: composition refuses politely. *)
  Fmt.pr "--- programs in the composed language ---@.";
  let c = Driver.compose Driver.all_extensions in
  let src =
    {|
int main() {
  Matrix int <1> v = init(Matrix int <1>, 8);
  for (int i = 0; i < 8; i++) { v[i] = i; }
  int total = with ([0] <= [i] < [8]) fold (+, 0, v[i]);
  return total;
}
|}
  in
  (match Driver.run c src [] with
  | Driver.Ok_ v -> Fmt.pr "  program result: %a@." Interp.Eval.pp_value v
  | Driver.Failed ds -> Fmt.pr "  failed: %s@." (Driver.diags_to_string ds));
  Fmt.pr "@.Done.@."
