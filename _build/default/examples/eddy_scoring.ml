(* The ocean-eddy application (§IV): generate a synthetic SSH cube with
   planted eddies, run the Fig 8 temporal-scoring program through the
   translator, and compare the translated program's output with the native
   reference implementation and the planted ground truth.

     dune exec examples/eddy_scoring.exe -- [--dump-field]
*)

module Nd = Runtime.Ndarray
module S = Runtime.Scalar

let () =
  let dump_field = Array.exists (( = ) "--dump-field") Sys.argv in
  Fmt.pr "=== ocean-eddy temporal scoring (Fig 7/8) ===@.@.";
  let lat = 12 and lon = 16 and time = 48 in
  let cube, truth =
    Eddy.Ssh_gen.generate ~lat ~lon ~time ~n_eddies:2 ~seed:33 ()
  in
  Fmt.pr "Synthetic SSH cube: %dx%dx%d, %d planted eddies@." lat lon time
    (List.length truth.Eddy.Ssh_gen.eddies);
  if dump_field then begin
    Fmt.pr "@.SSH field at t=%d (deep = dark, cf. the Fig 6 image):@."
      (time / 2);
    print_string (Eddy.Ssh_gen.render_frame (Eddy.Ssh_gen.frame cube (time / 2)))
  end;

  (* A sample time series under an eddy track (the Fig 7 signature). *)
  (match truth.Eddy.Ssh_gen.eddies with
  | e :: _ -> (
      match Eddy.Ssh_gen.position e ((e.Eddy.Ssh_gen.t_start + e.Eddy.Ssh_gen.t_end) / 2) with
      | Some (ei, ej) ->
          let i = int_of_float ei and j = int_of_float ej in
          let i = max 0 (min (lat - 1) i) and j = max 0 (min (lon - 1) j) in
          Fmt.pr "@.SSH time series at (%d,%d), under an eddy track:@." i j;
          for k = 0 to time - 1 do
            let v = S.to_float (Nd.get cube [| i; j; k |]) in
            let bar = String.make (max 0 (int_of_float ((v +. 1.5) *. 18.))) '#' in
            Fmt.pr "  t=%2d %6.3f %s@." k v bar
          done
      | None -> ())
  | [] -> ());

  (* Run the Fig 8 program through the extensible translator. *)
  let c = Driver.compose [ Driver.matrix; Driver.refptr ] in
  let dir = Filename.temp_file "mmc_eddy" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Interp.Eval.provide_input ~dir "ssh.data" cube;
  Runtime.Rc.reset ();
  (match Driver.run ~dir c Eddy.Programs.fig8_scoring [] with
  | Driver.Ok_ _ -> ()
  | Driver.Failed ds ->
      Fmt.epr "failed:@.%s@." (Driver.diags_to_string ds);
      exit 1);
  let scores = Interp.Eval.fetch_output ~dir "temporalScores.data" in
  Fmt.pr "@.Translated Fig 8 ran; leaks: %d@." (Runtime.Rc.live_count ());

  (* Cross-check against the native reference. *)
  let oracle = Eddy.Score.score_cube cube in
  Fmt.pr "Matches native scoring oracle: %b@."
    (Nd.approx_equal ~eps:1e-3 scores oracle);

  (* Do high scores coincide with the planted eddies? *)
  Fmt.pr "@.Top-scoring grid points (i, j, t, score):@.";
  List.iter
    (fun (i, j, t, v) -> Fmt.pr "  (%2d, %2d, t=%2d)  %8.3f@." i j t v)
    (Eddy.Score.top_points scores 5);
  let near_truth (i, j, t) =
    List.exists
      (fun e ->
        match Eddy.Ssh_gen.position e t with
        | Some (ei, ej) ->
            sqrt (((float_of_int i -. ei) ** 2.) +. ((float_of_int j -. ej) ** 2.))
            < 3.
        | None -> false)
      truth.Eddy.Ssh_gen.eddies
  in
  let top = Eddy.Score.top_points scores 5 in
  let hits = List.length (List.filter (fun (i, j, t, _) -> near_truth (i, j, t)) top) in
  Fmt.pr "@.%d/5 of the top scores lie on planted eddy tracks.@." hits
