(* §V: explicit program transformations.  Shows the same with-loop kernel
   lowered (a) untransformed (Fig 3), (b) after `split j by 4` (Fig 10),
   (c) after `vectorize jin. parallelize i` (Fig 11) — then times a sweep
   of transformation variants so "programmers can experiment with
   different loop structures in their search for higher performance".

     dune exec examples/transform_tuning.exe
*)

module Nd = Runtime.Ndarray

let c = Driver.compose [ Driver.matrix; Driver.transform; Driver.refptr ]

let emit src =
  match Driver.compile_to_c c src with
  | Driver.Ok_ text -> text
  | Driver.Failed ds ->
      Fmt.epr "emit failed:@.%s@." (Driver.diags_to_string ds);
      exit 1

let body_of label text =
  Fmt.pr "=== %s ===@.%s@." label text

let time_run ?pool src cube =
  let dir = Filename.temp_file "mmc_tt" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Interp.Eval.provide_input ~dir "ssh.data" cube;
  let t0 = Unix.gettimeofday () in
  (match Driver.run ~dir ?pool c src [] with
  | Driver.Ok_ _ -> ()
  | Driver.Failed ds ->
      Fmt.epr "run failed:@.%s@." (Driver.diags_to_string ds);
      exit 1);
  Unix.gettimeofday () -. t0

let () =
  body_of "untransformed (cf. Fig 3)" (emit Eddy.Programs.fig1_temporal_mean);
  body_of "split j by 4, jin, jout (cf. Fig 10)"
    (emit (Eddy.Programs.fig9_with_script "split j by 4, jin, jout"));
  body_of "split + vectorize + parallelize (cf. Fig 11)"
    (emit Eddy.Programs.fig9_transformed);

  (* Variant sweep: relative timings on this machine.  The paper
     deliberately reports no absolute numbers — "the resulting performance
     is really up to the programmer to choose the appropriate set of
     transformations". *)
  let cube =
    Nd.init_float [| 48; 64; 32 |] (fun ix ->
        float_of_int ((ix.(0) * 7) + (ix.(1) * 3) + ix.(2)) /. 100.)
  in
  let variants =
    [
      ("baseline", Eddy.Programs.fig1_temporal_mean);
      ("split j by 4", Eddy.Programs.fig9_with_script "split j by 4, jin, jout");
      ( "split + vectorize",
        Eddy.Programs.fig9_with_script "split j by 4, jin, jout. vectorize jin" );
      ( "tile i,j by 8",
        Eddy.Programs.fig9_with_script "tile i, j by 8" );
      ( "interchange i,j",
        Eddy.Programs.fig9_with_script "interchange i, j" );
      ("fig 9 full script", Eddy.Programs.fig9_transformed);
    ]
  in
  Fmt.pr "=== variant sweep (wall-clock, interpreted IR) ===@.";
  Runtime.Pool.with_pool 2 (fun pool ->
      List.iter
        (fun (label, src) ->
          let t = time_run ~pool src cube in
          Fmt.pr "  %-22s %8.1f ms@." label (t *. 1000.))
        variants)
