(** Diagnostics: errors, warnings and notes produced by every phase of the
    translator (scanning, parsing, semantic analysis, lowering,
    transformation binding checks, composability analyses).

    A phase returns a list of diagnostics rather than raising, so the driver
    can collect errors from several extensions' analyses before giving up —
    mirroring how Silver collects the [errors] attribute over a whole tree. *)

type severity = Error | Warning | Note

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

type t = {
  severity : severity;
  span : Pos.span;
  phase : string;  (** e.g. "parse", "typecheck", "matrix", "transform" *)
  message : string;
}

let make ?(severity = Error) ~phase ~span message =
  { severity; span; phase; message }

let error ~phase ~span fmt =
  Format.kasprintf (fun message -> make ~severity:Error ~phase ~span message) fmt

let warning ~phase ~span fmt =
  Format.kasprintf
    (fun message -> make ~severity:Warning ~phase ~span message)
    fmt

let note ~phase ~span fmt =
  Format.kasprintf (fun message -> make ~severity:Note ~phase ~span message) fmt

let is_error d = d.severity = Error
let has_errors ds = List.exists is_error ds

let pp ppf d =
  Fmt.pf ppf "%a: %s [%s]: %s" Pos.pp_span d.span
    (severity_to_string d.severity)
    d.phase d.message

let to_string d = Fmt.str "%a" pp d

(** Render a diagnostic list, one per line, errors first. *)
let pp_list ppf ds =
  let rank d = match d.severity with Error -> 0 | Warning -> 1 | Note -> 2 in
  let sorted = List.stable_sort (fun a b -> Int.compare (rank a) (rank b)) ds in
  Fmt.pf ppf "%a" (Fmt.list ~sep:Fmt.cut pp) sorted

exception Fatal of t
(** Raised only for internal invariant violations that indicate a bug in the
    translator itself (never for user errors in the input program). *)

let fatal ~phase ~span fmt =
  Format.kasprintf
    (fun message -> raise (Fatal (make ~severity:Error ~phase ~span message)))
    fmt
