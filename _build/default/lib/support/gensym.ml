(** Fresh-name generation for lowering passes.

    The with-loop and matrixMap lowerings introduce index variables,
    accumulators and temporaries; the split/tile transformations introduce
    [jin]/[jout]-style indices when the programmer did not name them.  Names
    are made collision-free by a reserved prefix ["__mm_"] that the CMINUS
    lexer rejects in user programs. *)

type t = { mutable next : int; prefix : string }

let reserved_prefix = "__mm_"
let create ?(prefix = reserved_prefix) () = { next = 0; prefix }

(** [fresh g hint] returns a new unique name such as ["__mm_acc3"]. *)
let fresh g hint =
  let n = g.next in
  g.next <- n + 1;
  Printf.sprintf "%s%s%d" g.prefix hint n

(** [is_reserved name] is true when [name] could collide with generated
    temporaries and must be rejected by the scanner. *)
let is_reserved name =
  String.length name >= String.length reserved_prefix
  && String.sub name 0 (String.length reserved_prefix) = reserved_prefix
