lib/support/gensym.ml: Printf String
