lib/support/pos.ml: Char Fmt Int String
