lib/support/diag.ml: Fmt Format Int List Pos
