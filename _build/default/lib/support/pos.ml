(** Source positions and spans.

    Every token and syntax-tree node carries a {!span} so diagnostics can
    point back into the extended-C source text. *)

type t = {
  line : int;  (** 1-based line number *)
  col : int;  (** 1-based column number *)
  offset : int;  (** 0-based byte offset into the source buffer *)
}

let start = { line = 1; col = 1; offset = 0 }

(** [advance p c] is the position immediately after reading character [c]
    at position [p]. Newlines reset the column and bump the line. *)
let advance p c =
  if Char.equal c '\n' then
    { line = p.line + 1; col = 1; offset = p.offset + 1 }
  else { p with col = p.col + 1; offset = p.offset + 1 }

(** [advance_string p s] advances [p] over every character of [s]. *)
let advance_string p s = String.fold_left advance p s

let compare a b = Int.compare a.offset b.offset
let equal a b = a.offset = b.offset
let pp ppf p = Fmt.pf ppf "%d:%d" p.line p.col
let to_string p = Fmt.str "%a" pp p

type span = { left : t; right : t }
(** A half-open region of source text: [left] is the first character,
    [right] is one past the last. *)

let span left right = { left; right }
let dummy_span = { left = start; right = start }

(** Smallest span covering both arguments. *)
let merge a b =
  {
    left = (if compare a.left b.left <= 0 then a.left else b.left);
    right = (if compare a.right b.right >= 0 then a.right else b.right);
  }

let pp_span ppf s =
  if s.left.line = s.right.line then
    Fmt.pf ppf "%d:%d-%d" s.left.line s.left.col s.right.col
  else Fmt.pf ppf "%a-%a" pp s.left pp s.right

let span_to_string s = Fmt.str "%a" pp_span s
