lib/parser/tree.ml: Fmt Grammar Lexer List Support
