lib/parser/driver.ml: Array Fmt Grammar Int Lexer List Option Printf Result Set String Support Tree
