(** Generic concrete syntax trees.

    The LR driver produces these; each language spec then builds its typed
    AST from them by dispatching on production names — the same separation
    Silver keeps between concrete syntax and abstract syntax.  Keeping the
    tree generic lets the attribute-grammar engine ({!Ag}) decorate parse
    trees of {i any} composed language. *)

type t =
  | Node of Grammar.Cfg.production * t list * Support.Pos.span
  | Leaf of Lexer.Token.t

let span = function
  | Node (_, _, sp) -> sp
  | Leaf tok -> tok.Lexer.Token.span

let prod_name = function
  | Node (p, _, _) -> p.Grammar.Cfg.p_name
  | Leaf tok -> tok.Lexer.Token.term

(** Children of a node ([] for leaves). *)
let children = function Node (_, kids, _) -> kids | Leaf _ -> []

(** [leaf_text t] — the lexeme when [t] is a leaf. *)
let leaf_text = function
  | Leaf tok -> Some tok.Lexer.Token.lexeme
  | Node _ -> None

let rec pp ppf = function
  | Leaf tok -> Lexer.Token.pp ppf tok
  | Node (p, kids, _) ->
      Fmt.pf ppf "@[<hv 2>(%s%a)@]" p.Grammar.Cfg.p_name
        (Fmt.list ~sep:Fmt.nop (fun ppf k -> Fmt.pf ppf "@ %a" pp k))
        kids

let to_string t = Fmt.str "%a" pp t

(** Flatten back to the token sequence (useful for golden tests). *)
let rec tokens = function
  | Leaf tok -> [ tok ]
  | Node (_, kids, _) -> List.concat_map tokens kids
