(** Regular-expression abstract syntax and a parser for the concrete syntax
    used in terminal declarations.

    Copper-style terminal declarations attach a regex to every terminal
    symbol; this module provides the subset needed for a C-like language:

    - literal characters, with backslash escapes ([\n], [\t], [\r], [\\],
      and [\c] for any punctuation character [c])
    - [.] matching any character except newline
    - character classes [[a-z_]] and negated classes [[^0-9]]
    - grouping [( )], alternation [|], and the postfix operators
      [*], [+], [?]. *)

type t =
  | Empty  (** matches the empty string *)
  | Char of char
  | Any  (** [.] — any character except ['\n'] *)
  | Class of bool * (char * char) list
      (** [Class (negated, ranges)] — a (possibly negated) set of ranges *)
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t

let rec pp ppf = function
  | Empty -> Fmt.string ppf "ε"
  | Char c -> Fmt.pf ppf "%C" c
  | Any -> Fmt.string ppf "."
  | Class (neg, ranges) ->
      Fmt.pf ppf "[%s%a]"
        (if neg then "^" else "")
        (Fmt.list ~sep:Fmt.nop (fun ppf (a, b) ->
             if a = b then Fmt.pf ppf "%c" a else Fmt.pf ppf "%c-%c" a b))
        ranges
  | Seq (a, b) -> Fmt.pf ppf "%a%a" pp a pp b
  | Alt (a, b) -> Fmt.pf ppf "(%a|%a)" pp a pp b
  | Star a -> Fmt.pf ppf "(%a)*" pp a
  | Plus a -> Fmt.pf ppf "(%a)+" pp a
  | Opt a -> Fmt.pf ppf "(%a)?" pp a

let to_string r = Fmt.str "%a" pp r

(** [literal s] is the regex matching exactly the string [s]. *)
let literal s =
  if String.length s = 0 then Empty
  else
    String.fold_left
      (fun acc c -> if acc = Empty then Char c else Seq (acc, Char c))
      Empty s

(** [seq rs] sequences a list of regexes. *)
let seq rs = List.fold_left (fun acc r -> Seq (acc, r)) Empty rs

(** [alt rs] is the alternation of a non-empty list of regexes. *)
let alt = function
  | [] -> invalid_arg "Regexe.Syntax.alt: empty"
  | r :: rs -> List.fold_left (fun acc x -> Alt (acc, x)) r rs

exception Parse_error of string * int
(** [Parse_error (msg, offset)] — malformed regex concrete syntax. *)

(* Recursive-descent parser over the concrete syntax.  Grammar:
     alt    ::= seq ('|' seq)*
     seq    ::= postfix*
     postfix::= atom ('*' | '+' | '?')*
     atom   ::= '(' alt ')' | '[' class ']' | '.' | escape | plain-char *)
let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Parse_error (msg, !pos)) in
  let parse_escape () =
    advance ();
    match peek () with
    | None -> fail "dangling backslash"
    | Some c ->
        advance ();
        let c' =
          match c with
          | 'n' -> '\n'
          | 't' -> '\t'
          | 'r' -> '\r'
          | '0' -> '\000'
          | c -> c
        in
        Char c'
  in
  let parse_class () =
    advance ();
    let negated =
      match peek () with
      | Some '^' ->
          advance ();
          true
      | _ -> false
    in
    let ranges = ref [] in
    let read_class_char () =
      match peek () with
      | None -> fail "unterminated character class"
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "dangling backslash in class"
          | Some c ->
              advance ();
              let c' =
                match c with
                | 'n' -> '\n'
                | 't' -> '\t'
                | 'r' -> '\r'
                | '0' -> '\000'
                | c -> c
              in
              c')
      | Some c ->
          advance ();
          c
    in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated character class"
      | Some ']' -> advance ()
      | Some _ ->
          let lo = read_class_char () in
          (match peek () with
          | Some '-' when !pos + 1 < n && s.[!pos + 1] <> ']' ->
              advance ();
              let hi = read_class_char () in
              if Char.code hi < Char.code lo then fail "inverted class range";
              ranges := (lo, hi) :: !ranges
          | _ -> ranges := (lo, lo) :: !ranges);
          loop ()
    in
    loop ();
    Class (negated, List.rev !ranges)
  in
  let rec parse_alt () =
    let left = parse_seq () in
    match peek () with
    | Some '|' ->
        advance ();
        Alt (left, parse_alt ())
    | _ -> left
  and parse_seq () =
    let rec loop acc =
      match peek () with
      | None | Some '|' | Some ')' -> acc
      | Some _ ->
          let f = parse_postfix () in
          loop (if acc = Empty then f else Seq (acc, f))
    in
    loop Empty
  and parse_postfix () =
    let a = parse_atom () in
    let rec loop a =
      match peek () with
      | Some '*' ->
          advance ();
          loop (Star a)
      | Some '+' ->
          advance ();
          loop (Plus a)
      | Some '?' ->
          advance ();
          loop (Opt a)
      | _ -> a
    in
    loop a
  and parse_atom () =
    match peek () with
    | None -> fail "expected atom"
    | Some '(' -> (
        advance ();
        let inner = parse_alt () in
        match peek () with
        | Some ')' ->
            advance ();
            inner
        | _ -> fail "unbalanced parenthesis")
    | Some '[' -> parse_class ()
    | Some '.' ->
        advance ();
        Any
    | Some '\\' -> parse_escape ()
    | Some ('*' | '+' | '?' | ')' | '|' | ']') ->
        fail "misplaced regex operator"
    | Some c ->
        advance ();
        Char c
  in
  let r = parse_alt () in
  if !pos <> n then fail "trailing characters" else r

(** [char_matches re_atom c] — does a single-character atom accept [c]?
    Used by the NFA construction for its character-set edges. *)
let atom_matches atom c =
  match atom with
  | Char c' -> Char.equal c c'
  | Any -> not (Char.equal c '\n')
  | Class (negated, ranges) ->
      let inside = List.exists (fun (lo, hi) -> c >= lo && c <= hi) ranges in
      if negated then not inside else inside
  | _ -> invalid_arg "atom_matches: not an atom"
