(** Thompson construction: regex → nondeterministic finite automaton.

    States are dense integers.  Edges are either epsilon edges or labelled
    with a single-character predicate (a regex atom: [Char], [Any] or
    [Class]), which keeps class edges compact instead of expanding them to
    up-to-256 character edges. *)

type state = int

type t = {
  start : state;
  accept : state;
  epsilon : state list array;  (** epsilon successors per state *)
  labelled : (Syntax.t * state) list array;  (** atom-labelled successors *)
  n_states : int;
}

(* Internal mutable builder. *)
type builder = {
  mutable next : int;
  mutable eps : (state * state) list;
  mutable lab : (state * Syntax.t * state) list;
}

let new_state b =
  let s = b.next in
  b.next <- s + 1;
  s

let add_eps b src dst = b.eps <- (src, dst) :: b.eps
let add_lab b src atom dst = b.lab <- (src, atom, dst) :: b.lab

(** [of_regex r] compiles [r] into an NFA with a single accept state. *)
let of_regex (r : Syntax.t) : t =
  let b = { next = 0; eps = []; lab = [] } in
  (* Returns (entry, exit) fragment states. *)
  let rec build r =
    match r with
    | Syntax.Empty ->
        let s = new_state b in
        (s, s)
    | Syntax.Char _ | Syntax.Any | Syntax.Class _ ->
        let entry = new_state b and exit = new_state b in
        add_lab b entry r exit;
        (entry, exit)
    | Syntax.Seq (x, y) ->
        let ex, xx = build x in
        let ey, xy = build y in
        add_eps b xx ey;
        (ex, xy)
    | Syntax.Alt (x, y) ->
        let entry = new_state b and exit = new_state b in
        let ex, xx = build x in
        let ey, xy = build y in
        add_eps b entry ex;
        add_eps b entry ey;
        add_eps b xx exit;
        add_eps b xy exit;
        (entry, exit)
    | Syntax.Star x ->
        let entry = new_state b and exit = new_state b in
        let ex, xx = build x in
        add_eps b entry ex;
        add_eps b entry exit;
        add_eps b xx ex;
        add_eps b xx exit;
        (entry, exit)
    | Syntax.Plus x -> build (Syntax.Seq (x, Syntax.Star x))
    | Syntax.Opt x -> build (Syntax.Alt (x, Syntax.Empty))
  in
  let start, accept = build r in
  let epsilon = Array.make b.next [] in
  let labelled = Array.make b.next [] in
  List.iter (fun (s, d) -> epsilon.(s) <- d :: epsilon.(s)) b.eps;
  List.iter (fun (s, a, d) -> labelled.(s) <- (a, d) :: labelled.(s)) b.lab;
  { start; accept; epsilon; labelled; n_states = b.next }

(** [eps_closure nfa states] — set of states reachable from [states] via
    epsilon edges (including [states] themselves), as a sorted list. *)
let eps_closure nfa states =
  let seen = Hashtbl.create 16 in
  let rec go s =
    if not (Hashtbl.mem seen s) then begin
      Hashtbl.add seen s ();
      List.iter go nfa.epsilon.(s)
    end
  in
  List.iter go states;
  Hashtbl.fold (fun s () acc -> s :: acc) seen [] |> List.sort Int.compare

(** [step nfa states c] — states reachable by consuming character [c]
    (before epsilon closure). *)
let step nfa states c =
  List.concat_map
    (fun s ->
      List.filter_map
        (fun (atom, d) -> if Syntax.atom_matches atom c then Some d else None)
        nfa.labelled.(s))
    states
  |> List.sort_uniq Int.compare

(** Reference matcher used by property tests: does [nfa] accept exactly the
    whole string [s]?  Quadratic; the DFA is the production path. *)
let accepts nfa s =
  let cur = ref (eps_closure nfa [ nfa.start ]) in
  String.iter (fun c -> cur := eps_closure nfa (step nfa !cur c)) s;
  List.mem nfa.accept !cur
