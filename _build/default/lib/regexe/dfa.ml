(** Subset construction: NFA → deterministic automaton with dense 256-way
    transition rows, plus the longest-match scan used by the context-aware
    scanner.

    The scanner keeps one DFA per terminal; at scan time it runs only the
    DFAs of terminals that are *valid* in the current LR parse state. *)

type t = {
  trans : int array array;  (** [trans.(state).(char)] = next state or -1 *)
  accepting : bool array;
  start : int;
}

let reject = -1

(** [of_nfa nfa] determinizes [nfa]. *)
let of_nfa (nfa : Nfa.t) : t =
  let module M = Map.Make (struct
    type t = int list

    let compare = compare
  end) in
  let state_ids = ref M.empty in
  let rows = ref [] (* (id, int array) in reverse id order *) in
  let accepting = ref [] in
  let next_id = ref 0 in
  let rec intern set =
    match M.find_opt set !state_ids with
    | Some id -> id
    | None ->
        let id = !next_id in
        incr next_id;
        state_ids := M.add set id !state_ids;
        let row = Array.make 256 reject in
        rows := (id, row) :: !rows;
        accepting := (id, List.mem nfa.Nfa.accept set) :: !accepting;
        (* Fill transitions for every input character. *)
        for c = 0 to 255 do
          let ch = Char.chr c in
          let tgt = Nfa.eps_closure nfa (Nfa.step nfa set ch) in
          if tgt <> [] then row.(c) <- intern tgt
        done;
        id
    in
  let start = intern (Nfa.eps_closure nfa [ nfa.Nfa.start ]) in
  let n = !next_id in
  let trans = Array.make n [||] in
  List.iter (fun (id, row) -> trans.(id) <- row) !rows;
  let acc = Array.make n false in
  List.iter (fun (id, a) -> acc.(id) <- a) !accepting;
  { trans; accepting = acc; start }

(** [of_regex r] compiles straight from regex syntax. *)
let of_regex r = of_nfa (Nfa.of_regex r)

(** [matches dfa s] — does [dfa] accept the whole string [s]? *)
let matches dfa s =
  let rec go state i =
    if state = reject then false
    else if i = String.length s then dfa.accepting.(state)
    else go dfa.trans.(state).(Char.code s.[i]) (i + 1)
  in
  go dfa.start 0

(** [longest_match dfa s pos] — length of the longest prefix of
    [s[pos..]] accepted by [dfa], or [None] if no prefix (not even a
    1-character one) is accepted.  Zero-length matches are deliberately
    not reported: a terminal that matches the empty string would make the
    scanner loop. *)
let longest_match dfa s pos =
  let n = String.length s in
  let best = ref None in
  let state = ref dfa.start in
  let i = ref pos in
  (try
     while !state <> reject && !i <= n do
       if dfa.accepting.(!state) && !i > pos then best := Some (!i - pos);
       if !i = n then raise Exit;
       state := dfa.trans.(!state).(Char.code s.[!i]);
       incr i
     done
   with Exit -> ());
  !best
