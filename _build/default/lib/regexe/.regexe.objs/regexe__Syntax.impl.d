lib/regexe/syntax.ml: Char Fmt List String
