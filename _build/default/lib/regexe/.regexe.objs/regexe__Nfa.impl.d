lib/regexe/nfa.ml: Array Hashtbl Int List String Syntax
