lib/regexe/dfa.ml: Array Char List Map Nfa String
