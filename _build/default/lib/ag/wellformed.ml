(** Modular well-definedness analysis for attribute-grammar specifications
    (§VI-B, [26]).

    "A challenge arises in that the composition of the extension AG
    specifications may not be well-defined (meaning some attributes do not
    have defining equations).  Silver has a modular well-definedness
    analysis … that extension designers can run on their extension.  It
    guarantees that if only extensions that pass this analysis are chosen,
    then the composition of them will be well defined."

    The analysis operates on {e declared} specifications: which attributes
    occur on which nonterminals, and which equations each production
    supplies.  Every fragment in this repository (host, tuples, matrix,
    transform, refptr) declares its AG spec alongside its hook
    implementation; the driver runs this analysis at composition time and
    the test suite checks both the passing specs and crafted failing
    ones.

    Conditions, for an extension E against host H:

    1. {b Complete synthesis}: every E production must define every
       synthesized attribute occurring on its LHS nonterminal — or
       {e forward} (the forward tree supplies the rest), or the attribute
       must have a default.  This is how extension constructs get their
       translation "for free" while still overriding analyses like
       [errors].
    2. {b Complete inheritance}: every nonterminal child of every E
       production must receive every inherited attribute occurring on it,
       either by an explicit equation or by autocopy.
    3. {b No orphan attributes}: an attribute E introduces may occur on a
       {e host} nonterminal only if it has a default equation — host
       productions, written without knowledge of E, cannot define it.
    4. {b No equation on foreign productions for foreign attributes}: E
       may not give an equation for an attribute it does not own on a
       production it does not own (two such extensions would collide —
       the same non-interference rule Silver enforces). *)

type mode = Syn | Inh

type attr_decl = {
  a_name : string;
  a_mode : mode;
  a_autocopy : bool;
  a_occurs : string list;  (** nonterminals it occurs on *)
  a_owner : string;
  a_default : bool;  (** has a default (collection/aspect) equation *)
}

type prod_decl = {
  p_name : string;
  p_lhs : string;
  p_children : string list;  (** nonterminal children, in order *)
  p_defines : string list;  (** synthesized attrs of the LHS it defines *)
  p_child_defines : (int * string) list;
      (** (child index, inherited attr) equations it supplies *)
  p_forwards : bool;
  p_owner : string;
}

type spec = {
  sp_name : string;
  attrs : attr_decl list;
  prods : prod_decl list;
}

type violation = { rule : string; detail : string }

type report = { extension : string; passes : bool; violations : violation list }

let pp_violation ppf v = Fmt.pf ppf "[%s] %s" v.rule v.detail

let pp_report ppf r =
  if r.passes then
    Fmt.pf ppf "AG spec %s: modular well-definedness PASSES" r.extension
  else
    Fmt.pf ppf "AG spec %s: modular well-definedness FAILS@.%a" r.extension
      (Fmt.list ~sep:Fmt.cut pp_violation)
      r.violations

(** Union of fragments (attribute occurrences merge; duplicate production
    declarations are an error handled by the grammar-level composition). *)
let compose (specs : spec list) : spec =
  {
    sp_name = String.concat "+" (List.map (fun s -> s.sp_name) specs);
    attrs = List.concat_map (fun s -> s.attrs) specs;
    prods = List.concat_map (fun s -> s.prods) specs;
  }

let attrs_on composed nt mode =
  List.filter
    (fun a -> a.a_mode = mode && List.mem nt a.a_occurs)
    composed.attrs

(** [check ~host ext] — run the modular analysis for [ext] against
    [host]. *)
let check ~(host : spec) (ext : spec) : report =
  let composed = compose [ host; ext ] in
  let violations = ref [] in
  let violate rule fmt =
    Format.kasprintf
      (fun detail -> violations := { rule; detail } :: !violations)
      fmt
  in
  let host_nts =
    List.sort_uniq String.compare
      (List.concat_map (fun p -> p.p_lhs :: p.p_children) host.prods)
  in
  let attr_by_name n = List.find_opt (fun a -> a.a_name = n) composed.attrs in
  (* 1 & 2: completeness of the extension's own productions. *)
  List.iter
    (fun p ->
      let syn_needed = attrs_on composed p.p_lhs Syn in
      List.iter
        (fun a ->
          let defined = List.mem a.a_name p.p_defines in
          if not (defined || p.p_forwards || a.a_default) then
            violate "complete-synthesis"
              "production %s does not define %s.%s and neither forwards nor \
               has a default"
              p.p_name p.p_lhs a.a_name)
        syn_needed;
      List.iteri
        (fun i child_nt ->
          let inh_needed = attrs_on composed child_nt Inh in
          List.iter
            (fun a ->
              let defined = List.mem_assoc i p.p_child_defines
                            && List.exists
                                 (fun (j, n) -> j = i && n = a.a_name)
                                 p.p_child_defines
              in
              let defined =
                defined
                || List.exists
                     (fun (j, n) -> j = i && n = a.a_name)
                     p.p_child_defines
              in
              if not (defined || a.a_autocopy) then
                violate "complete-inheritance"
                  "production %s does not supply inherited %s to child %d \
                   (<%s>)"
                  p.p_name a.a_name i child_nt)
            inh_needed)
        p.p_children)
    ext.prods;
  (* 3: extension attributes occurring on host nonterminals need defaults. *)
  List.iter
    (fun a ->
      if a.a_owner = ext.sp_name && a.a_mode = Syn && not a.a_default then
        List.iter
          (fun nt ->
            if List.mem nt host_nts then
              violate "orphan-attribute"
                "extension attribute %s occurs on host nonterminal <%s> \
                 without a default equation"
                a.a_name nt)
          a.a_occurs)
    ext.attrs;
  (* 4: no equations for foreign attributes on foreign productions. *)
  List.iter
    (fun p ->
      if p.p_owner = ext.sp_name then ()
      else
        List.iter
          (fun attr ->
            match attr_by_name attr with
            | Some a when a.a_owner <> ext.sp_name ->
                violate "non-interference"
                  "extension %s defines foreign attribute %s on foreign \
                   production %s"
                  ext.sp_name attr p.p_name
            | _ -> ())
          p.p_defines)
    ext.prods;
  let violations = List.rev !violations in
  { extension = ext.sp_name; passes = violations = []; violations }

(** Convenience: declare that a production defines the standard complement
    of host attributes (errors, type, translation) — used by fragments
    whose productions all follow the same pattern. *)
let full_prod ~owner ~lhs ~children ?(defines = []) ?(forwards = false)
    ?(child_defines = []) name =
  {
    p_name = name;
    p_lhs = lhs;
    p_children = children;
    p_defines = defines;
    p_child_defines = child_defines;
    p_forwards = forwards;
    p_owner = owner;
  }
