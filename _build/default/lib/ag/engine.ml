(** Attribute-grammar evaluation engine in the style of Silver (§VI-B).

    Works over the generic concrete-syntax trees produced by the LR driver,
    so a single engine decorates trees of {i any} composed language.
    Supported features, mirroring the ones the paper relies on:

    - {b synthesized} and {b inherited} attributes with demand-driven,
      memoised evaluation;
    - {b autocopy} inherited attributes (environments flow to children
      unless overridden), Silver's convention for [env]-like attributes;
    - {b forwarding}: an extension production may {i forward} to a tree of
      host-language constructs — any attribute the extension does not
      define explicitly is computed on the forward tree, which is how
      extension constructs obtain their translation "for free";
    - {b higher-order attributes} [25]: attribute values may themselves be
      trees, which can be decorated on demand with {!decorate} — the
      transformation extension of §V uses these to manipulate loop bodies.

    Attribute keys are typed via the standard universal-embedding trick, so
    user code never sees an untyped value. *)

type value = exn
(* Universal type: each attribute key carries its own private constructor. *)

type mode = Syn | Inh

type 'a attr = {
  a_name : string;
  a_mode : mode;
  a_autocopy : bool;
  inj : 'a -> value;
  prj : value -> 'a option;
}

(** [syn name] declares a synthesized attribute. *)
let syn (type a) name : a attr =
  let module M = struct
    exception E of a
  end in
  {
    a_name = name;
    a_mode = Syn;
    a_autocopy = false;
    inj = (fun x -> M.E x);
    prj = (function M.E x -> Some x | _ -> None);
  }

(** [inh ?autocopy name] declares an inherited attribute.  With
    [~autocopy:true], a child with no explicit defining equation receives
    its parent's value of the same attribute. *)
let inh (type a) ?(autocopy = false) name : a attr =
  let module M = struct
    exception E of a
  end in
  {
    a_name = name;
    a_mode = Inh;
    a_autocopy = autocopy;
    inj = (fun x -> M.E x);
    prj = (function M.E x -> Some x | _ -> None);
  }

(** A decorated tree node: a parse-tree node plus its attribution context. *)
type node = {
  tree : Parser.Tree.t;
  parent : (node * int) option;  (** parent node and our index within it *)
  spec : spec;
  syn_cache : (string, value) Hashtbl.t;
  inh_cache : (string, value) Hashtbl.t;
  mutable kids_memo : node array option;
  mutable fwd_memo : node option option;
}

and spec = {
  mutable syn_eqs : (string * string, node -> value) Hashtbl.t;
      (** (production, attribute) -> equation on the decorated node *)
  mutable inh_eqs : (string * string * int, node -> value) Hashtbl.t;
      (** (production, attribute, child index) -> equation *)
  mutable fwd_eqs : (string, node -> Parser.Tree.t) Hashtbl.t;
      (** production -> forward-tree constructor *)
  mutable defaults : (string, node -> value) Hashtbl.t;
      (** attribute -> default equation (collection-style fallbacks) *)
  sp_name : string;
}

exception
  Missing_equation of {
    production : string;
    attribute : string;
    site : string;  (** "syn" or "inh@i" *)
  }

let spec name =
  {
    syn_eqs = Hashtbl.create 64;
    inh_eqs = Hashtbl.create 64;
    fwd_eqs = Hashtbl.create 16;
    defaults = Hashtbl.create 16;
    sp_name = name;
  }

(** [merge base ext] — compose attribute-grammar fragments: the paper's
    "specifications of the host C language and the extensions are composed".
    Raises [Invalid_argument] if both define the same equation. *)
let merge (base : spec) (ext : spec) : spec =
  let s = spec (base.sp_name ^ "+" ^ ext.sp_name) in
  let copy_into tbl src what key_to_string =
    Hashtbl.iter
      (fun k v ->
        if Hashtbl.mem tbl k then
          invalid_arg
            (Printf.sprintf "Ag.merge: duplicate %s equation %s" what
               (key_to_string k));
        Hashtbl.replace tbl k v)
      src
  in
  copy_into s.syn_eqs base.syn_eqs "syn" (fun (p, a) -> p ^ "." ^ a);
  copy_into s.syn_eqs ext.syn_eqs "syn" (fun (p, a) -> p ^ "." ^ a);
  copy_into s.inh_eqs base.inh_eqs "inh" (fun (p, a, i) ->
      Printf.sprintf "%s.%s@%d" p a i);
  copy_into s.inh_eqs ext.inh_eqs "inh" (fun (p, a, i) ->
      Printf.sprintf "%s.%s@%d" p a i);
  copy_into s.fwd_eqs base.fwd_eqs "forward" Fun.id;
  copy_into s.fwd_eqs ext.fwd_eqs "forward" Fun.id;
  copy_into s.defaults base.defaults "default" Fun.id;
  copy_into s.defaults ext.defaults "default" Fun.id;
  s

(* --- registering equations --------------------------------------------- *)

(** [define_syn spec ~prod attr eq] — equation for [attr] on nodes built by
    production [prod]. *)
let define_syn sp ~prod (attr : 'a attr) (eq : node -> 'a) =
  assert (attr.a_mode = Syn);
  Hashtbl.replace sp.syn_eqs (prod, attr.a_name) (fun n -> attr.inj (eq n))

(** [define_inh spec ~prod ~child attr eq] — equation giving the value of
    inherited [attr] for child [child] of production [prod]. *)
let define_inh sp ~prod ~child (attr : 'a attr) (eq : node -> 'a) =
  assert (attr.a_mode = Inh);
  Hashtbl.replace sp.inh_eqs (prod, attr.a_name, child) (fun n ->
      attr.inj (eq n))

(** [define_forward spec ~prod f] — production [prod] forwards to the host
    tree computed by [f]; undefined attributes are evaluated there. *)
let define_forward sp ~prod f = Hashtbl.replace sp.fwd_eqs prod f

(** [define_default spec attr eq] — fallback equation used when a
    production has neither an explicit equation nor a forward. *)
let define_default sp (attr : 'a attr) (eq : node -> 'a) =
  Hashtbl.replace sp.defaults attr.a_name (fun n -> attr.inj (eq n))

(* --- decoration and evaluation ------------------------------------------ *)

let prod_name n = Parser.Tree.prod_name n.tree

let mk_node spec tree parent =
  {
    tree;
    parent;
    spec;
    syn_cache = Hashtbl.create 4;
    inh_cache = Hashtbl.create 4;
    kids_memo = None;
    fwd_memo = None;
  }

(** [decorate spec tree] — root decoration of a parse tree. *)
let decorate spec tree = mk_node spec tree None

(** Decorated children (memoised). *)
let children n =
  match n.kids_memo with
  | Some ks -> ks
  | None ->
      let ks =
        Array.of_list
          (List.mapi
             (fun i t -> mk_node n.spec t (Some (n, i)))
             (Parser.Tree.children n.tree))
      in
      n.kids_memo <- Some ks;
      ks

let child n i = (children n).(i)

(** The forward tree of [n], decorated with [n]'s parent context, or [None]
    when [n]'s production does not forward. *)
let forward n =
  match n.fwd_memo with
  | Some f -> f
  | None ->
      let f =
        match Hashtbl.find_opt n.spec.fwd_eqs (prod_name n) with
        | None -> None
        | Some build ->
            (* The forward tree occupies the same position as n, so it sees
               the same inherited attributes (Silver semantics). *)
            Some (mk_node n.spec (build n) n.parent)
      in
      n.fwd_memo <- Some f;
      f

let rec get_syn : type a. node -> a attr -> a =
 fun n attr ->
  let name = attr.a_name in
  match Hashtbl.find_opt n.syn_cache name with
  | Some v -> (
      match attr.prj v with
      | Some x -> x
      | None -> assert false (* key identity guarantees this *))
  | None ->
      let v =
        match Hashtbl.find_opt n.spec.syn_eqs (prod_name n, name) with
        | Some eq -> eq n
        | None -> (
            match forward n with
            | Some fwd -> attr.inj (get_syn fwd attr)
            | None -> (
                match Hashtbl.find_opt n.spec.defaults name with
                | Some eq -> eq n
                | None ->
                    raise
                      (Missing_equation
                         {
                           production = prod_name n;
                           attribute = name;
                           site = "syn";
                         })))
      in
      Hashtbl.replace n.syn_cache name v;
      (match attr.prj v with Some x -> x | None -> assert false)

and get_inh : type a. node -> a attr -> a =
 fun n attr ->
  let name = attr.a_name in
  match Hashtbl.find_opt n.inh_cache name with
  | Some v -> (
      match attr.prj v with Some x -> x | None -> assert false)
  | None ->
      let v =
        match n.parent with
        | None ->
            raise
              (Missing_equation
                 { production = prod_name n; attribute = name; site = "inh@root" })
        | Some (p, i) -> (
            match Hashtbl.find_opt n.spec.inh_eqs (prod_name p, name, i) with
            | Some eq -> eq p
            | None ->
                if attr.a_autocopy then attr.inj (get_inh p attr)
                else
                  raise
                    (Missing_equation
                       {
                         production = prod_name p;
                         attribute = name;
                         site = Printf.sprintf "inh@%d" i;
                       }))
      in
      Hashtbl.replace n.inh_cache name v;
      (match attr.prj v with Some x -> x | None -> assert false)

(** [set_inh n attr v] — supply an inherited attribute at a decoration
    root (used when decorating higher-order attribute values). *)
let set_inh n (attr : 'a attr) (v : 'a) =
  Hashtbl.replace n.inh_cache attr.a_name (attr.inj v)

(** [decorate_ho ~parent spec tree] — decorate a higher-order attribute
    value (a tree constructed by an equation) in the inherited context of
    [parent], as Silver does when a higher-order attribute is accessed. *)
let decorate_ho ~(parent : node) tree =
  mk_node parent.spec tree parent.parent

let leaf_text n = Parser.Tree.leaf_text n.tree
let tree n = n.tree
let span n = Parser.Tree.span n.tree
