lib/ag/wellformed.ml: Fmt Format List String
