lib/ag/engine.ml: Array Fun Hashtbl List Parser Printf
