(** Concrete-syntax trees → abstract syntax.

    Dispatches on production names; extensions register builders for their
    own productions in the tables below (the driver calls each selected
    extension's [register] at composition time).  This mirrors how Silver
    concrete-syntax productions construct abstract-syntax trees. *)

module Tree = Parser.Tree

exception Build_error of string * Support.Pos.span

let err span fmt =
  Format.kasprintf (fun m -> raise (Build_error (m, span))) fmt

type ctx = {
  expr : Tree.t -> Ast.expr;
  ty : Tree.t -> Ast.ty_expr;
  stmt : Tree.t -> Ast.stmt list;
  index : Tree.t -> Ast.index;
  expr_list : Tree.t -> Ast.expr list;  (** flattens an ArgList tree *)
}

(* Extension builder registries, keyed by production name. *)
let ext_expr_builders : (string, ctx -> Tree.t -> Ast.expr) Hashtbl.t =
  Hashtbl.create 32

let ext_stmt_builders : (string, ctx -> Tree.t -> Ast.stmt list) Hashtbl.t =
  Hashtbl.create 16

let ext_ty_builders : (string, ctx -> Tree.t -> Ast.ty_expr) Hashtbl.t =
  Hashtbl.create 16

let ext_index_builders : (string, ctx -> Tree.t -> Ast.index) Hashtbl.t =
  Hashtbl.create 16

let node = function
  | Tree.Node (p, kids, span) -> (p.Grammar.Cfg.p_name, kids, span)
  | Tree.Leaf tok ->
      (tok.Lexer.Token.term, [], tok.Lexer.Token.span)

let leaf_lexeme t =
  match t with
  | Tree.Leaf tok -> tok.Lexer.Token.lexeme
  | Tree.Node (_, _, span) -> err span "expected a token"

(* Flatten left-recursive list trees by production-name suffix convention:
   <x>_one/<x>_cons or nil/cons. *)
let rec flatten_list ~cons_names ~one_names t : Tree.t list =
  match t with
  | Tree.Node (p, kids, _) when List.mem p.Grammar.Cfg.p_name cons_names -> (
      match kids with
      | [ rest; item ] -> flatten_list ~cons_names ~one_names rest @ [ item ]
      | [ rest; _comma; item ] ->
          flatten_list ~cons_names ~one_names rest @ [ item ]
      | _ -> err (Tree.span t) "malformed list production")
  | Tree.Node (p, kids, _) when List.mem p.Grammar.Cfg.p_name one_names -> (
      match kids with
      | [ item ] -> [ item ]
      | [] -> []
      | _ -> err (Tree.span t) "malformed list head")
  | _ -> [ t ]

let rec build_ty (t : Tree.t) : Ast.ty_expr =
  let name, kids, span = node t in
  match (name, kids) with
  | "ty_scalar", [ st ] -> build_ty st
  | "ty_void", _ -> Ast.TyVoid
  | "sty_int", _ -> Ast.TyInt
  | "sty_float", _ -> Ast.TyFloat
  | "sty_bool", _ -> Ast.TyBool
  | _ -> (
      match Hashtbl.find_opt ext_ty_builders name with
      | Some b -> b ctx t
      | None -> err span "unknown type production %s" name)

and build_expr (t : Tree.t) : Ast.expr =
  let name, kids, span = node t in
  let mk e = Ast.mk_expr e span in
  let bin op a b = mk (Ast.Bin (op, build_expr a, build_expr b)) in
  match (name, kids) with
  | ("e_top" | "or_and" | "and_cmp" | "cmp_add" | "add_mul" | "mul_unary"
    | "un_post" | "post_prim"), [ x ] ->
      build_expr x
  | "or_or", [ a; _; b ] -> bin (Ast.BLogic Runtime.Scalar.Or) a b
  | "and_and", [ a; _; b ] -> bin (Ast.BLogic Runtime.Scalar.And) a b
  | "cmp_lt", [ a; _; b ] -> bin (Ast.BCmp Runtime.Scalar.Lt) a b
  | "cmp_le", [ a; _; b ] -> bin (Ast.BCmp Runtime.Scalar.Le) a b
  | "cmp_gt", [ a; _; b ] -> bin (Ast.BCmp Runtime.Scalar.Gt) a b
  | "cmp_ge", [ a; _; b ] -> bin (Ast.BCmp Runtime.Scalar.Ge) a b
  | "cmp_eq", [ a; _; b ] -> bin (Ast.BCmp Runtime.Scalar.Eq) a b
  | "cmp_ne", [ a; _; b ] -> bin (Ast.BCmp Runtime.Scalar.Ne) a b
  | "add_plus", [ a; _; b ] -> bin (Ast.BArith Runtime.Scalar.Add) a b
  | "add_minus", [ a; _; b ] -> bin (Ast.BArith Runtime.Scalar.Sub) a b
  | "mul_star", [ a; _; b ] -> bin (Ast.BArith Runtime.Scalar.Mul) a b
  | "mul_slash", [ a; _; b ] -> bin (Ast.BArith Runtime.Scalar.Div) a b
  | "mul_percent", [ a; _; b ] -> bin (Ast.BArith Runtime.Scalar.Mod) a b
  | "un_neg", [ _; x ] -> mk (Ast.Un (Ast.UNeg, build_expr x))
  | "un_not", [ _; x ] -> mk (Ast.Un (Ast.UNot, build_expr x))
  | "un_cast", [ _; ty; _; x ] -> mk (Ast.Cast (build_ty ty, build_expr x))
  | "post_subscript", [ base; _; ixl; _ ] ->
      mk (Ast.Subscript (build_expr base, build_index_list ixl))
  | "prim_int", [ l ] -> mk (Ast.IntLit (int_of_string (leaf_lexeme l)))
  | "prim_float", [ l ] ->
      let lx = leaf_lexeme l in
      let lx =
        if String.length lx > 0 && lx.[String.length lx - 1] = 'f' then
          String.sub lx 0 (String.length lx - 1)
        else lx
      in
      mk (Ast.FloatLit (float_of_string lx))
  | "prim_true", _ -> mk (Ast.BoolLit true)
  | "prim_false", _ -> mk (Ast.BoolLit false)
  | "prim_str", [ l ] ->
      let lx = leaf_lexeme l in
      mk (Ast.StrLit (String.sub lx 1 (String.length lx - 2)))
  | "prim_id", [ l ] -> mk (Ast.Ident (leaf_lexeme l))
  | "prim_paren", [ _; e; _ ] -> build_expr e
  | "prim_call", [ f; _; args; _ ] ->
      mk (Ast.CallE (leaf_lexeme f, build_args args))
  | _ -> (
      match Hashtbl.find_opt ext_expr_builders name with
      | Some b -> b ctx t
      | None -> err span "unknown expression production %s" name)

and build_args (t : Tree.t) : Ast.expr list =
  let name, kids, _ = node t in
  match (name, kids) with
  | "args_none", _ -> []
  | "args_some", [ al ] -> build_args al
  | _ ->
      flatten_list ~cons_names:[ "al_cons" ] ~one_names:[ "al_one" ] t
      |> List.map build_expr

and build_index_list (t : Tree.t) : Ast.index list =
  flatten_list ~cons_names:[ "il_cons" ] ~one_names:[ "il_one" ] t
  |> List.map build_index

and build_index (t : Tree.t) : Ast.index =
  let name, kids, span = node t in
  match (name, kids) with
  | "ix_expr", [ e ] -> Ast.IExpr (build_expr e)
  | _ -> (
      match Hashtbl.find_opt ext_index_builders name with
      | Some b -> b ctx t
      | None -> err span "unknown index production %s" name)

and build_stmt (t : Tree.t) : Ast.stmt list =
  let name, kids, span = node t in
  let mk s = [ Ast.mk_stmt s span ] in
  match (name, kids) with
  | "st_simple", [ simple; _ ] -> build_simple simple
  | "st_if", [ ifs ] -> build_stmt ifs
  | "if_stmt", [ _; _; c; _; blk; tail ] ->
      let els =
        let tname, tkids, _ = node tail in
        match (tname, tkids) with
        | "iftail_none", _ -> []
        | "iftail_else", [ _; b ] -> build_block b
        | "iftail_elseif", [ _; ifs ] -> build_stmt ifs
        | _ -> err span "unknown if-tail %s" tname
      in
      mk (Ast.IfS (build_expr c, build_block blk, els))
  | "st_while", [ _; _; c; _; blk ] ->
      mk (Ast.WhileS (build_expr c, build_block blk))
  | "st_for", [ _; _; init; _; cond; _; step; _; blk ] ->
      let init_s =
        match build_simple init with
        | [ s ] -> Some s
        | _ -> err span "for-init must be a single statement"
      in
      let step_s =
        let sname, skids, sspan = node step in
        match (sname, skids) with
        | "forstep_assign", [ lhs; _; e ] ->
            Some (Ast.mk_stmt (Ast.AssignS (build_expr lhs, build_expr e)) sspan)
        | "forstep_incr", [ id; _ ] ->
            let v = leaf_lexeme id in
            Some
              (Ast.mk_stmt
                 (Ast.AssignS
                    ( Ast.mk_expr (Ast.Ident v) sspan,
                      Ast.mk_expr
                        (Ast.Bin
                           ( Ast.BArith Runtime.Scalar.Add,
                             Ast.mk_expr (Ast.Ident v) sspan,
                             Ast.mk_expr (Ast.IntLit 1) sspan ))
                        sspan ))
                 sspan)
        | _ -> err sspan "unknown for-step %s" sname
      in
      mk (Ast.ForS (init_s, Some (build_expr cond), step_s, build_block blk))
  | "st_block", [ blk ] -> mk (Ast.BlockS (build_block blk))
  | _ -> (
      match Hashtbl.find_opt ext_stmt_builders name with
      | Some b -> b ctx t
      | None -> err span "unknown statement production %s" name)

and build_simple (t : Tree.t) : Ast.stmt list =
  let name, kids, span = node t in
  let mk s = [ Ast.mk_stmt s span ] in
  match (name, kids) with
  | "simple_decl", [ ty; id ] ->
      mk (Ast.DeclS (build_ty ty, leaf_lexeme id, None))
  | "simple_decl_init", [ ty; id; _; e ] ->
      mk (Ast.DeclS (build_ty ty, leaf_lexeme id, Some (build_expr e)))
  | "simple_assign", [ lhs; _; e ] ->
      mk (Ast.AssignS (build_expr lhs, build_expr e))
  | "simple_incr", [ id; _ ] ->
      let v = leaf_lexeme id in
      mk
        (Ast.AssignS
           ( Ast.mk_expr (Ast.Ident v) span,
             Ast.mk_expr
               (Ast.Bin
                  ( Ast.BArith Runtime.Scalar.Add,
                    Ast.mk_expr (Ast.Ident v) span,
                    Ast.mk_expr (Ast.IntLit 1) span ))
               span ))
  | "simple_expr", [ e ] -> mk (Ast.ExprStmt (build_expr e))
  | "simple_ret", _ -> mk (Ast.ReturnS None)
  | "simple_ret_e", [ _; e ] -> mk (Ast.ReturnS (Some (build_expr e)))
  | "simple_break", _ -> mk Ast.BreakS
  | "simple_continue", _ -> mk Ast.ContinueS
  | _ -> (
      match Hashtbl.find_opt ext_stmt_builders name with
      | Some b -> b ctx t
      | None -> err span "unknown simple-statement production %s" name)

and build_block (t : Tree.t) : Ast.stmt list =
  let name, kids, span = node t in
  match (name, kids) with
  | "block", [ _; sl; _ ] -> build_stmt_list sl
  | _ -> err span "expected a block, got %s" name

and build_stmt_list (t : Tree.t) : Ast.stmt list =
  let name, kids, _ = node t in
  match (name, kids) with
  | "stmts_nil", _ -> []
  | "stmts_cons", [ rest; s ] -> build_stmt_list rest @ build_stmt s
  | _ -> err (Tree.span t) "expected a statement list, got %s" name

and ctx =
  {
    expr = (fun t -> build_expr t);
    ty = (fun t -> build_ty t);
    stmt = (fun t -> build_stmt t);
    index = (fun t -> build_index t);
    expr_list = (fun t -> build_args t);
  }

let build_fun (t : Tree.t) : Ast.fundef =
  let name, kids, span = node t in
  match (name, kids) with
  | "fun_def", [ ret; id; _; params; _; blk ] ->
      let params =
        let pname, pkids, _ = node params in
        match (pname, pkids) with
        | "params_none", _ -> []
        | "params_some", [ ps ] ->
            flatten_list ~cons_names:[ "params_cons" ]
              ~one_names:[ "params_one" ] ps
            |> List.map (fun pt ->
                   let n, ks, sp = node pt in
                   match (n, ks) with
                   | "param", [ ty; pid ] -> (build_ty ty, leaf_lexeme pid)
                   | _ -> err sp "expected a parameter")
        | _ -> err span "malformed parameter list"
      in
      {
        Ast.fname = leaf_lexeme id;
        params;
        ret = build_ty ret;
        body = build_block blk;
        fspan = span;
      }
  | _ -> err span "expected a function definition, got %s" name

(** [program tree] — build the whole program AST from a [Program] parse
    tree. *)
let program (t : Tree.t) : Ast.program =
  let name, kids, span = node t in
  match (name, kids) with
  | "prog", [ fl ] ->
      flatten_list ~cons_names:[ "funs_cons" ] ~one_names:[ "funs_one" ] fl
      |> List.map build_fun
  | _ -> err span "expected a program, got %s" name
