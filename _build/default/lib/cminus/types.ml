(** Semantic types of the extended language.

    The set of types is closed here (an engineering substitution for
    Silver's open type nonterminals, see DESIGN.md): the {e operations} on
    matrix and tuple types are contributed entirely by the extensions via
    typechecker hooks, but the type constructors themselves are shared so
    that type equality and error printing stay total. *)

type ty =
  | TInt
  | TFloat
  | TBool
  | TVoid
  | TMat of Runtime.Ndarray.elem * int  (** element type, rank (§III-A1) *)
  | TTuple of ty list
  | TStr  (** string literals (file paths for readMatrix/writeMatrix) *)

let rec to_string = function
  | TInt -> "int"
  | TFloat -> "float"
  | TBool -> "bool"
  | TVoid -> "void"
  | TMat (e, r) ->
      Printf.sprintf "Matrix %s <%d>" (Runtime.Ndarray.elem_name e) r
  | TTuple ts -> "(" ^ String.concat ", " (List.map to_string ts) ^ ")"
  | TStr -> "string"

let pp ppf t = Fmt.string ppf (to_string t)

let rec equal a b =
  match (a, b) with
  | TInt, TInt | TFloat, TFloat | TBool, TBool | TVoid, TVoid -> true
  | TMat (e1, r1), TMat (e2, r2) -> e1 = e2 && r1 = r2
  | TTuple x, TTuple y ->
      List.length x = List.length y && List.for_all2 equal x y
  | TStr, TStr -> true
  | _ -> false

let is_scalar = function TInt | TFloat | TBool -> true | _ -> false
let is_numeric = function TInt | TFloat -> true | _ -> false

(** C-style arithmetic promotion for scalars. *)
let promote a b =
  match (a, b) with
  | TFloat, (TInt | TFloat) | TInt, TFloat -> Some TFloat
  | TInt, TInt -> Some TInt
  | _ -> None

(** Can a value of type [src] initialise / be assigned to [dst]?  C allows
    int↔float conversion implicitly; everything else must match. *)
let assignable ~dst ~src =
  equal dst src
  || match (dst, src) with
     | TFloat, TInt | TInt, TFloat -> true
     | _ -> false

let elem_ty = function
  | Runtime.Ndarray.EFloat -> TFloat
  | Runtime.Ndarray.EInt -> TInt
  | Runtime.Ndarray.EBool -> TBool

let elem_of_ty = function
  | TFloat -> Some Runtime.Ndarray.EFloat
  | TInt -> Some Runtime.Ndarray.EInt
  | TBool -> Some Runtime.Ndarray.EBool
  | _ -> None

(** The cir type corresponding to a semantic type. *)
let rec to_ctype = function
  | TInt -> Cir.Ir.CInt
  | TFloat -> Cir.Ir.CFloat
  | TBool -> Cir.Ir.CBool
  | TVoid -> Cir.Ir.CVoid
  | TMat (e, r) -> Cir.Ir.CMat (e, r)
  | TTuple ts -> Cir.Ir.CTuple (List.map to_ctype ts)
  | TStr -> invalid_arg "Types.to_ctype: strings are not first-class"
