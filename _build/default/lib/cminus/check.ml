(** Semantic analysis of the extended language (§VI-B): type checking,
    overload resolution for operators such as [+] and [=], and the
    domain-specific error checks each extension contributes.

    Extensions participate through a {!hooks} record — the OCaml rendering
    of contributing attribute-grammar equations to the composed
    specification.  The checker tries host rules first, then offers the
    construct to each selected extension's hooks in order; an unclaimed
    construct is an error.  Expression types are cached in the AST's [ety]
    slots for the lowering phase. *)

module S = Runtime.Scalar

type t = {
  mutable scopes : (string, Types.ty) Hashtbl.t list;
  funcs : (string, Types.ty list * Types.ty) Hashtbl.t;
  mutable diags : Support.Diag.t list;
  mutable ret : Types.ty;
  mutable loop_depth : int;
  mutable index_ctx : (Types.ty * int) option;
      (** set while checking a subscript item: (matrix type, dimension) —
          gives meaning to the matrix extension's [end] *)
  hooks : hooks list;
}

(** One extension's contribution to semantic analysis.  Every function
    returns [None] (or [false]) to decline, letting the next extension
    try — unclaimed constructs become errors in the host checker. *)
and hooks = {
  h_name : string;
  h_ty : t -> Ast.ext_ty -> Ast.span -> Types.ty option;
  h_expr : t -> Ast.ext_expr -> Ast.span -> expected:Types.ty option -> Types.ty option;
  h_stmt : t -> Ast.ext_stmt -> Ast.span -> bool;
  h_binop : t -> Ast.binop -> Types.ty -> Types.ty -> Ast.span -> Types.ty option;
  h_unop : t -> Ast.unop -> Types.ty -> Ast.span -> Types.ty option;
  h_call : t -> string -> Ast.expr list -> Ast.span -> expected:Types.ty option -> Types.ty option;
  h_subscript : t -> Types.ty -> Ast.index list -> Ast.span -> Types.ty option;
  h_assign : t -> dst:Types.ty -> src:Types.ty -> Ast.span -> bool;
      (** extra assignment compatibility, e.g. scalar fill into a selected
          submatrix region *)
}

(** A hooks record that declines everything; extensions override fields. *)
let no_hooks name =
  {
    h_name = name;
    h_ty = (fun _ _ _ -> None);
    h_expr = (fun _ _ _ ~expected:_ -> None);
    h_stmt = (fun _ _ _ -> false);
    h_binop = (fun _ _ _ _ _ -> None);
    h_unop = (fun _ _ _ _ -> None);
    h_call = (fun _ _ _ _ ~expected:_ -> None);
    h_subscript = (fun _ _ _ _ -> None);
    h_assign = (fun _ ~dst:_ ~src:_ _ -> false);
  }

let error t span fmt =
  Format.kasprintf
    (fun m ->
      t.diags <- Support.Diag.error ~phase:"typecheck" ~span "%s" m :: t.diags)
    fmt

let push_scope t = t.scopes <- Hashtbl.create 8 :: t.scopes
let pop_scope t = t.scopes <- List.tl t.scopes

let declare t span name ty =
  match t.scopes with
  | scope :: _ ->
      if Hashtbl.mem scope name then
        error t span "redeclaration of '%s' in the same scope" name
      else Hashtbl.replace scope name ty
  | [] -> assert false

let lookup t name =
  List.find_map (fun sc -> Hashtbl.find_opt sc name) t.scopes

let first_hook f t =
  List.find_map (fun h -> f h) t.hooks

(* --- types ------------------------------------------------------------------ *)

let rec resolve_ty t (te : Ast.ty_expr) (span : Ast.span) : Types.ty =
  match te with
  | Ast.TyInt -> Types.TInt
  | Ast.TyFloat -> Types.TFloat
  | Ast.TyBool -> Types.TBool
  | Ast.TyVoid -> Types.TVoid
  | Ast.TyTuple ts -> Types.TTuple (List.map (fun x -> resolve_ty t x span) ts)
  | Ast.TyExt ext -> (
      match first_hook (fun h -> h.h_ty t ext span) t with
      | Some ty -> ty
      | None ->
          error t span "no loaded extension understands type %s"
            (Ast.ty_expr_to_string te);
          Types.TInt)

(* --- expressions --------------------------------------------------------------- *)

let rec check_expr ?(expected : Types.ty option) t (e : Ast.expr) : Types.ty =
  let ty = infer ?expected t e in
  e.Ast.ety <- Some ty;
  ty

and infer ?expected t (e : Ast.expr) : Types.ty =
  let span = e.Ast.espan in
  match e.Ast.e with
  | Ast.IntLit _ -> Types.TInt
  | Ast.FloatLit _ -> Types.TFloat
  | Ast.BoolLit _ -> Types.TBool
  | Ast.StrLit _ -> Types.TStr
  | Ast.Ident name -> (
      match lookup t name with
      | Some ty -> ty
      | None ->
          error t span "unbound variable '%s'" name;
          Option.value expected ~default:Types.TInt)
  | Ast.Bin (op, a, b) -> (
      let ta = check_expr t a and tb = check_expr t b in
      match host_binop op ta tb with
      | Some ty -> ty
      | None -> (
          match first_hook (fun h -> h.h_binop t op ta tb span) t with
          | Some ty -> ty
          | None ->
              error t span "operator %s undefined for %s and %s"
                (binop_name op) (Types.to_string ta) (Types.to_string tb);
              Option.value expected ~default:ta))
  | Ast.Un (op, a) -> (
      let ta = check_expr t a in
      match (op, ta) with
      | Ast.UNeg, (Types.TInt | Types.TFloat) -> ta
      | Ast.UNot, Types.TBool -> Types.TBool
      | _ -> (
          match first_hook (fun h -> h.h_unop t op ta span) t with
          | Some ty -> ty
          | None ->
              error t span "operator %s undefined for %s"
                (match op with Ast.UNeg -> "-" | Ast.UNot -> "!")
                (Types.to_string ta);
              ta))
  | Ast.Cast (te, a) -> (
      let target = resolve_ty t te span in
      let ta = check_expr t a in
      match (target, ta) with
      | (Types.TInt | Types.TFloat), (Types.TInt | Types.TFloat) -> target
      | _ when Types.equal target ta -> target
      | _ ->
          error t span "invalid cast from %s to %s" (Types.to_string ta)
            (Types.to_string target);
          target)
  | Ast.CallE (name, args) -> (
      match Hashtbl.find_opt t.funcs name with
      | Some (ptys, rty) ->
          let n_args = List.length args and n_params = List.length ptys in
          if n_args <> n_params then begin
            error t span "%s expects %d argument(s), got %d" name n_params
              n_args;
            List.iter (fun a -> ignore (check_expr t a)) args
          end
          else
            List.iter2
              (fun a pty ->
                let ta = check_expr ~expected:pty t a in
                if not (Types.assignable ~dst:pty ~src:ta) then
                  error t a.Ast.espan
                    "argument of type %s where %s is expected"
                    (Types.to_string ta) (Types.to_string pty))
              args ptys;
          rty
      | None -> (
          match
            first_hook (fun h -> h.h_call t name args span ~expected) t
          with
          | Some ty -> ty
          | None ->
              error t span "call to undefined function '%s'" name;
              List.iter (fun a -> ignore (check_expr t a)) args;
              Option.value expected ~default:Types.TInt))
  | Ast.TupleLit es ->
      (* host-packaged tuples extension: anonymous creation (§III-B) *)
      let expecteds =
        match expected with
        | Some (Types.TTuple ts) when List.length ts = List.length es ->
            List.map Option.some ts
        | _ -> List.map (fun _ -> None) es
      in
      Types.TTuple (List.map2 (fun x exp -> check_expr ?expected:exp t x) es expecteds)
  | Ast.Subscript (base, indices) -> (
      let tb = check_expr t base in
      match first_hook (fun h -> h.h_subscript t tb indices span) t with
      | Some ty -> ty
      | None ->
          error t span
            "type %s is not subscriptable (load the matrix extension?)"
            (Types.to_string tb);
          List.iter
            (function
              | Ast.IExpr ix -> ignore (check_expr t ix)
              | Ast.IAll _ -> ())
            indices;
          Option.value expected ~default:Types.TInt)
  | Ast.ExtE ext -> (
      match first_hook (fun h -> h.h_expr t ext span ~expected) t with
      | Some ty -> ty
      | None ->
          error t span "no loaded extension understands this expression";
          Option.value expected ~default:Types.TInt)

and host_binop (op : Ast.binop) ta tb : Types.ty option =
  match op with
  | Ast.BArith S.Mod -> (
      match (ta, tb) with Types.TInt, Types.TInt -> Some Types.TInt | _ -> None)
  | Ast.BArith _ -> (
      match (ta, tb) with
      | (Types.TInt | Types.TFloat), (Types.TInt | Types.TFloat) ->
          Types.promote ta tb
      | _ -> None)
  | Ast.BCmp (S.Eq | S.Ne) -> (
      match (ta, tb) with
      | (Types.TInt | Types.TFloat), (Types.TInt | Types.TFloat) ->
          Some Types.TBool
      | Types.TBool, Types.TBool -> Some Types.TBool
      | _ -> None)
  | Ast.BCmp _ -> (
      match (ta, tb) with
      | (Types.TInt | Types.TFloat), (Types.TInt | Types.TFloat) ->
          Some Types.TBool
      | _ -> None)
  | Ast.BLogic _ -> (
      match (ta, tb) with
      | Types.TBool, Types.TBool -> Some Types.TBool
      | _ -> None)
  | Ast.BExt _ -> None

and binop_name = function
  | Ast.BArith op -> S.arith_name op
  | Ast.BCmp op -> S.cmp_name op
  | Ast.BLogic S.And -> "&&"
  | Ast.BLogic S.Or -> "||"
  | Ast.BExt name -> name

(* --- statements -------------------------------------------------------------------- *)

let rec check_stmt t (st : Ast.stmt) : unit =
  let span = st.Ast.sspan in
  match st.Ast.s with
  | Ast.DeclS (te, name, init) ->
      let ty = resolve_ty t te span in
      if Types.equal ty Types.TVoid then
        error t span "variable '%s' declared void" name;
      (match init with
      | Some e ->
          let te' = check_expr ~expected:ty t e in
          (* No hook here: a declaration must receive a whole value (a
             scalar fill has no extents to allocate from). *)
          if not (Types.assignable ~dst:ty ~src:te') then
            error t span "cannot initialise %s '%s' from %s"
              (Types.to_string ty) name (Types.to_string te')
      | None -> ());
      declare t span name ty
  | Ast.AssignS (lhs, rhs) -> check_assign t span lhs rhs
  | Ast.IfS (c, a, b) ->
      require_bool t c;
      in_scope t (fun () -> List.iter (check_stmt t) a);
      in_scope t (fun () -> List.iter (check_stmt t) b)
  | Ast.WhileS (c, body) ->
      require_bool t c;
      t.loop_depth <- t.loop_depth + 1;
      in_scope t (fun () -> List.iter (check_stmt t) body);
      t.loop_depth <- t.loop_depth - 1
  | Ast.ForS (init, cond, step, body) ->
      in_scope t (fun () ->
          Option.iter (check_stmt t) init;
          Option.iter (require_bool t) cond;
          Option.iter (check_stmt t) step;
          t.loop_depth <- t.loop_depth + 1;
          in_scope t (fun () -> List.iter (check_stmt t) body);
          t.loop_depth <- t.loop_depth - 1)
  | Ast.ReturnS None ->
      if not (Types.equal t.ret Types.TVoid) then
        error t span "return without a value in a function returning %s"
          (Types.to_string t.ret)
  | Ast.ReturnS (Some e) ->
      let te = check_expr ~expected:t.ret t e in
      if Types.equal t.ret Types.TVoid then
        error t span "returning a value from a void function"
      else if not (Types.assignable ~dst:t.ret ~src:te) then
        error t span "returning %s from a function returning %s"
          (Types.to_string te) (Types.to_string t.ret)
  | Ast.BreakS ->
      if t.loop_depth = 0 then error t span "break outside of a loop"
  | Ast.ContinueS ->
      if t.loop_depth = 0 then error t span "continue outside of a loop"
  | Ast.ExprStmt e -> ignore (check_expr t e)
  | Ast.BlockS body -> in_scope t (fun () -> List.iter (check_stmt t) body)
  | Ast.ExtS ext ->
      if not (List.exists (fun h -> h.h_stmt t ext span) t.hooks) then
        error t span "no loaded extension understands this statement"

and first_hook_assign t ~dst ~src span =
  List.exists (fun h -> h.h_assign t ~dst ~src span) t.hooks

and check_assign t span lhs rhs =
  (* Validate lvalue-ness first. *)
  let rec is_lvalue (e : Ast.expr) =
    match e.Ast.e with
    | Ast.Ident _ -> true
    | Ast.Subscript (base, _) -> is_lvalue base
    | Ast.TupleLit es -> List.for_all is_lvalue es
    | _ -> false
  in
  if not (is_lvalue lhs) then error t span "left side of = is not assignable";
  let tl = check_expr t lhs in
  let tr = check_expr ~expected:tl t rhs in
  if
    (not (Types.assignable ~dst:tl ~src:tr))
    && not (first_hook_assign t ~dst:tl ~src:tr span)
  then
    error t span "cannot assign %s to %s" (Types.to_string tr)
      (Types.to_string tl)

and require_bool t c =
  let tc = check_expr ~expected:Types.TBool t c in
  if not (Types.equal tc Types.TBool) then
    error t c.Ast.espan "condition has type %s, expected bool"
      (Types.to_string tc)

and in_scope : 'a. t -> (unit -> 'a) -> 'a =
 fun t f ->
  push_scope t;
  Fun.protect ~finally:(fun () -> pop_scope t) f

(* --- programs ------------------------------------------------------------------------ *)

let check_fundef t (f : Ast.fundef) : unit =
  t.ret <- resolve_ty t f.Ast.ret f.Ast.fspan;
  t.loop_depth <- 0;
  in_scope t (fun () ->
      List.iter
        (fun (te, name) ->
          let ty = resolve_ty t te f.Ast.fspan in
          if Types.equal ty Types.TVoid then
            error t f.Ast.fspan "parameter '%s' declared void" name;
          declare t f.Ast.fspan name ty)
        f.Ast.params;
      List.iter (check_stmt t) f.Ast.body)

(** [check_program hooks prog] — full semantic analysis; returns the
    diagnostics (empty = well-typed).  Fills every expression's [ety]. *)
let check_program (hooks : hooks list) (prog : Ast.program) :
    Support.Diag.t list =
  let t =
    {
      scopes = [];
      funcs = Hashtbl.create 16;
      diags = [];
      ret = Types.TVoid;
      loop_depth = 0;
      index_ctx = None;
      hooks;
    }
  in
  (* Pass 1: function signatures (allows forward references). *)
  List.iter
    (fun (f : Ast.fundef) ->
      if Hashtbl.mem t.funcs f.Ast.fname then
        error t f.Ast.fspan "function '%s' defined twice" f.Ast.fname
      else
        Hashtbl.replace t.funcs f.Ast.fname
          ( List.map (fun (te, _) -> resolve_ty t te f.Ast.fspan) f.Ast.params,
            resolve_ty t f.Ast.ret f.Ast.fspan ))
    prog;
  (* Pass 2: bodies. *)
  List.iter (check_fundef t) prog;
  List.rev t.diags
