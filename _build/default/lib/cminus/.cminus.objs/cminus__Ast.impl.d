lib/cminus/ast.ml: List Runtime String Support Types
