lib/cminus/build.ml: Ast Format Grammar Hashtbl Lexer List Parser Runtime String Support
