lib/cminus/types.ml: Cir Fmt List Printf Runtime String
