lib/cminus/check.ml: Ast Format Fun Hashtbl List Option Runtime Support Types
