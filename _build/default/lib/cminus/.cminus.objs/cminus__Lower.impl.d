lib/cminus/lower.ml: Ast Cir Format Hashtbl List Option Runtime Support Types
