lib/cminus/syntax.ml: Grammar
