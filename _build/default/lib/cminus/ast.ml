(** Abstract syntax of CMINUS, the host language: "a rather complete subset
    of ANSI C" (§I) — int/float/bool/void types, functions, the usual
    statements and expression operators, array-subscript syntax, and casts.

    Extensibility: each syntactic category has an extension point carried
    by an {e open (extensible) variant} ([ext_expr], [ext_stmt],
    [ext_ty]).  A language extension adds its own constructors (the
    abstract syntax it declared to the composition machinery) and
    registers build / typecheck / lowering hooks with the driver.  This is
    the OCaml rendering of Silver's open nonterminals (see DESIGN.md §2).

    Expression nodes carry a mutable [ety] slot filled by the typechecker
    and read by the lowering — the moral equivalent of a synthesized type
    attribute cached on the tree. *)

type span = Support.Pos.span

(* --- types (syntactic) ----------------------------------------------------- *)

type ext_ty = ..
(** extension type syntax, e.g. the matrix extension's [Matrix float <3>] *)

type ty_expr =
  | TyInt
  | TyFloat
  | TyBool
  | TyVoid
  | TyTuple of ty_expr list
      (** tuple types; per §VI-A the tuples extension fails [isComposable]
          (its syntax starts with the host's ["("]) and is therefore
          "packaged as part of the host language" — so tuple types live in
          the host AST *)
  | TyExt of ext_ty

(* --- operators -------------------------------------------------------------- *)

type binop =
  | BArith of Runtime.Scalar.arith
  | BCmp of Runtime.Scalar.cmp
  | BLogic of Runtime.Scalar.logic
  | BExt of string
      (** extension-declared infix operators, keyed by name: the matrix
          extension's elementwise [.*] ("DOTSTAR") and range [::]
          ("RANGE") *)

type unop = UNeg | UNot

(* --- expressions -------------------------------------------------------------- *)

type ext_expr = ..

type expr = {
  e : expr_node;
  espan : span;
  mutable ety : Types.ty option;  (** filled by the typechecker *)
}

and expr_node =
  | IntLit of int
  | FloatLit of float
  | BoolLit of bool
  | StrLit of string
  | Ident of string
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Cast of ty_expr * expr
  | CallE of string * expr list
  | TupleLit of expr list  (** host-packaged tuples extension *)
  | Subscript of expr * index list
      (** C subscript syntax [a\[i, j, ...\]]; the matrix extension
          overloads its semantics with the §III-A3 indexing modes *)
  | ExtE of ext_expr

and index =
  | IExpr of expr
      (** plain expression: scalar position, boolean-mask or int-vector
          gather — disambiguated by its type *)
  | IAll of span  (** the [:] whole-dimension index (matrix extension) *)

let mk_expr ?ty e espan = { e; espan; ety = ty }

(* --- statements ----------------------------------------------------------------- *)

type ext_stmt = ..

type stmt = { s : stmt_node; sspan : span }

and stmt_node =
  | DeclS of ty_expr * string * expr option
  | AssignS of expr * expr
      (** assignment "lhs = rhs": the target is an expression
          (identifier, subscript, or tuple literal of lvalues for
          destructuring); the typechecker validates lvalue-ness *)
  | IfS of expr * stmt list * stmt list
  | WhileS of expr * stmt list
  | ForS of stmt option * expr option * stmt option * stmt list
      (** C for-loop: init (decl or assign), condition, step *)
  | ReturnS of expr option
  | BreakS
  | ContinueS
  | ExprStmt of expr
  | BlockS of stmt list
  | ExtS of ext_stmt

let mk_stmt s sspan = { s; sspan }

(* --- declarations ------------------------------------------------------------------ *)

type fundef = {
  fname : string;
  params : (ty_expr * string) list;
  ret : ty_expr;
  body : stmt list;
  fspan : span;
}

type program = fundef list

(* --- pretty-printing hooks ----------------------------------------------------------- *)

(** Extensions register printers for their nodes so diagnostics can quote
    extension constructs. *)
let ext_expr_printers : (ext_expr -> string option) list ref = ref []

let ext_stmt_printers : (ext_stmt -> string option) list ref = ref []
let ext_ty_printers : (ext_ty -> string option) list ref = ref []

let register_ext_expr_printer f = ext_expr_printers := f :: !ext_expr_printers
let register_ext_stmt_printer f = ext_stmt_printers := f :: !ext_stmt_printers
let register_ext_ty_printer f = ext_ty_printers := f :: !ext_ty_printers

let print_via printers x fallback =
  match List.find_map (fun f -> f x) !printers with
  | Some s -> s
  | None -> fallback

let rec ty_expr_to_string = function
  | TyInt -> "int"
  | TyFloat -> "float"
  | TyBool -> "bool"
  | TyVoid -> "void"
  | TyTuple ts ->
      "(" ^ String.concat ", " (List.map ty_expr_to_string ts) ^ ")"
  | TyExt t -> print_via ext_ty_printers t "<extension type>"
