(** Concrete syntax of the CMINUS host language as a declarative grammar
    fragment (§III-D: "the extension developer must define both the
    concrete syntax and abstract syntax of the constructs as context free
    grammar rules" — the host is specified the same way).

    Design notes for composability with the paper's extensions:
    - array-subscript syntax ([a\[i, j\]]) belongs to the host (it is
      ordinary C syntax); the matrix extension overloads its semantics and
      adds new {e index forms} ([:], [end]) behind marking terminals;
    - if/while/for bodies are braced blocks, which keeps the composed
      grammars LALR(1) without dangling-else hacks;
    - tuple syntax is specified by the separate tuples fragment
      ({!Exts.Tuples}) but bundled with the host because it fails
      [isComposable] (§VI-A), exactly as in the paper. *)

open Grammar.Cfg

let owner = "host"
let t = terminal ~owner
let kw = keyword ~owner
let p = production ~owner

let terminals =
  [
    t "ID" "[a-zA-Z_][a-zA-Z0-9_]*";
    t "INTLIT" "[0-9]+";
    t "FLOATLIT" "[0-9]+\\.[0-9]+f?|[0-9]+f";
    t "STRINGLIT" "\"[^\"]*\"";
    kw "KW_int" "int";
    kw "KW_float" "float";
    kw "KW_bool" "bool";
    kw "KW_void" "void";
    kw "KW_if" "if";
    kw "KW_else" "else";
    kw "KW_while" "while";
    kw "KW_for" "for";
    kw "KW_return" "return";
    kw "KW_break" "break";
    kw "KW_continue" "continue";
    kw "KW_true" "true";
    kw "KW_false" "false";
    kw "LP" "(";
    kw "RP" ")";
    kw "LB" "{";
    kw "RB" "}";
    kw "LSQ" "[";
    kw "RSQ" "]";
    kw "COMMA" ",";
    kw "SEMI" ";";
    kw "ASSIGN" "=";
    kw "PLUS" "+";
    kw "PLUSPLUS" "++";
    kw "MINUS" "-";
    kw "STAR" "*";
    kw "SLASH" "/";
    kw "PERCENT" "%";
    kw "LT" "<";
    kw "LE" "<=";
    kw "GT" ">";
    kw "GE" ">=";
    kw "EQ" "==";
    kw "NE" "!=";
    kw "ANDAND" "&&";
    kw "OROR" "||";
    kw "BANG" "!";
  ]

let layout =
  [
    t "WS" "[ \\t\\n\\r]+";
    t "LINE_COMMENT" "//[^\n]*";
    t "BLOCK_COMMENT" "/\\*([^*]|\\*+[^*/])*\\*+/";
  ]

let productions =
  [
    (* program structure *)
    p ~name:"prog" "Program" [ N "FunList" ];
    p ~name:"funs_one" "FunList" [ N "Fun" ];
    p ~name:"funs_cons" "FunList" [ N "FunList"; N "Fun" ];
    p ~name:"fun_def" "Fun"
      [ N "TypeE"; T "ID"; T "LP"; N "ParamsOpt"; T "RP"; N "Block" ];
    p ~name:"params_none" "ParamsOpt" [];
    p ~name:"params_some" "ParamsOpt" [ N "Params" ];
    p ~name:"params_one" "Params" [ N "Param" ];
    p ~name:"params_cons" "Params" [ N "Params"; T "COMMA"; N "Param" ];
    p ~name:"param" "Param" [ N "TypeE"; T "ID" ];
    (* types: scalars via the shared ScalarType nonterminal (also used by
       casts and by the matrix extension's element types) *)
    p ~name:"ty_scalar" "TypeE" [ N "ScalarType" ];
    p ~name:"ty_void" "TypeE" [ T "KW_void" ];
    p ~name:"sty_int" "ScalarType" [ T "KW_int" ];
    p ~name:"sty_float" "ScalarType" [ T "KW_float" ];
    p ~name:"sty_bool" "ScalarType" [ T "KW_bool" ];
    (* statements *)
    p ~name:"block" "Block" [ T "LB"; N "StmtList"; T "RB" ];
    p ~name:"stmts_nil" "StmtList" [];
    p ~name:"stmts_cons" "StmtList" [ N "StmtList"; N "Stmt" ];
    p ~name:"st_simple" "Stmt" [ N "Simple"; T "SEMI" ];
    p ~name:"st_if" "Stmt" [ N "IfStmt" ];
    p ~name:"st_while" "Stmt"
      [ T "KW_while"; T "LP"; N "E"; T "RP"; N "Block" ];
    p ~name:"st_for" "Stmt"
      [
        T "KW_for"; T "LP"; N "Simple"; T "SEMI"; N "E"; T "SEMI"; N "ForStep";
        T "RP"; N "Block";
      ];
    p ~name:"st_block" "Stmt" [ N "Block" ];
    p ~name:"if_stmt" "IfStmt"
      [ T "KW_if"; T "LP"; N "E"; T "RP"; N "Block"; N "IfTail" ];
    p ~name:"iftail_none" "IfTail" [];
    p ~name:"iftail_else" "IfTail" [ T "KW_else"; N "Block" ];
    p ~name:"iftail_elseif" "IfTail" [ T "KW_else"; N "IfStmt" ];
    p ~name:"forstep_assign" "ForStep" [ N "Postfix"; T "ASSIGN"; N "E" ];
    p ~name:"forstep_incr" "ForStep" [ T "ID"; T "PLUSPLUS" ];
    (* simple (semicolon-terminated) statements *)
    p ~name:"simple_decl" "Simple" [ N "TypeE"; T "ID" ];
    p ~name:"simple_decl_init" "Simple"
      [ N "TypeE"; T "ID"; T "ASSIGN"; N "E" ];
    p ~name:"simple_assign" "Simple" [ N "Postfix"; T "ASSIGN"; N "E" ];
    p ~name:"simple_incr" "Simple" [ T "ID"; T "PLUSPLUS" ];
    p ~name:"simple_expr" "Simple" [ N "E" ];
    p ~name:"simple_ret" "Simple" [ T "KW_return" ];
    p ~name:"simple_ret_e" "Simple" [ T "KW_return"; N "E" ];
    p ~name:"simple_break" "Simple" [ T "KW_break" ];
    p ~name:"simple_continue" "Simple" [ T "KW_continue" ];
    (* expressions, stratified for LALR(1) with C precedence *)
    p ~name:"e_top" "E" [ N "Or" ];
    p ~name:"or_or" "Or" [ N "Or"; T "OROR"; N "And" ];
    p ~name:"or_and" "Or" [ N "And" ];
    p ~name:"and_and" "And" [ N "And"; T "ANDAND"; N "Cmp" ];
    p ~name:"and_cmp" "And" [ N "Cmp" ];
    p ~name:"cmp_lt" "Cmp" [ N "Add"; T "LT"; N "Add" ];
    p ~name:"cmp_le" "Cmp" [ N "Add"; T "LE"; N "Add" ];
    p ~name:"cmp_gt" "Cmp" [ N "Add"; T "GT"; N "Add" ];
    p ~name:"cmp_ge" "Cmp" [ N "Add"; T "GE"; N "Add" ];
    p ~name:"cmp_eq" "Cmp" [ N "Add"; T "EQ"; N "Add" ];
    p ~name:"cmp_ne" "Cmp" [ N "Add"; T "NE"; N "Add" ];
    p ~name:"cmp_add" "Cmp" [ N "Add" ];
    p ~name:"add_plus" "Add" [ N "Add"; T "PLUS"; N "Mul" ];
    p ~name:"add_minus" "Add" [ N "Add"; T "MINUS"; N "Mul" ];
    p ~name:"add_mul" "Add" [ N "Mul" ];
    p ~name:"mul_star" "Mul" [ N "Mul"; T "STAR"; N "Unary" ];
    p ~name:"mul_slash" "Mul" [ N "Mul"; T "SLASH"; N "Unary" ];
    p ~name:"mul_percent" "Mul" [ N "Mul"; T "PERCENT"; N "Unary" ];
    p ~name:"mul_unary" "Mul" [ N "Unary" ];
    p ~name:"un_neg" "Unary" [ T "MINUS"; N "Unary" ];
    p ~name:"un_not" "Unary" [ T "BANG"; N "Unary" ];
    p ~name:"un_cast" "Unary" [ T "LP"; N "ScalarType"; T "RP"; N "Unary" ];
    p ~name:"un_post" "Unary" [ N "Postfix" ];
    p ~name:"post_subscript" "Postfix"
      [ N "Postfix"; T "LSQ"; N "IndexList"; T "RSQ" ];
    p ~name:"post_prim" "Postfix" [ N "Primary" ];
    p ~name:"il_one" "IndexList" [ N "Index" ];
    p ~name:"il_cons" "IndexList" [ N "IndexList"; T "COMMA"; N "Index" ];
    p ~name:"ix_expr" "Index" [ N "E" ];
    p ~name:"prim_int" "Primary" [ T "INTLIT" ];
    p ~name:"prim_float" "Primary" [ T "FLOATLIT" ];
    p ~name:"prim_true" "Primary" [ T "KW_true" ];
    p ~name:"prim_false" "Primary" [ T "KW_false" ];
    p ~name:"prim_str" "Primary" [ T "STRINGLIT" ];
    p ~name:"prim_id" "Primary" [ T "ID" ];
    p ~name:"prim_paren" "Primary" [ T "LP"; N "E"; T "RP" ];
    p ~name:"prim_call" "Primary" [ T "ID"; T "LP"; N "ArgsOpt"; T "RP" ];
    p ~name:"args_none" "ArgsOpt" [];
    p ~name:"args_some" "ArgsOpt" [ N "ArgList" ];
    p ~name:"al_one" "ArgList" [ N "E" ];
    p ~name:"al_cons" "ArgList" [ N "ArgList"; T "COMMA"; N "E" ];
  ]

(** The host grammar fragment. *)
let fragment : Grammar.Cfg.t =
  { name = owner; terminals; layout; productions; start = Some "Program" }
