(** Matrix shapes: rank, extents and row-major index arithmetic.

    The matrix extension stores all matrices in flat row-major buffers (as
    the generated C code does); this module centralises the index ↔ offset
    arithmetic used by the ndarray operations, the with-loop lowerings and
    the interpreter. *)

type t = int array
(** Extents per dimension; rank = array length. Rank 0 is a scalar. *)

let rank (s : t) = Array.length s

(** Total number of elements. *)
let size (s : t) = Array.fold_left ( * ) 1 s

let equal (a : t) (b : t) = a = b
let to_string (s : t) =
  "[" ^ String.concat "x" (Array.to_list (Array.map string_of_int s)) ^ "]"

let pp ppf s = Fmt.string ppf (to_string s)

exception Shape_error of string

let err fmt = Format.kasprintf (fun m -> raise (Shape_error m)) fmt

(** Row-major strides: [strides s].(d) is the offset step of dimension d. *)
let strides (s : t) : int array =
  let r = rank s in
  let st = Array.make r 1 in
  for d = r - 2 downto 0 do
    st.(d) <- st.(d + 1) * s.(d + 1)
  done;
  st

(** [offset s idx] — flat offset of multi-index [idx], bounds-checked. *)
let offset (s : t) (idx : int array) : int =
  let r = rank s in
  if Array.length idx <> r then
    err "index rank %d does not match shape %s" (Array.length idx) (to_string s);
  let st = strides s in
  let off = ref 0 in
  for d = 0 to r - 1 do
    if idx.(d) < 0 || idx.(d) >= s.(d) then
      err "index %d out of bounds for dimension %d of %s" idx.(d) d
        (to_string s);
    off := !off + (idx.(d) * st.(d))
  done;
  !off

(** [unoffset s off] — inverse of {!offset}: the multi-index of flat
    offset [off]. *)
let unoffset (s : t) (off : int) : int array =
  let st = strides s in
  Array.mapi (fun d _ -> off / st.(d) mod s.(d)) s

(** [iter s f] — apply [f] to every multi-index of [s] in row-major order.
    The callback receives a buffer that is {b reused} between calls; copy it
    if you keep it. *)
let iter (s : t) (f : int array -> unit) : unit =
  let r = rank s in
  if size s > 0 then begin
    let idx = Array.make r 0 in
    let rec go d =
      if d = r then f idx
      else
        for i = 0 to s.(d) - 1 do
          idx.(d) <- i;
          go (d + 1)
        done
    in
    go 0
  end

(** [broadcast_eq a b] — the matrix extension requires equal shape and rank
    for matrix-matrix arithmetic (§III-A2); raises otherwise. *)
let broadcast_eq (a : t) (b : t) : t =
  if rank a <> rank b then
    err "rank mismatch: %s vs %s" (to_string a) (to_string b);
  if not (equal a b) then
    err "shape mismatch: %s vs %s" (to_string a) (to_string b);
  a

(** [concat_outer a b] — [a] with an extra leading extent (used by
    matrixMap result assembly in tests). *)
let with_outer (n : int) (s : t) : t = Array.append [| n |] s
