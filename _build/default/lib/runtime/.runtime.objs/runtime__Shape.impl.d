lib/runtime/shape.ml: Array Fmt Format String
