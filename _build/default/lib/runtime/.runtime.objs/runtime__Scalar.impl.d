lib/runtime/scalar.ml: Fmt Format
