lib/runtime/ndarray.ml: Array Fmt Format Fun Int64 List Scalar Shape String
