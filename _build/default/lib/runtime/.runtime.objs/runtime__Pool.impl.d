lib/runtime/pool.ml: Array Atomic Domain Fun Unix
