lib/runtime/simd.ml: Array Fmt Int32 Printf String
