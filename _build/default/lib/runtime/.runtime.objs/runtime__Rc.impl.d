lib/runtime/rc.ml: Fun Hashtbl Mutex
