(** Simulated SSE vectors (§V): "we use Intel's SSE which uses 128 byte
    [sic] vectors. We fill each vector with 4 32-bit single-precision
    floating point numbers."

    The vectorize transformation rewrites an innermost loop to operate on
    4-wide vectors with a scalar epilogue; the interpreter executes those
    vector IR operations through this module.  Lane width is a parameter
    ("these parameters can be set differently for different systems") with
    the paper's 4 as default. *)

let default_width = 4

type v = float array
(** One vector register: [width] single-precision lanes.  We round values
    through 32-bit precision on load/store boundaries to mirror SSE's
    single-precision arithmetic being observable in the output. *)

let to_f32 (x : float) : float = Int32.float_of_bits (Int32.bits_of_float x)

(** [load a i ~width] — [_mm_loadu_ps]: lanes [a.(i) .. a.(i+width-1)]. *)
let load (a : float array) i ~width : v =
  Array.init width (fun k -> to_f32 a.(i + k))

(** [splat x ~width] — [_mm_set1_ps]: all lanes equal to [x]. *)
let splat x ~width : v = Array.make width (to_f32 x)

(** [store a i v] — [_mm_storeu_ps]. *)
let store (a : float array) i (v : v) =
  Array.iteri (fun k x -> a.(i + k) <- to_f32 x) v

let map2 f (x : v) (y : v) : v =
  if Array.length x <> Array.length y then
    invalid_arg "Simd: lane width mismatch";
  Array.init (Array.length x) (fun k -> to_f32 (f x.(k) y.(k)))

let add = map2 ( +. )  (** [_mm_add_ps] *)

let sub = map2 ( -. )  (** [_mm_sub_ps] *)

let mul = map2 ( *. )  (** [_mm_mul_ps] *)

let div = map2 ( /. )  (** [_mm_div_ps] *)

(** Horizontal sum of all lanes (used when a vectorized fold leaves the
    loop). *)
let hsum (v : v) = Array.fold_left ( +. ) 0. v

let width (v : v) = Array.length v
let lane (v : v) k = v.(k)
let equal (a : v) (b : v) = a = b
let pp ppf v =
  Fmt.pf ppf "<%s>" (String.concat ", " (Array.to_list (Array.map (Printf.sprintf "%g") v)))
