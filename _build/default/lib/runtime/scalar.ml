(** Scalar values of the three matrix element types (§III-A1: "matrices can
    only contain integers, booleans, or floating point numbers"), with the
    C-style arithmetic/comparison semantics the translated code uses. *)

type t = F of float | I of int | B of bool

exception Type_error of string

let err fmt = Format.kasprintf (fun m -> raise (Type_error m)) fmt

let pp ppf = function
  | F f -> Fmt.pf ppf "%g" f
  | I i -> Fmt.int ppf i
  | B b -> Fmt.bool ppf b

let to_string v = Fmt.str "%a" pp v

let to_float = function
  | F f -> f
  | I i -> float_of_int i
  | B _ -> err "boolean used as number"

let to_int = function
  | I i -> i
  | F f -> int_of_float f
  | B _ -> err "boolean used as integer"

let to_bool = function B b -> b | v -> err "%s used as boolean" (to_string v)
let truthy = function B b -> b | I i -> i <> 0 | F f -> f <> 0.

type arith = Add | Sub | Mul | Div | Mod

let arith_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"

(** C-style binary arithmetic with int→float promotion; integer division
    truncates; [%] is defined on integers only. *)
let arith op a b =
  match (op, a, b) with
  | Add, I x, I y -> I (x + y)
  | Sub, I x, I y -> I (x - y)
  | Mul, I x, I y -> I (x * y)
  | Div, I x, I y ->
      if y = 0 then err "integer division by zero" else I (x / y)
  | Mod, I x, I y -> if y = 0 then err "modulo by zero" else I (x mod y)
  | Mod, _, _ -> err "%% requires integer operands"
  | (Add | Sub | Mul | Div), (F _ | I _), (F _ | I _) -> (
      let x = to_float a and y = to_float b in
      match op with
      | Add -> F (x +. y)
      | Sub -> F (x -. y)
      | Mul -> F (x *. y)
      | Div -> F (x /. y)
      | Mod -> assert false)
  | _, B _, _ | _, _, B _ -> err "arithmetic on boolean"

type cmp = Lt | Le | Gt | Ge | Eq | Ne

let cmp_name = function
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="

let cmp op a b =
  let c =
    match (a, b) with
    | B x, B y -> compare x y
    | (F _ | I _), (F _ | I _) -> compare (to_float a) (to_float b)
    | _ -> err "comparison between boolean and number"
  in
  B
    (match op with
    | Lt -> c < 0
    | Le -> c <= 0
    | Gt -> c > 0
    | Ge -> c >= 0
    | Eq -> c = 0
    | Ne -> c <> 0)

type logic = And | Or

let logic op a b =
  match op with
  | And -> B (truthy a && truthy b)
  | Or -> B (truthy a || truthy b)

let neg = function
  | I i -> I (-i)
  | F f -> F (-.f)
  | B _ -> err "negation of boolean"

let not_ v = B (not (truthy v))

let equal a b =
  match (a, b) with
  | I x, I y -> x = y
  | F x, F y -> x = y
  | B x, B y -> x = y
  | _ -> false
