lib/cir/ir.ml: Fun List Option Printf Runtime String
