lib/cir/emit.ml: Buffer Float Ir List Printf Runtime String
