lib/cir/transforms.ml: Emit Fmt Format Fun Ir List Option Printf Result Runtime String
