lib/interp/eval.ml: Array Atomic Cir Domain Filename Fmt Format Hashtbl List Option Runtime String Sys
