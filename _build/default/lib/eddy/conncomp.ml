(** Connected-component labelling of thresholded SSH frames (§IV, Fig 4):
    "One can identify ocean eddies algorithmically by iteratively
    thresholding the SSH data and searching for connected components that
    satisfy certain criteria that are typical of ocean eddies."

    This is the native reference implementation (union-find, 4-connected);
    the translated-program version in {!Programs.fig4_conncomp} is checked
    against it. *)

module Nd = Runtime.Ndarray

(* Union-find over flat cell indices. *)
type uf = { parent : int array; rank : int array }

let uf_create n = { parent = Array.init n Fun.id; rank = Array.make n 0 }

let rec uf_find u x =
  if u.parent.(x) = x then x
  else begin
    let root = uf_find u u.parent.(x) in
    u.parent.(x) <- root;
    root
  end

let uf_union u a b =
  let ra = uf_find u a and rb = uf_find u b in
  if ra <> rb then
    if u.rank.(ra) < u.rank.(rb) then u.parent.(ra) <- rb
    else if u.rank.(ra) > u.rank.(rb) then u.parent.(rb) <- ra
    else begin
      u.parent.(rb) <- ra;
      u.rank.(ra) <- u.rank.(ra) + 1
    end

(** [label mask] — 4-connected component labelling of a 2-D boolean
    matrix.  Labels are positive and consecutive from 1 in row-major order
    of first appearance; background cells are 0. *)
let label (mask : Nd.t) : Nd.t =
  let sh = Nd.shape mask in
  if Nd.rank mask <> 2 then
    Runtime.Shape.err "Conncomp.label: rank-2 mask expected, got %s"
      (Runtime.Shape.to_string sh);
  let m = sh.(0) and n = sh.(1) in
  let at i j = Runtime.Scalar.to_bool (Nd.get mask [| i; j |]) in
  let u = uf_create (m * n) in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      if at i j then begin
        if i > 0 && at (i - 1) j then uf_union u ((i * n) + j) (((i - 1) * n) + j);
        if j > 0 && at i (j - 1) then uf_union u ((i * n) + j) ((i * n) + (j - 1))
      end
    done
  done;
  (* compact to consecutive labels *)
  let next = ref 0 in
  let renum = Hashtbl.create 16 in
  Nd.init_int [| m; n |] (fun ix ->
      let i = ix.(0) and j = ix.(1) in
      if not (at i j) then 0
      else
        let root = uf_find u ((i * n) + j) in
        match Hashtbl.find_opt renum root with
        | Some l -> l
        | None ->
            incr next;
            Hashtbl.replace renum root !next;
            !next)

(** Number of distinct positive labels. *)
let count_components (labels : Nd.t) : int =
  let seen = Hashtbl.create 16 in
  for off = 0 to Nd.size labels - 1 do
    let l = Runtime.Scalar.to_int (Nd.get_flat labels off) in
    if l > 0 then Hashtbl.replace seen l ()
  done;
  Hashtbl.length seen

type component = {
  c_label : int;
  cells : int;  (** area in grid cells *)
  centroid : float * float;
  min_i : int;
  max_i : int;
  min_j : int;
  max_j : int;
}

(** Per-component statistics (area, centroid, bounding box) — the
    "criteria that are typical of ocean eddies" are expressed over
    these. *)
let components (labels : Nd.t) : component list =
  let sh = Nd.shape labels in
  let m = sh.(0) and n = sh.(1) in
  let tbl : (int, int ref * float ref * float ref * int ref * int ref * int ref * int ref) Hashtbl.t =
    Hashtbl.create 16
  in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let l = Runtime.Scalar.to_int (Nd.get labels [| i; j |]) in
      if l > 0 then begin
        let cells, si, sj, mni, mxi, mnj, mxj =
          match Hashtbl.find_opt tbl l with
          | Some x -> x
          | None ->
              let x =
                (ref 0, ref 0., ref 0., ref max_int, ref (-1), ref max_int, ref (-1))
              in
              Hashtbl.replace tbl l x;
              x
        in
        incr cells;
        si := !si +. float_of_int i;
        sj := !sj +. float_of_int j;
        mni := min !mni i;
        mxi := max !mxi i;
        mnj := min !mnj j;
        mxj := max !mxj j
      end
    done
  done;
  Hashtbl.fold
    (fun l (cells, si, sj, mni, mxi, mnj, mxj) acc ->
      {
        c_label = l;
        cells = !cells;
        centroid = (!si /. float_of_int !cells, !sj /. float_of_int !cells);
        min_i = !mni;
        max_i = !mxi;
        min_j = !mnj;
        max_j = !mxj;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b -> compare a.c_label b.c_label)

(** Eddy criteria from the literature the paper builds on: compact
    (roughly round bounding box), within an area band. *)
let eddy_like ?(min_cells = 4) ?(max_cells = 400) (c : component) : bool =
  let h = c.max_i - c.min_i + 1 and w = c.max_j - c.min_j + 1 in
  let bbox = h * w in
  c.cells >= min_cells && c.cells <= max_cells
  && float_of_int c.cells >= 0.4 *. float_of_int bbox

(** [detect_frame frame ~threshold] — threshold an SSH frame from below
    (eddy centres are LOW) and return eddy-like components. *)
let detect_frame ?(threshold = -0.25) (fr : Nd.t) : component list =
  let mask = Nd.cmp_scalar Runtime.Scalar.Lt fr (Runtime.Scalar.F threshold) ~scalar_left:false in
  components (label mask) |> List.filter eddy_like

(** Iterative thresholding over a frame (the Fig 4 loop): runs
    [detect_frame] for thresholds from [lo] to [hi] in [steps] steps and
    returns all detections with their threshold. *)
let detect_iterative ?(lo = -0.8) ?(hi = -0.1) ?(steps = 8) (fr : Nd.t) :
    (float * component list) list =
  List.init steps (fun s ->
      let th = lo +. ((hi -. lo) *. float_of_int s /. float_of_int (max 1 (steps - 1))) in
      (th, detect_frame ~threshold:th fr))
