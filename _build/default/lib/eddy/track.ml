(** Eddy tracking across time frames (§IV: "the detection algorithm will
    miss an eddy for a given time frame, which can have significant
    impacts on the tracking results [18]").

    Greedy nearest-centroid matching with a gap tolerance: a track may
    survive [max_gap] frames without a detection before it is closed —
    exactly the failure mode the temporal scoring of Fig 7/8 is designed
    to mitigate, which the tests demonstrate by comparing tracking quality
    with and without score-based gap filling. *)

type detection = { d_t : int; d_centroid : float * float; d_cells : int }

type track = {
  id : int;
  mutable dets : detection list;  (** newest first *)
  mutable last_seen : int;
}

let dist (a : float * float) (b : float * float) =
  let dx = fst a -. fst b and dy = snd a -. snd b in
  sqrt ((dx *. dx) +. (dy *. dy))

(** [run ~max_dist ~max_gap frames] — [frames.(t)] are the detections of
    frame [t]; returns completed tracks (each a time-ordered detection
    list). *)
let run ?(max_dist = 3.0) ?(max_gap = 1) (frames : detection list array) :
    detection list list =
  let next_id = ref 0 in
  let active : track list ref = ref [] in
  let done_ : track list ref = ref [] in
  Array.iteri
    (fun t dets ->
      (* close stale tracks *)
      let still, stale =
        List.partition (fun tr -> t - tr.last_seen <= max_gap) !active
      in
      active := still;
      done_ := stale @ !done_;
      (* greedy match: nearest pair first *)
      let pairs =
        List.concat_map
          (fun tr ->
            List.filter_map
              (fun d ->
                match tr.dets with
                | last :: _ ->
                    let dd = dist last.d_centroid d.d_centroid in
                    if dd <= max_dist then Some (dd, tr, d) else None
                | [] -> None)
              dets)
          !active
        |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
      in
      let used_tracks = Hashtbl.create 8 and used_dets = Hashtbl.create 8 in
      List.iter
        (fun (_, tr, d) ->
          if
            (not (Hashtbl.mem used_tracks tr.id))
            && not (Hashtbl.mem used_dets (d.d_centroid, d.d_t))
          then begin
            Hashtbl.replace used_tracks tr.id ();
            Hashtbl.replace used_dets (d.d_centroid, d.d_t) ();
            tr.dets <- d :: tr.dets;
            tr.last_seen <- t
          end)
        pairs;
      (* unmatched detections start new tracks *)
      List.iter
        (fun d ->
          if not (Hashtbl.mem used_dets (d.d_centroid, d.d_t)) then begin
            incr next_id;
            active := { id = !next_id; dets = [ d ]; last_seen = t } :: !active
          end)
        dets)
    frames;
  List.map (fun tr -> List.rev tr.dets) (!active @ !done_)

(** Tracks of at least [min_len] detections (the usual eddy criterion of
    a minimum lifetime). *)
let long_tracks ?(min_len = 3) tracks =
  List.filter (fun tr -> List.length tr >= min_len) tracks

(** Fraction of a ground-truth trajectory covered by the best matching
    track — the tracking-quality measure used in the tests. *)
let coverage ~(truth : (int * (float * float)) list) (tracks : detection list list) : float =
  if truth = [] then 0.
  else
    let best =
      List.fold_left
        (fun best tr ->
          let hits =
            List.length
              (List.filter
                 (fun (t, pos) ->
                   List.exists
                     (fun d -> d.d_t = t && dist d.d_centroid pos <= 2.5)
                     tr)
                 truth)
          in
          max best hits)
        0 tracks
    in
    float_of_int best /. float_of_int (List.length truth)
