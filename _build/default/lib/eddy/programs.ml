(** The paper's example programs, as extended-C sources for the composed
    translator.  Tests, examples and benchmarks all compile these through
    the real pipeline (scan → parse → check → lower → run/emit).

    Deviations from the figures, documented in DESIGN.md:
    - range syntax is uniformly [lo::hi] (the paper mixes [0:4] in prose
      with [beginning::i] in Fig 8);
    - if/while/for bodies are braced;
    - [main] takes no arguments (no [char**] in CMINUS);
    - Fig 4's elided "compute connected components" body is filled in with
      an iterative minimum-label propagation. *)

(** Fig 1: temporal mean of sea surface height, nested with-loops. *)
let fig1_temporal_mean =
  {|
int main() {
  Matrix float <3> mat = readMatrix("ssh.data");
  int m = dimSize(mat, 0);
  int n = dimSize(mat, 1);
  int p = dimSize(mat, 2);
  Matrix float <2> means = init(Matrix float <2>, m, n);
  means = with ([0,0] <= [i,j] < [m,n])
          genarray ([m,n],
            (with ([0] <= [k] < [p]) fold (+, 0f, mat[i,j,k])) / p);
  writeMatrix("means.data", means);
  return 0;
}
|}

(** Fig 9: the same computation with an explicit transformation script —
    split j by 4, vectorize the inner lanes, parallelize the outer loop. *)
let fig9_transformed =
  {|
int main() {
  Matrix float <3> mat = readMatrix("ssh.data");
  int m = dimSize(mat, 0);
  int n = dimSize(mat, 1);
  int p = dimSize(mat, 2);
  Matrix float <2> means = init(Matrix float <2>, m, n);
  means = with ([0,0] <= [i,j] < [m,n])
          genarray ([m,n],
            (with ([0] <= [k] < [p]) fold (+, 0f, mat[i,j,k])) / p)
    transform split j by 4, jin, jout.
              vectorize jin.
              parallelize i;
  writeMatrix("means.data", means);
  return 0;
}
|}

(** A transform-script factory over the same kernel, for the benchmark
    sweep of §V variants. *)
let fig9_with_script script =
  Printf.sprintf
    {|
int main() {
  Matrix float <3> mat = readMatrix("ssh.data");
  int m = dimSize(mat, 0);
  int n = dimSize(mat, 1);
  int p = dimSize(mat, 2);
  Matrix float <2> means = init(Matrix float <2>, m, n);
  means = with ([0,0] <= [i,j] < [m,n])
          genarray ([m,n],
            (with ([0] <= [k] < [p]) fold (+, 0f, mat[i,j,k])) / p)
    transform %s;
  writeMatrix("means.data", means);
  return 0;
}
|}
    script

(** Fig 4: connected components mapped over the time dimension with
    [matrixMap], after logical-index filtering by date.  The elided
    component-labelling body is an iterative minimum-label propagation
    (4-connected), seeded with unique positive labels. *)
let fig4_conncomp =
  {|
Matrix int <2> connComp(Matrix float <2> ssh) {
  int m = dimSize(ssh, 0);
  int n = dimSize(ssh, 1);
  Matrix int <2> labels = init(Matrix int <2>, m, n);
  Matrix bool <2> binary = ssh < -0.25;
  for (int i = 0; i < m; i++) {
    for (int j = 0; j < n; j++) {
      if (binary[i, j]) { labels[i, j] = i * n + j + 1; }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (int i = 0; i < m; i++) {
      for (int j = 0; j < n; j++) {
        if (binary[i, j]) {
          int best = labels[i, j];
          if (i > 0) {
            if (binary[i - 1, j] && labels[i - 1, j] < best) { best = labels[i - 1, j]; }
          }
          if (j > 0) {
            if (binary[i, j - 1] && labels[i, j - 1] < best) { best = labels[i, j - 1]; }
          }
          if (i < m - 1) {
            if (binary[i + 1, j] && labels[i + 1, j] < best) { best = labels[i + 1, j]; }
          }
          if (j < n - 1) {
            if (binary[i, j + 1] && labels[i, j + 1] < best) { best = labels[i, j + 1]; }
          }
          if (best < labels[i, j]) {
            labels[i, j] = best;
            changed = true;
          }
        }
      }
    }
  }
  return labels;
}

int main() {
  Matrix float <3> ssh = readMatrix("ssh.data");
  Matrix int <1> dates = readMatrix("dates.data");
  Matrix float <3> recent = ssh[:, :, dates >= 1012000];
  Matrix int <3> labels = matrixMap(connComp, recent, [0, 1]);
  writeMatrix("eddyLabels.data", labels);
  return 0;
}
|}

(** Fig 8: the full ocean-eddy temporal scoring application — tuples,
    gather-range indexing on both sides of assignments, [end], with-loops
    and matrixMap over the time dimension. *)
let fig8_scoring =
  {|
(Matrix float <1>, int, int) getTrough(Matrix float <1> ts, int i) {
  int beginning = i;
  int n = dimSize(ts, 0);
  while (i + 1 < n && ts[i] >= ts[i + 1]) { i = i + 1; }
  while (i + 1 < n && ts[i] < ts[i + 1]) { i = i + 1; }
  return (ts[beginning::i], beginning, i);
}

Matrix float <1> computeArea(Matrix float <1> areaOfInterest) {
  float y1 = areaOfInterest[0];
  float y2 = areaOfInterest[end];
  int x1 = 0;
  int x2 = dimSize(areaOfInterest, 0) - 1;
  float m = (y1 - y2) / ((float)(x1 - x2));
  float b = y1 - m * (float) x1;
  Matrix float <1> Line = (x1::x2) * m + b;
  float area = with ([0] <= [i] < [dimSize(Line, 0)])
               fold (+, 0f, Line[i] - areaOfInterest[i]);
  return with ([0] <= [i] < [dimSize(Line, 0)])
         genarray ([dimSize(Line, 0)], area);
}

Matrix float <1> scoreTS(Matrix float <1> ts) {
  Matrix float <1> scores = init(Matrix float <1>, dimSize(ts, 0));
  int i = 0;
  while (ts[i] < ts[i + 1]) { i = i + 1; }
  int n = dimSize(ts, 0);
  int beginning = 0;
  Matrix float <1> trough;
  while (i < n - 1) {
    (trough, beginning, i) = getTrough(ts, i);
    scores[beginning::i] = computeArea(trough);
  }
  return scores;
}

int main() {
  Matrix float <3> data = readMatrix("ssh.data");
  Matrix float <3> scores = matrixMap(scoreTS, data, [2]);
  writeMatrix("temporalScores.data", scores);
  return 0;
}
|}

(** The unfused variant of Fig 1 used by the slice-copy-elimination
    benchmark: materialises each time series before folding over it —
    the §III-A5 optimization rewrites it into Fig 1's in-place form. *)
let fig1_with_slice_copy =
  {|
float seriesMean(Matrix float <3> mat, int i, int j) {
  Matrix float <1> ts = mat[i, j, :];
  int p = dimSize(ts, 0);
  float total = with ([0] <= [k] < [p]) fold (+, 0f, ts[k]);
  return total / p;
}

int main() {
  Matrix float <3> mat = readMatrix("ssh.data");
  int m = dimSize(mat, 0);
  int n = dimSize(mat, 1);
  Matrix float <2> means = init(Matrix float <2>, m, n);
  for (int i = 0; i < m; i++) {
    for (int j = 0; j < n; j++) {
      means[i, j] = seriesMean(mat, i, j);
    }
  }
  writeMatrix("means.data", means);
  return 0;
}
|}
