(** Native reference implementation of the temporal eddy-scoring algorithm
    of §IV (Fig 7/8): find troughs between local maxima in each SSH time
    series and score every trough point with the area between the trough
    and the peak-to-peak line.  "Large areas will then correspond to
    segments of the time series that underwent substantial drops and
    rises, and those that are shallow … can be associated with noise."

    The translated Fig 8 program is tested against this oracle. *)

module Nd = Runtime.Ndarray
module S = Runtime.Scalar

(** [get_trough ts i] — Fig 8's [getTrough]: from local maximum [i], walk
    down then up to the next local maximum; returns (trough values,
    beginning, end). *)
let get_trough (ts : float array) (i : int) : float array * int * int =
  let n = Array.length ts in
  let beginning = i in
  let i = ref i in
  while !i + 1 < n && ts.(!i) >= ts.(!i + 1) do
    incr i
  done;
  while !i + 1 < n && ts.(!i) < ts.(!i + 1) do
    incr i
  done;
  (Array.sub ts beginning (!i - beginning + 1), beginning, !i)

(** [compute_area trough] — Fig 8's [computeArea]: area between the trough
    and the straight line joining its end points, broadcast to every
    trough position. *)
let compute_area (aoi : float array) : float array =
  let n = Array.length aoi in
  if n < 2 then Array.make n 0.
  else begin
    let y1 = aoi.(0) and y2 = aoi.(n - 1) in
    let x1 = 0. and x2 = float_of_int (n - 1) in
    let m = (y1 -. y2) /. (x1 -. x2) in
    let b = y1 -. (m *. x1) in
    let area = ref 0. in
    for i = 0 to n - 1 do
      let line = (m *. float_of_int i) +. b in
      area := !area +. (line -. aoi.(i))
    done;
    Array.make n !area
  end

(** [score_ts ts] — Fig 8's [scoreTS]: trim to the first local maximum,
    then score every trough. *)
let score_ts (ts : float array) : float array =
  let n = Array.length ts in
  let scores = Array.make n 0. in
  if n >= 2 then begin
    let i = ref 0 in
    while !i + 1 < n && ts.(!i) < ts.(!i + 1) do
      incr i
    done;
    while !i < n - 1 do
      let trough, beginning, j = get_trough ts !i in
      let area = compute_area trough in
      Array.blit area 0 scores beginning (Array.length area);
      if j <= !i then i := n (* safety: no progress possible *)
      else i := j
    done
  end;
  scores

(** [score_cube cube] — map {!score_ts} over the third dimension of an SSH
    cube (the [matrixMap(scoreTS, data, [2])] of Fig 8's main). *)
let score_cube (cube : Nd.t) : Nd.t =
  let sh = Nd.shape cube in
  let out = Nd.create Nd.EFloat sh in
  for i = 0 to sh.(0) - 1 do
    for j = 0 to sh.(1) - 1 do
      let ts =
        Array.init sh.(2) (fun k -> S.to_float (Nd.get cube [| i; j; k |]))
      in
      let sc = score_ts ts in
      for k = 0 to sh.(2) - 1 do
        Nd.set out [| i; j; k |] (S.F sc.(k))
      done
    done
  done;
  out

(** Highest-scoring grid points of a scored cube: candidate eddy tracks. *)
let top_points (scored : Nd.t) (k : int) : (int * int * int * float) list =
  let sh = Nd.shape scored in
  let acc = ref [] in
  for i = 0 to sh.(0) - 1 do
    for j = 0 to sh.(1) - 1 do
      for t = 0 to sh.(2) - 1 do
        let v = S.to_float (Nd.get scored [| i; j; t |]) in
        acc := (i, j, t, v) :: !acc
      done
    done
  done;
  List.sort (fun (_, _, _, a) (_, _, _, b) -> compare b a) !acc
  |> List.filteri (fun idx _ -> idx < k)
