(** Synthetic sea-surface-height (SSH) data (§IV).

    The paper's data is AVISO satellite altimetry (721×1440×954: latitude ×
    longitude × weekly time steps) which we do not have; this generator
    builds a cube with the features the eddy algorithms key on —
    substitution documented in DESIGN.md §2:

    - {b eddies}: moving Gaussian depressions in the height field ("the
      rotating nature of ocean eddies … causes the center of the eddy to
      be lower in height compared to its perimeter", Fig 6), each with a
      position, drift velocity, radius, depth and lifetime;
    - {b background restlessness}: smooth low-amplitude swell ("the
      restlessness of the ocean");
    - {b noise}: small per-sample perturbations ("inaccurate noisy
      readings from the satellites") from a deterministic LCG so runs are
      reproducible;
    - {b ground truth}: the generator returns each eddy's trajectory, so
      correctness checks can do what the paper could not — compare
      detections against truth. *)

type eddy = {
  lat0 : float;  (** initial position (fractional grid coordinates) *)
  lon0 : float;
  vlat : float;  (** drift per time step *)
  vlon : float;
  radius : float;  (** Gaussian radius in grid cells *)
  depth : float;  (** centre depression in height units *)
  t_start : int;
  t_end : int;
}

type truth = { eddies : eddy list }

(** Position of an eddy at time [t], when alive. *)
let position e t =
  if t < e.t_start || t > e.t_end then None
  else
    let dt = float_of_int (t - e.t_start) in
    Some (e.lat0 +. (e.vlat *. dt), e.lon0 +. (e.vlon *. dt))

(* Deterministic pseudo-random stream (LCG), so the synthetic data is
   reproducible across runs and platforms. *)
let lcg seed =
  let state = ref (seed land 0x3FFFFFFF) in
  fun () ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    float_of_int !state /. float_of_int 0x3FFFFFFF

(** [generate ~lat ~lon ~time ~n_eddies ~seed ()] — an SSH cube of shape
    [lat × lon × time] with [n_eddies] planted eddies, plus ground truth. *)
let generate ?(noise = 0.02) ?(swell = 0.05) ~lat ~lon ~time ~n_eddies ~seed
    () : Runtime.Ndarray.t * truth =
  let rand = lcg seed in
  let eddies =
    List.init n_eddies (fun _ ->
        let t_start = int_of_float (rand () *. float_of_int (max 1 (time / 2))) in
        let life = 3 + int_of_float (rand () *. float_of_int (max 1 (time / 2))) in
        {
          lat0 = 2. +. (rand () *. (float_of_int lat -. 4.));
          lon0 = 2. +. (rand () *. (float_of_int lon -. 4.));
          vlat = (rand () -. 0.5) *. 0.6;
          vlon = (rand () -. 0.5) *. 0.6;
          radius = 1.2 +. (rand () *. 2.0);
          depth = 0.5 +. rand ();
          t_start;
          t_end = min (time - 1) (t_start + life);
        })
  in
  let data =
    Runtime.Ndarray.init_float [| lat; lon; time |] (fun ix ->
        let i = float_of_int ix.(0)
        and j = float_of_int ix.(1)
        and t = ix.(2) in
        let ft = float_of_int t in
        (* smooth background swell *)
        let base =
          swell
          *. (sin ((i /. 7.) +. (ft /. 9.)) +. cos ((j /. 5.) -. (ft /. 11.)))
        in
        (* planted eddies: Gaussian depressions *)
        let dip =
          List.fold_left
            (fun acc e ->
              match position e t with
              | None -> acc
              | Some (ei, ej) ->
                  let d2 =
                    (((i -. ei) ** 2.) +. ((j -. ej) ** 2.))
                    /. (e.radius *. e.radius)
                  in
                  acc -. (e.depth *. exp (-.d2)))
            0. eddies
        in
        (* deterministic "satellite" noise, varying with all coordinates *)
        let h =
          float_of_int
            (((ix.(0) * 73856093) lxor (ix.(1) * 19349663)
             lxor (ix.(2) * 83492791))
            land 0xFFFF)
          /. 65535.
        in
        base +. dip +. (noise *. ((2. *. h) -. 1.)))
  in
  (data, { eddies })

(** One spatial frame (lat × lon) at time [t]. *)
let frame (cube : Runtime.Ndarray.t) (t : int) : Runtime.Ndarray.t =
  Runtime.Ndarray.slice cube
    [| Runtime.Ndarray.All; Runtime.Ndarray.All; Runtime.Ndarray.At t |]

(** One time series (length [time]) at grid point (i, j). *)
let series (cube : Runtime.Ndarray.t) i j : Runtime.Ndarray.t =
  Runtime.Ndarray.slice cube
    [| Runtime.Ndarray.At i; Runtime.Ndarray.At j; Runtime.Ndarray.All |]

(** ASCII rendering of a frame (the Fig 6 stand-in): deeper = darker. *)
let render_frame (fr : Runtime.Ndarray.t) : string =
  let sh = Runtime.Ndarray.shape fr in
  let buf = Buffer.create (sh.(0) * (sh.(1) + 1)) in
  let ramp = " .:-=+*#%@" in
  (* scale to the frame's own min/max *)
  let mn = ref infinity and mx = ref neg_infinity in
  for off = 0 to Runtime.Ndarray.size fr - 1 do
    let v = Runtime.Scalar.to_float (Runtime.Ndarray.get_flat fr off) in
    if v < !mn then mn := v;
    if v > !mx then mx := v
  done;
  let range = if !mx -. !mn < 1e-9 then 1. else !mx -. !mn in
  for i = 0 to sh.(0) - 1 do
    for j = 0 to sh.(1) - 1 do
      let v =
        Runtime.Scalar.to_float (Runtime.Ndarray.get fr [| i; j |])
      in
      (* low SSH (eddy centre) renders dark *)
      let x = (v -. !mn) /. range in
      let k =
        min (String.length ramp - 1)
          (int_of_float ((1. -. x) *. float_of_int (String.length ramp - 1)))
      in
      Buffer.add_char buf ramp.[k]
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(** Write a frame as a portable graymap (PGM), for external viewers. *)
let write_pgm path (fr : Runtime.Ndarray.t) =
  let sh = Runtime.Ndarray.shape fr in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "P2\n%d %d\n255\n" sh.(1) sh.(0);
      let mn = ref infinity and mx = ref neg_infinity in
      for off = 0 to Runtime.Ndarray.size fr - 1 do
        let v = Runtime.Scalar.to_float (Runtime.Ndarray.get_flat fr off) in
        if v < !mn then mn := v;
        if v > !mx then mx := v
      done;
      let range = if !mx -. !mn < 1e-9 then 1. else !mx -. !mn in
      for i = 0 to sh.(0) - 1 do
        for j = 0 to sh.(1) - 1 do
          let v = Runtime.Scalar.to_float (Runtime.Ndarray.get fr [| i; j |]) in
          Printf.fprintf oc "%d "
            (int_of_float ((v -. !mn) /. range *. 255.))
        done;
        output_char oc '\n'
      done)
