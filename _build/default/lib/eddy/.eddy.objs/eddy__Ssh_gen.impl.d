lib/eddy/ssh_gen.ml: Array Buffer Fun List Printf Runtime String
