lib/eddy/score.ml: Array List Runtime
