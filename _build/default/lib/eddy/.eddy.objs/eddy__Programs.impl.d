lib/eddy/programs.ml: Printf
