lib/eddy/conncomp.ml: Array Fun Hashtbl List Runtime
