lib/eddy/track.ml: Array Hashtbl List
