(** Concrete syntax of the matrix extension (§III-A) and its tree→AST
    builders.

    Marking terminals (§VI-A): every bridge production onto a host
    nonterminal starts with a terminal owned by this extension ([Matrix],
    [with], [matrixMap], [init], [end], [:]) — except the two infix
    operators [::] (range) and [.*] (elementwise product), which are
    {e anchored} by an extension-owned terminal in second position; see
    [Grammar.Determinism] for how the analysis treats anchored operators.

    The [with] keyword overlaps the host identifier regex: the
    context-aware scanner resolves it, so [with] (and [end], [init], …)
    remain usable as identifiers wherever the extension's keywords are not
    valid — the exact scenario §VI-A describes. *)

open Grammar.Cfg

let name = "matrix"

let grammar : Grammar.Cfg.t =
  let kw = keyword ~owner:name in
  let p = production ~owner:name in
  {
    name;
    terminals =
      [
        kw "KW_Matrix" "Matrix";
        kw "KW_with" "with";
        kw "KW_genarray" "genarray";
        kw "KW_fold" "fold";
        kw "KW_matrixMap" "matrixMap";
        kw "KW_init" "init";
        kw "KW_end" "end";
        kw "KW_fmin" "min";
        kw "KW_fmax" "max";
        kw "COLON" ":";
        kw "RANGE" "::";
        kw "DOTSTAR" ".*";
      ];
    layout = [];
    productions =
      [
        (* Matrix float <3> — the matrix type (§III-A1). *)
        p ~name:"mty" "TypeE"
          [ T "KW_Matrix"; N "ScalarType"; T "LT"; T "INTLIT"; T "GT" ];
        (* ':' as a whole-dimension index (§III-A3c). *)
        p ~name:"ix_all" "Index" [ T "COLON" ];
        (* 'end' as the last index of the current dimension. *)
        p ~name:"prim_end" "Primary" [ T "KW_end" ];
        (* x1 :: x2 — range construction / range indexing (Fig 8). *)
        p ~name:"cmp_range" "Cmp" [ N "Add"; T "RANGE"; N "Add" ];
        (* elementwise multiplication .* (§III-A2). *)
        p ~name:"mul_dotstar" "Mul" [ N "Mul"; T "DOTSTAR"; N "Unary" ];
        (* the with-loop (Fig 2). *)
        p ~name:"prim_with" "Primary"
          [ T "KW_with"; T "LP"; N "WGen"; T "RP"; N "WOp" ];
        p ~name:"wgen" "WGen"
          [
            T "LSQ"; N "ArgList"; T "RSQ"; N "WRel"; T "LSQ"; N "WIdList";
            T "RSQ"; N "WRel"; T "LSQ"; N "ArgList"; T "RSQ";
          ];
        p ~name:"wrel_lt" "WRel" [ T "LT" ];
        p ~name:"wrel_le" "WRel" [ T "LE" ];
        p ~name:"wid_one" "WIdList" [ T "ID" ];
        p ~name:"wid_cons" "WIdList" [ N "WIdList"; T "COMMA"; T "ID" ];
        p ~name:"wop_genarray" "WOp"
          [
            T "KW_genarray"; T "LP"; T "LSQ"; N "ArgList"; T "RSQ"; T "COMMA";
            N "E"; T "RP";
          ];
        p ~name:"wop_fold" "WOp"
          [
            T "KW_fold"; T "LP"; N "FoldOp"; T "COMMA"; N "E"; T "COMMA";
            N "E"; T "RP";
          ];
        p ~name:"foldop_plus" "FoldOp" [ T "PLUS" ];
        p ~name:"foldop_times" "FoldOp" [ T "STAR" ];
        p ~name:"foldop_min" "FoldOp" [ T "KW_fmin" ];
        p ~name:"foldop_max" "FoldOp" [ T "KW_fmax" ];
        (* matrixMap(f, m, [dims]) (§III-A5). *)
        p ~name:"prim_mmap" "Primary"
          [
            T "KW_matrixMap"; T "LP"; T "ID"; T "COMMA"; N "E"; T "COMMA";
            T "LSQ"; N "ArgList"; T "RSQ"; T "RP";
          ];
        (* init(Matrix int <2>, 721, 1440) (Fig 4). *)
        p ~name:"prim_init" "Primary"
          [ T "KW_init"; T "LP"; N "TypeE"; T "COMMA"; N "ArgList"; T "RP" ];
      ];
    start = None;
  }

(* --- tree -> AST --------------------------------------------------------------- *)

module B = Cminus.Build
module Tree = Parser.Tree

let lexeme t =
  match t with
  | Tree.Leaf tok -> tok.Lexer.Token.lexeme
  | _ -> B.err (Tree.span t) "expected a token"

let rel_of t =
  match Tree.prod_name t with
  | "wrel_lt" -> Nodes.RLt
  | "wrel_le" -> Nodes.RLe
  | s -> B.err (Tree.span t) "unexpected relation %s" s

let rec wids t =
  match t with
  | Tree.Node (p, [ id ], _) when p.Grammar.Cfg.p_name = "wid_one" ->
      [ lexeme id ]
  | Tree.Node (p, [ rest; _; id ], _) when p.Grammar.Cfg.p_name = "wid_cons" ->
      wids rest @ [ lexeme id ]
  | _ -> B.err (Tree.span t) "malformed with-loop index list"

let build_wgen (ctx : B.ctx) t : Nodes.generator =
  match t with
  | Tree.Node (_, [ _; lo; _; rel1; _; ids; _; rel2; _; hi; _ ], span) ->
      {
        Nodes.lo = ctx.B.expr_list lo;
        lo_rel = rel_of rel1;
        ids = wids ids;
        hi_rel = rel_of rel2;
        hi = ctx.B.expr_list hi;
        gspan = span;
      }
  | _ -> B.err (Tree.span t) "malformed with-loop generator"

let build_wop (ctx : B.ctx) t : Nodes.operation =
  match t with
  | Tree.Node (p, kids, _) when p.Grammar.Cfg.p_name = "wop_genarray" -> (
      match kids with
      | [ _; _; _; shape; _; _; body; _ ] ->
          Nodes.OGenarray (ctx.B.expr_list shape, ctx.B.expr body)
      | _ -> B.err (Tree.span t) "malformed genarray")
  | Tree.Node (p, kids, _) when p.Grammar.Cfg.p_name = "wop_fold" -> (
      match kids with
      | [ _; _; fo; _; base; _; body; _ ] ->
          let op =
            match Tree.prod_name fo with
            | "foldop_plus" -> Nodes.FPlus
            | "foldop_times" -> Nodes.FTimes
            | "foldop_min" -> Nodes.FMin
            | "foldop_max" -> Nodes.FMax
            | s -> B.err (Tree.span fo) "unexpected fold operator %s" s
          in
          Nodes.OFold (op, ctx.B.expr base, ctx.B.expr body)
      | _ -> B.err (Tree.span t) "malformed fold")
  | _ -> B.err (Tree.span t) "malformed with-loop operation"

let register () =
  Hashtbl.replace B.ext_ty_builders "mty" (fun ctx t ->
      match t with
      | Tree.Node (_, [ _; sty; _; rank; _ ], span) ->
          let r = int_of_string (lexeme rank) in
          if r < 1 then B.err span "matrix rank must be at least 1"
          else Cminus.Ast.TyExt (Nodes.TyMatrix (ctx.B.ty sty, r))
      | _ -> B.err (Tree.span t) "malformed Matrix type");
  Hashtbl.replace B.ext_index_builders "ix_all" (fun _ctx t ->
      Cminus.Ast.IAll (Tree.span t));
  Hashtbl.replace B.ext_expr_builders "prim_end" (fun _ctx t ->
      Cminus.Ast.mk_expr (Cminus.Ast.ExtE Nodes.EEnd) (Tree.span t));
  Hashtbl.replace B.ext_expr_builders "cmp_range" (fun ctx t ->
      match t with
      | Tree.Node (_, [ a; _; b ], span) ->
          Cminus.Ast.mk_expr
            (Cminus.Ast.Bin
               (Cminus.Ast.BExt Nodes.op_range, ctx.B.expr a, ctx.B.expr b))
            span
      | _ -> B.err (Tree.span t) "malformed range");
  Hashtbl.replace B.ext_expr_builders "mul_dotstar" (fun ctx t ->
      match t with
      | Tree.Node (_, [ a; _; b ], span) ->
          Cminus.Ast.mk_expr
            (Cminus.Ast.Bin
               (Cminus.Ast.BExt Nodes.op_dotstar, ctx.B.expr a, ctx.B.expr b))
            span
      | _ -> B.err (Tree.span t) "malformed .*");
  Hashtbl.replace B.ext_expr_builders "prim_with" (fun ctx t ->
      match t with
      | Tree.Node (_, [ _; _; gen; _; op ], span) ->
          Cminus.Ast.mk_expr
            (Cminus.Ast.ExtE
               (Nodes.EWith (build_wgen ctx gen, build_wop ctx op)))
            span
      | _ -> B.err (Tree.span t) "malformed with-loop");
  Hashtbl.replace B.ext_expr_builders "prim_mmap" (fun ctx t ->
      match t with
      | Tree.Node (_, [ _; _; f; _; m; _; _; dims; _; _ ], span) ->
          let dim_exprs = ctx.B.expr_list dims in
          let dims =
            List.map
              (fun (e : Cminus.Ast.expr) ->
                match e.Cminus.Ast.e with
                | Cminus.Ast.IntLit i -> i
                | _ ->
                    B.err e.Cminus.Ast.espan
                      "matrixMap dimensions must be integer literals")
              dim_exprs
          in
          Cminus.Ast.mk_expr
            (Cminus.Ast.ExtE (Nodes.EMatrixMap (lexeme f, ctx.B.expr m, dims)))
            span
      | _ -> B.err (Tree.span t) "malformed matrixMap");
  Hashtbl.replace B.ext_expr_builders "prim_init" (fun ctx t ->
      match t with
      | Tree.Node (_, [ _; _; ty; _; dims; _ ], span) ->
          Cminus.Ast.mk_expr
            (Cminus.Ast.ExtE (Nodes.EInit (ctx.B.ty ty, ctx.B.expr_list dims)))
            span
      | _ -> B.err (Tree.span t) "malformed init")
