(** Semantic analysis contributed by the matrix extension (§III-A): the
    "extended type system [that] is able to verify that these operations
    are only performed on matrices of the same type and rank", the
    with-loop arity checks of §III-A4, matrixMap signature checks, and the
    classification of every subscript item into the §III-A3 indexing
    modes. *)

module C = Cminus.Check
module T = Cminus.Types
module A = Cminus.Ast
module S = Runtime.Scalar
module Nd = Runtime.Ndarray

let elem_of_ty_expr t (te : A.ty_expr) span : Nd.elem =
  match te with
  | A.TyInt -> Nd.EInt
  | A.TyFloat -> Nd.EFloat
  | A.TyBool -> Nd.EBool
  | _ ->
      C.error t span "matrices may contain int, bool or float elements only";
      Nd.EInt

let h_ty t (ext : A.ext_ty) span : T.ty option =
  match ext with
  | Nodes.TyMatrix (elem_te, rank) ->
      Some (T.TMat (elem_of_ty_expr t elem_te span, rank))
  | _ -> None

(* --- operators (§III-A2) --------------------------------------------------------- *)

let promote_elem (a : Nd.elem) (b : Nd.elem) : Nd.elem option =
  match (a, b) with
  | Nd.EInt, Nd.EInt -> Some Nd.EInt
  | (Nd.EFloat | Nd.EInt), (Nd.EFloat | Nd.EInt) -> Some Nd.EFloat
  | _ -> None

let scalar_elem = function
  | T.TInt -> Some Nd.EInt
  | T.TFloat -> Some Nd.EFloat
  | T.TBool -> Some Nd.EBool
  | _ -> None

let rec h_binop t (op : A.binop) ta tb span : T.ty option =
  match (op, ta, tb) with
  (* range construction x1::x2 : a 1-D integer vector *)
  | A.BExt o, T.TInt, T.TInt when o = Nodes.op_range ->
      Some (T.TMat (Nd.EInt, 1))
  (* elementwise .* *)
  | A.BExt o, T.TMat (e1, r1), T.TMat (e2, r2) when o = Nodes.op_dotstar ->
      if e1 <> e2 || r1 <> r2 then begin
        C.error t span ".* requires matrices of the same type and rank";
        Some ta
      end
      else if e1 = Nd.EBool then begin
        C.error t span ".* on boolean matrices";
        Some ta
      end
      else Some ta
  (* matrix (.) matrix arithmetic: * is linear-algebra multiplication,
     everything else elementwise *)
  | A.BArith S.Mul, T.TMat (e1, r1), T.TMat (e2, r2) ->
      if e1 <> e2 then begin
        C.error t span "* requires matrices of the same element type";
        Some ta
      end
      else if r1 <> 2 || r2 <> 2 then begin
        C.error t span
          "matrix multiplication requires rank-2 operands (use .* for \
           elementwise)";
        Some ta
      end
      else if e1 = Nd.EBool then begin
        C.error t span "matrix multiplication on boolean matrices";
        Some ta
      end
      else Some (T.TMat (e1, 2))
  | A.BArith aop, T.TMat (e1, r1), T.TMat (e2, r2) ->
      if e1 <> e2 || r1 <> r2 then begin
        C.error t span "%s requires matrices of the same type and rank"
          (S.arith_name aop);
        Some ta
      end
      else if e1 = Nd.EBool then begin
        C.error t span "arithmetic on boolean matrices";
        Some ta
      end
      else if aop = S.Mod && e1 <> Nd.EInt then begin
        C.error t span "%% requires integer matrices";
        Some ta
      end
      else Some (T.TMat (e1, r1))
  (* matrix (.) scalar, in both orders *)
  | A.BArith aop, T.TMat (e, r), sc when T.is_scalar sc -> (
      match scalar_elem sc with
      | Some se when aop = S.Mod ->
          if e = Nd.EInt && se = Nd.EInt then Some (T.TMat (Nd.EInt, r))
          else begin
            C.error t span "%% requires integer operands";
            Some ta
          end
      | Some se -> (
          match promote_elem e se with
          | Some e' -> Some (T.TMat (e', r))
          | None ->
              C.error t span "arithmetic between %s and %s" (T.to_string ta)
                (T.to_string sc);
              Some ta)
      | None -> None)
  | A.BArith _, sc, (T.TMat _ as m) when T.is_scalar sc ->
      h_binop t op m sc span
  (* comparisons produce boolean matrices (logical indexing, Fig 4) *)
  | A.BCmp _, T.TMat (e1, r1), T.TMat (e2, r2) ->
      if e1 <> e2 || r1 <> r2 then begin
        C.error t span "comparison requires matrices of the same type and rank";
        Some (T.TMat (Nd.EBool, r1))
      end
      else Some (T.TMat (Nd.EBool, r1))
  | A.BCmp _, T.TMat (e, r), sc when T.is_scalar sc -> (
      match scalar_elem sc with
      | Some se when promote_elem e se <> None || e = se ->
          Some (T.TMat (Nd.EBool, r))
      | _ ->
          C.error t span "comparison between %s and %s" (T.to_string ta)
            (T.to_string sc);
          Some (T.TMat (Nd.EBool, r)))
  | A.BCmp _, sc, (T.TMat _ as m) when T.is_scalar sc -> h_binop t op m sc span
  (* && and || on boolean matrices *)
  | A.BLogic _, T.TMat (Nd.EBool, r1), T.TMat (Nd.EBool, r2) ->
      if r1 <> r2 then
        C.error t span "logical operator requires matrices of the same rank";
      Some (T.TMat (Nd.EBool, r1))
  | _ -> None

let h_unop t (op : A.unop) ta span : T.ty option =
  match (op, ta) with
  | A.UNeg, T.TMat ((Nd.EInt | Nd.EFloat), _) -> Some ta
  | A.UNot, T.TMat (Nd.EBool, _) -> Some ta
  | A.UNeg, T.TMat (Nd.EBool, _) ->
      C.error t span "negation of a boolean matrix";
      Some ta
  | _ -> None

(* --- subscripting (§III-A3) -------------------------------------------------------- *)

(** Classification of one index item, shared with the lowering. *)
type index_kind =
  | KAt  (** scalar int: collapses the dimension *)
  | KAll  (** [:] *)
  | KMask  (** 1-D boolean matrix: logical indexing *)
  | KGather  (** 1-D integer matrix: range / gather indexing *)

let classify_index t (base_ty : T.ty) (d : int) (ix : A.index) : index_kind =
  match ix with
  | A.IAll _ -> KAll
  | A.IExpr e -> (
      let saved = t.C.index_ctx in
      t.C.index_ctx <- Some (base_ty, d);
      let te = C.check_expr t e in
      t.C.index_ctx <- saved;
      match te with
      | T.TInt -> KAt
      | T.TMat (Nd.EBool, 1) -> KMask
      | T.TMat (Nd.EInt, 1) -> KGather
      | _ ->
          C.error t e.A.espan
            "index must be an integer, a boolean vector (logical indexing) \
             or an integer vector (gather), got %s"
            (T.to_string te);
          KAt)

let h_subscript t (base_ty : T.ty) (indices : A.index list) span : T.ty option =
  match base_ty with
  | T.TMat (elem, rank) ->
      if List.length indices <> rank then begin
        C.error t span
          "rank-%d matrix subscripted with %d indices (one per dimension \
           required)"
          rank (List.length indices);
        (* still check the index expressions for secondary errors *)
        List.iteri (fun d ix -> ignore (classify_index t base_ty d ix)) indices;
        Some (T.TMat (elem, rank))
      end
      else begin
        let kinds = List.mapi (fun d ix -> classify_index t base_ty d ix) indices in
        let kept =
          List.length (List.filter (fun k -> k <> KAt) kinds)
        in
        if kept = 0 then Some (T.elem_ty elem)
        else Some (T.TMat (elem, kept))
      end
  | _ -> None

(** Scalar fill into a selected region: [labels[mask, :] = 0]. *)
let h_assign _t ~dst ~src _span =
  match (dst, src) with
  | T.TMat (e, _), sc when T.is_scalar sc -> (
      match scalar_elem sc with
      | Some se -> se = e || promote_elem e se = Some e
      | None -> false)
  | _ -> false

(* --- builtins ------------------------------------------------------------------------ *)

let h_call t (name : string) (args : A.expr list) span
    ~(expected : T.ty option) : T.ty option =
  match name with
  | "dimSize" -> (
      match args with
      | [ m; d ] ->
          (match C.check_expr t m with
          | T.TMat _ -> ()
          | ty ->
              C.error t m.A.espan "dimSize expects a matrix, got %s"
                (T.to_string ty));
          (match C.check_expr t d with
          | T.TInt -> ()
          | ty ->
              C.error t d.A.espan "dimSize expects an int dimension, got %s"
                (T.to_string ty));
          Some T.TInt
      | _ ->
          C.error t span "dimSize expects (matrix, dimension)";
          Some T.TInt)
  | "readMatrix" -> (
      match args with
      | [ p ] -> (
          (match C.check_expr t p with
          | T.TStr -> ()
          | ty ->
              C.error t p.A.espan "readMatrix expects a path string, got %s"
                (T.to_string ty));
          match expected with
          | Some (T.TMat _ as ty) -> Some ty
          | _ ->
              C.error t span
                "readMatrix needs a matrix-typed context (declare the \
                 variable with its Matrix type)";
              Some (T.TMat (Nd.EFloat, 1)))
      | _ ->
          C.error t span "readMatrix expects a single path argument";
          Some (T.TMat (Nd.EFloat, 1)))
  | "writeMatrix" -> (
      match args with
      | [ p; m ] ->
          (match C.check_expr t p with
          | T.TStr -> ()
          | ty ->
              C.error t p.A.espan "writeMatrix expects a path string, got %s"
                (T.to_string ty));
          (match C.check_expr t m with
          | T.TMat _ -> ()
          | ty ->
              C.error t m.A.espan "writeMatrix expects a matrix, got %s"
                (T.to_string ty));
          Some T.TVoid
      | _ ->
          C.error t span "writeMatrix expects (path, matrix)";
          Some T.TVoid)
  | _ -> None

(* --- extension expressions ------------------------------------------------------------- *)

let scalar_result t (e : A.expr) what : T.ty =
  let ty = C.check_expr t e in
  if not (T.is_scalar ty) then
    C.error t e.A.espan "%s must be a scalar, got %s" what (T.to_string ty);
  ty

let h_expr t (ext : A.ext_expr) span ~(expected : T.ty option) : T.ty option =
  ignore expected;
  match ext with
  | Nodes.EEnd -> (
      match t.C.index_ctx with
      | Some _ -> Some T.TInt
      | None ->
          C.error t span "'end' is only meaningful inside a matrix subscript";
          Some T.TInt)
  | Nodes.EInit (te, dims) -> (
      let ty = C.resolve_ty t te span in
      match ty with
      | T.TMat (_, r) ->
          if List.length dims <> r then
            C.error t span "init: rank-%d matrix needs %d extents, got %d" r r
              (List.length dims);
          List.iter
            (fun d ->
              match C.check_expr t d with
              | T.TInt -> ()
              | dty ->
                  C.error t d.A.espan "init extent must be int, got %s"
                    (T.to_string dty))
            dims;
          Some ty
      | _ ->
          C.error t span "init expects a Matrix type, got %s" (T.to_string ty);
          Some ty)
  | Nodes.EWith (gen, op) ->
      (* §III-A4: bound arity = index arity (= shape arity for genarray). *)
      let n = List.length gen.Nodes.ids in
      if List.length gen.Nodes.lo <> n then
        C.error t gen.Nodes.gspan
          "with-loop: %d lower bound(s) for %d index variable(s)"
          (List.length gen.Nodes.lo) n;
      if List.length gen.Nodes.hi <> n then
        C.error t gen.Nodes.gspan
          "with-loop: %d upper bound(s) for %d index variable(s)"
          (List.length gen.Nodes.hi) n;
      let dup =
        List.find_opt
          (fun id ->
            List.length (List.filter (String.equal id) gen.Nodes.ids) > 1)
          gen.Nodes.ids
      in
      Option.iter
        (fun id ->
          C.error t gen.Nodes.gspan "duplicate with-loop index '%s'" id)
        dup;
      List.iter
        (fun b -> ignore (scalar_result t b "with-loop bound")) gen.Nodes.lo;
      List.iter
        (fun b -> ignore (scalar_result t b "with-loop bound")) gen.Nodes.hi;
      C.in_scope t (fun () ->
          List.iter
            (fun id -> C.declare t gen.Nodes.gspan id T.TInt)
            gen.Nodes.ids;
          match op with
          | Nodes.OGenarray (shape, body) ->
              if List.length shape <> n then
                C.error t span
                  "genarray: shape has %d dimension(s) but the generator \
                   binds %d index variable(s)"
                  (List.length shape) n;
              List.iter
                (fun d ->
                  match C.check_expr t d with
                  | T.TInt -> ()
                  | dty ->
                      C.error t d.A.espan "genarray extent must be int, got %s"
                        (T.to_string dty))
                shape;
              let bty = C.check_expr t body in
              (match T.elem_of_ty bty with
              | Some elem -> Some (T.TMat (elem, List.length shape))
              | None ->
                  C.error t body.A.espan
                    "genarray body must be a scalar, got %s" (T.to_string bty);
                  Some (T.TMat (Nd.EFloat, List.length shape)))
          | Nodes.OFold (fop, base, body) ->
              let tb = scalar_result t base "fold base value" in
              let tv = scalar_result t body "fold body" in
              (match fop with
              | Nodes.FPlus | Nodes.FTimes | Nodes.FMin | Nodes.FMax ->
                  if T.equal tb T.TBool || T.equal tv T.TBool then
                    C.error t span "fold %s over booleans"
                      (Nodes.foldop_name fop));
              (match T.promote tb tv with
              | Some ty -> Some ty
              | None ->
                  C.error t span "fold base %s incompatible with body %s"
                    (T.to_string tb) (T.to_string tv);
                  Some tb))
  | Nodes.EMatrixMap (fname, m, dims) -> (
      let mty = C.check_expr t m in
      match mty with
      | T.TMat (elem, rank) -> (
          let k = List.length dims in
          List.iter
            (fun d ->
              if d < 0 || d >= rank then
                C.error t span "matrixMap dimension %d out of range for %s" d
                  (T.to_string mty))
            dims;
          if List.sort_uniq compare dims <> List.sort compare dims then
            C.error t span "matrixMap dimensions must be distinct";
          match Hashtbl.find_opt t.C.funcs fname with
          | None ->
              C.error t span "matrixMap: undefined function '%s'" fname;
              Some mty
          | Some ([ T.TMat (pe, pr) ], T.TMat (re_, rr)) ->
              if pe <> elem then
                C.error t span
                  "matrixMap: %s takes Matrix %s but the data is Matrix %s"
                  fname (Nd.elem_name pe) (Nd.elem_name elem);
              if pr <> k || rr <> k then
                C.error t span
                  "matrixMap: %s must map rank-%d to rank-%d matrices (got \
                   rank %d -> %d); the result always has the shape and rank \
                   of the input (§III-A5)"
                  fname k k pr rr;
              Some (T.TMat (re_, rank))
          | Some _ ->
              C.error t span
                "matrixMap: %s must take one matrix and return a matrix"
                fname;
              Some mty)
      | ty ->
          C.error t m.A.espan "matrixMap expects a matrix, got %s"
            (T.to_string ty);
          Some ty)
  | _ -> None

let h_stmt _t _ext _span = false

let hooks : C.hooks =
  {
    (C.no_hooks "matrix") with
    C.h_ty;
    h_expr;
    h_stmt;
    h_binop;
    h_unop;
    h_call;
    h_subscript;
    h_assign;
  }
