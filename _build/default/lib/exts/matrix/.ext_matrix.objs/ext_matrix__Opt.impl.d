lib/exts/matrix/opt.ml: Cminus List Nodes Option
