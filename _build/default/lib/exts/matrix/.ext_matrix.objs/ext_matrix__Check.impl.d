lib/exts/matrix/check.ml: Cminus Hashtbl List Nodes Option Runtime String
