lib/exts/matrix/nodes.ml: Cminus Printf
