lib/exts/matrix/syntax.ml: Cminus Grammar Hashtbl Lexer List Nodes Parser
