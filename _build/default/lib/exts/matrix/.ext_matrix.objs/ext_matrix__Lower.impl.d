lib/exts/matrix/lower.ml: Cir Cminus Fun List Nodes Printf Runtime
