lib/exts/matrix/matrix_ext.ml: Ag Check Cminus Lower Opt Syntax
