(** Abstract syntax contributed by the matrix extension (§III-A) — new
    constructors on the host's extensible AST variants. *)

type foldop = FPlus | FTimes | FMin | FMax

let foldop_name = function
  | FPlus -> "+"
  | FTimes -> "*"
  | FMin -> "min"
  | FMax -> "max"

type relop = RLt | RLe  (** generator bound relations, [<] or [<=] *)

type generator = {
  lo : Cminus.Ast.expr list;
  lo_rel : relop;
  ids : string list;
  hi_rel : relop;
  hi : Cminus.Ast.expr list;
  gspan : Cminus.Ast.span;
}
(** The with-loop generator [\[lo\] <= \[ids\] < \[hi\]] (Fig 2). *)

type operation =
  | OGenarray of Cminus.Ast.expr list * Cminus.Ast.expr
      (** [genarray(\[shape\], expr)] *)
  | OFold of foldop * Cminus.Ast.expr * Cminus.Ast.expr
      (** [fold(op, baseVal, expr)] *)

(* New expression forms. *)
type Cminus.Ast.ext_expr +=
  | EWith of generator * operation  (** the SAC with-loop (§III-A4) *)
  | EMatrixMap of string * Cminus.Ast.expr * int list
      (** [matrixMap(f, m, \[dims\])] (§III-A5) *)
  | EInit of Cminus.Ast.ty_expr * Cminus.Ast.expr list
      (** [init(Matrix t <r>, d0, …)] (Fig 4) *)
  | EEnd  (** [end]: last index of the current subscript dimension *)

(* New type syntax. *)
type Cminus.Ast.ext_ty +=
  | TyMatrix of Cminus.Ast.ty_expr * int  (** [Matrix float <3>] *)

(** Names of the extension's infix operators, carried in [Ast.BExt]. *)
let op_range = "::"  (** range construction, Fig 8's [(x1::x2)] *)

let op_dotstar = ".*"  (** elementwise multiplication (§III-A2) *)

let () =
  Cminus.Ast.register_ext_ty_printer (function
    | TyMatrix (t, r) ->
        Some
          (Printf.sprintf "Matrix %s <%d>" (Cminus.Ast.ty_expr_to_string t) r)
    | _ -> None);
  Cminus.Ast.register_ext_expr_printer (function
    | EWith _ -> Some "with-loop"
    | EMatrixMap _ -> Some "matrixMap"
    | EInit _ -> Some "init"
    | EEnd -> Some "end"
    | _ -> None)
