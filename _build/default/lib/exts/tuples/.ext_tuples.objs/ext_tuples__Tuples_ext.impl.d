lib/exts/tuples/tuples_ext.ml: Ag Cminus Grammar Hashtbl Parser
