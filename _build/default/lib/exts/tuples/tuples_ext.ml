(** The tuples general-purpose extension (§III-B): tuple types
    [(int, float, bool)], anonymous creation [(x, y, z)], and destructuring
    assignment [(a, b, c) = f()] — "a way of returning multiple arguments
    from a function … more general and can be used universally".

    Composability status, reproduced from §VI-A: this extension {b fails}
    the modular determinism analysis — "the initial symbol for tuple
    expressions is a left-paren '(', which violates the restriction that a
    unique initial terminal symbol is needed on extension syntax.  Thus the
    tuples extension will be packaged as part of the host language."
    The driver therefore always bundles this fragment with the host
    instead of offering it as a selectable extension, and the test suite
    asserts the analysis really does reject it.

    Because it is host-packaged, its abstract syntax lives in the host AST
    ([TyTuple], [TupleLit]) and its typing/lowering rules are host rules;
    this module contributes the concrete syntax, the tree→AST builders,
    and its AG-spec metadata. *)

open Grammar.Cfg

let name = "tuples"

(* --- concrete syntax -------------------------------------------------------- *)

let grammar : Grammar.Cfg.t =
  let p = production ~owner:name in
  {
    name;
    (* No terminals of its own: every token is the host's — which is
       exactly why isComposable rejects it. *)
    terminals = [];
    layout = [];
    productions =
      [
        (* (int, float, bool) — tuple types; at least two components so the
           syntax never collides with a parenthesised scalar type (cast). *)
        p ~name:"ty_tuple" "TypeE" [ T "LP"; N "TypeCommaList"; T "RP" ];
        p ~name:"tcl_two" "TypeCommaList"
          [ N "TypeE"; T "COMMA"; N "TypeE" ];
        p ~name:"tcl_cons" "TypeCommaList"
          [ N "TypeCommaList"; T "COMMA"; N "TypeE" ];
        (* (x, y, z) — anonymous tuple creation; also the destructuring
           pattern on the left of '=' (the typechecker enforces
           lvalue-ness there). *)
        p ~name:"prim_tuple" "Primary"
          [ T "LP"; N "E"; T "COMMA"; N "ArgList"; T "RP" ];
      ];
    start = None;
  }

(* --- tree -> AST ---------------------------------------------------------------- *)

let register () =
  Hashtbl.replace Cminus.Build.ext_ty_builders "ty_tuple"
    (fun (ctx : Cminus.Build.ctx) t ->
      match t with
      | Parser.Tree.Node (_, [ _; tl; _ ], _) ->
          let rec flatten t =
            match t with
            | Parser.Tree.Node (p, [ a; _; b ], _)
              when p.Grammar.Cfg.p_name = "tcl_cons" ->
                flatten a @ [ ctx.Cminus.Build.ty b ]
            | Parser.Tree.Node (p, [ a; _; b ], _)
              when p.Grammar.Cfg.p_name = "tcl_two" ->
                [ ctx.Cminus.Build.ty a; ctx.Cminus.Build.ty b ]
            | _ ->
                Cminus.Build.err (Parser.Tree.span t) "malformed tuple type"
          in
          Cminus.Ast.TyTuple (flatten tl)
      | _ -> Cminus.Build.err (Parser.Tree.span t) "malformed tuple type");
  Hashtbl.replace Cminus.Build.ext_expr_builders "prim_tuple"
    (fun (ctx : Cminus.Build.ctx) t ->
      match t with
      | Parser.Tree.Node (_, [ _; e1; _; rest; _ ], span) ->
          Cminus.Ast.mk_expr
            (Cminus.Ast.TupleLit
               (ctx.Cminus.Build.expr e1 :: ctx.Cminus.Build.expr_list rest))
            span
      | _ -> Cminus.Build.err (Parser.Tree.span t) "malformed tuple literal")

(* --- attribute-grammar metadata ---------------------------------------------------- *)

(** Both tuple productions define the full host attribute complement
    (errors, type) and forward for translation — the standard pattern for
    a well-defined extension. *)
let ag_spec : Ag.Wellformed.spec =
  {
    sp_name = name;
    attrs = [];
    prods =
      [
        Ag.Wellformed.full_prod ~owner:name ~lhs:"TypeE"
          ~children:[ "TypeCommaList" ]
          ~defines:[ "errors"; "type" ] ~forwards:true "ty_tuple";
        Ag.Wellformed.full_prod ~owner:name ~lhs:"TypeCommaList"
          ~children:[ "TypeE"; "TypeE" ]
          ~defines:[ "errors"; "type" ] "tcl_two";
        Ag.Wellformed.full_prod ~owner:name ~lhs:"TypeCommaList"
          ~children:[ "TypeCommaList"; "TypeE" ]
          ~defines:[ "errors"; "type" ] "tcl_cons";
        Ag.Wellformed.full_prod ~owner:name ~lhs:"Primary"
          ~children:[ "E"; "ArgList" ]
          ~defines:[ "errors"; "type" ] ~forwards:true "prim_tuple";
      ];
  }
