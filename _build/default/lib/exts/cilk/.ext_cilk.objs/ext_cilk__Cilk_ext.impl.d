lib/exts/cilk/cilk_ext.ml: Ag Cir Cminus Grammar Hashtbl Lexer List Option Parser Printf
