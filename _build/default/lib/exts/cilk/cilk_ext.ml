(** Cilk-style parallelism as a pluggable language extension — the paper's
    stated future work (§VIII): "we are also developing an extension that
    adds Cilk [4] style parallelism constructs to C.  The goal is to
    determine how sophisticated run-times, like in Cilk, can be delivered
    as a pluggable language extension."

    Constructs:

    {v
      spawn f(args);          // run f concurrently, discard its result
      spawn x = f(args);      // x receives f's result at the next sync
      sync;                   // wait for every spawn of this function
    v}

    Every function has Cilk's implicit [sync] before returning.  Both
    statements start with a fresh marking terminal, so the extension
    passes the strict form of the modular determinism analysis — no
    anchored-operator caveats.

    Restrictions (documented simplifications of full Cilk):
    - [spawn x = f(...)]'s target must be a {e scalar} variable — matrix
      results would need ownership transfer across threads; matrix output
      is written through shared matrices into disjoint regions instead
      (the usual Cilk idiom);
    - reading [x] between its spawn and the next [sync] is a race, exactly
      as in Cilk. *)

open Grammar.Cfg
module A = Cminus.Ast
module T = Cminus.Types

let name = "cilk"

type A.ext_stmt +=
  | SSpawn of string option * string * A.expr list
      (** (target variable, function, arguments) *)
  | SSync

let () =
  A.register_ext_stmt_printer (function
    | SSpawn (_, f, _) -> Some (Printf.sprintf "spawn %s(...)" f)
    | SSync -> Some "sync"
    | _ -> None)

let grammar : Grammar.Cfg.t =
  let kw = keyword ~owner:name in
  let p = production ~owner:name in
  {
    name;
    terminals = [ kw "KW_spawn" "spawn"; kw "KW_sync" "sync" ];
    layout = [];
    productions =
      [
        p ~name:"simple_spawn_call" "Simple"
          [ T "KW_spawn"; T "ID"; T "LP"; N "ArgsOpt"; T "RP" ];
        p ~name:"simple_spawn_assign" "Simple"
          [
            T "KW_spawn"; T "ID"; T "ASSIGN"; T "ID"; T "LP"; N "ArgsOpt";
            T "RP";
          ];
        p ~name:"simple_sync" "Simple" [ T "KW_sync" ];
      ];
    start = None;
  }

module Tree = Parser.Tree
module B = Cminus.Build

let lexeme t =
  match t with
  | Tree.Leaf tok -> tok.Lexer.Token.lexeme
  | _ -> B.err (Tree.span t) "expected a token"

let register () =
  Hashtbl.replace B.ext_stmt_builders "simple_spawn_call"
    (fun (ctx : B.ctx) t ->
      match t with
      | Tree.Node (_, [ _; f; _; args; _ ], span) ->
          [
            A.mk_stmt
              (A.ExtS (SSpawn (None, lexeme f, ctx.B.expr_list args)))
              span;
          ]
      | _ -> B.err (Tree.span t) "malformed spawn");
  Hashtbl.replace B.ext_stmt_builders "simple_spawn_assign"
    (fun (ctx : B.ctx) t ->
      match t with
      | Tree.Node (_, [ _; x; _; f; _; args; _ ], span) ->
          [
            A.mk_stmt
              (A.ExtS (SSpawn (Some (lexeme x), lexeme f, ctx.B.expr_list args)))
              span;
          ]
      | _ -> B.err (Tree.span t) "malformed spawn assignment");
  Hashtbl.replace B.ext_stmt_builders "simple_sync" (fun _ctx t ->
      [ A.mk_stmt (A.ExtS SSync) (Tree.span t) ])

(* --- semantic analysis ----------------------------------------------------------- *)

module C = Cminus.Check

let check_hooks : C.hooks =
  {
    (C.no_hooks name) with
    C.h_stmt =
      (fun t ext span ->
        match ext with
        | SSync -> true
        | SSpawn (target, fname, args) ->
            (match Hashtbl.find_opt t.C.funcs fname with
            | None -> C.error t span "spawn of undefined function '%s'" fname
            | Some (ptys, rty) ->
                if List.length args <> List.length ptys then
                  C.error t span "%s expects %d argument(s), got %d" fname
                    (List.length ptys) (List.length args)
                else
                  List.iter2
                    (fun a pty ->
                      let ta = C.check_expr ~expected:pty t a in
                      if not (T.assignable ~dst:pty ~src:ta) then
                        C.error t a.A.espan
                          "spawn argument of type %s where %s is expected"
                          (T.to_string ta) (T.to_string pty))
                    args ptys;
                (match (target, rty) with
                | None, _ -> ()
                | Some x, rty -> (
                    if not (T.is_scalar rty) then
                      C.error t span
                        "spawn target must receive a scalar (got %s); write \
                         matrix results through a shared matrix instead"
                        (T.to_string rty);
                    match C.lookup t x with
                    | None -> C.error t span "unbound spawn target '%s'" x
                    | Some tx ->
                        if not (T.assignable ~dst:tx ~src:rty) then
                          C.error t span "cannot assign %s to spawn target %s"
                            (T.to_string rty) (T.to_string tx))));
            true
        | _ -> false);
  }

(* --- lowering ----------------------------------------------------------------------- *)

module L = Cminus.Lower

let lower_hooks : L.hooks =
  {
    (L.no_hooks name) with
    L.l_stmt =
      (fun t ext _span ->
        match ext with
        | SSync -> Some [ Cir.Ir.Sync ]
        | SSpawn (target, fname, args) ->
            let stmts, argv =
              List.fold_left
                (fun (ss, es) a ->
                  let s, e = L.lower_expr t a in
                  (ss @ s, es @ [ e ]))
                ([], []) args
            in
            let lv = Option.map (fun x -> Cir.Ir.LVar x) target in
            Some (stmts @ [ Cir.Ir.Spawn (lv, fname, argv) ])
        | _ -> None);
  }

let ag_spec : Ag.Wellformed.spec =
  let fp = Ag.Wellformed.full_prod ~owner:name in
  {
    sp_name = name;
    attrs = [];
    prods =
      [
        fp ~lhs:"Simple" ~children:[ "ArgsOpt" ] ~defines:[ "errors"; "type" ]
          ~forwards:true "simple_spawn_call";
        fp ~lhs:"Simple" ~children:[ "ArgsOpt" ] ~defines:[ "errors"; "type" ]
          ~forwards:true "simple_spawn_assign";
        fp ~lhs:"Simple" ~children:[] ~defines:[ "errors"; "type" ]
          "simple_sync";
      ];
  }
