(** The reference-counting pointer extension (§III-B): "we attach an extra
    4 bytes to every piece of memory that gets allocated … If another
    variable also becomes a reference for that same piece of data, then we
    increment this counter by one.  Anytime a variable goes out of scope,
    or gets assigned a new piece of data, then we decrement its reference
    counter by one.  If a reference counter ever reaches zero, then we
    free that data."

    This extension adds {e no concrete syntax}: its contribution is the
    translation behaviour.  Selecting it makes the driver lower programs
    with reference-count insertion ([Lower.lower_program ~rc:true]):
    matrix handles gain retain/release operations at assignments, scope
    exits, early returns and statement boundaries, and §III-C builds "the
    underlying implementation of matrices on top of the reference counting
    pointers".

    With no productions and no terminals, the extension trivially passes
    both composability analyses; the interesting guarantee is dynamic and
    machine-checked: after a translated program runs, the runtime's
    live-allocation registry must be empty (no leaks) and no cell may ever
    be double-freed — asserted by the test suite over every example
    program. *)

let name = "refptr"
let grammar : Grammar.Cfg.t = Grammar.Cfg.empty name
let register () = ()
let check_hooks : Cminus.Check.hooks = Cminus.Check.no_hooks name
let lower_hooks : Cminus.Lower.hooks = Cminus.Lower.no_hooks name

(** Selecting this extension turns on rc insertion in the driver. *)
let enables_rc = true

let ag_spec : Ag.Wellformed.spec = { sp_name = name; attrs = []; prods = [] }
