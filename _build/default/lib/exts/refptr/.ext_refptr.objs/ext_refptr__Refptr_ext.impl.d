lib/exts/refptr/refptr_ext.ml: Ag Cminus Grammar
