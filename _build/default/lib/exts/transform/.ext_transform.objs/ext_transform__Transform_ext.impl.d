lib/exts/transform/transform_ext.ml: Ag Cir Cminus Grammar Hashtbl Lexer List Parser String
