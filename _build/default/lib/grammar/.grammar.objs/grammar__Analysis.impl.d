lib/grammar/analysis.ml: Array Cfg Fmt Hashtbl Int List Set String
