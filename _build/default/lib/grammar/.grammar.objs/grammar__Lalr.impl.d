lib/grammar/lalr.ml: Analysis Array Cfg Fmt Hashtbl Int List Option Queue Set String
