lib/grammar/determinism.ml: Analysis Array Cfg Fmt Format Hashtbl Int Lalr List Queue Set String
