lib/grammar/cfg.ml: Fmt Hashtbl List Option Printf Regexe String
