(** LALR(1) parse-table construction.

    The construction is the textbook one used by Copper:
    build the LR(0) canonical collection, then compute LALR(1) lookaheads
    for kernel items by spontaneous generation and propagation
    (Dragon-book algorithm 4.63), and finally derive reduce lookaheads for
    every completed item — including items of epsilon productions — by an
    in-state LR(1) closure over the kernel lookaheads.

    Tables are pure data: the parser driver, the context-aware scanner
    (which needs the {i valid terminal set} of each state) and the modular
    determinism analysis all consume them. *)

module IntSet = Set.Make (Int)
module A = Analysis

(* An LR(0) item is (production index, dot position), packed into one int.
   No production in a real language spec has a RHS longer than 63 symbols. *)
let max_rhs = 64
let item prod dot = (prod * max_rhs) + dot
let item_prod it = it / max_rhs
let item_dot it = it mod max_rhs

type action =
  | Shift of int  (** target state *)
  | Reduce of int  (** production index *)
  | Accept
  | Error

type conflict = {
  c_state : int;
  c_term : int;
  c_actions : action list;  (** the clashing actions (2 or more) *)
}

type t = {
  g : A.t;
  n_states : int;
  kernels : int array array;  (** sorted kernel items per state *)
  action : action array array;  (** [action.(state).(terminal)] *)
  goto : int array array;  (** [goto.(state).(nonterminal)], -1 = none *)
  conflicts : conflict list;
  valid_terms : IntSet.t array;
      (** per state: terminals with a non-[Error] action — the set the
          context-aware scanner is allowed to match in that state *)
}

let pp_item g ppf it =
  let p = g.A.prods.(item_prod it) and dot = item_dot it in
  let lhs = g.A.nt_names.(p.A.ilhs) in
  let parts =
    Array.to_list (Array.mapi (fun i s -> (i, A.sym_name g s)) p.A.irhs)
  in
  let rhs =
    String.concat " "
      (List.concat_map
         (fun (i, s) -> if i = dot then [ "."; s ] else [ s ])
         parts)
  in
  let rhs = if dot = Array.length p.A.irhs then rhs ^ " ." else rhs in
  Fmt.pf ppf "%s ::= %s" lhs rhs

let pp_action g ppf = function
  | Shift s -> Fmt.pf ppf "shift %d" s
  | Reduce p -> (
      match g.A.prods.(p).A.src with
      | Some sp -> Fmt.pf ppf "reduce %s" sp.Cfg.p_name
      | None -> Fmt.pf ppf "reduce $START")
  | Accept -> Fmt.string ppf "accept"
  | Error -> Fmt.string ppf "error"

let pp_conflict g ppf c =
  Fmt.pf ppf "state %d on %s: %a" c.c_state
    g.A.term_names.(c.c_term)
    (Fmt.list ~sep:(Fmt.any " / ") (pp_action g))
    c.c_actions

(* LR(0) closure of an item set (sorted int list in, sorted out). *)
let lr0_closure (g : A.t) (items : int list) : int list =
  let seen = Hashtbl.create 32 in
  let rec add it =
    if not (Hashtbl.mem seen it) then begin
      Hashtbl.add seen it ();
      let p = g.A.prods.(item_prod it) and dot = item_dot it in
      if dot < Array.length p.A.irhs then
        let code = p.A.irhs.(dot) in
        if not (A.is_term g code) then
          List.iter
            (fun pi -> add (item pi 0))
            g.A.prods_of.(A.nt_of_code g code)
    end
  in
  List.iter add items;
  Hashtbl.fold (fun it () acc -> it :: acc) seen [] |> List.sort Int.compare

(* Kernel goto: from a state's closure, the kernels reachable on each
   symbol. Returns (symbol_code, kernel items sorted) assoc, sorted. *)
let kernel_gotos (g : A.t) (closure : int list) : (int * int list) list =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun it ->
      let p = g.A.prods.(item_prod it) and dot = item_dot it in
      if dot < Array.length p.A.irhs then begin
        let code = p.A.irhs.(dot) in
        let prev = Hashtbl.find_opt tbl code |> Option.value ~default:[] in
        Hashtbl.replace tbl code (item (item_prod it) (dot + 1) :: prev)
      end)
    closure;
  Hashtbl.fold
    (fun code items acc -> (code, List.sort Int.compare items) :: acc)
    tbl []
  |> List.sort compare

exception Table_error of string

(** [build cfg] constructs the LALR(1) tables for (interned) [cfg].
    Conflicts do not raise — they are recorded in [conflicts] (resolving
    nothing), so the determinism analysis can report them precisely; use
    {!require_deterministic} when a conflict should be fatal. *)
let build (cfg : Cfg.t) : t =
  let g = A.intern cfg in
  (* --- LR(0) canonical collection ------------------------------------ *)
  let state_ids : (int list, int) Hashtbl.t = Hashtbl.create 128 in
  let kernels_rev = ref [] in
  let n_states = ref 0 in
  let transitions = ref [] (* (state, symbol code, target) *) in
  let queue = Queue.create () in
  let intern_state kernel =
    match Hashtbl.find_opt state_ids kernel with
    | Some id -> id
    | None ->
        let id = !n_states in
        incr n_states;
        Hashtbl.add state_ids kernel id;
        kernels_rev := kernel :: !kernels_rev;
        Queue.add (id, kernel) queue;
        id
  in
  let start_kernel = [ item 0 0 ] in
  ignore (intern_state start_kernel);
  while not (Queue.is_empty queue) do
    let id, kernel = Queue.pop queue in
    let closure = lr0_closure g kernel in
    List.iter
      (fun (code, tgt_kernel) ->
        let tgt = intern_state tgt_kernel in
        transitions := (id, code, tgt) :: !transitions)
      (kernel_gotos g closure)
  done;
  let n_states = !n_states in
  let kernels = Array.of_list (List.rev !kernels_rev) |> Array.map Array.of_list in
  let goto_sym = Array.make n_states [] in
  List.iter
    (fun (s, code, t) -> goto_sym.(s) <- (code, t) :: goto_sym.(s))
    !transitions;
  let goto_of state code = List.assoc_opt code goto_sym.(state) in
  (* --- LALR(1) lookaheads for kernel items ---------------------------- *)
  (* Lookahead storage: per state, per kernel item index. *)
  let kernel_index state it =
    let k = kernels.(state) in
    let rec go i = if k.(i) = it then i else go (i + 1) in
    go 0
  in
  let lookaheads = Array.map (fun k -> Array.make (Array.length k) IntSet.empty) kernels in
  let propagate : (int * int, (int * int) list) Hashtbl.t = Hashtbl.create 256 in
  let add_prop src dst =
    let prev = Hashtbl.find_opt propagate src |> Option.value ~default:[] in
    Hashtbl.replace propagate src (dst :: prev)
  in
  (* Dummy lookahead terminal "#": id = n_terms (one past $EOF). *)
  let dummy = g.A.n_terms in
  (* LR(1) closure of a single (item, {la}) seed, small-step. *)
  let lr1_closure_single seed_item seed_la =
    let acc : (int, IntSet.t ref) Hashtbl.t = Hashtbl.create 32 in
    let work = Queue.create () in
    let add it la =
      match Hashtbl.find_opt acc it with
      | Some r ->
          let extra = IntSet.diff la !r in
          if not (IntSet.is_empty extra) then begin
            r := IntSet.union !r extra;
            Queue.add (it, extra) work
          end
      | None ->
          Hashtbl.add acc it (ref la);
          Queue.add (it, la) work
    in
    add seed_item (IntSet.singleton seed_la);
    while not (Queue.is_empty work) do
      let it, la = Queue.pop work in
      let p = g.A.prods.(item_prod it) and dot = item_dot it in
      if dot < Array.length p.A.irhs then begin
        let code = p.A.irhs.(dot) in
        if not (A.is_term g code) then begin
          (* FIRST(β · la); β may be empty ⇒ la flows through (including #). *)
          let beta_first = A.first_of_seq g ~from:(dot + 1) p.A.irhs IntSet.empty in
          let flows = A.seq_nullable g ~from:(dot + 1) p.A.irhs in
          let la' = if flows then IntSet.union beta_first la else beta_first in
          List.iter
            (fun pi -> add (item pi 0) la')
            g.A.prods_of.(A.nt_of_code g code)
        end
      end
    done;
    Hashtbl.fold (fun it la acc -> (it, !la) :: acc) acc []
  in
  (* Spontaneous lookaheads and propagation links. *)
  for state = 0 to n_states - 1 do
    Array.iteri
      (fun ki kit ->
        List.iter
          (fun (it, la) ->
            let p = g.A.prods.(item_prod it) and dot = item_dot it in
            if dot < Array.length p.A.irhs then begin
              let code = p.A.irhs.(dot) in
              match goto_of state code with
              | None -> ()
              | Some tgt ->
                  let tgt_item = item (item_prod it) (dot + 1) in
                  let tki = kernel_index tgt tgt_item in
                  let spont = IntSet.remove dummy la in
                  if not (IntSet.is_empty spont) then
                    lookaheads.(tgt).(tki) <-
                      IntSet.union lookaheads.(tgt).(tki) spont;
                  if IntSet.mem dummy la then add_prop (state, ki) (tgt, tki)
            end)
          (lr1_closure_single kit dummy))
      kernels.(state)
  done;
  (* $EOF is the lookahead of the augmented start item. *)
  lookaheads.(0).(0) <- IntSet.add g.A.eof lookaheads.(0).(0);
  (* Propagation fixpoint. *)
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun (s, ki) dsts ->
        let la = lookaheads.(s).(ki) in
        List.iter
          (fun (ts, tki) ->
            let before = lookaheads.(ts).(tki) in
            let after = IntSet.union before la in
            if not (IntSet.equal before after) then begin
              lookaheads.(ts).(tki) <- after;
              changed := true
            end)
          dsts)
      propagate
  done;
  (* --- Action/goto tables --------------------------------------------- *)
  let action = Array.init n_states (fun _ -> Array.make g.A.n_terms Error) in
  let goto = Array.init n_states (fun _ -> Array.make g.A.n_nts (-1)) in
  let conflicts = ref [] in
  let set_action state term act =
    match action.(state).(term) with
    | Error -> action.(state).(term) <- act
    | prev when prev = act -> ()
    | prev ->
        (* Record (and keep first action so the parser stays usable). *)
        let existing =
          List.find_opt
            (fun c -> c.c_state = state && c.c_term = term)
            !conflicts
        in
        (match existing with
        | Some c when List.mem act c.c_actions -> ()
        | Some c ->
            conflicts :=
              { c with c_actions = c.c_actions @ [ act ] }
              :: List.filter (fun c' -> c' != c) !conflicts
        | None ->
            conflicts :=
              { c_state = state; c_term = term; c_actions = [ prev; act ] }
              :: !conflicts)
  in
  for state = 0 to n_states - 1 do
    (* Shifts and gotos from LR(0) transitions. *)
    List.iter
      (fun (code, tgt) ->
        if A.is_term g code then set_action state code (Shift tgt)
        else goto.(state).(A.nt_of_code g code) <- tgt)
      goto_sym.(state);
    (* Reduces: LR(1) closure of the kernel with its computed lookaheads,
       so epsilon-production reductions get correct lookaheads too. *)
    let seeds =
      Array.to_list
        (Array.mapi (fun ki kit -> (kit, lookaheads.(state).(ki))) kernels.(state))
    in
    let closure : (int, IntSet.t ref) Hashtbl.t = Hashtbl.create 32 in
    let work = Queue.create () in
    let add it la =
      match Hashtbl.find_opt closure it with
      | Some r ->
          let extra = IntSet.diff la !r in
          if not (IntSet.is_empty extra) then begin
            r := IntSet.union !r extra;
            Queue.add (it, extra) work
          end
      | None ->
          Hashtbl.add closure it (ref la);
          Queue.add (it, la) work
    in
    List.iter (fun (it, la) -> add it la) seeds;
    while not (Queue.is_empty work) do
      let it, la = Queue.pop work in
      let p = g.A.prods.(item_prod it) and dot = item_dot it in
      if dot < Array.length p.A.irhs then begin
        let code = p.A.irhs.(dot) in
        if not (A.is_term g code) then begin
          let beta_first = A.first_of_seq g ~from:(dot + 1) p.A.irhs IntSet.empty in
          let flows = A.seq_nullable g ~from:(dot + 1) p.A.irhs in
          let la' = if flows then IntSet.union beta_first la else beta_first in
          List.iter (fun pi -> add (item pi 0) la') g.A.prods_of.(A.nt_of_code g code)
        end
      end
    done;
    Hashtbl.iter
      (fun it la ->
        let pi = item_prod it and dot = item_dot it in
        let p = g.A.prods.(pi) in
        if dot = Array.length p.A.irhs then
          IntSet.iter
            (fun t ->
              if pi = 0 then (if t = g.A.eof then set_action state t Accept)
              else set_action state t (Reduce pi))
            !la)
      closure
  done;
  let valid_terms =
    Array.init n_states (fun s ->
        let acc = ref IntSet.empty in
        Array.iteri
          (fun t a -> if a <> Error then acc := IntSet.add t !acc)
          action.(s);
        !acc)
  in
  {
    g;
    n_states;
    kernels;
    action;
    goto;
    conflicts = List.rev !conflicts;
    valid_terms;
  }

(** [is_lalr1 tbl] — true when the construction found no conflicts. *)
let is_lalr1 tbl = tbl.conflicts = []

(** [require_deterministic tbl] raises {!Table_error} with a rendered
    conflict report unless the table is conflict-free. *)
let require_deterministic tbl =
  if not (is_lalr1 tbl) then
    raise
      (Table_error
         (Fmt.str "grammar %s is not LALR(1):@.%a" tbl.g.A.cfg.Cfg.name
            (Fmt.list ~sep:Fmt.cut (pp_conflict tbl.g))
            tbl.conflicts))
