(** Context-free grammars as data, in the style of Copper grammar
    specifications: terminals carry regexes and lexical precedence,
    productions carry a name (used to key semantic actions and attribute
    equations) and an owner (host or extension), and grammars compose by
    set union.

    Grammars stay pure data so the composability analyses
    ({!Determinism}) can inspect them, exactly as Copper's modular
    determinism analysis inspects extension grammars. *)

type terminal = {
  t_name : string;  (** unique terminal name, e.g. ["ID"], ["KW_with"] *)
  t_regex : Regexe.Syntax.t;
  t_prio : int;
      (** lexical precedence: when two valid terminals match the same
          longest lexeme, the higher priority wins (keywords beat [ID]) *)
  t_owner : string;  (** grammar fragment that declared it *)
}

(** [terminal ?prio ~owner name regex_src] declares a terminal from regex
    concrete syntax. *)
let terminal ?(prio = 0) ~owner name regex_src =
  { t_name = name; t_regex = Regexe.Syntax.parse regex_src; t_prio = prio; t_owner = owner }

(** [keyword ~owner name text] — a literal keyword terminal with priority 10
    so it beats identifier terminals of priority 0. *)
let keyword ?(prio = 10) ~owner name text =
  { t_name = name; t_regex = Regexe.Syntax.literal text; t_prio = prio; t_owner = owner }

type symbol = T of string | N of string

let symbol_name = function T s -> s | N s -> s

let pp_symbol ppf = function
  | T s -> Fmt.pf ppf "%s" s
  | N s -> Fmt.pf ppf "<%s>" s

type production = {
  p_name : string;  (** unique production name, keys actions/equations *)
  lhs : string;  (** nonterminal name *)
  rhs : symbol list;
  p_owner : string;
}

let production ~owner ~name lhs rhs =
  { p_name = name; lhs; rhs; p_owner = owner }

let pp_production ppf p =
  Fmt.pf ppf "%s: %s ::= %a" p.p_name p.lhs
    (Fmt.list ~sep:Fmt.sp pp_symbol)
    p.rhs

type t = {
  name : string;  (** fragment name, e.g. ["host"], ["matrix"] *)
  terminals : terminal list;
  layout : terminal list;
      (** terminals skipped between tokens (whitespace, comments) *)
  productions : production list;
  start : string option;  (** start nonterminal; set only by the host *)
}

let empty name =
  { name; terminals = []; layout = []; productions = []; start = None }

let nonterminals g =
  List.concat_map
    (fun p -> p.lhs :: List.filter_map (function N n -> Some n | T _ -> None) p.rhs)
    g.productions
  |> List.sort_uniq String.compare

let terminal_names g = List.map (fun t -> t.t_name) g.terminals

exception Compose_error of string

(** [compose host exts] unions the host fragment with extension fragments.
    Raises {!Compose_error} on clashes that even the scanner cannot fix:
    two fragments declaring the same terminal name with different regexes,
    or the same production name twice.  (Overlapping regexes under
    different names are fine — the context-aware scanner resolves them.) *)
let compose (host : t) (exts : t list) : t =
  let name =
    String.concat "+" (host.name :: List.map (fun e -> e.name) exts)
  in
  let all = host :: exts in
  let terminals = List.concat_map (fun g -> g.terminals) all in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun t ->
      match Hashtbl.find_opt tbl t.t_name with
      | Some prev when prev.t_regex <> t.t_regex ->
          raise
            (Compose_error
               (Printf.sprintf
                  "terminal %s declared with different regexes by %s and %s"
                  t.t_name prev.t_owner t.t_owner))
      | Some _ -> ()
      | None -> Hashtbl.add tbl t.t_name t)
    terminals;
  let terminals =
    (* Dedup, preserving first-declaration order. *)
    let seen = Hashtbl.create 64 in
    List.filter
      (fun t ->
        if Hashtbl.mem seen t.t_name then false
        else (
          Hashtbl.add seen t.t_name ();
          true))
      terminals
  in
  let productions = List.concat_map (fun g -> g.productions) all in
  let pseen = Hashtbl.create 64 in
  List.iter
    (fun p ->
      if Hashtbl.mem pseen p.p_name then
        raise
          (Compose_error
             (Printf.sprintf "production name %s declared twice" p.p_name));
      Hashtbl.add pseen p.p_name ())
    productions;
  let layout =
    let seen = Hashtbl.create 8 in
    List.concat_map (fun g -> g.layout) all
    |> List.filter (fun t ->
           if Hashtbl.mem seen t.t_name then false
           else (
             Hashtbl.add seen t.t_name ();
             true))
  in
  let start =
    match List.filter_map (fun g -> g.start) all with
    | [ s ] -> Some s
    | [] -> raise (Compose_error "no start symbol")
    | _ :: _ :: _ -> raise (Compose_error "multiple start symbols")
  in
  { name; terminals; layout; productions; start }

(** Productions grouped by left-hand side. *)
let by_lhs g =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun p ->
      Hashtbl.replace tbl p.lhs
        (p :: (Hashtbl.find_opt tbl p.lhs |> Option.value ~default:[])))
    g.productions;
  Hashtbl.iter (fun k v -> Hashtbl.replace tbl k (List.rev v)) tbl;
  tbl

(** Sanity check: every nonterminal used on a RHS has at least one
    production; returns the list of undefined nonterminals. *)
let undefined_nonterminals g =
  let defined = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace defined p.lhs ()) g.productions;
  nonterminals g |> List.filter (fun n -> not (Hashtbl.mem defined n))
