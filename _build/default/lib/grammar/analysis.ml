(** Interned grammar representation and the classic grammar analyses
    (nullable, FIRST, FOLLOW) shared by the LALR construction and the
    modular determinism analysis. *)

module IntSet = Set.Make (Int)

type iprod = {
  idx : int;
  ilhs : int;  (** nonterminal id *)
  irhs : int array;  (** symbol codes, see {!is_term} *)
  src : Cfg.production option;  (** [None] only for the augmented start *)
}

type t = {
  cfg : Cfg.t;
  term_names : string array;
  nt_names : string array;
  n_terms : int;
  n_nts : int;
  eof : int;  (** terminal id of the synthetic end-of-input terminal *)
  start_nt : int;  (** augmented start nonterminal id *)
  prods : iprod array;  (** [prods.(0)] is the augmented [S' ::= S] *)
  prods_of : int list array;  (** production indices per nonterminal *)
  term_id : (string, int) Hashtbl.t;
  nt_id : (string, int) Hashtbl.t;
  nullable : bool array;
  first : IntSet.t array;  (** FIRST per nonterminal, terminal ids *)
}

(* Symbol coding: terminal t is code t; nonterminal n is code n_terms + n. *)
let is_term g code = code < g.n_terms
let term_of_code _g code = code
let nt_of_code g code = code - g.n_terms
let code_of_term _g t = t
let code_of_nt g n = g.n_terms + n

let sym_name g code =
  if is_term g code then g.term_names.(code)
  else g.nt_names.(nt_of_code g code)

let eof_name = "$EOF"
let aug_start_name = "$START"

exception Ill_formed of string

(** [intern cfg] builds the interned grammar, augmented with
    [$START ::= start $EOF]-style bookkeeping ([$EOF] is handled as the
    lookahead of the augmented item rather than a RHS symbol). *)
let intern (cfg : Cfg.t) : t =
  let start =
    match cfg.start with
    | Some s -> s
    | None -> raise (Ill_formed "grammar has no start symbol")
  in
  (match Cfg.undefined_nonterminals cfg with
  | [] -> ()
  | ns ->
      raise
        (Ill_formed
           ("nonterminals without productions: " ^ String.concat ", " ns)));
  let term_names =
    Array.of_list (List.map (fun t -> t.Cfg.t_name) cfg.terminals @ [ eof_name ])
  in
  let n_terms = Array.length term_names in
  let eof = n_terms - 1 in
  let nts = Cfg.nonterminals cfg @ [ aug_start_name ] in
  let nt_names = Array.of_list nts in
  let n_nts = Array.length nt_names in
  let start_nt = n_nts - 1 in
  let term_id = Hashtbl.create 64 and nt_id = Hashtbl.create 64 in
  Array.iteri (fun i s -> Hashtbl.replace term_id s i) term_names;
  Array.iteri (fun i s -> Hashtbl.replace nt_id s i) nt_names;
  let code_of_symbol = function
    | Cfg.T s -> (
        match Hashtbl.find_opt term_id s with
        | Some i -> i
        | None -> raise (Ill_formed ("undeclared terminal: " ^ s)))
    | Cfg.N s -> n_terms + Hashtbl.find nt_id s
  in
  let user_prods =
    List.mapi
      (fun i p ->
        {
          idx = i + 1;
          ilhs = Hashtbl.find nt_id p.Cfg.lhs;
          irhs = Array.of_list (List.map code_of_symbol p.Cfg.rhs);
          src = Some p;
        })
      cfg.productions
  in
  let aug =
    {
      idx = 0;
      ilhs = start_nt;
      irhs = [| n_terms + Hashtbl.find nt_id start |];
      src = None;
    }
  in
  let prods = Array.of_list (aug :: user_prods) in
  let prods_of = Array.make n_nts [] in
  Array.iter (fun p -> prods_of.(p.ilhs) <- p.idx :: prods_of.(p.ilhs)) prods;
  Array.iteri (fun i l -> prods_of.(i) <- List.rev l) prods_of;
  (* nullable fixpoint *)
  let nullable = Array.make n_nts false in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun p ->
        if not nullable.(p.ilhs) then
          let all_nullable =
            Array.for_all
              (fun code -> code >= n_terms && nullable.(code - n_terms))
              p.irhs
          in
          if all_nullable then begin
            nullable.(p.ilhs) <- true;
            changed := true
          end)
      prods
  done;
  (* FIRST fixpoint *)
  let first = Array.make n_nts IntSet.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun p ->
        let lhs = p.ilhs in
        let before = first.(lhs) in
        let acc = ref before in
        (try
           Array.iter
             (fun code ->
               if code < n_terms then begin
                 acc := IntSet.add code !acc;
                 raise Exit
               end
               else begin
                 acc := IntSet.union !acc first.(code - n_terms);
                 if not nullable.(code - n_terms) then raise Exit
               end)
             p.irhs
         with Exit -> ());
        if not (IntSet.equal before !acc) then begin
          first.(lhs) <- !acc;
          changed := true
        end)
      prods
  done;
  {
    cfg;
    term_names;
    nt_names;
    n_terms;
    n_nts;
    eof;
    start_nt;
    prods;
    prods_of;
    term_id;
    nt_id;
    nullable;
    first;
  }

(** [first_of_seq g syms la] — FIRST of the symbol string [syms] followed by
    the lookahead set [la]: the terminals that can begin a sentence derived
    from [syms · la].  [from] allows starting mid-array. *)
let first_of_seq g ?(from = 0) (syms : int array) (la : IntSet.t) : IntSet.t =
  let acc = ref IntSet.empty in
  let all_nullable = ref true in
  (try
     for i = from to Array.length syms - 1 do
       let code = syms.(i) in
       if is_term g code then begin
         acc := IntSet.add code !acc;
         all_nullable := false;
         raise Exit
       end
       else begin
         let n = nt_of_code g code in
         acc := IntSet.union !acc g.first.(n);
         if not g.nullable.(n) then begin
           all_nullable := false;
           raise Exit
         end
       end
     done
   with Exit -> ());
  if !all_nullable then IntSet.union !acc la else !acc

(** [seq_nullable g syms from] — can [syms.(from..)] derive the empty
    string? *)
let seq_nullable g ?(from = 0) syms =
  let n = Array.length syms in
  let rec go i =
    i >= n
    || ((not (is_term g syms.(i)))
       && g.nullable.(nt_of_code g syms.(i))
       && go (i + 1))
  in
  go from

(** FOLLOW sets per nonterminal (terminal ids); the augmented start's FOLLOW
    is [{$EOF}]. *)
let follow (g : t) : IntSet.t array =
  let follow = Array.make g.n_nts IntSet.empty in
  follow.(g.start_nt) <- IntSet.singleton g.eof;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun p ->
        let n = Array.length p.irhs in
        for i = 0 to n - 1 do
          let code = p.irhs.(i) in
          if not (is_term g code) then begin
            let b = nt_of_code g code in
            let before = follow.(b) in
            let tail_first = first_of_seq g ~from:(i + 1) p.irhs IntSet.empty in
            let acc = IntSet.union before tail_first in
            let acc =
              if seq_nullable g ~from:(i + 1) p.irhs then
                IntSet.union acc follow.(p.ilhs)
              else acc
            in
            if not (IntSet.equal before acc) then begin
              follow.(b) <- acc;
              changed := true
            end
          end
        done)
      g.prods
  done;
  follow

let pp_termset g ppf s =
  Fmt.pf ppf "{%s}"
    (String.concat ", " (List.map (fun t -> g.term_names.(t)) (IntSet.elements s)))
