(** Modular determinism analysis — the [isComposable] check of §VI-A.

    The guarantee reproduced from the paper (Schwerdfeger & Van Wyk):

    {v
      ∀i.  isLALR(H ∪ Ei) ∧ isComposable(H, Ei)
        ⇒ isLALR(H ∪ {E1, …, En})
    v}

    An extension developer runs this analysis on their extension alone,
    against the host; a programmer who picks only passing extensions gets a
    working, conflict-free scanner and parser for the composed language
    with no knowledge of grammar engineering.

    Conditions checked (a conservative, practical rendering of the
    published analysis; deviations documented in DESIGN.md §6):

    1. {b Determinism}: H ∪ E builds a conflict-free LALR(1) table.
    2. {b Marking terminals}: every {i bridge production} — an E-owned
       production whose LHS is a host nonterminal — must be initiated by a
       terminal owned by E ("a unique initial terminal symbol is needed on
       extension syntax", §VI-A).  A bridge production that instead has an
       E-owned terminal in a later position (an {i infix anchor}, e.g. the
       matrix extension's [x1 :: x2] range operator) is accepted with a
       {e note}: such operator extensions are standard ableC practice but
       carry the weaker guarantee of condition 4 plus the final-composition
       verification the driver always performs.  A bridge production with
       no E-owned terminal at all fails — this is exactly the paper's
       tuples extension, whose initial symbol is the host's ["("].
    3. {b Lexical disjointness}: no E terminal duplicates a host terminal's
       regex at equal priority (overlap is fine — the context-aware
       scanner resolves it — but an exact duplicate is unresolvable).
    4. {b Host-state non-interference}: pair the LR states of H with the
       states of H ∪ E reachable by host-symbol transitions from the start
       state.  On every paired state, every {e existing} host action
       (shift/reduce/accept on a host terminal) must be preserved; E may
       only {e add} actions on its own terminals, or fill host-[Error]
       entries with reduces of host productions (recorded as {e spillage}
       notes, since two extensions' spillage could in principle collide —
       which the final composed-table check catches). *)

module IntSet = Set.Make (Int)
module SS = Set.Make (String)

type violation = { rule : string; detail : string }

type report = {
  extension : string;
  passes : bool;
  violations : violation list;
  notes : violation list;
      (** accepted-with-caveat findings: infix anchors, spillage *)
}

let pp_violation ppf v = Fmt.pf ppf "[%s] %s" v.rule v.detail

let pp_report ppf r =
  if r.passes then begin
    Fmt.pf ppf "extension %s: isComposable PASSES" r.extension;
    if r.notes <> [] then
      Fmt.pf ppf " (with notes)@.%a"
        (Fmt.list ~sep:Fmt.cut pp_violation)
        r.notes
  end
  else
    Fmt.pf ppf "extension %s: isComposable FAILS@.%a" r.extension
      (Fmt.list ~sep:Fmt.cut pp_violation)
      r.violations

let host_nonterminals (host : Cfg.t) = SS.of_list (Cfg.nonterminals host)
let host_terminals (host : Cfg.t) = SS.of_list (Cfg.terminal_names host)

(** Bridge productions: E-owned productions whose LHS belongs to the host. *)
let bridge_productions (host : Cfg.t) (ext : Cfg.t) =
  let hnts = host_nonterminals host in
  List.filter (fun p -> SS.mem p.Cfg.lhs hnts) ext.Cfg.productions

(** [check host ext] runs the analysis for one extension against the host.
    Never raises for user-level problems — every issue becomes a
    {!violation} (or a note). *)
let check (host : Cfg.t) (ext : Cfg.t) : report =
  let violations = ref [] and notes = ref [] in
  let violate rule fmt =
    Format.kasprintf
      (fun detail -> violations := { rule; detail } :: !violations)
      fmt
  in
  let note rule fmt =
    Format.kasprintf (fun detail -> notes := { rule; detail } :: !notes) fmt
  in
  let hterms = host_terminals host in
  let ext_term_names = SS.of_list (Cfg.terminal_names ext) in
  let ext_only_terms = SS.diff ext_term_names hterms in
  (* --- 1. determinism of the pairwise composition --------------------- *)
  let composed_table =
    try
      let composed = Cfg.compose host [ ext ] in
      let tbl = Lalr.build composed in
      if not (Lalr.is_lalr1 tbl) then
        List.iter
          (fun c ->
            violate "determinism" "pairwise composition conflict: %a"
              (Lalr.pp_conflict tbl.Lalr.g) c)
          tbl.Lalr.conflicts;
      Some tbl
    with
    | Cfg.Compose_error msg ->
        violate "composition" "%s" msg;
        None
    | Analysis.Ill_formed msg ->
        violate "well-formedness" "%s" msg;
        None
  in
  (* --- 2. marking terminals / infix anchors --------------------------- *)
  let bridges = bridge_productions host ext in
  let marking = ref SS.empty in
  List.iter
    (fun p ->
      let anchor =
        List.exists
          (function Cfg.T t -> SS.mem t ext_only_terms | Cfg.N _ -> false)
          p.Cfg.rhs
      in
      match p.Cfg.rhs with
      | Cfg.T t :: _ when SS.mem t ext_only_terms ->
          marking := SS.add t !marking
      | _ when anchor ->
          note "infix-anchor"
            "bridge production %s is initiated by host syntax but anchored \
             by an extension terminal; accepted with the weaker \
             non-interference guarantee (condition 4)"
            p.Cfg.p_name
      | Cfg.T t :: _ ->
          violate "marking-terminal"
            "bridge production %s starts with host terminal %s and contains \
             no terminal of its own; extension syntax must be identifiable"
            p.Cfg.p_name t
      | Cfg.N n :: _ ->
          violate "marking-terminal"
            "bridge production %s starts with nonterminal <%s> and contains \
             no terminal of its own"
            p.Cfg.p_name n
      | [] ->
          violate "marking-terminal" "bridge production %s is an epsilon rule"
            p.Cfg.p_name)
    bridges;
  (* Marking terminals may appear only as the first symbol of bridge
     productions (within this extension's own rules they are free). *)
  List.iter
    (fun p ->
      if List.exists (fun b -> b == p) bridges then
        List.iteri
          (fun i sym ->
            match sym with
            | Cfg.T t when SS.mem t !marking && i > 0 ->
                note "marking-terminal"
                  "marking terminal %s reused at position %d of bridge \
                   production %s"
                  t i p.Cfg.p_name
            | _ -> ())
          p.Cfg.rhs)
    ext.Cfg.productions;
  (* --- 3. lexical disjointness ---------------------------------------- *)
  List.iter
    (fun (et : Cfg.terminal) ->
      List.iter
        (fun (ht : Cfg.terminal) ->
          if
            et.Cfg.t_name <> ht.Cfg.t_name
            && et.Cfg.t_regex = ht.Cfg.t_regex
            && et.Cfg.t_prio = ht.Cfg.t_prio
          then
            violate "lexical"
              "extension terminal %s duplicates host terminal %s's regex at \
               equal priority"
              et.Cfg.t_name ht.Cfg.t_name)
        host.Cfg.terminals)
    ext.Cfg.terminals;
  (* --- 4. host-state non-interference ---------------------------------- *)
  (match composed_table with
  | None -> ()
  | Some tc -> (
      try
        let th = Lalr.build host in
        if not (Lalr.is_lalr1 th) then
          violate "host" "host grammar alone is not LALR(1)"
        else begin
          let gh = th.Lalr.g and gc = tc.Lalr.g in
          (* Map host symbol codes to composed codes by name. *)
          let cterm name = Hashtbl.find_opt gc.Analysis.term_id name in
          let cnt name = Hashtbl.find_opt gc.Analysis.nt_id name in
          let pname (g : Analysis.t) pi =
            match g.Analysis.prods.(pi).Analysis.src with
            | Some p -> p.Cfg.p_name
            | None -> "$start"
          in
          let paired = Hashtbl.create 64 in
          let queue = Queue.create () in
          let pair h c =
            match Hashtbl.find_opt paired h with
            | Some c' ->
                if c' <> c then
                  violate "host-state"
                    "host state %d maps to two composed states (%d, %d)" h c' c
            | None ->
                Hashtbl.replace paired h c;
                Queue.add (h, c) queue
          in
          pair 0 0;
          while not (Queue.is_empty queue) do
            let h, c = Queue.pop queue in
            (* host-terminal actions must be preserved *)
            Array.iteri
              (fun tid name ->
                match cterm name with
                | None -> ()
                | Some ctid -> (
                    let ha = th.Lalr.action.(h).(tid) in
                    let ca = tc.Lalr.action.(c).(ctid) in
                    match (ha, ca) with
                    | Lalr.Error, Lalr.Error -> ()
                    | Lalr.Error, Lalr.Reduce pi ->
                        let pn = pname gc pi in
                        let owner_is_host =
                          List.exists
                            (fun (p : Cfg.production) -> p.Cfg.p_name = pn)
                            host.Cfg.productions
                        in
                        if owner_is_host then
                          note "spillage"
                            "host state %d gains lookahead %s (reduce %s); \
                             safe pairwise, re-verified on full composition"
                            h name pn
                        else
                          violate "host-state"
                            "host state %d gains a reduce of extension \
                             production %s on host terminal %s"
                            h pn name
                    | Lalr.Error, Lalr.Shift _ ->
                        note "spillage"
                          "host state %d gains a shift on host terminal %s"
                          h name
                    | Lalr.Shift s1, Lalr.Shift s2 -> pair s1 s2
                    | Lalr.Reduce p1, Lalr.Reduce p2 ->
                        if pname gh p1 <> pname gc p2 then
                          violate "host-state"
                            "host state %d changes reduce on %s: %s became %s"
                            h name (pname gh p1) (pname gc p2)
                    | Lalr.Accept, Lalr.Accept -> ()
                    | _ ->
                        violate "host-state"
                          "host state %d changes its action on host terminal \
                           %s"
                          h name))
              gh.Analysis.term_names;
            (* follow host-nonterminal gotos to extend the pairing *)
            Array.iteri
              (fun nid name ->
                match cnt name with
                | None -> ()
                | Some cnid ->
                    let hg = th.Lalr.goto.(h).(nid) in
                    let cg = tc.Lalr.goto.(c).(cnid) in
                    if hg >= 0 && cg >= 0 then pair hg cg
                    else if hg >= 0 && cg < 0 then
                      violate "host-state"
                        "host state %d loses its goto on <%s>" h name)
              gh.Analysis.nt_names
          done
        end
      with Analysis.Ill_formed msg -> violate "well-formedness" "%s" msg));
  let violations = List.rev !violations in
  {
    extension = ext.Cfg.name;
    passes = violations = [];
    violations;
    notes = List.rev !notes;
  }

(** [check_all host exts] — per-extension reports plus the final
    composition verdict, the workflow of §II: a programmer selects
    extensions, each previously certified alone, and the system composes
    them (the driver re-verifies determinism of the full composition,
    which also covers any spillage notes). *)
let check_all (host : Cfg.t) (exts : Cfg.t list) :
    report list * (Lalr.t, string) result =
  let reports = List.map (check host) exts in
  let composed =
    try
      let cfg = Cfg.compose host exts in
      let tbl = Lalr.build cfg in
      if Lalr.is_lalr1 tbl then Ok tbl
      else
        Error
          (Fmt.str "%a"
             (Fmt.list ~sep:Fmt.cut (Lalr.pp_conflict tbl.Lalr.g))
             tbl.Lalr.conflicts)
    with
    | Cfg.Compose_error msg -> Error msg
    | Analysis.Ill_formed msg -> Error msg
  in
  (reports, composed)
