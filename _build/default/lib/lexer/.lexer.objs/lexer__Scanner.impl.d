lib/lexer/scanner.ml: Array Grammar Int List Regexe Set String Support Token
