lib/lexer/token.ml: Fmt Grammar String Support
