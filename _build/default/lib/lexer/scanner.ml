(** Context-aware scanner in the style of Copper (§VI-A).

    A conventional scanner fixes the tokenisation of the input up front;
    when independently developed extensions each bring their own terminals,
    that breaks — e.g. the matrix extension's [end] keyword (valid only
    inside an index expression) would steal every identifier called [end],
    and two extensions may both declare a [with]-like keyword.

    A context-aware scanner instead receives, at each call, the set of
    terminals that the LR parser can currently accept (the {i valid
    lookahead set} of the parse state) and considers only those.  Maximal
    munch applies across the valid set; ties on length are broken by
    lexical precedence ([Cfg.t_prio], keywords beat identifiers), and a
    remaining tie is a lexical ambiguity reported as an error — Copper
    would reject such a pair statically. *)

module IntSet = Set.Make (Int)
module A = Grammar.Analysis

type t = {
  g : A.t;
  dfas : Regexe.Dfa.t array;  (** per terminal id; eof slot unused *)
  prio : int array;
  layout_dfas : Regexe.Dfa.t list;
}

(** [create g] compiles every terminal's regex of the (interned, composed)
    grammar [g] to a DFA, plus the layout terminals (whitespace and
    comments) that are skipped before every token. *)
let create (g : A.t) : t =
  let dfas =
    Array.init g.A.n_terms (fun i ->
        if i = g.A.eof then Regexe.Dfa.of_regex Regexe.Syntax.Empty
        else
          let name = g.A.term_names.(i) in
          let term =
            List.find (fun t -> String.equal t.Grammar.Cfg.t_name name) g.A.cfg.Grammar.Cfg.terminals
          in
          Regexe.Dfa.of_regex term.Grammar.Cfg.t_regex)
  in
  let prio =
    Array.init g.A.n_terms (fun i ->
        if i = g.A.eof then 0
        else
          let name = g.A.term_names.(i) in
          (List.find (fun t -> String.equal t.Grammar.Cfg.t_name name) g.A.cfg.Grammar.Cfg.terminals)
            .Grammar.Cfg.t_prio)
  in
  let layout_dfas =
    List.map (fun t -> Regexe.Dfa.of_regex t.Grammar.Cfg.t_regex) g.A.cfg.Grammar.Cfg.layout
  in
  { g; dfas; prio; layout_dfas }

type result =
  | Tok of Token.t
  | Lex_error of { pos : Support.Pos.t; valid : string list }
  | Ambiguous of { pos : Support.Pos.t; candidates : string list }

(** [skip_layout sc src pos] consumes the longest run of layout lexemes
    (whitespace, comments) starting at [pos]. *)
let rec skip_layout sc (src : string) (pos : Support.Pos.t) : Support.Pos.t =
  let best =
    List.fold_left
      (fun acc dfa ->
        match Regexe.Dfa.longest_match dfa src pos.Support.Pos.offset with
        | Some len -> max acc len
        | None -> acc)
      0 sc.layout_dfas
  in
  if best = 0 then pos
  else
    let lexeme = String.sub src pos.Support.Pos.offset best in
    skip_layout sc src (Support.Pos.advance_string pos lexeme)

(** [next sc src pos ~valid] scans one token at [pos], considering only the
    terminals in [valid] (the current parse state's valid lookahead set).
    At end of input, returns the synthetic [$EOF] token iff [$EOF] is
    valid. *)
let next sc (src : string) (pos : Support.Pos.t) ~(valid : IntSet.t) : result =
  let pos = skip_layout sc src pos in
  if pos.Support.Pos.offset >= String.length src then
    if IntSet.mem sc.g.A.eof valid then
      Tok
        {
          Token.term = A.eof_name;
          term_id = sc.g.A.eof;
          lexeme = "";
          span = Support.Pos.span pos pos;
        }
    else
      Lex_error
        {
          pos;
          valid = List.map (fun t -> sc.g.A.term_names.(t)) (IntSet.elements valid);
        }
  else begin
    (* Maximal munch across the valid set. *)
    let best_len = ref 0 and best : int list ref = ref [] in
    IntSet.iter
      (fun tid ->
        if tid <> sc.g.A.eof then
          match Regexe.Dfa.longest_match sc.dfas.(tid) src pos.Support.Pos.offset with
          | Some len when len > !best_len ->
              best_len := len;
              best := [ tid ]
          | Some len when len = !best_len && len > 0 -> best := tid :: !best
          | _ -> ())
      valid;
    match !best with
    | [] ->
        Lex_error
          {
            pos;
            valid =
              List.map (fun t -> sc.g.A.term_names.(t)) (IntSet.elements valid);
          }
    | candidates ->
        let top = List.fold_left (fun m t -> max m sc.prio.(t)) min_int candidates in
        (match List.filter (fun t -> sc.prio.(t) = top) candidates with
        | [ tid ] ->
            let lexeme = String.sub src pos.Support.Pos.offset !best_len in
            let right = Support.Pos.advance_string pos lexeme in
            Tok
              {
                Token.term = sc.g.A.term_names.(tid);
                term_id = tid;
                lexeme;
                span = Support.Pos.span pos right;
              }
        | several ->
            Ambiguous
              {
                pos;
                candidates = List.map (fun t -> sc.g.A.term_names.(t)) several;
              })
  end

(** [all_terminals sc] — the full terminal-id set; scanning with it turns
    context-awareness off (used by tests to demonstrate why context is
    needed). *)
let all_terminals sc =
  IntSet.of_list (List.init sc.g.A.n_terms (fun i -> i))
