(** Tokens produced by the context-aware scanner. *)

type t = {
  term : string;  (** terminal name, e.g. ["ID"], ["KW_with"] *)
  term_id : int;  (** terminal id in the composed grammar's interning *)
  lexeme : string;
  span : Support.Pos.span;
}

let pp ppf t = Fmt.pf ppf "%s%S" t.term t.lexeme
let is_eof tok = String.equal tok.term Grammar.Analysis.eof_name
