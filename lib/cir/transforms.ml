(** Programmer-directed loop transformations (§V).

    The matrix constructs lower to canonical for-nests; these rewrites give
    "the programmer a great deal of control over the type of C code that is
    generated" without writing the (often convoluted and intricate) code by
    hand.  Implemented transformations:

    - [split j by 4, jin, jout] — strip-mine a loop (Fig 10); a remainder
      loop is emitted unless the bound is statically divisible,
    - [vectorize jin] — lane-expansion vectorization onto simulated SSE
      (Fig 11): the target loop's trip count must equal the vector width,
      its iterations become the four lanes, strided accesses become packs,
    - [parallelize i] — dispatch a loop to the worker pool / OpenMP,
    - [reorder i j k] / [interchange i j] — permute a perfect nest,
    - [unroll k by 4] — replicate the body,
    - [tile i j by 16] — "two splits and a reorder", exactly the paper's
      definition of tiling as a derived transformation.

    Each transformation validates its loop-index arguments ("the loop
    indices in the transformations [must] correspond to loops in the code
    being transformed") and returns [Error] with a programmer-facing
    message otherwise. *)

open Ir
module S = Runtime.Scalar

type t =
  | Split of { target : string; factor : int; inner : string; outer : string }
  | Vectorize of string
  | Parallelize of string
  | Reorder of string list
  | Interchange of string * string
  | Unroll of { target : string; factor : int }
  | Tile of { outer_ix : string; inner_ix : string; size : int }

let pp ppf = function
  | Split { target; factor; inner; outer } ->
      Fmt.pf ppf "split %s by %d, %s, %s" target factor inner outer
  | Vectorize v -> Fmt.pf ppf "vectorize %s" v
  | Parallelize v -> Fmt.pf ppf "parallelize %s" v
  | Reorder vs -> Fmt.pf ppf "reorder %s" (String.concat " " vs)
  | Interchange (a, b) -> Fmt.pf ppf "interchange %s %s" a b
  | Unroll { target; factor } -> Fmt.pf ppf "unroll %s by %d" target factor
  | Tile { outer_ix; inner_ix; size } ->
      Fmt.pf ppf "tile %s %s by %d" outer_ix inner_ix size

let to_string t = Fmt.str "%a" pp t

(* --- locating loops ------------------------------------------------------ *)

(* Rewrite the unique loop with index [name]; count occurrences found. *)
let rewrite_loop (name : string) (f : loop -> par:bool -> stmt list)
    (body : stmt list) : stmt list * int =
  let found = ref 0 in
  let rec go_stmt s =
    match s with
    | For l when l.index = name ->
        incr found;
        f { l with body = go_block l.body } ~par:false
    | ParFor l when l.index = name ->
        incr found;
        f { l with body = go_block l.body } ~par:true
    | For l -> [ For { l with body = go_block l.body } ]
    | ParFor l -> [ ParFor { l with body = go_block l.body } ]
    | If (c, a, b) -> [ If (c, go_block a, go_block b) ]
    | While (c, b) -> [ While (c, go_block b) ]
    | Block b -> [ Block (go_block b) ]
    | Located (sp, b) -> [ Located (sp, go_block b) ]
    | Site (site, b) -> [ Site (site, go_block b) ]
    | s -> [ s ]
  and go_block b = List.concat_map go_stmt b in
  (* Bind before reading [found]: tuple components evaluate right-to-left. *)
  let rewritten = go_block body in
  (rewritten, !found)

let loop_indices (body : stmt list) : string list =
  let acc = ref [] in
  let rec go s =
    match s with
    | For l | ParFor l ->
        acc := l.index :: !acc;
        List.iter go l.body
    | If (_, a, b) ->
        List.iter go a;
        List.iter go b
    | While (_, b) | Block b | Located (_, b) | Site (_, b) -> List.iter go b
    | _ -> ()
  in
  List.iter go body;
  List.rev !acc

let no_such_loop what name body =
  Error
    (Printf.sprintf "%s: no loop indexed by '%s' (loops in scope: %s)" what
       name
       (match loop_indices body with
       | [] -> "none"
       | ls -> String.concat ", " ls))

(* --- split ---------------------------------------------------------------- *)

let apply_split ?(ceil_mode = false) ~target ~factor ~inner ~outer body =
  if factor < 2 then Error "split: factor must be at least 2"
  else
    let rewritten, found =
      rewrite_loop target
        (fun l ~par ->
          let reconstructed =
            (Var outer *: Int factor) +: Var inner |> fold_expr
          in
          let statically_divisible =
            match l.bound with Int n -> n mod factor = 0 | _ -> false
          in
          let mk_main ~inner_bound ~outer_bound =
            let main_body =
              [
                For
                  {
                    index = inner;
                    bound = inner_bound;
                    body = subst_var l.index reconstructed l.body;
                    prov = l.prov;
                  };
              ]
            in
            if par then
              ParFor
                { index = outer; bound = outer_bound; body = main_body;
                  prov = l.prov }
            else
              For
                { index = outer; bound = outer_bound; body = main_body;
                  prov = l.prov }
          in
          let quotient = fold_expr (l.bound /: Int factor) in
          if statically_divisible then
            [ mk_main ~inner_bound:(Int factor) ~outer_bound:quotient ]
          else if ceil_mode then
            (* Boundary tiles shrink via a min() bound: keeps the nest
               perfect so a subsequent reorder (tiling) stays legal. *)
            let outer_bound =
              fold_expr ((l.bound +: Int (factor - 1)) /: Int factor)
            in
            let inner_bound =
              fold_expr
                (Min (Int factor, l.bound -: (Var outer *: Int factor)))
            in
            [ mk_main ~inner_bound ~outer_bound ]
          else
            (* Remainder loop covering [ (bound/factor)*factor, bound ). *)
            let base = fold_expr (quotient *: Int factor) in
            let rem_index = "__mm_rem_" ^ l.index in
            [
              mk_main ~inner_bound:(Int factor) ~outer_bound:quotient;
              For
                {
                  index = rem_index;
                  bound = fold_expr (l.bound -: base);
                  body = subst_var l.index (fold_expr (base +: Var rem_index)) l.body;
                  prov = l.prov;
                };
            ])
        body
    in
    match found with
    | 0 -> no_such_loop "split" target body
    | 1 -> Ok rewritten
    | n -> Error (Printf.sprintf "split: %d loops named '%s'" n target)

(* --- parallelize ----------------------------------------------------------- *)

let apply_parallelize target body =
  let rewritten, found =
    rewrite_loop target (fun l ~par:_ -> [ ParFor l ]) body
  in
  match found with
  | 0 -> no_such_loop "parallelize" target body
  | _ -> Ok rewritten

(* --- reorder / interchange -------------------------------------------------- *)

(* Peel a perfect nest of the named loops starting at the outermost one;
   returns (loops outermost-first, innermost body). Each peeled loop keeps
   its provenance so the rebuilt (reordered) nest stays source-attributed. *)
let rec peel_nest names s =
  match s with
  | For l when List.mem l.index names -> (
      match l.body with
      | [ (For l' as inner) ] when List.mem l'.index names ->
          let loops, innermost = peel_nest names inner in
          ((l.index, (l.bound, l.prov)) :: loops, innermost)
      | b -> ([ (l.index, (l.bound, l.prov)) ], b))
  | _ -> ([], [])

let apply_reorder names body =
  if List.sort_uniq String.compare names <> List.sort String.compare names
  then Error "reorder: duplicate loop index"
  else
    let applied = ref None in
    let rec go s =
      match s with
      | For l when List.mem l.index names && !applied = None -> (
          let loops, innermost = peel_nest names (For l) in
          let found = List.map fst loops in
          if List.sort String.compare found <> List.sort String.compare names
          then
            s (* not the full nest here; keep looking deeper *)
          else begin
            (* Legality: a loop's bound may only reference indices that
               remain outside it after reordering (min-bounds from ceil
               splits depend on their outer index). *)
            List.iteri
              (fun p n ->
                let bound = fst (List.assoc n loops) in
                List.iteri
                  (fun q n' ->
                    if q > p && expr_uses_var n' bound then
                      raise
                        (Invalid_argument
                           (Printf.sprintf
                              "reorder: bound of '%s' depends on '%s', which \
                               would move inside it"
                              n n')))
                  names)
              names;
            applied := Some ();
            let bound_of n = fst (List.assoc n loops) in
            let prov_of n = snd (List.assoc n loops) in
            let last = List.nth names (List.length names - 1) in
            List.fold_left
              (fun acc n ->
                For
                  { index = n; bound = bound_of n; body = [ acc ];
                    prov = prov_of n })
              (For
                 {
                   index = last;
                   bound = bound_of last;
                   body = innermost;
                   prov = prov_of last;
                 })
              (List.rev (List.filteri (fun i _ -> i < List.length names - 1) names))
          end)
      | For l -> For { l with body = List.map go l.body }
      | ParFor l -> ParFor { l with body = List.map go l.body }
      | If (c, a, b) -> If (c, List.map go a, List.map go b)
      | While (c, b) -> While (c, List.map go b)
      | Located (sp, b) -> Located (sp, List.map go b)
      | Site (site, b) -> Site (site, List.map go b)
      | s -> s
    in
    match List.map go body with
    | rewritten -> (
        match !applied with
        | Some () -> Ok rewritten
        | None ->
            Error
              (Printf.sprintf
                 "reorder: loops {%s} do not form a perfect nest in the code"
                 (String.concat ", " names)))
    | exception Invalid_argument msg -> Error msg

let apply_interchange a b body = apply_reorder [ b; a ] body
(* [interchange a b] makes [b] the outer loop — note reorder lists the
   desired outermost-to-innermost order. *)

(* --- unroll ------------------------------------------------------------------ *)

let apply_unroll ~target ~factor body =
  if factor < 2 then Error "unroll: factor must be at least 2"
  else
    let error = ref None in
    let rewritten, found =
      rewrite_loop target
        (fun l ~par ->
          match l.bound with
          | Int n when n mod factor = 0 ->
              let blk = ref [] in
              for r = factor - 1 downto 0 do
                blk :=
                  subst_var l.index
                    (fold_expr ((Var l.index *: Int factor) +: Int r))
                    l.body
                  @ !blk
              done;
              let l' = { l with bound = Int (n / factor); body = !blk } in
              [ (if par then ParFor l' else For l') ]
          | Int n ->
              error :=
                Some
                  (Printf.sprintf
                     "unroll: trip count %d not divisible by factor %d" n factor);
              [ (if par then ParFor l else For l) ]
          | _ ->
              error := Some "unroll: requires a statically known trip count";
              [ (if par then ParFor l else For l) ])
        body
    in
    match (!error, found) with
    | Some e, _ -> Error e
    | None, 0 -> no_such_loop "unroll" target body
    | None, _ -> Ok rewritten

(* --- vectorize ---------------------------------------------------------------- *)

(* Affine decomposition of [e] in the lane variable: e = base + lane*stride.
   Returns None when e is not affine in the lane variable. *)
let rec affine lane (e : expr) : (expr * expr) option =
  if not (expr_uses_var lane e) then Some (e, Int 0)
  else
    match e with
    | Var v when v = lane -> Some (Int 0, Int 1)
    | Binop (Arith S.Add, a, b) -> (
        match (affine lane a, affine lane b) with
        | Some (ba, sa), Some (bb, sb) ->
            Some (fold_expr (ba +: bb), fold_expr (sa +: sb))
        | _ -> None)
    | Binop (Arith S.Sub, a, b) -> (
        match (affine lane a, affine lane b) with
        | Some (ba, sa), Some (bb, sb) ->
            Some (fold_expr (ba -: bb), fold_expr (sa -: sb))
        | _ -> None)
    | Binop (Arith S.Mul, a, b) when not (expr_uses_var lane b) -> (
        match affine lane a with
        | Some (ba, sa) ->
            Some (fold_expr (ba *: b), fold_expr (sa *: b))
        | None -> None)
    | Binop (Arith S.Mul, a, b) when not (expr_uses_var lane a) -> (
        match affine lane b with
        | Some (bb, sb) ->
            Some (fold_expr (a *: bb), fold_expr (a *: sb))
        | None -> None)
    | _ -> None

exception Not_vectorizable of string

let nope fmt = Format.kasprintf (fun m -> raise (Not_vectorizable m)) fmt

(* Expression → vector expression.  [vec_vars] are float scalars promoted to
   vector registers by the enclosing rewrite. *)
let rec vec_expr lane vec_vars (e : expr) : expr =
  let uses_vec =
    let found = ref false in
    ignore
      (map_expr
         (function
           | Var v when List.mem v vec_vars ->
               found := true;
               Var v
           | x -> x)
         e);
    !found
  in
  if (not (expr_uses_var lane e)) && not uses_vec then VecSplat e
  else
    match e with
    | Var v when List.mem v vec_vars -> Var v
    | Var v when v = lane -> nope "lane index '%s' used as a value" lane
    | MGetFlat (m, off) -> (
        if expr_uses_var lane m then nope "matrix handle depends on lane index";
        match affine lane off with
        | Some (base, stride) -> VecGather (m, base, stride)
        | None -> nope "offset not affine in lane index '%s'" lane)
    | Binop (Arith op, a, b) ->
        VecBin (op, vec_expr lane vec_vars a, vec_expr lane vec_vars b)
    | Unop (Neg, a) ->
        VecBin (S.Sub, VecSplat (Float 0.), vec_expr lane vec_vars a)
    | Unop (FloatOfInt, a) when not (expr_uses_var lane a) -> VecSplat (Unop (FloatOfInt, a))
    | Binop (Cmp _, _, _) | Binop (Logic _, _, _) ->
        nope "comparisons cannot be vectorized"
    | Call (f, _) -> nope "call to '%s' cannot be vectorized" f
    | e -> nope "expression %s cannot be vectorized" (Emit.expr e)

let rec vec_stmt lane vec_vars (s : stmt) : stmt list * string list =
  match s with
  | Decl (CFloat, x, init) ->
      let init' = Option.map (vec_expr lane (x :: vec_vars)) init in
      ([ Decl (CVec, x, init') ], x :: vec_vars)
  | Decl (CInt, x, init) ->
      if Option.fold ~none:false ~some:(expr_uses_var lane) init then
        nope "integer variable '%s' depends on lane index" x
      else ([ s ], vec_vars)
  | Decl (t, x, _) ->
      if
        (match t with CMat _ -> false | _ -> true)
        && stmts_use_var lane [ s ]
      then nope "declaration of '%s' depends on lane index" x
      else ([ s ], vec_vars)
  | Assign (LVar x, e) when List.mem x vec_vars ->
      ([ Assign (LVar x, vec_expr lane vec_vars e) ], vec_vars)
  | Assign (LVar x, e) ->
      if expr_uses_var lane e then
        nope "assignment to scalar '%s' from lane-dependent value" x
      else ([ s ], vec_vars)
  | Assign (LField _, _) -> nope "tuple assignment cannot be vectorized"
  | MSetFlat (m, off, v) -> (
      if expr_uses_var lane m then nope "matrix handle depends on lane index";
      match affine lane off with
      | Some (base, stride) ->
          ( [ VecScatter (m, base, stride, vec_expr lane vec_vars v) ],
            vec_vars )
      | None ->
          if expr_uses_var lane off || expr_uses_var lane v
             || List.exists (fun x -> stmts_use_var x [ s ]) vec_vars
          then nope "store offset not affine in lane index"
          else ([ s ], vec_vars))
  | For l ->
      if expr_uses_var lane l.bound then nope "inner loop bound depends on lane";
      let body', _ =
        List.fold_left
          (fun (acc, vv) st ->
            let ss, vv' = vec_stmt lane vv st in
            (acc @ ss, vv'))
          ([], vec_vars) l.body
      in
      ([ For { l with body = body' } ], vec_vars)
  | If (c, a, b) ->
      if expr_uses_var lane c then nope "branch condition depends on lane index"
      else
        let rewrite blk =
          List.concat_map (fun st -> fst (vec_stmt lane vec_vars st)) blk
        in
        ([ If (c, rewrite a, rewrite b) ], vec_vars)
  | While (c, b) ->
      if expr_uses_var lane c then nope "while condition depends on lane index"
      else
        ( [
            While
              (c, List.concat_map (fun st -> fst (vec_stmt lane vec_vars st)) b);
          ],
          vec_vars )
  | Block b ->
      ( [
          Block
            (List.concat_map (fun st -> fst (vec_stmt lane vec_vars st)) b);
        ],
        vec_vars )
  | Comment _ | RcInc _ | RcDec _ -> ([ s ], vec_vars)
  | Break | Continue -> ([ s ], vec_vars)
  | Return _ -> nope "return inside a vectorized loop"
  | ExprS e ->
      if expr_uses_var lane e then nope "effectful lane-dependent expression"
      else ([ s ], vec_vars)
  | MWrite _ -> nope "matrix I/O inside a vectorized loop"
  | VecScatter _ -> nope "loop is already vectorized"
  | ParFor _ -> nope "parallel loop inside a vectorized loop"
  | Spawn _ | Sync -> nope "cilk constructs cannot be vectorized"
  | Located (sp, b) ->
      ( [
          Located
            (sp, List.concat_map (fun st -> fst (vec_stmt lane vec_vars st)) b);
        ],
        vec_vars )
  | Site (site, b) ->
      ( [
          Site
            (site, List.concat_map (fun st -> fst (vec_stmt lane vec_vars st)) b);
        ],
        vec_vars )

let apply_vectorize target body =
  let width = Runtime.Simd.default_width in
  let error = ref None in
  let rewritten, found =
    rewrite_loop target
      (fun l ~par ->
        if par then begin
          error := Some "vectorize: loop is parallelized; vectorize first";
          [ ParFor l ]
        end
        else
          match l.bound with
          | Int n when n = width -> (
              try
                let stmts =
                  List.fold_left
                    (fun (acc, vv) st ->
                      let ss, vv' = vec_stmt l.index vv st in
                      (acc @ ss, vv'))
                    ([], []) l.body
                  |> fst
                in
                Comment
                  (Printf.sprintf "vectorized %s: 4 x f32 SSE lanes" l.index)
                :: stmts
              with Not_vectorizable msg ->
                error := Some ("vectorize: " ^ msg);
                [ For l ])
          | Int n ->
              error :=
                Some
                  (Printf.sprintf
                     "vectorize: loop '%s' has trip count %d, not the vector \
                      width %d (split it first)"
                     l.index n width);
              [ For l ]
          | _ ->
              error :=
                Some
                  (Printf.sprintf
                     "vectorize: loop '%s' must have a static trip count equal \
                      to the vector width %d (split it first)"
                     l.index width);
              [ For l ])
      body
  in
  match (!error, found) with
  | Some e, _ -> Error e
  | None, 0 -> no_such_loop "vectorize" target body
  | None, _ -> Ok rewritten

(* Hoist lane-invariant splats above the outermost loop (Fig 11: "these
   have been floated above the outermost for loop because they are
   unchanged by the loops"). *)
let hoist_splats (body : stmt list) : stmt list =
  (* Names defined inside the body (decls and loop indices): splats whose
     argument touches any of them cannot be hoisted to the top. *)
  let defined = ref [] in
  let rec scan s =
    match s with
    | Decl (_, n, _) -> defined := n :: !defined
    | For l | ParFor l ->
        defined := l.index :: !defined;
        List.iter scan l.body
    | If (_, a, b) ->
        List.iter scan a;
        List.iter scan b
    | While (_, b) | Block b | Located (_, b) | Site (_, b) ->
        List.iter scan b
    | _ -> ()
  in
  List.iter scan body;
  let hoisted = ref [] in
  let counter = ref 0 in
  let name_for e =
    match List.assoc_opt e !hoisted with
    | Some n -> n
    | None ->
        let n = Printf.sprintf "__mm_vc%d" !counter in
        incr counter;
        hoisted := (e, n) :: !hoisted;
        n
  in
  let in_loop = ref 0 in
  let rec go_stmt s =
    match s with
    | For l ->
        incr in_loop;
        let b = List.map go_stmt l.body in
        decr in_loop;
        For { l with bound = go_expr l.bound; body = b }
    | ParFor l ->
        incr in_loop;
        let b = List.map go_stmt l.body in
        decr in_loop;
        ParFor { l with bound = go_expr l.bound; body = b }
    | Located (sp, b) -> Located (sp, List.map go_stmt b)
    | Site (site, b) -> Site (site, List.map go_stmt b)
    | s -> map_stmt go_expr_leafless Fun.id s
  and go_expr_leafless e = if !in_loop > 0 then go_expr_node e else e
  and go_expr_node = function
    | VecSplat a when not (List.exists (fun v -> expr_uses_var v a) !defined)
      ->
        Var (name_for a)
    | e -> e
  and go_expr e = map_expr go_expr_leafless e
  in
  let body' = List.map go_stmt body in
  let decls =
    List.rev_map (fun (e, n) -> Decl (CVec, n, Some (VecSplat e))) !hoisted
  in
  decls @ body'

(* --- tile = two splits and a reorder (§V) ------------------------------------- *)

let apply_tile ~outer_ix ~inner_ix ~size body =
  let xin = outer_ix ^ "in" and xout = outer_ix ^ "out" in
  let yin = inner_ix ^ "in" and yout = inner_ix ^ "out" in
  let ( let* ) = Result.bind in
  (* Ceil-mode splits keep the nest perfect on non-divisible extents
     (boundary tiles get min() bounds instead of a peeled remainder). *)
  let* b =
    apply_split ~ceil_mode:true ~target:outer_ix ~factor:size ~inner:xin
      ~outer:xout body
  in
  let* b =
    apply_split ~ceil_mode:true ~target:inner_ix ~factor:size ~inner:yin
      ~outer:yout b
  in
  apply_reorder [ xout; yout; xin; yin ] b

(* --- driver ---------------------------------------------------------------------- *)

(** [apply t body] — run one transformation over a function body. *)
let apply (t : t) (body : stmt list) : (stmt list, string) result =
  match t with
  | Split { target; factor; inner; outer } ->
      apply_split ~target ~factor ~inner ~outer body
  | Vectorize v -> apply_vectorize v body
  | Parallelize v -> apply_parallelize v body
  | Reorder vs -> apply_reorder vs body
  | Interchange (a, b) -> apply_interchange a b body
  | Unroll { target; factor } -> apply_unroll ~target ~factor body
  | Tile { outer_ix; inner_ix; size } -> apply_tile ~outer_ix ~inner_ix ~size body

(** [apply_all ts body] — apply "in the order in which they appear" (§V),
    then hoist loop-invariant vector constants. *)
let apply_all (ts : t list) (body : stmt list) : (stmt list, string) result =
  let result =
    List.fold_left
      (fun acc t -> Result.bind acc (fun b -> apply t b))
      (Ok body) ts
  in
  Result.map
    (fun b ->
      if List.exists (function Vectorize _ -> true | _ -> false) ts then
        hoist_splats b
      else b)
    result
