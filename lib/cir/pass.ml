(** First-class CIR passes.

    A pass is a named program→program rewrite registered with the driver's
    pipeline ([Driver.Pipeline]); the manager runs the sequence uniformly —
    timing each pass ([pass.<name>.ns] gauges), scoping its optimization
    remarks, capturing IR snapshots after it actually ran, and renumbering
    gensym temporaries after passes that delete statements.

    Passes communicate with the baseline lowering through {!Ir.Site}
    annotations: the lowering emits the {e unoptimized} statements for
    every optimization decision wrapped in a site carrying the facts the
    decision needs (which temporary is the fusable copy, whether an
    identity slice proved alias-safe, what kind of loop nest could be
    promoted), and the owning pass consumes the site — rewriting or
    splicing the payload and emitting the Applied/Missed/Skipped remark.
    A pass runs even when disabled, because splicing its sites away and
    reporting the skip is also its job. *)

open Ir

exception Error of string * Support.Pos.span
(** A pass failed with a programmer-facing message (e.g. a transform
    script whose indices bind to no loop).  The pipeline converts this to
    a "lower"-phase diagnostic, same as a lowering error. *)

let err span fmt = Format.kasprintf (fun m -> raise (Error (m, span))) fmt

type ctx = {
  rc : bool;  (** reference counting enabled (refptr extension composed) *)
  warn : Support.Diag.t -> unit;  (** sink for non-fatal diagnostics *)
  sink : Snapshot.sink option;
      (** where [--dump-ir] snapshots go; [None] when nobody asked *)
  mutable syms : (string * string) list;
      (** gensym allocation trail [(name, hint)] — updated by
          {!renumber} so consecutive renumbering passes stay coherent *)
  mutable auto_par_ran : bool;
      (** did an enabled auto-par pass already run?  The transform pass
          uses this to tell "script broken by ParFor promotion" (warn and
          skip) from "script indices name no loop" (hard error). *)
}

type t = {
  name : string;  (** pipeline/CLI/remark name, e.g. ["copy-elim"] *)
  default_on : bool;  (** enabled when the user says nothing *)
  renumbers : bool;
      (** the pass deletes statements when enabled, so surviving gensym
          temporaries must be renumbered after it runs *)
  managed_snapshot : bool;
      (** the manager records an ["ir after <name> (program)"] snapshot
          after the pass runs; passes with their own finer-grained
          snapshots (transform's per-clause dumps) opt out *)
  run : ctx -> enabled:bool -> program -> program;
}

(* --- site payload renaming ------------------------------------------------ *)

(* [site] is an open type, so renaming the variable names a payload
   mentions needs help from the constructors' owners: each extension
   registers a renamer that rewrites its own sites (returning foreign
   sites unchanged).  Registration happens at module initialisation of
   the extension's site module. *)

let site_renamers : ((string -> string) -> site -> site) list ref = ref []
let register_site_renamer f = site_renamers := f :: !site_renamers
let rename_site f site = List.fold_left (fun s r -> r f s) site !site_renamers

(* --- whole-program renaming ----------------------------------------------- *)

(** [rename_stmts f stmts] — apply the name substitution [f] to every
    binding and use: declarations, loop indices, lvalues, variable and
    call-target references, spawn targets, and site payload fields. *)
let rename_stmts f stmts =
  let fe = function
    | Var n -> Var (f n)
    | Call (n, args) -> Call (f n, args)
    | e -> e
  in
  let rec rlv = function
    | LVar v -> LVar (f v)
    | LField (lv, i) -> LField (rlv lv, i)
  in
  let fs = function
    | Decl (t, n, e) -> Decl (t, f n, e)
    | Assign (lv, e) -> Assign (rlv lv, e)
    | For l -> For { l with index = f l.index }
    | ParFor l -> ParFor { l with index = f l.index }
    | Spawn (lv, n, args) -> Spawn (Option.map rlv lv, f n, args)
    | Site (site, b) -> Site (rename_site f site, b)
    | s -> s
  in
  map_stmts fe fs stmts

let rename_program f (p : program) : program =
  {
    funcs =
      List.map
        (fun fn ->
          {
            fn with
            f_name = f fn.f_name;
            f_params = List.map (fun (t, n) -> (t, f n)) fn.f_params;
            f_body = rename_stmts f fn.f_body;
            f_origin = Option.map f fn.f_origin;
          })
        p.funcs;
    main = f p.main;
  }

(** [renumber ctx p] — after a pass deleted statements, rename every
    surviving gensym temporary to the name a lowering that never emitted
    the deleted code would have chosen: survivors keep their allocation
    order from the trail and are renumbered densely from 0.  The identity
    when nothing was deleted.  Also rewrites [ctx.syms] so a later
    renumbering pass sees current names. *)
let renumber (ctx : ctx) (p : program) : program =
  let present = Hashtbl.create 256 in
  let note n =
    Hashtbl.replace present n ();
    n
  in
  ignore (rename_program note p);
  let table = Hashtbl.create 64 in
  let rank = ref 0 in
  let syms' =
    List.filter_map
      (fun (name, hint) ->
        if not (Hashtbl.mem present name) then None
        else begin
          let name' =
            Printf.sprintf "%s%s%d" Support.Gensym.reserved_prefix hint !rank
          in
          incr rank;
          if name' <> name then Hashtbl.replace table name name';
          Some (name', hint)
        end)
      ctx.syms
  in
  ctx.syms <- syms';
  if Hashtbl.length table = 0 then p
  else
    rename_program
      (fun n -> Option.value (Hashtbl.find_opt table n) ~default:n)
      p

(* --- site traversal helper ------------------------------------------------ *)

(** [rewrite_sites f p] — post-order rewrite: [f site payload] sees each
    site after everything nested inside its payload has been rewritten
    (so remark order matches the old emit-during-lowering order: inner
    constructs first), and returns [Some stmts] to replace the site or
    [None] to keep a site it does not own. *)
let rewrite_sites (f : site -> stmt list -> stmt list option) (p : program) :
    program =
  let rec stmt s =
    match s with
    | Site (site, b) -> (
        let b = block b in
        match f site b with Some ss -> ss | None -> [ Site (site, b) ])
    | If (c, a, b) -> [ If (c, block a, block b) ]
    | While (c, b) -> [ While (c, block b) ]
    | For l -> [ For { l with body = block l.body } ]
    | ParFor l -> [ ParFor { l with body = block l.body } ]
    | Block b -> [ Block (block b) ]
    | Located (sp, b) -> [ Located (sp, block b) ]
    | s -> [ s ]
  and block b = List.concat_map stmt b in
  {
    p with
    funcs = List.map (fun fn -> { fn with f_body = block fn.f_body }) p.funcs;
  }

(** [subst_in_program name e p] — replace [Var name] in every function
    body (gensym names are program-unique, so global substitution is
    safe). *)
let subst_in_program name e (p : program) : program =
  {
    p with
    funcs =
      List.map (fun fn -> { fn with f_body = subst_var name e fn.f_body }) p.funcs;
  }

(* --- the rc reporting pass ------------------------------------------------ *)

(* RC ops present in the final program (the §III-B/C bookkeeping cost the
   generated code actually pays). *)
let c_rc_incs = Support.Telemetry.counter "lower.rc_incs"
let c_rc_decs = Support.Telemetry.counter "lower.rc_decs"

let count_rc stmts =
  let incs = ref 0 and decs = ref 0 in
  ignore
    (map_stmts Fun.id
       (fun s ->
         (match s with
         | RcInc _ -> incr incs
         | RcDec _ -> incr decs
         | _ -> ());
         s)
       stmts);
  (!incs, !decs)

(** Always appended after the user-orderable stages: tallies the
    retain/release operations left in the final program — per user
    function, attributing synthesised functions' traffic to their
    [f_origin] — into the [lower.rc_incs]/[lower.rc_decs] counters and
    the per-function ["rc"] remarks. *)
let rc_report : t =
  {
    name = "rc";
    default_on = true;
    renumbers = false;
    managed_snapshot = false;
    run =
      (fun ctx ~enabled:_ p ->
        let tally = Hashtbl.create 8 in
        List.iter
          (fun fn ->
            let owner = Option.value fn.f_origin ~default:fn.f_name in
            let i, d = count_rc fn.f_body in
            let pi, pd =
              Option.value (Hashtbl.find_opt tally owner) ~default:(0, 0)
            in
            Hashtbl.replace tally owner (pi + i, pd + d))
          p.funcs;
        List.iter
          (fun fn ->
            match (fn.f_origin, fn.f_span) with
            | Some _, _ | _, None -> ()
            | None, Some span ->
                let incs, decs =
                  Option.value (Hashtbl.find_opt tally fn.f_name) ~default:(0, 0)
                in
                Support.Telemetry.add c_rc_incs incs;
                Support.Telemetry.add c_rc_decs decs;
                if Support.Remark.on () then begin
                  let details =
                    [
                      ("function", fn.f_name);
                      ("incs", string_of_int incs);
                      ("decs", string_of_int decs);
                    ]
                  in
                  if not ctx.rc then
                    Support.Remark.emit ~pass:"rc" ~kind:Support.Remark.Skipped
                      ~span ~details
                      "reference counting disabled (refptr extension not \
                       composed): '%s' manages no matrix ownership"
                      fn.f_name
                  else if incs + decs = 0 then
                    Support.Remark.emit ~pass:"rc" ~kind:Support.Remark.Missed
                      ~span ~details
                      "no reference-count operations needed in '%s'" fn.f_name
                  else
                    Support.Remark.emit ~pass:"rc" ~kind:Support.Remark.Applied
                      ~span ~details
                      "inserted %d retain and %d release operations in '%s'"
                      incs decs fn.f_name
                end)
          p.funcs;
        p);
  }
