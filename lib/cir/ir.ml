(** The lowered C-like intermediate representation — the "plain (parallel)
    C code" every extension translates down to (§II).

    Matrix constructs arrive here as explicit loop nests over flat
    row-major buffers plus a small runtime API (allocation, flat get/set,
    dimension queries, reference counting) — exactly the code the paper
    shows in Fig 3.  Loops are structured ([For] with named index, 0-based,
    exclusive upper bound, step 1) so the §V transformations can find and
    rewrite them; [ParFor] marks a loop dispatched to the persistent
    worker pool; the [Vec*] forms are the simulated-SSE operations that
    vectorization introduces (Fig 11). *)

type ctype =
  | CInt
  | CFloat
  | CBool
  | CVoid
  | CMat of Runtime.Ndarray.elem * int  (** element type, static rank *)
  | CVec  (** SSE vector register of [Simd.default_width] f32 lanes *)
  | CTuple of ctype list  (** lowered to a C struct *)

let rec ctype_name = function
  | CInt -> "int"
  (* mm_float is C double (mm_runtime.h): the interpreter evaluates float
     arithmetic in OCaml doubles, and native results must match bit-for-bit. *)
  | CFloat -> "mm_float"
  | CBool -> "bool"
  | CVoid -> "void"
  | CMat (e, r) ->
      Printf.sprintf "mm_mat_%s%d" (Runtime.Ndarray.elem_name e) r
  | CVec -> "__m128"
  | CTuple ts ->
      "struct_" ^ String.concat "_" (List.map ctype_name ts)

type binop =
  | Arith of Runtime.Scalar.arith
  | Cmp of Runtime.Scalar.cmp
  | Logic of Runtime.Scalar.logic

type unop = Neg | Not | IntOfFloat | FloatOfInt

type expr =
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string  (** file-path literals for readMatrix/writeMatrix *)
  | Var of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Min of expr * expr  (** integer minimum (tile boundary bounds) *)
  | Call of string * expr list
  | TupleE of expr list
  | Field of expr * int
  (* --- matrix runtime API ------------------------------------------- *)
  | MAlloc of Runtime.Ndarray.elem * expr list  (** mm_alloc: extents *)
  | MGetFlat of expr * expr  (** buffer read: matrix, flat offset *)
  | MDim of expr * expr  (** mm_dim(m, d); d is usually a static literal *)
  | MSize of expr  (** mm_size(m): product of extents *)
  | MRead of expr  (** readMatrix(path) *)
  (* --- simulated SSE -------------------------------------------------- *)
  | VecSplat of expr  (** _mm_set1_ps *)
  | VecGather of expr * expr * expr
      (** (matrix, base offset, lane stride); stride 1 = _mm_loadu_ps *)
  | VecBin of Runtime.Scalar.arith * expr * expr
  | VecHsum of expr  (** horizontal sum to a float *)

type lvalue = LVar of string | LField of lvalue * int

type site = ..
(** Open payload type for {!Site} annotations: the lowering records a
    decision *site* (a fusable result copy, an aliasable slice copy, a
    parallelizable loop, a pending transformation script) around the
    baseline statements it emitted for it, and the corresponding CIR pass
    later consumes the site — rewriting or splicing the wrapped
    statements and emitting the optimization remark.  Constructors are
    declared by whichever extension owns the decision (the matrix
    extension's live in [Matrix.Sites], the transform extension's in its
    own module), so this module stays extension-agnostic. *)

type stmt =
  | Decl of ctype * string * expr option
  | Assign of lvalue * expr
  | MSetFlat of expr * expr * expr  (** matrix, flat offset, value *)
  | VecScatter of expr * expr * expr * expr
      (** (matrix, base, stride, vector); stride 1 = _mm_storeu_ps *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of loop
  | ParFor of loop  (** dispatched to the §III-C worker pool *)
  | ExprS of expr
  | Return of expr option
  | Break
  | Continue
  | RcInc of expr  (** refcount increment on a matrix handle *)
  | RcDec of expr
  | MWrite of expr * expr  (** writeMatrix(path, m) *)
  | Comment of string  (** carried into the emitted C *)
  | Block of stmt list  (** braced C scope (shadowing, lifetimes) *)
  | Spawn of lvalue option * string * expr list
      (** Cilk-style [x = spawn f(args)] (§VIII future work): the call runs
          concurrently; the assignment lands at the next [Sync] *)
  | Sync  (** Cilk sync: wait for every spawn of the current function *)
  | Located of Support.Pos.span * stmt list
      (** Provenance wrapper: the statements came from this source span.
          NOT a scope — declarations inside stay visible to later siblings;
          the emitter prints the inner statements inline (plus an optional
          [#line] directive) and the interpreter executes them in the
          current environment. *)
  | Site of site * stmt list
      (** Optimization-decision wrapper produced by the baseline lowering
          and consumed by the CIR passes.  Like [Located], NOT a scope:
          emission, interpretation and transformation matching treat the
          wrapped statements as spliced inline.  A completed pipeline run
          leaves no [Site] nodes behind — every registered pass splices
          (or rewrites) the sites it owns, enabled or not. *)

and loop = {
  index : string;
  bound : expr;
  body : stmt list;
  prov : Support.Pos.span option;
      (** source span of the matrix expression / statement this loop was
          lowered from; transformations preserve (and merge) it *)
}
(** Canonical loop: [for (int index = 0; index < bound; index++)]. The
    lowerings always produce this form; transformations rely on it. *)

type func = {
  f_name : string;
  f_params : (ctype * string) list;
  f_ret : ctype;
  f_body : stmt list;
  f_span : Support.Pos.span option;
      (** span of the source function definition; the rc reporting pass
          anchors its per-function remark here *)
  f_origin : string option;
      (** for functions synthesised by a lowering (lifted matrixMap
          bodies): the user function whose lowering introduced them.
          Reference-count accounting attributes their RC traffic to the
          origin, matching where the programmer wrote the construct. *)
}

type program = { funcs : func list; main : string }

(* ----- traversal / rewriting utilities used by the transformations ----- *)

(** [map_expr f e] — bottom-up expression rewrite. *)
let rec map_expr f e =
  let r = map_expr f in
  let e' =
    match e with
    | Int _ | Float _ | Bool _ | Str _ | Var _ -> e
    | Binop (op, a, b) -> Binop (op, r a, r b)
    | Unop (op, a) -> Unop (op, r a)
    | Min (a, b) -> Min (r a, r b)
    | Call (n, args) -> Call (n, List.map r args)
    | TupleE es -> TupleE (List.map r es)
    | Field (a, i) -> Field (r a, i)
    | MAlloc (el, es) -> MAlloc (el, List.map r es)
    | MGetFlat (m, o) -> MGetFlat (r m, r o)
    | MDim (m, d) -> MDim (r m, r d)
    | MSize m -> MSize (r m)
    | MRead p -> MRead (r p)
    | VecSplat a -> VecSplat (r a)
    | VecGather (m, b, s) -> VecGather (r m, r b, r s)
    | VecBin (op, a, b) -> VecBin (op, r a, r b)
    | VecHsum a -> VecHsum (r a)
  in
  f e'

(** [map_stmts fe fs stmts] — bottom-up rewrite of statements ([fs]) with
    expressions rewritten by [fe]. *)
let rec map_stmt fe fs s =
  let re = map_expr fe in
  let rb = List.map (map_stmt fe fs) in
  let s' =
    match s with
    | Decl (t, n, e) -> Decl (t, n, Option.map re e)
    | Assign (lv, e) -> Assign (lv, re e)
    | MSetFlat (m, o, v) -> MSetFlat (re m, re o, re v)
    | VecScatter (m, b, st, v) -> VecScatter (re m, re b, re st, re v)
    | If (c, a, b) -> If (re c, rb a, rb b)
    | While (c, b) -> While (re c, rb b)
    | For l -> For { l with bound = re l.bound; body = rb l.body }
    | ParFor l -> ParFor { l with bound = re l.bound; body = rb l.body }
    | ExprS e -> ExprS (re e)
    | Return e -> Return (Option.map re e)
    | Break | Continue | Comment _ -> s
    | RcInc e -> RcInc (re e)
    | RcDec e -> RcDec (re e)
    | MWrite (p, m) -> MWrite (re p, re m)
    | Block b -> Block (rb b)
    | Spawn (lv, f, args) -> Spawn (lv, f, List.map re args)
    | Sync -> Sync
    | Located (sp, b) -> Located (sp, rb b)
    | Site (site, b) -> Site (site, rb b)
  in
  fs s'

let map_stmts fe fs stmts = List.map (map_stmt fe fs) stmts

(** [subst_var name e stmts] — replace every [Var name] with [e]. *)
let subst_var name e stmts =
  map_stmts (function Var n when n = name -> e | x -> x) Fun.id stmts

(** [subst_var_expr name r e] — same substitution within one expression. *)
let subst_var_expr name r e =
  map_expr (function Var n when n = name -> r | x -> x) e

(** [expr_uses_var name e] — does [Var name] occur in [e]? *)
let expr_uses_var name e =
  let found = ref false in
  ignore
    (map_expr
       (function
         | Var n when n = name ->
             found := true;
             Var n
         | x -> x)
       e);
  !found

(** [stmts_use_var name b] — does [Var name] occur anywhere in [b]? *)
let stmts_use_var name b =
  let found = ref false in
  ignore
    (map_stmts
       (function
         | Var n when n = name ->
             found := true;
             Var n
         | x -> x)
       Fun.id b);
  !found

(** Loop constructor; [?prov] is the source span the loop is attributed to. *)
let mk_loop ?prov ~index ~bound body = { index; bound; body; prov }

(** Merge two optional provenance spans (fused loops keep the union). *)
let merge_prov a b =
  match (a, b) with
  | None, p | p, None -> p
  | Some x, Some y -> Some (Support.Pos.merge x y)

(** Structural helpers for building lowered code. *)
let ( +: ) a b = Binop (Arith Runtime.Scalar.Add, a, b)

let ( -: ) a b = Binop (Arith Runtime.Scalar.Sub, a, b)
let ( *: ) a b = Binop (Arith Runtime.Scalar.Mul, a, b)
let ( /: ) a b = Binop (Arith Runtime.Scalar.Div, a, b)
let ( <: ) a b = Binop (Cmp Runtime.Scalar.Lt, a, b)

(** Smart constant folding used by the lowerings and transformations so the
    emitted C matches the paper's figures (e.g. [n/4] stays symbolic but
    [8/4] folds to [2]). *)
let rec fold_expr e =
  match e with
  | Binop (Arith op, a, b) -> (
      let a = fold_expr a and b = fold_expr b in
      match (op, a, b) with
      | Runtime.Scalar.Add, Int 0, x | Runtime.Scalar.Add, x, Int 0 -> x
      | Runtime.Scalar.Sub, x, Int 0 -> x
      | Runtime.Scalar.Mul, Int 1, x | Runtime.Scalar.Mul, x, Int 1 -> x
      | Runtime.Scalar.Mul, Int 0, _ | Runtime.Scalar.Mul, _, Int 0 -> Int 0
      | Runtime.Scalar.Div, x, Int 1 -> x
      | _, Int x, Int y -> (
          match op with
          | Runtime.Scalar.Add -> Int (x + y)
          | Runtime.Scalar.Sub -> Int (x - y)
          | Runtime.Scalar.Mul -> Int (x * y)
          | Runtime.Scalar.Div -> if y = 0 then Binop (Arith op, a, b) else Int (x / y)
          | Runtime.Scalar.Mod -> if y = 0 then Binop (Arith op, a, b) else Int (x mod y))
      | _ -> Binop (Arith op, a, b))
  | Min (a, b) -> (
      match (fold_expr a, fold_expr b) with
      | Int x, Int y -> Int (min x y)
      | a, b -> Min (a, b))
  | e -> e

let fold_deep stmts = map_stmts fold_expr Fun.id stmts
