(** Pass-by-pass IR snapshots ([--dump-ir]) and snapshot diffs
    ([--ir-diff]).

    The lowering pipeline is monolithic — fusion, copy elimination and
    auto-parallelization happen while the tree is built, not as separate
    passes over it — so "the IR after pass P" is reconstructed by
    re-lowering with the cumulative flag set for P (the driver owns that
    staging); the transform extension additionally records the statement
    nest after each script clause it applies.  This module is just the
    registry those producers write into and the renderer: full pretty-print
    per snapshot, or a unified line diff between consecutive snapshots of
    the same subject when [--ir-diff] is on.

    Pass names, in pipeline order: ["lower"] (no optimizations), ["fuse"],
    ["copy-elim"], ["auto-par"], ["transform"] (one snapshot per applied
    clause). *)

let known_passes = [ "lower"; "fuse"; "copy-elim"; "auto-par"; "transform" ]

type t = {
  pass : string;
  label : string;
      (** diff subject: ["program"] for whole-program stage dumps, the
          source location of the transformed statement for per-clause
          transform snapshots *)
  note : string;
      (** extra header detail (the transform clause just applied); [""]
          when there is nothing to say *)
  text : string;  (** pretty-printed CIR *)
}

(* --- configuration ------------------------------------------------------ *)

let wanted : string list ref = ref []
let diff_mode = ref false

(** [live] gates producers that run {e inside} lowering (the transform
    extension's per-clause hook): the driver turns it off while
    re-lowering intermediate stages so clause snapshots are recorded
    exactly once, during the final lowering. *)
let live = ref true

let set_live b = live := b

(** [configure ~passes ~diff] — select which passes to capture ("all"
    selects every known pass) and whether {!render} diffs consecutive
    snapshots instead of printing each in full. *)
let configure ~passes ~diff =
  wanted := (if List.mem "all" passes then known_passes else passes);
  diff_mode := diff

let wants pass = !live && List.mem pass !wanted
let any_wanted () = !wanted <> []

(* --- recording ---------------------------------------------------------- *)

let buf : t list ref = ref []

let reset () =
  buf := [];
  live := true

let record ~pass ~label ?(note = "") text =
  if wants pass then buf := { pass; label; note; text } :: !buf

let results () = List.rev !buf

(* --- unified line diff -------------------------------------------------- *)

type op = Keep of string | Del of string | Add of string

(** Longest-common-subsequence edit script over lines (classic O(n·m)
    DP — snapshots are a few hundred lines at most). *)
let diff_lines (a : string array) (b : string array) : op list =
  let n = Array.length a and m = Array.length b in
  let lcs = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      lcs.(i).(j) <-
        (if String.equal a.(i) b.(j) then 1 + lcs.(i + 1).(j + 1)
         else max lcs.(i + 1).(j) lcs.(i).(j + 1))
    done
  done;
  let rec walk i j acc =
    if i < n && j < m && String.equal a.(i) b.(j) then
      walk (i + 1) (j + 1) (Keep a.(i) :: acc)
    else if j < m && (i = n || lcs.(i).(j + 1) >= lcs.(i + 1).(j)) then
      walk i (j + 1) (Add b.(j) :: acc)
    else if i < n then walk (i + 1) j (Del a.(i) :: acc)
    else List.rev acc
  in
  walk 0 0 []

(** [pp_unified ppf ~from_ ~to_ a b] — minimal unified-diff rendering
    (headers plus [+]/[-]/[ ] lines; no hunk ranges — the consumers are
    humans and golden tests, not [patch]). *)
let pp_unified ppf ~from_ ~to_ (a : string) (b : string) =
  let lines s = Array.of_list (String.split_on_char '\n' s) in
  let ops = diff_lines (lines a) (lines b) in
  if List.for_all (function Keep _ -> true | _ -> false) ops then
    Fmt.pf ppf "--- %s@.+++ %s@.(no change)@." from_ to_
  else begin
    Fmt.pf ppf "--- %s@.+++ %s@." from_ to_;
    (* trim runs of unchanged lines to 2 lines of context on each side *)
    let ctx = 2 in
    let arr = Array.of_list ops in
    let n = Array.length arr in
    let is_keep i = match arr.(i) with Keep _ -> true | _ -> false in
    let near_change i =
      let lo = max 0 (i - ctx) and hi = min (n - 1) (i + ctx) in
      let rec any j = j <= hi && ((not (is_keep j)) || any (j + 1)) in
      any lo
    in
    let skipping = ref false in
    Array.iteri
      (fun i op ->
        match op with
        | Keep l ->
            if near_change i then begin
              skipping := false;
              Fmt.pf ppf " %s@." l
            end
            else if not !skipping then begin
              skipping := true;
              Fmt.pf ppf "   ...@."
            end
        | Del l ->
            skipping := false;
            Fmt.pf ppf "-%s@." l
        | Add l ->
            skipping := false;
            Fmt.pf ppf "+%s@." l)
      arr
  end

(* --- rendering ---------------------------------------------------------- *)

(** [pp ppf ()] — every recorded snapshot in recording order.  In diff
    mode, each snapshot after the first {e of the same label} renders as a
    unified diff against its predecessor; the first of each label (and
    everything in plain mode) prints in full. *)
let pp ppf () =
  let prev : (string, string * string) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun s ->
      (if s.note = "" then Fmt.pf ppf "=== ir after %s (%s) ===@." s.pass s.label
       else Fmt.pf ppf "=== ir after %s (%s) [%s] ===@." s.pass s.label s.note);
      (match (!diff_mode, Hashtbl.find_opt prev s.label) with
      | true, Some (ppass, ptext) ->
          pp_unified ppf ~from_:ppass ~to_:s.pass ptext s.text
      | _ -> Fmt.pf ppf "%s@." s.text);
      Hashtbl.replace prev s.label (s.pass, s.text))
    (results ())

let to_string () = Fmt.str "%a" pp ()
