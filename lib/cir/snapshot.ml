(** Pass-by-pass IR snapshots ([--dump-ir]) and snapshot diffs
    ([--ir-diff]).

    A {!sink} is a per-pipeline-run recorder owned by the driver's pass
    manager: the manager records an ["ir after <pass> (program)"] snapshot
    after each selected pass actually runs over the single lowered
    program, and passes with finer-grained output (the transform pass's
    per-clause dumps) record into the same sink themselves.  There is no
    global state and no re-lowering — one pipeline run produces every
    requested snapshot.

    Rendering is full pretty-print per snapshot, or a unified line diff
    between consecutive snapshots of the same subject when [--ir-diff] is
    on (falling back to a plain before/after dump above
    {!max_diff_lines}, since the LCS diff is O(n·m) in lines).

    Pass names, in default pipeline order: ["lower"] (the baseline, no
    optimizations), ["fuse"], ["copy-elim"], ["auto-par"], ["transform"]
    (one snapshot per applied clause). *)

let known_passes = [ "lower"; "fuse"; "copy-elim"; "auto-par"; "transform" ]

type entry = {
  pass : string;
  label : string;
      (** diff subject: ["program"] for whole-program stage dumps, the
          source location of the transformed statement for per-clause
          transform snapshots *)
  note : string;
      (** extra header detail (the transform clause just applied); [""]
          when there is nothing to say *)
  text : string;  (** pretty-printed CIR *)
}

type sink = {
  passes : string list;  (** which passes to capture *)
  diff : bool;  (** render consecutive same-label snapshots as diffs *)
  mutable entries : entry list;  (** newest first *)
}

(** [create ~passes ~diff ()] — a fresh sink capturing the given passes
    ("all" selects every known pass). *)
let create ~passes ~diff () =
  {
    passes = (if List.mem "all" passes then known_passes else passes);
    diff;
    entries = [];
  }

let wants sink pass = List.mem pass sink.passes

let record sink ~pass ~label ?(note = "") text =
  if wants sink pass then
    sink.entries <- { pass; label; note; text } :: sink.entries

let results sink = List.rev sink.entries

(* --- unified line diff -------------------------------------------------- *)

type op = Keep of string | Del of string | Add of string

(** Snapshots larger than this many lines skip the O(n·m) LCS diff and
    render as a plain before/after dump with a visible note. *)
let max_diff_lines = 4000

(** Longest-common-subsequence edit script over lines (classic O(n·m)
    DP — fine for the few hundred lines of a typical snapshot; guarded by
    {!max_diff_lines} above). *)
let diff_lines (a : string array) (b : string array) : op list =
  let n = Array.length a and m = Array.length b in
  let lcs = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      lcs.(i).(j) <-
        (if String.equal a.(i) b.(j) then 1 + lcs.(i + 1).(j + 1)
         else max lcs.(i + 1).(j) lcs.(i).(j + 1))
    done
  done;
  let rec walk i j acc =
    if i < n && j < m && String.equal a.(i) b.(j) then
      walk (i + 1) (j + 1) (Keep a.(i) :: acc)
    else if j < m && (i = n || lcs.(i).(j + 1) >= lcs.(i + 1).(j)) then
      walk i (j + 1) (Add b.(j) :: acc)
    else if i < n then walk (i + 1) j (Del a.(i) :: acc)
    else List.rev acc
  in
  walk 0 0 []

(** [pp_unified ppf ~from_ ~to_ a b] — minimal unified-diff rendering
    (headers plus [+]/[-]/[ ] lines; no hunk ranges — the consumers are
    humans and golden tests, not [patch]). *)
let pp_unified ppf ~from_ ~to_ (a : string) (b : string) =
  let lines s = Array.of_list (String.split_on_char '\n' s) in
  let la = lines a and lb = lines b in
  if Array.length la > max_diff_lines || Array.length lb > max_diff_lines
  then begin
    (* The O(n·m) diff would stall on snapshots this size: dump in full. *)
    Fmt.pf ppf "--- %s@.+++ %s@." from_ to_;
    Fmt.pf ppf
      "(diff skipped: snapshot exceeds %d lines; showing both versions in \
       full)@."
      max_diff_lines;
    Fmt.pf ppf "<<< %s@.%s@." from_ a;
    Fmt.pf ppf ">>> %s@.%s@." to_ b
  end
  else
    let ops = diff_lines la lb in
    if List.for_all (function Keep _ -> true | _ -> false) ops then
      Fmt.pf ppf "--- %s@.+++ %s@.(no change)@." from_ to_
    else begin
      Fmt.pf ppf "--- %s@.+++ %s@." from_ to_;
      (* trim runs of unchanged lines to 2 lines of context on each side *)
      let ctx = 2 in
      let arr = Array.of_list ops in
      let n = Array.length arr in
      let is_keep i = match arr.(i) with Keep _ -> true | _ -> false in
      let near_change i =
        let lo = max 0 (i - ctx) and hi = min (n - 1) (i + ctx) in
        let rec any j = j <= hi && ((not (is_keep j)) || any (j + 1)) in
        any lo
      in
      let skipping = ref false in
      Array.iteri
        (fun i op ->
          match op with
          | Keep l ->
              if near_change i then begin
                skipping := false;
                Fmt.pf ppf " %s@." l
              end
              else if not !skipping then begin
                skipping := true;
                Fmt.pf ppf "   ...@."
              end
          | Del l ->
              skipping := false;
              Fmt.pf ppf "-%s@." l
          | Add l ->
              skipping := false;
              Fmt.pf ppf "+%s@." l)
        arr
    end

(* --- rendering ---------------------------------------------------------- *)

(** [pp ppf sink] — every recorded snapshot in recording order.  In diff
    mode, each snapshot after the first {e of the same label} renders as a
    unified diff against its predecessor; the first of each label (and
    everything in plain mode) prints in full. *)
let pp ppf sink =
  let prev : (string, string * string) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun s ->
      (if s.note = "" then Fmt.pf ppf "=== ir after %s (%s) ===@." s.pass s.label
       else Fmt.pf ppf "=== ir after %s (%s) [%s] ===@." s.pass s.label s.note);
      (match (sink.diff, Hashtbl.find_opt prev s.label) with
      | true, Some (ppass, ptext) ->
          pp_unified ppf ~from_:ppass ~to_:s.pass ptext s.text
      | _ -> Fmt.pf ppf "%s@." s.text);
      Hashtbl.replace prev s.label (s.pass, s.text))
    (results sink)

let to_string sink = Fmt.str "%a" pp sink
