(** C text emission: prints the lowered IR as the plain parallel C program
    a traditional compiler would consume (§II: "translate it down to plain
    C code, which can then be compiled for execution by a traditional
    compiler").

    The output uses a small runtime header ([mm_runtime.h], emitted as a
    preamble comment) exposing flat-buffer matrices with reference counts —
    the same API the paper's generated code calls — plus Intel SSE
    intrinsics for vectorized loops (Fig 11) and OpenMP pragmas for
    parallelized ones. *)

open Ir
module S = Runtime.Scalar

let arith_sym = S.arith_name
let cmp_sym = S.cmp_name
let logic_sym = function S.And -> "&&" | S.Or -> "||"

(* C operator precedence levels (higher binds tighter). *)
let prec_of = function
  | Binop (Arith (S.Mul | S.Div | S.Mod), _, _) -> 50
  | Binop (Arith (S.Add | S.Sub), _, _) -> 40
  | Binop (Cmp (S.Lt | S.Le | S.Gt | S.Ge), _, _) -> 30
  | Binop (Cmp (S.Eq | S.Ne), _, _) -> 25
  | Binop (Logic S.And, _, _) -> 20
  | Binop (Logic S.Or, _, _) -> 15
  | Unop _ -> 60
  | _ -> 100

let float_lit f =
  if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.1ff" f
  else Printf.sprintf "%gf" f

let rec expr ?(prec = 0) (e : expr) : string =
  let p = prec_of e in
  let s =
    match e with
    | Int i -> string_of_int i
    | Float f -> float_lit f
    | Bool b -> if b then "true" else "false"
    | Str s -> Printf.sprintf "%S" s
    | Var v -> v
    | Binop (Arith op, a, b) ->
        Printf.sprintf "%s %s %s" (expr ~prec:p a) (arith_sym op)
          (expr ~prec:(p + 1) b)
    | Binop (Cmp op, a, b) ->
        Printf.sprintf "%s %s %s" (expr ~prec:p a) (cmp_sym op)
          (expr ~prec:(p + 1) b)
    | Binop (Logic op, a, b) ->
        Printf.sprintf "%s %s %s" (expr ~prec:p a) (logic_sym op)
          (expr ~prec:(p + 1) b)
    | Unop (Neg, a) -> Printf.sprintf "-%s" (expr ~prec:60 a)
    | Unop (Not, a) -> Printf.sprintf "!%s" (expr ~prec:60 a)
    | Unop (IntOfFloat, a) -> Printf.sprintf "(int) %s" (expr ~prec:60 a)
    | Unop (FloatOfInt, a) -> Printf.sprintf "(float) %s" (expr ~prec:60 a)
    | Min (a, b) ->
        Printf.sprintf "mm_min(%s, %s)" (expr ~prec:0 a) (expr ~prec:0 b)
    | Call (f, args) ->
        Printf.sprintf "%s(%s)" f (String.concat ", " (List.map (expr ~prec:0) args))
    | TupleE es ->
        Printf.sprintf "{ %s }" (String.concat ", " (List.map (expr ~prec:0) es))
    | Field (a, i) -> Printf.sprintf "%s.f%d" (expr ~prec:60 a) i
    | MAlloc (el, dims) ->
        Printf.sprintf "mm_alloc_%s(%d%s)"
          (Runtime.Ndarray.elem_name el)
          (List.length dims)
          (String.concat ""
             (List.map (fun d -> ", " ^ expr ~prec:0 d) dims))
    | MGetFlat (m, off) ->
        Printf.sprintf "%s->data[%s]" (expr ~prec:60 m) (expr ~prec:0 off)
    | MDim (m, d) -> Printf.sprintf "%s->dims[%s]" (expr ~prec:60 m) (expr ~prec:0 d)
    | MSize m -> Printf.sprintf "mm_size(%s)" (expr ~prec:0 m)
    | MRead p -> Printf.sprintf "mm_read_matrix(%s)" (expr ~prec:0 p)
    | VecSplat a -> Printf.sprintf "_mm_set1_ps(%s)" (expr ~prec:0 a)
    | VecGather (m, base, Int 1) ->
        Printf.sprintf "_mm_loadu_ps(&%s->data[%s])" (expr ~prec:60 m)
          (expr ~prec:0 base)
    | VecGather (m, base, stride) ->
        (* SSE has no gather; pack 4 strided lanes (highest lane first, as
           _mm_set_ps expects). *)
        let b = expr ~prec:40 base and s = expr ~prec:50 stride in
        let d = expr ~prec:60 m in
        Printf.sprintf
          "_mm_set_ps(%s->data[%s + 3 * %s], %s->data[%s + 2 * %s], %s->data[%s + %s], %s->data[%s])"
          d b s d b s d b s d b
    | VecBin (op, a, b) ->
        let name =
          match op with
          | S.Add -> "_mm_add_ps"
          | S.Sub -> "_mm_sub_ps"
          | S.Mul -> "_mm_mul_ps"
          | S.Div -> "_mm_div_ps"
          | S.Mod -> "mm_mod_ps"
        in
        Printf.sprintf "%s(%s, %s)" name (expr ~prec:0 a) (expr ~prec:0 b)
    | VecHsum a -> Printf.sprintf "mm_hsum_ps(%s)" (expr ~prec:0 a)
  in
  if p < prec then "(" ^ s ^ ")" else s

let rec lvalue = function
  | LVar v -> v
  | LField (lv, i) -> Printf.sprintf "%s.f%d" (lvalue lv) i

(* When [Some file], [Located] nodes emit [#line] directives pointing the C
   toolchain (debuggers, profilers) back at the original source. Off by
   default so emitted C is unchanged for existing consumers. *)
let line_file : string option ref = ref None

let ctype_decl t name =
  match t with
  | CMat (_, _) -> Printf.sprintf "%s *%s" (ctype_name t) name
  | CVec -> Printf.sprintf "__m128 %s" name
  | t -> Printf.sprintf "%s %s" (ctype_name t) name

let rec stmt (buf : Buffer.t) (ind : string) (s : stmt) : unit =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (ind ^ s ^ "\n")) fmt in
  match s with
  | Decl (t, n, None) -> line "%s;" (ctype_decl t n)
  | Decl (t, n, Some e) -> line "%s = %s;" (ctype_decl t n) (expr e)
  | Assign (lv, e) -> line "%s = %s;" (lvalue lv) (expr e)
  | MSetFlat (m, off, v) ->
      line "%s->data[%s] = %s;" (expr ~prec:60 m) (expr off) (expr v)
  | VecScatter (m, base, Int 1, v) ->
      line "_mm_storeu_ps(&%s->data[%s], %s);" (expr ~prec:60 m) (expr base)
        (expr v)
  | VecScatter (m, base, stride, v) ->
      line "mm_scatter_ps(%s->data, %s, %s, %s);" (expr ~prec:60 m) (expr base)
        (expr stride) (expr v)
  | If (c, a, []) ->
      line "if (%s) {" (expr c);
      block buf (ind ^ "  ") a;
      line "}"
  | If (c, a, b) ->
      line "if (%s) {" (expr c);
      block buf (ind ^ "  ") a;
      line "} else {";
      block buf (ind ^ "  ") b;
      line "}"
  | While (c, b) ->
      line "while (%s) {" (expr c);
      block buf (ind ^ "  ") b;
      line "}"
  | For l ->
      line "for (int %s = 0; %s < %s; %s++) {" l.index l.index
        (expr ~prec:31 l.bound) l.index;
      block buf (ind ^ "  ") l.body;
      line "}"
  | ParFor l ->
      line "#pragma omp parallel for";
      line "for (int %s = 0; %s < %s; %s++) {" l.index l.index
        (expr ~prec:31 l.bound) l.index;
      block buf (ind ^ "  ") l.body;
      line "}"
  | ExprS e -> line "%s;" (expr e)
  | Return None -> line "return;"
  | Return (Some e) -> line "return %s;" (expr e)
  | Break -> line "break;"
  | Continue -> line "continue;"
  | RcInc e -> line "mm_rc_inc(%s);" (expr e)
  | RcDec e -> line "mm_rc_dec(%s);" (expr e)
  | MWrite (p, m) -> line "mm_write_matrix(%s, %s);" (expr p) (expr m)
  | Comment c -> line "/* %s */" c
  | Block b ->
      line "{";
      block buf (ind ^ "  ") b;
      line "}"
  | Spawn (None, f, args) ->
      line "cilk_spawn %s(%s);" f
        (String.concat ", " (List.map (expr ~prec:0) args))
  | Spawn (Some lv, f, args) ->
      line "%s = cilk_spawn %s(%s);" (lvalue lv) f
        (String.concat ", " (List.map (expr ~prec:0) args))
  | Sync -> line "cilk_sync;"
  | Located (sp, b) ->
      (* Not a C scope: print the inner statements at the current indent so
         declarations stay visible to later siblings. *)
      (match !line_file with
      | Some file ->
          Buffer.add_string buf
            (Printf.sprintf "#line %d %S\n" sp.Support.Pos.left.Support.Pos.line
               file)
      | None -> ());
      block buf ind b

and block buf ind stmts = List.iter (stmt buf ind) stmts

let func (f : func) : string =
  let buf = Buffer.create 256 in
  let params =
    match f.f_params with
    | [] -> "void"
    | ps -> String.concat ", " (List.map (fun (t, n) -> ctype_decl t n) ps)
  in
  let ret =
    match f.f_ret with
    | CMat (_, _) as t -> ctype_name t ^ " *"
    | t -> ctype_name t ^ " "
  in
  Buffer.add_string buf (Printf.sprintf "%s%s(%s) {\n" ret f.f_name params);
  block buf "  " f.f_body;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let preamble =
  String.concat "\n"
    [
      "/* Generated by mmc — extensible CMINUS translator.";
      "   Matrix constructs have been translated to plain parallel C";
      "   over the mm_runtime flat-buffer matrix API. */";
      "#include <stdbool.h>";
      "#include <xmmintrin.h>";
      "#include <omp.h>";
      "#include \"mm_runtime.h\"";
      "";
    ]

let program ?line_directives_file (p : program) : string =
  line_file := line_directives_file;
  let out =
    Fun.protect
      ~finally:(fun () -> line_file := None)
      (fun () -> preamble ^ String.concat "\n" (List.map func p.funcs))
  in
  out

(** Emission of a single statement list (golden tests on loop shapes). *)
let stmts (ss : stmt list) : string =
  let buf = Buffer.create 256 in
  block buf "" ss;
  Buffer.contents buf
