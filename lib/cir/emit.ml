(** C text emission: prints the lowered IR as the plain parallel C program
    a traditional compiler would consume (§II: "translate it down to plain
    C code, which can then be compiled for execution by a traditional
    compiler").

    The output includes the real runtime header ([mm_runtime.h], shipped
    in runtime/c/) exposing flat-buffer matrices with reference counts —
    the same API the paper's generated code calls — plus Intel SSE
    intrinsics for vectorized loops (Fig 11) and OpenMP pragmas for
    parallelized ones.  [mm_float] is C [double]: the reference
    interpreter evaluates float expressions in double precision, and
    native output must agree bit-for-bit.

    With [exec_harness] the entry function is renamed and a generated
    [int main] prints the entry's result (and the live-allocation count)
    through the runtime's result protocol, which [mmc exec] parses back
    into the interpreter's value shape. *)

open Ir
module S = Runtime.Scalar

let arith_sym = S.arith_name
let cmp_sym = S.cmp_name
let logic_sym = function S.And -> "&&" | S.Or -> "||"

(* C operator precedence levels (higher binds tighter). *)
let prec_of = function
  | Binop (Arith (S.Mul | S.Div | S.Mod), _, _) -> 50
  | Binop (Arith (S.Add | S.Sub), _, _) -> 40
  | Binop (Cmp (S.Lt | S.Le | S.Gt | S.Ge), _, _) -> 30
  | Binop (Cmp (S.Eq | S.Ne), _, _) -> 25
  | Binop (Logic S.And, _, _) -> 20
  | Binop (Logic S.Or, _, _) -> 15
  | Unop _ -> 60
  | _ -> 100

(* Float literals are mm_float (= double), so no [f] suffix — and they
   must round-trip: the interpreter computes with the OCaml double the
   literal denotes, and the C compiler must reconstruct that exact value. *)
let float_lit f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else
    let short = Printf.sprintf "%g" f in
    if float_of_string short = f then short else Printf.sprintf "%.17g" f

(* OCaml's %S uses decimal escapes ("\001"), which are invalid C; escape
   by hand with octal for the rare non-printable byte. *)
let c_string_lit s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 32 || Char.code c > 126 ->
          Buffer.add_string buf (Printf.sprintf "\\%03o" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* --- instrumentation / guard state (shared with expr below) ------------ *)

(* When on, provenance-carrying loops and top-level located statements are
   wrapped in mm_prof enter/exit calls keyed by a span table generated
   into the program, so a native run attributes wall time to the same
   source spans the interpreter profiler reports. *)
let instrument_mode = ref false

(* Runtime guards (--guards): emitted subscripts route through the
   MM_GUARD_IDX bounds check attributed to the innermost open source
   span, and provenance sites additionally push/pop crash breadcrumbs
   (mm_crumb_push/pop) so a signal death triages to a span even
   unprofiled.
   Guards share the provenance-site selection (and the span id space)
   with instrumentation; either mode alone activates the sites. *)
let guards_mode = ref false

let sites_on () = !instrument_mode || !guards_mode

(* Span string -> id, in first-emission order (the table index is the id). *)
let span_ids : (string, int) Hashtbl.t = Hashtbl.create 16
let span_order : string list ref = ref [] (* reversed *)

let span_id s =
  match Hashtbl.find_opt span_ids s with
  | Some id -> id
  | None ->
      let id = Hashtbl.length span_ids in
      Hashtbl.add span_ids s id;
      span_order := s :: !span_order;
      id

(* Spans of the instrumented frames currently open at the emission point,
   innermost first.  Mirrors the interpreter's runtime frame stack well
   enough to make the same skip decisions statically: a loop desugared to
   several nested loops over one source span instruments only the
   outermost, and a [return] knows which frames to unwind. *)
let open_spans : string list ref = ref []

let in_frame s f =
  open_spans := s :: !open_spans;
  Fun.protect ~finally:(fun () -> open_spans := List.tl !open_spans) f

(* The guard span a subscript check reports: the innermost open
   provenance frame at the emission point, -1 when none.  Static by
   design — the runtime breadcrumb stack exists for signal triage only,
   while subscript attribution never needs to cross a call. *)
let guard_site_id () =
  match !open_spans with s :: _ -> span_id s | [] -> -1

let rec expr ?(prec = 0) (e : expr) : string =
  let p = prec_of e in
  let s =
    match e with
    | Int i -> string_of_int i
    | Float f -> float_lit f
    | Bool b -> if b then "true" else "false"
    | Str s -> c_string_lit s
    | Var v -> v
    | Binop (Arith op, a, b) ->
        Printf.sprintf "%s %s %s" (expr ~prec:p a) (arith_sym op)
          (expr ~prec:(p + 1) b)
    | Binop (Cmp op, a, b) ->
        Printf.sprintf "%s %s %s" (expr ~prec:p a) (cmp_sym op)
          (expr ~prec:(p + 1) b)
    | Binop (Logic op, a, b) ->
        Printf.sprintf "%s %s %s" (expr ~prec:p a) (logic_sym op)
          (expr ~prec:(p + 1) b)
    | Unop (Neg, a) -> Printf.sprintf "-%s" (expr ~prec:60 a)
    | Unop (Not, a) -> Printf.sprintf "!%s" (expr ~prec:60 a)
    | Unop (IntOfFloat, a) -> Printf.sprintf "(int) %s" (expr ~prec:60 a)
    | Unop (FloatOfInt, a) -> Printf.sprintf "(mm_float) %s" (expr ~prec:60 a)
    | Min (a, b) ->
        Printf.sprintf "mm_min(%s, %s)" (expr ~prec:0 a) (expr ~prec:0 b)
    | Call (f, args) ->
        Printf.sprintf "%s(%s)" f (String.concat ", " (List.map (expr ~prec:0) args))
    | TupleE es ->
        Printf.sprintf "{ %s }" (String.concat ", " (List.map (expr ~prec:0) es))
    | Field (a, i) -> Printf.sprintf "%s.f%d" (expr ~prec:60 a) i
    | MAlloc (el, dims) ->
        Printf.sprintf "mm_alloc_%s(%d%s)"
          (Runtime.Ndarray.elem_name el)
          (List.length dims)
          (String.concat ""
             (List.map (fun d -> ", " ^ expr ~prec:0 d) dims))
    | MGetFlat (m, off) ->
        if !guards_mode then
          Printf.sprintf "MM_GUARD_IDX(%s, %s, %d)" (expr ~prec:60 m)
            (expr ~prec:0 off) (guard_site_id ())
        else Printf.sprintf "%s->data[%s]" (expr ~prec:60 m) (expr ~prec:0 off)
    | MDim (m, d) -> Printf.sprintf "%s->dims[%s]" (expr ~prec:60 m) (expr ~prec:0 d)
    | MSize m -> Printf.sprintf "mm_size(%s)" (expr ~prec:0 m)
    | MRead p -> Printf.sprintf "mm_read_matrix(%s)" (expr ~prec:0 p)
    | VecSplat a -> Printf.sprintf "_mm_set1_ps(%s)" (expr ~prec:0 a)
    | VecGather (m, base, stride) ->
        (* Pack 4 lanes (highest lane first, as _mm_set_ps expects).  The
           per-lane double -> float conversion is exactly the interpreter's
           rounding of each gathered element through single precision;
           stride 1 gets no loadu shortcut because the buffer is double. *)
        let d = expr ~prec:60 m in
        let lane k =
          let off =
            fold_expr (Binop (Arith S.Add, base, Binop (Arith S.Mul, Int k, stride)))
          in
          Printf.sprintf "%s->data[%s]" d (expr ~prec:0 off)
        in
        Printf.sprintf "_mm_set_ps(%s, %s, %s, %s)" (lane 3) (lane 2) (lane 1)
          (lane 0)
    | VecBin (op, a, b) ->
        let name =
          match op with
          | S.Add -> "_mm_add_ps"
          | S.Sub -> "_mm_sub_ps"
          | S.Mul -> "_mm_mul_ps"
          | S.Div -> "_mm_div_ps"
          | S.Mod -> "mm_mod_ps"
        in
        Printf.sprintf "%s(%s, %s)" name (expr ~prec:0 a) (expr ~prec:0 b)
    | VecHsum a -> Printf.sprintf "mm_hsum_ps(%s)" (expr ~prec:0 a)
  in
  if p < prec then "(" ^ s ^ ")" else s

let rec lvalue = function
  | LVar v -> v
  | LField (lv, i) -> Printf.sprintf "%s.f%d" (lvalue lv) i

(* When [Some file], [Located] nodes emit [#line] directives pointing the C
   toolchain (debuggers, profilers) back at the original source. Off by
   default so emitted C is unchanged for existing consumers. *)
let line_file : string option ref = ref None

(* --- provenance-site selection (--instrument / --guards) ---------------- *)

(* A sequential loop instruments unless its span is exactly the innermost
   open frame's (tile/vector desugarings stack several loops on one span;
   one frame per span entry is what the interpreter records, and skipping
   the inner copies keeps the hot-path overhead down). *)
let seq_loop_span prov =
  if not (sites_on ()) then None
  else
    match prov with
    | None -> None
    | Some sp -> (
        let s = Support.Pos.span_to_string sp in
        match !open_spans with
        | top :: _ when String.equal top s -> None
        | _ -> Some (span_id s, s))

(* A parallel loop always instruments: its dispatch decision is exactly
   what the differential profile wants to see. *)
let par_loop_span prov =
  if not (sites_on ()) then None
  else Option.map (fun sp ->
      let s = Support.Pos.span_to_string sp in
      (span_id s, s))
    prov

(* Located statements instrument only at the top level, like the
   interpreter (statement frames nested inside loop frames would double
   every hot span). *)
let located_span sp =
  if sites_on () && !open_spans = [] then
    let s = Support.Pos.span_to_string sp in
    Some (span_id s, s)
  else None

let ctype_decl t name =
  match t with
  | CMat (_, _) -> Printf.sprintf "%s *%s" (ctype_name t) name
  | CVec -> Printf.sprintf "__m128 %s" name
  | t -> Printf.sprintf "%s %s" (ctype_name t) name

(* Return type of the function being emitted: a returned tuple literal
   needs its struct name for a C compound literal. *)
let cur_ret : ctype ref = ref CVoid

(* A [return] inside instrumented frames jumps past their exit calls;
   close them explicitly (innermost first, with zero counts) so the
   runtime stacks — profiler frames and crash breadcrumbs — never leak
   across the call. *)
let unwind_frames buf ind =
  List.iter
    (fun s ->
      let id = Hashtbl.find span_ids s in
      if !instrument_mode then
        Buffer.add_string buf
          (Printf.sprintf
             "%sif (mm_prof_live) { if (!mm_prof_skip[%d]) mm_prof_exit(%d, \
              0, 0); else mm_prof_sentries[%d]++; }\n"
             ind id id id);
      if !guards_mode then
        Buffer.add_string buf (Printf.sprintf "%smm_crumb_pop();\n" ind))
    !open_spans

let rec stmt (buf : Buffer.t) (ind : string) (s : stmt) : unit =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (ind ^ s ^ "\n")) fmt in
  match s with
  | Decl (t, n, None) ->
      (* Initialiser-less declarations get the interpreter's type defaults
         (Eval.default_of_type): a scope-exit mm_rc_dec on a never-assigned
         matrix must see NULL, not stack garbage. *)
      let init =
        match t with
        | CInt -> " = 0"
        | CFloat -> " = 0.0"
        | CBool -> " = false"
        | CMat _ -> " = NULL"
        | CVec -> " = _mm_set1_ps(0.0)"
        | CTuple _ -> " = {0}"
        | CVoid -> ""
      in
      line "%s%s;" (ctype_decl t n) init
  | Decl (t, n, Some e) -> line "%s = %s;" (ctype_decl t n) (expr e)
  | Assign (lv, TupleE es) ->
      (* A bare brace list is only valid in initialisers; an assigned
         tuple literal needs a typed compound literal. *)
      line "%s = (__typeof__(%s)){ %s };" (lvalue lv) (lvalue lv)
        (String.concat ", " (List.map (expr ~prec:0) es))
  | Assign (lv, e) -> line "%s = %s;" (lvalue lv) (expr e)
  | MSetFlat (m, off, v) ->
      if !guards_mode then
        line "MM_GUARD_IDX(%s, %s, %d) = %s;" (expr ~prec:60 m) (expr off)
          (guard_site_id ()) (expr v)
      else line "%s->data[%s] = %s;" (expr ~prec:60 m) (expr off) (expr v)
  | VecScatter (m, base, stride, v) ->
      (* No storeu shortcut for stride 1: the buffer is double, so lanes
         widen one by one (exact, matching the interpreter's store). *)
      line "mm_scatter_ps(%s->data, %s, %s, %s);" (expr ~prec:60 m) (expr base)
        (expr stride) (expr v)
  | If (c, a, []) ->
      line "if (%s) {" (expr c);
      block buf (ind ^ "  ") a;
      line "}"
  | If (c, a, b) ->
      line "if (%s) {" (expr c);
      block buf (ind ^ "  ") a;
      line "} else {";
      block buf (ind ^ "  ") b;
      line "}"
  | While (c, b) ->
      line "while (%s) {" (expr c);
      block buf (ind ^ "  ") b;
      line "}"
  | For l -> (
      match seq_loop_span l.prov with
      | Some (id, sp) ->
          (* Guarded probes: once the runtime freezes span [id]'s timing
             (mm_prof_skip flips), executions are counted inline with no
             call and no clock — a tiny loop entered per element of an
             enclosing loop costs a few loads.  mm_prof_live is 0 inside
             a dispatched parallel region, where probes must not fire.
             Breadcrumbs (guard mode) bracket the loop the same way; the
             stack is thread-local, so pushes inside parallel regions
             land on each worker's own trail. *)
          if !instrument_mode then
            line "if (mm_prof_live && !mm_prof_skip[%d]) mm_prof_enter(%d);" id
              id;
          if !guards_mode then line "mm_crumb_push(%d);" id;
          line "for (int %s = 0; %s < %s; %s++) {" l.index l.index
            (expr ~prec:31 l.bound) l.index;
          in_frame sp (fun () -> block buf (ind ^ "  ") l.body);
          line "}";
          if !guards_mode then line "mm_crumb_pop();";
          if !instrument_mode then begin
            line "if (mm_prof_live) {";
            line
              "  if (!mm_prof_skip[%d]) mm_prof_exit(%d, (long long) (%s), 0);"
              id id (expr l.bound);
            line
              "  else { mm_prof_sentries[%d]++; mm_prof_siters[%d] += (long \
               long) (%s); }"
              id id (expr l.bound);
            line "}"
          end
      | None ->
          line "for (int %s = 0; %s < %s; %s++) {" l.index l.index
            (expr ~prec:31 l.bound) l.index;
          block buf (ind ^ "  ") l.body;
          line "}")
  | ParFor l -> (
      match par_loop_span l.prov with
      | Some (id, sp) when !instrument_mode ->
          (* The worker-time probe lives inside the parallel region but
             outside the work-shared loop, so each thread reports its own
             busy window.  Without OpenMP the pragmas vanish and the block
             runs once on the lone thread; mm_prof_worker is then a no-op
             because no region was installed.  The breadcrumb brackets
             the whole dispatch from the master thread; workers keep
             their own thread-local trails inside the region. *)
          if !guards_mode then line "mm_crumb_push(%d);" id;
          line "mm_prof_enter_par(%d);" id;
          line "#pragma omp parallel";
          line "{";
          line "  long long __mm_prof_w = mm_prof_now();";
          line "#pragma omp for";
          line "  for (int %s = 0; %s < %s; %s++) {" l.index l.index
            (expr ~prec:31 l.bound) l.index;
          in_frame sp (fun () -> block buf (ind ^ "    ") l.body);
          line "  }";
          line "  mm_prof_worker(%d, mm_prof_now() - __mm_prof_w);" id;
          line "}";
          line "mm_prof_exit_par(%d, (long long) (%s));" id (expr l.bound);
          if !guards_mode then line "mm_crumb_pop();"
      | Some (id, sp) ->
          (* guards without instrumentation: breadcrumb only *)
          line "mm_crumb_push(%d);" id;
          line "#pragma omp parallel for";
          line "for (int %s = 0; %s < %s; %s++) {" l.index l.index
            (expr ~prec:31 l.bound) l.index;
          in_frame sp (fun () -> block buf (ind ^ "  ") l.body);
          line "}";
          line "mm_crumb_pop();"
      | None ->
          line "#pragma omp parallel for";
          line "for (int %s = 0; %s < %s; %s++) {" l.index l.index
            (expr ~prec:31 l.bound) l.index;
          block buf (ind ^ "  ") l.body;
          line "}")
  | ExprS e -> line "%s;" (expr e)
  | Return None ->
      unwind_frames buf ind;
      line "return;"
  | Return (Some (TupleE es)) when (match !cur_ret with CTuple _ -> true | _ -> false) ->
      unwind_frames buf ind;
      line "return (%s){ %s };" (ctype_name !cur_ret)
        (String.concat ", " (List.map (expr ~prec:0) es))
  | Return (Some e) ->
      unwind_frames buf ind;
      line "return %s;" (expr e)
  | Break -> line "break;"
  | Continue -> line "continue;"
  | RcInc e -> line "mm_rc_inc(%s);" (expr e)
  | RcDec e -> line "mm_rc_dec(%s);" (expr e)
  | MWrite (p, m) -> line "mm_write_matrix(%s, %s);" (expr p) (expr m)
  | Comment c -> line "/* %s */" c
  | Block b ->
      line "{";
      block buf (ind ^ "  ") b;
      line "}"
  | Spawn (None, f, args) ->
      line "cilk_spawn %s(%s);" f
        (String.concat ", " (List.map (expr ~prec:0) args))
  | Spawn (Some lv, f, args) ->
      line "%s = cilk_spawn %s(%s);" (lvalue lv) f
        (String.concat ", " (List.map (expr ~prec:0) args))
  | Sync -> line "cilk_sync;"
  | Located (sp, b) -> (
      (* Not a C scope: print the inner statements at the current indent so
         declarations stay visible to later siblings. *)
      (match !line_file with
      | Some file ->
          Buffer.add_string buf
            (Printf.sprintf "#line %d %S\n" sp.Support.Pos.left.Support.Pos.line
               file)
      | None -> ());
      match located_span sp with
      | Some (id, s) ->
          (* Same guarded fast path as For loops: statements in a
             function called per element of a hot loop execute far too
             often for an unconditional call per probe. *)
          if !instrument_mode then
            line "if (mm_prof_live && !mm_prof_skip[%d]) mm_prof_enter(%d);" id
              id;
          if !guards_mode then line "mm_crumb_push(%d);" id;
          in_frame s (fun () -> block buf ind b);
          if !guards_mode then line "mm_crumb_pop();";
          if !instrument_mode then begin
            line "if (mm_prof_live) {";
            line "  if (!mm_prof_skip[%d]) mm_prof_exit(%d, 0, 0);" id id;
            line "  else mm_prof_sentries[%d]++;" id;
            line "}"
          end
      | None -> block buf ind b)
  | Site (_, b) ->
      (* Decision wrapper, not a scope: a finished pipeline leaves none of
         these behind, but the pretty-printer is also used on intermediate
         IR ([--dump-ir]), where the payload prints transparently. *)
      block buf ind b

and block buf ind stmts = List.iter (stmt buf ind) stmts

let signature (f : func) : string =
  let params =
    match f.f_params with
    | [] -> "void"
    | ps -> String.concat ", " (List.map (fun (t, n) -> ctype_decl t n) ps)
  in
  let ret =
    match f.f_ret with
    | CMat (_, _) as t -> ctype_name t ^ " *"
    | t -> ctype_name t ^ " "
  in
  Printf.sprintf "%s%s(%s)" ret f.f_name params

let func (f : func) : string =
  let buf = Buffer.create 256 in
  cur_ret := f.f_ret;
  Buffer.add_string buf (signature f ^ " {\n");
  block buf "  " f.f_body;
  Buffer.add_string buf "}\n";
  cur_ret := CVoid;
  Buffer.contents buf

(* --- whole-program sections -------------------------------------------- *)

(* Tuple types lower to C structs, which need typedefs up front — nested
   tuples first, so each struct's field types are already defined. *)
let rec add_tuple_types acc t =
  match t with
  | CTuple ts ->
      let acc = List.fold_left add_tuple_types acc ts in
      if List.mem t acc then acc else acc @ [ t ]
  | CInt | CFloat | CBool | CVoid | CMat _ | CVec -> acc

let rec stmt_tuple_types acc s =
  match s with
  | Decl (t, _, _) -> add_tuple_types acc t
  | If (_, a, b) ->
      List.fold_left stmt_tuple_types (List.fold_left stmt_tuple_types acc a) b
  | While (_, b) | Block b | Located (_, b) | Site (_, b) ->
      List.fold_left stmt_tuple_types acc b
  | For l | ParFor l -> List.fold_left stmt_tuple_types acc l.body
  | _ -> acc

let tuple_types (p : program) =
  List.fold_left
    (fun acc f ->
      let acc = add_tuple_types acc f.f_ret in
      let acc =
        List.fold_left (fun a (t, _) -> add_tuple_types a t) acc f.f_params
      in
      List.fold_left stmt_tuple_types acc f.f_body)
    [] p.funcs

let tuple_typedef = function
  | CTuple ts as t ->
      let fields =
        List.mapi (fun i ft -> ctype_decl ft (Printf.sprintf "f%d" i) ^ ";") ts
      in
      Printf.sprintf "typedef struct { %s } %s;" (String.concat " " fields)
        (ctype_name t)
  | _ -> invalid_arg "Emit.tuple_typedef"

(* Forward declarations: lowered call graphs are not topologically sorted
   (matrixMap helpers land after their caller), so every function gets a
   prototype.  "main" is skipped — C gives it an implicit one. *)
let prototypes (p : program) =
  List.filter_map
    (fun f -> if f.f_name = "main" then None else Some (signature f ^ ";"))
    p.funcs

let preamble =
  String.concat "\n"
    [
      "/* Generated by mmc — extensible CMINUS translator.";
      "   Matrix constructs have been translated to plain parallel C";
      "   over the mm_runtime flat-buffer matrix API. */";
      "#include <stdbool.h>";
      "#include \"mm_runtime.h\"";
      "";
    ]

(* --- exec harness ------------------------------------------------------ *)

(* C reserves "main" for the harness's generated entry point; a program
   whose entry is literally named main gets it renamed, call sites
   included. *)
let harness_entry_name = "mm_prog_main"

let rename_entry (p : program) : program =
  if p.main <> "main" then p
  else
    let fe = function
      | Call ("main", args) -> Call (harness_entry_name, args)
      | e -> e
    in
    let fs = function
      | Spawn (lv, "main", args) -> Spawn (lv, harness_entry_name, args)
      | s -> s
    in
    let funcs =
      List.map
        (fun f ->
          {
            f with
            f_name = (if f.f_name = "main" then harness_entry_name else f.f_name);
            f_body = map_stmts fe fs f.f_body;
          })
        p.funcs
    in
    { funcs; main = harness_entry_name }

(* The interpreter binds absent entry arguments to type defaults
   (Eval.default_of_type); the harness passes the same defaults. *)
let default_arg = function
  | CInt -> Int 0
  | CFloat -> Float 0.
  | CBool -> Bool false
  | CMat _ -> Var "NULL"
  | CVec -> VecSplat (Float 0.)
  | CVoid | CTuple _ -> Int 0

(* Statements printing value [e] of type [t] through the runtime's result
   protocol (parsed back by Native.Exec). *)
let rec result_stmts (t : ctype) (e : expr) : stmt list =
  match t with
  | CInt -> [ ExprS (Call ("mm_result_int", [ e ])) ]
  | CFloat -> [ ExprS (Call ("mm_result_float", [ e ])) ]
  | CBool -> [ ExprS (Call ("mm_result_bool", [ e ])) ]
  | CVoid -> [ ExprS (Call ("mm_result_void", [])) ]
  | CVec -> [ ExprS (Call ("mm_result_float", [ VecHsum e ])) ]
  | CMat _ ->
      [
        If
          ( e,
            [ ExprS (Call ("mm_result_mat", [ e ])) ],
            [ ExprS (Call ("mm_result_null", [])) ] );
      ]
  | CTuple ts ->
      ExprS (Call ("mm_result_tuple", [ Int (List.length ts) ]))
      :: List.concat (List.mapi (fun i ft -> result_stmts ft (Field (e, i))) ts)

let harness_main (p : program) : func =
  let entry =
    match List.find_opt (fun f -> f.f_name = p.main) p.funcs with
    | Some f -> f
    | None -> invalid_arg ("Emit: unknown entry function " ^ p.main)
  in
  let call =
    Call (entry.f_name, List.map (fun (t, _) -> default_arg t) entry.f_params)
  in
  (* Instrumented harness: start the profiler before the entry call, stop
     the clock the moment it returns (result printing is not program
     time), and dump the sidecar once the result protocol is complete.
     The dump lands in the working directory — the data dir Native.Exec
     runs the binary in — under the fixed sidecar name it reads back. *)
  (* Supervision plumbing runs before anything else: mm_fail_init arms
     MM_FAILPOINTS and installs the crash handlers in every harnessed
     binary (disarmed failpoints cost one load), and guard mode hands
     the runtime its span table. *)
  let supervise_init =
    ExprS (Call ("mm_fail_init", []))
    ::
    (if !guards_mode then
       [
         ExprS
           (Call
              ("mm_guard_init", [ Var "MM_GUARD_NSPANS"; Var "mm_guard_spans" ]));
       ]
     else [])
  in
  let prof_init =
    if !instrument_mode then
      [
        ExprS
          (Call ("mm_prof_init", [ Var "MM_PROF_NSPANS"; Var "mm_prof_spans" ]));
      ]
    else []
  and prof_stop =
    if !instrument_mode then [ ExprS (Call ("mm_prof_stop", [])) ] else []
  and prof_dump =
    if !instrument_mode then
      [ ExprS (Call ("mm_prof_dump", [ Str "mm_profile.json" ])) ]
    else []
  in
  let body =
    supervise_init @ prof_init
    @ (match entry.f_ret with
      | CVoid ->
          (ExprS call :: prof_stop) @ [ ExprS (Call ("mm_result_void", [])) ]
      | t ->
          (Decl (t, "__mm_r", Some call) :: prof_stop)
          @ result_stmts t (Var "__mm_r"))
    @ [ ExprS (Call ("mm_result_live", [])) ]
    @ prof_dump
    @ [ Return (Some (Int 0)) ]
  in
  { f_name = "main"; f_params = []; f_ret = CInt; f_body = body;
    f_span = None; f_origin = None }

(* The generated span table: ids index the array, whose entries are the
   interpreter profiler's span strings, so the two profiles join
   row-for-row on the rendered span.  Non-static: external linkage keeps
   -Wunused quiet for programs whose harness is compiled separately.
   Instrumentation and guards intern into one id space, so a build with
   both modes emits the same list twice under the two names each runtime
   half expects. *)
let span_table ~count_def ~array_name () =
  let names = List.rev !span_order in
  String.concat "\n"
    ([
       Printf.sprintf "#define %s %d" count_def (List.length names);
       Printf.sprintf "const char *const %s[] = {" array_name;
     ]
    @ (match names with
      | [] -> [ "  0" ]
      | _ -> List.map (fun s -> "  " ^ c_string_lit s ^ ",") names)
    @ [ "};"; ""; "" ])

(** [program ?line_directives_file ?instrument ?guards ?exec_harness p]
    — the full translation unit.  With [exec_harness] the entry function
    is renamed away from [main] if necessary and a generated [int main]
    calls it, prints its result (plus the live-allocation count) through
    the result protocol, and returns 0 — making the output a complete,
    runnable program.  With [instrument] provenance-carrying loops and
    statements are wrapped in mm_prof enter/exit calls over a generated
    span table, and the harness initialises, stops, and dumps the
    profiler.  With [guards] every emitted subscript routes through the
    runtime's MM_GUARD_IDX bounds check, mm_rc_dec checks for refcount
    underflow, and provenance sites push crash breadcrumbs — all
    attributed to the same span table so faults render at source. *)
let program ?line_directives_file ?(instrument = false) ?(guards = false)
    ?(exec_harness = false) (p : program) : string =
  line_file := line_directives_file;
  instrument_mode := instrument;
  guards_mode := guards;
  Hashtbl.reset span_ids;
  span_order := [];
  open_spans := [];
  Fun.protect
    ~finally:(fun () ->
      line_file := None;
      instrument_mode := false;
      guards_mode := false)
    (fun () ->
      let p = if exec_harness then rename_entry p else p in
      let p =
        if exec_harness then { p with funcs = p.funcs @ [ harness_main p ] }
        else p
      in
      let section = function
        | [] -> ""
        | lines -> String.concat "\n" lines ^ "\n\n"
      in
      (* The function bodies must be rendered first: emitting them is what
         populates the span table the header sections then print. *)
      let funcs_text = String.concat "\n" (List.map func p.funcs) in
      preamble
      ^ (if instrument then "#include \"mm_prof.h\"\n\n" else "")
      ^ section (List.map tuple_typedef (tuple_types p))
      ^ section (prototypes p)
      ^ (if instrument then
           span_table ~count_def:"MM_PROF_NSPANS" ~array_name:"mm_prof_spans"
             ()
         else "")
      ^ (if guards then
           span_table ~count_def:"MM_GUARD_NSPANS"
             ~array_name:"mm_guard_spans" ()
         else "")
      ^ funcs_text)

(** Emission of a single statement list (golden tests on loop shapes). *)
let stmts (ss : stmt list) : string =
  let buf = Buffer.create 256 in
  block buf "" ss;
  Buffer.contents buf
