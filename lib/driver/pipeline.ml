(** The staged CIR pass pipeline.

    A {!config} is an ordered list of (pass, enabled) stages.  The manager
    ({!run}) executes every stage over the single lowered program —
    enabled or not, because splicing a pass's {!Cir.Ir.Site} annotations
    away and reporting the skipped decision is part of the pass — and
    uniformly handles the cross-cutting concerns the passes themselves
    should not: per-pass timing ([pass.<name>.ns] gauges), gensym
    renumbering after passes that delete statements, and ["ir after
    <pass>"] snapshot capture into the run's {!Cir.Snapshot.sink}.

    The reference-count reporting pass ({!Cir.Pass.rc_report}) is always
    appended after the user-orderable stages: it tallies what the final
    program actually contains, so it cannot be reordered ahead of the
    passes that decide that. *)

module Tel = Support.Telemetry

type config = { stages : (Cir.Pass.t * bool) list }

(** [default passes] — the given passes in registration order, each at
    its own [default_on]. *)
let default (passes : Cir.Pass.t list) : config =
  { stages = List.map (fun p -> (p, p.Cir.Pass.default_on)) passes }

(** User-orderable pass names, in registration order. *)
let known (cfg : config) =
  List.map (fun (p, _) -> p.Cir.Pass.name) cfg.stages

(** [enable cfg name on] — flip one stage (identity on unknown names;
    validate with {!known} first). *)
let enable (cfg : config) name on =
  {
    stages =
      List.map
        (fun (p, e) -> if p.Cir.Pass.name = name then (p, on) else (p, e))
        cfg.stages;
  }

(** [set_all cfg on] — [-O1] ([on]) / [-O0] ([not on]): every stage
    enabled or disabled. *)
let set_all (cfg : config) on =
  { stages = List.map (fun (p, _) -> (p, on)) cfg.stages }

(** [of_spec cfg names] — the [--passes a,b,…] meaning: run {e only} the
    named passes, in the given order (every other registered pass runs
    disabled, after them, in registration order).  [Error unknown] when a
    name matches no registered pass. *)
let of_spec (cfg : config) (names : string list) : (config, string) result =
  let find n =
    List.find_opt (fun (p, _) -> p.Cir.Pass.name = n) cfg.stages
  in
  match List.find_opt (fun n -> find n = None) names with
  | Some bad -> Error bad
  | None ->
      let enabled =
        List.filter_map (fun n -> Option.map (fun (p, _) -> (p, true)) (find n)) names
      in
      let rest =
        List.filter_map
          (fun (p, _) ->
            if List.mem p.Cir.Pass.name names then None else Some (p, false))
          cfg.stages
      in
      Ok { stages = enabled @ rest }

(** Canonical rendering of a config — stage names in run order, disabled
    stages prefixed with [~].  Folded into the native binary-cache key so
    differently-configured pipelines never share a cached binary. *)
let canon (cfg : config) : string =
  String.concat ","
    (List.map
       (fun (p, e) -> (if e then "" else "~") ^ p.Cir.Pass.name)
       cfg.stages)

(** [run cfg ~rc ?warn ?sink (prog, syms)] — the pass manager.  [syms] is
    the gensym allocation trail from {!Cminus.Lower.lower_program};
    renumbering keeps it coherent across stages.  Raises
    {!Cir.Pass.Error} when a pass fails (e.g. a transform script whose
    indices name no loop). *)
let run (cfg : config) ~(rc : bool) ?(warn = fun _ -> ())
    ?(sink : Cir.Snapshot.sink option) ((prog, syms) : Cir.Ir.program * _) :
    Cir.Ir.program =
  let ctx =
    { Cir.Pass.rc; warn; sink; syms; auto_par_ran = false }
  in
  let snap pass prog =
    match sink with
    | Some s when Cir.Snapshot.wants s pass ->
        Cir.Snapshot.record s ~pass ~label:"program" (Cir.Emit.program prog)
    | _ -> ()
  in
  snap "lower" prog;
  List.fold_left
    (fun prog (p, enabled) ->
      let name = p.Cir.Pass.name in
      let t0 = Tel.now_ns () in
      let prog =
        Tel.with_span ~phase:"lower" ("pass." ^ name) (fun () ->
            let prog = p.Cir.Pass.run ctx ~enabled prog in
            if p.Cir.Pass.renumbers && enabled then Cir.Pass.renumber ctx prog
            else prog)
      in
      Tel.set_gauge ("pass." ^ name ^ ".ns")
        (float_of_int (Tel.now_ns () - t0));
      if p.Cir.Pass.managed_snapshot then snap name prog;
      prog)
    prog
    (cfg.stages @ [ (Cir.Pass.rc_report, true) ])
