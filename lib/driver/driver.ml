(** The extensible-translator driver (§II): a programmer picks a set of
    language extensions, the system runs the composability analyses,
    composes the grammar and attribute specifications with the host, and
    produces a working translator for the customised language — "the
    programmer is not required to have any knowledge of the language
    composition process."

    Pipeline: compose → scan/parse (context-aware) → build AST →
    extension AST optimizations → semantic analysis → lowering to plain
    parallel C → {emit C text | execute on the parallel runtime}. *)

module Cfg = Grammar.Cfg
module Tel = Support.Telemetry

type extension = {
  x_name : string;
  grammar : Cfg.t;
  register : unit -> unit;
  check_hooks : Cminus.Check.hooks;
  lower_hooks : Cminus.Lower.hooks;
  optimize : Cminus.Ast.program -> Cminus.Ast.program;
  ag_spec : Ag.Wellformed.spec;
  enables_rc : bool;
}

(* --- the extensions shipped with this repository ----------------------------- *)

let matrix : extension =
  {
    x_name = Ext_matrix.Matrix_ext.name;
    grammar = Ext_matrix.Matrix_ext.grammar;
    register = Ext_matrix.Matrix_ext.register;
    check_hooks = Ext_matrix.Matrix_ext.check_hooks;
    lower_hooks = Ext_matrix.Matrix_ext.lower_hooks;
    optimize = Ext_matrix.Matrix_ext.optimize;
    ag_spec = Ext_matrix.Matrix_ext.ag_spec;
    enables_rc = false;
  }

let transform : extension =
  {
    x_name = Ext_transform.Transform_ext.name;
    grammar = Ext_transform.Transform_ext.grammar;
    register = Ext_transform.Transform_ext.register;
    check_hooks = Ext_transform.Transform_ext.check_hooks;
    lower_hooks = Ext_transform.Transform_ext.lower_hooks;
    optimize = Fun.id;
    ag_spec = Ext_transform.Transform_ext.ag_spec;
    enables_rc = false;
  }

let refptr : extension =
  {
    x_name = Ext_refptr.Refptr_ext.name;
    grammar = Ext_refptr.Refptr_ext.grammar;
    register = Ext_refptr.Refptr_ext.register;
    check_hooks = Ext_refptr.Refptr_ext.check_hooks;
    lower_hooks = Ext_refptr.Refptr_ext.lower_hooks;
    optimize = Fun.id;
    ag_spec = Ext_refptr.Refptr_ext.ag_spec;
    enables_rc = Ext_refptr.Refptr_ext.enables_rc;
  }

let cilk : extension =
  {
    x_name = Ext_cilk.Cilk_ext.name;
    grammar = Ext_cilk.Cilk_ext.grammar;
    register = Ext_cilk.Cilk_ext.register;
    check_hooks = Ext_cilk.Cilk_ext.check_hooks;
    lower_hooks = Ext_cilk.Cilk_ext.lower_hooks;
    optimize = Fun.id;
    ag_spec = Ext_cilk.Cilk_ext.ag_spec;
    enables_rc = false;
  }

let all_extensions = [ matrix; transform; refptr; cilk ]

let extension_by_name n =
  List.find_opt (fun x -> String.equal x.x_name n) all_extensions

(* --- host AG spec (generated from the host grammar) ---------------------------- *)

let host_ag_spec : Ag.Wellformed.spec =
  let nts =
    Cfg.nonterminals Cminus.Syntax.fragment
    @ Cfg.nonterminals Ext_tuples.Tuples_ext.grammar
    |> List.sort_uniq String.compare
  in
  let prod_decl (p : Cfg.production) =
    Ag.Wellformed.full_prod ~owner:"host" ~lhs:p.Cfg.lhs
      ~children:
        (List.filter_map
           (function Cfg.N n -> Some n | Cfg.T _ -> None)
           p.Cfg.rhs)
      ~defines:[ "errors"; "type" ] p.Cfg.p_name
  in
  {
    sp_name = "host";
    attrs =
      [
        {
          a_name = "errors";
          a_mode = Ag.Wellformed.Syn;
          a_autocopy = false;
          a_occurs = nts;
          a_owner = "host";
          a_default = false;
        };
        {
          a_name = "type";
          a_mode = Ag.Wellformed.Syn;
          a_autocopy = false;
          a_occurs = nts;
          a_owner = "host";
          a_default = false;
        };
        {
          a_name = "env";
          a_mode = Ag.Wellformed.Inh;
          a_autocopy = true;
          a_occurs = nts;
          a_owner = "host";
          a_default = false;
        };
      ];
    prods =
      List.map prod_decl
        (Cminus.Syntax.fragment.Cfg.productions
        @ Ext_tuples.Tuples_ext.grammar.Cfg.productions);
  }

(* --- composition ------------------------------------------------------------------ *)

type composed = {
  selected : extension list;
  table : Grammar.Lalr.t;
  parser_ : Parser.Driver.t;
  determinism_reports : Grammar.Determinism.report list;
  ag_reports : Ag.Wellformed.report list;
  rc : bool;
}

exception Compose_failed of string

(** The effective host: CMINUS plus the tuples fragment, which failed
    [isComposable] and is therefore "packaged as part of the host
    language" (§VI-A). *)
let effective_host : Cfg.t =
  Cfg.compose Cminus.Syntax.fragment [ Ext_tuples.Tuples_ext.grammar ]

(** [compose ?force exts] — run both modular analyses for each selected
    extension, then build the composed scanner/parser.  With [force:false]
    (default) an extension failing an analysis aborts composition, which
    is the guarantee the paper's workflow gives the non-expert user. *)
let compose ?(force = false) (selected : extension list) : composed =
  Tel.with_span ~phase:"compose" "driver.compose" @@ fun () ->
  let det_reports =
    Tel.with_span ~phase:"compose" "compose.determinism" (fun () ->
        List.map
          (fun x -> Grammar.Determinism.check effective_host x.grammar)
          selected)
  in
  let ag_reports =
    Tel.with_span ~phase:"compose" "compose.wellformed" (fun () ->
        List.map
          (fun x -> Ag.Wellformed.check ~host:host_ag_spec x.ag_spec)
          selected)
  in
  if not force then begin
    List.iter
      (fun (r : Grammar.Determinism.report) ->
        if not r.Grammar.Determinism.passes then
          raise
            (Compose_failed
               (Fmt.str "%a" Grammar.Determinism.pp_report r)))
      det_reports;
    List.iter
      (fun (r : Ag.Wellformed.report) ->
        if not r.Ag.Wellformed.passes then
          raise (Compose_failed (Fmt.str "%a" Ag.Wellformed.pp_report r)))
      ag_reports
  end;
  let cfg = Cfg.compose effective_host (List.map (fun x -> x.grammar) selected) in
  let table =
    Tel.with_span ~phase:"compose" "compose.lalr" (fun () ->
        Grammar.Lalr.build cfg)
  in
  Tel.set_gauge "compose.extensions" (float_of_int (List.length selected));
  Tel.set_gauge "grammar.productions"
    (float_of_int (List.length cfg.Cfg.productions));
  Tel.set_gauge "lalr.states" (float_of_int table.Grammar.Lalr.n_states);
  Tel.set_gauge "lalr.conflicts"
    (float_of_int (List.length table.Grammar.Lalr.conflicts));
  if not (Grammar.Lalr.is_lalr1 table) then
    raise
      (Compose_failed
         (Fmt.str "composed grammar has conflicts:@.%a"
            (Fmt.list ~sep:Fmt.cut (Grammar.Lalr.pp_conflict table.Grammar.Lalr.g))
            table.Grammar.Lalr.conflicts));
  Ext_tuples.Tuples_ext.register ();
  List.iter (fun x -> x.register ()) selected;
  let parser_ =
    Tel.with_span ~phase:"compose" "compose.scanner" (fun () ->
        Parser.Driver.create table)
  in
  {
    selected;
    table;
    parser_;
    determinism_reports = det_reports;
    ag_reports;
    rc = List.exists (fun x -> x.enables_rc) selected;
  }

(* --- pipeline --------------------------------------------------------------------- *)

type 'a outcome = Ok_ of 'a | Failed of Support.Diag.t list

(** [frontend c src] — scan, parse, build and typecheck [src]; applies each
    extension's AST-level optimizations in between.  Returns the typed AST
    or diagnostics. *)
let frontend ?(optimize = true) (c : composed) (src : string) :
    Cminus.Ast.program outcome =
  match
    Tel.with_span ~phase:"parse" "frontend.parse" (fun () ->
        Parser.Driver.parse c.parser_ src)
  with
  | Error e -> Failed [ Parser.Driver.error_to_diag e ]
  | Ok tree -> (
      match
        Tel.with_span ~phase:"parse" "frontend.build" (fun () ->
            Cminus.Build.program tree)
      with
      | exception Cminus.Build.Build_error (m, span) ->
          Failed [ Support.Diag.error ~phase:"build" ~span "%s" m ]
      | ast ->
          let ast =
            if optimize then
              Tel.with_span ~phase:"check" "frontend.optimize" (fun () ->
                  List.fold_left (fun a x -> x.optimize a) ast c.selected)
            else ast
          in
          let diags =
            Tel.with_span ~phase:"check" "frontend.check" (fun () ->
                Cminus.Check.check_program
                  (List.map (fun x -> x.check_hooks) c.selected)
                  ast)
          in
          if Support.Diag.has_errors diags then Failed diags else Ok_ ast)

(** [lower c ast] — translate to the plain-C IR. *)
let lower ?(fuse = true) ?(copy_elim = true) ?(auto_par = false)
    (c : composed) (ast : Cminus.Ast.program) : Cir.Ir.program outcome =
  match
    Tel.with_span ~phase:"lower" "driver.lower" (fun () ->
        Cminus.Lower.lower_program ~fuse ~copy_elim ~auto_par
          (List.map (fun x -> x.lower_hooks) c.selected)
          ~rc:c.rc ast)
  with
  | prog -> Ok_ prog
  | exception Cminus.Lower.Lower_error (m, span) ->
      Failed [ Support.Diag.error ~phase:"lower" ~span "%s" m ]

(** [compile_to_c c src] — the paper's headline artifact: extended C in,
    plain parallel C out. *)
let compile_to_c ?fuse ?copy_elim ?auto_par (c : composed) (src : string) :
    string outcome =
  match frontend c src with
  | Failed d -> Failed d
  | Ok_ ast -> (
      match lower ?fuse ?copy_elim ?auto_par c ast with
      | Failed d -> Failed d
      | Ok_ prog ->
          Ok_
            (Tel.with_span ~phase:"emit" "driver.emit" (fun () ->
                 Cir.Emit.program prog)))

(** [run c src args] — compile and execute on the parallel runtime.
    [pool] supplies the enhanced fork-join worker pool; [dir] hosts the
    program's matrix files. *)
let run ?fuse ?copy_elim ?auto_par ?pool ?dir ?(optimize = true)
    (c : composed) (src : string) (args : Interp.Eval.value list) :
    Interp.Eval.value outcome =
  Option.iter
    (fun p ->
      Tel.set_gauge "pool.threads" (float_of_int (Runtime.Pool.threads p)))
    pool;
  match frontend ~optimize c src with
  | Failed d -> Failed d
  | Ok_ ast -> (
      match lower ?fuse ?copy_elim ?auto_par c ast with
      | Failed d -> Failed d
      | Ok_ prog -> (
          match
            Tel.with_span ~phase:"run" "driver.run" (fun () ->
                Interp.Eval.run ?pool ?dir prog args)
          with
          | v -> Ok_ v
          | exception Interp.Eval.Interp_error m ->
              Failed
                [
                  Support.Diag.error ~phase:"run" ~span:Support.Pos.dummy_span
                    "%s" m;
                ]))

let diags_to_string ds = Fmt.str "%a" Support.Diag.pp_list ds
