(** The extensible-translator driver (§II): a programmer picks a set of
    language extensions, the system runs the composability analyses,
    composes the grammar and attribute specifications with the host, and
    produces a working translator for the customised language — "the
    programmer is not required to have any knowledge of the language
    composition process."

    Pipeline: compose → scan/parse (context-aware) → build AST →
    extension AST optimizations → semantic analysis → lowering to plain
    parallel C → {emit C text | execute on the parallel runtime}. *)

module Cfg = Grammar.Cfg
module Tel = Support.Telemetry

(* Re-export: the pass-pipeline configuration is part of the driver's
   public API ([Driver.Pipeline.config] threads through every entry
   point below). *)
module Pipeline = Pipeline

type extension = {
  x_name : string;
  grammar : Cfg.t;
  register : unit -> unit;
  check_hooks : Cminus.Check.hooks;
  lower_hooks : Cminus.Lower.hooks;
  optimize : Cminus.Ast.program -> Cminus.Ast.program;
  passes : Cir.Pass.t list;
      (** CIR passes this extension registers, in its preferred pipeline
          order; composition concatenates them in extension order *)
  ag_spec : Ag.Wellformed.spec;
  enables_rc : bool;
}

(* --- the extensions shipped with this repository ----------------------------- *)

let matrix : extension =
  {
    x_name = Ext_matrix.Matrix_ext.name;
    grammar = Ext_matrix.Matrix_ext.grammar;
    register = Ext_matrix.Matrix_ext.register;
    check_hooks = Ext_matrix.Matrix_ext.check_hooks;
    lower_hooks = Ext_matrix.Matrix_ext.lower_hooks;
    optimize = Ext_matrix.Matrix_ext.optimize;
    passes = Ext_matrix.Matrix_ext.passes;
    ag_spec = Ext_matrix.Matrix_ext.ag_spec;
    enables_rc = false;
  }

let transform : extension =
  {
    x_name = Ext_transform.Transform_ext.name;
    grammar = Ext_transform.Transform_ext.grammar;
    register = Ext_transform.Transform_ext.register;
    check_hooks = Ext_transform.Transform_ext.check_hooks;
    lower_hooks = Ext_transform.Transform_ext.lower_hooks;
    optimize = Fun.id;
    passes = [ Ext_transform.Transform_ext.pass ];
    ag_spec = Ext_transform.Transform_ext.ag_spec;
    enables_rc = false;
  }

let refptr : extension =
  {
    x_name = Ext_refptr.Refptr_ext.name;
    grammar = Ext_refptr.Refptr_ext.grammar;
    register = Ext_refptr.Refptr_ext.register;
    check_hooks = Ext_refptr.Refptr_ext.check_hooks;
    lower_hooks = Ext_refptr.Refptr_ext.lower_hooks;
    optimize = Fun.id;
    passes = [];
    ag_spec = Ext_refptr.Refptr_ext.ag_spec;
    enables_rc = Ext_refptr.Refptr_ext.enables_rc;
  }

let cilk : extension =
  {
    x_name = Ext_cilk.Cilk_ext.name;
    grammar = Ext_cilk.Cilk_ext.grammar;
    register = Ext_cilk.Cilk_ext.register;
    check_hooks = Ext_cilk.Cilk_ext.check_hooks;
    lower_hooks = Ext_cilk.Cilk_ext.lower_hooks;
    optimize = Fun.id;
    passes = [];
    ag_spec = Ext_cilk.Cilk_ext.ag_spec;
    enables_rc = false;
  }

let all_extensions = [ matrix; transform; refptr; cilk ]

let extension_by_name n =
  List.find_opt (fun x -> String.equal x.x_name n) all_extensions

(* --- host AG spec (generated from the host grammar) ---------------------------- *)

let host_ag_spec : Ag.Wellformed.spec =
  let nts =
    Cfg.nonterminals Cminus.Syntax.fragment
    @ Cfg.nonterminals Ext_tuples.Tuples_ext.grammar
    |> List.sort_uniq String.compare
  in
  let prod_decl (p : Cfg.production) =
    Ag.Wellformed.full_prod ~owner:"host" ~lhs:p.Cfg.lhs
      ~children:
        (List.filter_map
           (function Cfg.N n -> Some n | Cfg.T _ -> None)
           p.Cfg.rhs)
      ~defines:[ "errors"; "type" ] p.Cfg.p_name
  in
  {
    sp_name = "host";
    attrs =
      [
        {
          a_name = "errors";
          a_mode = Ag.Wellformed.Syn;
          a_autocopy = false;
          a_occurs = nts;
          a_owner = "host";
          a_default = false;
        };
        {
          a_name = "type";
          a_mode = Ag.Wellformed.Syn;
          a_autocopy = false;
          a_occurs = nts;
          a_owner = "host";
          a_default = false;
        };
        {
          a_name = "env";
          a_mode = Ag.Wellformed.Inh;
          a_autocopy = true;
          a_occurs = nts;
          a_owner = "host";
          a_default = false;
        };
      ];
    prods =
      List.map prod_decl
        (Cminus.Syntax.fragment.Cfg.productions
        @ Ext_tuples.Tuples_ext.grammar.Cfg.productions);
  }

(* --- composition ------------------------------------------------------------------ *)

type composed = {
  selected : extension list;
  table : Grammar.Lalr.t;
  parser_ : Parser.Driver.t;
  determinism_reports : Grammar.Determinism.report list;
  ag_reports : Ag.Wellformed.report list;
  rc : bool;
}

exception Compose_failed of string

(** The effective host: CMINUS plus the tuples fragment, which failed
    [isComposable] and is therefore "packaged as part of the host
    language" (§VI-A). *)
let effective_host : Cfg.t =
  Cfg.compose Cminus.Syntax.fragment [ Ext_tuples.Tuples_ext.grammar ]

(** [compose ?force exts] — run both modular analyses for each selected
    extension, then build the composed scanner/parser.  With [force:false]
    (default) an extension failing an analysis aborts composition, which
    is the guarantee the paper's workflow gives the non-expert user. *)
let compose ?(force = false) (selected : extension list) : composed =
  Tel.with_span ~phase:"compose" "driver.compose" @@ fun () ->
  let det_reports =
    Tel.with_span ~phase:"compose" "compose.determinism" (fun () ->
        List.map
          (fun x -> Grammar.Determinism.check effective_host x.grammar)
          selected)
  in
  let ag_reports =
    Tel.with_span ~phase:"compose" "compose.wellformed" (fun () ->
        List.map
          (fun x -> Ag.Wellformed.check ~host:host_ag_spec x.ag_spec)
          selected)
  in
  if not force then begin
    List.iter
      (fun (r : Grammar.Determinism.report) ->
        if not r.Grammar.Determinism.passes then
          raise
            (Compose_failed
               (Fmt.str "%a" Grammar.Determinism.pp_report r)))
      det_reports;
    List.iter
      (fun (r : Ag.Wellformed.report) ->
        if not r.Ag.Wellformed.passes then
          raise (Compose_failed (Fmt.str "%a" Ag.Wellformed.pp_report r)))
      ag_reports
  end;
  let cfg = Cfg.compose effective_host (List.map (fun x -> x.grammar) selected) in
  let table =
    Tel.with_span ~phase:"compose" "compose.lalr" (fun () ->
        Grammar.Lalr.build cfg)
  in
  Tel.set_gauge "compose.extensions" (float_of_int (List.length selected));
  Tel.set_gauge "grammar.productions"
    (float_of_int (List.length cfg.Cfg.productions));
  Tel.set_gauge "lalr.states" (float_of_int table.Grammar.Lalr.n_states);
  Tel.set_gauge "lalr.conflicts"
    (float_of_int (List.length table.Grammar.Lalr.conflicts));
  if not (Grammar.Lalr.is_lalr1 table) then
    raise
      (Compose_failed
         (Fmt.str "composed grammar has conflicts:@.%a"
            (Fmt.list ~sep:Fmt.cut (Grammar.Lalr.pp_conflict table.Grammar.Lalr.g))
            table.Grammar.Lalr.conflicts));
  Ext_tuples.Tuples_ext.register ();
  List.iter (fun x -> x.register ()) selected;
  let parser_ =
    Tel.with_span ~phase:"compose" "compose.scanner" (fun () ->
        Parser.Driver.create table)
  in
  {
    selected;
    table;
    parser_;
    determinism_reports = det_reports;
    ag_reports;
    rc = List.exists (fun x -> x.enables_rc) selected;
  }

(* --- pipeline --------------------------------------------------------------------- *)

type 'a outcome = Ok_ of 'a | Failed of Support.Diag.t list

(** [frontend c src] — scan, parse, build and typecheck [src]; applies each
    extension's AST-level optimizations in between.  Returns the typed AST
    or diagnostics. *)
let frontend ?(optimize = true) (c : composed) (src : string) :
    Cminus.Ast.program outcome =
  match
    Tel.with_span ~phase:"parse" "frontend.parse" (fun () ->
        Parser.Driver.parse c.parser_ src)
  with
  | Error e -> Failed [ Parser.Driver.error_to_diag e ]
  | Ok tree -> (
      match
        Tel.with_span ~phase:"parse" "frontend.build" (fun () ->
            Cminus.Build.program tree)
      with
      | exception Cminus.Build.Build_error (m, span) ->
          Failed [ Support.Diag.error ~phase:"build" ~span "%s" m ]
      | ast ->
          let ast =
            if optimize then
              Tel.with_span ~phase:"check" "frontend.optimize" (fun () ->
                  List.fold_left (fun a x -> x.optimize a) ast c.selected)
            else ast
          in
          let diags =
            Tel.with_span ~phase:"check" "frontend.check" (fun () ->
                Cminus.Check.check_program
                  (List.map (fun x -> x.check_hooks) c.selected)
                  ast)
          in
          if Support.Diag.has_errors diags then Failed diags else Ok_ ast)

(** The CIR passes the selected extensions registered, in pipeline
    order. *)
let registered_passes (c : composed) : Cir.Pass.t list =
  List.concat_map (fun x -> x.passes) c.selected

(** The default pipeline for this composition: every registered pass at
    its own default. *)
let default_config (c : composed) : Pipeline.config =
  Pipeline.default (registered_passes c)

let config_or_default config c =
  match config with Some cfg -> cfg | None -> default_config c

(** [config_of_flags ?fuse ?copy_elim ?auto_par c] — the historical flag
    triple as a pipeline config (default order, named stages toggled).
    Convenience for callers that predate [--passes]. *)
let config_of_flags ?(fuse = true) ?(copy_elim = true) ?(auto_par = false)
    (c : composed) : Pipeline.config =
  let open Pipeline in
  enable
    (enable (enable (default_config c) "fuse" fuse) "copy-elim" copy_elim)
    "auto-par" auto_par

(** [lower c ast] — translate to the plain-C IR: one baseline lowering,
    then the pass pipeline [config] (default: every registered pass at
    its own default).  [warn] receives non-fatal diagnostics (e.g.
    transform scripts skipped under auto-parallelization); [sink]
    collects [--dump-ir] snapshots. *)
let lower ?config ?warn ?sink (c : composed) (ast : Cminus.Ast.program) :
    Cir.Ir.program outcome =
  let cfg = config_or_default config c in
  match
    Tel.with_span ~phase:"lower" "driver.lower" (fun () ->
        let lowered =
          Cminus.Lower.lower_program ?warn
            (List.map (fun x -> x.lower_hooks) c.selected)
            ~rc:c.rc ast
        in
        Pipeline.run cfg ~rc:c.rc ?warn ?sink lowered)
  with
  | prog ->
      (* Per-pass remark counts become [remark.<pass>.<kind>] gauges, so
         [--stats] tables and the bench trajectory see optimizer coverage.
         No-op unless both remark collection and telemetry are enabled. *)
      Support.Remark.export_gauges ();
      Ok_ prog
  | exception Cminus.Lower.Lower_error (m, span) ->
      Failed [ Support.Diag.error ~phase:"lower" ~span "%s" m ]
  | exception Cir.Pass.Error (m, span) ->
      Failed [ Support.Diag.error ~phase:"lower" ~span "%s" m ]

(** [compile_to_c c src] — the paper's headline artifact: extended C in,
    plain parallel C out.  [line_file] turns on [#line] directives naming
    that file, so C-level debuggers and profilers point back at the
    original source. *)
let compile_to_c ?config ?warn ?sink ?line_file ?instrument ?guards
    ?exec_harness (c : composed) (src : string) : string outcome =
  match frontend c src with
  | Failed d -> Failed d
  | Ok_ ast -> (
      match lower ?config ?warn ?sink c ast with
      | Failed d -> Failed d
      | Ok_ prog ->
          Ok_
            (Tel.with_span ~phase:"emit" "driver.emit" (fun () ->
                 Cir.Emit.program ?line_directives_file:line_file ?instrument
                   ?guards ?exec_harness prog)))

(* --- runtime failure -> structured diagnostic --------------------------------- *)

(* Every failure class the runtime can surface, mapped to a diagnostic.
   Exceptions the interpreter enriched with provenance ([Runtime_error],
   a span-carrying [Resource_limit]) keep their span and render with a
   caret excerpt; the rest anchor at the dummy span.  Returns [None] for
   exceptions that are not program failures (driver bugs, Stack_overflow,
   Out_of_memory …) — those keep propagating. *)
let runtime_failure_diag exn =
  let d ?(span = Support.Pos.dummy_span) m =
    Some (Support.Diag.error ~phase:"run" ~span "%s" m)
  in
  match exn with
  | Interp.Eval.Interp_error m -> d m
  | Interp.Eval.Runtime_error (m, span) -> d ~span m
  | Runtime.Limits.Resource_limit v ->
      let span =
        Option.value ~default:Support.Pos.dummy_span v.Runtime.Limits.v_span
      in
      d ~span (Runtime.Limits.describe v)
  | Support.Failpoint.Injected n ->
      d (Printf.sprintf "injected fault at failpoint %s" n)
  | Runtime.Ndarray.Io_error m
  | Runtime.Ndarray.Type_error m
  | Runtime.Scalar.Type_error m
  | Runtime.Shape.Shape_error m ->
      d m
  | Runtime.Rc.Use_after_free id ->
      d (Printf.sprintf "use of matrix cell #%d after its count reached 0" id)
  | Runtime.Rc.Double_free id ->
      d (Printf.sprintf "reference count of matrix cell #%d went negative" id)
  | _ -> None

(** [run c src args] — compile and execute on the parallel runtime.
    [pool] supplies the enhanced fork-join worker pool; [dir] hosts the
    program's matrix files. *)
let run ?config ?warn ?pool ?dir ?(optimize = true) (c : composed)
    (src : string) (args : Interp.Eval.value list) :
    Interp.Eval.value outcome =
  Option.iter
    (fun p ->
      Tel.set_gauge "pool.threads" (float_of_int (Runtime.Pool.threads p)))
    pool;
  match frontend ~optimize c src with
  | Failed d -> Failed d
  | Ok_ ast -> (
      match lower ?config ?warn c ast with
      | Failed d -> Failed d
      | Ok_ prog -> (
          match
            Tel.with_span ~phase:"run" "driver.run" (fun () ->
                Interp.Eval.run ?pool ?dir prog args)
          with
          | v ->
              (* Memory gauges: what the program's RC discipline left
                 behind and how high the live set got. *)
              Tel.set_gauge "rc.live_bytes"
                (float_of_int (Runtime.Rc.live_bytes ()));
              Tel.set_gauge "rc.peak_bytes"
                (float_of_int (Runtime.Rc.peak_bytes ()));
              Tel.set_gauge "rc.allocated_bytes"
                (float_of_int (Runtime.Rc.allocated_bytes ()));
              Support.Failpoint.export_gauges ();
              Ok_ v
          | exception e -> (
              let bt = Printexc.get_raw_backtrace () in
              Tel.set_gauge "rc.live_bytes"
                (float_of_int (Runtime.Rc.live_bytes ()));
              Support.Failpoint.export_gauges ();
              match runtime_failure_diag e with
              | Some diag -> Failed [ diag ]
              | None -> Printexc.raise_with_backtrace e bt)))

(* --- native execution (mmc exec) --------------------------------------- *)

(* Map every native failure class to a diagnostic.  Compile-time classes
   (no compiler / sanitizer unsupported / emitted C rejected) report under
   "native-compile"; everything after a successful compile is
   "native-run".  Crash triage recovers source spans where the runtime
   left them — a [__mm_fault] line's span, or the crash-sidecar
   breadcrumb a fatal-signal handler flushed — so a native SIGSEGV or a
   tripped guard renders a caret excerpt exactly like an interpreter
   failure; classes with no provenance anchor at the dummy span. *)
let native_failure_diag (e : Native.Exec.error) =
  let phase =
    match e with
    | Native.Exec.Toolchain_error _ -> "native-compile"
    | Native.Exec.Run_failed _ | Native.Exec.Run_signaled _
    | Native.Exec.Run_timeout _ | Native.Exec.Guard_fault _
    | Native.Exec.Bad_output _ ->
        "native-run"
  in
  let span =
    match e with
    | Native.Exec.Guard_fault f -> f.Native.Exec.f_span
    | Native.Exec.Run_signaled { fault; crash_span; _ } -> (
        match fault with
        | Some f when f.Native.Exec.f_span <> None -> f.Native.Exec.f_span
        | _ -> crash_span)
    | _ -> None
  in
  let span = Option.value span ~default:Support.Pos.dummy_span in
  Support.Diag.error ~phase ~span "%s" (Native.Exec.describe_error e)

(** [exec c src] — the native twin of {!run}: emit self-contained C (exec
    harness included), compile it with the system toolchain through the
    binary cache, run the binary supervised in [dir], and parse its
    printed result.  The returned outcome's [value] matches what {!run}
    would have produced, bit-for-bit.

    Recovery policy (both legs export telemetry):
    - a failed compile is retried once after forcing the cache slot to be
      rebuilt ([native.retries] counts the retry) — a transient toolchain
      flake or a corrupt cached object must not fail the program;
    - a signal death in a parallel run ([threads] > 1) triggers one
      sequential-degrade rerun: [OMP_NUM_THREADS=1] with failpoints
      disarmed, gauged as [native.degraded].  Deterministic failures
      (guard faults, mm_fatal exits, timeouts) never degrade — rerunning
      cannot change them. *)
let exec ?config ?warn ?dir ?cc ?(cflags = []) ?keep_c
    ?line_file ?instrument ?guards ?sanitize ?failpoints ?timeout_s
    ?max_bytes ?(cache = true) ?cache_dir ?(threads = 1) (c : composed)
    (src : string) : Native.Exec.outcome outcome =
  let cfg = config_or_default config c in
  match
    compile_to_c ~config:cfg ?warn ?line_file ?instrument
      ?guards ~exec_harness:true c src
  with
  | Failed d -> Failed d
  | Ok_ c_text -> (
      let dir =
        match dir with
        | Some d -> d
        | None ->
            let d = Filename.temp_file "mmcfs" "" in
            Sys.remove d;
            Sys.mkdir d 0o755;
            d
      in
      let attempt ?failpoints ~cache ~threads () =
        Tel.with_span ~phase:"run" "driver.exec" (fun () ->
            Native.Exec.run ?cc ~cflags ~cache ?cache_dir ?keep_c ?instrument
              ?sanitize ?failpoints ?timeout_s ?max_bytes ~threads ~dir
              ~pipeline:(Pipeline.canon cfg) c_text)
      in
      let first = attempt ?failpoints ~cache ~threads () in
      let recovered =
        match first with
        | Error (Native.Exec.Toolchain_error (Native.Toolchain.Compile_failed _))
          ->
            (* cache:false skips the lookup but still (re)writes the slot,
               so a stale object cannot poison the retry *)
            Tel.set_gauge "native.retries" 1.;
            attempt ?failpoints ~cache:false ~threads ()
        | Error (Native.Exec.Run_signaled _) when threads > 1 ->
            (* [Some ""] explicitly disarms an inherited MM_FAILPOINTS
               spec: the degraded run must observe the program, not the
               fault injection that just killed it *)
            Tel.set_gauge "native.degraded" 1.;
            attempt ~failpoints:"" ~cache:true ~threads:1 ()
        | r -> r
      in
      match recovered with
      | Ok outcome -> Ok_ outcome
      | Error e ->
          (* the first error wins the report when recovery also failed
             with a strictly less informative class *)
          let e =
            match (first, e) with
            | Error (Native.Exec.Run_signaled _ as orig), Native.Exec.Run_failed _
              ->
                orig
            | _ -> e
          in
          Failed [ native_failure_diag e ])

(** [diags_to_string ?src ds] — rendered diagnostics; with [src] each one
    gains a clang-style source excerpt with a caret underline. *)
let diags_to_string ?src ds =
  match src with
  | None -> Fmt.str "%a" Support.Diag.pp_list ds
  | Some src -> Fmt.str "%a" (Support.Diag.pp_list_with_source src) ds

(* --- source-attributed profiling (mmc profile) ------------------------- *)

module Profile_report = struct
  module P = Support.Profile

  type t = {
    wall_ns : int;
    rows : P.row list;
    folded : (string * int) list;  (** "outer;inner" stack -> self ns *)
    attributed_ns : int;
    unattributed_alloc : int;
    live_bytes : int;
    peak_bytes : int;
    allocated_bytes : int;
  }

  (** Snapshot the profiler's aggregates after a run measured at
      [wall_ns]. *)
  let collect ~wall_ns () =
    {
      wall_ns;
      rows = P.results ();
      folded = P.folded ();
      attributed_ns = P.attributed_ns ();
      unattributed_alloc = P.unattributed_alloc_bytes ();
      live_bytes = Runtime.Rc.live_bytes ();
      peak_bytes = Runtime.Rc.peak_bytes ();
      allocated_bytes = Runtime.Rc.allocated_bytes ();
    }

  (** A native profile (the mm_profile.json sidecar an instrumented
      binary dumped, parsed by {!Native.Prof}) in the same report shape,
      so every renderer below works on both.  Rows sort by self time like
      [P.results ()]. *)
  let of_native (n : Native.Prof.t) =
    {
      wall_ns = n.Native.Prof.wall_ns;
      rows =
        List.sort
          (fun (a : P.row) (b : P.row) ->
            compare b.P.r_self_ns a.P.r_self_ns)
          n.Native.Prof.rows;
      folded =
        List.sort
          (fun (a, _) (b, _) -> String.compare a b)
          n.Native.Prof.folded;
      attributed_ns = n.Native.Prof.attributed_ns;
      unattributed_alloc = n.Native.Prof.unattributed_alloc;
      live_bytes = n.Native.Prof.live_bytes;
      peak_bytes = n.Native.Prof.peak_bytes;
      allocated_bytes = n.Native.Prof.allocated_bytes;
    }

  let coverage t =
    if t.wall_ns <= 0 then 1.0
    else float_of_int t.attributed_ns /. float_of_int t.wall_ns

  (* First source line of the span, trimmed and clipped — the "what the
     user wrote" column of the hot-loop table. *)
  let excerpt ~src (sp : Support.Pos.span) =
    match Support.Diag.source_line src sp.Support.Pos.left.Support.Pos.line with
    | None -> ""
    | Some line ->
        let line = String.trim line in
        if String.length line > 42 then String.sub line 0 39 ^ "..."
        else line

  let pct t ns =
    if t.wall_ns <= 0 then 0.
    else 100. *. float_of_int ns /. float_of_int t.wall_ns

  let human_bytes b =
    if b >= 1 lsl 20 then Printf.sprintf "%.1fM" (float_of_int b /. 1048576.)
    else if b >= 1024 then Printf.sprintf "%.1fK" (float_of_int b /. 1024.)
    else string_of_int b

  let ms ns = float_of_int ns /. 1e6

  (** Hot-loop table sorted by self time, plus memory summary lines. *)
  let pp ?(top = 15) ~src ppf t =
    Fmt.pf ppf "--- profile: hot source spans (%.3f ms wall) ---@." (ms t.wall_ns);
    Fmt.pf ppf "  %-12s %6s %10s %10s %8s %8s %9s  %s@." "span" "self%"
      "self ms" "total ms" "iters" "disp" "alloc" "source";
    let rows = List.filteri (fun i _ -> i < top) t.rows in
    List.iter
      (fun (r : P.row) ->
        Fmt.pf ppf "  %-12s %6.1f %10.3f %10.3f %8d %8d %9s  %s@."
          (Support.Pos.span_to_string r.P.r_span)
          (pct t r.P.r_self_ns) (ms r.P.r_self_ns) (ms r.P.r_total_ns)
          r.P.r_iters r.P.r_dispatches
          (human_bytes r.P.r_alloc_bytes)
          (excerpt ~src r.P.r_span))
      rows;
    (let dropped = List.length t.rows - List.length rows in
     if dropped > 0 then Fmt.pf ppf "  ... %d more spans@." dropped);
    Fmt.pf ppf "  attributed: %.1f%% of wall time@." (100. *. coverage t);
    let par = List.fold_left (fun a (r : P.row) -> a + r.P.r_par_ns) 0 t.rows in
    let seq = List.fold_left (fun a (r : P.row) -> a + r.P.r_seq_ns) 0 t.rows in
    Fmt.pf ppf "  par/seq self time: %.3f / %.3f ms@." (ms par) (ms seq);
    Fmt.pf ppf
      "  memory: %s allocated, %s peak live, %s still live, %s unattributed@."
      (human_bytes t.allocated_bytes)
      (human_bytes t.peak_bytes) (human_bytes t.live_bytes)
      (human_bytes t.unattributed_alloc)

  let to_string ?top ~src t = Fmt.str "%a" (pp ?top ~src) t

  (** Machine-readable snapshot; schema checked by [bench
      --check-profile-json]. *)
  let to_json ~src t =
    let j = Tel.json_string in
    let row (r : P.row) =
      Tel.json_obj
        [
          ("span", j (Support.Pos.span_to_string r.P.r_span));
          ("line", string_of_int r.P.r_span.Support.Pos.left.Support.Pos.line);
          ("source", j (excerpt ~src r.P.r_span));
          ("total_ns", string_of_int r.P.r_total_ns);
          ("self_ns", string_of_int r.P.r_self_ns);
          ("pct", Printf.sprintf "%.3f" (pct t r.P.r_self_ns));
          ("iters", string_of_int r.P.r_iters);
          ("dispatches", string_of_int r.P.r_dispatches);
          ("par_ns", string_of_int r.P.r_par_ns);
          ("seq_ns", string_of_int r.P.r_seq_ns);
          ("alloc_bytes", string_of_int r.P.r_alloc_bytes);
          ( "workers",
            Tel.json_obj
              (List.map
                 (fun (w, ns) -> (string_of_int w, string_of_int ns))
                 (List.sort compare r.P.r_worker_ns)) );
        ]
    in
    Tel.json_obj
      [
        ("wall_ns", string_of_int t.wall_ns);
        ("attributed_ns", string_of_int t.attributed_ns);
        ("coverage", Printf.sprintf "%.4f" (coverage t));
        ("rows", "[" ^ String.concat "," (List.map row t.rows) ^ "]");
        ( "memory",
          Tel.json_obj
            [
              ("allocated_bytes", string_of_int t.allocated_bytes);
              ("peak_bytes", string_of_int t.peak_bytes);
              ("live_bytes", string_of_int t.live_bytes);
              ("unattributed_alloc_bytes", string_of_int t.unattributed_alloc);
            ] );
      ]

  (** Folded-stack lines ("outer;inner self_ns") for flamegraph tools. *)
  let folded_lines t =
    List.map (fun (path, ns) -> Printf.sprintf "%s %d" path ns) t.folded

  (** Schema check for {!to_json} output (shared by [bench
      --check-profile-json] and the native-profile tests: interp and
      native reports must satisfy the same contract).  Returns the list
      of problems, empty when the document conforms. *)
  let validate_json (j : Support.Json.t) : string list =
    let module J = Support.Json in
    let problems = ref [] in
    let bad fmt = Format.kasprintf (fun m -> problems := m :: !problems) fmt in
    let need_num obj ctx name =
      if J.num_field obj name = None then bad "%s: missing number %S" ctx name
    in
    List.iter (need_num j "top-level") [ "wall_ns"; "attributed_ns"; "coverage" ];
    (match J.num_field j "coverage" with
    | Some c when c < 0.0 || c > 1.5 -> bad "coverage %.3f out of range" c
    | _ -> ());
    (match Option.bind (J.field "rows" j) J.arr with
    | None -> bad "top-level: missing array \"rows\""
    | Some rows ->
        List.iteri
          (fun i row ->
            let ctx = Printf.sprintf "rows[%d]" i in
            if Option.bind (J.field "span" row) J.str = None then
              bad "%s: missing string \"span\"" ctx;
            if Option.bind (J.field "source" row) J.str = None then
              bad "%s: missing string \"source\"" ctx;
            List.iter (need_num row ctx)
              [
                "line"; "total_ns"; "self_ns"; "pct"; "iters"; "dispatches";
                "par_ns"; "seq_ns"; "alloc_bytes";
              ];
            match J.field "workers" row with
            | Some (J.Obj _) -> ()
            | _ -> bad "%s: missing object \"workers\"" ctx)
          rows);
    (match J.field "memory" j with
    | Some mem ->
        List.iter (need_num mem "memory")
          [
            "allocated_bytes"; "peak_bytes"; "live_bytes";
            "unattributed_alloc_bytes";
          ]
    | None -> bad "top-level: missing object \"memory\"");
    List.rev !problems

  (* --- interp-vs-native differential ----------------------------------- *)

  type diff_row = {
    d_span : string;
    d_line : int;
    d_source : string;
    d_interp_self_ns : int option;  (** [None]: span absent on that side *)
    d_native_self_ns : int option;
    d_speedup : float option;  (** interp self / native self, both present *)
    d_lagging : bool;
        (** a significant span whose native speedup trails the
            program-level interp/native ratio by more than half *)
  }

  type diff = {
    interp_wall_ns : int;
    native_wall_ns : int;
    program_ratio : float;  (** interp wall / native wall *)
    diff_rows : diff_row list;
  }

  (** Join an interpreted and a native report span-by-span (on the
      rendered span string — both sides derive it from the same
      provenance).  A span is flagged lagging when it holds at least 1%
      of interp wall time yet its native speedup is under half the
      program-level ratio: the loops where native code gains least. *)
  let diff_reports ~src ~(interp : t) ~(native : t) : diff =
    let program_ratio =
      if native.wall_ns <= 0 then 0.
      else float_of_int interp.wall_ns /. float_of_int native.wall_ns
    in
    let key (r : P.row) = Support.Pos.span_to_string r.P.r_span in
    let native_tbl = Hashtbl.create 16 in
    List.iter (fun r -> Hashtbl.replace native_tbl (key r) r) native.rows;
    let seen = Hashtbl.create 16 in
    let row_of (r : P.row) =
      let k = key r in
      Hashtbl.replace seen k ();
      let n = Hashtbl.find_opt native_tbl k in
      let interp_self = r.P.r_self_ns in
      let native_self = Option.map (fun (n : P.row) -> n.P.r_self_ns) n in
      let speedup =
        match native_self with
        | Some ns when ns > 0 -> Some (float_of_int interp_self /. float_of_int ns)
        | _ -> None
      in
      let significant =
        interp.wall_ns > 0
        && float_of_int interp_self >= 0.01 *. float_of_int interp.wall_ns
      in
      {
        d_span = k;
        d_line = r.P.r_span.Support.Pos.left.Support.Pos.line;
        d_source = excerpt ~src r.P.r_span;
        d_interp_self_ns = Some interp_self;
        d_native_self_ns = native_self;
        d_speedup = speedup;
        d_lagging =
          (significant
          &&
          match speedup with
          | Some s -> s < 0.5 *. program_ratio
          | None -> false);
      }
    in
    let joined = List.map row_of interp.rows in
    (* Native-only spans (e.g. loops the interpreter ran inside a pool
       region) still show, so nothing silently disappears. *)
    let native_only =
      List.filter_map
        (fun (r : P.row) ->
          let k = key r in
          if Hashtbl.mem seen k then None
          else
            Some
              {
                d_span = k;
                d_line = r.P.r_span.Support.Pos.left.Support.Pos.line;
                d_source = excerpt ~src r.P.r_span;
                d_interp_self_ns = None;
                d_native_self_ns = Some r.P.r_self_ns;
                d_speedup = None;
                d_lagging = false;
              })
        native.rows
    in
    {
      interp_wall_ns = interp.wall_ns;
      native_wall_ns = native.wall_ns;
      program_ratio;
      diff_rows = joined @ native_only;
    }

  let pp_diff ppf (d : diff) =
    Fmt.pf ppf
      "--- interp vs native: %.3f ms -> %.3f ms (%.1fx program speedup) ---@."
      (ms d.interp_wall_ns) (ms d.native_wall_ns) d.program_ratio;
    Fmt.pf ppf "  %-12s %12s %12s %9s  %s@." "span" "interp ms" "native ms"
      "speedup" "source";
    List.iter
      (fun r ->
        let side = function
          | Some ns -> Printf.sprintf "%12.3f" (ms ns)
          | None -> Printf.sprintf "%12s" "-"
        in
        Fmt.pf ppf "  %-12s %s %s %9s  %s%s@." r.d_span
          (side r.d_interp_self_ns) (side r.d_native_self_ns)
          (match r.d_speedup with
          | Some s -> Printf.sprintf "%.1fx" s
          | None -> "-")
          r.d_source
          (if r.d_lagging then "  << lagging" else ""))
      d.diff_rows;
    if List.exists (fun r -> r.d_lagging) d.diff_rows then
      Fmt.pf ppf
        "  << lagging: native speedup under half the program ratio for a \
         span holding >= 1%% of interp time@."

  let diff_to_string d = Fmt.str "%a" pp_diff d

  let diff_to_json (d : diff) =
    let j = Tel.json_string in
    let opt_ns = function Some ns -> string_of_int ns | None -> "null" in
    let row r =
      Tel.json_obj
        [
          ("span", j r.d_span);
          ("line", string_of_int r.d_line);
          ("source", j r.d_source);
          ("interp_self_ns", opt_ns r.d_interp_self_ns);
          ("native_self_ns", opt_ns r.d_native_self_ns);
          ( "speedup",
            match r.d_speedup with
            | Some s -> Printf.sprintf "%.3f" s
            | None -> "null" );
          ("lagging", if r.d_lagging then "true" else "false");
        ]
    in
    Tel.json_obj
      [
        ("interp_wall_ns", string_of_int d.interp_wall_ns);
        ("native_wall_ns", string_of_int d.native_wall_ns);
        ("program_ratio", Printf.sprintf "%.3f" d.program_ratio);
        ("rows", "[" ^ String.concat "," (List.map row d.diff_rows) ^ "]");
      ]
end

(* --- compiler decision tracing (mmc explain) --------------------------- *)

module Explain_report = struct
  (** What [mmc explain] renders: every optimization remark the pipeline
      emitted while compiling the file, plus the rendered [--dump-ir]
      snapshots when any were requested. *)
  type t = {
    remarks : Support.Remark.t list;
    dump : string;  (** rendered IR snapshots; [""] when none requested *)
  }

  let collect ?sink () =
    {
      remarks = Support.Remark.results ();
      dump =
        (match sink with
        | Some s when s.Cir.Snapshot.passes <> [] -> Cir.Snapshot.to_string s
        | _ -> "");
    }

  (** Keep only remarks matching the [--only pass=…]/[--only kind=…]
      filters. *)
  let filter ?pass ?kind t =
    { t with remarks = Support.Remark.filter ?pass ?kind t.remarks }

  (** Remark table grouped by pass; with [src], each remark renders a
      caret excerpt.  IR snapshots (if any) follow the table. *)
  let pp ?src ppf t =
    Support.Remark.pp ?src ppf t.remarks;
    if t.dump <> "" then Fmt.pf ppf "@.%s" t.dump

  let to_string ?src t = Fmt.str "%a" (pp ?src) t

  (** Machine-readable report; schema checked by
      [bench --check-explain-json]. *)
  let to_json t = Support.Remark.to_json t.remarks
end

(** The default pipeline for the tracing/measuring entry points
    ({!explain}, {!profile}, {!profile_native}): auto-parallelization on —
    those commands answer "what would the optimizer do", so the default
    shows the full pipeline at work. *)
let explain_config (c : composed) : Pipeline.config =
  Pipeline.enable (default_config c) "auto-par" true

(** [explain ?… c src] — compile [src] with remark collection on and
    return (lowering outcome, report).  [dump_passes]/[ir_diff] drive the
    pass-by-pass IR snapshots: the program is lowered exactly once and the
    pass manager records each requested ["ir after <pass>"] snapshot as
    the pipeline reaches that stage (the transform pass records its own
    per-clause snapshots into the same sink). *)
let explain ?config ?(dump_passes = []) ?(ir_diff = false) ?warn
    (c : composed) (src : string) :
    Cir.Ir.program outcome * Explain_report.t =
  let cfg = match config with Some cfg -> cfg | None -> explain_config c in
  Support.Remark.reset ();
  Support.Remark.set_enabled true;
  let sink = Cir.Snapshot.create ~passes:dump_passes ~diff:ir_diff () in
  match frontend c src with
  | Failed d -> (Failed d, Explain_report.collect ~sink ())
  | Ok_ ast ->
      let out = lower ~config:cfg ?warn ~sink c ast in
      (out, Explain_report.collect ~sink ())

(** [profile ?… c src args] — run [src] with the source-attributed
    profiler enabled and return (program result outcome, report).  The
    profiler and RC registry are reset first so the report covers exactly
    this run, and the wall clock starts after lowering so the report's
    coverage measures execution, not compilation. *)
let profile ?config ?warn ?pool ?dir
    (c : composed) (src : string) (args : Interp.Eval.value list) :
    Interp.Eval.value outcome * Profile_report.t =
  Option.iter
    (fun p ->
      Tel.set_gauge "pool.threads" (float_of_int (Runtime.Pool.threads p)))
    pool;
  let cfg = match config with Some cfg -> cfg | None -> explain_config c in
  let prep =
    match frontend c src with
    | Failed d -> Failed d
    | Ok_ ast -> lower ~config:cfg ?warn c ast
  in
  match prep with
  | Failed d -> (Failed d, Profile_report.collect ~wall_ns:0 ())
  | Ok_ prog -> (
      Support.Profile.reset ();
      Support.Profile.set_enabled true;
      Runtime.Rc.reset ();
      let prev_hook = !Runtime.Ndarray.alloc_hook in
      Runtime.Ndarray.alloc_hook := Some Support.Profile.on_alloc;
      let t0 = Tel.now_ns () in
      let finish () =
        let wall_ns = Tel.now_ns () - t0 in
        Support.Profile.set_enabled false;
        Runtime.Ndarray.alloc_hook := prev_hook;
        Tel.set_gauge "rc.live_bytes" (float_of_int (Runtime.Rc.live_bytes ()));
        Tel.set_gauge "rc.peak_bytes" (float_of_int (Runtime.Rc.peak_bytes ()));
        Profile_report.collect ~wall_ns ()
      in
      match
        Tel.with_span ~phase:"run" "driver.profile_run" (fun () ->
            Interp.Eval.run ?pool ?dir prog args)
      with
      | v ->
          Support.Failpoint.export_gauges ();
          (Ok_ v, finish ())
      | exception e -> (
          let bt = Printexc.get_raw_backtrace () in
          Support.Failpoint.export_gauges ();
          let report = finish () in
          match runtime_failure_diag e with
          | Some diag -> (Failed [ diag ], report)
          | None -> Printexc.raise_with_backtrace e bt))

(** [profile_native ?… c src] — the native twin of {!profile}: emit
    instrumented C (exec harness plus mm_prof enter/exit calls over the
    generated span table), compile and run it through the binary cache
    (instrumented binaries key separately), and parse the binary's
    mm_profile.json sidecar back into the same report shape [mmc
    profile] renders for interpreted runs. *)
let profile_native ?config ?warn ?dir ?cc ?cflags
    ?keep_c ?cache ?cache_dir ?(threads = 1) ?line_file (c : composed)
    (src : string) : (Native.Exec.outcome * Profile_report.t) outcome =
  let cfg = match config with Some cfg -> cfg | None -> explain_config c in
  match
    exec ~config:cfg ?warn ?dir ?cc ?cflags ?keep_c ?line_file
      ~instrument:true ?cache ?cache_dir ~threads c src
  with
  | Failed d -> Failed d
  | Ok_ outcome -> (
      match outcome.Native.Exec.profile_json with
      | None ->
          Failed
            [
              Support.Diag.error ~phase:"native-run"
                ~span:Support.Pos.dummy_span
                "native profile sidecar missing (instrumented binary wrote \
                 no mm_profile.json)";
            ]
      | Some text -> (
          match Native.Prof.parse text with
          | Error m ->
              Failed
                [
                  Support.Diag.error ~phase:"native-run"
                    ~span:Support.Pos.dummy_span
                    "cannot parse native profile: %s" m;
                ]
          | Ok prof -> Ok_ (outcome, Profile_report.of_native prof)))
