(** Supervised execution of compiled mm programs.

    Replaces the bare [Sys.command] run leg with fork/exec under a
    parent-side supervisor:

    - the child (spawned by a C stub — OCaml 5 forbids [Unix.fork] once
      the worker pool's domains exist) chdirs into the data directory,
      redirects stdout/stderr to files, applies [setrlimit] caps derived
      from [--max-bytes] (address space) and [--timeout] (CPU seconds,
      belt-and-braces under the wall-clock deadline), and execs;
    - the parent polls [waitpid WNOHANG] against a wall-clock deadline,
      escalating SIGTERM → (0.5 s grace) → SIGKILL when the deadline
      passes;
    - the decoded status distinguishes exit codes from signal deaths,
      with the POSIX signal number and name (OCaml's [Sys.sig*] values
      are internal negatives), so callers can render "killed by SIGSEGV"
      instead of a misleading exit code. *)

type status =
  | Exited of int
  | Signaled of { signal : int; name : string }
      (** POSIX signal number and conventional name *)
  | Timed_out of { after_s : float }
      (** the wall-clock deadline passed and the child was killed *)

external spawn :
  exe:string ->
  dir:string ->
  stdout_file:string ->
  stderr_file:string ->
  envp:string array ->
  max_bytes:int64 ->
  cpu_secs:int ->
  int = "mmc_spawn_bytecode" "mmc_spawn_native"

(* OCaml signal numbers are runtime-internal (negative); map the ones a
   supervised run can die by to their POSIX identity. *)
let signal_info s =
  if s = Sys.sigsegv then (11, "SIGSEGV")
  else if s = Sys.sigabrt then (6, "SIGABRT")
  else if s = Sys.sigfpe then (8, "SIGFPE")
  else if s = Sys.sigkill then (9, "SIGKILL")
  else if s = Sys.sigterm then (15, "SIGTERM")
  else if s = Sys.sigill then (4, "SIGILL")
  else if s = Sys.sigbus then (7, "SIGBUS")
  else if s = Sys.sigxcpu then (24, "SIGXCPU")
  else if s = Sys.sigint then (2, "SIGINT")
  else if s = Sys.sigpipe then (13, "SIGPIPE")
  else (abs s, Printf.sprintf "signal %d" (abs s))

(* Address-space headroom over the payload cap: the C runtime, libc and
   OpenMP need real memory of their own, and the cap exists to stop
   runaways, not to meter allocations byte-exactly (the interpreter's
   ledger does that). *)
let as_headroom = 64 * 1024 * 1024

(** [run ?env ?timeout_s ?max_bytes ~dir ~stdout_file ~stderr_file exe]
    executes [exe] with cwd [dir] and the calling environment extended
    (entry-wise overridden) by [env].  Blocks until the child is dead
    and reaped. *)
let run ?(env = []) ?timeout_s ?max_bytes ~dir ~stdout_file ~stderr_file exe =
  flush stdout;
  flush stderr;
  let overridden k = List.exists (fun (k', _) -> String.equal k k') env in
  let keep e =
    match String.index_opt e '=' with
    | Some i -> not (overridden (String.sub e 0 i))
    | None -> true
  in
  let envp =
    Array.append
      (Array.of_list
         (List.filter keep (Array.to_list (Unix.environment ()))))
      (Array.of_list (List.map (fun (k, v) -> k ^ "=" ^ v) env))
  in
  let pid =
    spawn ~exe ~dir ~stdout_file ~stderr_file ~envp
      ~max_bytes:
        (match max_bytes with
        | Some b -> Int64.of_int (b + as_headroom)
        | None -> -1L)
      ~cpu_secs:
        (match timeout_s with
        | Some t -> int_of_float (Float.ceil t) + 2
        | None -> -1)
  in
      let deadline =
        Option.map (fun t -> Unix.gettimeofday () +. t) timeout_s
      in
      let timed_out () = Timed_out { after_s = Option.get timeout_s } in
      let kill signal =
        try Unix.kill pid signal with Unix.Unix_error _ -> ()
      in
      (* [hard_at = Some t]: SIGTERM is sent and t is the SIGKILL time *)
      let rec reap hard_at =
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ -> (
            let now = Unix.gettimeofday () in
            match (deadline, hard_at) with
            | Some d, None when now >= d ->
                kill Sys.sigterm;
                reap (Some (now +. 0.5))
            | _, Some hard when now >= hard ->
                kill Sys.sigkill;
                let _ = Unix.waitpid [] pid in
                timed_out ()
            | _ ->
                Unix.sleepf 0.002;
                reap hard_at)
        | _, Unix.WEXITED c ->
            if hard_at <> None then timed_out () else Exited c
        | _, Unix.WSIGNALED s ->
            if hard_at <> None then timed_out ()
            else
              let signal, name = signal_info s in
              Signaled { signal; name }
        | _, Unix.WSTOPPED _ ->
            (* not requested (no WUNTRACED); treat a stopped child as
               hung so the deadline machinery still applies *)
            Unix.sleepf 0.002;
            reap hard_at
      in
      reap None
