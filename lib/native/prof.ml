(** Parse the mm_profile.json sidecar an instrumented native binary
    dumps (runtime/c/mm_prof.c) back into the interpreter profiler's row
    shape, so [mmc profile --native] renders through exactly the same
    report code as interpreted profiles. *)

module J = Support.Json
module P = Support.Profile

type t = {
  wall_ns : int;
  rows : P.row list;
  folded : (string * int) list;  (** "span;span;..." stack -> self ns *)
  attributed_ns : int;
  unattributed_alloc : int;
  live_bytes : int;
  peak_bytes : int;
  allocated_bytes : int;
}

exception Bad of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

(* Span strings in the sidecar are produced by [Pos.span_to_string]:
   "L:C1-C2" on one line, "L1:C1-L2:C2" across lines.  Offsets are not
   serialised; 0 is fine because reports key rows by the rendered span
   string, never by byte offset. *)
let parse_span (s : string) : Support.Pos.span =
  let pos line col = { Support.Pos.line; col; offset = 0 } in
  let int_of t =
    match int_of_string_opt t with
    | Some i -> i
    | None -> fail "bad span %S" s
  in
  match String.split_on_char '-' s with
  | [ l; r ] -> (
      let left =
        match String.split_on_char ':' l with
        | [ line; col ] -> pos (int_of line) (int_of col)
        | _ -> fail "bad span %S" s
      in
      match String.split_on_char ':' r with
      | [ col ] -> Support.Pos.span left (pos left.Support.Pos.line (int_of col))
      | [ line; col ] -> Support.Pos.span left (pos (int_of line) (int_of col))
      | _ -> fail "bad span %S" s)
  | _ -> fail "bad span %S" s

let int_field j name =
  match J.num_field j name with
  | Some f -> int_of_float f
  | None -> fail "missing numeric field %S" name

let parse_row j : P.row =
  let span =
    match Option.bind (J.field "span" j) J.str with
    | Some s -> parse_span s
    | None -> fail "span row without a span string"
  in
  let workers =
    match J.field "workers" j with
    | Some (J.Obj fields) ->
        List.map
          (fun (w, v) ->
            let ns =
              match J.num v with
              | Some f -> int_of_float f
              | None -> fail "bad worker ns for thread %S" w
            in
            match int_of_string_opt w with
            | Some id -> (id, ns)
            | None -> fail "bad worker id %S" w)
          fields
        |> List.sort compare
    | _ -> []
  in
  {
    P.r_span = span;
    r_total_ns = int_field j "total_ns";
    r_self_ns = int_field j "self_ns";
    r_iters = int_field j "iters";
    r_dispatches = int_field j "dispatches";
    r_par_ns = int_field j "par_ns";
    r_seq_ns = int_field j "seq_ns";
    r_alloc_bytes = int_field j "alloc_bytes";
    r_worker_ns = workers;
  }

let parse_fold j =
  match Option.bind (J.field "stack" j) J.str with
  | Some stack -> (stack, int_field j "self_ns")
  | None -> fail "folded entry without a stack"

(** [parse text] — the sidecar decoded, or [Error] with a one-line reason
    (a truncated dump from a crashed binary must not crash the driver). *)
let parse (text : string) : (t, string) result =
  match
    let j = J.parse text in
    let rows =
      match Option.bind (J.field "spans" j) J.arr with
      | Some spans -> List.map parse_row spans
      | None -> fail "missing spans array"
    in
    let folded =
      match Option.bind (J.field "folded" j) J.arr with
      | Some folds -> List.map parse_fold folds
      | None -> []
    in
    let mem =
      match J.field "memory" j with
      | Some m -> m
      | None -> fail "missing memory object"
    in
    {
      wall_ns = int_field j "wall_ns";
      rows;
      folded;
      attributed_ns = int_field j "attributed_ns";
      unattributed_alloc = int_field mem "unattributed_alloc_bytes";
      live_bytes = int_field mem "live_bytes";
      peak_bytes = int_field mem "peak_bytes";
      allocated_bytes = int_field mem "allocated_bytes";
    }
  with
  | t -> Ok t
  | exception Bad m -> Error m
  | exception J.Bad_json m -> Error m
