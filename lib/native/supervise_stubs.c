/* Spawn stub for Native.Supervise.

   OCaml 5 forbids Unix.fork once other domains exist (the worker pool
   creates them), so the fork+exec leg lives here in C: forking a
   multi-threaded process is safe as long as the child only makes
   async-signal-safe calls before execve — chdir, open, dup2, setrlimit
   and _exit all qualify.  Everything the child needs (paths, envp,
   limits) is copied out of the OCaml heap before the fork; the child
   never touches the runtime.

   The parent-side supervision (waitpid polling, SIGTERM -> SIGKILL
   escalation) stays in OCaml — those calls are domain-safe. */

#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <caml/unixsupport.h>

#include <fcntl.h>
#include <stdlib.h>
#include <string.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

static char *dup_string(value v)
{
  size_t n = caml_string_length(v);
  char *s = malloc(n + 1);
  if (s) { memcpy(s, String_val(v), n); s[n] = '\0'; }
  return s;
}

/* mmc_spawn(exe, dir, stdout_file, stderr_file, envp, max_bytes, cpu_secs)
   -> child pid.  [max_bytes] < 0: no address-space cap; [cpu_secs] < 0:
   no CPU cap.  The child execs [exe] with argv = {exe, NULL} and the
   given environment, cwd [dir], streams redirected to the two files;
   any pre-exec failure exits 127 like a shell would. */
CAMLprim value mmc_spawn_native(value v_exe, value v_dir, value v_out,
                                value v_err, value v_envp, value v_max_bytes,
                                value v_cpu)
{
  CAMLparam5(v_exe, v_dir, v_out, v_err, v_envp);
  char *exe = dup_string(v_exe);
  char *dir = dup_string(v_dir);
  char *out = dup_string(v_out);
  char *err = dup_string(v_err);
  int nenv = Wosize_val(v_envp);
  char **envp = malloc(((size_t)nenv + 1) * sizeof(char *));
  long long max_bytes = Int64_val(v_max_bytes);
  long cpu_secs = Long_val(v_cpu);
  int i, ok = exe && dir && out && err && envp;
  pid_t pid;

  if (envp) {
    for (i = 0; i < nenv; i++) {
      envp[i] = dup_string(Field(v_envp, i));
      if (!envp[i]) ok = 0;
    }
    envp[nenv] = NULL;
  }
  if (!ok) {
    caml_raise_out_of_memory();
  }

  pid = fork();
  if (pid == 0) {
    /* child: async-signal-safe calls only, then exec */
    int fd;
    if (chdir(dir) != 0) _exit(127);
    fd = open(out, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0 || dup2(fd, 1) < 0) _exit(127);
    close(fd);
    fd = open(err, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0 || dup2(fd, 2) < 0) _exit(127);
    close(fd);
    if (max_bytes >= 0) {
      struct rlimit rl;
      rl.rlim_cur = (rlim_t)max_bytes;
      rl.rlim_max = (rlim_t)max_bytes;
      setrlimit(RLIMIT_AS, &rl);
    }
    if (cpu_secs >= 0) {
      struct rlimit rl;
      rl.rlim_cur = (rlim_t)cpu_secs;
      rl.rlim_max = (rlim_t)cpu_secs + 1;
      setrlimit(RLIMIT_CPU, &rl);
    }
    {
      char *argv[2];
      argv[0] = exe;
      argv[1] = NULL;
      execve(exe, argv, envp);
    }
    _exit(127);
  }

  for (i = 0; i < nenv; i++) free(envp[i]);
  free(envp);
  free(exe); free(dir); free(out); free(err);
  if (pid < 0) caml_uerror("fork", Nothing);
  CAMLreturn(Val_long(pid));
}

CAMLprim value mmc_spawn_bytecode(value *argv, int argn)
{
  (void)argn;
  return mmc_spawn_native(argv[0], argv[1], argv[2], argv[3], argv[4],
                          argv[5], argv[6]);
}
