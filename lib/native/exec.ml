(** Native execution of emitted C: compile (through the binary cache),
    run supervised in the program's data directory, and parse the
    printed result protocol back into the value the interpreter would
    have returned.

    The generated [main] (see {!Cir.Emit} harness mode) prints
    ["__mm_result ..."] lines using the runtime's result protocol plus a
    final ["__mm_live N"] line, so a native run round-trips into exactly
    the shape [mmc run] prints — the differential suite compares the two
    bit-for-bit.

    Abnormal exits are triaged rather than reported as bare codes:

    - ["__mm_fault <span_id> <span|-> <message>"] on stdout is the
      runtime's structured last gasp — printed by a tripped [--guards]
      check before [_exit(71)] and by an armed [MM_FAILPOINTS] failpoint
      before [abort()];
    - a fatal signal makes the runtime's handler write the innermost
      breadcrumb span to an [mm_crash.txt] sidecar, read back here so
      even a SIGSEGV renders a caret at the faulting source span;
    - the supervisor ({!Supervise}) distinguishes exit codes, signal
      deaths and deadline kills. *)

module S = Runtime.Scalar
module Nd = Runtime.Ndarray

type value =
  | RVoid
  | RNull
  | RScal of S.t
  | RMat of Nd.t
  | RTuple of value array

(* Renders identically to [Interp.Eval.pp_value] so `mmc exec` output is
   textually interchangeable with `mmc run`. *)
let rec pp_value ppf = function
  | RVoid -> Fmt.string ppf "void"
  | RNull -> Fmt.string ppf "NULL"
  | RScal s -> S.pp ppf s
  | RMat m -> Nd.pp ppf m
  | RTuple vs ->
      Fmt.pf ppf "(%a)" (Fmt.array ~sep:(Fmt.any ", ") pp_value) vs

type fault = { f_span : Support.Pos.span option; f_message : string }
(** A structured [__mm_fault] line parsed back from the binary's stdout. *)

type error =
  | Toolchain_error of Toolchain.error
  | Run_failed of { exit_code : int; stderr_text : string }
  | Run_signaled of {
      signal : int;  (** POSIX signal number *)
      signal_name : string;
      stderr_text : string;
      fault : fault option;  (** last-gasp [__mm_fault], if printed *)
      crash_span : Support.Pos.span option;
          (** innermost breadcrumb from the mm_crash.txt sidecar *)
    }
  | Run_timeout of { timeout_s : float; stderr_text : string }
  | Guard_fault of fault  (** a [--guards] check tripped (exit 71) *)
  | Bad_output of { message : string; offset : int option }
      (** result protocol unparsable; [offset] is the byte position of
          the offending stdout line *)

let last_stderr_line s =
  List.fold_left
    (fun acc l -> if String.trim l = "" then acc else Some (String.trim l))
    None
    (String.split_on_char '\n' s)

let describe_error = function
  | Toolchain_error e -> Toolchain.describe_error e
  | Run_failed { exit_code; stderr_text } -> (
      if exit_code >= 128 then
        (* shell-style status: 128+N means death by signal N *)
        let signal = exit_code - 128 in
        match last_stderr_line stderr_text with
        | Some l ->
            Printf.sprintf "native binary killed by signal %d: %s" signal l
        | None -> Printf.sprintf "native binary killed by signal %d" signal
      else
        match String.trim stderr_text with
        | "" -> Printf.sprintf "native binary exited with code %d" exit_code
        | detail -> detail)
  | Run_signaled { signal; signal_name; stderr_text; fault; crash_span = _ }
    -> (
      match fault with
      | Some f ->
          Printf.sprintf "%s (native binary killed by %s)" f.f_message
            signal_name
      | None -> (
          let hint =
            if signal = 9 then
              " — possibly the --max-bytes address-space cap or the system \
               OOM killer"
            else ""
          in
          match last_stderr_line stderr_text with
          | Some l ->
              Printf.sprintf "native binary killed by %s (signal %d)%s: %s"
                signal_name signal hint l
          | None ->
              Printf.sprintf "native binary killed by %s (signal %d)%s"
                signal_name signal hint))
  | Run_timeout { timeout_s; stderr_text } -> (
      let base =
        Printf.sprintf
          "native binary exceeded the --timeout deadline (%gs) and was killed"
          timeout_s
      in
      match last_stderr_line stderr_text with
      | Some l -> base ^ ": " ^ l
      | None -> base)
  | Guard_fault f -> f.f_message
  | Bad_output { message; offset } -> (
      match offset with
      | Some o ->
          Printf.sprintf "cannot parse native output: %s (at byte offset %d)"
            message o
      | None -> Printf.sprintf "cannot parse native output: %s" message)

type outcome = {
  value : value;  (** the entry function's result *)
  live : int;  (** allocations still live at exit (leak parity check) *)
  exe : string;  (** the cached binary that ran *)
  from_cache : bool;  (** true iff compilation was skipped *)
  profile_json : string option;
      (** raw text of the mm_profile.json sidecar an instrumented binary
          dumped into the data directory; [None] for plain runs *)
}

(* --- __mm_fault / span parsing ------------------------------------------ *)

let split_ws s =
  String.split_on_char ' ' s |> List.filter (fun t -> t <> "")

(* Inverse of [Support.Pos.span_to_string]: "L:C-C2" (same line) or
   "L1:C1-L2:C2".  Byte offsets are not transported, but [Pos.equal] (and
   so the caret renderer's empty-span test) compares offsets only, so a
   non-degenerate span gets synthetic ordered offsets; line/col carry the
   real location. *)
let parse_span_string s =
  let pos_of t =
    match String.split_on_char ':' t with
    | [ l; c ] -> (
        match (int_of_string_opt l, int_of_string_opt c) with
        | Some line, Some col when line >= 1 && col >= 1 ->
            Some { Support.Pos.line; col; offset = 0 }
        | _ -> None)
    | _ -> None
  in
  let span left right =
    let degenerate =
      left.Support.Pos.line = right.Support.Pos.line
      && left.Support.Pos.col = right.Support.Pos.col
    in
    Some
      {
        Support.Pos.left;
        right = (if degenerate then right else { right with offset = 1 });
      }
  in
  match String.split_on_char '-' s with
  | [ a; b ] -> (
      match pos_of a with
      | None -> None
      | Some left -> (
          match pos_of b with
          | Some right -> span left right
          | None -> (
              match int_of_string_opt b with
              | Some col when col >= 1 -> span left { left with col }
              | _ -> None)))
  | _ -> None

let is_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(** First [__mm_fault] line in [text], parsed.  The runtime prints at
    most one (it dies immediately after), but a fault interleaved with
    result lines still resolves. *)
let scan_fault text =
  String.split_on_char '\n' text
  |> List.find_map (fun l ->
         if not (is_prefix ~prefix:"__mm_fault " l) then None
         else
           match split_ws l with
           | "__mm_fault" :: _id :: span :: rest ->
               let f_span =
                 if span = "-" then None else parse_span_string span
               in
               Some { f_span; f_message = String.concat " " rest }
           | _ -> None)

(* --- result-protocol parsing ------------------------------------------- *)

exception Parse of string

let parse_fail fmt = Printf.ksprintf (fun m -> raise (Parse m)) fmt

let parse_float_bits tok =
  match Int64.of_string_opt tok with
  | Some bits -> Int64.float_of_bits bits
  | None -> parse_fail "bad float bits %S" tok

type cursor = {
  mutable rest : (string * int) list;  (** remaining (line, byte offset) *)
  mutable off : int;  (** offset of the line last consumed *)
}

let next_line cur =
  match cur.rest with
  | [] -> parse_fail "output ended mid-result"
  | (l, o) :: rest ->
      cur.off <- o;
      cur.rest <- rest;
      l

(* A hard ceiling on tuple arities: keeps a corrupted count from turning
   into a giant allocation before the parse error surfaces. *)
let max_tuple_fields = 4096

let rec parse_result cur : value =
  let l = next_line cur in
  match split_ws l with
  | [ "__mm_result"; "int"; v ] -> (
      match int_of_string_opt v with
      | Some i -> RScal (S.I i)
      | None -> parse_fail "bad int %S" v)
  | [ "__mm_result"; "float"; v ] -> RScal (S.F (parse_float_bits v))
  | [ "__mm_result"; "bool"; v ] -> RScal (S.B (v <> "0"))
  | [ "__mm_result"; "void" ] -> RVoid
  | [ "__mm_result"; "null" ] -> RNull
  | [ "__mm_result"; "tuple"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 0 && n <= max_tuple_fields ->
          RTuple (Array.init n (fun _ -> parse_result cur))
      | _ -> parse_fail "bad tuple arity %S" n)
  | "__mm_result" :: "mat" :: kind :: rank :: dims -> (
      let rank =
        match int_of_string_opt rank with
        | Some r when r >= 0 -> r
        | _ -> parse_fail "bad matrix rank %S" rank
      in
      if List.length dims <> rank then
        parse_fail "matrix rank %d but %d extents" rank (List.length dims);
      let shape =
        Array.of_list
          (List.map
             (fun d ->
               match int_of_string_opt d with
               | Some e when e >= 0 -> e
               | _ -> parse_fail "bad extent %S" d)
             dims)
      in
      let data = next_line cur in
      match split_ws data with
      | "__mm_data" :: elems -> (
          let n = Array.fold_left ( * ) 1 shape in
          if List.length elems <> n then
            parse_fail "matrix with %d elements but %d data tokens" n
              (List.length elems);
          let elems = Array.of_list elems in
          match kind with
          | "f" ->
              RMat
                (Nd.of_float_array shape (Array.map parse_float_bits elems))
          | "i" ->
              RMat
                (Nd.of_int_array shape
                   (Array.map
                      (fun t ->
                        match int_of_string_opt t with
                        | Some i -> i
                        | None -> parse_fail "bad int element %S" t)
                      elems))
          | "b" -> RMat (Nd.of_bool_array shape (Array.map (( <> ) "0") elems))
          | k -> parse_fail "unknown matrix kind %S" k)
      | _ -> parse_fail "expected __mm_data line, got %S" data)
  | [ "__mm_result" ] | "__mm_result" :: _ ->
      parse_fail "truncated result line %S" l
  | _ -> parse_fail "unexpected result line %S" l

(* Split [text] into lines tagged with the byte offset each starts at,
   so protocol errors can name the position of the offending line. *)
let lines_with_offsets text =
  let n = String.length text in
  let rec go start acc =
    if start >= n then List.rev acc
    else
      match String.index_from_opt text start '\n' with
      | Some i -> go (i + 1) ((String.sub text start (i - start), start) :: acc)
      | None -> List.rev ((String.sub text start (n - start), start) :: acc)
  in
  go 0 []

(** Parse the binary's stdout into (value, live count).  Total: every
    malformation — truncated lines, interleaved garbage, corrupt counts —
    comes back as [Bad_output] with the byte offset of the bad line,
    never as an OCaml exception. *)
let parse_output text : (value * int, error) result =
  (* The program itself prints nothing on stdout; tolerate stray lines
     by keeping only protocol-marked ones.  __mm_fault lines are the
     fault channel, scanned separately. *)
  let protocol =
    List.filter
      (fun (l, _) ->
        is_prefix ~prefix:"__mm_" l && not (is_prefix ~prefix:"__mm_fault" l))
      (lines_with_offsets text)
  in
  match protocol with
  | [] ->
      Error
        (Bad_output
           { message = "no __mm_result line in program output"; offset = None })
  | _ -> (
      let cur = { rest = protocol; off = 0 } in
      let bad message = Error (Bad_output { message; offset = Some cur.off }) in
      match parse_result cur with
      | exception Parse m -> bad m
      | exception e ->
          bad (Printf.sprintf "internal parse failure: %s" (Printexc.to_string e))
      | value -> (
          match cur.rest with
          | [ (live_line, o) ] -> (
              cur.off <- o;
              match split_ws live_line with
              | [ "__mm_live"; n ] -> (
                  match int_of_string_opt n with
                  | Some live -> Ok (value, live)
                  | None -> bad "bad __mm_live count")
              | _ -> bad "missing __mm_live trailer")
          | [] -> bad "missing __mm_live trailer"
          | (l, o) :: _ ->
              cur.off <- o;
              bad (Printf.sprintf "trailing protocol line %S" l)))

(* --- compile + run ------------------------------------------------------ *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let keep_c_sources ~keep_c ~instrument c_text =
  Option.iter
    (fun path ->
      let dir = Filename.dirname path in
      mkdir_p dir;
      let write p text =
        Out_channel.with_open_text p (fun oc ->
            Out_channel.output_string oc text)
      in
      write path c_text;
      write (Filename.concat dir "mm_runtime.h") Runtime_c.header;
      write (Filename.concat dir "mm_runtime.c") Runtime_c.impl;
      if instrument then begin
        write (Filename.concat dir "mm_prof.h") Runtime_c.prof_header;
        write (Filename.concat dir "mm_prof.c") Runtime_c.prof_impl
      end)
    keep_c

(* The instrumented binary dumps its profile as a file (not stdout: the
   result-protocol parser owns stdout) in its working directory, which
   [run] sets to the data dir. *)
let sidecar_name = "mm_profile.json"

(* The runtime's fatal-signal handler leaves the innermost breadcrumb
   span here (see mm_runtime.c); one line, Pos.span_to_string format. *)
let crash_sidecar_name = "mm_crash.txt"

let read_crash_span ~dir =
  let path = Filename.concat dir crash_sidecar_name in
  if not (Sys.file_exists path) then None
  else
    match In_channel.with_open_bin path In_channel.input_all with
    | text -> (
        match String.split_on_char '\n' (String.trim text) with
        | line :: _ -> parse_span_string (String.trim line)
        | [] -> None)
    | exception Sys_error _ -> None

let remove_if_exists path =
  if Sys.file_exists path then
    try Sys.remove path with Sys_error _ -> ()

(** [run ?cc ?cflags ?cache ?cache_dir ?keep_c ?instrument ?threads
    ?sanitize ?failpoints ?timeout_s ?max_bytes ~dir c_text] — the whole
    native path: probe the toolchain (including [-fsanitize] support
    when [sanitize] is given), hit or fill the binary cache, execute
    supervised in [dir] (where readMatrix/writeMatrix files live) with
    [OMP_NUM_THREADS=threads], and parse the result protocol.

    [failpoints] is an MM_FAILPOINTS spec armed in the child's
    environment ([Some ""] explicitly disarms an inherited spec);
    [timeout_s]/[max_bytes] become the supervisor's wall-clock deadline
    and address-space cap.  With [instrument] the profiling runtime is
    compiled in (under its own cache key) and the binary's
    mm_profile.json sidecar comes back in [outcome.profile_json].
    Compile and run legs are wrapped in telemetry spans and exported
    both as ns and ms gauges; signal deaths and deadline kills export
    [native.signal] / [native.timeout]. *)
let run ?cc ?(cflags = []) ?(cache = true) ?(cache_dir = Cache.default_dir)
    ?keep_c ?(instrument = false) ?(threads = 1) ?sanitize ?failpoints
    ?timeout_s ?max_bytes ?pipeline ~dir (c_text : string) :
    (outcome, error) result =
  match Toolchain.probe ?cc ~cflags ?sanitize () with
  | Error e -> Error (Toolchain_error e)
  | Ok tc -> (
      Support.Telemetry.set_gauge "native.openmp" (if tc.openmp then 1. else 0.);
      keep_c_sources ~keep_c ~instrument c_text;
      let k = Cache.key ~toolchain:tc ~instrument ?pipeline c_text in
      let cached = if cache then Cache.lookup ~dir:cache_dir k else None in
      let compiled =
        match cached with
        | Some exe -> Ok (exe, true)
        | None ->
            Support.Telemetry.with_span ~phase:"native" "native.compile"
              (fun () ->
                let c_files =
                  Cache.write_sources ~dir:cache_dir ~k ~instrument c_text
                in
                let exe = Cache.exe_path ~dir:cache_dir k in
                let t0 = Support.Telemetry.now_ns () in
                match Toolchain.compile tc ~c_files ~out:exe with
                | Ok () ->
                    let ns = Support.Telemetry.now_ns () - t0 in
                    Support.Telemetry.set_gauge "native.compile_ns"
                      (float_of_int ns);
                    Support.Telemetry.set_gauge "native.compile_ms"
                      (float_of_int ns /. 1e6);
                    Ok (exe, false)
                | Error e -> Error (Toolchain_error e))
      in
      match compiled with
      | Error e -> Error e
      | Ok (exe, from_cache) -> (
          let out = Filename.temp_file "mmc_exec" ".out" in
          let err = Filename.temp_file "mmc_exec" ".err" in
          (* Run with cwd = data dir so matrix paths resolve exactly like
             the interpreter's virtual filesystem rooted at [dir]. *)
          let abs_exe =
            if Filename.is_relative exe then
              Filename.concat (Sys.getcwd ()) exe
            else exe
          in
          let sidecar = Filename.concat dir sidecar_name in
          if instrument then
            (* a stale sidecar from an earlier run must not be read back *)
            remove_if_exists sidecar;
          remove_if_exists (Filename.concat dir crash_sidecar_name);
          let env =
            [ ("OMP_NUM_THREADS", string_of_int (max 1 threads)) ]
            @ (match failpoints with
              | Some spec -> [ ("MM_FAILPOINTS", spec) ]
              | None -> [])
            @
            (* mm programs intentionally exit with live allocations (the
               __mm_live leak-parity check observes them); ASan's leak
               detector would turn every run into a failure *)
            match sanitize with
            | Some "address" -> [ ("ASAN_OPTIONS", "detect_leaks=0") ]
            | _ -> []
          in
          let status =
            Support.Telemetry.with_span ~phase:"native" "native.run"
              (fun () ->
                let t0 = Support.Telemetry.now_ns () in
                let status =
                  Supervise.run ~env ?timeout_s ?max_bytes ~dir
                    ~stdout_file:out ~stderr_file:err abs_exe
                in
                let ns = Support.Telemetry.now_ns () - t0 in
                Support.Telemetry.set_gauge "native.run_ns" (float_of_int ns);
                Support.Telemetry.set_gauge "native.run_ms"
                  (float_of_int ns /. 1e6);
                status)
          in
          let stdout_text = In_channel.with_open_bin out In_channel.input_all in
          let stderr_text = In_channel.with_open_bin err In_channel.input_all in
          List.iter
            (fun f -> try Sys.remove f with Sys_error _ -> ())
            [ out; err ];
          match status with
          | Supervise.Timed_out { after_s } ->
              Support.Telemetry.set_gauge "native.timeout" 1.;
              Error (Run_timeout { timeout_s = after_s; stderr_text })
          | Supervise.Signaled { signal; name } ->
              Support.Telemetry.set_gauge "native.signal"
                (float_of_int signal);
              Error
                (Run_signaled
                   {
                     signal;
                     signal_name = name;
                     stderr_text;
                     fault = scan_fault stdout_text;
                     crash_span = read_crash_span ~dir;
                   })
          | Supervise.Exited 71 -> (
              (* the guard runtime's dedicated exit: a structured fault
                 line must be on stdout *)
              match scan_fault stdout_text with
              | Some f -> Error (Guard_fault f)
              | None -> Error (Run_failed { exit_code = 71; stderr_text }))
          | Supervise.Exited code when code <> 0 ->
              Error (Run_failed { exit_code = code; stderr_text })
          | Supervise.Exited _ -> (
              match parse_output stdout_text with
              | Error e -> Error e
              | Ok (value, live) ->
                  let profile_json =
                    if instrument && Sys.file_exists sidecar then
                      Some
                        (In_channel.with_open_bin sidecar In_channel.input_all)
                    else None
                  in
                  Ok { value; live; exe; from_cache; profile_json })))
