(** Native execution of emitted C: compile (through the binary cache),
    run in the program's data directory, and parse the printed result
    protocol back into the value the interpreter would have returned.

    The generated [main] (see {!Cir.Emit} harness mode) prints
    ["__mm_result ..."] lines using the runtime's result protocol plus a
    final ["__mm_live N"] line, so a native run round-trips into exactly
    the shape [mmc run] prints — the differential suite compares the two
    bit-for-bit. *)

module S = Runtime.Scalar
module Nd = Runtime.Ndarray

type value =
  | RVoid
  | RNull
  | RScal of S.t
  | RMat of Nd.t
  | RTuple of value array

(* Renders identically to [Interp.Eval.pp_value] so `mmc exec` output is
   textually interchangeable with `mmc run`. *)
let rec pp_value ppf = function
  | RVoid -> Fmt.string ppf "void"
  | RNull -> Fmt.string ppf "NULL"
  | RScal s -> S.pp ppf s
  | RMat m -> Nd.pp ppf m
  | RTuple vs ->
      Fmt.pf ppf "(%a)" (Fmt.array ~sep:(Fmt.any ", ") pp_value) vs

type error =
  | Toolchain_error of Toolchain.error
  | Run_failed of { exit_code : int; stderr_text : string }
  | Bad_output of string

let describe_error = function
  | Toolchain_error e -> Toolchain.describe_error e
  | Run_failed { exit_code; stderr_text } ->
      let detail = String.trim stderr_text in
      if detail = "" then
        Printf.sprintf "native binary exited with code %d" exit_code
      else detail
  | Bad_output m -> Printf.sprintf "cannot parse native output: %s" m

type outcome = {
  value : value;  (** the entry function's result *)
  live : int;  (** allocations still live at exit (leak parity check) *)
  exe : string;  (** the cached binary that ran *)
  from_cache : bool;  (** true iff compilation was skipped *)
  profile_json : string option;
      (** raw text of the mm_profile.json sidecar an instrumented binary
          dumped into the data directory; [None] for plain runs *)
}

(* --- result-protocol parsing ------------------------------------------- *)

exception Parse of string

let parse_fail fmt = Printf.ksprintf (fun m -> raise (Parse m)) fmt

let split_ws s =
  String.split_on_char ' ' s |> List.filter (fun t -> t <> "")

let parse_float_bits tok =
  match Int64.of_string_opt tok with
  | Some bits -> Int64.float_of_bits bits
  | None -> parse_fail "bad float bits %S" tok

(* [lines] is a mutable cursor over the binary's stdout. *)
let next_line lines =
  match !lines with
  | [] -> parse_fail "output ended mid-result"
  | l :: rest ->
      lines := rest;
      l

let rec parse_result lines : value =
  let l = next_line lines in
  match split_ws l with
  | [ "__mm_result"; "int"; v ] -> (
      match int_of_string_opt v with
      | Some i -> RScal (S.I i)
      | None -> parse_fail "bad int %S" v)
  | [ "__mm_result"; "float"; v ] -> RScal (S.F (parse_float_bits v))
  | [ "__mm_result"; "bool"; v ] -> RScal (S.B (v <> "0"))
  | [ "__mm_result"; "void" ] -> RVoid
  | [ "__mm_result"; "null" ] -> RNull
  | [ "__mm_result"; "tuple"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 0 ->
          RTuple (Array.init n (fun _ -> parse_result lines))
      | _ -> parse_fail "bad tuple arity %S" n)
  | "__mm_result" :: "mat" :: kind :: rank :: dims -> (
      let rank =
        match int_of_string_opt rank with
        | Some r when r >= 0 -> r
        | _ -> parse_fail "bad matrix rank %S" rank
      in
      if List.length dims <> rank then
        parse_fail "matrix rank %d but %d extents" rank (List.length dims);
      let shape =
        Array.of_list
          (List.map
             (fun d ->
               match int_of_string_opt d with
               | Some e when e >= 0 -> e
               | _ -> parse_fail "bad extent %S" d)
             dims)
      in
      let data = next_line lines in
      match split_ws data with
      | "__mm_data" :: elems -> (
          let n = Array.fold_left ( * ) 1 shape in
          if List.length elems <> n then
            parse_fail "matrix with %d elements but %d data tokens" n
              (List.length elems);
          let elems = Array.of_list elems in
          match kind with
          | "f" ->
              RMat
                (Nd.of_float_array shape (Array.map parse_float_bits elems))
          | "i" ->
              RMat
                (Nd.of_int_array shape
                   (Array.map
                      (fun t ->
                        match int_of_string_opt t with
                        | Some i -> i
                        | None -> parse_fail "bad int element %S" t)
                      elems))
          | "b" -> RMat (Nd.of_bool_array shape (Array.map (( <> ) "0") elems))
          | k -> parse_fail "unknown matrix kind %S" k)
      | _ -> parse_fail "expected __mm_data line, got %S" data)
  | _ -> parse_fail "unexpected result line %S" l

let parse_output text : (value * int, error) result =
  let all_lines = String.split_on_char '\n' text in
  (* The program itself prints nothing on stdout; tolerate stray lines by
     starting the protocol at the first __mm_ marker. *)
  let protocol =
    List.filter
      (fun l ->
        String.length l >= 5 && String.sub l 0 5 = "__mm_")
      all_lines
  in
  match protocol with
  | [] -> Error (Bad_output "no __mm_result line in program output")
  | _ -> (
      let lines = ref protocol in
      match parse_result lines with
      | exception Parse m -> Error (Bad_output m)
      | value -> (
          match !lines with
          | [ live_line ] -> (
              match split_ws live_line with
              | [ "__mm_live"; n ] -> (
                  match int_of_string_opt n with
                  | Some live -> Ok (value, live)
                  | None -> Error (Bad_output "bad __mm_live count"))
              | _ -> Error (Bad_output "missing __mm_live trailer"))
          | [] -> Error (Bad_output "missing __mm_live trailer")
          | l :: _ ->
              Error
                (Bad_output
                   (Printf.sprintf "trailing protocol line %S" l))))

(* --- compile + run ------------------------------------------------------ *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let keep_c_sources ~keep_c ~instrument c_text =
  Option.iter
    (fun path ->
      let dir = Filename.dirname path in
      mkdir_p dir;
      let write p text =
        Out_channel.with_open_text p (fun oc ->
            Out_channel.output_string oc text)
      in
      write path c_text;
      write (Filename.concat dir "mm_runtime.h") Runtime_c.header;
      write (Filename.concat dir "mm_runtime.c") Runtime_c.impl;
      if instrument then begin
        write (Filename.concat dir "mm_prof.h") Runtime_c.prof_header;
        write (Filename.concat dir "mm_prof.c") Runtime_c.prof_impl
      end)
    keep_c

(* The instrumented binary dumps its profile as a file (not stdout: the
   result-protocol parser owns stdout) in its working directory, which
   [run] sets to the data dir. *)
let sidecar_name = "mm_profile.json"

(** [run ?cc ?cflags ?cache ?cache_dir ?keep_c ?instrument ?threads ~dir
    c_text] — the whole native path: probe the toolchain, hit or fill
    the binary cache, execute in [dir] (where readMatrix/writeMatrix
    files live) with [OMP_NUM_THREADS=threads], and parse the result
    protocol.  With [instrument] the profiling runtime is compiled in
    (under its own cache key) and the binary's mm_profile.json sidecar
    comes back in [outcome.profile_json].  Compile and run legs are
    wrapped in telemetry spans and exported both as ns and ms gauges. *)
let run ?cc ?(cflags = []) ?(cache = true) ?(cache_dir = Cache.default_dir)
    ?keep_c ?(instrument = false) ?(threads = 1) ~dir (c_text : string) :
    (outcome, error) result =
  match Toolchain.probe ?cc ~cflags () with
  | Error e -> Error (Toolchain_error e)
  | Ok tc -> (
      Support.Telemetry.set_gauge "native.openmp" (if tc.openmp then 1. else 0.);
      keep_c_sources ~keep_c ~instrument c_text;
      let k = Cache.key ~toolchain:tc ~instrument c_text in
      let cached = if cache then Cache.lookup ~dir:cache_dir k else None in
      let compiled =
        match cached with
        | Some exe -> Ok (exe, true)
        | None ->
            Support.Telemetry.with_span ~phase:"native" "native.compile"
              (fun () ->
                let c_files =
                  Cache.write_sources ~dir:cache_dir ~k ~instrument c_text
                in
                let exe = Cache.exe_path ~dir:cache_dir k in
                let t0 = Support.Telemetry.now_ns () in
                match Toolchain.compile tc ~c_files ~out:exe with
                | Ok () ->
                    let ns = Support.Telemetry.now_ns () - t0 in
                    Support.Telemetry.set_gauge "native.compile_ns"
                      (float_of_int ns);
                    Support.Telemetry.set_gauge "native.compile_ms"
                      (float_of_int ns /. 1e6);
                    Ok (exe, false)
                | Error e -> Error (Toolchain_error e))
      in
      match compiled with
      | Error e -> Error e
      | Ok (exe, from_cache) -> (
          let out = Filename.temp_file "mmc_exec" ".out" in
          let err = Filename.temp_file "mmc_exec" ".err" in
          (* Run with cwd = data dir so matrix paths resolve exactly like
             the interpreter's virtual filesystem rooted at [dir]. *)
          let abs_exe =
            if Filename.is_relative exe then
              Filename.concat (Sys.getcwd ()) exe
            else exe
          in
          let sidecar = Filename.concat dir sidecar_name in
          if instrument && Sys.file_exists sidecar then (
            (* a stale sidecar from an earlier run must not be read back *)
            try Sys.remove sidecar with Sys_error _ -> ());
          let cmd =
            Printf.sprintf "cd %s && OMP_NUM_THREADS=%d %s > %s 2> %s"
              (Filename.quote dir) (max 1 threads) (Filename.quote abs_exe)
              (Filename.quote out) (Filename.quote err)
          in
          let code =
            Support.Telemetry.with_span ~phase:"native" "native.run"
              (fun () ->
                let t0 = Support.Telemetry.now_ns () in
                let code = Sys.command cmd in
                let ns = Support.Telemetry.now_ns () - t0 in
                Support.Telemetry.set_gauge "native.run_ns" (float_of_int ns);
                Support.Telemetry.set_gauge "native.run_ms"
                  (float_of_int ns /. 1e6);
                code)
          in
          let stdout_text = In_channel.with_open_bin out In_channel.input_all in
          let stderr_text = In_channel.with_open_bin err In_channel.input_all in
          List.iter
            (fun f -> try Sys.remove f with Sys_error _ -> ())
            [ out; err ];
          if code <> 0 then
            Error (Run_failed { exit_code = code; stderr_text })
          else
            match parse_output stdout_text with
            | Error e -> Error e
            | Ok (value, live) ->
                let profile_json =
                  if instrument && Sys.file_exists sidecar then
                    Some
                      (In_channel.with_open_bin sidecar In_channel.input_all)
                  else None
                in
                Ok { value; live; exe; from_cache; profile_json }))
