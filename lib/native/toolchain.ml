(** System C toolchain discovery and compilation for [mmc exec] (§II: the
    emitted plain parallel C is "compiled for execution by a traditional
    compiler").

    The compiler is probed once per (cc, flags) configuration: first a
    trivial translation unit (is there a working compiler at all?), then
    the same unit under [-fopenmp] (do parallel loops get real OpenMP
    threads, or do the pragmas fall back to sequential execution?).  Probe
    results are memoised for the process lifetime, so test suites that
    exec many programs pay for the probe once. *)

type t = {
  cc : string;  (** compiler command, e.g. ["cc"] *)
  cflags : string list;  (** extra user flags, after the defaults *)
  openmp : bool;  (** [-fopenmp] accepted: ParFor pragmas are live *)
  sanitize : string option;
      (** probed [-fsanitize=] mode ("address" / "undefined"), if any *)
}

type error =
  | No_compiler of { cc : string; detail : string }
      (** no working C compiler under this name *)
  | Compile_failed of { cmd : string; output : string }
      (** the generated program failed to compile — an emitter bug *)
  | Sanitizer_unsupported of { cc : string; sanitize : string }
      (** the compiler exists but rejects [-fsanitize=<mode>] *)

let describe_error = function
  | No_compiler { cc; detail } ->
      Printf.sprintf "no working C compiler %S (%s)" cc detail
  | Compile_failed { cmd; output } ->
      Printf.sprintf "C compilation failed: %s\n%s" cmd (String.trim output)
  | Sanitizer_unsupported { cc; sanitize } ->
      Printf.sprintf "%s does not support -fsanitize=%s" cc sanitize

let default_cc () =
  match Sys.getenv_opt "MMC_CC" with Some c when c <> "" -> c | _ -> "cc"

(* Run [cmd], capturing stdout+stderr; returns (exit code, output). *)
let run_command cmd =
  let out = Filename.temp_file "mmc_cc" ".out" in
  let code = Sys.command (Printf.sprintf "%s > %s 2>&1" cmd (Filename.quote out)) in
  let text = In_channel.with_open_bin out In_channel.input_all in
  (try Sys.remove out with Sys_error _ -> ());
  (code, text)

let quote = Filename.quote

(* --- probing ---------------------------------------------------------- *)

let probe_cache : (string, (t, error) result) Hashtbl.t = Hashtbl.create 4

let try_compile ~cc ~flags ~src_text =
  let dir = Filename.temp_file "mmc_probe" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let src = Filename.concat dir "probe.c" in
  let exe = Filename.concat dir "probe.exe" in
  Out_channel.with_open_text src (fun oc ->
      Out_channel.output_string oc src_text);
  let cmd =
    Printf.sprintf "%s %s -o %s %s" cc
      (String.concat " " (List.map quote flags))
      (quote exe) (quote src)
  in
  let code, output = run_command cmd in
  List.iter
    (fun f -> try Sys.remove f with Sys_error _ -> ())
    [ src; exe ];
  (try Sys.rmdir dir with Sys_error _ -> ());
  if code = 0 then Ok () else Error (cmd, output)

(* [-fsanitize] builds also want frame pointers and debug info so the
   sanitizer's reports carry usable stacks. *)
let sanitize_flags = function
  | None -> []
  | Some s -> [ "-fsanitize=" ^ s; "-fno-omit-frame-pointer"; "-g" ]

(** [probe ?cc ?cflags ?sanitize ()] — locate a working compiler, decide
    whether OpenMP is available under it, and (when [sanitize] is given)
    verify the compiler links [-fsanitize=<mode>] programs.  Memoised
    per configuration. *)
let probe ?cc ?(cflags = []) ?sanitize () : (t, error) result =
  let cc = match cc with Some c when c <> "" -> c | _ -> default_cc () in
  let key =
    cc ^ "\x00"
    ^ String.concat "\x00" cflags
    ^ "\x01"
    ^ Option.value sanitize ~default:""
  in
  match Hashtbl.find_opt probe_cache key with
  | Some r -> r
  | None ->
      let trivial = "int main(void) { return 0; }\n" in
      let r =
        match try_compile ~cc ~flags:cflags ~src_text:trivial with
        | Error (_, output) ->
            Error
              (No_compiler
                 {
                   cc;
                   detail =
                     (match String.trim output with
                     | "" -> "command failed"
                     | s ->
                         (* first line is enough: "cc: command not found" *)
                         (match String.index_opt s '\n' with
                         | Some i -> String.sub s 0 i
                         | None -> s));
                 })
        | Ok () -> (
            let openmp =
              match
                try_compile ~cc ~flags:("-fopenmp" :: cflags)
                  ~src_text:trivial
              with
              | Ok () -> true
              | Error _ -> false
            in
            match sanitize with
            | None -> Ok { cc; cflags; openmp; sanitize = None }
            | Some s -> (
                match
                  try_compile ~cc
                    ~flags:(sanitize_flags (Some s) @ cflags)
                    ~src_text:trivial
                with
                | Ok () -> Ok { cc; cflags; openmp; sanitize = Some s }
                | Error _ ->
                    Error (Sanitizer_unsupported { cc; sanitize = s })))
      in
      Hashtbl.replace probe_cache key r;
      r

(** The flags a toolchain compiles generated programs with, in command
    order.  Without OpenMP the pragmas are dead text, so the unknown-
    pragma warning is silenced to stay clean under [-Wall].  Sanitizer
    flags participate, which also gives sanitized builds their own
    binary-cache slot (the cache key digests the full flag list). *)
let flags t =
  [ "-O2"; "-Wall" ]
  @ sanitize_flags t.sanitize
  @ (if t.openmp then [ "-fopenmp" ] else [ "-Wno-unknown-pragmas" ])
  @ t.cflags

(** [compile t ~c_files ~out] — compile and link [c_files] into [out].
    Returns the full command on failure so the driver's diagnostic shows
    exactly what was attempted. *)
let compile t ~c_files ~out : (unit, error) result =
  let cmd =
    Printf.sprintf "%s %s -o %s %s" t.cc
      (String.concat " " (List.map quote (flags t)))
      (quote out)
      (String.concat " " (List.map quote c_files))
  in
  let code, output = run_command cmd in
  if code = 0 then Ok () else Error (Compile_failed { cmd; output })
