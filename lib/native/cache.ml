(** Content-addressed cache of compiled native binaries.

    A binary is keyed by everything that could change it: the emitted C
    text, both runtime sources, the compiler name and the full flag list.
    Any flag or source change therefore misses and recompiles; re-running
    an unchanged program hits and skips the C compiler entirely.  Hits
    and misses are counted and exported as [cache.hit]/[cache.miss]
    telemetry gauges. *)

let default_dir = "_mmc_cache"

let hits = ref 0
let misses = ref 0
let hit_count () = !hits
let miss_count () = !misses

let reset_counts () =
  hits := 0;
  misses := 0

let export_gauges () =
  Support.Telemetry.set_gauge "cache.hit" (float_of_int !hits);
  Support.Telemetry.set_gauge "cache.miss" (float_of_int !misses)

(** [key ~toolchain ?instrument c_text] — hex digest naming the binary
    this exact (program, runtime, compiler configuration) triple compiles
    to.  Instrumented builds link the profiling runtime too, so the flag
    and the mm_prof sources join the digest: a profiled and an unprofiled
    run of the same program occupy distinct cache slots.  [pipeline] is
    the canonical pass-pipeline string the C was generated under;
    differently-configured pipelines never share a slot even if they
    happen to emit the same text today ([""], the default, keeps
    pre-pipeline digests valid). *)
let key ~(toolchain : Toolchain.t) ?(instrument = false) ?(pipeline = "")
    (c_text : string) =
  let prof_part =
    if instrument then
      [ "instrument"; Runtime_c.prof_header; Runtime_c.prof_impl ]
    else []
  in
  let pipeline_part = if pipeline = "" then [] else [ "pipeline"; pipeline ] in
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          ([ c_text; Runtime_c.header; Runtime_c.impl; toolchain.Toolchain.cc ]
          @ prof_part @ pipeline_part
          @ Toolchain.flags toolchain)))

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()

let exe_path ~dir k = Filename.concat dir ("mm_" ^ k ^ ".exe")

(** [lookup ~dir k] — cached binary for key [k], bumping the hit/miss
    tally either way. *)
let lookup ~dir k =
  let path = exe_path ~dir k in
  if Sys.file_exists path then begin
    incr hits;
    export_gauges ();
    Some path
  end
  else begin
    incr misses;
    export_gauges ();
    None
  end

(** Materialise the program and runtime sources for a compile (the cache
    directory is also the build directory, so a failed compile leaves the
    offending .c behind for inspection).  Returns the .c files to hand to
    the compiler; instrumented builds add the profiling runtime. *)
let write_sources ~dir ~k ?(instrument = false) c_text =
  ensure_dir dir;
  let c_file = Filename.concat dir ("mm_" ^ k ^ ".c") in
  let write path text =
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc text)
  in
  write c_file c_text;
  write (Filename.concat dir "mm_runtime.h") Runtime_c.header;
  write (Filename.concat dir "mm_runtime.c") Runtime_c.impl;
  if instrument then begin
    write (Filename.concat dir "mm_prof.h") Runtime_c.prof_header;
    write (Filename.concat dir "mm_prof.c") Runtime_c.prof_impl
  end;
  c_file :: Filename.concat dir "mm_runtime.c"
  :: (if instrument then [ Filename.concat dir "mm_prof.c" ] else [])
