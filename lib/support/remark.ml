(** Optimization remarks: structured records of every decision the
    lowering pipeline takes — a with-loop fused (or not, and what blocked
    it), a slice copy elided (or kept, with the alias-analysis verdict), a
    loop promoted to [ParFor] (or demoted, and why), reference-count
    operations placed, a transform-script clause bound (or skipped).

    In the spirit of clang/LLVM [-Rpass] remarks: the pipeline already
    {e makes} these decisions — this module makes them observable, so a
    user can ask {e why} their eddy kernel did not parallelize instead of
    diffing generated C.  Surfaced by [mmc explain], by [--remarks] on the
    other subcommands, and as [remark.<pass>.<kind>] telemetry gauges.

    Mirrors {!Telemetry}'s discipline: collection is {b off by default}
    behind one flag, so un-instrumented compiles pay a read-and-branch per
    decision point and no allocation. *)

(** What the pass did at this site. [Applied]: the optimization fired.
    [Missed]: the pass looked and declined (the interesting case — the
    message says what blocked it). [Skipped]: the pass did not run at all
    here (disabled by flags, or a transform clause that failed to bind). *)
type kind = Applied | Missed | Skipped

let kind_to_string = function
  | Applied -> "applied"
  | Missed -> "missed"
  | Skipped -> "skipped"

type t = {
  pass : string;
      (** which decision point: "fuse", "copy-elim", "auto-par", "rc",
          "transform" *)
  kind : kind;
  span : Pos.span;  (** the source construct the decision is about *)
  message : string;
  details : (string * string) list;
      (** structured payload (blocking construct, alias verdict, clause
          text, inc/dec counts, …) — carried verbatim into the JSON
          report *)
}

(** Canonical pass order for reports; unknown passes sort after, in
    first-emission order. *)
let pass_order = [ "fuse"; "copy-elim"; "auto-par"; "rc"; "transform" ]

(* --- collection -------------------------------------------------------- *)

let enabled = ref false
let set_enabled b = enabled := b
let on () = !enabled
let buf : t list ref = ref []
let reset () = buf := []

(** [record r] — buffer a pre-built remark (no-op when disabled).  Use
    this when the same record also feeds a stderr diagnostic, so both
    outputs share one value. *)
let record r = if !enabled then buf := r :: !buf

(** [emit ~pass ~kind ~span ?details fmt] — format and buffer a remark.
    The message is only formatted when collection is on, so emitters can
    sit on lowering paths without per-compile allocation. *)
let emit ~pass ~kind ~span ?(details = []) fmt =
  if !enabled then
    Format.kasprintf
      (fun message -> buf := { pass; kind; span; message; details } :: !buf)
      fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

(** All remarks in emission order (stable: lowering is deterministic, so
    two runs of the same program produce the same list). *)
let results () = List.rev !buf

(* --- filtering and aggregation ----------------------------------------- *)

let filter ?pass ?kind rs =
  let keep r =
    (match pass with None -> true | Some p -> String.equal r.pass p)
    && match kind with None -> true | Some k -> r.kind = k
  in
  List.filter keep rs

(** [counts rs] — [(pass, applied, missed, skipped)] per pass, in
    {!pass_order} then first-appearance order. *)
let counts rs =
  let passes =
    let seen = Hashtbl.create 8 in
    List.filter_map
      (fun r ->
        if Hashtbl.mem seen r.pass then None
        else begin
          Hashtbl.add seen r.pass ();
          Some r.pass
        end)
      rs
  in
  let rank p =
    let rec go i = function
      | [] -> List.length pass_order
      | q :: _ when String.equal p q -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 pass_order
  in
  let passes =
    List.stable_sort (fun a b -> Int.compare (rank a) (rank b)) passes
  in
  List.map
    (fun p ->
      let n k = List.length (filter ~pass:p ~kind:k rs) in
      (p, n Applied, n Missed, n Skipped))
    passes

(* --- rendering --------------------------------------------------------- *)

(** [to_diag r] — the stderr face of a remark.  [Skipped] is a warning
    (the user asked for something that did not happen); [Missed] and
    [Applied] are notes. *)
let to_diag r =
  let severity =
    match r.kind with
    | Skipped -> Diag.Warning
    | Missed | Applied -> Diag.Note
  in
  Diag.make ~severity ~phase:r.pass ~span:r.span r.message

let pp_one ?src ppf r =
  Fmt.pf ppf "  %-7s %a  %s" (kind_to_string r.kind) Pos.pp_span r.span
    r.message;
  List.iter (fun (k, v) -> Fmt.pf ppf "@.          %s: %s" k v) r.details;
  match src with
  | None -> ()
  | Some src ->
      let excerpt = Fmt.str "%a" (Diag.pp_excerpt src) r.span in
      if excerpt <> "" then
        List.iter
          (fun line -> Fmt.pf ppf "@.      | %s" line)
          (String.split_on_char '\n' excerpt)

(** [pp ?src ppf rs] — remark table grouped by pass (in {!pass_order}),
    emission order within a pass; with [?src], each remark gets a
    clang-style caret excerpt. *)
let pp ?src ppf rs =
  let groups = counts rs in
  let first = ref true in
  List.iter
    (fun (pass, a, m, s) ->
      if not !first then Fmt.pf ppf "@.";
      first := false;
      Fmt.pf ppf "pass %s: %d applied, %d missed, %d skipped@." pass a m s;
      List.iter
        (fun r -> Fmt.pf ppf "%a@." (pp_one ?src) r)
        (filter ~pass rs))
    groups;
  if groups = [] then Fmt.pf ppf "no remarks@."

let to_string ?src rs = Fmt.str "%a" (pp ?src) rs

(* --- JSON -------------------------------------------------------------- *)

let span_json (s : Pos.span) =
  Telemetry.json_obj
    [
      ("line", string_of_int s.Pos.left.Pos.line);
      ("col", string_of_int s.Pos.left.Pos.col);
      ("end_line", string_of_int s.Pos.right.Pos.line);
      ("end_col", string_of_int s.Pos.right.Pos.col);
    ]

let remark_json r =
  Telemetry.json_obj
    [
      ("pass", Telemetry.json_string r.pass);
      ("kind", Telemetry.json_string (kind_to_string r.kind));
      ("span", span_json r.span);
      ("message", Telemetry.json_string r.message);
      ( "details",
        Telemetry.json_obj
          (List.map (fun (k, v) -> (k, Telemetry.json_string v)) r.details) );
    ]

(** [to_json rs] — the report consumed by [bench --check-explain-json]:
    [{"remarks":[…],"counts":{pass:{"applied":n,"missed":n,"skipped":n}}}]. *)
let to_json rs =
  let remarks =
    "[" ^ String.concat "," (List.map remark_json rs) ^ "]"
  in
  let counts_json =
    Telemetry.json_obj
      (List.map
         (fun (p, a, m, s) ->
           ( p,
             Telemetry.json_obj
               [
                 ("applied", string_of_int a);
                 ("missed", string_of_int m);
                 ("skipped", string_of_int s);
               ] ))
         (counts rs))
  in
  Telemetry.json_obj [ ("remarks", remarks); ("counts", counts_json) ]

(* --- telemetry bridge -------------------------------------------------- *)

(** Publish per-pass remark counts as [remark.<pass>.<kind>] gauges, so
    [--stats] summaries and the benchmark trajectory pick them up. *)
let export_gauges () =
  List.iter
    (fun (p, a, m, s) ->
      Telemetry.set_gauge (Printf.sprintf "remark.%s.applied" p) (float_of_int a);
      Telemetry.set_gauge (Printf.sprintf "remark.%s.missed" p) (float_of_int m);
      Telemetry.set_gauge (Printf.sprintf "remark.%s.skipped" p)
        (float_of_int s))
    (counts (results ()))
