/* Monotonic clock for telemetry spans and pool busy-time accounting.
   CLOCK_MONOTONIC is immune to NTP steps, so span durations can never go
   negative the way wall-clock differences can. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value mmc_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000LL + ts.tv_nsec);
}
