(* See telemetry.mli for the design discussion.  Implementation notes:

   - The enabled flag is one [bool Atomic.t]; every probe reads it first,
     so a disabled run pays a load and a branch, nothing else.
   - Counters are interned by name in a mutex-guarded table, but bumping
     an interned handle is lock-free (one [Atomic.fetch_and_add]) — the
     invariant the worker-pool hot path relies on.
   - Spans are appended to a mutex-guarded list on completion; nesting
     depth is tracked per domain with [Domain.DLS], so spans recorded
     concurrently from pool workers never race. *)

(* CLOCK_MONOTONIC via a C stub (see telemetry_stubs.c): wall-clock
   differences can go negative under NTP steps; span durations must not. *)
external monotonic_ns : unit -> int64 = "mmc_monotonic_ns"

let epoch = monotonic_ns ()
let now_ns () = Int64.to_int (Int64.sub (monotonic_ns ()) epoch)
let now () = float_of_int (now_ns ()) *. 1e-9
let enabled = Atomic.make false
let set_enabled b = Atomic.set enabled b
let on () = Atomic.get enabled

(* --- registry ------------------------------------------------------------- *)

let mutex = Mutex.create ()

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

type counter = { c_name : string; c_cell : int Atomic.t }

let registry : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges_tbl : (string, float) Hashtbl.t = Hashtbl.create 16

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some c -> c
      | None ->
          let c = { c_name = name; c_cell = Atomic.make 0 } in
          Hashtbl.replace registry name c;
          c)

let add c n = if Atomic.get enabled then ignore (Atomic.fetch_and_add c.c_cell n)
let bump c = add c 1
let read c = Atomic.get c.c_cell
let counter_name c = c.c_name

let set_gauge name v =
  if Atomic.get enabled then locked (fun () -> Hashtbl.replace gauges_tbl name v)

(* --- spans ----------------------------------------------------------------- *)

type span = {
  sp_name : string;
  sp_phase : string;
  sp_tid : int;
  sp_depth : int;
  sp_start : float;
  sp_dur : float;
  sp_args : (string * string) list;
}

(* reverse completion order *)
let spans_acc : span list ref = ref []
let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let with_span ?(phase = "") ?(args = []) sp_name f =
  if not (Atomic.get enabled) then f ()
  else begin
    let depth = Domain.DLS.get depth_key in
    let d = !depth in
    incr depth;
    let t0 = now () in
    Fun.protect
      ~finally:(fun () ->
        let dur = now () -. t0 in
        decr depth;
        let sp =
          {
            sp_name;
            sp_phase = phase;
            sp_tid = (Domain.self () :> int);
            sp_depth = d;
            sp_start = t0;
            sp_dur = dur;
            sp_args = args;
          }
        in
        locked (fun () -> spans_acc := sp :: !spans_acc))
      f
  end

(* --- inspection ------------------------------------------------------------ *)

let reset () =
  locked (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.c_cell 0) registry;
      Hashtbl.reset gauges_tbl;
      spans_acc := [])

let spans () = locked (fun () -> List.rev !spans_acc)

let counters () =
  locked (fun () ->
      Hashtbl.fold (fun _ c acc -> (c.c_name, Atomic.get c.c_cell) :: acc)
        registry [])
  |> List.sort compare

let gauges () =
  locked (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) gauges_tbl [])
  |> List.sort compare

let span_totals () =
  let tbl : (string, int * float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun sp ->
      let c, t =
        Option.value ~default:(0, 0.) (Hashtbl.find_opt tbl sp.sp_name)
      in
      Hashtbl.replace tbl sp.sp_name (c + 1, t +. sp.sp_dur))
    (spans ());
  Hashtbl.fold (fun n (c, t) acc -> (n, c, t) :: acc) tbl []
  |> List.sort (fun (n1, _, a) (n2, _, b) ->
         match compare b a with 0 -> compare n1 n2 | o -> o)

(* --- exporters ------------------------------------------------------------- *)

let pp_summary ppf () =
  Fmt.pf ppf "--- telemetry summary ---@.";
  (match span_totals () with
  | [] -> ()
  | st ->
      Fmt.pf ppf "  %-38s %8s %12s@." "span" "calls" "total (ms)";
      List.iter
        (fun (n, c, t) -> Fmt.pf ppf "  %-38s %8d %12.3f@." n c (t *. 1000.))
        st);
  (match List.filter (fun (_, v) -> v <> 0) (counters ()) with
  | [] -> ()
  | cs ->
      Fmt.pf ppf "  %-38s %21s@." "counter" "value";
      List.iter (fun (n, v) -> Fmt.pf ppf "  %-38s %21d@." n v) cs);
  match gauges () with
  | [] -> ()
  | gs ->
      Fmt.pf ppf "  %-38s %21s@." "gauge" "value";
      List.iter (fun (n, v) -> Fmt.pf ppf "  %-38s %21.1f@." n v) gs

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_obj (fields : (string * string) list) =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields)
  ^ "}"

let to_json () =
  let counters_json =
    json_obj
      (List.map (fun (n, v) -> (n, string_of_int v)) (counters ()))
  in
  let gauges_json =
    json_obj
      (List.map (fun (n, v) -> (n, Printf.sprintf "%.6f" v)) (gauges ()))
  in
  let spans_json =
    json_obj
      (List.map
         (fun (n, calls, total) ->
           ( n,
             json_obj
               [
                 ("calls", string_of_int calls);
                 ("total_ms", Printf.sprintf "%.6f" (total *. 1000.));
               ] ))
         (span_totals ()))
  in
  json_obj
    [
      ("counters", counters_json);
      ("gauges", gauges_json);
      ("spans", spans_json);
    ]

let write_chrome_trace path =
  let buf = Buffer.create 4096 in
  let first = ref true in
  let event s =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf s
  in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  event
    (json_obj
       [
         ("name", json_string "process_name");
         ("ph", json_string "M");
         ("pid", "0");
         ("tid", "0");
         ("args", json_obj [ ("name", json_string "mmc") ]);
       ]);
  List.iter
    (fun sp ->
      event
        (json_obj
           ([
              ("name", json_string sp.sp_name);
              ( "cat",
                json_string (if sp.sp_phase = "" then "span" else sp.sp_phase)
              );
              ("ph", json_string "X");
              ("ts", Printf.sprintf "%.3f" (sp.sp_start *. 1e6));
              ("dur", Printf.sprintf "%.3f" (sp.sp_dur *. 1e6));
              ("pid", "0");
              ("tid", string_of_int sp.sp_tid);
            ]
           @
           match sp.sp_args with
           | [] -> []
           | args ->
               [
                 ( "args",
                   json_obj (List.map (fun (k, v) -> (k, json_string v)) args)
                 );
               ])))
    (spans ());
  let ts_end = Printf.sprintf "%.3f" (now () *. 1e6) in
  List.iter
    (fun (n, v) ->
      event
        (json_obj
           [
             ("name", json_string n);
             ("cat", json_string "counter");
             ("ph", json_string "C");
             ("ts", ts_end);
             ("pid", "0");
             ("tid", "0");
             ("args", json_obj [ ("value", string_of_int v) ]);
           ]))
    (counters ());
  List.iter
    (fun (n, v) ->
      event
        (json_obj
           [
             ("name", json_string n);
             ("cat", json_string "gauge");
             ("ph", json_string "C");
             ("ts", ts_end);
             ("pid", "0");
             ("tid", "0");
             ("args", json_obj [ ("value", Printf.sprintf "%.6f" v) ]);
           ]))
    (gauges ());
  Buffer.add_string buf "]}";
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf))
