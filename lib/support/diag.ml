(** Diagnostics: errors, warnings and notes produced by every phase of the
    translator (scanning, parsing, semantic analysis, lowering,
    transformation binding checks, composability analyses).

    A phase returns a list of diagnostics rather than raising, so the driver
    can collect errors from several extensions' analyses before giving up —
    mirroring how Silver collects the [errors] attribute over a whole tree. *)

type severity = Error | Warning | Note

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

type t = {
  severity : severity;
  span : Pos.span;
  phase : string;  (** e.g. "parse", "typecheck", "matrix", "transform" *)
  message : string;
}

let make ?(severity = Error) ~phase ~span message =
  { severity; span; phase; message }

let error ~phase ~span fmt =
  Format.kasprintf (fun message -> make ~severity:Error ~phase ~span message) fmt

let warning ~phase ~span fmt =
  Format.kasprintf
    (fun message -> make ~severity:Warning ~phase ~span message)
    fmt

let note ~phase ~span fmt =
  Format.kasprintf (fun message -> make ~severity:Note ~phase ~span message) fmt

let is_error d = d.severity = Error
let has_errors ds = List.exists is_error ds

let pp ppf d =
  Fmt.pf ppf "%a: %s [%s]: %s" Pos.pp_span d.span
    (severity_to_string d.severity)
    d.phase d.message

let to_string d = Fmt.str "%a" pp d

(** Render a diagnostic list, one per line, errors first. *)
let pp_list ppf ds =
  let rank d = match d.severity with Error -> 0 | Warning -> 1 | Note -> 2 in
  let sorted = List.stable_sort (fun a b -> Int.compare (rank a) (rank b)) ds in
  Fmt.pf ppf "%a" (Fmt.list ~sep:Fmt.cut pp) sorted

(* --- caret rendering -------------------------------------------------- *)

(** [source_line src n] — the 1-based [n]th line of [src] (without its
    newline), if it exists. *)
let source_line src n =
  if n < 1 then None
  else
    let len = String.length src in
    let rec find_start line i =
      if line = n then Some i
      else if i >= len then None
      else
        match String.index_from_opt src i '\n' with
        | Some nl -> find_start (line + 1) (nl + 1)
        | None -> None
    in
    match find_start 1 0 with
    | None -> None
    | Some start ->
        let stop =
          match String.index_from_opt src start '\n' with
          | Some nl -> nl
          | None -> len
        in
        Some (String.sub src start (stop - start))

(** [pp_excerpt src ppf span] — clang-style source excerpt: the offending
    line followed by a [^~~~] underline covering the span (clamped to the
    first line for multi-line spans).  Prints nothing for spans that do
    not point into [src] (dummy or stale positions). *)
let pp_excerpt src ppf (span : Pos.span) =
  if Pos.equal span.Pos.left span.Pos.right then
    (* empty span (e.g. [Pos.dummy_span], "no useful location"): there is
       no source extent to underline *)
    ()
  else
  match source_line src span.Pos.left.Pos.line with
  | None -> ()
  | Some line ->
      let width = String.length line in
      let c0 = span.Pos.left.Pos.col in
      if c0 < 1 || c0 > width then ()
      else begin
        let c1 =
          if span.Pos.right.Pos.line = span.Pos.left.Pos.line then
            (* right is one past the last character *)
            max c0 (min (span.Pos.right.Pos.col - 1) width)
          else width
        in
        (* Tabs in the source line keep alignment by echoing them into
           the pad. *)
        let pad =
          String.init (c0 - 1) (fun i -> if line.[i] = '\t' then '\t' else ' ')
        in
        Fmt.pf ppf "%s@.%s^%s" line pad (String.make (c1 - c0) '~')
      end

(** [pp_with_source src ppf d] — {!pp} plus the caret excerpt when the
    span points into [src]. *)
let pp_with_source src ppf d =
  pp ppf d;
  if Fmt.str "%a" (pp_excerpt src) d.span <> "" then
    Fmt.pf ppf "@.%a" (pp_excerpt src) d.span

(** Render a list with excerpts, errors first. *)
let pp_list_with_source src ppf ds =
  let rank d = match d.severity with Error -> 0 | Warning -> 1 | Note -> 2 in
  let sorted = List.stable_sort (fun a b -> Int.compare (rank a) (rank b)) ds in
  Fmt.pf ppf "%a" (Fmt.list ~sep:Fmt.cut (pp_with_source src)) sorted

exception Fatal of t
(** Raised only for internal invariant violations that indicate a bug in the
    translator itself (never for user errors in the input program). *)

let fatal ~phase ~span fmt =
  Format.kasprintf
    (fun message -> raise (Fatal (make ~severity:Error ~phase ~span message)))
    fmt
