(** Source-attributed runtime profiling.

    Aggregates interpreter time, iteration counts, pool dispatches,
    per-worker busy time and matrix-allocation bytes *per source span*
    ({!Pos.span}): the provenance the lowerings stamp onto CIR loops and
    [Located] blocks.  The result is the data behind [mmc profile] — a
    hot-loop table in terms of the matrix code the user wrote, not the C
    it becomes.

    Attribution model:
    - the interpreting domain keeps a stack of open frames (one per
      provenance-carrying loop or top-level statement); on exit, the
      elapsed time is charged to the span's [total], the parent frame's
      child-time grows by the same amount, and [self = total - children]
      (clamped at 0);
    - a [ParFor] dispatch installs a global *region* for its duration.
      While a region is open no new frames are created (the interpreter
      gates on {!in_region}): the dispatching row's self time is the
      region's wall clock, counted exactly once, so the table's self
      percentages sum to at most 100% of wall time even on many workers.
      Per-worker CPU time inside the region is still broken out via
      {!worker_busy}, and worker allocations are charged to the region's
      row.  The finer per-span breakdown inside parallel bodies is
      available from a sequential ([--threads 1]) profile — this also
      keeps clock reads and profiler-mutex traffic out of worker loops;
    - allocation bytes are charged to the innermost open frame of the
      allocating domain, falling back to the active region, and counted
      as unattributed otherwise. *)

type row = {
  r_span : Pos.span;
  mutable r_total_ns : int;  (** wall time while the span was open *)
  mutable r_self_ns : int;  (** total minus time in nested spans *)
  mutable r_iters : int;  (** loop iterations executed *)
  mutable r_dispatches : int;  (** pool dispatches (ParFor headers) *)
  mutable r_par_ns : int;  (** self time spent under a ParFor header *)
  mutable r_seq_ns : int;  (** self time of sequential execution *)
  mutable r_alloc_bytes : int;  (** matrix bytes allocated in the span *)
  mutable r_worker_ns : (int * int) list;  (** worker id -> busy ns *)
}

let enabled = ref false
let set_enabled b = enabled := b
let is_enabled () = !enabled

(* All aggregate state is guarded by one mutex: the interpreting domain
   only touches it at loop/statement granularity and workers only at
   dispatch/allocation granularity, so contention is negligible. *)
let mu = Mutex.create ()
let rows : (Pos.span, row) Hashtbl.t = Hashtbl.create 64
let folded_tbl : (string, int) Hashtbl.t = Hashtbl.create 64
let unattributed_alloc = ref 0

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let row_for sp =
  match Hashtbl.find_opt rows sp with
  | Some r -> r
  | None ->
      let r =
        {
          r_span = sp;
          r_total_ns = 0;
          r_self_ns = 0;
          r_iters = 0;
          r_dispatches = 0;
          r_par_ns = 0;
          r_seq_ns = 0;
          r_alloc_bytes = 0;
          r_worker_ns = [];
        }
      in
      Hashtbl.add rows sp r;
      r

(* --- frames ---------------------------------------------------------- *)

type frame = {
  f_span : Pos.span;
  f_start : int;
  mutable f_child : int;  (** ns spent in same-domain nested frames *)
}

let stack : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(* Active ParFor region: the span of the dispatching loop.  Workers read
   it to attribute busy time and allocations; the interpreter reads it to
   suppress frame creation inside the region. *)
let region : Pos.span option Atomic.t = Atomic.make None

let depth () = List.length !(Domain.DLS.get stack)
let in_region () = Atomic.get region <> None

let enter sp =
  let st = Domain.DLS.get stack in
  st := { f_span = sp; f_start = Telemetry.now_ns (); f_child = 0 } :: !st

(** Close the innermost frame. [par] marks the frame as a parallel
    dispatch header: its self time counts as parallel, it contributed
    [dispatches], and the active region is torn down. *)
let exit_ ?(iters = 0) ?(dispatches = 0) ?(par = false) () =
  let st = Domain.DLS.get stack in
  match !st with
  | [] -> ()
  | f :: rest ->
      st := rest;
      let total = Telemetry.now_ns () - f.f_start in
      if par then (
        match Atomic.get region with
        | Some sp when sp = f.f_span -> Atomic.set region None
        | _ -> ());
      let self = max 0 (total - f.f_child) in
      (match rest with
      | parent :: _ -> parent.f_child <- parent.f_child + total
      | [] -> ());
      locked (fun () ->
          let r = row_for f.f_span in
          r.r_total_ns <- r.r_total_ns + total;
          r.r_self_ns <- r.r_self_ns + self;
          r.r_iters <- r.r_iters + iters;
          r.r_dispatches <- r.r_dispatches + dispatches;
          if par then r.r_par_ns <- r.r_par_ns + self
          else r.r_seq_ns <- r.r_seq_ns + self;
          if self > 0 then begin
            let path =
              List.rev_map (fun fr -> Pos.span_to_string fr.f_span) (f :: rest)
              |> String.concat ";"
            in
            let prev =
              Option.value ~default:0 (Hashtbl.find_opt folded_tbl path)
            in
            Hashtbl.replace folded_tbl path (prev + self)
          end)

(** Install the worker-attribution region for a ParFor dispatch; call
    between {!enter} and the dispatch itself. *)
let open_region sp = Atomic.set region (Some sp)

(* --- worker / allocation attribution --------------------------------- *)

let worker_busy ~worker ns =
  match Atomic.get region with
  | None -> ()
  | Some sp ->
      locked (fun () ->
          let r = row_for sp in
          let prev =
            Option.value ~default:0 (List.assoc_opt worker r.r_worker_ns)
          in
          r.r_worker_ns <-
            (worker, prev + ns) :: List.remove_assoc worker r.r_worker_ns)

let on_alloc bytes =
  let sp =
    match !(Domain.DLS.get stack) with
    | f :: _ -> Some f.f_span
    | [] -> Atomic.get region
  in
  locked (fun () ->
      match sp with
      | Some sp ->
          let r = row_for sp in
          r.r_alloc_bytes <- r.r_alloc_bytes + bytes
      | None -> unattributed_alloc := !unattributed_alloc + bytes)

(* --- results ---------------------------------------------------------- *)

let reset () =
  locked (fun () ->
      Hashtbl.reset rows;
      Hashtbl.reset folded_tbl;
      unattributed_alloc := 0);
  Atomic.set region None;
  Domain.DLS.get stack := []

(** Aggregated rows, hottest (by self time) first. *)
let results () =
  locked (fun () ->
      Hashtbl.fold (fun _ r acc -> r :: acc) rows []
      |> List.sort (fun a b -> compare b.r_self_ns a.r_self_ns))

(** Folded stacks ("outer;inner self_ns" lines) for flamegraph tools. *)
let folded () =
  locked (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) folded_tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let unattributed_alloc_bytes () = locked (fun () -> !unattributed_alloc)

(** Sum of self time over all rows — the profiler's "attributed" total. *)
let attributed_ns () =
  locked (fun () -> Hashtbl.fold (fun _ r acc -> acc + r.r_self_ns) rows 0)
