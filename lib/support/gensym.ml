(** Fresh-name generation for lowering passes.

    The with-loop and matrixMap lowerings introduce index variables,
    accumulators and temporaries; the split/tile transformations introduce
    [jin]/[jout]-style indices when the programmer did not name them.  Names
    are made collision-free by a reserved prefix ["__mm_"] that the CMINUS
    lexer rejects in user programs. *)

type t = {
  mutable next : int;
  prefix : string;
  mutable trail_rev : (string * string) list;
      (** every [(name, hint)] ever issued, newest first — the allocation
          log the pass pipeline renumbers surviving temporaries from *)
}

let reserved_prefix = "__mm_"
let create ?(prefix = reserved_prefix) () = { next = 0; prefix; trail_rev = [] }

(** [fresh g hint] returns a new unique name such as ["__mm_acc3"]. *)
let fresh g hint =
  let n = g.next in
  g.next <- n + 1;
  let name = Printf.sprintf "%s%s%d" g.prefix hint n in
  g.trail_rev <- (name, hint) :: g.trail_rev;
  name

(** [trail g] — every name issued so far with its hint, in allocation
    order.  After a pass deletes statements, the names still present in
    the program form a subsequence of this trail; renumbering each
    survivor by its rank in that subsequence reproduces the names a
    lowering that never emitted the deleted code would have chosen. *)
let trail g = List.rev g.trail_rev

(** [is_reserved name] is true when [name] could collide with generated
    temporaries and must be rejected by the scanner. *)
let is_reserved name =
  String.length name >= String.length reserved_prefix
  && String.sub name 0 (String.length reserved_prefix) = reserved_prefix
