(** A minimal JSON reader (there is no JSON library in the switch, and the
    exporters hand-roll their output).  Used by the benchmark harness to
    read committed baselines ([bench --compare]) and validate [mmc
    profile --json] output, and by the test suite to parse trace files
    back. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad_json of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail m = raise (Bad_json (Printf.sprintf "%s at offset %d" m !pos)) in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let lit word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            (if !pos >= n then fail "dangling escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'
               | '\\' -> Buffer.add_char b '\\'
               | '/' -> Buffer.add_char b '/'
               | 'n' -> Buffer.add_char b '\n'
               | 't' -> Buffer.add_char b '\t'
               | 'r' -> Buffer.add_char b '\r'
               | 'b' -> Buffer.add_char b '\b'
               | 'f' -> Buffer.add_char b '\012'
               | 'u' ->
                   if !pos + 4 >= n then fail "short \\u escape";
                   (* keep the raw escape; callers only check shape *)
                   Buffer.add_string b (String.sub s (!pos - 1) 6);
                   pos := !pos + 4
               | c -> fail (Printf.sprintf "bad escape %C" c));
            incr pos;
            go ()
        | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      && (match s.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ()
            | Some '}' -> incr pos
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elements ()
            | Some ']' -> incr pos
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some 't' -> lit "true" (Bool true)
    | Some 'f' -> lit "false" (Bool false)
    | Some 'n' -> lit "null" Null
    | Some ('0' .. '9' | '-') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_file path = parse (In_channel.with_open_text path In_channel.input_all)

(* --- accessors --------------------------------------------------------- *)

let field name = function Obj fields -> List.assoc_opt name fields | _ -> None

let num = function Num f -> Some f | _ -> None
let str = function Str s -> Some s | _ -> None
let arr = function Arr xs -> Some xs | _ -> None

(** [num_field j name] — the numeric field, or [None]. *)
let num_field j name = Option.bind (field name j) num
