(** Deterministic fault injection — the registry behind the chaos/stress
    harness.

    A {i failpoint} is a named site in the runtime (matrix allocation, the
    pool's chunk dispatch, [readMatrix] I/O) that can be {e armed} to raise
    {!Injected} on a chosen hit.  Arming is external — the
    [MMC_FAILPOINTS] environment variable or [mmc --failpoints] — so the
    production code path never references a specific fault; it only calls
    {!hit} at the site.

    Firing is deterministic: [name\@k] fires on exactly the k-th hit
    (one-shot — subsequent hits pass, which is what lets the pool's retry
    logic model a {e transient} fault), and [name\@p:seed] fires
    pseudo-randomly per hit from a seeded hash, so a given (spec, hit
    sequence) always injects the same faults.

    The disarmed fast path is one atomic load per site, matching the
    telemetry discipline; hit and fired counts are always collected (they
    are how tests assert a fault actually fired) and can be exported as
    telemetry gauges via {!export_gauges}. *)

exception Injected of string
(** Raised by {!hit} when the site's armed condition is met; the payload
    is the failpoint name. *)

type mode =
  | Off
  | Nth of int  (** fire on exactly the k-th hit (1-based), one-shot *)
  | Prob of float * int  (** (probability, seed): fire per-hit from a hash *)

type t = {
  fp_name : string;
  armed : bool Atomic.t;  (** fast-path gate, one load when disarmed *)
  mutable mode : mode;
  hits : int Atomic.t;
  fired : int Atomic.t;
}

let mu = Mutex.create ()
let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(** [register name] — intern a failpoint handle; sites call this once at
    module initialisation.  Arming by name and registering commute: both
    resolve to the same cell. *)
let register name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some fp -> fp
      | None ->
          let fp =
            {
              fp_name = name;
              armed = Atomic.make false;
              mode = Off;
              hits = Atomic.make 0;
              fired = Atomic.make 0;
            }
          in
          Hashtbl.add registry name fp;
          fp)

let name fp = fp.fp_name

(* Deterministic per-hit coin for probabilistic failpoints: a splitmix64
   step of (seed, hit index), so which hits fire depends only on the spec
   and the hit sequence, never on wall clock or global PRNG state. *)
let coin ~seed ~n =
  let z = ref (seed * 0x9E3779B9 + n * 0xBF58476D + 0x94D049BB) in
  z := (!z lxor (!z lsr 30)) * 0x4CE4E5B9BF58476D;
  z := (!z lxor (!z lsr 27)) * 0x133111EB94D049BB;
  let bits = (!z lxor (!z lsr 31)) land 0x3FFFFFFF in
  float_of_int bits /. float_of_int 0x40000000

(** [hit fp] — record one pass through the site; raises {!Injected} when
    the armed condition is met on this hit.  Safe to call from any domain:
    the hit index comes from one [fetch_and_add], so [Nth k] fires in
    exactly one thread. *)
let hit fp =
  if Atomic.get fp.armed then begin
    let n = 1 + Atomic.fetch_and_add fp.hits 1 in
    let fire =
      match fp.mode with
      | Off -> false
      | Nth k -> n = k
      | Prob (p, seed) -> coin ~seed ~n < p
    in
    if fire then begin
      Atomic.incr fp.fired;
      raise (Injected fp.fp_name)
    end
  end

let arm fp mode =
  fp.mode <- mode;
  Atomic.set fp.armed (mode <> Off)

exception Bad_spec of string

(* One clause of a failpoint spec:
     name@K        fire on the K-th hit (K a positive integer)
     name@P        fire each hit with probability P (a float in (0,1])
     name@P:SEED   same, with an explicit PRNG seed *)
let parse_clause clause =
  match String.index_opt clause '@' with
  | None ->
      raise
        (Bad_spec
           (Printf.sprintf "%S: expected name@k or name@p[:seed]" clause))
  | Some at ->
      let fp_name = String.sub clause 0 at in
      let rest = String.sub clause (at + 1) (String.length clause - at - 1) in
      if fp_name = "" || rest = "" then
        raise (Bad_spec (Printf.sprintf "%S: empty name or trigger" clause));
      let prob, seed =
        match String.index_opt rest ':' with
        | None -> (rest, 1)
        | Some c -> (
            let s = String.sub rest (c + 1) (String.length rest - c - 1) in
            match int_of_string_opt s with
            | Some seed -> (String.sub rest 0 c, seed)
            | None ->
                raise (Bad_spec (Printf.sprintf "%S: bad seed %S" clause s)))
      in
      let mode =
        match int_of_string_opt prob with
        | Some k when k >= 1 -> Nth k
        | Some k ->
            raise
              (Bad_spec (Printf.sprintf "%S: hit count %d must be >= 1" clause k))
        | None -> (
            match float_of_string_opt prob with
            | Some p when p > 0. && p <= 1. -> Prob (p, seed)
            | Some p ->
                raise
                  (Bad_spec
                     (Printf.sprintf "%S: probability %g outside (0,1]" clause p))
            | None ->
                raise
                  (Bad_spec (Printf.sprintf "%S: bad trigger %S" clause prob)))
      in
      (fp_name, mode)

(** [arm_spec "pool.worker_body@2,ndarray.alloc@0.1:7"] — arm every
    comma-separated clause; raises {!Bad_spec} on a malformed clause. *)
let arm_spec spec =
  String.split_on_char ',' spec
  |> List.filter (fun s -> String.trim s <> "")
  |> List.iter (fun clause ->
         let fp_name, mode = parse_clause (String.trim clause) in
         arm (register fp_name) mode)

(** Arm from [MMC_FAILPOINTS], if set.  Raises {!Bad_spec} on a malformed
    value, like {!arm_spec}. *)
let arm_from_env () =
  match Sys.getenv_opt "MMC_FAILPOINTS" with
  | Some spec -> arm_spec spec
  | None -> ()

(** Disarm every failpoint and zero all hit/fired counters.  Handles stay
    valid (they are interned by name). *)
let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ fp ->
          arm fp Off;
          Atomic.set fp.hits 0;
          Atomic.set fp.fired 0)
        registry)

let hit_count fp = Atomic.get fp.hits
let fired_count fp = Atomic.get fp.fired

(** [hits name] / [fired name] — counters by name; 0 for a name no site
    has registered and no spec has armed. *)
let hits name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some fp -> Atomic.get fp.hits
      | None -> 0)

let fired name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some fp -> Atomic.get fp.fired
      | None -> 0)

(** All registered failpoints as [(name, hits, fired)], sorted by name. *)
let all () =
  locked (fun () ->
      Hashtbl.fold
        (fun _ fp acc ->
          (fp.fp_name, Atomic.get fp.hits, Atomic.get fp.fired) :: acc)
        registry [])
  |> List.sort compare

(** Export non-zero hit/fired counts as telemetry gauges
    ([failpoint.<name>.hits] / [.fired]) so [--stats] shows which faults
    actually fired.  No-op while telemetry is disabled. *)
let export_gauges () =
  List.iter
    (fun (n, h, f) ->
      if h > 0 then begin
        Telemetry.set_gauge (Printf.sprintf "failpoint.%s.hits" n)
          (float_of_int h);
        Telemetry.set_gauge (Printf.sprintf "failpoint.%s.fired" n)
          (float_of_int f)
      end)
    (all ())
