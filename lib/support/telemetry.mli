(** Telemetry: phase tracing, pipeline counters and runtime-pool metrics.

    The paper's evaluation (§V, §VI) reasons about {e where} time goes —
    with-loop fusion, slice-copy elimination, enhanced fork-join vs naive
    spawn, composition cost.  This module makes those sub-operations
    observable: nestable spans over the monotonic clock, named atomic
    counters and gauges, a human-readable summary table, and a Chrome
    trace-event JSON export that opens directly in [chrome://tracing] or
    Perfetto.

    Zero library dependencies — time comes from
    [clock_gettime(CLOCK_MONOTONIC)] via a local C stub, so spans are
    immune to wall-clock (NTP) steps — and {b disabled by default}: every
    probe first reads one atomic flag, so an un-instrumented run pays a
    single load-and-branch per probe and no allocation. *)

val now_ns : unit -> int
(** Monotonic nanoseconds since the telemetry epoch (module
    initialisation).  The time source used for spans; also used by the
    runtime pool for busy-time and barrier-wait accounting. *)

(** {1 Global switch} *)

val set_enabled : bool -> unit
(** Turn collection on or off.  Off by default. *)

val on : unit -> bool
(** Is collection currently enabled? *)

val reset : unit -> unit
(** Zero every counter, clear all gauges and recorded spans.  Counter
    handles stay valid (they are interned by name). *)

(** {1 Counters and gauges} *)

type counter
(** A named monotonic counter.  Bumping is a single [Atomic.fetch_and_add]
    when telemetry is enabled and a read-and-branch when disabled, so
    handles can live on hot paths (worker loops, per-element stores). *)

val counter : string -> counter
(** [counter name] — intern a counter.  Calling again with the same name
    returns the same underlying cell. *)

val bump : counter -> unit
(** Increment by one (no-op when disabled). *)

val add : counter -> int -> unit
(** Increment by [n] (no-op when disabled). *)

val read : counter -> int
(** Current value (readable even when disabled). *)

val counter_name : counter -> string

val set_gauge : string -> float -> unit
(** Record a point-in-time measurement (LALR state count, worker busy
    seconds, …).  Last write wins.  No-op when disabled. *)

(** {1 Spans} *)

type span = {
  sp_name : string;
  sp_phase : string;  (** category, e.g. "compose", "parse", "run" *)
  sp_tid : int;  (** domain id that executed the span *)
  sp_depth : int;  (** nesting depth within that domain, 0 = outermost *)
  sp_start : float;  (** seconds since telemetry epoch *)
  sp_dur : float;  (** seconds *)
  sp_args : (string * string) list;
      (** extra key/value payload (e.g. source provenance), carried into
          the Chrome-trace ["args"] object *)
}

val with_span :
  ?phase:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span ~phase ~args name f] — run [f], recording its wall-clock
    duration as a span when telemetry is enabled.  Spans nest: the depth is
    tracked per domain.  The span is recorded even if [f] raises.  When
    disabled, [with_span] is just [f ()]. *)

(** {1 Inspection} *)

val spans : unit -> span list
(** All completed spans in completion order (a nested span therefore
    appears before its parent). *)

val counters : unit -> (string * int) list
(** Every interned counter with its value, sorted by name (zeros
    included). *)

val gauges : unit -> (string * float) list
(** All gauges, sorted by name. *)

val span_totals : unit -> (string * int * float) list
(** Aggregated spans: [(name, calls, total seconds)], sorted by total
    time descending. *)

(** {1 Exporters} *)

val json_string : string -> string
(** JSON-escape and quote a string.  Shared with other modules emitting
    hand-rolled JSON (the profiler report), so all exports escape
    identically. *)

val json_obj : (string * string) list -> string
(** [json_obj fields] — a JSON object from already-rendered value
    strings; keys are escaped with {!json_string}. *)

val pp_summary : Format.formatter -> unit -> unit
(** Human-readable table: span aggregates, non-zero counters, gauges. *)

val to_json : unit -> string
(** Machine-readable snapshot:
    [{"counters":{..},"gauges":{..},"spans":{name:{"calls":n,"total_ms":t}}}].
    Used by the benchmark harness for [BENCH_telemetry.json]. *)

val write_chrome_trace : string -> unit
(** [write_chrome_trace path] — write all recorded spans (as ["X"]
    complete events, one track per domain) and the final counter/gauge
    values (as ["C"] counter events) in the Chrome trace-event format. *)
