(** Translation of the (typechecked) extended AST down to the plain-C IR
    (§II: the extended translator "translate[s] it down to plain C code").

    Extensions contribute lowering hooks exactly as they contribute
    checking hooks; the host lowers its own constructs and the host-
    packaged tuples.

    Reference counting (§III-B, and the memory management of §III-C) is
    inserted here when [rc] is enabled (the refptr extension's
    contribution): matrix handles are {e owned} by the variables they are
    bound to; assignments release the old referent and retain aliases;
    scope exits, [return], [break] and [continue] release what goes out of
    scope; statement-level temporaries (e.g. a discarded function result
    or an intermediate slice) are released at the end of their statement.
    The interpreter's live-allocation registry turns these conventions
    into a machine-checked no-leak/no-double-free invariant. *)

open Cir.Ir
module S = Runtime.Scalar

exception Lower_error of string * Ast.span

let err span fmt =
  Format.kasprintf (fun m -> raise (Lower_error (m, span))) fmt

type scope = {
  mutable owned : string list;  (** matrix vars owned by this scope *)
  is_loop : bool;  (** break/continue release down to the loop scope *)
}

type t = {
  gensym : Support.Gensym.t;
  funcs : (string, Types.ty list * Types.ty) Hashtbl.t;
  hooks : hooks list;
  rc : bool;
  mutable scopes : scope list;
  mutable params : string list;  (** borrowed matrix parameters *)
  mutable pending : string list;
      (** owned statement-level temporaries awaiting release *)
  mutable extra_funcs : func list;
      (** functions synthesised by lowerings — e.g. matrixMap bodies are
          "lifted out into a new function so that the spawned threads can
          get direct access" (§III-A5) *)
  mutable cur_body : Ast.stmt list;
      (** the (checked) body of the function currently being lowered —
          whole-function context for extension lowerings whose validity
          depends on later statements (e.g. the matrix extension's
          alias-safety analysis for slice-copy elimination) *)
  mutable cur_fname : string;
      (** name of the function currently being lowered — synthesised
          helpers record it as their [f_origin] so per-function reporting
          can attribute their cost to the user function *)
  warn : Support.Diag.t -> unit;
      (** sink for non-fatal lowering diagnostics (e.g. a transform script
          skipped because auto-parallelization changed the loop nest) *)
}

(** One extension's lowering contribution; [None] declines. *)
and hooks = {
  l_name : string;
  l_ty : t -> Ast.ext_ty -> Types.ty option;
  l_expr :
    t -> Ast.ext_expr -> Types.ty -> Ast.span -> (stmt list * expr) option;
  l_stmt : t -> Ast.ext_stmt -> Ast.span -> stmt list option;
  l_binop :
    t -> Ast.binop -> Ast.expr -> Ast.expr -> Types.ty -> Ast.span ->
    (stmt list * expr) option;
  l_unop : t -> Ast.unop -> Ast.expr -> Types.ty -> Ast.span -> (stmt list * expr) option;
  l_call :
    t -> string -> Ast.expr list -> Types.ty -> Ast.span ->
    expected:Types.ty option -> (stmt list * expr) option;
  l_subscript :
    t -> Ast.expr -> Ast.index list -> Types.ty -> Ast.span ->
    (stmt list * expr) option;
  l_subscript_assign :
    t -> Ast.expr -> Ast.index list -> Ast.expr -> Ast.span -> stmt list option;
}

let no_hooks name =
  {
    l_name = name;
    l_ty = (fun _ _ -> None);
    l_expr = (fun _ _ _ _ -> None);
    l_stmt = (fun _ _ _ -> None);
    l_binop = (fun _ _ _ _ _ _ -> None);
    l_unop = (fun _ _ _ _ _ -> None);
    l_call = (fun _ _ _ _ _ ~expected:_ -> None);
    l_subscript = (fun _ _ _ _ _ -> None);
    l_subscript_assign = (fun _ _ _ _ _ -> None);
  }

let first_hook f t = List.find_map (fun h -> f h) t.hooks
let fresh t hint = Support.Gensym.fresh t.gensym hint

let ety (e : Ast.expr) : Types.ty =
  match e.Ast.ety with
  | Some ty -> ty
  | None ->
      err e.Ast.espan "internal: expression reached lowering without a type"

let is_mat = function Types.TMat _ -> true | _ -> false

(* --- ownership helpers ------------------------------------------------------ *)

let push_scope ?(is_loop = false) t = t.scopes <- { owned = []; is_loop } :: t.scopes
let own t name = (List.hd t.scopes).owned <- name :: (List.hd t.scopes).owned

(** Remember a statement-level owned temporary (also used by extension
    lowerings for intermediate slices etc.). *)
let add_pending t name = t.pending <- name :: t.pending

(** Consume ownership of [e] if it is a pending temp: returns true when the
    callee now owns the value without an extra retain. *)
let consume_pending t (e : expr) =
  match e with
  | Var v when List.mem v t.pending ->
      t.pending <- List.filter (fun x -> x <> v) t.pending;
      true
  | _ -> false

(* RC traffic accounting (the lower.rc_incs / lower.rc_decs telemetry
   counters and the per-function "rc" remarks) lives in the pipeline's rc
   reporting pass, which counts the operations present in the FINAL
   program — the baseline lowering emits RC ops inside decision sites
   that later passes may delete. *)
let rc_dec t e = if t.rc then [ RcDec e ] else []
let rc_inc t e = if t.rc then [ RcInc e ] else []

let drain_pending t =
  let rel = List.concat_map (fun v -> rc_dec t (Var v)) t.pending in
  t.pending <- [];
  rel

let pop_scope t =
  let sc = List.hd t.scopes in
  t.scopes <- List.tl t.scopes;
  List.concat_map (fun v -> rc_dec t (Var v)) sc.owned

(* Releases for early exits: all owned vars in scopes down to (and
   including) the innermost loop scope for break/continue, or the whole
   stack for return. *)
let release_for_break t =
  let rec go = function
    | [] -> []
    | sc :: rest ->
        let this = List.concat_map (fun v -> rc_dec t (Var v)) sc.owned in
        if sc.is_loop then this else this @ go rest
  in
  go t.scopes

let release_for_return t ~except =
  List.concat_map
    (fun sc ->
      List.concat_map
        (fun v -> if List.mem v except then [] else rc_dec t (Var v))
        sc.owned)
    t.scopes

(* Variables whose ownership transfers to the caller through the returned
   value: the value itself, or matrix fields of a returned tuple. *)
let rec transfer_vars (rty : Types.ty) (ee : expr) : string list =
  match (rty, ee) with
  | Types.TMat _, Var v -> [ v ]
  | Types.TTuple ts, TupleE es when List.length ts = List.length es ->
      List.concat (List.map2 transfer_vars ts es)
  | _ -> []

(* --- coercions ----------------------------------------------------------------- *)

let coerce ~from ~to_ (e : expr) : expr =
  match (from, to_) with
  | Types.TInt, Types.TFloat -> Unop (FloatOfInt, e)
  | Types.TFloat, Types.TInt -> Unop (IntOfFloat, e)
  | _ -> e

let resolve_ty t (te : Ast.ty_expr) span : Types.ty =
  let rec go = function
    | Ast.TyInt -> Types.TInt
    | Ast.TyFloat -> Types.TFloat
    | Ast.TyBool -> Types.TBool
    | Ast.TyVoid -> Types.TVoid
    | Ast.TyTuple ts -> Types.TTuple (List.map go ts)
    | Ast.TyExt ext -> (
        match first_hook (fun h -> h.l_ty t ext) t with
        | Some ty -> ty
        | None -> err span "no extension lowers this type")
  in
  go te

(* --- expressions ------------------------------------------------------------------ *)

let rec lower_expr ?expected t (e : Ast.expr) : stmt list * expr =
  let span = e.Ast.espan in
  let ty = ety e in
  match e.Ast.e with
  | Ast.IntLit i -> ([], Int i)
  | Ast.FloatLit f -> ([], Float f)
  | Ast.BoolLit b -> ([], Bool b)
  | Ast.StrLit s -> ([], Str s)
  | Ast.Ident v -> ([], Var v)
  | Ast.Bin (op, a, b) -> (
      let ta = ety a and tb = ety b in
      if Types.is_scalar ta && Types.is_scalar tb && host_binop_ok op then
        let sa, ea = lower_expr t a and sb, eb = lower_expr t b in
        let target =
          match op with
          | Ast.BArith _ -> ty
          | _ -> (
              match Types.promote ta tb with Some p -> p | None -> ta)
        in
        let ea = coerce ~from:ta ~to_:target ea in
        let eb = coerce ~from:tb ~to_:target eb in
        let cop =
          match op with
          | Ast.BArith o -> Arith o
          | Ast.BCmp o -> Cmp o
          | Ast.BLogic o -> Logic o
          | Ast.BExt _ -> assert false
        in
        (sa @ sb, Binop (cop, ea, eb))
      else
        match first_hook (fun h -> h.l_binop t op a b ty span) t with
        | Some r -> r
        | None -> err span "no extension lowers this operator application")
  | Ast.Un (op, a) -> (
      let ta = ety a in
      if Types.is_scalar ta then
        let sa, ea = lower_expr t a in
        (sa, Unop ((match op with Ast.UNeg -> Neg | Ast.UNot -> Not), ea))
      else
        match first_hook (fun h -> h.l_unop t op a ty span) t with
        | Some r -> r
        | None -> err span "no extension lowers this unary operator")
  | Ast.Cast (_, a) ->
      let sa, ea = lower_expr t a in
      (sa, coerce ~from:(ety a) ~to_:ty ea)
  | Ast.CallE (name, args) -> (
      match Hashtbl.find_opt t.funcs name with
      | Some (ptys, rty) ->
          let stmts, argv =
            List.fold_left2
              (fun (acc_s, acc_a) a pty ->
                let sa, ea = lower_expr t a in
                let ea = coerce ~from:(ety a) ~to_:pty ea in
                (acc_s @ sa, acc_a @ [ ea ]))
              ([], []) args ptys
          in
          let call = Call (name, argv) in
          if is_mat rty || contains_mat rty then begin
            (* bind the owned result so it can be released if discarded *)
            let tmp = fresh t "call" in
            add_pending t tmp;
            (stmts @ [ Decl (Types.to_ctype rty, tmp, Some call) ], Var tmp)
          end
          else (stmts, call)
      | None -> (
          match
            first_hook (fun h -> h.l_call t name args ty span ~expected) t
          with
          | Some r -> r
          | None -> err span "no extension lowers call to '%s'" name))
  | Ast.TupleLit es ->
      let stmts, parts =
        List.fold_left
          (fun (acc_s, acc_e) x ->
            let sx, ex = lower_expr t x in
            (acc_s @ sx, acc_e @ [ ex ]))
          ([], []) es
      in
      (stmts, TupleE parts)
  | Ast.Subscript (base, indices) -> (
      match
        first_hook (fun h -> h.l_subscript t base indices ty span) t
      with
      | Some r -> r
      | None -> err span "no extension lowers subscripting")
  | Ast.ExtE ext -> (
      match first_hook (fun h -> h.l_expr t ext ty span) t with
      | Some r -> r
      | None -> err span "no extension lowers this expression")

and host_binop_ok = function Ast.BExt _ -> false | _ -> true

and contains_mat = function
  | Types.TMat _ -> true
  | Types.TTuple ts -> List.exists contains_mat ts
  | _ -> false

(* --- statements --------------------------------------------------------------------- *)

let rec lower_stmt t (st : Ast.stmt) : stmt list =
  let span = st.Ast.sspan in
  let stmts =
    match st.Ast.s with
    | Ast.DeclS (te, name, init) -> (
        let ty = resolve_ty t te span in
        let cty = Types.to_ctype ty in
        match init with
        | None ->
            (* Matrices must be initialised before use; plain decl is fine
               for scalars, and for matrices it is a NULL handle the
               checker allows only when every path assigns first (the
               paper's programs follow this; see Fig 8's `trough`).  The
               variable still owns whatever it ends up holding. *)
            if is_mat ty then own t name;
            [ Decl (cty, name, None) ]
        | Some ie ->
            let si, ei = lower_expr ~expected:ty t ie in
            let ei = coerce ~from:(ety ie) ~to_:ty ei in
            let retain =
              if is_mat ty && t.rc then
                if consume_pending t ei then []
                else rc_inc t (Var name)
              else []
            in
            if is_mat ty then own t name;
            (si @ [ Decl (cty, name, Some ei) ]) @ retain)
    | Ast.AssignS (lhs, rhs) -> lower_assign t span lhs rhs
    | Ast.IfS (c, a, b) ->
        let sc, ec = lower_expr t c in
        sc @ [ If (ec, lower_block t a, lower_block t b) ]
    | Ast.WhileS (c, body) ->
        let sc, ec = lower_expr t c in
        let cond_drain = drain_pending t in
        if sc = [] && cond_drain = [] then
          [ While (ec, lower_block ~is_loop:true t body) ]
        else
          (* The condition needs prelude statements (e.g. matrix element
             loads bound to temps): evaluate them at the top of every
             iteration — while (1) { prelude; if (!c) break; body } —
             releasing any condition temporaries on both paths. *)
          let body' = lower_block ~is_loop:true t body in
          [
            While
              ( Bool true,
                sc
                @ [ If (Unop (Not, ec), cond_drain @ [ Break ], cond_drain) ]
                @ body' );
          ]
    | Ast.ForS (init, cond, step, body) ->
        push_scope t;
        let si = match init with Some s -> lower_stmt t s | None -> [] in
        let sc, ec =
          match cond with
          | Some c -> lower_expr t c
          | None -> ([], Bool true)
        in
        let cond_drain = drain_pending t in
        let sstep = match step with Some s -> lower_stmt t s | None -> [] in
        (* C semantics: `continue` in a for-loop still runs the step.  The
           lowering appends the step at the bottom of the while body, which
           a continue would skip — so loop-level continues (not those bound
           to inner loops) are rewritten to run the step first. *)
        let rec patch_continue (st : Ast.stmt) : Ast.stmt =
          match st.Ast.s with
          | Ast.ContinueS when step <> None ->
              { st with Ast.s = Ast.BlockS [ Option.get step; st ] }
          | Ast.IfS (c, a, b) ->
              { st with Ast.s = Ast.IfS (c, List.map patch_continue a,
                                         List.map patch_continue b) }
          | Ast.BlockS b ->
              { st with Ast.s = Ast.BlockS (List.map patch_continue b) }
          | _ -> st (* continues inside nested loops bind to those loops *)
        in
        let body = List.map patch_continue body in
        let body' = lower_block ~is_loop:true t body in
        let release = pop_scope t in
        let loop =
          if sc = [] && cond_drain = [] then
            [ While (ec, body' @ sstep) ]
          else
            [
              While
                ( Bool true,
                  sc
                  @ [ If (Unop (Not, ec), cond_drain @ [ Break ], cond_drain) ]
                  @ body' @ sstep );
            ]
        in
        si @ loop @ release
    | Ast.ReturnS None -> release_for_return t ~except:[] @ [ Return None ]
    | Ast.ReturnS (Some e) ->
        let se, ee = lower_expr t e in
        let rty = ety e in
        (* The return value must be computed BEFORE the scope releases run
           (it may read matrices that the releases free), so any non-trivial
           expression is bound to a temporary first. *)
        let bind, ret_expr =
          match ee with
          | Var _ | Int _ | Float _ | Bool _ -> ([], ee)
          | _ ->
              let tmp = fresh t "ret" in
              ([ Decl (Types.to_ctype rty, tmp, Some ee) ], Var tmp)
        in
        (* Ownership of every matrix reachable from the returned value
           transfers to the caller: borrowed parameters are retained,
           pending temporaries stop being drained, scope-owned locals stop
           being released.  Decided on the original expression [ee], whose
           variables name the transferred handles. *)
        let except = ref [] and retain = ref [] in
        if contains_mat rty then
          List.iter
            (fun v ->
              if List.mem v t.params then retain := !retain @ rc_inc t (Var v)
              else if List.mem v t.pending then
                t.pending <- List.filter (fun x -> x <> v) t.pending
              else except := v :: !except)
            (transfer_vars rty ee);
        se @ bind @ !retain @ drain_pending t
        @ release_for_return t ~except:!except
        @ [ Return (Some ret_expr) ]
    | Ast.BreakS -> release_for_break t @ [ Break ]
    | Ast.ContinueS -> release_for_break t @ [ Continue ]
    | Ast.ExprStmt e ->
        let se, ee = lower_expr t e in
        (* Pure values are dropped; effectful calls are kept. *)
        let discard =
          match ee with
          | Int _ | Float _ | Bool _ | Var _ -> []
          | ee -> [ ExprS ee ]
        in
        se @ discard
    | Ast.BlockS body -> [ Block (lower_block t body) ]
    | Ast.ExtS ext -> (
        match first_hook (fun h -> h.l_stmt t ext span) t with
        | Some ss -> ss
        | None -> err span "no extension lowers this statement")
  in
  (* Wrap the whole lowered statement (including temp releases) in a
     provenance block.  [Located] is transparent to emission, scoping and
     transformation matching, so this is observable only to the profiler
     and the [#line] emitter. *)
  match stmts @ drain_pending t with
  | [] -> []
  | ss -> [ Located (span, ss) ]

and lower_block ?(is_loop = false) t body : stmt list =
  push_scope ~is_loop t;
  let stmts = List.concat_map (lower_stmt t) body in
  stmts @ pop_scope t

and lower_assign t span (lhs : Ast.expr) (rhs : Ast.expr) : stmt list =
  match lhs.Ast.e with
  | Ast.Ident v when is_mat (ety lhs) && Types.is_scalar (ety rhs) ->
      (* Whole-matrix scalar fill: m = 0 writes every element (the matrix
         extension's overloaded assignment). *)
      let elem =
        match ety lhs with
        | Types.TMat (e, _) -> e
        | _ -> assert false
      in
      let sr, er = lower_expr t rhs in
      let er = coerce ~from:(ety rhs) ~to_:(Types.elem_ty elem) er in
      let i = fresh t "i" in
      sr
      @ [
          For
            {
              index = i;
              bound = MSize (Var v);
              body = [ MSetFlat (Var v, Var i, er) ];
              prov = Some span;
            };
        ]
  | Ast.Ident v ->
      let ty = ety lhs in
      let sr, er = lower_expr ~expected:ty t rhs in
      let er = coerce ~from:(ety rhs) ~to_:ty er in
      if is_mat ty && t.rc then
        let retain = if consume_pending t er then [] else rc_inc t er in
        (* Release the old referent before rebinding (retain-then-release
           order guards the self-assignment m = m). *)
        sr @ retain @ rc_dec t (Var v) @ [ Assign (LVar v, er) ]
      else sr @ [ Assign (LVar v, er) ]
  | Ast.Subscript (base, indices) -> (
      match
        first_hook (fun h -> h.l_subscript_assign t base indices rhs span) t
      with
      | Some ss -> ss
      | None -> err span "no extension lowers subscript assignment")
  | Ast.TupleLit parts ->
      (* host-packaged tuples: destructuring assignment (§III-B) *)
      let sr, er = lower_expr t rhs in
      (* An owned temporary tuple transfers its inner references to the
         assigned variables; a tuple aliased from elsewhere must retain
         them. *)
      let transferred = consume_pending t er in
      let tmp = fresh t "tup" in
      let decl = Decl (Types.to_ctype (ety rhs), tmp, Some er) in
      let assigns =
        List.concat
          (List.mapi
             (fun i (p : Ast.expr) ->
               match p.Ast.e with
               | Ast.Ident v ->
                   let pty = ety p in
                   if is_mat pty && t.rc then
                     rc_dec t (Var v)
                     @ [ Assign (LVar v, Field (Var tmp, i)) ]
                     @ (if transferred then [] else rc_inc t (Var v))
                   else [ Assign (LVar v, Field (Var tmp, i)) ]
               | _ ->
                   err p.Ast.espan
                     "only variables can appear in a destructuring pattern")
             parts)
      in
      sr @ (decl :: assigns)
  | _ -> err span "unsupported assignment target"

(* --- programs -------------------------------------------------------------------------- *)

let lower_fundef t (f : Ast.fundef) : func =
  t.scopes <- [];
  t.pending <- [];
  t.cur_body <- f.Ast.body;
  t.cur_fname <- f.Ast.fname;
  push_scope t;
  t.params <-
    List.filter_map
      (fun (te, name) ->
        match resolve_ty t te f.Ast.fspan with
        | Types.TMat _ -> Some name
        | _ -> None)
      f.Ast.params;
  let body = List.concat_map (lower_stmt t) f.Ast.body in
  let release = pop_scope t in
  let rec ends_with_return ss =
    match List.rev ss with
    | Return _ :: _ -> true
    | Located (_, b) :: _ -> ends_with_return b
    | _ -> false
  in
  let needs_trailing_release = not (ends_with_return body) in
  {
    f_name = f.Ast.fname;
    f_params =
      List.map
        (fun (te, name) -> (Types.to_ctype (resolve_ty t te f.Ast.fspan), name))
        f.Ast.params;
    f_ret = Types.to_ctype (resolve_ty t f.Ast.ret f.Ast.fspan);
    f_body = (if needs_trailing_release then body @ release else body);
    f_span = Some f.Ast.fspan;
    f_origin = None;
  }

(** How many times {!lower_program} has run in this process.  The pass
    pipeline made lowering a once-per-compilation affair ([mmc explain]
    used to re-lower once per requested stage); the equivalence suite
    asserts on deltas of this counter.  A plain ref, not a telemetry
    counter, so the assertion needs no [Telemetry.set_enabled]. *)
let runs = ref 0

(** [lower_program hooks ~rc prog] — translate a checked program to the
    {e baseline} CIR: every optimization decision (with-loop fusion,
    slice-copy aliasing, auto-parallelization, transform scripts) is
    recorded as a [Site] annotation around the unoptimized statements it
    would rewrite; the CIR pass pipeline consumes the sites.  [rc]
    enables reference-count insertion (the refptr extension).  Returns
    the program together with the gensym allocation trail the pipeline
    renumbers surviving temporaries from. *)
let lower_program ?(warn = fun _ -> ()) (hooks : hooks list) ~(rc : bool)
    (prog : Ast.program) : program * (string * string) list =
  incr runs;
  let t =
    {
      gensym = Support.Gensym.create ();
      funcs = Hashtbl.create 16;
      hooks;
      rc;
      scopes = [];
      params = [];
      pending = [];
      extra_funcs = [];
      cur_body = [];
      cur_fname = "";
      warn;
    }
  in
  List.iter
    (fun (f : Ast.fundef) ->
      Hashtbl.replace t.funcs f.Ast.fname
        ( List.map (fun (te, _) -> resolve_ty t te f.Ast.fspan) f.Ast.params,
          resolve_ty t f.Ast.ret f.Ast.fspan ))
    prog;
  (* Bind before reading [extra_funcs]: it is filled during lowering. *)
  let user_funcs = List.map (lower_fundef t) prog in
  let funcs = user_funcs @ t.extra_funcs in
  let main =
    if List.exists (fun (f : Ast.fundef) -> f.Ast.fname = "main") prog then
      "main"
    else
      match prog with
      | f :: _ -> f.Ast.fname
      | [] -> "main"
  in
  ({ funcs; main }, Support.Gensym.trail t.gensym)
