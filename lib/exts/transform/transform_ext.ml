(** The explicit program-transformation extension (§V).

    Adds a [transform] clause to assignments whose right-hand side is a
    with-loop, letting the programmer direct how the generated for-loops
    are restructured (Fig 9):

    {v
      means = with([0,0] <= [i,j] < [m,n])
              genarray([m,n], …)
        transform split j by 4, jin, jout.
                  vectorize jin.
                  parallelize i;
    v}

    Transformations are applied "in the order in which they appear" to the
    loop nest generated for that statement, by {!Cir.Transforms} — split,
    vectorize (4×f32 simulated SSE), parallelize, reorder, interchange,
    unroll, and tile ("two splits and a reorder").  The extension's
    semantic analysis reproduces the paper's check "that the loop indices
    in the transformations correspond to loops in the code being
    transformed": a bad index is reported with the loops actually in
    scope. *)

open Grammar.Cfg
module A = Cminus.Ast
module T = Cir.Transforms

let name = "transform"

type A.ext_stmt +=
  | STransformAssign of A.expr * A.expr * T.t list
      (** lhs, rhs, transformation script *)

let () =
  A.register_ext_stmt_printer (function
    | STransformAssign (_, _, ts) ->
        Some
          ("transform "
          ^ String.concat ". " (List.map T.to_string ts))
    | _ -> None)

(* --- concrete syntax ----------------------------------------------------------- *)

let grammar : Grammar.Cfg.t =
  let kw = keyword ~owner:name in
  let p = production ~owner:name in
  {
    name;
    terminals =
      [
        kw "KW_transform" "transform";
        kw "KW_split" "split";
        kw "KW_by" "by";
        kw "KW_vectorize" "vectorize";
        kw "KW_parallelize" "parallelize";
        kw "KW_reorder" "reorder";
        kw "KW_interchange" "interchange";
        kw "KW_unroll" "unroll";
        kw "KW_tile" "tile";
        kw "DOT" ".";
      ];
    layout = [];
    productions =
      [
        p ~name:"st_transform" "Simple"
          [ N "Postfix"; T "ASSIGN"; N "E"; T "KW_transform"; N "TransformList" ];
        p ~name:"tl_one" "TransformList" [ N "Transform" ];
        p ~name:"tl_cons" "TransformList"
          [ N "TransformList"; T "DOT"; N "Transform" ];
        p ~name:"tr_split" "Transform"
          [
            T "KW_split"; T "ID"; T "KW_by"; T "INTLIT"; T "COMMA"; T "ID";
            T "COMMA"; T "ID";
          ];
        p ~name:"tr_vectorize" "Transform" [ T "KW_vectorize"; T "ID" ];
        p ~name:"tr_parallelize" "Transform" [ T "KW_parallelize"; T "ID" ];
        p ~name:"tr_reorder" "Transform" [ T "KW_reorder"; N "TIdList" ];
        p ~name:"tidl_one" "TIdList" [ T "ID" ];
        p ~name:"tidl_cons" "TIdList" [ N "TIdList"; T "COMMA"; T "ID" ];
        p ~name:"tr_interchange" "Transform"
          [ T "KW_interchange"; T "ID"; T "COMMA"; T "ID" ];
        p ~name:"tr_unroll" "Transform"
          [ T "KW_unroll"; T "ID"; T "KW_by"; T "INTLIT" ];
        p ~name:"tr_tile" "Transform"
          [ T "KW_tile"; T "ID"; T "COMMA"; T "ID"; T "KW_by"; T "INTLIT" ];
      ];
    start = None;
  }

(* --- tree -> AST ------------------------------------------------------------------ *)

module Tree = Parser.Tree
module B = Cminus.Build

let lexeme t =
  match t with
  | Tree.Leaf tok -> tok.Lexer.Token.lexeme
  | _ -> B.err (Tree.span t) "expected a token"

let rec tidl t =
  match t with
  | Tree.Node (p, [ id ], _) when p.Grammar.Cfg.p_name = "tidl_one" ->
      [ lexeme id ]
  | Tree.Node (p, [ rest; _; id ], _) when p.Grammar.Cfg.p_name = "tidl_cons"
    ->
      tidl rest @ [ lexeme id ]
  | _ -> B.err (Tree.span t) "malformed index list"

let build_transform t : T.t =
  match t with
  | Tree.Node (p, kids, _) -> (
      match (p.Grammar.Cfg.p_name, kids) with
      | "tr_split", [ _; target; _; factor; _; inner; _; outer ] ->
          T.Split
            {
              target = lexeme target;
              factor = int_of_string (lexeme factor);
              inner = lexeme inner;
              outer = lexeme outer;
            }
      | "tr_vectorize", [ _; id ] -> T.Vectorize (lexeme id)
      | "tr_parallelize", [ _; id ] -> T.Parallelize (lexeme id)
      | "tr_reorder", [ _; ids ] -> T.Reorder (tidl ids)
      | "tr_interchange", [ _; a; _; b ] -> T.Interchange (lexeme a, lexeme b)
      | "tr_unroll", [ _; id; _; n ] ->
          T.Unroll { target = lexeme id; factor = int_of_string (lexeme n) }
      | "tr_tile", [ _; a; _; b; _; n ] ->
          T.Tile
            {
              outer_ix = lexeme a;
              inner_ix = lexeme b;
              size = int_of_string (lexeme n);
            }
      | s, _ -> B.err (Tree.span t) "unknown transformation %s" s)
  | _ -> B.err (Tree.span t) "malformed transformation"

let rec build_tl t : T.t list =
  match t with
  | Tree.Node (p, [ x ], _) when p.Grammar.Cfg.p_name = "tl_one" ->
      [ build_transform x ]
  | Tree.Node (p, [ rest; _; x ], _) when p.Grammar.Cfg.p_name = "tl_cons" ->
      build_tl rest @ [ build_transform x ]
  | _ -> B.err (Tree.span t) "malformed transformation list"

let register () =
  Hashtbl.replace B.ext_stmt_builders "st_transform"
    (fun (ctx : B.ctx) t ->
      match t with
      | Tree.Node (_, [ lhs; _; rhs; _; tl ], span) ->
          [
            A.mk_stmt
              (A.ExtS
                 (STransformAssign (ctx.B.expr lhs, ctx.B.expr rhs, build_tl tl)))
              span;
          ]
      | _ -> B.err (Tree.span t) "malformed transform statement")

(* --- semantic analysis -------------------------------------------------------------- *)

let check_hooks : Cminus.Check.hooks =
  {
    (Cminus.Check.no_hooks name) with
    Cminus.Check.h_stmt =
      (fun t ext span ->
        match ext with
        | STransformAssign (lhs, rhs, ts) ->
            Cminus.Check.check_assign t span lhs rhs;
            (* static sanity of the script itself *)
            List.iter
              (fun tr ->
                match tr with
                | T.Split { factor; _ } when factor < 2 ->
                    Cminus.Check.error t span
                      "split factor must be at least 2"
                | T.Unroll { factor; _ } when factor < 2 ->
                    Cminus.Check.error t span
                      "unroll factor must be at least 2"
                | T.Tile { size; _ } when size < 2 ->
                    Cminus.Check.error t span "tile size must be at least 2"
                | _ -> ())
              ts;
            true
        | _ -> false);
  }

(* --- lowering: record the script as a site on the generated loops --------------------- *)

type Cir.Ir.site +=
  | Script of { ts : T.t list; span : Support.Pos.span }
      (** Payload: the lowered assignment's statements (the loop nest the
          script restructures).  The transform {!pass} applies the clauses
          in order — after auto-parallelization in the default pipeline,
          which is exactly the scheduling conflict §V worries about. *)

(* Demote every ParFor back to a plain For (recursively).  Used only to
   decide whether a script that failed to bind would have bound against
   the sequential nest — i.e. whether auto-parallelization is what broke
   it. *)
let demote_parfors stmts =
  Cir.Ir.map_stmts Fun.id
    (function Cir.Ir.ParFor l -> Cir.Ir.For l | s -> s)
    stmts

(* The single structured description of a skipped script (the warn-and-skip
   path below): one {!Support.Remark.t} value is the source of truth, and
   the stderr warning, the remark stream and the [--json] report all
   derive from it — so the skip reason can never drift between outputs. *)
let skip_remark ~span msg : Support.Remark.t =
  {
    Support.Remark.pass = "transform";
    kind = Support.Remark.Skipped;
    span;
    message =
      Printf.sprintf
        "transformation script skipped: auto-parallelization replaced this \
         statement's for-nest with a parallel loop the script cannot bind \
         to (%s); keeping the auto-parallelized loops untransformed"
        msg;
    details =
      [
        ("error", msg);
        ("probe", "script binds against the For-demoted sequential nest");
      ];
  }

let lower_hooks : Cminus.Lower.hooks =
  {
    (Cminus.Lower.no_hooks name) with
    Cminus.Lower.l_stmt =
      (fun t ext span ->
        match ext with
        | STransformAssign (lhs, rhs, ts) ->
            let stmts = Cminus.Lower.lower_assign t span lhs rhs in
            Some [ Cir.Ir.Site (Script { ts; span }, stmts) ]
        | _ -> None);
  }

(* --- the transform pass: apply each recorded script ----------------------------------- *)

let pass : Cir.Pass.t =
  {
    Cir.Pass.name = "transform";
    default_on = true;
    renumbers = false;
    (* Snapshots here are per applied clause, not one per program: the
       pass records its own instead of taking the manager's. *)
    managed_snapshot = false;
    run =
      (fun ctx ~enabled p ->
        Cir.Pass.rewrite_sites
          (fun site payload ->
            match site with
            | Script { ts = []; _ } -> Some payload
            | Script { ts; span } when not enabled ->
                Support.Remark.emit ~pass:"transform"
                  ~kind:Support.Remark.Skipped ~span
                  ~details:
                    [ ("script", String.concat ". " (List.map T.to_string ts)) ]
                  "transform pass disabled: transformation script left \
                   unapplied";
                Some payload
            | Script { ts; span } -> (
                let loc = Support.Pos.span_to_string span in
                let snap ~note body =
                  match ctx.Cir.Pass.sink with
                  | Some sink ->
                      Cir.Snapshot.record sink ~pass:"transform" ~label:loc
                        ~note (Cir.Emit.stmts body)
                  | None -> ()
                in
                (* Apply clause by clause — same semantics as [T.apply_all]
                   (in-order fold, then splat hoisting when any clause
                   vectorized) — so every bound clause gets its own remark
                   and [--dump-ir=transform] snapshot. *)
                let apply_clauses body =
                  snap ~note:"input (before script)" body;
                  let rec go body = function
                    | [] -> Ok body
                    | clause :: rest -> (
                        match T.apply clause body with
                        | Error _ as e -> e
                        | Ok body' ->
                            Support.Remark.emit ~pass:"transform"
                              ~kind:Support.Remark.Applied ~span
                              ~details:[ ("clause", T.to_string clause) ]
                              "transformation '%s' bound its loop indices \
                               and was applied"
                              (T.to_string clause);
                            snap ~note:(T.to_string clause) body';
                            go body' rest)
                  in
                  Result.map
                    (fun b ->
                      if
                        List.exists
                          (function T.Vectorize _ -> true | _ -> false)
                          ts
                      then T.hoist_splats b
                      else b)
                    (go body ts)
                in
                match apply_clauses payload with
                | Ok stmts' -> Some (Cir.Ir.fold_deep stmts')
                | Error msg -> (
                    (* The §V error check: indices must name generated
                       loops.  But if the script binds against a
                       For-demoted copy of the nest, the programmer's
                       indices were fine — it is auto-parallelization's
                       ParFor header that broke the pattern
                       (tile/interchange need a perfect For nest).  That
                       is a scheduling conflict, not a user error: keep
                       the auto-parallelized, untransformed loops and say
                       so with a warning instead of failing the build. *)
                    match
                      if ctx.Cir.Pass.auto_par_ran then
                        T.apply_all ts (demote_parfors payload)
                      else Error msg
                    with
                    | Ok _ ->
                        let r = skip_remark ~span msg in
                        Support.Remark.record r;
                        ctx.Cir.Pass.warn (Support.Remark.to_diag r);
                        Some (Cir.Ir.fold_deep payload)
                    | Error _ -> Cir.Pass.err span "%s" msg))
            | _ -> None)
          p);
  }

(* --- AG metadata ------------------------------------------------------------------------ *)

let ag_spec : Ag.Wellformed.spec =
  let fp = Ag.Wellformed.full_prod ~owner:name in
  {
    sp_name = name;
    attrs = [];
    prods =
      [
        fp ~lhs:"Simple" ~children:[ "Postfix"; "E"; "TransformList" ]
          ~defines:[ "errors"; "type" ] ~forwards:true "st_transform";
        fp ~lhs:"TransformList" ~children:[ "Transform" ]
          ~defines:[ "errors" ] "tl_one";
        fp ~lhs:"TransformList" ~children:[ "TransformList"; "Transform" ]
          ~defines:[ "errors" ] "tl_cons";
        fp ~lhs:"Transform" ~children:[] ~defines:[ "errors" ] "tr_split";
        fp ~lhs:"Transform" ~children:[] ~defines:[ "errors" ] "tr_vectorize";
        fp ~lhs:"Transform" ~children:[] ~defines:[ "errors" ]
          "tr_parallelize";
        fp ~lhs:"Transform" ~children:[ "TIdList" ] ~defines:[ "errors" ]
          "tr_reorder";
        fp ~lhs:"TIdList" ~children:[] ~defines:[ "errors" ] "tidl_one";
        fp ~lhs:"TIdList" ~children:[ "TIdList" ] ~defines:[ "errors" ]
          "tidl_cons";
        fp ~lhs:"Transform" ~children:[] ~defines:[ "errors" ]
          "tr_interchange";
        fp ~lhs:"Transform" ~children:[] ~defines:[ "errors" ] "tr_unroll";
        fp ~lhs:"Transform" ~children:[] ~defines:[ "errors" ] "tr_tile";
      ];
  }
