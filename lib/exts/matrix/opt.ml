(** High-level domain-specific optimizations (§III-A5).

    "The matrix indexing … which originally returned a one-dimensional
    matrix was removed … driven by a set of high-level optimizations which
    observed that the fold iterated across one dimension of mat and there
    was no need to iterate over a copied slice of mat.  This optimization
    is also not possible via libraries, as high-level and invasive
    optimizations such as this cannot be applied across separate
    libraries."

    The pass runs on the {e untyped} AST (before semantic analysis), so
    the rewritten program is re-checked as ordinary source.  Pattern:

    {v
      Matrix t <1> s = m[i, j, :];            // slice copy
      … with ([l] <= [k] < [u]) fold(op, b, s[k]) …   // only use of s
    v}

    becomes a fold reading [m[i, j, k]] in place — exactly the Fig 1 →
    Fig 3 rewrite.  The slice declaration is dropped when [s] has no other
    uses in the enclosing block. *)

module A = Cminus.Ast

(* One bump per slice-copy declaration removed by this pass. *)
let c_slices_eliminated =
  Support.Telemetry.counter "opt.slice_copies_eliminated"

(* Count uses of identifier [name] in an expression (conservatively walks
   the matrix extension's own nodes; unknown foreign nodes count as a use
   so we never drop a declaration we cannot see into). *)
let rec uses_in_expr name (e : A.expr) : int =
  match e.A.e with
  | A.Ident v -> if v = name then 1 else 0
  | A.IntLit _ | A.FloatLit _ | A.BoolLit _ | A.StrLit _ -> 0
  | A.Bin (_, a, b) -> uses_in_expr name a + uses_in_expr name b
  | A.Un (_, a) | A.Cast (_, a) -> uses_in_expr name a
  | A.CallE (_, args) ->
      List.fold_left (fun acc a -> acc + uses_in_expr name a) 0 args
  | A.TupleLit es ->
      List.fold_left (fun acc a -> acc + uses_in_expr name a) 0 es
  | A.Subscript (b, ixs) ->
      uses_in_expr name b
      + List.fold_left
          (fun acc ix ->
            match ix with
            | A.IExpr x -> acc + uses_in_expr name x
            | A.IAll _ -> acc)
          0 ixs
  | A.ExtE (Nodes.EWith (gen, op)) ->
      let gb =
        List.fold_left (fun acc b -> acc + uses_in_expr name b) 0
          (gen.Nodes.lo @ gen.Nodes.hi)
      in
      let ob =
        match op with
        | Nodes.OGenarray (shape, body) ->
            List.fold_left (fun acc s -> acc + uses_in_expr name s)
              (uses_in_expr name body) shape
        | Nodes.OFold (_, base, body) ->
            uses_in_expr name base + uses_in_expr name body
      in
      gb + ob
  | A.ExtE (Nodes.EMatrixMap (_, m, _)) -> uses_in_expr name m
  | A.ExtE (Nodes.EInit (_, dims)) ->
      List.fold_left (fun acc d -> acc + uses_in_expr name d) 0 dims
  | A.ExtE Nodes.EEnd -> 0
  | A.ExtE _ -> 1 (* unknown foreign node: assume it may use the name *)

let rec uses_in_stmt name (st : A.stmt) : int =
  match st.A.s with
  | A.DeclS (_, _, init) ->
      Option.fold ~none:0 ~some:(uses_in_expr name) init
  | A.AssignS (l, r) -> uses_in_expr name l + uses_in_expr name r
  | A.IfS (c, a, b) ->
      uses_in_expr name c + uses_in_block name a + uses_in_block name b
  | A.WhileS (c, b) -> uses_in_expr name c + uses_in_block name b
  | A.ForS (i, c, s, b) ->
      Option.fold ~none:0 ~some:(uses_in_stmt name) i
      + Option.fold ~none:0 ~some:(uses_in_expr name) c
      + Option.fold ~none:0 ~some:(uses_in_stmt name) s
      + uses_in_block name b
  | A.ReturnS e -> Option.fold ~none:0 ~some:(uses_in_expr name) e
  | A.BreakS | A.ContinueS -> 0
  | A.ExprStmt e -> uses_in_expr name e
  | A.BlockS b -> uses_in_block name b
  | A.ExtS _ -> 1

and uses_in_block name stmts =
  List.fold_left (fun acc s -> acc + uses_in_stmt name s) 0 stmts

(* Is [init] a pure slice `m[...]` with exactly one IAll and the rest plain
   index expressions?  Returns the base (must be a variable, so re-reading
   it is effect-free), the index list, and the IAll's dimension. *)
let slice_pattern (init : A.expr) : (A.expr * A.index list * int) option =
  match init.A.e with
  | A.Subscript (({ A.e = A.Ident _; _ } as base), ixs) ->
      let alls =
        List.filteri
          (fun _ ix -> match ix with A.IAll _ -> true | _ -> false)
          ixs
      in
      let all_dim =
        List.mapi (fun d ix -> (d, ix)) ixs
        |> List.find_map (fun (d, ix) ->
               match ix with A.IAll _ -> Some d | _ -> None)
      in
      if List.length alls = 1 then
        Some (base, ixs, Option.get all_dim)
      else None
  | _ -> None

(* Rewrite `dimSize(s, 0)` into `dimSize(base, all_dim)` — the slice's one
   remaining dimension is the base's [all_dim]. *)
let rec subst_dimsize sname base all_dim (e : A.expr) : A.expr =
  let recur = subst_dimsize sname base all_dim in
  let node =
    match e.A.e with
    | A.CallE ("dimSize", [ { A.e = A.Ident v; _ }; { A.e = A.IntLit 0; _ } ])
      when v = sname ->
        A.CallE
          ( "dimSize",
            [ base; A.mk_expr (A.IntLit all_dim) e.A.espan ] )
    | A.CallE (f, args) -> A.CallE (f, List.map recur args)
    | A.Bin (op, a, b) -> A.Bin (op, recur a, recur b)
    | A.Un (op, a) -> A.Un (op, recur a)
    | A.Cast (t, a) -> A.Cast (t, recur a)
    | A.ExtE (Nodes.EWith (gen, op)) ->
        let gen' =
          {
            gen with
            Nodes.lo = List.map recur gen.Nodes.lo;
            Nodes.hi = List.map recur gen.Nodes.hi;
          }
        in
        let op' =
          match op with
          | Nodes.OGenarray (shape, body) ->
              Nodes.OGenarray (List.map recur shape, recur body)
          | Nodes.OFold (fo, b, body) -> Nodes.OFold (fo, recur b, recur body)
        in
        A.ExtE (Nodes.EWith (gen', op'))
    | other -> other
  in
  { e with A.e = node }

let rec dimsize_stmt sname base all_dim (st : A.stmt) : A.stmt =
  let rx = subst_dimsize sname base all_dim in
  let rb = List.map (dimsize_stmt sname base all_dim) in
  let s' =
    match st.A.s with
    | A.DeclS (t, n, i) -> A.DeclS (t, n, Option.map rx i)
    | A.AssignS (l, r) -> A.AssignS (rx l, rx r)
    | A.ExprStmt e -> A.ExprStmt (rx e)
    | A.ReturnS e -> A.ReturnS (Option.map rx e)
    | A.IfS (c, a, b) -> A.IfS (rx c, rb a, rb b)
    | A.WhileS (c, b) -> A.WhileS (rx c, rb b)
    | A.ForS (i, c, s2, b) ->
        A.ForS
          ( Option.map (dimsize_stmt sname base all_dim) i,
            Option.map rx c,
            Option.map (dimsize_stmt sname base all_dim) s2,
            rb b )
    | A.BlockS b -> A.BlockS (rb b)
    | other -> other
  in
  { st with A.s = s' }

(* Rewrite fold bodies `s[k]` into `m[..., k, ...]`. *)
let rec subst_fold_body sname base ixs (e : A.expr) : A.expr =
  let recur = subst_fold_body sname base ixs in
  let node =
    match e.A.e with
    | A.Subscript ({ A.e = A.Ident v; _ }, [ A.IExpr k ]) when v = sname ->
        (* replace the IAll slot with the fold index *)
        let ixs' =
          List.map
            (function A.IAll _ -> A.IExpr k | other -> other)
            ixs
        in
        A.Subscript (base, ixs')
    | A.Bin (op, a, b) -> A.Bin (op, recur a, recur b)
    | A.Un (op, a) -> A.Un (op, recur a)
    | A.Cast (t, a) -> A.Cast (t, recur a)
    | A.CallE (f, args) -> A.CallE (f, List.map recur args)
    | other -> other
  in
  { e with A.e = node }

(* Does this statement contain a with-fold over `s[k]`? Rewrite it. *)
let rec rewrite_stmt sname base ixs (st : A.stmt) : A.stmt * bool =
  let changed = ref false in
  let rec rx (e : A.expr) : A.expr =
    match e.A.e with
    | A.ExtE (Nodes.EWith (gen, Nodes.OFold (op, b, body)))
      when uses_in_expr sname body > 0 ->
        let body' = subst_fold_body sname base ixs body in
        if uses_in_expr sname body' = 0 then begin
          changed := true;
          { e with A.e = A.ExtE (Nodes.EWith (gen, Nodes.OFold (op, b, body'))) }
        end
        else e
    | A.Bin (op, a, b) -> { e with A.e = A.Bin (op, rx a, rx b) }
    | A.Un (op, a) -> { e with A.e = A.Un (op, rx a) }
    | A.Cast (t, a) -> { e with A.e = A.Cast (t, rx a) }
    | A.CallE (f, args) -> { e with A.e = A.CallE (f, List.map rx args) }
    | A.ExtE (Nodes.EWith (gen, Nodes.OGenarray (shape, body))) ->
        { e with A.e = A.ExtE (Nodes.EWith (gen, Nodes.OGenarray (shape, rx body))) }
    | _ -> e
  in
  let s' =
    match st.A.s with
    | A.DeclS (t, n, Some i) -> A.DeclS (t, n, Some (rx i))
    | A.AssignS (l, r) -> A.AssignS (l, rx r)
    | A.ExprStmt e -> A.ExprStmt (rx e)
    | A.ReturnS (Some e) -> A.ReturnS (Some (rx e))
    | A.IfS (c, a, b) ->
        A.IfS (rx c, rewrite_block sname base ixs a changed,
               rewrite_block sname base ixs b changed)
    | A.WhileS (c, b) ->
        A.WhileS (rx c, rewrite_block sname base ixs b changed)
    | other -> other
  in
  ({ st with A.s = s' }, !changed)

and rewrite_block sname base ixs (stmts : A.stmt list) changed =
  List.map
    (fun s ->
      let s', c = rewrite_stmt sname base ixs s in
      if c then changed := true;
      s')
    stmts

(* One block pass: find eligible slice decls, rewrite their fold uses,
   drop the decl if it becomes dead. *)
let rec optimize_block (stmts : A.stmt list) : A.stmt list =
  let stmts =
    List.map
      (fun st ->
        let s' =
          match st.A.s with
          | A.IfS (c, a, b) -> A.IfS (c, optimize_block a, optimize_block b)
          | A.WhileS (c, b) -> A.WhileS (c, optimize_block b)
          | A.ForS (i, c, s, b) -> A.ForS (i, c, s, optimize_block b)
          | A.BlockS b -> A.BlockS (optimize_block b)
          | other -> other
        in
        { st with A.s = s' })
      stmts
  in
  let rec go = function
    | [] -> []
    | ({ A.s = A.DeclS (_, sname, Some init); _ } as decl) :: rest -> (
        match slice_pattern init with
        | Some (base, ixs, all_dim) when uses_in_expr sname init = 0 ->
            (* dimSize over the slice reads the base's dimension directly *)
            let rest = List.map (dimsize_stmt sname base all_dim) rest in
            (* then try to eliminate the copied slice from the folds *)
            let changed = ref false in
            let rest' = rewrite_block sname base ixs rest changed in
            if !changed && uses_in_block sname rest' = 0 then begin
              Support.Remark.emit ~pass:"copy-elim"
                ~kind:Support.Remark.Applied ~span:decl.A.sspan
                ~details:[ ("slice", sname) ]
                "slice copy '%s' eliminated: the fold reads the base matrix \
                 in place and the dead slice declaration was dropped"
                sname;
              Support.Telemetry.bump c_slices_eliminated;
              go rest'
            end
            else decl :: go rest
        | _ -> decl :: go rest)
    | s :: rest -> s :: go rest
  in
  go stmts

(** [run prog] — apply slice-copy elimination to every function body. *)
let run (prog : A.program) : A.program =
  List.map
    (fun (f : A.fundef) -> { f with A.body = optimize_block f.A.body })
    prog
