(** The matrix-processing language extension (§III) packaged for the
    driver: concrete syntax, tree→AST builders, semantic analysis hooks,
    lowering hooks, the §III-A5 optimization pass, and AG-spec metadata for
    the modular well-definedness analysis. *)

let name = Syntax.name
let grammar = Syntax.grammar
let register = Syntax.register
let check_hooks : Cminus.Check.hooks = Check.hooks

let lower_hooks : Cminus.Lower.hooks =
  {
    (Cminus.Lower.no_hooks name) with
    Cminus.Lower.l_ty = (fun t ext -> Lower.h_ty t ext);
    l_expr = (fun t ext rty span -> Lower.h_expr t ext rty span);
    l_binop = (fun t op a b rty span -> Lower.h_binop t op a b rty span);
    l_unop = (fun t op a rty span -> Lower.h_unop t op a rty span);
    l_call =
      (fun t fname args rty span ~expected ->
        Lower.h_call t fname args rty span ~expected);
    l_subscript =
      (fun t base ixs rty span -> Lower.h_subscript t base ixs rty span);
    l_subscript_assign =
      (fun t base ixs rhs span -> Lower.h_subscript_assign t base ixs rhs span);
  }

(** The §III-A5 high-level optimizations (slice-copy elimination), applied
    on the AST before semantic analysis. *)
let optimize = Opt.run

(** CIR passes, in default pipeline order: fuse, copy-elim, auto-par. *)
let passes = Passes.all

(** AG-spec metadata: every production defines the host's [errors] and
    [type] attributes and forwards for its translation, the pattern that
    passes the modular well-definedness analysis (§VI-B). *)
let ag_spec : Ag.Wellformed.spec =
  let fp = Ag.Wellformed.full_prod ~owner:name in
  {
    sp_name = name;
    attrs = [];
    prods =
      [
        fp ~lhs:"TypeE" ~children:[ "ScalarType" ]
          ~defines:[ "errors"; "type" ] ~forwards:false "mty";
        fp ~lhs:"Index" ~children:[] ~defines:[ "errors"; "type" ] "ix_all";
        fp ~lhs:"Primary" ~children:[] ~defines:[ "errors"; "type" ]
          ~forwards:true "prim_end";
        fp ~lhs:"Cmp" ~children:[ "Add"; "Add" ]
          ~defines:[ "errors"; "type" ] ~forwards:true "cmp_range";
        fp ~lhs:"Mul" ~children:[ "Mul"; "Unary" ]
          ~defines:[ "errors"; "type" ] ~forwards:true "mul_dotstar";
        fp ~lhs:"Primary" ~children:[ "WGen"; "WOp" ]
          ~defines:[ "errors"; "type" ] ~forwards:true "prim_with";
        fp ~lhs:"WGen"
          ~children:[ "ArgList"; "WRel"; "WIdList"; "WRel"; "ArgList" ]
          ~defines:[ "errors" ] "wgen";
        fp ~lhs:"WRel" ~children:[] ~defines:[ "errors" ] "wrel_lt";
        fp ~lhs:"WRel" ~children:[] ~defines:[ "errors" ] "wrel_le";
        fp ~lhs:"WIdList" ~children:[] ~defines:[ "errors" ] "wid_one";
        fp ~lhs:"WIdList" ~children:[ "WIdList" ] ~defines:[ "errors" ]
          "wid_cons";
        fp ~lhs:"WOp" ~children:[ "ArgList"; "E" ] ~defines:[ "errors" ]
          "wop_genarray";
        fp ~lhs:"WOp" ~children:[ "FoldOp"; "E"; "E" ] ~defines:[ "errors" ]
          "wop_fold";
        fp ~lhs:"FoldOp" ~children:[] ~defines:[ "errors" ] "foldop_plus";
        fp ~lhs:"FoldOp" ~children:[] ~defines:[ "errors" ] "foldop_times";
        fp ~lhs:"FoldOp" ~children:[] ~defines:[ "errors" ] "foldop_min";
        fp ~lhs:"FoldOp" ~children:[] ~defines:[ "errors" ] "foldop_max";
        fp ~lhs:"Primary" ~children:[ "E"; "ArgList" ]
          ~defines:[ "errors"; "type" ] ~forwards:true "prim_mmap";
        fp ~lhs:"Primary" ~children:[ "TypeE"; "ArgList" ]
          ~defines:[ "errors"; "type" ] ~forwards:true "prim_init";
      ];
  }
