(** The matrix extension's optimization-decision sites.

    The baseline lowering ({!Lower}) emits the unoptimized statements for
    each decision wrapped in one of these [Site] payloads; the extension's
    CIR passes ({!Passes}) consume them.  Each payload carries exactly the
    facts the decision needs — computed at lowering time, where the AST
    context (e.g. the whole-function alias analysis) is still in reach. *)

(** Which recognised loop shape an {!AutoPar} site wraps — each shape has
    its own promotion rule and remark wording (§III-C). *)
type autopar_kind =
  | Elemwise  (** elementwise loop: each flat index writes one element *)
  | MatmulRow  (** matrix-multiplication row loop *)
  | WithGen  (** with-loop genarray generator nest *)
  | FoldAcc
      (** with-loop fold nest: never promoted — iterations race on the
          single accumulator *)
  | MatrixMap of string
      (** matrixMap dispatch loop; carries the mapped function's name for
          the remark *)

type Cir.Ir.site +=
  | FuseCopy of {
      result : string;  (** the with-loop's result matrix *)
      copy : string;  (** the library-style copy of it (payload decl) *)
      span : Support.Pos.span;
    }
      (** Payload: the library-style result copy (§III-A5) — comment,
          copy allocation + loop, release of [result].  Fusion deletes the
          payload and renames [copy] to [result] everywhere after it. *)
  | SliceAlias of {
      base : string;  (** the sliced matrix *)
      slice : string;  (** the copy the payload allocates *)
      identity : bool;  (** selection is the whole matrix *)
      safe : bool;  (** the alias analysis proved aliasing observable-free *)
      why : string;  (** the analysis verdict as prose *)
      span : Support.Pos.span;
    }
      (** Payload: the allocating copy of a slice.  Copy elimination
          replaces it with a retain of [base] (renaming [slice] to
          [base]) when [identity && safe]. *)
  | AutoPar of { kind : autopar_kind; span : Support.Pos.span }
      (** Payload: a sequential loop nest the auto-par pass may promote
          to a [ParFor] region. *)

(* Renamer hook: lets the pipeline's gensym renumbering rewrite the
   variable names our payloads mention (see {!Cir.Pass.renumber}). *)
let () =
  Cir.Pass.register_site_renamer (fun f site ->
      match site with
      | FuseCopy r -> FuseCopy { r with result = f r.result; copy = f r.copy }
      | SliceAlias r -> SliceAlias { r with base = f r.base; slice = f r.slice }
      | s -> s)
