(** The matrix extension's CIR passes: with-loop fusion (§III-A5),
    slice-copy elimination (§III-A5) and auto-parallelization (§III-C).

    Each pass consumes the {!Sites} annotations the baseline {!Lower}
    left behind.  A pass runs even when disabled: splicing its sites away
    and reporting the Skipped/Missed decision is also its job, so a
    completed pipeline leaves no matrix sites in the program. *)

open Cir.Ir
module R = Support.Remark

(* [rewrite_sites] cannot rewrite uses outside the site it is visiting,
   so passes that redirect a name (fusion: copy→result; copy elimination:
   slice→base) collect the renames and apply them to the whole program
   afterwards — gensym names are program-unique, so global substitution
   is safe. *)
let apply_substs substs p =
  List.fold_left
    (fun p (from_, to_) -> Cir.Pass.subst_in_program from_ (Var to_) p)
    p substs

(** With-loop fusion: the result of a with-loop feeds its consumer
    directly instead of being evaluated into a temporary that is then
    copied (the library-style baseline the payload holds). *)
let fuse : Cir.Pass.t =
  {
    Cir.Pass.name = "fuse";
    default_on = true;
    renumbers = true;
    managed_snapshot = true;
    run =
      (fun _ctx ~enabled p ->
        let substs = ref [] in
        let p =
          Cir.Pass.rewrite_sites
            (fun site payload ->
              match site with
              | Sites.FuseCopy { result; copy; span } ->
                  if enabled then begin
                    R.emit ~pass:"fuse" ~kind:R.Applied ~span
                      "with-loop result feeds its consumer directly: no \
                       temporary copy";
                    Support.Telemetry.bump Lower.c_fused;
                    substs := (copy, result) :: !substs;
                    Some []
                  end
                  else begin
                    R.emit ~pass:"fuse" ~kind:R.Missed ~span
                      ~details:
                        [
                          ( "blocking",
                            "library-style evaluation requested (--no-fuse)" );
                        ]
                      "with-loop paid a library-style result copy (fusion \
                       disabled)";
                    Support.Telemetry.bump Lower.c_library_copies;
                    Some payload
                  end
              | _ -> None)
            p
        in
        apply_substs !substs p);
  }

(** Slice-copy elimination: an identity slice [m[:, …, :]] whose aliasing
    the lowering-time analysis proved observation-free aliases its base
    (retaining it) instead of allocating and copying every element. *)
let copy_elim : Cir.Pass.t =
  {
    Cir.Pass.name = "copy-elim";
    default_on = true;
    renumbers = true;
    managed_snapshot = true;
    run =
      (fun ctx ~enabled p ->
        let substs = ref [] in
        let p =
          Cir.Pass.rewrite_sites
            (fun site payload ->
              match site with
              | Sites.SliceAlias { base; slice; identity; safe; why; span } ->
                  if enabled && identity && safe then begin
                    R.emit ~pass:"copy-elim" ~kind:R.Applied ~span
                      ~details:[ ("alias", why) ]
                      "identity slice aliased to its base: copy elided";
                    Support.Telemetry.bump Lower.c_identity_slices;
                    substs := (slice, base) :: !substs;
                    Some (if ctx.Cir.Pass.rc then [ RcInc (Var base) ] else [])
                  end
                  else begin
                    (if identity && not enabled then
                       R.emit ~pass:"copy-elim" ~kind:R.Skipped ~span
                         "copy elimination disabled: identity slice \
                          allocates a copy"
                     else if identity then
                       R.emit ~pass:"copy-elim" ~kind:R.Missed ~span
                         ~details:[ ("alias", why) ]
                         "identity slice kept its copy: %s" why
                     else
                       R.emit ~pass:"copy-elim" ~kind:R.Missed ~span
                         "slice allocates a copy (selection is not the \
                          whole matrix, so the buffer cannot be aliased)");
                    Support.Telemetry.bump Lower.c_slice_copies;
                    Some payload
                  end
              | _ -> None)
            p
        in
        apply_substs !substs p);
  }

(** Auto-parallelization: promote recognised sequential loop shapes to
    [ParFor] regions (§III-C).  Folds never promote — every iteration
    updates the single accumulator. *)
let auto_par : Cir.Pass.t =
  {
    Cir.Pass.name = "auto-par";
    default_on = false;
    renumbers = false;
    managed_snapshot = true;
    run =
      (fun ctx ~enabled p ->
        if enabled then ctx.Cir.Pass.auto_par_ran <- true;
        Cir.Pass.rewrite_sites
          (fun site payload ->
            match site with
            | Sites.AutoPar { kind; span } -> (
                let promote () =
                  match payload with
                  | [ For l ] -> [ ParFor l ]
                  | _ -> payload
                in
                match kind with
                | Sites.Elemwise ->
                    if enabled then begin
                      R.emit ~pass:"auto-par" ~kind:R.Applied ~span
                        "promoted elementwise loop to a parallel region \
                         (each index writes one output element)";
                      Some (promote ())
                    end
                    else begin
                      R.emit ~pass:"auto-par" ~kind:R.Skipped ~span
                        "auto-parallelization disabled: elementwise loop \
                         stays sequential";
                      Some payload
                    end
                | Sites.MatmulRow ->
                    if enabled then begin
                      R.emit ~pass:"auto-par" ~kind:R.Applied ~span
                        "promoted matrix-multiplication row loop to a \
                         parallel region";
                      Some (promote ())
                    end
                    else begin
                      R.emit ~pass:"auto-par" ~kind:R.Skipped ~span
                        "auto-parallelization disabled: \
                         matrix-multiplication row loop stays sequential";
                      Some payload
                    end
                | Sites.WithGen ->
                    if not enabled then begin
                      R.emit ~pass:"auto-par" ~kind:R.Skipped ~span
                        "auto-parallelization disabled: with-loop nest \
                         stays sequential";
                      Some payload
                    end
                    else (
                      match payload with
                      | [ For l ] ->
                          R.emit ~pass:"auto-par" ~kind:R.Applied ~span
                            "promoted with-loop's outermost generator loop \
                             to a parallel region";
                          Some [ ParFor l ]
                      | _ ->
                          R.emit ~pass:"auto-par" ~kind:R.Missed ~span
                            "with-loop has no generator loop nest to \
                             parallelize";
                          Some payload)
                | Sites.FoldAcc ->
                    if enabled then
                      R.emit ~pass:"auto-par" ~kind:R.Missed ~span
                        ~details:
                          [
                            ( "demoted",
                              "every iteration updates the single \
                               accumulator" );
                          ]
                        "fold with-loop demoted to sequential: iterations \
                         race on the fold accumulator"
                    else
                      R.emit ~pass:"auto-par" ~kind:R.Skipped ~span
                        "auto-parallelization disabled: fold nest stays \
                         sequential";
                    Some payload
                | Sites.MatrixMap fname ->
                    if enabled then begin
                      R.emit ~pass:"auto-par" ~kind:R.Applied ~span
                        "promoted matrixMap iteration space to a parallel \
                         region (lifted '%s' runs per slice on the pool)"
                        fname;
                      Some (promote ())
                    end
                    else begin
                      R.emit ~pass:"auto-par" ~kind:R.Skipped ~span
                        "auto-parallelization disabled: matrixMap slices \
                         run sequentially";
                      Some payload
                    end)
            | _ -> None)
          p);
  }

(** In registration order — the default pipeline order. *)
let all = [ fuse; copy_elim; auto_par ]
