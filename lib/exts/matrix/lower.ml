(** Lowering of the matrix constructs to plain-C loop nests (§III): the
    translation the paper shows in Fig 3 for the with-loop, plus the
    general §III-A3 indexing (mask/gather indices materialise selection
    vectors, exactly what generated C does), elementwise and linear-algebra
    operator overloads, matrixMap with its lifted per-slice function, and
    the [init]/[dimSize]/[readMatrix]/[writeMatrix] builtins.

    This is the {e baseline} lowering: every optimization decision —
    with-loop fusion, slice-copy aliasing, auto-parallelization (§III-C:
    the outermost loop of every genarray and the matrixMap iteration
    space can become [ParFor] regions for the enhanced fork-join pool) —
    is emitted in its unoptimized form wrapped in a {!Sites} annotation,
    and the extension's CIR passes ({!Passes}) consume the sites.  Only
    analyses that genuinely need AST context (the alias-safety scan for
    slice-copy elimination) run here; their verdicts travel in the site
    payload. *)

module L = Cminus.Lower
module T = Cminus.Types
module A = Cminus.Ast
module S = Runtime.Scalar
module Nd = Runtime.Ndarray
module R = Support.Remark
open Cir.Ir

let span_err = L.err

(* §III-A5 optimization effectiveness, observable via --stats/--trace:
   with-loops whose result fed its consumer directly (fused) vs. ones that
   paid the library-style copy, slices that allocated a copy vs. identity
   slices aliased away by copy elimination. *)
let c_fused = Support.Telemetry.counter "lower.with_loops_fused"
let c_library_copies = Support.Telemetry.counter "lower.library_copies"
let c_slice_copies = Support.Telemetry.counter "lower.slice_copies"
let c_identity_slices = Support.Telemetry.counter "lower.identity_slices_aliased"

(* Current subscript context for [end]: (matrix handle, dimension). *)
let index_ctx : (expr * int) option ref = ref None

let ety = L.ety

let mat_of_ty span = function
  | T.TMat (e, r) -> (e, r)
  | ty -> span_err span "internal: expected a matrix type, got %s" (T.to_string ty)

(* Ensure a lowered matrix value is a variable (bind a temp otherwise). *)
let bind_mat t (stmts, e) (ty : T.ty) : stmt list * string =
  match e with
  | Var v -> (stmts, v)
  | e ->
      let tmp = L.fresh t "m" in
      (stmts @ [ Decl (T.to_ctype ty, tmp, Some e) ], tmp)

(* Bind any scalar expression so it is evaluated once. *)
let bind_scalar t (stmts, e) (ty : T.ty) : stmt list * expr =
  match e with
  | Var _ | Int _ | Float _ | Bool _ -> (stmts, e)
  | e ->
      let tmp = L.fresh t "s" in
      (stmts @ [ Decl (T.to_ctype ty, tmp, Some e) ], Var tmp)

(** Row-major flat offset of [idxs] given per-dimension extents. *)
let flat_offset (extents : expr list) (idxs : expr list) : expr =
  match (extents, idxs) with
  | _ :: ds, i0 :: is ->
      List.fold_left2 (fun acc d i -> fold_expr ((acc *: d) +: i)) i0 ds is
  | _ -> Int 0

let dims_of v rank = List.init rank (fun d -> MDim (Var v, Int d))

(* Elementwise conversion of a loaded element. *)
let conv ~(from : Nd.elem) ~(to_ : Nd.elem) e =
  match (from, to_) with
  | Nd.EInt, Nd.EFloat -> Unop (FloatOfInt, e)
  | _ -> e

(* --- elementwise loops (§III-A2) ------------------------------------------- *)

(* Build: r = alloc(out_elem, dims of model); for i < size(model):
     r[i] = op(load a, load b).  [load] gets the flat index var.
   Each flat index writes exactly one output element, so under
   auto-parallelization the loop becomes a ParFor region (§III-C). *)
let ew_loop t ~span ~(model : string) ~(rank : int) ~(out_elem : Nd.elem)
    ~(body : expr -> expr) : stmt list * expr =
  let r = L.fresh t "ew" and i = L.fresh t "i" in
  let alloc = MAlloc (out_elem, dims_of model rank) in
  let loop =
    {
      index = i;
      bound = MSize (Var model);
      body = [ MSetFlat (Var r, Var i, body (Var i)) ];
      prov = Some span;
    }
  in
  let stmts =
    [
      Decl (CMat (out_elem, rank), r, Some alloc);
      Site (Sites.AutoPar { kind = Sites.Elemwise; span }, [ For loop ]);
    ]
  in
  L.add_pending t r;
  (stmts, Var r)

let lower_mat t (e : A.expr) : stmt list * string =
  bind_mat t (L.lower_expr t e) (ety e)

let cir_binop (op : A.binop) : binop =
  match op with
  | A.BArith o -> Arith o
  | A.BCmp o -> Cmp o
  | A.BLogic o -> Logic o
  | A.BExt o when o = Nodes.op_dotstar -> Arith S.Mul
  | A.BExt o -> invalid_arg ("cir_binop: " ^ o)

let h_binop t (op : A.binop) (a : A.expr) (b : A.expr) (rty : T.ty) span :
    (stmt list * expr) option =
  let ta = ety a and tb = ety b in
  match (op, ta, tb) with
  (* x1 :: x2 — materialise the integer range vector (Fig 8). *)
  | A.BExt o, T.TInt, T.TInt when o = Nodes.op_range ->
      let sa, ea = bind_scalar t (L.lower_expr t a) T.TInt in
      let sb, eb = bind_scalar t (L.lower_expr t b) T.TInt in
      let n = L.fresh t "n" and r = L.fresh t "rng" and i = L.fresh t "i" in
      let stmts =
        sa @ sb
        @ [
            Decl (CInt, n, Some (fold_expr ((eb -: ea) +: Int 1)));
            If (Var n <: Int 0, [ Assign (LVar n, Int 0) ], []);
            Decl (CMat (Nd.EInt, 1), r, Some (MAlloc (Nd.EInt, [ Var n ])));
            For
              {
                index = i;
                bound = Var n;
                body = [ MSetFlat (Var r, Var i, ea +: Var i) ];
                prov = Some span;
              };
          ]
      in
      L.add_pending t r;
      Some (stmts, Var r)
  (* linear-algebra matrix multiplication (§III-A2) *)
  | A.BArith S.Mul, T.TMat (e1, 2), T.TMat (_, 2) ->
      let sa, va = lower_mat t a in
      let sb, vb = lower_mat t b in
      let m = MDim (Var va, Int 0)
      and k = MDim (Var va, Int 1)
      and n = MDim (Var vb, Int 1) in
      let r = L.fresh t "mm" in
      let i = L.fresh t "i" and j = L.fresh t "j" and l = L.fresh t "l" in
      let acc = L.fresh t "acc" in
      let elem_zero = if e1 = Nd.EFloat then Float 0. else Int 0 in
      let cty = if e1 = Nd.EFloat then CFloat else CInt in
      let body =
        [
          Decl (cty, acc, Some elem_zero);
          For
            {
              index = l;
              bound = k;
              prov = Some span;
              body =
                [
                  Assign
                    ( LVar acc,
                      Var acc
                      +: Binop
                           ( Arith S.Mul,
                             MGetFlat (Var va, (Var i *: k) +: Var l),
                             MGetFlat (Var vb, (Var l *: n) +: Var j) ) );
                ];
            };
          MSetFlat (Var r, (Var i *: n) +: Var j, Var acc);
        ]
      in
      (* Each outer iteration writes result row [i] only, so the row loop
         parallelises under auto-par (§III-C) — the interpreter's analogue
         of dispatching matmul row blocks to the pool. *)
      let row_loop =
        {
          index = i;
          bound = m;
          body = [ For { index = j; bound = n; body; prov = Some span } ];
          prov = Some span;
        }
      in
      let stmts =
        sa @ sb
        @ [
            Decl (CMat (e1, 2), r, Some (MAlloc (e1, [ m; n ])));
            Site
              ( Sites.AutoPar { kind = Sites.MatmulRow; span },
                [ For row_loop ] );
          ]
      in
      L.add_pending t r;
      Some (stmts, Var r)
  (* matrix (.) matrix elementwise: + - / % .* comparisons logic *)
  | _, T.TMat (e1, r1), T.TMat (_, _) ->
      let out_elem, _ = mat_of_ty span rty in
      let sa, va = lower_mat t a in
      let sb, vb = lower_mat t b in
      let arith_elem = match rty with T.TMat (e, _) -> e | _ -> e1 in
      let s, v =
        ew_loop t ~span ~model:va ~rank:r1 ~out_elem ~body:(fun i ->
            let load_conv m from =
              match op with
              | A.BArith _ | A.BExt _ ->
                  conv ~from ~to_:arith_elem (MGetFlat (Var m, i))
              | _ -> MGetFlat (Var m, i)
            in
            Binop (cir_binop op, load_conv va e1, load_conv vb e1))
      in
      Some (sa @ sb @ s, v)
  (* matrix (.) scalar and scalar (.) matrix *)
  | _, T.TMat (e1, r1), sc when T.is_scalar sc ->
      let out_elem, _ = mat_of_ty span rty in
      let sa, va = lower_mat t a in
      let sb, eb = bind_scalar t (L.lower_expr t b) sc in
      let arith_elem = match rty with T.TMat (e, _) -> e | _ -> e1 in
      let scalar_conv =
        match (sc, arith_elem) with
        | T.TInt, Nd.EFloat -> Unop (FloatOfInt, eb)
        | T.TFloat, Nd.EInt -> Unop (IntOfFloat, eb)
        | _ -> eb
      in
      let s, v =
        ew_loop t ~span ~model:va ~rank:r1 ~out_elem ~body:(fun i ->
            Binop
              ( cir_binop op,
                conv ~from:e1 ~to_:arith_elem (MGetFlat (Var va, i)),
                scalar_conv ))
      in
      Some (sa @ sb @ s, v)
  | _, sc, T.TMat (e1, r1) when T.is_scalar sc ->
      let out_elem, _ = mat_of_ty span rty in
      let sa, ea = bind_scalar t (L.lower_expr t a) sc in
      let sb, vb = lower_mat t b in
      let arith_elem = match rty with T.TMat (e, _) -> e | _ -> e1 in
      let scalar_conv =
        match (sc, arith_elem) with
        | T.TInt, Nd.EFloat -> Unop (FloatOfInt, ea)
        | T.TFloat, Nd.EInt -> Unop (IntOfFloat, ea)
        | _ -> ea
      in
      let s, v =
        ew_loop t ~span ~model:vb ~rank:r1 ~out_elem ~body:(fun i ->
            Binop
              ( cir_binop op,
                scalar_conv,
                conv ~from:e1 ~to_:arith_elem (MGetFlat (Var vb, i)) ))
      in
      Some (sa @ sb @ s, v)
  | _ -> None

let h_unop t (op : A.unop) (a : A.expr) (rty : T.ty) span :
    (stmt list * expr) option =
  match ety a with
  | T.TMat (e1, r1) ->
      let out_elem = match rty with T.TMat (e, _) -> e | _ -> e1 in
      let sa, va = lower_mat t a in
      let s, v =
        ew_loop t ~span ~model:va ~rank:r1 ~out_elem ~body:(fun i ->
            match op with
            | A.UNeg -> Unop (Neg, MGetFlat (Var va, i))
            | A.UNot -> Unop (Not, MGetFlat (Var va, i)))
      in
      Some (sa @ s, v)
  | _ -> None

(* --- subscripting (§III-A3) ---------------------------------------------------- *)

type spec =
  | SAt of expr
  | SAll
  | SGather of string  (** variable holding a 1-D int selection vector *)

(* Lower one index item for dimension [d] of matrix var [base]. *)
let lower_index t (base : string) (base_ty : T.ty) (d : int) (ix : A.index) :
    stmt list * spec =
  match ix with
  | A.IAll _ -> ([], SAll)
  | A.IExpr e -> (
      let saved = !index_ctx in
      index_ctx := Some (Var base, d);
      let lowered = L.lower_expr t e in
      index_ctx := saved;
      match ety e with
      | T.TInt ->
          let s, v = bind_scalar t lowered T.TInt in
          (s, SAt v)
      | T.TMat (Nd.EInt, 1) ->
          let s, v = bind_mat t lowered (ety e) in
          (s, SGather v)
      | T.TMat (Nd.EBool, 1) ->
          (* Logical indexing: materialise the selection vector of true
             positions (what the generated C does for mask indices). *)
          let s, mask = bind_mat t lowered (ety e) in
          let cnt = L.fresh t "cnt"
          and sel = L.fresh t "sel"
          and i = L.fresh t "i"
          and k = L.fresh t "k" in
          let build =
            [
              Decl (CInt, cnt, Some (Int 0));
              For
                {
                  index = i;
                  bound = MSize (Var mask);
                  prov = Some e.A.espan;
                  body =
                    [
                      If
                        ( MGetFlat (Var mask, Var i),
                          [ Assign (LVar cnt, Var cnt +: Int 1) ],
                          [] );
                    ];
                };
              Decl (CMat (Nd.EInt, 1), sel, Some (MAlloc (Nd.EInt, [ Var cnt ])));
              Decl (CInt, k, Some (Int 0));
              For
                {
                  index = i;
                  bound = MSize (Var mask);
                  prov = Some e.A.espan;
                  body =
                    [
                      If
                        ( MGetFlat (Var mask, Var i),
                          [
                            MSetFlat (Var sel, Var k, Var i);
                            Assign (LVar k, Var k +: Int 1);
                          ],
                          [] );
                    ];
                };
            ]
          in
          L.add_pending t sel;
          (s @ build, SGather sel)
      | ty ->
          span_err e.A.espan "internal: index of type %s at dimension %d of %s"
            (T.to_string ty) d
            (T.to_string base_ty))

let lower_specs t base base_ty indices =
  List.fold_left
    (fun (stmts, specs, d) ix ->
      let s, sp = lower_index t base base_ty d ix in
      (stmts @ s, specs @ [ sp ], d + 1))
    ([], [], 0) indices
  |> fun (s, sp, _) -> (s, sp)

(* Per-dimension result extent for a kept spec. *)
let spec_extent base d = function
  | SAll -> MDim (Var base, Int d)
  | SGather g -> MSize (Var g)
  | SAt _ -> invalid_arg "spec_extent"

(* --- alias safety for identity-slice copy elimination (§III-A5) --------------

   `m[:, …, :]` may be lowered to a retained alias of `m` only when that is
   observationally equal to the copy: no write to the shared buffer while
   both handles are live.  Mirroring the conservatism of the AST-level pass
   in Opt (which only drops a copy after a use-count analysis), we require,
   over the whole current function body:

   - the slice is the direct initialiser of a matrix variable
     (`Matrix b = m[:, :];` or `b = m[:, :];`) — any other context
     (call argument, return value, operand) gets a copy, so the alias can
     never escape the function;
   - no handle sharing a buffer with the base or the destination is ever
     buffer-written: subscript-assigned, whole-matrix scalar-filled,
     passed to a function (the callee may mutate a borrowed parameter),
     handed to matrixMap (the lifted per-slice function gets direct
     access), stored in a tuple (writes through the tuple are untracked),
     or returned (the buffer would escape to the caller).  Buffer sharing
     is closed over plain handle copies (`Matrix c = b;`) and other
     identity slices;
   - the function contains no foreign extension nodes we cannot see into
     (a transform or cilk statement could mutate any matrix).

   Anything else falls back to the allocating copy — the seed semantics. *)

exception Opaque
(* foreign extension node: give up on aliasing for this function *)

let is_mat_ident (e : A.expr) =
  match (e.A.e, e.A.ety) with
  | A.Ident v, Some ty when L.contains_mat ty -> Some v
  | _ -> None

(* Builtins that read their matrix argument but never write its buffer. *)
let readonly_call = function
  | "dimSize" | "writeMatrix" -> true
  | _ -> false

let is_identity_slice ixs =
  ixs <> [] && List.for_all (function A.IAll _ -> true | _ -> false) ixs

(* One scan of the function body collecting (a) names whose buffer may be
   written or may escape ("seeds") and (b) pairs of names that may share a
   buffer ("edges"). *)
let scan_body body =
  let seeds = ref [] and edges = ref [] in
  let seed v = seeds := v :: !seeds in
  let mat_seed e = Option.iter seed (is_mat_ident e) in
  let rec expr (e : A.expr) =
    match e.A.e with
    | A.Ident _ | A.IntLit _ | A.FloatLit _ | A.BoolLit _ | A.StrLit _ -> ()
    | A.Bin (_, a, b) ->
        expr a;
        expr b
    | A.Un (_, a) | A.Cast (_, a) -> expr a
    | A.CallE (f, args) ->
        List.iter
          (fun a ->
            expr a;
            if not (readonly_call f) then mat_seed a)
          args
    | A.TupleLit es ->
        (* matrices stored in a tuple can be written through it later *)
        List.iter
          (fun x ->
            expr x;
            mat_seed x)
          es
    | A.Subscript (b, ixs) ->
        expr b;
        List.iter (function A.IExpr x -> expr x | A.IAll _ -> ()) ixs
    | A.ExtE (Nodes.EWith (gen, op)) -> (
        List.iter expr (gen.Nodes.lo @ gen.Nodes.hi);
        match op with
        | Nodes.OGenarray (shape, b) ->
            List.iter expr shape;
            expr b
        | Nodes.OFold (_, base, b) ->
            expr base;
            expr b)
    | A.ExtE (Nodes.EMatrixMap (_, m, _)) ->
        expr m;
        mat_seed m
    | A.ExtE (Nodes.EInit (_, dims)) -> List.iter expr dims
    | A.ExtE Nodes.EEnd -> ()
    | A.ExtE _ -> raise Opaque
  in
  (* [bind name rhs] — a handle named [name] now holds [rhs]'s value:
     record the buffer-sharing edge when the rhs is a plain handle copy or
     an identity slice. *)
  let bind name (rhs : A.expr) =
    match rhs.A.e with
    | A.Ident v when Option.is_some (is_mat_ident rhs) ->
        edges := (name, v) :: !edges
    | A.Subscript (b, ixs) when is_identity_slice ixs ->
        Option.iter (fun v -> edges := (name, v) :: !edges) (is_mat_ident b)
    | _ -> ()
  in
  (* Matrix idents whose buffer transfers to the caller through a returned
     value (mirrors the host lowering's [transfer_vars]): a returned name
     or tuple of names; any other expression returns a fresh buffer. *)
  let rec escaping (e : A.expr) =
    match e.A.e with
    | A.Ident _ -> mat_seed e
    | A.TupleLit es -> List.iter escaping es
    | _ -> ()
  in
  let rec stmt (st : A.stmt) =
    match st.A.s with
    | A.DeclS (_, name, init) ->
        Option.iter
          (fun i ->
            expr i;
            bind name i)
          init
    | A.AssignS (lhs, rhs) -> (
        expr rhs;
        match lhs.A.e with
        | A.Ident v -> (
            bind v rhs;
            (* whole-matrix scalar fill writes the buffer in place;
               rebinding a handle does not *)
            match (lhs.A.ety, rhs.A.ety) with
            | Some (T.TMat _), Some ty when T.is_scalar ty -> seed v
            | _ -> ())
        | A.Subscript (b, ixs) -> (
            List.iter (function A.IExpr x -> expr x | A.IAll _ -> ()) ixs;
            match is_mat_ident b with
            | Some v -> seed v
            | None -> raise Opaque (* write through an unnamed handle *))
        | A.TupleLit parts ->
            (* destructuring rebinds the targets to untracked handles *)
            List.iter (fun (p : A.expr) -> mat_seed p) parts
        | _ -> raise Opaque)
    | A.IfS (c, a, b) ->
        expr c;
        List.iter stmt a;
        List.iter stmt b
    | A.WhileS (c, b) ->
        expr c;
        List.iter stmt b
    | A.ForS (i, c, s, b) ->
        Option.iter stmt i;
        Option.iter expr c;
        Option.iter stmt s;
        List.iter stmt b
    | A.ReturnS e -> Option.iter escaping e
    | A.BreakS | A.ContinueS -> ()
    | A.ExprStmt e -> expr e
    | A.BlockS b -> List.iter stmt b
    | A.ExtS _ -> raise Opaque
  in
  List.iter stmt body;
  (!seeds, !edges)

(* Close the written/escaping set over may-share-a-buffer edges (both
   directions: a write to either end is visible through the other). *)
let closure seeds edges =
  let w = ref (List.sort_uniq compare seeds) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (a, b) ->
        let ha = List.mem a !w and hb = List.mem b !w in
        if ha && not hb then begin
          w := b :: !w;
          changed := true
        end
        else if hb && not ha then begin
          w := a :: !w;
          changed := true
        end)
      edges
  done;
  !w

(* The variables to which THIS subscript occurrence (identified physically,
   base and index list) is directly bound; [] in any other context. *)
let slice_dests body base indices =
  let dests = ref [] in
  let rhs_matches (e : A.expr) =
    match e.A.e with
    | A.Subscript (b, ixs) -> b == base && ixs == indices
    | _ -> false
  in
  let rec stmt (st : A.stmt) =
    match st.A.s with
    | A.DeclS (_, name, Some i) when rhs_matches i -> dests := name :: !dests
    | A.AssignS ({ A.e = A.Ident name; _ }, r) when rhs_matches r ->
        dests := name :: !dests
    | A.IfS (_, a, b) ->
        List.iter stmt a;
        List.iter stmt b
    | A.WhileS (_, b) | A.BlockS b -> List.iter stmt b
    | A.ForS (i, _, s, b) ->
        Option.iter stmt i;
        Option.iter stmt s;
        List.iter stmt b
    | _ -> ()
  in
  List.iter stmt body;
  !dests

(** [alias_verdict t base indices] — may this identity slice be lowered to
    a retained alias?  Returns the decision {e and} the analysis verdict
    as prose, so the stderr diagnostic, the optimization remark and the
    [--json] report all carry the same reason. *)
let alias_verdict t (base : A.expr) (indices : A.index list) : bool * string =
  match (is_mat_ident base, t.L.cur_body) with
  | None, _ -> (false, "slice base is not a named matrix variable")
  | _, [] -> (false, "no whole-function context for the alias analysis")
  | Some a, body -> (
      match slice_dests body base indices with
      | [] ->
          ( false,
            "slice result is not bound directly to a variable, so the alias \
             could escape its statement" )
      | dests -> (
          match scan_body body with
          | exception Opaque ->
              ( false,
                "function contains statements from extensions the alias \
                 analysis cannot see into" )
          | seeds, edges -> (
              let written = closure seeds edges in
              match
                List.find_opt (fun v -> List.mem v written) (a :: dests)
              with
              | Some v ->
                  ( false,
                    Printf.sprintf
                      "buffer of '%s' may be written or escape while both \
                       handles are live"
                      v )
              | None ->
                  ( true,
                    "no handle sharing the buffer is written or escapes \
                     while both handles are live" ))))

let alias_safe t (base : A.expr) (indices : A.index list) =
  fst (alias_verdict t base indices)

let h_subscript t (base : A.expr) (indices : A.index list) (rty : T.ty) span :
    (stmt list * expr) option =
  match ety base with
  | T.TMat (_elem, rank) ->
      let sb, vb = lower_mat t base in
      let si, specs = lower_specs t vb (ety base) indices in
      let all_at = List.for_all (function SAt _ -> true | _ -> false) specs in
      if all_at then
        (* (a) standard indexing: extract one element, no allocation *)
        let idxs = List.map (function SAt e -> e | _ -> assert false) specs in
        let off = flat_offset (dims_of vb rank) idxs in
        Some (sb @ si, MGetFlat (Var vb, off))
      else begin
        (* Allocating copy of the selected region — the baseline for every
           non-scalar selection.  For an identity slice m[:, …, :] the
           §III-A5 copy elimination pass may replace the payload of the
           [SliceAlias] site below with a retained alias of the source;
           the alias-safety verdict (whether neither handle is
           buffer-written or escapes while both are live) needs the AST
           context, so it is computed HERE and shipped in the site. *)
        let identity =
          List.for_all (function SAll -> true | _ -> false) specs
        in
        let safe, why =
          if identity then alias_verdict t base indices else (false, "")
        in
        let out_elem, _out_rank = mat_of_ty span rty in
        let kept_dims =
          List.mapi (fun d sp -> (d, sp)) specs
          |> List.filter_map (fun (d, sp) ->
                 match sp with SAt _ -> None | _ -> Some d)
        in
        let r = L.fresh t "slice" in
        let out_vars = List.map (fun _ -> L.fresh t "o") kept_dims in
        let extents =
          List.map (fun d -> spec_extent vb d (List.nth specs d)) kept_dims
        in
        (* source index per dimension *)
        let src_idxs =
          List.mapi
            (fun d sp ->
              match sp with
              | SAt e -> e
              | SAll ->
                  let pos =
                    List.length (List.filter (fun x -> x < d) kept_dims)
                  in
                  Var (List.nth out_vars pos)
              | SGather g ->
                  let pos =
                    List.length (List.filter (fun x -> x < d) kept_dims)
                  in
                  MGetFlat (Var g, Var (List.nth out_vars pos)))
            specs
        in
        let src_off = flat_offset (dims_of vb rank) src_idxs in
        let dst_off =
          flat_offset extents (List.map (fun v -> Var v) out_vars)
        in
        let inner = [ MSetFlat (Var r, dst_off, MGetFlat (Var vb, src_off)) ] in
        let loops =
          List.fold_right2
            (fun v ext acc ->
              [ For { index = v; bound = ext; body = acc; prov = Some span } ])
            out_vars extents inner
        in
        let stmts =
          sb @ si
          @ [
              Site
                ( Sites.SliceAlias
                    { base = vb; slice = r; identity; safe; why; span },
                  Decl (CMat (out_elem, List.length kept_dims), r,
                    Some (MAlloc (out_elem, extents)))
                  :: loops );
            ]
        in
        L.add_pending t r;
        Some (stmts, Var r)
      end
  | _ -> None

let coerce_scalar (from_ty : T.ty) (to_elem : Nd.elem) e =
  match (from_ty, to_elem) with
  | T.TInt, Nd.EFloat -> Unop (FloatOfInt, e)
  | T.TFloat, Nd.EInt -> Unop (IntOfFloat, e)
  | _ -> e

let h_subscript_assign t (base : A.expr) (indices : A.index list)
    (rhs : A.expr) span : stmt list option =
  match ety base with
  | T.TMat (elem, rank) ->
      let sb, vb = lower_mat t base in
      let si, specs = lower_specs t vb (ety base) indices in
      let rhs_ty = ety rhs in
      let all_at = List.for_all (function SAt _ -> true | _ -> false) specs in
      if all_at then begin
        (* single-element store *)
        let idxs = List.map (function SAt e -> e | _ -> assert false) specs in
        let off = flat_offset (dims_of vb rank) idxs in
        let sr, er = L.lower_expr t rhs in
        let er = coerce_scalar rhs_ty elem er in
        Some (sb @ si @ sr @ [ MSetFlat (Var vb, off, er) ])
      end
      else begin
        let kept_dims =
          List.mapi (fun d sp -> (d, sp)) specs
          |> List.filter_map (fun (d, sp) ->
                 match sp with SAt _ -> None | _ -> Some d)
        in
        let out_vars = List.map (fun _ -> L.fresh t "o") kept_dims in
        let extents =
          List.map (fun d -> spec_extent vb d (List.nth specs d)) kept_dims
        in
        let src_idxs =
          List.mapi
            (fun d sp ->
              match sp with
              | SAt e -> e
              | SAll ->
                  let pos =
                    List.length (List.filter (fun x -> x < d) kept_dims)
                  in
                  Var (List.nth out_vars pos)
              | SGather g ->
                  let pos =
                    List.length (List.filter (fun x -> x < d) kept_dims)
                  in
                  MGetFlat (Var g, Var (List.nth out_vars pos)))
            specs
        in
        let dst_off = flat_offset (dims_of vb rank) src_idxs in
        match rhs_ty with
        | rt when T.is_scalar rt ->
            (* fill assignment *)
            let sr, er = L.lower_expr t rhs in
            let er = coerce_scalar rt elem er in
            let inner = [ MSetFlat (Var vb, dst_off, er) ] in
            let loops =
              List.fold_right2
                (fun v ext acc ->
              [ For { index = v; bound = ext; body = acc; prov = Some span } ])
                out_vars extents inner
            in
            Some (sb @ si @ sr @ loops)
        | T.TMat (relem, _) ->
            let sr, vr = lower_mat t rhs in
            let roff =
              flat_offset extents (List.map (fun v -> Var v) out_vars)
            in
            let inner =
              [
                MSetFlat
                  ( Var vb,
                    dst_off,
                    conv ~from:relem ~to_:elem (MGetFlat (Var vr, roff)) );
              ]
            in
            let loops =
              List.fold_right2
                (fun v ext acc ->
              [ For { index = v; bound = ext; body = acc; prov = Some span } ])
                out_vars extents inner
            in
            Some (sb @ si @ sr @ loops)
        | ty ->
            span_err span "cannot assign %s into a matrix region"
              (T.to_string ty)
      end
  | _ -> None

(* --- with-loops (§III-A4, the Fig 1 → Fig 3 translation) ---------------------- *)

(* Normalise one generator dimension to a 0-based canonical loop:
   returns (loop binder, start expr).  When the start is statically 0 the
   loop variable IS the generator id — which is what lets the programmer
   name it in a §V transform script ("parallelize i"). *)
let gen_loop_var t (id : string) (start : expr) :
    [ `Direct of string | `Shifted of string * string * expr ] =
  match fold_expr start with
  | Int 0 -> `Direct id
  | s -> `Shifted (id, L.fresh t ("g" ^ id), s)

let lower_generator t (gen : Nodes.generator) :
    stmt list * (string * expr * stmt list) list * expr list =
  (* Per dimension: (loop index var, trip count, body prelude binding the
     generator id); plus the actual-index expression list. *)
  let lower_bound b = bind_scalar t (L.lower_expr t b) T.TInt in
  let prelude = ref [] in
  let dims =
    List.map2
      (fun id (lo, hi) ->
        let slo, elo = lower_bound lo in
        let shi, ehi = lower_bound hi in
        prelude := !prelude @ slo @ shi;
        let start =
          match gen.Nodes.lo_rel with
          | Nodes.RLe -> elo
          | Nodes.RLt -> fold_expr (elo +: Int 1)
        in
        let stop =
          match gen.Nodes.hi_rel with
          | Nodes.RLt -> ehi
          | Nodes.RLe -> fold_expr (ehi +: Int 1)
        in
        let count = fold_expr (stop -: start) in
        match gen_loop_var t id start with
        | `Direct v -> (id, v, count, [])
        | `Shifted (id, v, s) ->
            (id, v, count, [ Decl (CInt, id, Some (Var v +: s)) ]))
      gen.Nodes.ids
      (List.combine gen.Nodes.lo gen.Nodes.hi)
  in
  let loops =
    List.map (fun (_, v, count, binds) -> (v, count, binds)) dims
  in
  let actual = List.map (fun (id, _, _, _) -> Var id) dims in
  (!prelude, loops, actual)

(* Wrap [inner] in the generator loop nest — always sequential [For]s;
   the auto-par pass promotes the outermost loop of a [`[For l]`]-shaped
   nest to a ParFor region (§III-C) when enabled. *)
let build_nest ?prov loops inner =
  let rec go = function
    | [] -> inner
    | (v, count, binds) :: rest ->
        [ For { index = v; bound = count; body = binds @ go rest; prov } ]
  in
  go loops

let lower_with t (gen : Nodes.generator) (op : Nodes.operation) (rty : T.ty)
    span : stmt list * expr =
  let prelude, loops, actual = lower_generator t gen in
  match op with
  | Nodes.OGenarray (shape, body) ->
      let out_elem, out_rank = (match rty with
        | T.TMat (e, r) -> (e, r)
        | _ -> (Nd.EFloat, List.length shape))
      in
      let sshape, eshape =
        List.fold_left
          (fun (ss, es) d ->
            let s, e = bind_scalar t (L.lower_expr t d) T.TInt in
            (ss @ s, es @ [ e ]))
          ([], []) shape
      in
      let r = L.fresh t "gen" in
      let sbody, ebody = L.lower_expr t body in
      let ebody =
        match (ety body, out_elem) with
        | T.TInt, Nd.EFloat -> Unop (FloatOfInt, ebody)
        | _ -> ebody
      in
      let inner = sbody @ [ MSetFlat (Var r, flat_offset eshape actual, ebody) ] in
      let nest = build_nest ~prov:span loops inner in
      let nest =
        [ Site (Sites.AutoPar { kind = Sites.WithGen; span }, nest) ]
      in
      let stmts =
        prelude @ sshape
        @ (Decl (CMat (out_elem, out_rank), r, Some (MAlloc (out_elem, eshape)))
          :: nest)
      in
      (* Library-style baseline (§III-A5): "a library implementation
         would likely evaluate the result of the with-loops into a
         temporary variable which is then copied" — materialise that
         extra copy inside a [FuseCopy] site.  The fusion pass deletes it
         (feeding the result to its consumer directly); when fusion is
         off the splice IS the library-style benchmark baseline. *)
      let cpy = L.fresh t "libcpy" and i = L.fresh t "i" in
      let copy_stmts =
        [
          Comment "library-style result copy (fusion disabled)";
          Decl
            ( CMat (out_elem, out_rank),
              cpy,
              Some (MAlloc (out_elem, dims_of r out_rank)) );
          For
            {
              index = i;
              bound = MSize (Var r);
              body = [ MSetFlat (Var cpy, Var i, MGetFlat (Var r, Var i)) ];
              prov = Some span;
            };
        ]
        @ L.rc_dec t (Var r)
      in
      L.add_pending t cpy;
      ( stmts
        @ [ Site (Sites.FuseCopy { result = r; copy = cpy; span }, copy_stmts) ],
        Var cpy )
  | Nodes.OFold (fop, base, body) ->
      let acc_ty = match rty with T.TFloat -> CFloat | T.TBool -> CBool | _ -> CInt in
      let acc = L.fresh t "acc" in
      let sbase, ebase = L.lower_expr t base in
      let ebase =
        match (ety base, rty) with
        | T.TInt, T.TFloat -> Unop (FloatOfInt, ebase)
        | _ -> ebase
      in
      let sbody, ebody = L.lower_expr t body in
      let ebody =
        match (ety body, rty) with
        | T.TInt, T.TFloat -> Unop (FloatOfInt, ebody)
        | _ -> ebody
      in
      let update =
        match fop with
        | Nodes.FPlus -> [ Assign (LVar acc, Var acc +: ebody) ]
        | Nodes.FTimes -> [ Assign (LVar acc, Var acc *: ebody) ]
        | Nodes.FMin ->
            let v = L.fresh t "v" in
            [
              Decl (acc_ty, v, Some ebody);
              If (Var v <: Var acc, [ Assign (LVar acc, Var v) ], []);
            ]
        | Nodes.FMax ->
            let v = L.fresh t "v" in
            [
              Decl (acc_ty, v, Some ebody);
              If (Var acc <: Var v, [ Assign (LVar acc, Var v) ], []);
            ]
      in
      let inner = sbody @ update in
      (* folds stay sequential inside each genarray element (Fig 3): the
         auto-par pass never promotes a FoldAcc site — iterations race on
         the accumulator — but still owns the remark. *)
      let nest = build_nest ~prov:span loops inner in
      let nest = [ Site (Sites.AutoPar { kind = Sites.FoldAcc; span }, nest) ] in
      ( prelude @ sbase @ (Decl (acc_ty, acc, Some ebase) :: nest),
        Var acc )

(* --- matrixMap (§III-A5) -------------------------------------------------------- *)

let lower_matrix_map t (fname : string) (marg : A.expr) (dims : int list)
    (rty : T.ty) span : stmt list * expr =
  let in_elem, rank = mat_of_ty span (ety marg) in
  let out_elem, _ = mat_of_ty span rty in
  let k = List.length dims in
  let comp = List.filter (fun d -> not (List.mem d dims)) (List.init rank Fun.id) in
  let sm, vm = lower_mat t marg in
  let r = L.fresh t "mmapr" in
  (* The lifted per-slice function: "we actually lift this out into a new
     function so that the spawned threads can get direct access to it". *)
  let lifted = L.fresh t ("mmap_" ^ fname) in
  let lf =
    let m = "m" and out = "r" and tvar = "t" in
    let decode =
      (* recover the complement indices from the flattened counter *)
      let rem = L.fresh t "rem" in
      Decl (CInt, rem, Some (Var tvar))
      :: List.concat_map
           (fun d ->
             let ix = Printf.sprintf "c%d" d in
             [
               Decl (CInt, ix, Some (Binop (Arith S.Mod, Var rem, MDim (Var m, Int d))));
               Assign (LVar rem, Var rem /: MDim (Var m, Int d));
             ])
           (List.rev comp)
    in
    let slice = L.fresh t "slice" in
    let ovars = List.map (fun d -> Printf.sprintf "o%d" d) dims in
    let slice_extents = List.map (fun d -> MDim (Var m, Int d)) dims in
    let full_index =
      List.init rank (fun d ->
          if List.mem d dims then
            Var (Printf.sprintf "o%d" d)
          else Var (Printf.sprintf "c%d" d))
    in
    let src_off = flat_offset (dims_of m rank) full_index in
    let slice_off =
      flat_offset slice_extents (List.map (fun v -> Var v) ovars)
    in
    let extract =
      List.fold_right2
        (fun v ext acc ->
              [ For { index = v; bound = ext; body = acc; prov = Some span } ])
        ovars slice_extents
        [ MSetFlat (Var slice, slice_off, MGetFlat (Var m, src_off)) ]
    in
    let outv = L.fresh t "out" in
    let writeback =
      List.fold_right2
        (fun v ext acc ->
              [ For { index = v; bound = ext; body = acc; prov = Some span } ])
        ovars slice_extents
        [ MSetFlat (Var out, src_off, MGetFlat (Var outv, slice_off)) ]
    in
    {
      f_name = lifted;
      f_params =
        [
          (CMat (in_elem, rank), m);
          (CMat (out_elem, rank), out);
          (CInt, tvar);
        ];
      f_ret = CVoid;
      f_body =
        decode
        @ [
            Decl
              ( CMat (in_elem, k),
                slice,
                Some (MAlloc (in_elem, slice_extents)) );
          ]
        @ extract
        @ [ Decl (CMat (out_elem, k), outv, Some (Call (fname, [ Var slice ]))) ]
        @ writeback
        @ L.rc_dec t (Var slice)
        @ L.rc_dec t (Var outv)
        @ [ Return None ];
      f_span = None;
      f_origin = Some t.L.cur_fname;
    }
  in
  t.L.extra_funcs <- lf :: t.L.extra_funcs;
  let total = L.fresh t "total" in
  let total_expr =
    List.fold_left (fun acc d -> acc *: MDim (Var vm, Int d)) (Int 1) comp
    |> fold_expr
  in
  let tt = L.fresh t "t" in
  let loop =
    {
      index = tt;
      bound = Var total;
      body = [ ExprS (Call (lifted, [ Var vm; Var r; Var tt ])) ];
      prov = Some span;
    }
  in
  let stmts =
    sm
    @ [
        Decl (CMat (out_elem, rank), r, Some (MAlloc (out_elem, dims_of vm rank)));
        Decl (CInt, total, Some total_expr);
        Site (Sites.AutoPar { kind = Sites.MatrixMap fname; span }, [ For loop ]);
      ]
  in
  L.add_pending t r;
  (stmts, Var r)

(* --- extension expressions and builtins --------------------------------------- *)

let h_ty _t (ext : A.ext_ty) : T.ty option =
  match ext with
  | Nodes.TyMatrix (elem_te, rank) ->
      let elem =
        match elem_te with
        | A.TyInt -> Nd.EInt
        | A.TyFloat -> Nd.EFloat
        | A.TyBool -> Nd.EBool
        | _ -> Nd.EInt
      in
      Some (T.TMat (elem, rank))
  | _ -> None

let h_expr t (ext : A.ext_expr) (rty : T.ty) span : (stmt list * expr) option =
  match ext with
  | Nodes.EEnd -> (
      match !index_ctx with
      | Some (m, d) -> Some ([], fold_expr (MDim (m, Int d) -: Int 1))
      | None -> span_err span "'end' outside of a subscript")
  | Nodes.EInit (_, dims) ->
      let elem, _rank = mat_of_ty span rty in
      let sdims, edims =
        List.fold_left
          (fun (ss, es) d ->
            let s, e = L.lower_expr t d in
            (ss @ s, es @ [ e ]))
          ([], []) dims
      in
      let tmp = L.fresh t "initm" in
      L.add_pending t tmp;
      Some
        ( sdims @ [ Decl (T.to_ctype rty, tmp, Some (MAlloc (elem, edims))) ],
          Var tmp )
  | Nodes.EWith (gen, op) -> Some (lower_with t gen op rty span)
  | Nodes.EMatrixMap (fname, m, dims) ->
      Some (lower_matrix_map t fname m dims rty span)
  | _ -> None

let h_call t (name : string) (args : A.expr list) (rty : T.ty) _span
    ~expected:_ : (stmt list * expr) option =
  match (name, args) with
  | "dimSize", [ m; d ] ->
      let sm, vm = lower_mat t m in
      let sd, ed = L.lower_expr t d in
      Some (sm @ sd, MDim (Var vm, ed))
  | "readMatrix", [ { A.e = A.StrLit path; _ } ] ->
      let tmp = L.fresh t "rd" in
      L.add_pending t tmp;
      Some
        ( [ Decl (T.to_ctype rty, tmp, Some (MRead (Str path))) ],
          Var tmp )
  | "readMatrix", _ -> None
  | "writeMatrix", [ { A.e = A.StrLit path; _ }; m ] ->
      let sm, vm = lower_mat t m in
      Some (sm @ [ MWrite (Str path, Var vm) ], Int 0)
  | _ -> None
