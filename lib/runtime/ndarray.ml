(** Dense row-major matrices of float/int/bool — the runtime representation
    the matrix extension's generated C code operates on (§III-A), including
    every indexing mode of §III-A3:

    - standard indexing (extracts a single element),
    - range indexing [lo:hi] (inclusive, MATLAB-style, with [end]),
    - whole-dimension indexing [:],
    - logical (boolean-mask) indexing,
    - integer-vector gather indexing (the [ts[beginning::i]] form of Fig 8).

    All modes combine freely across dimensions and work on both sides of an
    assignment. *)

type elem = EFloat | EInt | EBool

let elem_name = function EFloat -> "float" | EInt -> "int" | EBool -> "bool"

type buf = F of float array | I of int array | B of bool array
type t = { shape : Shape.t; buf : buf }

exception Type_error of string

let terr fmt = Format.kasprintf (fun m -> raise (Type_error m)) fmt

(* Kernel-invocation telemetry: one gated atomic bump per whole-matrix
   kernel call (not per element). *)
let c_elementwise = Support.Telemetry.counter "kernel.elementwise"
let c_matmul = Support.Telemetry.counter "kernel.matmul"
let shape m = m.shape
let rank m = Shape.rank m.shape
let size m = Shape.size m.shape

let elem m = match m.buf with F _ -> EFloat | I _ -> EInt | B _ -> EBool

(** [dim_size m d] — the [dimSize(m, d)] builtin. *)
let dim_size m d =
  if d < 0 || d >= rank m then
    Shape.err "dimSize: dimension %d out of range for %s" d
      (Shape.to_string m.shape)
  else m.shape.(d)

(** [create e shape] — zero/false-initialised matrix: the [init] builtin. *)
let create e sh =
  let n = Shape.size sh in
  let buf =
    match e with
    | EFloat -> F (Array.make n 0.)
    | EInt -> I (Array.make n 0)
    | EBool -> B (Array.make n false)
  in
  { shape = Array.copy sh; buf }

let init_float sh f =
  let n = Shape.size sh in
  let a = Array.init n (fun off -> f (Shape.unoffset sh off)) in
  { shape = Array.copy sh; buf = F a }

let init_int sh f =
  let n = Shape.size sh in
  let a = Array.init n (fun off -> f (Shape.unoffset sh off)) in
  { shape = Array.copy sh; buf = I a }

let of_float_array sh a =
  if Array.length a <> Shape.size sh then
    Shape.err "of_float_array: %d elements for shape %s" (Array.length a)
      (Shape.to_string sh);
  { shape = Array.copy sh; buf = F (Array.copy a) }

let of_int_array sh a =
  if Array.length a <> Shape.size sh then
    Shape.err "of_int_array: %d elements for shape %s" (Array.length a)
      (Shape.to_string sh);
  { shape = Array.copy sh; buf = I (Array.copy a) }

let of_bool_array sh a =
  if Array.length a <> Shape.size sh then
    Shape.err "of_bool_array: %d elements for shape %s" (Array.length a)
      (Shape.to_string sh);
  { shape = Array.copy sh; buf = B (Array.copy a) }

(** 1-D float vector from a list. *)
let vec_f xs = of_float_array [| List.length xs |] (Array.of_list xs)

let vec_i xs = of_int_array [| List.length xs |] (Array.of_list xs)

(** [range lo hi] — the [lo::hi] range-construction expression of Fig 8:
    a 1-D int vector [lo, lo+1, …, hi] (inclusive; empty when [hi < lo]). *)
let range lo hi =
  let n = max 0 (hi - lo + 1) in
  { shape = [| n |]; buf = I (Array.init n (fun i -> lo + i)) }

let copy m =
  {
    shape = Array.copy m.shape;
    buf =
      (match m.buf with
      | F a -> F (Array.copy a)
      | I a -> I (Array.copy a)
      | B a -> B (Array.copy a));
  }

(* --- flat accessors ------------------------------------------------------ *)

let get_flat m off : Scalar.t =
  match m.buf with
  | F a -> Scalar.F a.(off)
  | I a -> Scalar.I a.(off)
  | B a -> Scalar.B a.(off)

let set_flat m off (v : Scalar.t) =
  match (m.buf, v) with
  | F a, Scalar.F x -> a.(off) <- x
  | F a, Scalar.I x -> a.(off) <- float_of_int x
  | I a, Scalar.I x -> a.(off) <- x
  | B a, Scalar.B x -> a.(off) <- x
  | _ ->
      terr "cannot store %s into %s matrix" (Scalar.to_string v)
        (elem_name (elem m))

let get m idx = get_flat m (Shape.offset m.shape idx)
let set m idx v = set_flat m (Shape.offset m.shape idx) v

(* --- elementwise operations (§III-A2) ------------------------------------ *)

let same_elem a b =
  if elem a <> elem b then
    terr "element type mismatch: %s vs %s" (elem_name (elem a))
      (elem_name (elem b))

(** Elementwise arithmetic; the paper's matrix operators are all
    elementwise except linear-algebra [*] (see {!matmul}). Checks equal
    type and rank/shape, as the extended type system does. *)
let arith op a b =
  Support.Telemetry.bump c_elementwise;
  same_elem a b;
  let sh = Shape.broadcast_eq a.shape b.shape in
  match (a.buf, b.buf) with
  | F x, F y ->
      let r =
        Array.init (Array.length x) (fun i ->
            Scalar.to_float (Scalar.arith op (Scalar.F x.(i)) (Scalar.F y.(i))))
      in
      { shape = Array.copy sh; buf = F r }
  | I x, I y ->
      let r =
        Array.init (Array.length x) (fun i ->
            Scalar.to_int (Scalar.arith op (Scalar.I x.(i)) (Scalar.I y.(i))))
      in
      { shape = Array.copy sh; buf = I r }
  | _ -> terr "arithmetic on boolean matrices"

(** Matrix–scalar arithmetic, in either argument order (§III-A2). *)
let arith_scalar op (m : t) (s : Scalar.t) ~scalar_left : t =
  Support.Telemetry.bump c_elementwise;
  let app a b = if scalar_left then Scalar.arith op b a else Scalar.arith op a b in
  match m.buf with
  | F x ->
      {
        shape = Array.copy m.shape;
        buf = F (Array.map (fun v -> Scalar.to_float (app (Scalar.F v) s)) x);
      }
  | I x -> (
      match s with
      | Scalar.F _ ->
          {
            shape = Array.copy m.shape;
            buf =
              F (Array.map (fun v -> Scalar.to_float (app (Scalar.I v) s)) x);
          }
      | _ ->
          {
            shape = Array.copy m.shape;
            buf = I (Array.map (fun v -> Scalar.to_int (app (Scalar.I v) s)) x);
          })
  | B _ -> terr "arithmetic on boolean matrix"

(** Elementwise comparison producing a boolean matrix (drives logical
    indexing, e.g. [ssh < i] in Fig 4). *)
let cmp op a b =
  Support.Telemetry.bump c_elementwise;
  let sh = Shape.broadcast_eq a.shape b.shape in
  let n = Shape.size sh in
  let r =
    Array.init n (fun i ->
        Scalar.to_bool (Scalar.cmp op (get_flat a i) (get_flat b i)))
  in
  { shape = Array.copy sh; buf = B r }

let cmp_scalar op m s ~scalar_left =
  let n = size m in
  let r =
    Array.init n (fun i ->
        let x = get_flat m i in
        Scalar.to_bool
          (if scalar_left then Scalar.cmp op s x else Scalar.cmp op x s))
  in
  { shape = Array.copy m.shape; buf = B r }

let logic op a b =
  let sh = Shape.broadcast_eq a.shape b.shape in
  match (a.buf, b.buf) with
  | B x, B y ->
      let f = match op with
        | Scalar.And -> ( && )
        | Scalar.Or -> ( || )
      in
      { shape = Array.copy sh; buf = B (Array.init (Array.length x) (fun i -> f x.(i) y.(i))) }
  | _ -> terr "logical operator on non-boolean matrices"

let not_ m =
  match m.buf with
  | B x -> { shape = Array.copy m.shape; buf = B (Array.map not x) }
  | _ -> terr "! on non-boolean matrix"

let neg m =
  match m.buf with
  | F x -> { shape = Array.copy m.shape; buf = F (Array.map (fun v -> -.v) x) }
  | I x -> { shape = Array.copy m.shape; buf = I (Array.map (fun v -> -v) x) }
  | B _ -> terr "negation of boolean matrix"

(** Linear-algebra matrix multiplication — the meaning of [*] on two
    matrices; elementwise multiplication is the distinct [.*] operator
    (§III-A2). 2-D only, inner dimensions must agree. *)
let matmul a b =
  Support.Telemetry.bump c_matmul;
  same_elem a b;
  if rank a <> 2 || rank b <> 2 then
    Shape.err "matrix multiplication requires rank 2, got %s and %s"
      (Shape.to_string a.shape) (Shape.to_string b.shape);
  let m = a.shape.(0) and k = a.shape.(1) in
  let k' = b.shape.(0) and n = b.shape.(1) in
  if k <> k' then
    Shape.err "matrix multiplication inner dimensions: %s vs %s"
      (Shape.to_string a.shape) (Shape.to_string b.shape);
  match (a.buf, b.buf) with
  | F x, F y ->
      let r = Array.make (m * n) 0. in
      for i = 0 to m - 1 do
        for l = 0 to k - 1 do
          let xv = x.((i * k) + l) in
          for j = 0 to n - 1 do
            r.((i * n) + j) <- r.((i * n) + j) +. (xv *. y.((l * n) + j))
          done
        done
      done;
      { shape = [| m; n |]; buf = F r }
  | I x, I y ->
      let r = Array.make (m * n) 0 in
      for i = 0 to m - 1 do
        for l = 0 to k - 1 do
          let xv = x.((i * k) + l) in
          for j = 0 to n - 1 do
            r.((i * n) + j) <- r.((i * n) + j) + (xv * y.((l * n) + j))
          done
        done
      done;
      { shape = [| m; n |]; buf = I r }
  | _ -> terr "matrix multiplication on boolean matrices"

(* --- indexing (§III-A3) --------------------------------------------------- *)

type index =
  | At of int  (** single position: collapses the dimension *)
  | Range of int * int  (** inclusive [lo:hi] *)
  | All  (** [:] *)
  | Mask of t  (** logical indexing by a 1-D boolean matrix *)
  | Gather of t  (** indexing by a 1-D integer matrix *)

(* Selected source positions per dimension + whether the dim collapses. *)
let resolve_dim m d = function
  | At i ->
      if i < 0 || i >= m.shape.(d) then
        Shape.err "index %d out of bounds in dimension %d of %s" i d
          (Shape.to_string m.shape);
      ([| i |], true)
  | Range (lo, hi) ->
      if lo < 0 || hi >= m.shape.(d) || lo > hi then
        Shape.err "range %d:%d out of bounds in dimension %d of %s" lo hi d
          (Shape.to_string m.shape);
      (Array.init (hi - lo + 1) (fun i -> lo + i), false)
  | All -> (Array.init m.shape.(d) (fun i -> i), false)
  | Mask b -> (
      match b.buf with
      | B mask ->
          if rank b <> 1 || Array.length mask <> m.shape.(d) then
            Shape.err
              "logical index of shape %s does not match dimension %d (size %d)"
              (Shape.to_string b.shape) d m.shape.(d);
          let sel = ref [] in
          Array.iteri (fun i keep -> if keep then sel := i :: !sel) mask;
          (Array.of_list (List.rev !sel), false)
      | _ -> terr "logical index must be a boolean matrix")
  | Gather g -> (
      match g.buf with
      | I ids ->
          if rank g <> 1 then terr "gather index must be a 1-D integer matrix";
          Array.iter
            (fun i ->
              if i < 0 || i >= m.shape.(d) then
                Shape.err "gather index %d out of bounds in dimension %d" i d)
            ids;
          (Array.copy ids, false)
      | _ -> terr "gather index must be an integer matrix")

let resolve m (spec : index array) =
  if Array.length spec <> rank m then
    Shape.err "indexing with %d subscripts into rank-%d matrix"
      (Array.length spec) (rank m);
  Array.mapi (fun d s -> resolve_dim m d s) spec

(** [slice m spec] — the general right-hand-side indexing operation.
    Dimensions indexed with [At] collapse; the result of collapsing all
    dimensions is a rank-0 matrix (use {!to_scalar}). *)
let slice m spec : t =
  let sels = resolve m spec in
  let kept =
    Array.to_list sels
    |> List.filter_map (fun (sel, collapse) ->
           if collapse then None else Some (Array.length sel))
  in
  let out_shape = Array.of_list kept in
  let out = create (elem m) out_shape in
  let src_idx = Array.make (rank m) 0 in
  Shape.iter out_shape (fun out_idx ->
      let k = ref 0 in
      Array.iteri
        (fun d (sel, collapse) ->
          if collapse then src_idx.(d) <- sel.(0)
          else begin
            src_idx.(d) <- sel.(out_idx.(!k));
            incr k
          end)
        sels;
      set out out_idx (get m src_idx));
  out

(** [slice_assign m spec src] — indexing on the left-hand side of [=]:
    writes [src] into the selected region, which must match its shape. *)
let slice_assign m spec (src : t) : unit =
  let sels = resolve m spec in
  let kept =
    Array.to_list sels
    |> List.filter_map (fun (sel, collapse) ->
           if collapse then None else Some (Array.length sel))
  in
  let region = Array.of_list kept in
  if not (Shape.equal region src.shape) then
    Shape.err "assignment of %s into region %s" (Shape.to_string src.shape)
      (Shape.to_string region);
  same_elem m src;
  let dst_idx = Array.make (rank m) 0 in
  Shape.iter region (fun out_idx ->
      let k = ref 0 in
      Array.iteri
        (fun d (sel, collapse) ->
          if collapse then dst_idx.(d) <- sel.(0)
          else begin
            dst_idx.(d) <- sel.(out_idx.(!k));
            incr k
          end)
        sels;
      set m dst_idx (get src out_idx))

(** [fill_assign m spec v] — scalar broadcast into a selected region. *)
let fill_assign m spec (v : Scalar.t) : unit =
  let sels = resolve m spec in
  let kept =
    Array.to_list sels
    |> List.filter_map (fun (sel, collapse) ->
           if collapse then None else Some (Array.length sel))
  in
  let region = Array.of_list kept in
  let dst_idx = Array.make (rank m) 0 in
  Shape.iter region (fun out_idx ->
      let k = ref 0 in
      Array.iteri
        (fun d (sel, collapse) ->
          if collapse then dst_idx.(d) <- sel.(0)
          else begin
            dst_idx.(d) <- sel.(out_idx.(!k));
            incr k
          end)
        sels;
      set m dst_idx v)

let to_scalar m =
  if size m <> 1 then
    Shape.err "matrix of shape %s used as scalar" (Shape.to_string m.shape)
  else get_flat m 0

(* --- folds ---------------------------------------------------------------- *)

(** [fold f init m] — row-major fold over all elements (the runtime core of
    the fold with-loop). *)
let fold f init m =
  let acc = ref init in
  for off = 0 to size m - 1 do
    acc := f !acc (get_flat m off)
  done;
  !acc

let sum_float m =
  match m.buf with
  | F a -> Array.fold_left ( +. ) 0. a
  | I a -> Array.fold_left (fun acc x -> acc +. float_of_int x) 0. a
  | B _ -> terr "sum of boolean matrix"

let count_true m =
  match m.buf with
  | B a -> Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 a
  | _ -> terr "count_true on non-boolean matrix"

(* --- structural ----------------------------------------------------------- *)

let equal a b =
  Shape.equal a.shape b.shape
  &&
  match (a.buf, b.buf) with
  | F x, F y -> x = y
  | I x, I y -> x = y
  | B x, B y -> x = y
  | _ -> false

(** Approximate float equality with tolerance, for parallel-vs-serial and
    transformed-vs-baseline comparisons (FP reassociation). *)
let approx_equal ?(eps = 1e-6) a b =
  Shape.equal a.shape b.shape
  &&
  match (a.buf, b.buf) with
  | F x, F y ->
      let ok = ref true in
      Array.iteri
        (fun i v ->
          let d = abs_float (v -. y.(i)) in
          let scale = max 1. (max (abs_float v) (abs_float y.(i))) in
          if d > eps *. scale then ok := false)
        x;
      !ok
  | _ -> equal a b

let pp ppf m =
  let n = size m in
  let elems =
    List.init (min n 16) (fun i -> Scalar.to_string (get_flat m i))
  in
  Fmt.pf ppf "Matrix %s %s {%s%s}" (elem_name (elem m))
    (Shape.to_string m.shape)
    (String.concat ", " elems)
    (if n > 16 then ", …" else "")

let to_string m = Fmt.str "%a" pp m

(* --- binary I/O (readMatrix / writeMatrix builtins) ----------------------- *)

let magic = "MMAT1\n"

(** [write_file path m] — the [writeMatrix] builtin: a small self-describing
    binary format (magic, elem kind, rank, extents, then elements). *)
let write_file path m =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      let kind = match elem m with EFloat -> 'f' | EInt -> 'i' | EBool -> 'b' in
      output_char oc kind;
      output_binary_int oc (rank m);
      Array.iter (output_binary_int oc) m.shape;
      match m.buf with
      | F a -> Array.iter (fun v -> output_string oc (Int64.to_string (Int64.bits_of_float v) ^ "\n")) a
      | I a -> Array.iter (fun v -> output_string oc (string_of_int v ^ "\n")) a
      | B a -> Array.iter (fun v -> output_char oc (if v then '1' else '0')) a)

(** [read_file path] — the [readMatrix] builtin. *)
let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let m = really_input_string ic (String.length magic) in
      if m <> magic then terr "%s: not a matrix file" path;
      let kind = input_char ic in
      let r = input_binary_int ic in
      let sh = Array.init r (fun _ -> input_binary_int ic) in
      let n = Shape.size sh in
      match kind with
      | 'f' ->
          let a =
            Array.init n (fun _ ->
                Int64.float_of_bits (Int64.of_string (input_line ic)))
          in
          { shape = sh; buf = F a }
      | 'i' ->
          let a = Array.init n (fun _ -> int_of_string (input_line ic)) in
          { shape = sh; buf = I a }
      | 'b' ->
          let a = Array.init n (fun _ -> input_char ic = '1') in
          { shape = sh; buf = B a }
      | c -> terr "%s: unknown element kind %C" path c)
