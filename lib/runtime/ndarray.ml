(** Dense row-major matrices of float/int/bool — the runtime representation
    the matrix extension's generated C code operates on (§III-A), including
    every indexing mode of §III-A3:

    - standard indexing (extracts a single element),
    - range indexing [lo:hi] (inclusive, MATLAB-style, with [end]),
    - whole-dimension indexing [:],
    - logical (boolean-mask) indexing,
    - integer-vector gather indexing (the [ts[beginning::i]] form of Fig 8).

    All modes combine freely across dimensions and work on both sides of an
    assignment. *)

type elem = EFloat | EInt | EBool

let elem_name = function EFloat -> "float" | EInt -> "int" | EBool -> "bool"

type buf = F of float array | I of int array | B of bool array
type t = { shape : Shape.t; buf : buf }

exception Type_error of string

exception Io_error of string
(** Structured matrix-file failure ([readMatrix] on a missing, truncated
    or garbage file): the message always names the file, the byte offset
    where reading failed, and what was expected there. *)

let terr fmt = Format.kasprintf (fun m -> raise (Type_error m)) fmt
let io_err fmt = Format.kasprintf (fun m -> raise (Io_error m)) fmt

(* Fault-injection sites: every matrix allocation, and the entry of the
   readMatrix builtin. *)
let fp_alloc = Support.Failpoint.register "ndarray.alloc"
let fp_read = Support.Failpoint.register "io.read_matrix"

(* Kernel-invocation telemetry: one gated atomic bump per whole-matrix
   kernel call (not per element), plus per-kernel-class nanoseconds. *)
let c_elementwise = Support.Telemetry.counter "kernel.elementwise"
let c_elementwise_ns = Support.Telemetry.counter "kernel.elementwise_ns"
let c_matmul = Support.Telemetry.counter "kernel.matmul"
let c_matmul_blocked = Support.Telemetry.counter "kernel.matmul_blocked"
let c_matmul_ns = Support.Telemetry.counter "kernel.matmul_ns"
let c_reduce = Support.Telemetry.counter "kernel.reduce"
let c_reduce_ns = Support.Telemetry.counter "kernel.reduce_ns"

(* [timed c f] — run [f], charging its wall-clock to counter [c] when
   telemetry is on (one gated atomic load on the disabled path). *)
let timed c f =
  if Support.Telemetry.on () then begin
    let t0 = Support.Telemetry.now_ns () in
    let r = f () in
    Support.Telemetry.add c (Support.Telemetry.now_ns () - t0);
    r
  end
  else f ()

(* --- kernel tuning (threads flag + MMC_BLOCK / MMC_GRAIN, §III-C) -------- *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt s with Some v when v > 0 -> v | _ -> default)
  | None -> default

(* Cache-block edge for the tiled matmul: a [block x block] float tile of
   the right operand is what each inner kernel pass re-reads, so the
   default keeps two tiles comfortably inside a 32 KiB L1d. *)
let block_size = ref (env_int "MMC_BLOCK" 48)

(* Minimum elements before an elementwise/reduction kernel wakes the
   pool; below it the dispatch latency outweighs the parallel work. *)
let par_grain = ref (env_int "MMC_GRAIN" 16_384)

(* Minimum multiply-adds (m*k*n) before matmul row-blocks are dispatched
   to the pool and before blocking beats the plain triple loop. *)
let matmul_par_threshold = 1 lsl 18
let matmul_block_threshold = 1 lsl 12

let set_block_size b =
  if b < 1 then invalid_arg "Ndarray.set_block_size";
  block_size := b

let set_par_grain g =
  if g < 1 then invalid_arg "Ndarray.set_par_grain";
  par_grain := g

let get_block_size () = !block_size
let get_par_grain () = !par_grain

(* [par_fill ?pool n f] — call [f i] for all [0 <= i < n], on the pool in
   contiguous chunks when the matrix is big enough to pay for dispatch.
   Each index is written by exactly one thread (disjoint chunks), so no
   synchronisation is needed beyond the stop barrier. *)
let par_fill ?pool n f =
  match pool with
  | Some p when n >= !par_grain ->
      Pool.parallel_for_ranges ~grain:(!par_grain / 4) p 0 n (fun lo hi ->
          for i = lo to hi - 1 do
            f i
          done)
  | _ ->
      for i = 0 to n - 1 do
        f i
      done

let shape m = m.shape
let rank m = Shape.rank m.shape
let size m = Shape.size m.shape

let elem m = match m.buf with F _ -> EFloat | I _ -> EInt | B _ -> EBool

(** [dim_size m d] — the [dimSize(m, d)] builtin. *)
let dim_size m d =
  if d < 0 || d >= rank m then
    Shape.err "dimSize: dimension %d out of range for %s" d
      (Shape.to_string m.shape)
  else m.shape.(d)

(** Observation hook fired on every {!create} with the payload size in
    bytes (4 per element, matching the RC registry's accounting).  The
    profiler installs itself here to attribute allocation traffic to the
    source span being executed; [None] costs one load per allocation. *)
let alloc_hook : (int -> unit) option ref = ref None

(** [create e shape] — zero/false-initialised matrix: the [init] builtin.
    The [ndarray.alloc] failpoint fires {e before} the buffer exists or
    the allocation hook runs, modelling an allocation failure that leaves
    no trace behind. *)
let create e sh =
  Support.Failpoint.hit fp_alloc;
  let n = Shape.size sh in
  let buf =
    match e with
    | EFloat -> F (Array.make n 0.)
    | EInt -> I (Array.make n 0)
    | EBool -> B (Array.make n false)
  in
  (match !alloc_hook with Some f -> f (n * 4) | None -> ());
  { shape = Array.copy sh; buf }

let init_float sh f =
  let n = Shape.size sh in
  let a = Array.init n (fun off -> f (Shape.unoffset sh off)) in
  { shape = Array.copy sh; buf = F a }

let init_int sh f =
  let n = Shape.size sh in
  let a = Array.init n (fun off -> f (Shape.unoffset sh off)) in
  { shape = Array.copy sh; buf = I a }

let of_float_array sh a =
  if Array.length a <> Shape.size sh then
    Shape.err "of_float_array: %d elements for shape %s" (Array.length a)
      (Shape.to_string sh);
  { shape = Array.copy sh; buf = F (Array.copy a) }

let of_int_array sh a =
  if Array.length a <> Shape.size sh then
    Shape.err "of_int_array: %d elements for shape %s" (Array.length a)
      (Shape.to_string sh);
  { shape = Array.copy sh; buf = I (Array.copy a) }

let of_bool_array sh a =
  if Array.length a <> Shape.size sh then
    Shape.err "of_bool_array: %d elements for shape %s" (Array.length a)
      (Shape.to_string sh);
  { shape = Array.copy sh; buf = B (Array.copy a) }

(** 1-D float vector from a list. *)
let vec_f xs = of_float_array [| List.length xs |] (Array.of_list xs)

let vec_i xs = of_int_array [| List.length xs |] (Array.of_list xs)

(** [range lo hi] — the [lo::hi] range-construction expression of Fig 8:
    a 1-D int vector [lo, lo+1, …, hi] (inclusive; empty when [hi < lo]). *)
let range lo hi =
  let n = max 0 (hi - lo + 1) in
  { shape = [| n |]; buf = I (Array.init n (fun i -> lo + i)) }

let copy m =
  {
    shape = Array.copy m.shape;
    buf =
      (match m.buf with
      | F a -> F (Array.copy a)
      | I a -> I (Array.copy a)
      | B a -> B (Array.copy a));
  }

(* --- flat accessors ------------------------------------------------------ *)

let get_flat m off : Scalar.t =
  match m.buf with
  | F a -> Scalar.F a.(off)
  | I a -> Scalar.I a.(off)
  | B a -> Scalar.B a.(off)

let set_flat m off (v : Scalar.t) =
  match (m.buf, v) with
  | F a, Scalar.F x -> a.(off) <- x
  | F a, Scalar.I x -> a.(off) <- float_of_int x
  | I a, Scalar.I x -> a.(off) <- x
  | B a, Scalar.B x -> a.(off) <- x
  | _ ->
      terr "cannot store %s into %s matrix" (Scalar.to_string v)
        (elem_name (elem m))

let get m idx = get_flat m (Shape.offset m.shape idx)
let set m idx v = set_flat m (Shape.offset m.shape idx) v

(* --- elementwise operations (§III-A2) ------------------------------------ *)

let same_elem a b =
  if elem a <> elem b then
    terr "element type mismatch: %s vs %s" (elem_name (elem a))
      (elem_name (elem b))

(* Resolved float/int binary ops so the hot loops never allocate Scalar
   boxes; division/modulo keep Scalar's exact error messages. *)
let float_op : Scalar.arith -> float -> float -> float = function
  | Scalar.Add -> ( +. )
  | Scalar.Sub -> ( -. )
  | Scalar.Mul -> ( *. )
  | Scalar.Div -> ( /. )
  | Scalar.Mod -> fun _ _ -> Scalar.err "%% requires integer operands"

let int_op : Scalar.arith -> int -> int -> int = function
  | Scalar.Add -> ( + )
  | Scalar.Sub -> ( - )
  | Scalar.Mul -> ( * )
  | Scalar.Div ->
      fun x y -> if y = 0 then Scalar.err "integer division by zero" else x / y
  | Scalar.Mod -> fun x y -> if y = 0 then Scalar.err "modulo by zero" else x mod y

(** Elementwise arithmetic; the paper's matrix operators are all
    elementwise except linear-algebra [*] (see {!matmul}). Checks equal
    type and rank/shape, as the extended type system does.  With [?pool],
    matrices of at least the grain size are filled in parallel chunks
    (elementwise maps are order-independent, so parallel results are
    bit-for-bit identical to sequential ones). *)
let arith ?pool op a b =
  Support.Telemetry.bump c_elementwise;
  same_elem a b;
  let sh = Shape.broadcast_eq a.shape b.shape in
  timed c_elementwise_ns @@ fun () ->
  match (a.buf, b.buf) with
  | F x, F y ->
      let f = float_op op in
      let n = Array.length x in
      let r = Array.make n 0. in
      par_fill ?pool n (fun i ->
          Array.unsafe_set r i
            (f (Array.unsafe_get x i) (Array.unsafe_get y i)));
      { shape = Array.copy sh; buf = F r }
  | I x, I y ->
      let f = int_op op in
      let n = Array.length x in
      let r = Array.make n 0 in
      par_fill ?pool n (fun i ->
          Array.unsafe_set r i
            (f (Array.unsafe_get x i) (Array.unsafe_get y i)));
      { shape = Array.copy sh; buf = I r }
  | _ -> terr "arithmetic on boolean matrices"

(** Matrix–scalar arithmetic, in either argument order (§III-A2). *)
let arith_scalar ?pool op (m : t) (s : Scalar.t) ~scalar_left : t =
  Support.Telemetry.bump c_elementwise;
  timed c_elementwise_ns @@ fun () ->
  (* Generic per-element path: exact [Scalar.arith] semantics (and error
     messages) for the cold combinations, e.g. a boolean scalar. *)
  let app a b =
    if scalar_left then Scalar.arith op b a else Scalar.arith op a b
  in
  match (m.buf, s) with
  | F x, (Scalar.F _ | Scalar.I _) ->
      let f = float_op op and sf = Scalar.to_float s in
      let n = Array.length x in
      let r = Array.make n 0. in
      par_fill ?pool n (fun i ->
          let v = Array.unsafe_get x i in
          Array.unsafe_set r i (if scalar_left then f sf v else f v sf));
      { shape = Array.copy m.shape; buf = F r }
  | I x, Scalar.F _ ->
      let f = float_op op and sf = Scalar.to_float s in
      let n = Array.length x in
      let r = Array.make n 0. in
      par_fill ?pool n (fun i ->
          let v = float_of_int (Array.unsafe_get x i) in
          Array.unsafe_set r i (if scalar_left then f sf v else f v sf));
      { shape = Array.copy m.shape; buf = F r }
  | I x, Scalar.I si ->
      let f = int_op op in
      let n = Array.length x in
      let r = Array.make n 0 in
      par_fill ?pool n (fun i ->
          let v = Array.unsafe_get x i in
          Array.unsafe_set r i (if scalar_left then f si v else f v si));
      { shape = Array.copy m.shape; buf = I r }
  | F x, _ ->
      {
        shape = Array.copy m.shape;
        buf = F (Array.map (fun v -> Scalar.to_float (app (Scalar.F v) s)) x);
      }
  | I x, _ ->
      {
        shape = Array.copy m.shape;
        buf = I (Array.map (fun v -> Scalar.to_int (app (Scalar.I v) s)) x);
      }
  | B _, _ -> terr "arithmetic on boolean matrix"

(* Comparison through the same float ordering [Scalar.cmp] uses, so the
   fast paths below are bit-for-bit identical to the generic one. *)
let cmp_bool : Scalar.cmp -> int -> bool = fun op c ->
  match op with
  | Scalar.Lt -> c < 0
  | Scalar.Le -> c <= 0
  | Scalar.Gt -> c > 0
  | Scalar.Ge -> c >= 0
  | Scalar.Eq -> c = 0
  | Scalar.Ne -> c <> 0

(** Elementwise comparison producing a boolean matrix (drives logical
    indexing, e.g. [ssh < i] in Fig 4). *)
let cmp ?pool op a b =
  Support.Telemetry.bump c_elementwise;
  let sh = Shape.broadcast_eq a.shape b.shape in
  let n = Shape.size sh in
  timed c_elementwise_ns @@ fun () ->
  match (a.buf, b.buf) with
  | F x, F y ->
      let r = Array.make n false in
      par_fill ?pool n (fun i ->
          Array.unsafe_set r i
            (cmp_bool op
               (compare (Array.unsafe_get x i) (Array.unsafe_get y i))));
      { shape = Array.copy sh; buf = B r }
  | I x, I y ->
      let r = Array.make n false in
      par_fill ?pool n (fun i ->
          Array.unsafe_set r i
            (cmp_bool op
               (compare
                  (float_of_int (Array.unsafe_get x i))
                  (float_of_int (Array.unsafe_get y i)))));
      { shape = Array.copy sh; buf = B r }
  | _ ->
      let r =
        Array.init n (fun i ->
            Scalar.to_bool (Scalar.cmp op (get_flat a i) (get_flat b i)))
      in
      { shape = Array.copy sh; buf = B r }

let cmp_scalar ?pool op m s ~scalar_left =
  let n = size m in
  timed c_elementwise_ns @@ fun () ->
  match (m.buf, s) with
  | F x, (Scalar.F _ | Scalar.I _) ->
      let sf = Scalar.to_float s in
      let r = Array.make n false in
      par_fill ?pool n (fun i ->
          let v = Array.unsafe_get x i in
          let c = if scalar_left then compare sf v else compare v sf in
          Array.unsafe_set r i (cmp_bool op c));
      { shape = Array.copy m.shape; buf = B r }
  | I x, (Scalar.F _ | Scalar.I _) ->
      let sf = Scalar.to_float s in
      let r = Array.make n false in
      par_fill ?pool n (fun i ->
          let v = float_of_int (Array.unsafe_get x i) in
          let c = if scalar_left then compare sf v else compare v sf in
          Array.unsafe_set r i (cmp_bool op c));
      { shape = Array.copy m.shape; buf = B r }
  | _ ->
      let r =
        Array.init n (fun i ->
            let x = get_flat m i in
            Scalar.to_bool
              (if scalar_left then Scalar.cmp op s x else Scalar.cmp op x s))
      in
      { shape = Array.copy m.shape; buf = B r }

let logic ?pool op a b =
  let sh = Shape.broadcast_eq a.shape b.shape in
  match (a.buf, b.buf) with
  | B x, B y ->
      let f = match op with
        | Scalar.And -> ( && )
        | Scalar.Or -> ( || )
      in
      let n = Array.length x in
      let r = Array.make n false in
      par_fill ?pool n (fun i ->
          Array.unsafe_set r i (f (Array.unsafe_get x i) (Array.unsafe_get y i)));
      { shape = Array.copy sh; buf = B r }
  | _ -> terr "logical operator on non-boolean matrices"

let not_ ?pool m =
  match m.buf with
  | B x ->
      let n = Array.length x in
      let r = Array.make n false in
      par_fill ?pool n (fun i ->
          Array.unsafe_set r i (not (Array.unsafe_get x i)));
      { shape = Array.copy m.shape; buf = B r }
  | _ -> terr "! on non-boolean matrix"

let neg ?pool m =
  match m.buf with
  | F x ->
      let n = Array.length x in
      let r = Array.make n 0. in
      par_fill ?pool n (fun i ->
          Array.unsafe_set r i (-.Array.unsafe_get x i));
      { shape = Array.copy m.shape; buf = F r }
  | I x ->
      let n = Array.length x in
      let r = Array.make n 0 in
      par_fill ?pool n (fun i -> Array.unsafe_set r i (-Array.unsafe_get x i));
      { shape = Array.copy m.shape; buf = I r }
  | B _ -> terr "negation of boolean matrix"

(* Shared validation for all matmul kernels: rank 2, matching element
   types, agreeing inner dimensions.  Returns (m, k, n). *)
let matmul_dims a b =
  same_elem a b;
  if rank a <> 2 || rank b <> 2 then
    Shape.err "matrix multiplication requires rank 2, got %s and %s"
      (Shape.to_string a.shape) (Shape.to_string b.shape);
  let m = a.shape.(0) and k = a.shape.(1) in
  let k' = b.shape.(0) and n = b.shape.(1) in
  if k <> k' then
    Shape.err "matrix multiplication inner dimensions: %s vs %s"
      (Shape.to_string a.shape) (Shape.to_string b.shape);
  (m, k, n)

(** The plain ikj triple loop — the oracle the blocked kernel is
    property-tested against, and the sequential baseline the kernel bench
    measures speedup over. *)
let matmul_naive a b =
  let m, k, n = matmul_dims a b in
  match (a.buf, b.buf) with
  | F x, F y ->
      let r = Array.make (m * n) 0. in
      for i = 0 to m - 1 do
        for l = 0 to k - 1 do
          let xv = x.((i * k) + l) in
          for j = 0 to n - 1 do
            r.((i * n) + j) <- r.((i * n) + j) +. (xv *. y.((l * n) + j))
          done
        done
      done;
      { shape = [| m; n |]; buf = F r }
  | I x, I y ->
      let r = Array.make (m * n) 0 in
      for i = 0 to m - 1 do
        for l = 0 to k - 1 do
          let xv = x.((i * k) + l) in
          for j = 0 to n - 1 do
            r.((i * n) + j) <- r.((i * n) + j) + (xv * y.((l * n) + j))
          done
        done
      done;
      { shape = [| m; n |]; buf = I r }
  | _ -> terr "matrix multiplication on boolean matrices"

(* Cache-blocked float kernel over the row range [row_lo, row_hi).
   Tiles the l (inner) and j (column) loops by [bs] so each pass re-reads
   one [bs x bs] tile of [y] from L1; within a tile, each row accumulates
   4 columns at a time in registers.  Writes to [r] rows in the range
   only, so disjoint row ranges can run on different threads. *)
let blocked_rows_f x y r k n bs row_lo row_hi =
  let lb = ref 0 in
  while !lb < k do
    let l_hi = min k (!lb + bs) in
    let jb = ref 0 in
    while !jb < n do
      let j_hi = min n (!jb + bs) in
      let quads = !jb + ((j_hi - !jb) / 4 * 4) in
      for i = row_lo to row_hi - 1 do
        let xrow = i * k and rrow = i * n in
        let j = ref !jb in
        while !j < quads do
          let j0 = !j in
          let acc0 = ref 0. and acc1 = ref 0. and acc2 = ref 0. in
          let acc3 = ref 0. in
          for l = !lb to l_hi - 1 do
            let xv = Array.unsafe_get x (xrow + l) in
            let yrow = (l * n) + j0 in
            acc0 := !acc0 +. (xv *. Array.unsafe_get y yrow);
            acc1 := !acc1 +. (xv *. Array.unsafe_get y (yrow + 1));
            acc2 := !acc2 +. (xv *. Array.unsafe_get y (yrow + 2));
            acc3 := !acc3 +. (xv *. Array.unsafe_get y (yrow + 3))
          done;
          Array.unsafe_set r (rrow + j0)
            (Array.unsafe_get r (rrow + j0) +. !acc0);
          Array.unsafe_set r (rrow + j0 + 1)
            (Array.unsafe_get r (rrow + j0 + 1) +. !acc1);
          Array.unsafe_set r (rrow + j0 + 2)
            (Array.unsafe_get r (rrow + j0 + 2) +. !acc2);
          Array.unsafe_set r (rrow + j0 + 3)
            (Array.unsafe_get r (rrow + j0 + 3) +. !acc3);
          j := j0 + 4
        done;
        for j = quads to j_hi - 1 do
          let acc = ref 0. in
          for l = !lb to l_hi - 1 do
            acc :=
              !acc
              +. (Array.unsafe_get x (xrow + l)
                  *. Array.unsafe_get y ((l * n) + j))
          done;
          Array.unsafe_set r (rrow + j) (Array.unsafe_get r (rrow + j) +. !acc)
        done
      done;
      jb := j_hi
    done;
    lb := l_hi
  done

(* Int counterpart of {!blocked_rows_f}; int [+] is associative, so the
   blocked accumulation order is observationally identical to naive. *)
let blocked_rows_i x y r k n bs row_lo row_hi =
  let lb = ref 0 in
  while !lb < k do
    let l_hi = min k (!lb + bs) in
    let jb = ref 0 in
    while !jb < n do
      let j_hi = min n (!jb + bs) in
      let quads = !jb + ((j_hi - !jb) / 4 * 4) in
      for i = row_lo to row_hi - 1 do
        let xrow = i * k and rrow = i * n in
        let j = ref !jb in
        while !j < quads do
          let j0 = !j in
          let acc0 = ref 0 and acc1 = ref 0 and acc2 = ref 0 in
          let acc3 = ref 0 in
          for l = !lb to l_hi - 1 do
            let xv = Array.unsafe_get x (xrow + l) in
            let yrow = (l * n) + j0 in
            acc0 := !acc0 + (xv * Array.unsafe_get y yrow);
            acc1 := !acc1 + (xv * Array.unsafe_get y (yrow + 1));
            acc2 := !acc2 + (xv * Array.unsafe_get y (yrow + 2));
            acc3 := !acc3 + (xv * Array.unsafe_get y (yrow + 3))
          done;
          Array.unsafe_set r (rrow + j0)
            (Array.unsafe_get r (rrow + j0) + !acc0);
          Array.unsafe_set r (rrow + j0 + 1)
            (Array.unsafe_get r (rrow + j0 + 1) + !acc1);
          Array.unsafe_set r (rrow + j0 + 2)
            (Array.unsafe_get r (rrow + j0 + 2) + !acc2);
          Array.unsafe_set r (rrow + j0 + 3)
            (Array.unsafe_get r (rrow + j0 + 3) + !acc3);
          j := j0 + 4
        done;
        for j = quads to j_hi - 1 do
          let acc = ref 0 in
          for l = !lb to l_hi - 1 do
            acc :=
              !acc
              + (Array.unsafe_get x (xrow + l)
                 * Array.unsafe_get y ((l * n) + j))
          done;
          Array.unsafe_set r (rrow + j) (Array.unsafe_get r (rrow + j) + !acc)
        done
      done;
      jb := j_hi
    done;
    lb := l_hi
  done

(** [matmul_blocked ?pool ?block a b] — the tiled/register-blocked kernel,
    unconditionally (no size threshold; {!matmul} decides when to use it).
    With [?pool], row blocks are dispatched as pool ranges when the
    multiply-add count reaches the parallel threshold. *)
let matmul_blocked ?pool ?block a b =
  let m, k, n = matmul_dims a b in
  let bs = match block with Some b -> max 1 b | None -> !block_size in
  let work = m * k * n in
  let rows kernel =
    match pool with
    | Some p when work >= matmul_par_threshold && m > 1 ->
        Pool.parallel_for_ranges p 0 m (fun lo hi -> kernel lo hi)
    | _ -> kernel 0 m
  in
  match (a.buf, b.buf) with
  | F x, F y ->
      let r = Array.make (m * n) 0. in
      rows (blocked_rows_f x y r k n bs);
      { shape = [| m; n |]; buf = F r }
  | I x, I y ->
      let r = Array.make (m * n) 0 in
      rows (blocked_rows_i x y r k n bs);
      { shape = [| m; n |]; buf = I r }
  | _ -> terr "matrix multiplication on boolean matrices"

(** Linear-algebra matrix multiplication — the meaning of [*] on two
    matrices; elementwise multiplication is the distinct [.*] operator
    (§III-A2). 2-D only, inner dimensions must agree.  Small products take
    the naive loop (no tiling overhead); larger ones take the blocked
    kernel, parallelised over row blocks when [?pool] is given. *)
let matmul ?pool ?block a b =
  Support.Telemetry.bump c_matmul;
  let m, k, n = matmul_dims a b in
  let work = m * k * n in
  if block = None && work < matmul_block_threshold then
    timed c_matmul_ns @@ fun () -> matmul_naive a b
  else begin
    Support.Telemetry.bump c_matmul_blocked;
    timed c_matmul_ns @@ fun () -> matmul_blocked ?pool ?block a b
  end

(* --- indexing (§III-A3) --------------------------------------------------- *)

type index =
  | At of int  (** single position: collapses the dimension *)
  | Range of int * int  (** inclusive [lo:hi] *)
  | All  (** [:] *)
  | Mask of t  (** logical indexing by a 1-D boolean matrix *)
  | Gather of t  (** indexing by a 1-D integer matrix *)

(* Selected source positions per dimension + whether the dim collapses. *)
let resolve_dim m d = function
  | At i ->
      if i < 0 || i >= m.shape.(d) then
        Shape.err "index %d out of bounds in dimension %d of %s" i d
          (Shape.to_string m.shape);
      ([| i |], true)
  | Range (lo, hi) ->
      if lo < 0 || hi >= m.shape.(d) || lo > hi then
        Shape.err "range %d:%d out of bounds in dimension %d of %s" lo hi d
          (Shape.to_string m.shape);
      (Array.init (hi - lo + 1) (fun i -> lo + i), false)
  | All -> (Array.init m.shape.(d) (fun i -> i), false)
  | Mask b -> (
      match b.buf with
      | B mask ->
          if rank b <> 1 || Array.length mask <> m.shape.(d) then
            Shape.err
              "logical index of shape %s does not match dimension %d (size %d)"
              (Shape.to_string b.shape) d m.shape.(d);
          let sel = ref [] in
          Array.iteri (fun i keep -> if keep then sel := i :: !sel) mask;
          (Array.of_list (List.rev !sel), false)
      | _ -> terr "logical index must be a boolean matrix")
  | Gather g -> (
      match g.buf with
      | I ids ->
          if rank g <> 1 then terr "gather index must be a 1-D integer matrix";
          Array.iter
            (fun i ->
              if i < 0 || i >= m.shape.(d) then
                Shape.err "gather index %d out of bounds in dimension %d" i d)
            ids;
          (Array.copy ids, false)
      | _ -> terr "gather index must be an integer matrix")

let resolve m (spec : index array) =
  if Array.length spec <> rank m then
    Shape.err "indexing with %d subscripts into rank-%d matrix"
      (Array.length spec) (rank m);
  Array.mapi (fun d s -> resolve_dim m d s) spec

(** [slice m spec] — the general right-hand-side indexing operation.
    Dimensions indexed with [At] collapse; the result of collapsing all
    dimensions is a rank-0 matrix (use {!to_scalar}). *)
let slice m spec : t =
  let sels = resolve m spec in
  let kept =
    Array.to_list sels
    |> List.filter_map (fun (sel, collapse) ->
           if collapse then None else Some (Array.length sel))
  in
  let out_shape = Array.of_list kept in
  let out = create (elem m) out_shape in
  let src_idx = Array.make (rank m) 0 in
  Shape.iter out_shape (fun out_idx ->
      let k = ref 0 in
      Array.iteri
        (fun d (sel, collapse) ->
          if collapse then src_idx.(d) <- sel.(0)
          else begin
            src_idx.(d) <- sel.(out_idx.(!k));
            incr k
          end)
        sels;
      set out out_idx (get m src_idx));
  out

(** [slice_assign m spec src] — indexing on the left-hand side of [=]:
    writes [src] into the selected region, which must match its shape. *)
let slice_assign m spec (src : t) : unit =
  let sels = resolve m spec in
  let kept =
    Array.to_list sels
    |> List.filter_map (fun (sel, collapse) ->
           if collapse then None else Some (Array.length sel))
  in
  let region = Array.of_list kept in
  if not (Shape.equal region src.shape) then
    Shape.err "assignment of %s into region %s" (Shape.to_string src.shape)
      (Shape.to_string region);
  same_elem m src;
  let dst_idx = Array.make (rank m) 0 in
  Shape.iter region (fun out_idx ->
      let k = ref 0 in
      Array.iteri
        (fun d (sel, collapse) ->
          if collapse then dst_idx.(d) <- sel.(0)
          else begin
            dst_idx.(d) <- sel.(out_idx.(!k));
            incr k
          end)
        sels;
      set m dst_idx (get src out_idx))

(** [fill_assign m spec v] — scalar broadcast into a selected region. *)
let fill_assign m spec (v : Scalar.t) : unit =
  let sels = resolve m spec in
  let kept =
    Array.to_list sels
    |> List.filter_map (fun (sel, collapse) ->
           if collapse then None else Some (Array.length sel))
  in
  let region = Array.of_list kept in
  let dst_idx = Array.make (rank m) 0 in
  Shape.iter region (fun out_idx ->
      let k = ref 0 in
      Array.iteri
        (fun d (sel, collapse) ->
          if collapse then dst_idx.(d) <- sel.(0)
          else begin
            dst_idx.(d) <- sel.(out_idx.(!k));
            incr k
          end)
        sels;
      set m dst_idx v)

let to_scalar m =
  if size m <> 1 then
    Shape.err "matrix of shape %s used as scalar" (Shape.to_string m.shape)
  else get_flat m 0

(* --- folds ---------------------------------------------------------------- *)

(** [fold f init m] — row-major fold over all elements (the runtime core of
    the fold with-loop). *)
let fold f init m =
  let acc = ref init in
  for off = 0 to size m - 1 do
    acc := f !acc (get_flat m off)
  done;
  !acc

(* Pool-parallel reduction: per-thread partial folds combined on the main
   thread.  Float addition reassociates, so parallel sums are only
   tolerance-equal to sequential ones (see {!approx_equal}); int/bool
   reductions are associative and bit-for-bit identical. *)
let par_reduce ?pool n ~init ~body ~combine =
  Support.Telemetry.bump c_reduce;
  timed c_reduce_ns @@ fun () ->
  match pool with
  | Some p when n >= !par_grain ->
      Pool.parallel_fold ~grain:(!par_grain / 4) p 0 n ~init ~body ~combine
  | _ ->
      let acc = ref init in
      for i = 0 to n - 1 do
        acc := body !acc i
      done;
      !acc

let sum_float ?pool m =
  match m.buf with
  | F a ->
      par_reduce ?pool (Array.length a) ~init:0.
        ~body:(fun acc i -> acc +. Array.unsafe_get a i)
        ~combine:( +. )
  | I a ->
      par_reduce ?pool (Array.length a) ~init:0.
        ~body:(fun acc i -> acc +. float_of_int (Array.unsafe_get a i))
        ~combine:( +. )
  | B _ -> terr "sum of boolean matrix"

let count_true ?pool m =
  match m.buf with
  | B a ->
      par_reduce ?pool (Array.length a) ~init:0
        ~body:(fun acc i -> if Array.unsafe_get a i then acc + 1 else acc)
        ~combine:( + )
  | _ -> terr "count_true on non-boolean matrix"

(* --- structural ----------------------------------------------------------- *)

let equal a b =
  Shape.equal a.shape b.shape
  &&
  match (a.buf, b.buf) with
  | F x, F y -> x = y
  | I x, I y -> x = y
  | B x, B y -> x = y
  | _ -> false

(** Approximate float equality with tolerance, for parallel-vs-serial and
    transformed-vs-baseline comparisons (FP reassociation). *)
let approx_equal ?(eps = 1e-6) a b =
  Shape.equal a.shape b.shape
  &&
  match (a.buf, b.buf) with
  | F x, F y ->
      let ok = ref true in
      Array.iteri
        (fun i v ->
          let d = abs_float (v -. y.(i)) in
          let scale = max 1. (max (abs_float v) (abs_float y.(i))) in
          if d > eps *. scale then ok := false)
        x;
      !ok
  | _ -> equal a b

let pp ppf m =
  let n = size m in
  let elems =
    List.init (min n 16) (fun i -> Scalar.to_string (get_flat m i))
  in
  Fmt.pf ppf "Matrix %s %s {%s%s}" (elem_name (elem m))
    (Shape.to_string m.shape)
    (String.concat ", " elems)
    (if n > 16 then ", …" else "")

let to_string m = Fmt.str "%a" pp m

(* --- binary I/O (readMatrix / writeMatrix builtins) ----------------------- *)

let magic = "MMAT1\n"

(** [write_file path m] — the [writeMatrix] builtin: a small self-describing
    binary format (magic, elem kind, rank, extents, then elements). *)
let write_file path m =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      let kind = match elem m with EFloat -> 'f' | EInt -> 'i' | EBool -> 'b' in
      output_char oc kind;
      output_binary_int oc (rank m);
      Array.iter (output_binary_int oc) m.shape;
      match m.buf with
      | F a -> Array.iter (fun v -> output_string oc (Int64.to_string (Int64.bits_of_float v) ^ "\n")) a
      | I a -> Array.iter (fun v -> output_string oc (string_of_int v ^ "\n")) a
      | B a -> Array.iter (fun v -> output_char oc (if v then '1' else '0')) a)

(* Plausibility bounds on a parsed header: binary garbage can decode to
   any rank/extent, and without these caps a corrupt file turns into a
   multi-gigabyte allocation attempt instead of a diagnostic. *)
let max_rank = 16
let max_extent = 1 lsl 24
let max_elems = 1 lsl 28

(** [read_file path] — the [readMatrix] builtin.  Every failure mode — a
    missing file, wrong magic, an implausible header, truncation or
    garbage in the element stream — raises {!Io_error} naming the file,
    the byte offset where reading failed and what was expected there,
    instead of leaking [End_of_file] / [Failure] / [Sys_error]. *)
let read_file path =
  Support.Failpoint.hit fp_read;
  let ic =
    try open_in_bin path
    with Sys_error m -> io_err "readMatrix %S: cannot open: %s" path m
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      (* [expected] describes what a well-formed file would contain at
         the failing offset, e.g. "element 3817 of 4800 (float)". *)
      let fail ~expected detail =
        io_err "readMatrix %S: %s at offset %d (expected %s)" path detail
          (pos_in ic) expected
      in
      let guarded ~expected f =
        try f () with
        | End_of_file -> fail ~expected "file is truncated"
        | Failure _ -> fail ~expected "malformed data"
      in
      let m =
        guarded ~expected:(Printf.sprintf "magic %S" magic) (fun () ->
            really_input_string ic (String.length magic))
      in
      if m <> magic then
        io_err "readMatrix %S: bad magic %S at offset 0 (expected %S)" path m
          magic;
      let kind =
        guarded ~expected:"element kind 'f', 'i' or 'b'" (fun () ->
            input_char ic)
      in
      if kind <> 'f' && kind <> 'i' && kind <> 'b' then
        io_err "readMatrix %S: unknown element kind %C at offset %d \
                (expected 'f', 'i' or 'b')"
          path kind
          (pos_in ic - 1);
      let r = guarded ~expected:"rank" (fun () -> input_binary_int ic) in
      if r < 0 || r > max_rank then
        io_err "readMatrix %S: implausible rank %d at offset %d (expected 0..%d)"
          path r (pos_in ic - 4) max_rank;
      let sh =
        Array.init r (fun d ->
            let e =
              guarded
                ~expected:(Printf.sprintf "extent of dimension %d" d)
                (fun () -> input_binary_int ic)
            in
            if e < 0 || e > max_extent then
              io_err
                "readMatrix %S: implausible extent %d in dimension %d at \
                 offset %d (expected 0..%d)"
                path e d (pos_in ic - 4) max_extent;
            e)
      in
      let n = Shape.size sh in
      if n > max_elems then
        io_err "readMatrix %S: shape %s holds %d elements (limit %d)" path
          (Shape.to_string sh) n max_elems;
      let elem i what f =
        guarded
          ~expected:
            (Printf.sprintf "element %d of %d (%s) for shape %s" i n what
               (Shape.to_string sh))
          f
      in
      match kind with
      | 'f' ->
          let a =
            Array.init n (fun i ->
                elem i "float" (fun () ->
                    Int64.float_of_bits (Int64.of_string (input_line ic))))
          in
          { shape = sh; buf = F a }
      | 'i' ->
          let a =
            Array.init n (fun i ->
                elem i "int" (fun () -> int_of_string (input_line ic)))
          in
          { shape = sh; buf = I a }
      | _ ->
          let a =
            Array.init n (fun i ->
                elem i "bool" (fun () ->
                    match input_char ic with
                    | '0' -> false
                    | '1' -> true
                    | c ->
                        io_err
                          "readMatrix %S: bad bool %C for element %d at \
                           offset %d (expected '0' or '1')"
                          path c i (pos_in ic - 1)))
          in
          { shape = sh; buf = B a })
