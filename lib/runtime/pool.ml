(** The enhanced fork-join execution model of §III-C, from SAC [14].

    A naive translation spawns and destroys threads around every parallel
    with-loop and "pays the price of creating and destroying threads each
    time".  Instead, the runtime spawns the necessary number of workers
    {i once} at program start and parks them in a spin lock; when the main
    thread reaches a parallel construct it "flips the condition that keeps
    the threads spinning, which releases all of them at once", each worker
    runs its share, passes through a {i stop barrier} and goes straight
    back to spinning; the main thread waits in the stop barrier until all
    workers are done.

    Workers are OCaml 5 domains (real parallelism).  The spin loops use
    [Domain.cpu_relax] with a sleep back-off so the model remains usable on
    machines with fewer cores than workers (such as 1-core CI containers —
    the spin never starves the worker that must make progress).

    {!naive_run} implements the fork-join-per-region model as the
    benchmark baseline the paper argues against.

    {2 Crash containment}

    A worker exception does not poison the pool.  Raw {!run} collects
    {e every} thread's exception (not just the first): the first is
    re-raised at the stop barrier with its original backtrace, the rest
    are counted ([pool.suppressed_exns]).  The chunked entry points
    ({!parallel_for_ranges}, {!parallel_for}, {!parallel_fold}) go
    further: a chunk that raises a recoverable exception is {e recorded}
    — its range, exception and backtrace — while surviving workers
    finish their own chunks; the dispatcher then re-executes the failed
    ranges inline on the calling thread (a transient fault, e.g. an
    injected one, succeeds on retry).  Chunk retry relies on the
    with-loop generator's disjointness guarantee (§III-A4): chunk bodies
    write disjoint elements, so re-execution is idempotent.

    Each recovered fault charges the pool's {e fault budget}; exceeding
    it flips the pool into {e degraded mode} ([pool.degraded] counter,
    {!on_degrade} warning): every subsequent region executes
    sequentially inline, so the program still completes — correctly,
    just without speedup.  The pool remains usable after any exception,
    recovered or re-raised.  {!Limits} deadlines and byte caps are
    probed at every chunk boundary and are deliberately {e not}
    recoverable: they re-raise at the barrier so the run aborts. *)

type job = { fn : int -> int -> unit (* worker_index n_workers -> unit *) }

type t = {
  n_workers : int;  (** helper domains; the main thread also works *)
  generation : int Atomic.t;  (** bumped to release the spinners *)
  job : job option Atomic.t;
  done_count : int Atomic.t;
  shutdown : bool Atomic.t;
  in_region : bool Atomic.t;
      (** a region is currently executing; a nested [run] (e.g. a kernel
          dispatching from inside a worker's share) executes inline on the
          calling thread instead of corrupting the single job slot *)
  failures : (exn * Printexc.raw_backtrace) list Atomic.t;
      (** every exception raised by a thread's share of the current job
          (newest first), each with the raising thread's backtrace; the
          earliest is re-raised on the main thread at the stop barrier,
          the rest are counted as suppressed *)
  degraded : bool Atomic.t;
      (** sequential-fallback mode: set when recovered chunk faults
          exceed the fault budget; every later region runs inline *)
  faults : int Atomic.t;  (** recovered chunk faults over the pool's life *)
  mutable fault_budget : int;
      (** recovered faults tolerated before degrading (default 3, or
          [MMC_FAULT_BUDGET]); budget 0 degrades on the first fault *)
  busy : Support.Telemetry.counter array;
      (** per-thread busy nanoseconds (slot 0 = main thread's share) *)
  mutable domains : unit Domain.t array;
}

(* Pool telemetry (§III-C observability).  Every probe is behind the
   telemetry enabled flag, so the disabled hot path pays one atomic load
   per region/wakeup — nothing per spin iteration. *)
let c_jobs = Support.Telemetry.counter "pool.jobs_dispatched"
let c_spin_wakeups = Support.Telemetry.counter "pool.wakeups_spin"
let c_sleep_wakeups = Support.Telemetry.counter "pool.wakeups_sleep"
let c_barrier_ns = Support.Telemetry.counter "pool.barrier_wait_ns"
let c_exceptions = Support.Telemetry.counter "pool.job_exceptions"
let c_chunks = Support.Telemetry.counter "pool.chunks_dispatched"
let c_nested = Support.Telemetry.counter "pool.nested_inline_runs"
let c_suppressed = Support.Telemetry.counter "pool.suppressed_exns"
let c_chunk_faults = Support.Telemetry.counter "pool.chunk_faults"
let c_retries = Support.Telemetry.counter "pool.chunk_retries"
let c_degraded = Support.Telemetry.counter "pool.degraded"

(* Fault-injection sites (armed via MMC_FAILPOINTS / --failpoints): a
   region dispatch on the calling thread, and a chunk execution inside a
   worker's share. *)
let fp_dispatch = Support.Failpoint.register "pool.dispatch"
let fp_worker_body = Support.Failpoint.register "pool.worker_body"

(* Resource-limit violations abort the run: containment must not retry
   them (a deadline already passed stays passed), so they re-raise at the
   stop barrier like any uncontained exception. *)
let recoverable = function Limits.Resource_limit _ -> false | _ -> true

let rec push_atomic cell x =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (x :: old)) then push_atomic cell x

(** Called once when a pool flips into sequential-fallback mode, with a
    human-readable reason — the degradation warning diagnostic.  Replace
    to route into a diagnostics stream (tests silence it). *)
let on_degrade : (string -> unit) ref =
  ref (fun msg -> Printf.eprintf "mmc: warning: %s\n%!" msg)

(* Spin with progressive back-off: pure spinning briefly (the fast path the
   enhanced fork-join model is built for), then yield to the OS so
   oversubscribed machines still progress.  Returns whether the wait ever
   fell back to sleeping, so wakeups can be classified spin-vs-sleep. *)
let spin_until pred =
  let spins = ref 0 in
  let slept = ref false in
  while not (pred ()) do
    incr spins;
    if !spins < 1000 then Domain.cpu_relax ()
    else begin
      slept := true;
      Unix.sleepf 0.000_05
    end
  done;
  !slept

(* Execute one thread's share of a job.  Every exception is captured (not
   swallowed) and collected for the stop barrier, where the earliest is
   re-raised on the main thread; when telemetry is on, the share's
   wall-clock goes to the thread's busy counter. *)
let run_share pool idx fn =
  let n = pool.n_workers + 1 in
  let exec () =
    try fn idx n
    with e ->
      let bt = Printexc.get_raw_backtrace () in
      Support.Telemetry.bump c_exceptions;
      push_atomic pool.failures (e, bt)
  in
  if Support.Telemetry.on () || Support.Profile.is_enabled () then begin
    let t0 = Support.Telemetry.now_ns () in
    exec ();
    let busy = Support.Telemetry.now_ns () - t0 in
    Support.Telemetry.add pool.busy.(idx) busy;
    (* Source attribution: charge this share's wall-clock to the ParFor
       region (if any) the profiler has open. *)
    if Support.Profile.is_enabled () then
      Support.Profile.worker_busy ~worker:idx busy
  end
  else exec ()

let worker_loop pool idx () =
  let my_gen = ref 0 in
  let running = ref true in
  while !running do
    let slept =
      spin_until (fun () ->
          Atomic.get pool.shutdown || Atomic.get pool.generation <> !my_gen)
    in
    if Atomic.get pool.shutdown then running := false
    else begin
      my_gen := Atomic.get pool.generation;
      if Support.Telemetry.on () then
        Support.Telemetry.bump
          (if slept then c_sleep_wakeups else c_spin_wakeups);
      (match Atomic.get pool.job with
      (* Worker indices 1..n; index 0 is the main thread's share. *)
      | Some { fn } -> run_share pool idx fn
      | None -> ());
      Atomic.incr pool.done_count
    end
  done

(** [create n] — a pool executing parallel regions on [n] threads total:
    the calling (main) thread plus [n-1] spawned worker domains, matching
    the paper's command-line thread-count argument. *)
let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt s with Some v when v >= 0 -> v | _ -> default)
  | None -> default

let create n =
  if n < 1 then invalid_arg "Pool.create: need at least one thread";
  let pool =
    {
      n_workers = n - 1;
      generation = Atomic.make 0;
      job = Atomic.make None;
      done_count = Atomic.make 0;
      shutdown = Atomic.make false;
      in_region = Atomic.make false;
      failures = Atomic.make [];
      degraded = Atomic.make false;
      faults = Atomic.make 0;
      fault_budget = env_int "MMC_FAULT_BUDGET" 3;
      busy =
        Array.init n (fun i ->
            Support.Telemetry.counter (Printf.sprintf "pool.worker%d.busy_ns" i));
      domains = [||];
    }
  in
  pool.domains <-
    Array.init (n - 1) (fun i -> Domain.spawn (worker_loop pool (i + 1)));
  pool

let threads pool = pool.n_workers + 1

(** Is the pool in sequential-fallback mode? *)
let is_degraded pool = Atomic.get pool.degraded

(** Recovered chunk faults over the pool's lifetime. *)
let fault_count pool = Atomic.get pool.faults

(** [set_fault_budget pool n] — recovered faults tolerated before the
    pool degrades to sequential fallback; 0 degrades on the first. *)
let set_fault_budget pool n =
  if n < 0 then invalid_arg "Pool.set_fault_budget";
  pool.fault_budget <- n

let fault_budget pool = pool.fault_budget

(** [reset_faults pool] — forgive recorded faults and leave degraded
    mode, re-enabling parallel dispatch (operator intervention / tests). *)
let reset_faults pool =
  Atomic.set pool.faults 0;
  Atomic.set pool.degraded false

(* Charge one recovered fault; flipping past the budget degrades the pool
   exactly once (CAS), bumps [pool.degraded] and emits the warning. *)
let note_fault pool =
  let n = 1 + Atomic.fetch_and_add pool.faults 1 in
  if n > pool.fault_budget && Atomic.compare_and_set pool.degraded false true
  then begin
    Support.Telemetry.bump c_degraded;
    !on_degrade
      (Printf.sprintf
         "parallel pool degraded to sequential fallback after %d recovered \
          worker fault(s) (budget %d); remaining regions run inline"
         n pool.fault_budget)
  end

(** [run pool f] — one parallel region: every thread [t] of [n] executes
    [f t n]; returns when all have passed the stop barrier.  If any share
    raised, the first exception is re-raised here (after every worker has
    parked again, so the pool stays usable).

    Re-entrant: a [run] issued while a region is already executing (a
    nested parallel op from inside a worker's share, or a kernel called
    from a [ParFor] body) executes its function inline as [f 0 1] — the
    outer region already owns all the threads, so nesting degenerates to
    sequential execution instead of deadlocking on the single job slot. *)
let run pool (fn : int -> int -> unit) =
  Support.Failpoint.hit fp_dispatch;
  if pool.n_workers = 0 || Atomic.get pool.degraded then begin
    Support.Telemetry.bump c_jobs;
    fn 0 1
  end
  else if not (Atomic.compare_and_set pool.in_region false true) then begin
    Support.Telemetry.bump c_nested;
    fn 0 1
  end
  else
    Fun.protect
      ~finally:(fun () -> Atomic.set pool.in_region false)
      (fun () ->
        Atomic.set pool.done_count 0;
        Atomic.set pool.job (Some { fn });
        Atomic.incr pool.generation;
        (* release *)
        Support.Telemetry.bump c_jobs;
        run_share pool 0 fn;
        (* main thread's share *)
        let wait () =
          ignore
            (spin_until (fun () ->
                 Atomic.get pool.done_count = pool.n_workers))
          (* stop barrier *)
        in
        if Support.Telemetry.on () then begin
          let t0 = Support.Telemetry.now_ns () in
          wait ();
          Support.Telemetry.add c_barrier_ns (Support.Telemetry.now_ns () - t0)
        end
        else wait ();
        (* Every worker has parked again, so the pool is reusable no
           matter what happens next.  The earliest exception re-raises
           with its original backtrace; later ones are counted, not
           lost silently. *)
        match List.rev (Atomic.exchange pool.failures []) with
        | [] -> ()
        | (e, bt) :: rest ->
            Support.Telemetry.add c_suppressed (List.length rest);
            Printexc.raise_with_backtrace e bt)

(** How a [lo, hi) iteration space is carved into chunks (§III-C):
    - [Static]: one contiguous chunk per thread, the schedule the
      with-loop generator semantics guarantee disjointness for (§III-A4).
      Zero coordination; best when iterations cost the same.
    - [Guided]: threads grab shrinking chunks ([remaining / 2n], floored
      at the grain) from a shared counter; costs one CAS per chunk but
      load-balances irregular iteration bodies (matrixMap over slices of
      varying work, conncomp frames with different eddy counts). *)
type chunking = Static | Guided

(** [parallel_for_ranges ?chunking ?grain pool lo hi f] — partition
    [lo, hi) into chunks and call [f chunk_lo chunk_hi] for each, in
    parallel.  Ranges of at most [grain] indices (default 1, i.e. empty or
    singleton ranges) run inline on the calling thread without waking the
    pool — the grain-size heuristic that keeps small kernels cheap. *)
let parallel_for_ranges ?(chunking = Static) ?(grain = 1) pool lo hi f =
  let total = hi - lo in
  let grain = max 1 grain in
  if total <= 0 then ()
  else if total <= grain || Atomic.get pool.degraded then begin
    (* inline: small ranges never wake the pool; degraded pools run
       everything sequentially (one whole-range chunk, exact sequential
       exception semantics — no containment). *)
    Support.Telemetry.bump c_chunks;
    Limits.check ();
    f lo hi
  end
  else begin
    (* Containment: a chunk that raises a recoverable exception records
       its range and lets the rest of the region finish; resource-limit
       violations escape to the share collector and re-raise at the
       barrier. *)
    let failed = Atomic.make [] in
    let exec_chunk clo chi =
      Support.Telemetry.bump c_chunks;
      Limits.check ();
      try
        Support.Failpoint.hit fp_worker_body;
        f clo chi
      with e when recoverable e ->
        let bt = Printexc.get_raw_backtrace () in
        Support.Telemetry.bump c_chunk_faults;
        push_atomic failed (clo, chi, e, bt)
    in
    (match chunking with
    | Static ->
        run pool (fun t n ->
            let chunk = (total + n - 1) / n in
            let start = lo + (t * chunk) in
            let stop = min hi (start + chunk) in
            if start < stop then exec_chunk start stop)
    | Guided ->
        let next = Atomic.make lo in
        run pool (fun _ n ->
            let continue = ref true in
            while !continue do
              let cur = Atomic.get next in
              if cur >= hi then continue := false
              else
                let size = min (hi - cur) (max grain ((hi - cur) / (2 * n))) in
                if Atomic.compare_and_set next cur (cur + size) then
                  exec_chunk cur (cur + size)
            done));
    (* Re-execute failed ranges inline, in arrival order: chunk bodies
       write disjoint elements (§III-A4), so re-running a partially
       executed chunk is idempotent.  A fault that persists (the retry
       raises too) propagates to the caller — with the pool already
       parked and reusable. *)
    List.iter
      (fun (clo, chi, _, _) ->
        note_fault pool;
        Support.Telemetry.bump c_retries;
        Limits.check ();
        f clo chi)
      (List.rev (Atomic.exchange failed []))
  end

(** [parallel_for pool lo hi f] — apply [f] to every index in [lo, hi),
    scheduled in chunks (see {!parallel_for_ranges}). *)
let parallel_for ?chunking ?grain pool lo hi f =
  parallel_for_ranges ?chunking ?grain pool lo hi (fun clo chi ->
      for i = clo to chi - 1 do
        f i
      done)

(** [parallel_fold pool lo hi ~init ~body ~combine] — per-thread partial
    folds combined sequentially by the main thread (how the generated code
    parallelises fold with-loops).  Ranges of at most [grain] indices fold
    inline without waking the pool. *)
let parallel_fold ?(grain = 1) pool lo hi ~init ~body ~combine =
  let total = hi - lo in
  let grain = max 1 grain in
  let inline () =
    let acc = ref init in
    for i = lo to hi - 1 do
      acc := body !acc i
    done;
    !acc
  in
  if total <= 0 then init
  else if total <= grain then inline ()
  else if Atomic.get pool.degraded then begin
    Limits.check ();
    inline ()
  end
  else begin
    let n = threads pool in
    let partials = Array.make n init in
    let failed = Atomic.make [] in
    run pool (fun t n ->
        let chunk = (total + n - 1) / n in
        let start = lo + (t * chunk) in
        let stop = min hi (start + chunk) in
        let fold_range () =
          let acc = ref init in
          for i = start to stop - 1 do
            acc := body !acc i
          done;
          partials.(t) <- !acc
        in
        Limits.check ();
        try
          Support.Failpoint.hit fp_worker_body;
          fold_range ()
        with e when recoverable e ->
          Support.Telemetry.bump c_chunk_faults;
          push_atomic failed (t, start, stop, e));
    (* A failed share's partial is garbage; recompute the whole share
       inline (folds are pure in the accumulator, so this is exact). *)
    List.iter
      (fun (t, start, stop, _) ->
        note_fault pool;
        Support.Telemetry.bump c_retries;
        Limits.check ();
        let acc = ref init in
        for i = start to stop - 1 do
          acc := body !acc i
        done;
        partials.(t) <- !acc)
      (List.rev (Atomic.exchange failed []));
    Array.fold_left combine init partials
  end

(** Park the workers permanently and join their domains. *)
let shutdown pool =
  if pool.n_workers > 0 then begin
    Atomic.set pool.shutdown true;
    Array.iter Domain.join pool.domains
  end

(** [with_pool n f] — create, use, always shut down. *)
let with_pool n f =
  let pool = create n in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(** The naive fork-join baseline (§III-C): spawn [n-1] fresh domains for
    the region, join them, destroy them.  Benchmarked against {!run} in
    the [forkjoin] bench group. *)
let naive_run n (fn : int -> int -> unit) =
  if n <= 1 then fn 0 1
  else begin
    let ds = Array.init (n - 1) (fun i -> Domain.spawn (fun () -> fn (i + 1) n)) in
    fn 0 n;
    Array.iter Domain.join ds
  end

(** Spawn-per-region counterpart of {!parallel_for}.  Kept deliberately:
    it is the baseline the C5 benchmark group measures {!run} against
    (and [bench --smoke] exercises it so it cannot bit-rot). *)
let naive_parallel_for n lo hi f =
  let total = hi - lo in
  if total > 0 then
    naive_run n (fun t n ->
        let chunk = (total + n - 1) / n in
        let start = lo + (t * chunk) in
        let stop = min hi (start + chunk) in
        for i = start to stop - 1 do
          f i
        done)
