(** The enhanced fork-join execution model of §III-C, from SAC [14].

    A naive translation spawns and destroys threads around every parallel
    with-loop and "pays the price of creating and destroying threads each
    time".  Instead, the runtime spawns the necessary number of workers
    {i once} at program start and parks them in a spin lock; when the main
    thread reaches a parallel construct it "flips the condition that keeps
    the threads spinning, which releases all of them at once", each worker
    runs its share, passes through a {i stop barrier} and goes straight
    back to spinning; the main thread waits in the stop barrier until all
    workers are done.

    Workers are OCaml 5 domains (real parallelism).  The spin loops use
    [Domain.cpu_relax] with a sleep back-off so the model remains usable on
    machines with fewer cores than workers (such as 1-core CI containers —
    the spin never starves the worker that must make progress).

    {!naive_run} implements the fork-join-per-region model as the
    benchmark baseline the paper argues against. *)

type job = { fn : int -> int -> unit (* worker_index n_workers -> unit *) }

type t = {
  n_workers : int;  (** helper domains; the main thread also works *)
  generation : int Atomic.t;  (** bumped to release the spinners *)
  job : job option Atomic.t;
  done_count : int Atomic.t;
  shutdown : bool Atomic.t;
  failure : (exn * Printexc.raw_backtrace) option Atomic.t;
      (** first exception raised by any thread's share of the current job,
          with the raising thread's backtrace; re-raised on the main
          thread at the stop barrier *)
  busy : Support.Telemetry.counter array;
      (** per-thread busy nanoseconds (slot 0 = main thread's share) *)
  mutable domains : unit Domain.t array;
}

(* Pool telemetry (§III-C observability).  Every probe is behind the
   telemetry enabled flag, so the disabled hot path pays one atomic load
   per region/wakeup — nothing per spin iteration. *)
let c_jobs = Support.Telemetry.counter "pool.jobs_dispatched"
let c_spin_wakeups = Support.Telemetry.counter "pool.wakeups_spin"
let c_sleep_wakeups = Support.Telemetry.counter "pool.wakeups_sleep"
let c_barrier_ns = Support.Telemetry.counter "pool.barrier_wait_ns"
let c_exceptions = Support.Telemetry.counter "pool.job_exceptions"

(* Spin with progressive back-off: pure spinning briefly (the fast path the
   enhanced fork-join model is built for), then yield to the OS so
   oversubscribed machines still progress.  Returns whether the wait ever
   fell back to sleeping, so wakeups can be classified spin-vs-sleep. *)
let spin_until pred =
  let spins = ref 0 in
  let slept = ref false in
  while not (pred ()) do
    incr spins;
    if !spins < 1000 then Domain.cpu_relax ()
    else begin
      slept := true;
      Unix.sleepf 0.000_05
    end
  done;
  !slept

(* Execute one thread's share of a job.  The first exception is captured
   (not swallowed) and re-raised on the main thread at the stop barrier;
   when telemetry is on, the share's wall-clock goes to the thread's busy
   counter. *)
let run_share pool idx fn =
  let n = pool.n_workers + 1 in
  let exec () =
    try fn idx n
    with e ->
      let bt = Printexc.get_raw_backtrace () in
      Support.Telemetry.bump c_exceptions;
      ignore (Atomic.compare_and_set pool.failure None (Some (e, bt)))
  in
  if Support.Telemetry.on () then begin
    let t0 = Support.Telemetry.now_ns () in
    exec ();
    Support.Telemetry.add pool.busy.(idx) (Support.Telemetry.now_ns () - t0)
  end
  else exec ()

let worker_loop pool idx () =
  let my_gen = ref 0 in
  let running = ref true in
  while !running do
    let slept =
      spin_until (fun () ->
          Atomic.get pool.shutdown || Atomic.get pool.generation <> !my_gen)
    in
    if Atomic.get pool.shutdown then running := false
    else begin
      my_gen := Atomic.get pool.generation;
      if Support.Telemetry.on () then
        Support.Telemetry.bump
          (if slept then c_sleep_wakeups else c_spin_wakeups);
      (match Atomic.get pool.job with
      (* Worker indices 1..n; index 0 is the main thread's share. *)
      | Some { fn } -> run_share pool idx fn
      | None -> ());
      Atomic.incr pool.done_count
    end
  done

(** [create n] — a pool executing parallel regions on [n] threads total:
    the calling (main) thread plus [n-1] spawned worker domains, matching
    the paper's command-line thread-count argument. *)
let create n =
  if n < 1 then invalid_arg "Pool.create: need at least one thread";
  let pool =
    {
      n_workers = n - 1;
      generation = Atomic.make 0;
      job = Atomic.make None;
      done_count = Atomic.make 0;
      shutdown = Atomic.make false;
      failure = Atomic.make None;
      busy =
        Array.init n (fun i ->
            Support.Telemetry.counter (Printf.sprintf "pool.worker%d.busy_ns" i));
      domains = [||];
    }
  in
  pool.domains <-
    Array.init (n - 1) (fun i -> Domain.spawn (worker_loop pool (i + 1)));
  pool

let threads pool = pool.n_workers + 1

(** [run pool f] — one parallel region: every thread [t] of [n] executes
    [f t n]; returns when all have passed the stop barrier.  If any share
    raised, the first exception is re-raised here (after every worker has
    parked again, so the pool stays usable). *)
let run pool (fn : int -> int -> unit) =
  if pool.n_workers = 0 then begin
    Support.Telemetry.bump c_jobs;
    fn 0 1
  end
  else begin
    Atomic.set pool.done_count 0;
    Atomic.set pool.job (Some { fn });
    Atomic.incr pool.generation;
    (* release *)
    Support.Telemetry.bump c_jobs;
    run_share pool 0 fn;
    (* main thread's share *)
    let wait () =
      ignore
        (spin_until (fun () -> Atomic.get pool.done_count = pool.n_workers))
      (* stop barrier *)
    in
    if Support.Telemetry.on () then begin
      let t0 = Support.Telemetry.now_ns () in
      wait ();
      Support.Telemetry.add c_barrier_ns (Support.Telemetry.now_ns () - t0)
    end
    else wait ();
    match Atomic.exchange pool.failure None with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

(** [parallel_for pool lo hi f] — apply [f] to every index in [lo, hi)
    with contiguous static chunking, the schedule the generated code uses
    for with-loops (each thread gets a unique, disjoint set of indices —
    guaranteed by the with-loop generator semantics, §III-A4). *)
let parallel_for pool lo hi f =
  let total = hi - lo in
  if total > 0 then
    run pool (fun t n ->
        let chunk = (total + n - 1) / n in
        let start = lo + (t * chunk) in
        let stop = min hi (start + chunk) in
        for i = start to stop - 1 do
          f i
        done)

(** [parallel_fold pool lo hi ~init ~body ~combine] — per-thread partial
    folds combined sequentially by the main thread (how the generated code
    parallelises fold with-loops). *)
let parallel_fold pool lo hi ~init ~body ~combine =
  let n = threads pool in
  let partials = Array.make n init in
  run pool (fun t n ->
      let total = hi - lo in
      let chunk = (total + n - 1) / n in
      let start = lo + (t * chunk) in
      let stop = min hi (start + chunk) in
      let acc = ref init in
      for i = start to stop - 1 do
        acc := body !acc i
      done;
      partials.(t) <- !acc);
  Array.fold_left combine init partials

(** Park the workers permanently and join their domains. *)
let shutdown pool =
  if pool.n_workers > 0 then begin
    Atomic.set pool.shutdown true;
    Array.iter Domain.join pool.domains
  end

(** [with_pool n f] — create, use, always shut down. *)
let with_pool n f =
  let pool = create n in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(** The naive fork-join baseline (§III-C): spawn [n-1] fresh domains for
    the region, join them, destroy them.  Benchmarked against {!run} in
    the [forkjoin] bench group. *)
let naive_run n (fn : int -> int -> unit) =
  if n <= 1 then fn 0 1
  else begin
    let ds = Array.init (n - 1) (fun i -> Domain.spawn (fun () -> fn (i + 1) n)) in
    fn 0 n;
    Array.iter Domain.join ds
  end

let naive_parallel_for n lo hi f =
  let total = hi - lo in
  if total > 0 then
    naive_run n (fun t n ->
        let chunk = (total + n - 1) / n in
        let start = lo + (t * chunk) in
        let stop = min hi (start + chunk) in
        for i = start to stop - 1 do
          f i
        done)
