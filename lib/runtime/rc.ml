(** Reference-counting cells — the general-purpose extension of §III-B and
    the memory management underneath every matrix (§III-C).

    The generated C code attaches a count to each allocation; assignments
    increment the new referent and decrement the old one, scope exit
    decrements, and a count reaching zero frees the payload.  Here the
    OCaml GC does the actual freeing, so "free" means removing the cell
    from the {b live-allocation registry} — which is precisely what lets
    the test-suite assert the paper's invariant: after a translated program
    finishes, no allocation is still live (no leaks), and no cell is ever
    decremented below zero (no double-free). *)

type 'a t = {
  mutable count : int;
  mutable payload : 'a option;  (** [None] after the count reaches zero *)
  id : int;
  bytes : int;  (** approximate payload size, for allocator benchmarks *)
}

exception Use_after_free of int
exception Double_free of int

(* Registry is per-process and must tolerate the domain pool touching
   counts concurrently; a mutex keeps the bookkeeping exact. *)
let registry_mutex = Mutex.create ()
let live : (int, int) Hashtbl.t = Hashtbl.create 256 (* id -> bytes *)
let next_id = ref 0
let total_allocs = ref 0
let total_frees = ref 0

(* Byte gauges, maintained incrementally under the registry mutex so the
   high-water mark is exact (a fold over [live] after the fact could never
   recover the peak). *)
let cur_bytes = ref 0
let max_bytes = ref 0
let total_bytes = ref 0

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

(* Telemetry counters for the §III-B/C memory-management traffic; each is
   one gated atomic bump on top of the registry work. *)
let c_allocs = Support.Telemetry.counter "rc.allocs"
let c_frees = Support.Telemetry.counter "rc.frees"
let c_incrs = Support.Telemetry.counter "rc.incrs"
let c_decrs = Support.Telemetry.counter "rc.decrs"
let c_drained = Support.Telemetry.counter "rc.drained"

(** [alloc ~bytes payload] — a fresh cell with count 1, registered live. *)
let alloc ?(bytes = 0) payload =
  Support.Telemetry.bump c_allocs;
  with_registry (fun () ->
      let id = !next_id in
      incr next_id;
      incr total_allocs;
      Hashtbl.replace live id bytes;
      cur_bytes := !cur_bytes + bytes;
      total_bytes := !total_bytes + bytes;
      if !cur_bytes > !max_bytes then max_bytes := !cur_bytes;
      { count = 1; payload = Some payload; id; bytes })

(** [get cell] — dereference; raises {!Use_after_free} on a dead cell. *)
let get cell =
  match cell.payload with
  | Some p -> p
  | None -> raise (Use_after_free cell.id)

(** [incr_ cell] — a new reference now exists (assignment RHS, argument
    passing, storing into a structure). *)
let incr_ cell =
  Support.Telemetry.bump c_incrs;
  with_registry (fun () ->
      if cell.payload = None then raise (Use_after_free cell.id);
      cell.count <- cell.count + 1)

(** [decr_ cell] — a reference died (scope exit, overwriting assignment).
    Frees the payload when the count reaches zero. *)
let decr_ cell =
  Support.Telemetry.bump c_decrs;
  with_registry (fun () ->
      if cell.count <= 0 then raise (Double_free cell.id);
      cell.count <- cell.count - 1;
      if cell.count = 0 then begin
        cell.payload <- None;
        incr total_frees;
        Support.Telemetry.bump c_frees;
        if Hashtbl.mem live cell.id then
          cur_bytes := !cur_bytes - cell.bytes;
        Hashtbl.remove live cell.id
      end)

let count cell = cell.count
let is_live cell = cell.payload <> None

(** Number of allocations still live — a translated program that manages
    its references correctly leaves this where it found it. *)
let live_count () = with_registry (fun () -> Hashtbl.length live)

let live_bytes () =
  with_registry (fun () -> Hashtbl.fold (fun _ b acc -> acc + b) live 0)

(** Live payload bytes as an O(1) read of the incrementally maintained
    gauge — what the cooperative [--max-bytes] guard polls at loop and
    chunk boundaries. *)
let current_bytes () = with_registry (fun () -> !cur_bytes)

(** [mark ()] — a ledger position: every allocation made after this call
    has an id [>=] the mark.  Pass it to {!drain_since} to reclaim an
    aborted run's allocations. *)
let mark () = with_registry (fun () -> !next_id)

(** [drain_since m] — remove from the live registry every allocation made
    at or after mark [m], returning [(count, bytes)] drained.  This is the
    abort path of the generated code's memory discipline: when a run dies
    mid-flight its scope-exit decrements never execute, so the interpreter
    tears the run's allocations down wholesale (the payloads themselves
    are reclaimed by the OCaml GC).  Cells already freed are untouched;
    cells drained here tolerate late {!decr_} calls without double-free
    (their registry entry is simply gone). *)
let drain_since m =
  with_registry (fun () ->
      let doomed =
        Hashtbl.fold (fun id b acc -> if id >= m then (id, b) :: acc else acc)
          live []
      in
      List.iter
        (fun (id, b) ->
          Hashtbl.remove live id;
          cur_bytes := !cur_bytes - b)
        doomed;
      let n = List.length doomed in
      Support.Telemetry.add c_drained n;
      (n, List.fold_left (fun acc (_, b) -> acc + b) 0 doomed))

(** High-water mark of live payload bytes since the last {!reset}. *)
let peak_bytes () = with_registry (fun () -> !max_bytes)

(** Total payload bytes ever allocated since the last {!reset}. *)
let allocated_bytes () = with_registry (fun () -> !total_bytes)

type stats = { allocs : int; frees : int; live : int }

let stats () =
  with_registry (fun () ->
      {
        allocs = !total_allocs;
        frees = !total_frees;
        live = Hashtbl.length live;
      })

(** Reset counters between tests/benchmark runs.  Does not revive or kill
    cells; only clears the registry and statistics. *)
let reset () =
  with_registry (fun () ->
      Hashtbl.reset live;
      total_allocs := 0;
      total_frees := 0;
      cur_bytes := 0;
      max_bytes := 0;
      total_bytes := 0)
