(** Cooperative resource guards for program execution.

    The translated programs run over real data files on a shared runtime;
    a malformed input or a runaway loop must not spin forever or exhaust
    memory before anyone notices.  Three limits are enforced
    {e cooperatively} — the interpreter calls {!tick} at loop-iteration
    boundaries and the pool calls {!check} at chunk boundaries, so a
    violation surfaces at the next boundary rather than pre-empting
    mid-statement:

    - [max_steps] — total loop iterations executed (checked every tick);
    - [max_bytes] — live matrix payload bytes in the RC registry
      ({!Rc.current_bytes}), checked at chunk boundaries and every
      {!slow_period} ticks;
    - [timeout] — a wall-clock deadline on the monotonic telemetry clock,
      checked on the same schedule as [max_bytes].

    Exceeding a limit raises {!Resource_limit} carrying which limit, the
    configured bound, the observed value, and (once the interpreter has
    enriched it) the provenance span of the active loop — so the
    diagnostic renders with a caret excerpt like a static error.

    Disabled (the default) costs one atomic load per tick. *)

type kind = Max_steps | Max_bytes | Timeout

type violation = {
  v_kind : kind;
  v_limit : int;  (** the configured bound (steps, bytes, or ns) *)
  v_actual : int;  (** the observed value at the failing check *)
  v_span : Support.Pos.span option;
      (** provenance of the active loop, filled in by the interpreter's
          span-enrichment wrapper; [None] until then *)
}

exception Resource_limit of violation

let active = Atomic.make false
let steps = Atomic.make 0
let lim_steps = Atomic.make 0 (* 0 = unlimited *)
let lim_bytes = Atomic.make 0 (* 0 = unlimited *)
let deadline_ns = Atomic.make 0 (* 0 = none *)
let timeout_ns = Atomic.make 0

(* How many ticks between clock/registry reads: steps are checked on
   every tick (one fetch-and-add), wall clock and live bytes only every
   [slow_period] ticks and at every chunk boundary. *)
let slow_period = 64

(** [configure ?max_steps ?max_bytes ?timeout_s ()] — install limits and
    reset the step counter; the wall-clock deadline starts now.  Any
    omitted limit is unenforced; configuring with none given is
    {!clear}. *)
let configure ?max_steps ?max_bytes ?timeout_s () =
  Atomic.set steps 0;
  Atomic.set lim_steps (match max_steps with Some s when s > 0 -> s | _ -> 0);
  Atomic.set lim_bytes (match max_bytes with Some b when b > 0 -> b | _ -> 0);
  (match timeout_s with
  | Some t when t > 0. ->
      let ns = int_of_float (t *. 1e9) in
      Atomic.set timeout_ns ns;
      Atomic.set deadline_ns (Support.Telemetry.now_ns () + ns)
  | _ ->
      Atomic.set timeout_ns 0;
      Atomic.set deadline_ns 0);
  Atomic.set active
    (Atomic.get lim_steps > 0
    || Atomic.get lim_bytes > 0
    || Atomic.get deadline_ns > 0)

let clear () =
  Atomic.set active false;
  Atomic.set steps 0;
  Atomic.set lim_steps 0;
  Atomic.set lim_bytes 0;
  Atomic.set deadline_ns 0;
  Atomic.set timeout_ns 0

let enabled () = Atomic.get active
let steps_executed () = Atomic.get steps

let violation v_kind v_limit v_actual =
  raise (Resource_limit { v_kind; v_limit; v_actual; v_span = None })

(* Wall clock + live bytes: the checks that cost a syscall / registry
   mutex, throttled to chunk boundaries and every [slow_period] ticks. *)
let check_slow () =
  let dl = Atomic.get deadline_ns in
  if dl > 0 then begin
    let now = Support.Telemetry.now_ns () in
    if now > dl then violation Timeout (Atomic.get timeout_ns) (now - dl + Atomic.get timeout_ns)
  end;
  let mb = Atomic.get lim_bytes in
  if mb > 0 then begin
    let live = Rc.current_bytes () in
    if live > mb then violation Max_bytes mb live
  end

(** [check ()] — the chunk-boundary probe: deadline and live-byte limits,
    no step charged.  One load when limits are disabled. *)
let check () = if Atomic.get active then check_slow ()

(** [tick ()] — the loop-iteration probe: charges one step, enforces
    [max_steps] exactly, and runs the slow checks every {!slow_period}
    steps.  One load when limits are disabled. *)
let tick () =
  if Atomic.get active then begin
    let n = 1 + Atomic.fetch_and_add steps 1 in
    let ms = Atomic.get lim_steps in
    if ms > 0 && n > ms then violation Max_steps ms n;
    if n mod slow_period = 0 then check_slow ()
  end

let human_bytes b =
  if b >= 1 lsl 20 then Printf.sprintf "%.1f MiB" (float_of_int b /. 1048576.)
  else if b >= 1024 then Printf.sprintf "%.1f KiB" (float_of_int b /. 1024.)
  else Printf.sprintf "%d bytes" b

(** Human-readable description of a violation, used verbatim as the
    diagnostic message. *)
let describe v =
  match v.v_kind with
  | Max_steps ->
      Printf.sprintf
        "resource limit exceeded: %d loop iterations (--max-steps %d)"
        v.v_actual v.v_limit
  | Max_bytes ->
      Printf.sprintf
        "resource limit exceeded: %s of live matrix payload (--max-bytes %s)"
        (human_bytes v.v_actual) (human_bytes v.v_limit)
  | Timeout ->
      Printf.sprintf
        "resource limit exceeded: wall clock passed the %.3fs deadline \
         (--timeout)"
        (float_of_int v.v_limit /. 1e9)
