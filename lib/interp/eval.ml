(** Executor for lowered programs.

    The paper compiles the generated C with gcc and runs it on a 2×6-core
    machine; in this reproduction the lowered IR is executed directly (see
    DESIGN.md §2): scalar code evaluates with C semantics, [ParFor] regions
    dispatch onto the enhanced fork-join domain pool of {!Runtime.Pool},
    vector operations execute 4-lane f32 arithmetic via {!Runtime.Simd},
    and matrix allocation goes through the reference-counting registry so
    tests can assert the no-leak invariant of the generated code. *)

open Cir.Ir
module S = Runtime.Scalar
module Nd = Runtime.Ndarray

type value =
  | VUnit
  | VNull  (** uninitialised matrix handle (C's NULL pointer) *)
  | VScal of S.t
  | VMat of Nd.t Runtime.Rc.t
  | VVec of Runtime.Simd.v
  | VTuple of value array

exception Interp_error of string

exception Runtime_error of string * Support.Pos.span
(** A runtime failure enriched with the provenance span of the innermost
    [Located] block or loop that was executing — the driver renders it
    with the same caret excerpt as a static diagnostic. *)

let err fmt = Format.kasprintf (fun m -> raise (Interp_error m)) fmt

(* Interpreter telemetry: how much work the lowered program actually did
   (allocation traffic, parallel regions, call volume, element stores). *)
let c_mat_allocs = Support.Telemetry.counter "interp.mat_allocs"
let c_parfor = Support.Telemetry.counter "interp.parfor_regions"
let c_calls = Support.Telemetry.counter "interp.calls"
let c_stores = Support.Telemetry.counter "interp.elem_stores"

let rec pp_value ppf = function
  | VUnit -> Fmt.string ppf "void"
  | VNull -> Fmt.string ppf "NULL"
  | VScal s -> S.pp ppf s
  | VMat rc -> Nd.pp ppf (Runtime.Rc.get rc)
  | VVec v -> Runtime.Simd.pp ppf v
  | VTuple vs ->
      Fmt.pf ppf "(%a)" (Fmt.array ~sep:(Fmt.any ", ") pp_value) vs

let scal = function
  | VScal s -> s
  | v -> err "expected scalar, got %a" pp_value v

let mat = function
  | VMat rc -> Runtime.Rc.get rc
  | VNull -> err "use of an uninitialised matrix"
  | v -> err "expected matrix, got %a" pp_value v

let mat_rc = function
  | VMat rc -> rc
  | VNull -> err "use of an uninitialised matrix"
  | v -> err "expected matrix, got %a" pp_value v

let vecv = function
  | VVec v -> v
  | v -> err "expected vector, got %a" pp_value v

let int_of v = S.to_int (scal v)
let float_of v = S.to_float (scal v)
let bool_of v = S.truthy (scal v)

(* --- environments --------------------------------------------------------- *)

type spawn_entry = { s_dom : value Domain.t; s_target : value ref option }

type env = {
  vars : (string, value ref) Hashtbl.t;
  parent : env option;
  mutable cilk_spawned : spawn_entry list;
      (** Cilk children of this invocation; only consulted on the
          function-root environment (each [call] has its own root, so
          recursive spawns in different domains never share a list) *)
}

let new_env ?parent () = { vars = Hashtbl.create 16; parent; cilk_spawned = [] }

let rec root_env env =
  match env.parent with Some p -> root_env p | None -> env

let rec lookup env name =
  match Hashtbl.find_opt env.vars name with
  | Some r -> r
  | None -> (
      match env.parent with
      | Some p -> lookup p name
      | None -> err "unbound variable %s" name)

let declare env name v = Hashtbl.replace env.vars name (ref v)

(* --- control flow ------------------------------------------------------------ *)

exception Return_exc of value
exception Break_exc
exception Continue_exc

(* --- provenance enrichment ------------------------------------------------- *)

(* Runtime failures that deserve a source location.  Anything else —
   control flow, assertion failures, already-located errors — passes
   through untouched. *)
let message_of_exn = function
  | Interp_error m
  | Runtime.Shape.Shape_error m
  | Nd.Type_error m
  | Nd.Io_error m
  | S.Type_error m ->
      Some m
  | Runtime.Rc.Use_after_free id ->
      Some (Printf.sprintf "use of matrix cell #%d after its count reached 0" id)
  | Runtime.Rc.Double_free id ->
      Some (Printf.sprintf "reference count of matrix cell #%d went negative" id)
  | Support.Failpoint.Injected n ->
      Some (Printf.sprintf "injected fault at failpoint %s" n)
  | _ -> None

(* [locate sp f] — run [f]; if a runtime failure escapes, re-raise it
   carrying [sp] (the innermost enclosing provenance wins, so an already
   located error is not re-wrapped).  A {!Runtime.Limits.Resource_limit}
   keeps its own exception but gains the span. *)
let locate sp f =
  try f () with
  | (Return_exc _ | Break_exc | Continue_exc | Runtime_error _) as e -> raise e
  | Runtime.Limits.Resource_limit ({ v_span = None; _ } as v) ->
      raise (Runtime.Limits.Resource_limit { v with v_span = Some sp })
  | e -> (
      match message_of_exn e with
      | Some m -> raise (Runtime_error (m, sp))
      | None -> raise e)

let locate_opt prov f =
  match prov with Some sp -> locate sp f | None -> f ()

type ctx = {
  prog : program;
  pool : Runtime.Pool.t option;  (** [None] = run ParFor sequentially *)
  fs : (string, string) Hashtbl.t;
      (** virtual filesystem for readMatrix/writeMatrix: path -> temp file;
          lets translated programs do I/O hermetically in tests *)
  dir : string;  (** directory backing the virtual filesystem *)
}

let find_func ctx name =
  match List.find_opt (fun f -> f.f_name = name) ctx.prog.funcs with
  | Some f -> f
  | None -> err "undefined function %s" name

let resolve_path ctx p =
  match Hashtbl.find_opt ctx.fs p with
  | Some real -> real
  | None ->
      let real =
        Filename.concat ctx.dir
          (String.map (function '/' | '\\' -> '_' | c -> c) p)
      in
      Hashtbl.replace ctx.fs p real;
      real

let default_of_type = function
  | CInt -> VScal (S.I 0)
  | CFloat -> VScal (S.F 0.)
  | CBool -> VScal (S.B false)
  | CVec -> VVec (Runtime.Simd.splat 0. ~width:Runtime.Simd.default_width)
  | CVoid -> VUnit
  | CMat _ -> VNull
  | CTuple _ -> VNull

let rec eval (ctx : ctx) (env : env) (e : expr) : value =
  match e with
  | Int i -> VScal (S.I i)
  | Float f -> VScal (S.F f)
  | Bool b -> VScal (S.B b)
  | Str _ -> err "string literal outside readMatrix/writeMatrix"
  | Var v -> !(lookup env v)
  | Binop (Arith op, a, b) ->
      VScal (S.arith op (scal (eval ctx env a)) (scal (eval ctx env b)))
  | Binop (Cmp op, a, b) ->
      VScal (S.cmp op (scal (eval ctx env a)) (scal (eval ctx env b)))
  | Binop (Logic S.And, a, b) ->
      (* C short-circuit semantics *)
      if bool_of (eval ctx env a) then
        VScal (S.B (bool_of (eval ctx env b)))
      else VScal (S.B false)
  | Binop (Logic S.Or, a, b) ->
      if bool_of (eval ctx env a) then VScal (S.B true)
      else VScal (S.B (bool_of (eval ctx env b)))
  | Unop (Neg, a) -> VScal (S.neg (scal (eval ctx env a)))
  | Unop (Not, a) -> VScal (S.not_ (scal (eval ctx env a)))
  | Unop (IntOfFloat, a) -> VScal (S.I (int_of (eval ctx env a)))
  | Unop (FloatOfInt, a) -> VScal (S.F (float_of (eval ctx env a)))
  | Min (a, b) ->
      VScal (S.I (min (int_of (eval ctx env a)) (int_of (eval ctx env b))))
  | Call (name, args) ->
      let f = find_func ctx name in
      let argv = List.map (eval ctx env) args in
      call ctx f argv
  | TupleE es -> VTuple (Array.of_list (List.map (eval ctx env) es))
  | Field (a, i) -> (
      match eval ctx env a with
      | VTuple vs when i < Array.length vs -> vs.(i)
      | v -> err "field .f%d of non-tuple %a" i pp_value v)
  | MAlloc (el, dims) ->
      let sh = Array.of_list (List.map (fun d -> int_of (eval ctx env d)) dims) in
      Array.iter (fun d -> if d < 0 then err "negative matrix extent %d" d) sh;
      let m = Nd.create el sh in
      Support.Telemetry.bump c_mat_allocs;
      VMat (Runtime.Rc.alloc ~bytes:(Nd.size m * 4) m)
  | MGetFlat (me, off) ->
      let m = mat (eval ctx env me) in
      let o = int_of (eval ctx env off) in
      if o < 0 || o >= Nd.size m then
        err "flat offset %d out of bounds for %s" o
          (Runtime.Shape.to_string (Nd.shape m))
      else VScal (Nd.get_flat m o)
  | MDim (me, d) ->
      let m = mat (eval ctx env me) in
      VScal (S.I (Nd.dim_size m (int_of (eval ctx env d))))
  | MSize me -> VScal (S.I (Nd.size (mat (eval ctx env me))))
  | MRead pe -> (
      match pe with
      | Str p ->
          let m = Nd.read_file (resolve_path ctx p) in
          Support.Telemetry.bump c_mat_allocs;
          VMat (Runtime.Rc.alloc ~bytes:(Nd.size m * 4) m)
      | _ -> err "readMatrix requires a literal path")
  | VecSplat a ->
      VVec
        (Runtime.Simd.splat (float_of (eval ctx env a))
           ~width:Runtime.Simd.default_width)
  | VecGather (me, base, stride) ->
      let m = mat (eval ctx env me) in
      let b = int_of (eval ctx env base) in
      let s = int_of (eval ctx env stride) in
      let w = Runtime.Simd.default_width in
      VVec
        (Array.init w (fun k ->
             let o = b + (k * s) in
             if o < 0 || o >= Nd.size m then
               err "vector lane offset %d out of bounds" o
             else Runtime.Simd.to_f32 (S.to_float (Nd.get_flat m o))))
  | VecBin (op, a, b) ->
      let x = vecv (eval ctx env a) and y = vecv (eval ctx env b) in
      let f =
        match op with
        | S.Add -> Runtime.Simd.add
        | S.Sub -> Runtime.Simd.sub
        | S.Mul -> Runtime.Simd.mul
        | S.Div -> Runtime.Simd.div
        | S.Mod -> err "vector modulo unsupported"
      in
      VVec (f x y)
  | VecHsum a -> VScal (S.F (Runtime.Simd.hsum (vecv (eval ctx env a))))

and assign ctx env lv v =
  match lv with
  | LVar name -> lookup env name := v
  | LField (lv', i) -> (
      let cur = eval_lvalue ctx env lv' in
      match !cur with
      | VTuple vs when i < Array.length vs ->
          let vs' = Array.copy vs in
          vs'.(i) <- v;
          cur := VTuple vs'
      | x -> err "field assignment .f%d on %a" i pp_value x)

and eval_lvalue _ctx env = function
  | LVar name -> lookup env name
  | LField _ -> err "nested tuple lvalues are flattened by lowering"

and exec (ctx : ctx) (env : env) (s : stmt) : unit =
  match s with
  | Decl (t, name, init) ->
      let v =
        match init with
        | Some e -> eval ctx env e
        | None -> default_of_type t
      in
      declare env name v
  | Assign (lv, e) -> assign ctx env lv (eval ctx env e)
  | MSetFlat (me, off, ve) ->
      let m = mat (eval ctx env me) in
      let o = int_of (eval ctx env off) in
      if o < 0 || o >= Nd.size m then
        err "flat offset %d out of bounds for %s" o
          (Runtime.Shape.to_string (Nd.shape m))
      else begin
        Support.Telemetry.bump c_stores;
        Nd.set_flat m o (scal (eval ctx env ve))
      end
  | VecScatter (me, base, stride, ve) ->
      let m = mat (eval ctx env me) in
      let b = int_of (eval ctx env base) in
      let st = int_of (eval ctx env stride) in
      let v = vecv (eval ctx env ve) in
      Array.iteri
        (fun k x ->
          let o = b + (k * st) in
          if o < 0 || o >= Nd.size m then err "scatter offset %d out of bounds" o
          else Nd.set_flat m o (S.F (Runtime.Simd.to_f32 x)))
        v
  | If (c, a, b) ->
      if bool_of (eval ctx env c) then exec_block ctx env a
      else exec_block ctx env b
  | While (c, b) -> (
      try
        while bool_of (eval ctx env c) do
          Runtime.Limits.tick ();
          try exec_block ctx env b with Continue_exc -> ()
        done
      with Break_exc -> ())
  | For l ->
      let bound = int_of (eval ctx env l.bound) in
      let body () =
        locate_opt l.prov (fun () ->
            try
              for i = 0 to bound - 1 do
                Runtime.Limits.tick ();
                let inner = new_env ~parent:env () in
                declare inner l.index (VScal (S.I i));
                try exec_block ctx inner l.body with Continue_exc -> ()
              done
            with Break_exc -> ())
      in
      (* Inside a parallel region the dispatching ParFor row owns the
         time (workers would otherwise multiply-count wall clock and
         contend on the profiler mutex every iteration). *)
      if
        Support.Profile.is_enabled ()
        && l.prov <> None
        && not (Support.Profile.in_region ())
      then begin
        Support.Profile.enter (Option.get l.prov);
        Fun.protect
          ~finally:(fun () -> Support.Profile.exit_ ~iters:bound ())
          body
      end
      else body ()
  | ParFor l ->
      Support.Telemetry.bump c_parfor;
      let bound = int_of (eval ctx env l.bound) in
      let body () =
        locate_opt l.prov (fun () ->
            match ctx.pool with
            | None ->
                for i = 0 to bound - 1 do
                  Runtime.Limits.tick ();
                  let inner = new_env ~parent:env () in
                  declare inner l.index (VScal (S.I i));
                  exec_block ctx inner l.body
                done
            | Some pool ->
                (* The with-loop generator guarantees disjoint index sets, so
                   iterations write disjoint elements (§III-A4).  Guided chunking
                   load-balances bodies of uneven cost (matrixMap over slices,
                   conncomp frames); the pool re-raises the first body exception
                   at the stop barrier with its backtrace, retrying chunks
                   that died to a recoverable fault.  The [locate_opt]
                   wrapper sits outside the dispatch, so whatever the
                   barrier re-raises gains this loop's provenance. *)
                Runtime.Pool.parallel_for ~chunking:Runtime.Pool.Guided pool 0
                  bound (fun i ->
                    Runtime.Limits.tick ();
                    let inner = new_env ~parent:env () in
                    declare inner l.index (VScal (S.I i));
                    exec_block ctx inner l.body))
      in
      if
        Support.Profile.is_enabled ()
        && l.prov <> None
        && not (Support.Profile.in_region ())
      then begin
        let sp = Option.get l.prov in
        let dispatched = ctx.pool <> None in
        Support.Telemetry.with_span ~phase:"interp"
          ~args:[ ("prov", Support.Pos.span_to_string sp) ]
          "parfor" (fun () ->
            Support.Profile.enter sp;
            if dispatched then Support.Profile.open_region sp;
            Fun.protect
              ~finally:(fun () ->
                Support.Profile.exit_ ~iters:bound
                  ~dispatches:(if dispatched then 1 else 0)
                  ~par:dispatched ())
              body)
      end
      else body ()
  | ExprS e -> ignore (eval ctx env e)
  | Return None -> raise (Return_exc VUnit)
  | Return (Some e) -> raise (Return_exc (eval ctx env e))
  | Break -> raise Break_exc
  | Continue -> raise Continue_exc
  | RcInc e -> rc_adjust Runtime.Rc.incr_ (eval ctx env e)
  | RcDec e -> rc_adjust Runtime.Rc.decr_ (eval ctx env e)
  | MWrite (pe, me) -> (
      match pe with
      | Str p ->
          Nd.write_file (resolve_path ctx p) (mat (eval ctx env me))
      | _ -> err "writeMatrix requires a literal path")
  | Comment _ -> ()
  | Block b -> exec_block ctx env b
  | Spawn (lv, fname, args) ->
      let f = find_func ctx fname in
      let argv = List.map (eval ctx env) args in
      let target =
        match lv with
        | None -> None
        | Some (LVar v) -> Some (lookup env v)
        | Some (LField _) -> err "spawn into a tuple field is unsupported"
      in
      let dom = Domain.spawn (fun () -> call ctx f argv) in
      let root = root_env env in
      root.cilk_spawned <- { s_dom = dom; s_target = target } :: root.cilk_spawned
  | Sync -> sync (root_env env)
  | Located (sp, b) ->
      (* Provenance block, not a scope: the statements run in the current
         environment.  Timed only for top-level straight-line code (empty
         frame stack, no active parallel region) — loops are the
         aggregation grain everywhere else, so per-statement clock reads
         stay out of hot bodies. *)
      locate sp (fun () ->
          if
            Support.Profile.is_enabled ()
            && Support.Profile.depth () = 0
            && not (Support.Profile.in_region ())
          then begin
            Support.Profile.enter sp;
            Fun.protect
              ~finally:(fun () -> Support.Profile.exit_ ())
              (fun () -> List.iter (exec ctx env) b)
          end
          else List.iter (exec ctx env) b)
  | Site (_, b) ->
      (* Decision wrapper, not a scope: the payload runs in the current
         environment.  Only reachable when interpreting intermediate IR —
         a finished pipeline leaves no [Site] nodes behind. *)
      List.iter (exec ctx env) b

and sync root =
  (* join in spawn order; propagate the first child exception *)
  let entries = List.rev root.cilk_spawned in
  root.cilk_spawned <- [];
  let failure = ref None in
  List.iter
    (fun e ->
      match Domain.join e.s_dom with
      | v -> Option.iter (fun r -> r := v) e.s_target
      | exception exn -> if !failure = None then failure := Some exn)
    entries;
  match !failure with Some exn -> raise exn | None -> ()

and rc_adjust f v =
  (* Retain/release of NULL is a no-op (C semantics); tuples adjust every
     matrix they hold (the lowered struct owns its fields). *)
  match v with
  | VNull -> ()
  | VMat rc -> f rc
  | VTuple vs -> Array.iter (rc_adjust f) vs
  | v -> err "rc operation on %a" pp_value v

and exec_block ctx env stmts =
  let scope = new_env ~parent:env () in
  List.iter (exec ctx scope) stmts

and call ctx (f : func) (args : value list) : value =
  Support.Telemetry.bump c_calls;
  if List.length args <> List.length f.f_params then
    err "%s expects %d arguments, got %d" f.f_name (List.length f.f_params)
      (List.length args);
  let env = new_env () in
  List.iter2 (fun (_, name) v -> declare env name v) f.f_params args;
  (* Cilk semantics: every function has an implicit sync before returning;
     [env] is this invocation's root, so the spawn list is per-call and
     per-domain. *)
  match
    List.iter (exec ctx env) f.f_body;
    VUnit
  with
  | v ->
      sync env;
      v
  | exception Return_exc v ->
      sync env;
      v
  | exception exn ->
      (try sync env with _ -> ());
      raise exn

(** [run ?pool ?dir prog args] — call the program's entry function.
    [dir] hosts the program's matrix files (virtual filesystem);
    defaults to a fresh temp directory. *)
let run ?pool ?dir (prog : program) (args : value list) : value =
  let dir =
    match dir with
    | Some d -> d
    | None ->
        let d = Filename.temp_file "mmcfs" "" in
        Sys.remove d;
        Sys.mkdir d 0o755;
        d
  in
  let ctx = { prog; pool; fs = Hashtbl.create 8; dir } in
  (* An aborted run never executes its scope-exit RcDec statements, so its
     allocations would sit in the live registry forever (a phantom leak
     that also keeps counting against --max-bytes).  Mark the ledger here
     and drain everything allocated after the mark on any escape. *)
  let ledger_mark = Runtime.Rc.mark () in
  try call ctx (find_func ctx prog.main) args
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    ignore (Runtime.Rc.drain_since ledger_mark);
    Printexc.raise_with_backtrace e bt

(** [provide_input ?dir path m] — place matrix [m] where a translated
    program's [readMatrix path] will find it. *)
let provide_input ~dir path m =
  let real =
    Filename.concat dir (String.map (function '/' | '\\' -> '_' | c -> c) path)
  in
  Runtime.Ndarray.write_file real m

(** [fetch_output ~dir path] — read back a matrix the program wrote with
    [writeMatrix path]. *)
let fetch_output ~dir path =
  let real =
    Filename.concat dir (String.map (function '/' | '\\' -> '_' | c -> c) path)
  in
  Runtime.Ndarray.read_file real
