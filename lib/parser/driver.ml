(** Table-driven LR parser coupled to the context-aware scanner.

    The coupling is the essential Copper trick: before requesting the next
    token, the driver passes the scanner the {i valid lookahead set} of the
    current LR state, so terminals from different extensions (or an
    extension keyword shadowing a host identifier) never fight outside the
    contexts where they can actually occur. *)

module IntSet = Set.Make (Int)
module A = Grammar.Analysis
module L = Grammar.Lalr

type error = {
  span : Support.Pos.span;
  message : string;
  expected : string list;  (** terminal names acceptable at the error point *)
}

let pp_error ppf e =
  Fmt.pf ppf "%a: %s" Support.Pos.pp_span e.span e.message;
  match e.expected with
  | [] -> ()
  | ts -> Fmt.pf ppf " (expected one of: %s)" (String.concat ", " ts)

let error_to_diag (e : error) =
  Support.Diag.error ~phase:"parse" ~span:e.span "%s%s" e.message
    (match e.expected with
    | [] -> ""
    | ts -> " (expected one of: " ^ String.concat ", " ts ^ ")")

type t = { table : L.t; scanner : Lexer.Scanner.t }

(* One bump per token the context-aware scanner hands the parser. *)
let c_tokens = Support.Telemetry.counter "scan.tokens"

(** [create table] prepares a parser (compiling all terminal DFAs once).
    The same [t] is reused for every file compiled under a given
    host ∪ extensions selection. *)
let create (table : L.t) : t =
  { table; scanner = Lexer.Scanner.create table.L.g }

let expected_names table state =
  List.map
    (fun tid -> table.L.g.A.term_names.(tid))
    (IntSet.elements table.L.valid_terms.(state))

(** [parse t src] — scan and parse [src], producing a generic concrete
    syntax tree or a parse/lex error. *)
let parse (t : t) (src : string) : (Tree.t, error) Result.t =
  let table = t.table in
  let stack = ref [ (0, None) ] in
  (* (state, tree) pairs; None only for the bottom. *)
  let state () = fst (List.hd !stack) in
  let pos = ref Support.Pos.start in
  let lookahead : Lexer.Token.t option ref = ref None in
  let fetch () =
    match !lookahead with
    | Some tok -> Ok tok
    | None -> (
        let valid = table.L.valid_terms.(state ()) in
        match Lexer.Scanner.next t.scanner src !pos ~valid with
        | Lexer.Scanner.Tok tok ->
            Support.Telemetry.bump c_tokens;
            pos := tok.Lexer.Token.span.Support.Pos.right;
            lookahead := Some tok;
            Ok tok
        | Lexer.Scanner.Lex_error { pos = p; valid = _ } ->
            Error
              {
                span = Support.Pos.span p p;
                message =
                  (if p.Support.Pos.offset >= String.length src then
                     "unexpected end of input"
                   else
                     Printf.sprintf "no valid token at %C"
                       src.[p.Support.Pos.offset]);
                expected = expected_names table (state ());
              }
        | Lexer.Scanner.Ambiguous { pos = p; candidates } ->
            Error
              {
                span = Support.Pos.span p p;
                message =
                  "lexically ambiguous between terminals: "
                  ^ String.concat ", " candidates;
                expected = [];
              })
  in
  let result = ref None in
  (try
     while !result = None do
       match fetch () with
       | Error e -> result := Some (Error e)
       | Ok tok -> (
           match table.L.action.(state ()).(tok.Lexer.Token.term_id) with
           | L.Shift s ->
               stack := (s, Some (Tree.Leaf tok)) :: !stack;
               lookahead := None
           | L.Reduce pi ->
               let prod = table.L.g.A.prods.(pi) in
               let n = Array.length prod.A.irhs in
               let rec pop k acc st =
                 if k = 0 then (acc, st)
                 else
                   match st with
                   | (_, Some tree) :: rest -> pop (k - 1) (tree :: acc) rest
                   | _ ->
                       Support.Diag.fatal ~phase:"parse"
                         ~span:tok.Lexer.Token.span "parser stack underflow"
               in
               let kids, rest = pop n [] !stack in
               let src_prod =
                 match prod.A.src with
                 | Some p -> p
                 | None ->
                     Support.Diag.fatal ~phase:"parse"
                       ~span:tok.Lexer.Token.span
                       "reduce by augmented production"
               in
               let span =
                 match kids with
                 | [] ->
                     Support.Pos.span tok.Lexer.Token.span.Support.Pos.left
                       tok.Lexer.Token.span.Support.Pos.left
                 | first :: _ ->
                     Support.Pos.merge (Tree.span first)
                       (Tree.span (List.nth kids (List.length kids - 1)))
               in
               let node = Tree.Node (src_prod, kids, span) in
               let goto_state =
                 table.L.goto.(fst (List.hd rest)).(prod.A.ilhs)
               in
               if goto_state < 0 then
                 Support.Diag.fatal ~phase:"parse" ~span "missing goto entry";
               stack := (goto_state, Some node) :: rest
           | L.Accept -> (
               match !stack with
               | (_, Some tree) :: _ -> result := Some (Ok tree)
               | _ ->
                   Support.Diag.fatal ~phase:"parse" ~span:tok.Lexer.Token.span
                     "accept with empty stack")
           | L.Error ->
               result :=
                 Some
                   (Error
                      {
                        span = tok.Lexer.Token.span;
                        message =
                          Printf.sprintf "syntax error at %s"
                            (if Lexer.Token.is_eof tok then "end of input"
                             else Printf.sprintf "%S" tok.Lexer.Token.lexeme);
                        expected = expected_names table (state ());
                      }))
     done
   with Support.Diag.Fatal d ->
     result := Some (Error { span = d.Support.Diag.span; message = d.Support.Diag.message; expected = [] }));
  Option.get !result
