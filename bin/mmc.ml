(* mmc — the extensible CMINUS translator, as a command-line tool.

   The workflow of §II: select extensions (like libraries), the tool runs
   the composability analyses, composes a custom translator, and then
   checks / translates / runs extended-C programs.

     mmc analyze -x matrix -x transform
     mmc check   program.xc -x matrix
     mmc emit    program.xc -x matrix -x transform > program.c
     mmc run     program.xc -x matrix --threads 4 --data-dir ./data
*)

open Cmdliner

let read_source = function
  | "-" -> In_channel.input_all In_channel.stdin
  | path -> In_channel.with_open_text path In_channel.input_all

(* Fatal CLI errors raise (rather than [exit], which would not unwind)
   so [with_telemetry]'s finalizer still reports --stats/--trace; the
   exception is turned back into the exit code inside the term body. *)
exception Fatal of int

let resolve_exts names =
  List.map
    (fun n ->
      match Driver.extension_by_name n with
      | Some x -> x
      | None ->
          Fmt.epr "unknown extension %S (available: %s)@." n
            (String.concat ", "
               (List.map (fun x -> x.Driver.x_name) Driver.all_extensions));
          raise (Fatal 2))
    names

let compose_or_die exts =
  match Driver.compose exts with
  | c -> c
  | exception Driver.Compose_failed msg ->
      Fmt.epr "composition failed:@.%s@." msg;
      raise (Fatal 2)

(* --- common options ---------------------------------------------------------- *)

(* Both the help text and the default selection are derived from
   [Driver.all_extensions], so a newly shipped extension (e.g. cilk) can
   never be silently missing from either. *)
let all_ext_names =
  List.map (fun x -> x.Driver.x_name) Driver.all_extensions

let exts_arg =
  let doc =
    Fmt.str
      "Language extension to load (repeatable). Available: %s. Tuples are \
       always present: they fail isComposable and ship with the host \
       (§VI-A)."
      (String.concat ", " all_ext_names)
  in
  Arg.(value & opt_all string all_ext_names
       & info [ "x"; "extension" ] ~docv:"EXT" ~doc)

let src_arg =
  let doc = "Extended-C source file ('-' for stdin)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

(* --- pass pipeline (--passes / -O0 / -O1) ------------------------------------- *)

let passes_arg =
  Arg.(value & opt (some string) None
       & info [ "passes" ] ~docv:"PASS[,PASS...]"
           ~doc:"Run only the named CIR passes, in the given order. The \
                 remaining registered passes still run disabled — their \
                 sites are spliced away and their decisions reported as \
                 skipped. Known passes, in default order: fuse, \
                 copy-elim, auto-par, transform. Ordering matters: \
                 $(b,--passes transform,auto-par) applies transform \
                 scripts before parallelization, letting scripts bind \
                 loop nests the default order would hand to auto-par \
                 first.")

let o0_arg =
  Arg.(value & flag
       & info [ "O0" ]
           ~doc:"Disable every optimization pass: the baseline lowering, \
                 library-style copies included.")

let o1_arg =
  Arg.(value & flag
       & info [ "O1" ]
           ~doc:"Enable every optimization pass, auto-parallelization \
                 included.")

let pipeline_term =
  Term.(const (fun p o0 o1 -> (p, o0, o1)) $ passes_arg $ o0_arg $ o1_arg)

(* Build this invocation's pipeline config: the composition's defaults,
   then -O0/-O1, then the command's own legacy toggles ([tweaks]), then
   --passes — which overrides both selection and order.  An unknown
   --passes name is a plain usage error listing the known passes (no
   caret: there is no source position to point at). *)
let resolve_config (passes_spec, o0, o1) ?(tweaks = fun cfg -> cfg) c =
  if o0 && o1 then begin
    Fmt.epr "mmc: -O0 and -O1 are mutually exclusive@.";
    raise (Fatal 2)
  end;
  (* precedence: per-flag tweaks (--seq, --no-fuse, …) < -O0/-O1 <
     --passes, most specific last *)
  let cfg = tweaks (Driver.default_config c) in
  let cfg =
    if o0 then Driver.Pipeline.set_all cfg false
    else if o1 then Driver.Pipeline.set_all cfg true
    else cfg
  in
  match passes_spec with
  | None -> cfg
  | Some s -> (
      let names =
        String.split_on_char ',' s |> List.map String.trim
        |> List.filter (fun p -> p <> "")
      in
      match Driver.Pipeline.of_spec cfg names with
      | Ok cfg -> cfg
      | Error bad ->
          Fmt.epr "mmc: unknown --passes pass %S (available: %s)@." bad
            (String.concat ", " (Driver.Pipeline.known cfg));
          raise (Fatal 2))

(* --- telemetry (--stats / --trace) ------------------------------------------- *)

let stats_arg =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"Print a per-phase timing and pipeline-counter summary to \
                 standard error when the command finishes.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace-event JSON file (load it in \
                 chrome://tracing or https://ui.perfetto.dev) covering \
                 compiler phases, runtime-pool activity and pipeline \
                 counters.")

let telemetry_term = Term.(const (fun s t -> (s, t)) $ stats_arg $ trace_arg)

(* --- optimization remarks (--remarks) ----------------------------------------- *)

let remarks_arg =
  Arg.(value & flag
       & info [ "remarks" ]
           ~doc:"Collect optimization remarks (with-loop fusion, copy \
                 elimination, auto-parallelization, reference counting, \
                 transform clauses) while compiling and print the remark \
                 table to standard error when the command finishes. See \
                 also the $(b,explain) subcommand.")

(* Enable remark collection iff requested, run the command body, then
   render the table (with caret excerpts) to stderr.  [Fun.protect] so a
   failing command still reports what the pipeline decided. *)
let with_remarks enabled ~src k =
  if enabled then begin
    Support.Remark.reset ();
    Support.Remark.set_enabled true
  end;
  Fun.protect
    ~finally:(fun () ->
      if enabled then begin
        Fmt.epr "%a" (Support.Remark.pp ~src) (Support.Remark.results ());
        Support.Remark.set_enabled false
      end)
    k

(* Enable telemetry iff requested, run the command body, then emit the
   requested reports.  [Fun.protect] so a failing command still reports. *)
let with_telemetry (stats, trace) k =
  if stats || Option.is_some trace then begin
    Support.Telemetry.reset ();
    Support.Telemetry.set_enabled true
  end;
  Fun.protect
    ~finally:(fun () ->
      if stats then Fmt.epr "%a@." Support.Telemetry.pp_summary ();
      (try Option.iter Support.Telemetry.write_chrome_trace trace
       with Sys_error m -> Fmt.epr "mmc: cannot write trace: %s@." m);
      Support.Telemetry.set_enabled false)
    (fun () -> try k () with Fatal code -> code)

(* --- analyze ------------------------------------------------------------------- *)

let analyze_cmd =
  let run exts_names tele =
    with_telemetry tele @@ fun () ->
    let exts = resolve_exts exts_names in
    let reports =
      List.map
        (fun x ->
          Grammar.Determinism.check Driver.effective_host x.Driver.grammar)
        exts
    in
    List.iter (fun r -> Fmt.pr "%a@." Grammar.Determinism.pp_report r) reports;
    List.iter
      (fun x ->
        Fmt.pr "%a@."
          Ag.Wellformed.pp_report
          (Ag.Wellformed.check ~host:Driver.host_ag_spec x.Driver.ag_spec))
      exts;
    let c = compose_or_die exts in
    Fmt.pr "composed translator: %d LALR(1) states, %d terminals@."
      c.Driver.table.Grammar.Lalr.n_states
      c.Driver.table.Grammar.Lalr.g.Grammar.Analysis.n_terms;
    if List.for_all (fun r -> r.Grammar.Determinism.passes) reports then 0
    else 1
  in
  let doc = "Run the modular composability analyses (§VI) and compose." in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const run $ exts_arg $ telemetry_term)

(* --- check --------------------------------------------------------------------- *)

let check_cmd =
  let auto_par =
    Arg.(value & flag & info [ "auto-par" ]
         ~doc:"Check under auto-parallelization (§III-C), so lowering \
               warnings (e.g. a transform script skipped because a loop \
               became parallel) match what run --threads N would report.")
  in
  let run exts_names auto_par pipeline remarks tele file =
    with_telemetry tele @@ fun () ->
    let c = compose_or_die (resolve_exts exts_names) in
    let config =
      resolve_config pipeline c
        ~tweaks:(fun cfg -> Driver.Pipeline.enable cfg "auto-par" auto_par)
    in
    let src = read_source file in
    with_remarks remarks ~src @@ fun () ->
    let warn d = Fmt.epr "%s@." (Driver.diags_to_string ~src [ d ]) in
    match Driver.frontend c src with
    | Driver.Failed ds ->
        Fmt.epr "%s@." (Driver.diags_to_string ~src ds);
        1
    | Driver.Ok_ ast -> (
        (* Also lower: non-fatal lowering diagnostics (transform scripts
           skipped, …) must reach stderr on check too, not only on
           emit/run — checking a program should surface everything short
           of executing it. *)
        match Driver.lower ~config ~warn c ast with
        | Driver.Ok_ _ ->
            Fmt.pr "%s: OK@." file;
            0
        | Driver.Failed ds ->
            Fmt.epr "%s@." (Driver.diags_to_string ~src ds);
            1)
  in
  let doc = "Parse, typecheck and lower an extended-C program." in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const run $ exts_arg $ auto_par $ pipeline_term $ remarks_arg
      $ telemetry_term $ src_arg)

(* --- emit ---------------------------------------------------------------------- *)

let emit_cmd =
  let fuse =
    Arg.(value & flag & info [ "no-fuse" ]
         ~doc:"Library-style lowering: materialise with-loop temporaries.")
  in
  let auto_par =
    Arg.(value & flag & info [ "auto-par" ]
         ~doc:"Auto-parallelize with-loops and matrixMap (§III-C).")
  in
  let line_directives =
    Arg.(value & flag & info [ "line-directives" ]
         ~doc:"Emit #line directives pointing C tools (debuggers, \
               profilers) back at the original extended-C source.")
  in
  let instrument =
    Arg.(value & flag & info [ "instrument" ]
         ~doc:"Wrap provenance-carrying loops in mm_prof enter/exit \
               calls over a generated span table, so the compiled \
               program can attribute native wall time to source spans \
               (what $(b,profile --native) compiles). Requires \
               mm_prof.h/mm_prof.c from runtime/c/ to build standalone.")
  in
  let run exts_names no_fuse auto_par pipeline line_directives instrument
      remarks tele file =
    with_telemetry tele @@ fun () ->
    let c = compose_or_die (resolve_exts exts_names) in
    let config =
      resolve_config pipeline c ~tweaks:(fun cfg ->
          Driver.Pipeline.enable
            (Driver.Pipeline.enable cfg "fuse" (not no_fuse))
            "auto-par" auto_par)
    in
    let src = read_source file in
    with_remarks remarks ~src @@ fun () ->
    let line_file =
      if line_directives then
        Some (if file = "-" then "<stdin>" else file)
      else None
    in
    let warn d = Fmt.epr "%s@." (Driver.diags_to_string ~src [ d ]) in
    match
      Driver.compile_to_c ~config ~warn ?line_file ~instrument c src
    with
    | Driver.Ok_ text ->
        print_string text;
        0
    | Driver.Failed ds ->
        Fmt.epr "%s@." (Driver.diags_to_string ~src ds);
        1
  in
  let doc = "Translate extended C down to plain parallel C (§II)." in
  Cmd.v (Cmd.info "emit" ~doc)
    Term.(
      const run $ exts_arg $ fuse $ auto_par $ pipeline_term $ line_directives
      $ instrument $ remarks_arg $ telemetry_term $ src_arg)

(* --- run / profile (shared runtime options) ------------------------------------ *)

let threads_arg =
  Arg.(value & opt int 1
       & info [ "t"; "threads" ] ~docv:"N"
           ~doc:"Worker-pool threads (the paper's command-line thread \
                 count, §III-C). Implies auto-parallelization when > 1.")

let data_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "data-dir" ] ~docv:"DIR"
           ~doc:"Directory where readMatrix/writeMatrix resolve paths.")

let block_arg =
  Arg.(value & opt (some int) None
       & info [ "block" ] ~docv:"B"
           ~doc:"Cache-block edge for the tiled matmul kernel (default \
                 48, or \\$(b,MMC_BLOCK)).")

let grain_arg =
  Arg.(value & opt (some int) None
       & info [ "grain" ] ~docv:"G"
           ~doc:"Minimum elements before an elementwise/reduction kernel \
                 dispatches to the pool (default 16384, or \
                 \\$(b,MMC_GRAIN)).")

(* --- robustness options (run / profile) ---------------------------------------- *)

let failpoints_arg =
  Arg.(value & opt_all string []
       & info [ "failpoints" ] ~docv:"SPEC"
           ~doc:"Arm fault-injection points for chaos testing: \
                 comma-separated clauses, repeatable. \
                 $(b,name\\@K) fires on exactly the K-th hit; \
                 $(b,name\\@P) fires each hit with probability P; \
                 $(b,name\\@P:SEED) seeds the per-hit coin. Also read \
                 from \\$(b,MMC_FAILPOINTS). Known points: ndarray.alloc, \
                 pool.dispatch, pool.worker_body, io.read_matrix.")

let max_steps_arg =
  Arg.(value & opt (some int) None
       & info [ "max-steps" ] ~docv:"N"
           ~doc:"Abort the program after N loop iterations (checked at \
                 every iteration).")

let max_bytes_arg =
  Arg.(value & opt (some int) None
       & info [ "max-bytes" ] ~docv:"N"
           ~doc:"Abort when live matrix payload in the RC registry \
                 exceeds N bytes (checked at loop and chunk boundaries).")

let timeout_arg =
  Arg.(value & opt (some float) None
       & info [ "timeout" ] ~docv:"SECS"
           ~doc:"Abort after SECS seconds of wall clock (cooperative: \
                 enforced at loop and chunk boundaries).")

let fault_budget_arg =
  Arg.(value & opt (some int) None
       & info [ "fault-budget" ] ~docv:"N"
           ~doc:"Recovered worker faults tolerated before the pool \
                 degrades to sequential fallback (default 3, or \
                 \\$(b,MMC_FAULT_BUDGET)).")

let robustness_term =
  Term.(
    const (fun fp ms mb t fb -> (fp, ms, mb, t, fb))
    $ failpoints_arg $ max_steps_arg $ max_bytes_arg $ timeout_arg
    $ fault_budget_arg)

(* Arm failpoints and install resource limits around the command body;
   both are process-global, so the finalizer always clears them. *)
let with_robustness (specs, max_steps, max_bytes, timeout_s, fault_budget)
    pool k =
  Support.Failpoint.reset ();
  (try
     Support.Failpoint.arm_from_env ();
     List.iter Support.Failpoint.arm_spec specs
   with Support.Failpoint.Bad_spec m ->
     Fmt.epr "mmc: bad failpoint spec: %s@." m;
     raise (Fatal 2));
  (match fault_budget with
  | Some n when n < 0 ->
      Fmt.epr "mmc: --fault-budget must be >= 0@.";
      raise (Fatal 2)
  | Some n -> Option.iter (fun p -> Runtime.Pool.set_fault_budget p n) pool
  | None -> ());
  Runtime.Limits.configure ?max_steps ?max_bytes ?timeout_s ();
  Fun.protect
    ~finally:(fun () ->
      Runtime.Limits.clear ();
      Support.Failpoint.reset ())
    k

let set_kernel_knobs block grain =
  try
    Option.iter Runtime.Ndarray.set_block_size block;
    Option.iter Runtime.Ndarray.set_par_grain grain
  with Invalid_argument _ ->
    Fmt.epr "mmc: --block and --grain must be positive@.";
    raise (Fatal 2)

let resolve_data_dir = function
  | Some d -> d
  | None ->
      let d = Filename.temp_file "mmc_run" "" in
      Sys.remove d;
      Sys.mkdir d 0o755;
      d

let run_cmd =
  let run exts_names threads data_dir block grain pipeline robust remarks tele
      file =
    with_telemetry tele @@ fun () ->
    set_kernel_knobs block grain;
    let c = compose_or_die (resolve_exts exts_names) in
    let config =
      resolve_config pipeline c ~tweaks:(fun cfg ->
          Driver.Pipeline.enable cfg "auto-par" (threads > 1))
    in
    let dir = resolve_data_dir data_dir in
    let src = read_source file in
    with_remarks remarks ~src @@ fun () ->
    let warn d = Fmt.epr "%s@." (Driver.diags_to_string ~src [ d ]) in
    let exec pool =
      Runtime.Rc.reset ();
      with_robustness robust pool @@ fun () ->
      match Driver.run ~dir ?pool ~config ~warn c src [] with
      | Driver.Ok_ v ->
          Fmt.pr "result: %a@." Interp.Eval.pp_value v;
          let live = Runtime.Rc.live_count () in
          if live > 0 then
            Fmt.epr "warning: %d allocation(s) still live at exit@." live;
          0
      | Driver.Failed ds ->
          Fmt.epr "%s@." (Driver.diags_to_string ~src ds);
          1
    in
    if threads > 1 then
      Runtime.Pool.with_pool threads (fun pool -> exec (Some pool))
    else exec None
  in
  let doc = "Translate and execute on the parallel matrix runtime." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ exts_arg $ threads_arg $ data_dir_arg $ block_arg $ grain_arg
      $ pipeline_term $ robustness_term $ remarks_arg $ telemetry_term
      $ src_arg)

(* --- native toolchain options (exec / profile --native) ------------------------ *)

let cc_arg =
  Arg.(value & opt (some string) None
       & info [ "cc" ] ~docv:"CC"
           ~doc:"C compiler to drive (default: \\$(b,MMC_CC), then cc).")

let cflags_arg =
  Arg.(value & opt_all string []
       & info [ "cflags" ] ~docv:"FLAG"
           ~doc:"Extra flag for the C compiler, after the defaults \
                 (-O2 -Wall, plus -fopenmp when available). Repeatable.")

let keep_c_arg =
  Arg.(value & opt (some string) None
       & info [ "keep-c" ] ~docv:"FILE"
           ~doc:"Also write the emitted self-contained C program to FILE, \
                 with its runtime sources beside it, so it can be \
                 recompiled standalone.")

let no_cache_arg =
  Arg.(value & flag
       & info [ "no-cache" ]
           ~doc:"Always recompile, bypassing the binary cache.")

let cache_dir_arg =
  Arg.(value & opt string Native.Cache.default_dir
       & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Binary-cache directory (default _mmc_cache).")

let native_opts_term =
  Term.(
    const (fun cc cflags keep_c no_cache cache_dir ->
        (cc, cflags, keep_c, no_cache, cache_dir))
    $ cc_arg $ cflags_arg $ keep_c_arg $ no_cache_arg $ cache_dir_arg)

(* --- exec (native) ------------------------------------------------------------- *)

let exec_cmd =
  let no_fuse =
    Arg.(value & flag & info [ "no-fuse" ]
         ~doc:"Library-style lowering: materialise with-loop temporaries.")
  in
  let no_copy_elim =
    Arg.(value & flag & info [ "no-copy-elim" ]
         ~doc:"Disable slice-copy elimination.")
  in
  let line_directives =
    Arg.(value & flag & info [ "line-directives" ]
         ~doc:"Emit #line directives in the generated C (visible through \
               --keep-c and in the cache directory), pointing C tools \
               back at the original extended-C source.")
  in
  let guards =
    Arg.(value & flag & info [ "guards" ]
         ~doc:"Compile with runtime guards: every emitted subscript is \
               bounds- and NULL-checked, reference-count underflows \
               abort, and crash breadcrumbs attribute fatal signals to \
               source spans. A tripped guard reports a caret-rendered \
               diagnostic at the faulting span instead of a raw crash. \
               Guarded binaries occupy their own cache slot.")
  in
  let sanitize =
    Arg.(value
         & opt (some (enum [ ("address", "address"); ("undefined", "undefined") ]))
             None
         & info [ "sanitize" ] ~docv:"MODE"
             ~doc:"Compile under -fsanitize=MODE (address or undefined). \
                   The toolchain is probed first: an unsupported \
                   sanitizer reports a visible diagnostic instead of a \
                   compile error. Sanitized binaries occupy their own \
                   cache slot.")
  in
  let native_failpoints =
    Arg.(value & opt_all string []
         & info [ "failpoints" ] ~docv:"SPEC"
             ~doc:"Arm fault-injection points inside the native binary \
                   (via \\$(b,MM_FAILPOINTS) in its environment): \
                   comma-separated clauses, repeatable. $(b,name\\@K) \
                   fires on exactly the K-th hit; $(b,name\\@P) fires \
                   each hit with probability P; $(b,name\\@P:SEED) seeds \
                   the coin. Known points: native.alloc, \
                   native.io.read_matrix.")
  in
  let native_timeout =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"SECS"
             ~doc:"Kill the native binary after SECS seconds of wall \
                   clock (SIGTERM, then SIGKILL after a grace period), \
                   with a CPU-seconds rlimit as backstop.")
  in
  let native_max_bytes =
    Arg.(value & opt (some int) None
         & info [ "max-bytes" ] ~docv:"N"
             ~doc:"Cap the native binary's address space at N bytes \
                   (plus fixed runtime headroom) via setrlimit, so a \
                   runaway allocation fails inside the child instead of \
                   invoking the system OOM killer.")
  in
  let run exts_names threads data_dir (cc, cflags, keep_c, no_cache, cache_dir)
      no_fuse no_copy_elim pipeline line_directives guards sanitize failpoints
      timeout_s max_bytes remarks tele file =
    with_telemetry tele @@ fun () ->
    let c = compose_or_die (resolve_exts exts_names) in
    let config =
      resolve_config pipeline c ~tweaks:(fun cfg ->
          let open Driver.Pipeline in
          enable
            (enable (enable cfg "fuse" (not no_fuse)) "copy-elim"
               (not no_copy_elim))
            "auto-par" (threads > 1))
    in
    let dir = resolve_data_dir data_dir in
    let src = read_source file in
    with_remarks remarks ~src @@ fun () ->
    let line_file =
      if line_directives then
        Some (if file = "-" then "<stdin>" else file)
      else None
    in
    (* Validate the failpoint grammar up front with the interpreter-side
       parser (same clause syntax), so a typo is a usage error here, not
       an mm_fatal inside the child. *)
    let failpoints =
      match failpoints with
      | [] -> None
      | specs ->
          let joined = String.concat "," specs in
          Support.Failpoint.reset ();
          (try Support.Failpoint.arm_spec joined
           with Support.Failpoint.Bad_spec m ->
             Fmt.epr "mmc: bad failpoint spec: %s@." m;
             raise (Fatal 2));
          Support.Failpoint.reset ();
          Some joined
    in
    let warn d = Fmt.epr "%s@." (Driver.diags_to_string ~src [ d ]) in
    match
      Driver.exec ~dir ~config ~warn ?cc ~cflags ?keep_c ?line_file ~guards
        ?sanitize ?failpoints ?timeout_s ?max_bytes ~cache:(not no_cache)
        ~cache_dir ~threads c src
    with
    | Driver.Ok_ o ->
        Fmt.pr "result: %a@." Native.Exec.pp_value o.Native.Exec.value;
        if o.Native.Exec.live > 0 then
          Fmt.epr "warning: %d allocation(s) still live at exit@."
            o.Native.Exec.live;
        0
    | Driver.Failed ds ->
        Fmt.epr "%s@." (Driver.diags_to_string ~src ds);
        1
  in
  let doc =
    "Translate to plain parallel C, compile with the system C compiler \
     (cached by content hash), execute the native binary supervised and \
     print its result — bit-identical to $(b,run)."
  in
  Cmd.v (Cmd.info "exec" ~doc)
    Term.(
      const run $ exts_arg $ threads_arg $ data_dir_arg $ native_opts_term
      $ no_fuse $ no_copy_elim $ pipeline_term $ line_directives $ guards
      $ sanitize $ native_failpoints $ native_timeout $ native_max_bytes
      $ remarks_arg $ telemetry_term $ src_arg)

(* --- profile ------------------------------------------------------------------- *)

let profile_cmd =
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Print the profile as machine-readable JSON instead of \
                   the hot-loop table.")
  in
  let folded =
    Arg.(value & opt (some string) None
         & info [ "folded" ] ~docv:"FILE"
             ~doc:"Write folded stacks (one 'span;span self_ns' line per \
                   source path) for flamegraph.pl / speedscope.")
  in
  let top =
    Arg.(value & opt int 15
         & info [ "top" ] ~docv:"N"
             ~doc:"Rows to show in the hot-loop table (default 15).")
  in
  let native =
    Arg.(value & flag
         & info [ "native" ]
             ~doc:"Profile the native binary instead of the interpreter: \
                   compile with --instrument (through the binary cache), \
                   run it, and render the binary's own span-attributed \
                   profile through the same table/--json/--folded \
                   outputs.")
  in
  let diff_native =
    Arg.(value & flag
         & info [ "diff-native" ]
             ~doc:"Profile both the interpreter and the instrumented \
                   native binary, then join the two profiles span by \
                   span: per-loop native speedup, flagging spans whose \
                   gain lags the program-level ratio.")
  in
  let run exts_names threads data_dir block grain pipeline robust json folded
      top native diff_native (cc, cflags, keep_c, no_cache, cache_dir) remarks
      tele file =
    with_telemetry tele @@ fun () ->
    set_kernel_knobs block grain;
    let c = compose_or_die (resolve_exts exts_names) in
    (* The interpreted leg keeps its historical default (auto-par follows
       --threads); the native leg profiles the full pipeline. *)
    let interp_config =
      resolve_config pipeline c ~tweaks:(fun cfg ->
          Driver.Pipeline.enable cfg "auto-par" (threads > 1))
    in
    let native_config =
      resolve_config pipeline c ~tweaks:(fun cfg ->
          Driver.Pipeline.enable cfg "auto-par" true)
    in
    let dir = resolve_data_dir data_dir in
    let src = read_source file in
    with_remarks remarks ~src @@ fun () ->
    let warn d = Fmt.epr "%s@." (Driver.diags_to_string ~src [ d ]) in
    let fail ds =
      Fmt.epr "%s@." (Driver.diags_to_string ~src ds);
      1
    in
    let dump_folded report =
      Option.iter
        (fun path ->
          try
            Out_channel.with_open_text path (fun oc ->
                List.iter
                  (fun l -> Out_channel.output_string oc (l ^ "\n"))
                  (Driver.Profile_report.folded_lines report))
          with Sys_error m -> Fmt.epr "mmc: cannot write folded: %s@." m)
        folded
    in
    let profile_native () =
      Driver.profile_native ~dir ~config:native_config ~warn ?cc ~cflags
        ?keep_c ~cache:(not no_cache) ~cache_dir ~threads c src
    in
    let interp_profile k =
      let body pool =
        with_robustness robust pool @@ fun () ->
        let outcome, report =
          Driver.profile ~dir ?pool ~config:interp_config ~warn c src []
        in
        k outcome report
      in
      if threads > 1 then
        Runtime.Pool.with_pool threads (fun pool -> body (Some pool))
      else body None
    in
    if diff_native then
      interp_profile @@ fun outcome interp_report ->
      match outcome with
      | Driver.Failed ds -> fail ds
      | Driver.Ok_ _ -> (
          match profile_native () with
          | Driver.Failed ds -> fail ds
          | Driver.Ok_ (_, native_report) ->
              let d =
                Driver.Profile_report.diff_reports ~src ~interp:interp_report
                  ~native:native_report
              in
              if json then
                print_string (Driver.Profile_report.diff_to_json d ^ "\n")
              else print_string (Driver.Profile_report.diff_to_string d);
              0)
    else if native then
      match profile_native () with
      | Driver.Failed ds -> fail ds
      | Driver.Ok_ (o, report) ->
          if json then
            print_string (Driver.Profile_report.to_json ~src report ^ "\n")
          else begin
            Fmt.pr "result: %a@." Native.Exec.pp_value o.Native.Exec.value;
            print_string (Driver.Profile_report.to_string ~top ~src report)
          end;
          dump_folded report;
          0
    else
      interp_profile @@ fun outcome report ->
      match outcome with
      | Driver.Ok_ v ->
          if json then
            print_string (Driver.Profile_report.to_json ~src report ^ "\n")
          else begin
            Fmt.pr "result: %a@." Interp.Eval.pp_value v;
            print_string (Driver.Profile_report.to_string ~top ~src report)
          end;
          dump_folded report;
          0
      | Driver.Failed ds -> fail ds
  in
  let doc =
    "Run a program under the source-attributed profiler: a hot-loop table \
     keyed by source span, with iteration counts, per-span allocation \
     bytes and parallel-vs-sequential time. With --native the same report \
     comes from an instrumented native binary; with --diff-native the two \
     are joined span by span."
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const run $ exts_arg $ threads_arg $ data_dir_arg $ block_arg $ grain_arg
      $ pipeline_term $ robustness_term $ json $ folded $ top $ native
      $ diff_native $ native_opts_term $ remarks_arg $ telemetry_term
      $ src_arg)

(* --- explain ------------------------------------------------------------------- *)

let explain_cmd =
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Print the report as machine-readable JSON (remarks plus \
                   per-pass counts) instead of the remark table.")
  in
  let only =
    Arg.(value & opt_all string []
         & info [ "only" ] ~docv:"FILTER"
             ~doc:"Filter remarks: $(b,pass=NAME) (fuse, copy-elim, \
                   auto-par, rc, transform) or \
                   $(b,kind=applied|missed|skipped). Repeatable; filters \
                   combine.")
  in
  let dump_ir =
    Arg.(value & opt (some string) None
         & info [ "dump-ir" ] ~docv:"PASS[,PASS...]"
             ~doc:"Pretty-print the IR after each named pass. Passes, in \
                   pipeline order: lower (no optimizations), fuse, \
                   copy-elim, auto-par, transform (one snapshot per \
                   applied script clause); $(b,all) selects every pass.")
  in
  let ir_diff =
    Arg.(value & flag
         & info [ "ir-diff" ]
             ~doc:"With --dump-ir: render a unified diff between \
                   consecutive snapshots instead of each one in full, so \
                   each pass's (or transform clause's) effect on the loop \
                   nest is visible directly.")
  in
  let seq =
    Arg.(value & flag
         & info [ "seq" ]
             ~doc:"Explain the sequential configuration. By default \
                   explain assumes auto-parallelization (what run \
                   --threads N compiles), so parallelization decisions \
                   show up.")
  in
  let no_fuse =
    Arg.(value & flag & info [ "no-fuse" ]
         ~doc:"Explain the library-style lowering (with-loop fusion off).")
  in
  let no_copy_elim =
    Arg.(value & flag & info [ "no-copy-elim" ]
         ~doc:"Explain with slice-copy elimination off.")
  in
  let run exts_names json only dump_ir ir_diff seq no_fuse no_copy_elim
      pipeline tele file =
    with_telemetry tele @@ fun () ->
    let c = compose_or_die (resolve_exts exts_names) in
    let config =
      resolve_config pipeline c ~tweaks:(fun cfg ->
          let open Driver.Pipeline in
          enable
            (enable (enable cfg "fuse" (not no_fuse)) "copy-elim"
               (not no_copy_elim))
            "auto-par" (not seq))
    in
    let src = read_source file in
    (* --only pass=…/kind=… *)
    let pass_f = ref None and kind_f = ref None in
    List.iter
      (fun f ->
        let bad () =
          Fmt.epr
            "mmc: bad --only filter %S (expected pass=NAME or \
             kind=applied|missed|skipped)@."
            f;
          raise (Fatal 2)
        in
        match String.index_opt f '=' with
        | None -> bad ()
        | Some i -> (
            let k = String.sub f 0 i in
            let v = String.sub f (i + 1) (String.length f - i - 1) in
            match k with
            | "pass" -> pass_f := Some v
            | "kind" -> (
                match v with
                | "applied" -> kind_f := Some Support.Remark.Applied
                | "missed" -> kind_f := Some Support.Remark.Missed
                | "skipped" -> kind_f := Some Support.Remark.Skipped
                | _ -> bad ())
            | _ -> bad ()))
      only;
    let dump_passes =
      match dump_ir with
      | None -> []
      | Some s ->
          let ps =
            String.split_on_char ',' s |> List.map String.trim
            |> List.filter (fun p -> p <> "")
          in
          List.iter
            (fun p ->
              if not (List.mem p ("all" :: Cir.Snapshot.known_passes)) then begin
                Fmt.epr "mmc: unknown --dump-ir pass %S (available: %s, all)@."
                  p
                  (String.concat ", " Cir.Snapshot.known_passes);
                raise (Fatal 2)
              end)
            ps;
          ps
    in
    let warn d = Fmt.epr "%s@." (Driver.diags_to_string ~src [ d ]) in
    match Driver.explain ~config ~dump_passes ~ir_diff ~warn c src with
    | Driver.Failed ds, _ ->
        Fmt.epr "%s@." (Driver.diags_to_string ~src ds);
        1
    | Driver.Ok_ _, report ->
        let report =
          Driver.Explain_report.filter ?pass:!pass_f ?kind:!kind_f report
        in
        if json then
          print_string (Driver.Explain_report.to_json report ^ "\n")
        else print_string (Driver.Explain_report.to_string ~src report);
        0
  in
  let doc =
    "Explain the pipeline's optimization decisions for a program: a remark \
     table (with-loop fusion, copy elimination, auto-parallelization, \
     reference counting, transform clauses) grouped by pass with source \
     excerpts, optional pass-by-pass IR dumps (--dump-ir) and snapshot \
     diffs (--ir-diff)."
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(
      const run $ exts_arg $ json $ only $ dump_ir $ ir_diff $ seq $ no_fuse
      $ no_copy_elim $ pipeline_term $ telemetry_term $ src_arg)

(* ---------------------------------------------------------------------------------- *)

let () =
  let doc = "extensible CMINUS translator with parallel matrix extensions" in
  let info = Cmd.info "mmc" ~version:"1.0.0" ~doc in
  (* cmdliner has no multi-char short options, so accept the
     conventional -O0/-O1 spellings as aliases for --O0/--O1. *)
  let argv =
    Array.map
      (function "-O0" -> "--O0" | "-O1" -> "--O1" | a -> a)
      Sys.argv
  in
  exit
    (Cmd.eval' ~argv
       (Cmd.group info
          [
            analyze_cmd; check_cmd; emit_cmd; run_cmd; exec_cmd; profile_cmd;
            explain_cmd;
          ]))
