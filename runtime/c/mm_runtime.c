/* mm_runtime implementation — see mm_runtime.h for the contract.  Every
 * observable behaviour (arithmetic precision, file format, result
 * printing) is matched against the mmc reference interpreter by the
 * differential test suite, so change nothing here without running it. */
#include "mm_runtime.h"

#include <stdarg.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

void mm_fatal(const char *fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  fprintf(stderr, "mm_runtime: ");
  vfprintf(stderr, fmt, ap);
  fprintf(stderr, "\n");
  va_end(ap);
  exit(70);
}

/* --- allocation and reference counting --------------------------------- */

static int mm_live = 0;

int mm_live_count(void) { return mm_live; }

/* Payload-byte gauges (live / peak / cumulative) and the allocation
 * hook.  Updates go through one named critical section because the
 * peak needs a read-modify-write and allocations can happen inside
 * OpenMP regions; allocation is rare next to loop iterations, so the
 * serialisation is invisible. */
static long long mm_live_b = 0;
static long long mm_peak_b = 0;
static long long mm_alloc_b = 0;
void (*mm_alloc_hook)(long long bytes) = 0;

long long mm_live_bytes(void) { return mm_live_b; }
long long mm_peak_bytes(void) { return mm_peak_b; }
long long mm_allocated_bytes(void) { return mm_alloc_b; }

static void mm_account_alloc(long long bytes) {
#ifdef _OPENMP
#pragma omp critical(mm_byte_account)
#endif
  {
    mm_alloc_b += bytes;
    mm_live_b += bytes;
    if (mm_live_b > mm_peak_b) mm_peak_b = mm_live_b;
  }
  if (mm_alloc_hook) mm_alloc_hook(bytes);
}

static void mm_account_free(long long bytes) {
#ifdef _OPENMP
#pragma omp critical(mm_byte_account)
#endif
  mm_live_b -= bytes;
}

static size_t mm_elem_size(int kind) {
  switch (kind) {
  case MM_KIND_FLOAT:
    return sizeof(mm_float);
  case MM_KIND_INT:
    return sizeof(int);
  default:
    return sizeof(bool);
  }
}

/* All three mm_mat_* structs share their header prefix; allocate through
 * the float variant and set the data pointer behind a char * so the same
 * code serves every kind. */
static void *mm_alloc(int kind, int rank, va_list ap) {
  if (rank < 0 || rank > MM_MAX_RANK)
    mm_fatal("alloc: implausible rank %d", rank);
  mm_mat_float *m = calloc(1, sizeof(mm_mat_float));
  if (!m) mm_fatal("alloc: out of memory");
  m->rc = 1;
  m->kind = kind;
  m->rank = rank;
  long long n = 1;
  for (int d = 0; d < rank; d++) {
    int e = va_arg(ap, int);
    if (e < 0) mm_fatal("alloc: negative extent %d in dimension %d", e, d);
    m->dims[d] = e;
    n *= e;
  }
  if (n > (1 << 28)) mm_fatal("alloc: %lld elements exceeds limit", n);
  m->elems = (int)n;
  m->data = calloc(n > 0 ? (size_t)n : 1, mm_elem_size(kind));
  if (!m->data) mm_fatal("alloc: out of memory for %lld elements", n);
  mm_live++;
  mm_account_alloc(n * (long long)mm_elem_size(kind));
  return m;
}

mm_mat_float *mm_alloc_float(int rank, ...) {
  va_list ap;
  va_start(ap, rank);
  void *m = mm_alloc(MM_KIND_FLOAT, rank, ap);
  va_end(ap);
  return m;
}

mm_mat_int *mm_alloc_int(int rank, ...) {
  va_list ap;
  va_start(ap, rank);
  void *m = mm_alloc(MM_KIND_INT, rank, ap);
  va_end(ap);
  return m;
}

mm_mat_bool *mm_alloc_bool(int rank, ...) {
  va_list ap;
  va_start(ap, rank);
  void *m = mm_alloc(MM_KIND_BOOL, rank, ap);
  va_end(ap);
  return m;
}

void mm_rc_inc(void *p) {
  if (p) ((mm_mat_float *)p)->rc++;
}

void mm_rc_dec(void *p) {
  if (!p) return;
  mm_mat_float *m = p;
  if (--m->rc <= 0) {
    mm_account_free((long long)m->elems * (long long)mm_elem_size(m->kind));
    free(m->data);
    free(m);
    mm_live--;
  }
}

int mm_size(const void *p) { return ((const mm_mat_float *)p)->elems; }

/* --- MMAT1 container I/O ------------------------------------------------ */

/* The interpreter's virtual filesystem flattens path separators, so a
 * program's "out/result.data" and the harness's fetch of the same name
 * agree on one file name in the working directory. */
static char *mm_resolve_path(const char *path) {
  char *real = malloc(strlen(path) + 1);
  if (!real) mm_fatal("out of memory resolving path");
  strcpy(real, path);
  for (char *c = real; *c; c++)
    if (*c == '/' || *c == '\\') *c = '_';
  return real;
}

/* Header ints are 4-byte big-endian (OCaml's output_binary_int). */
static void mm_put_be32(FILE *f, int v) {
  for (int shift = 24; shift >= 0; shift -= 8)
    fputc((v >> shift) & 0xff, f);
}

static int mm_get_be32(FILE *f, const char *path, const char *what) {
  unsigned int v = 0;
  for (int i = 0; i < 4; i++) {
    int c = fgetc(f);
    if (c == EOF) mm_fatal("readMatrix \"%s\": truncated %s", path, what);
    v = (v << 8) | (unsigned int)c;
  }
  return (int)v;
}

/* Doubles travel as the decimal value of their bit pattern, one line per
 * element — the exact text the interpreter writes and parses. */
static long long mm_double_bits(double d) {
  long long i;
  memcpy(&i, &d, sizeof(i));
  return i;
}

static double mm_bits_double(long long i) {
  double d;
  memcpy(&d, &i, sizeof(d));
  return d;
}

void mm_write_matrix(const char *path, const void *p) {
  const mm_mat_float *m = p;
  if (!m) mm_fatal("writeMatrix \"%s\": uninitialised matrix", path);
  char *real = mm_resolve_path(path);
  FILE *f = fopen(real, "wb");
  if (!f) mm_fatal("writeMatrix \"%s\": cannot open %s", path, real);
  free(real);
  fputs("MMAT1\n", f);
  fputc(m->kind, f);
  mm_put_be32(f, m->rank);
  for (int d = 0; d < m->rank; d++) mm_put_be32(f, m->dims[d]);
  for (int i = 0; i < m->elems; i++) {
    switch (m->kind) {
    case MM_KIND_FLOAT:
      fprintf(f, "%lld\n", mm_double_bits(m->data[i]));
      break;
    case MM_KIND_INT:
      fprintf(f, "%d\n", ((const mm_mat_int *)p)->data[i]);
      break;
    default:
      fputc(((const mm_mat_bool *)p)->data[i] ? '1' : '0', f);
    }
  }
  if (fclose(f) != 0) mm_fatal("writeMatrix \"%s\": write failed", path);
}

static long long mm_read_line_int(FILE *f, const char *path, int i) {
  char line[64];
  if (!fgets(line, sizeof(line), f))
    mm_fatal("readMatrix \"%s\": truncated at element %d", path, i);
  char *end;
  long long v = strtoll(line, &end, 10);
  if (end == line)
    mm_fatal("readMatrix \"%s\": malformed element %d", path, i);
  return v;
}

void *mm_read_matrix(const char *path) {
  char *real = mm_resolve_path(path);
  FILE *f = fopen(real, "rb");
  if (!f) mm_fatal("readMatrix \"%s\": cannot open: %s", path, real);
  free(real);
  char magic[7] = {0};
  if (fread(magic, 1, 6, f) != 6 || strcmp(magic, "MMAT1\n") != 0)
    mm_fatal("readMatrix \"%s\": bad magic", path);
  int kind = fgetc(f);
  if (kind != MM_KIND_FLOAT && kind != MM_KIND_INT && kind != MM_KIND_BOOL)
    mm_fatal("readMatrix \"%s\": unknown element kind", path);
  int rank = mm_get_be32(f, path, "rank");
  if (rank < 0 || rank > MM_MAX_RANK)
    mm_fatal("readMatrix \"%s\": implausible rank %d", path, rank);
  mm_mat_float *m = calloc(1, sizeof(mm_mat_float));
  if (!m) mm_fatal("out of memory");
  m->rc = 1;
  m->kind = kind;
  m->rank = rank;
  long long n = 1;
  for (int d = 0; d < rank; d++) {
    int e = mm_get_be32(f, path, "extent");
    if (e < 0 || e > (1 << 24))
      mm_fatal("readMatrix \"%s\": implausible extent %d", path, e);
    m->dims[d] = e;
    n *= e;
  }
  if (n > (1 << 28))
    mm_fatal("readMatrix \"%s\": %lld elements exceeds limit", path, n);
  m->elems = (int)n;
  m->data = calloc(n > 0 ? (size_t)n : 1, mm_elem_size(kind));
  if (!m->data) mm_fatal("out of memory for %lld elements", n);
  mm_account_alloc(n * (long long)mm_elem_size(kind));
  for (int i = 0; i < m->elems; i++) {
    switch (kind) {
    case MM_KIND_FLOAT:
      m->data[i] = mm_bits_double(mm_read_line_int(f, path, i));
      break;
    case MM_KIND_INT:
      ((mm_mat_int *)(void *)m)->data[i] =
          (int)mm_read_line_int(f, path, i);
      break;
    default: {
      int c = fgetc(f);
      if (c != '0' && c != '1')
        mm_fatal("readMatrix \"%s\": bad bool element %d", path, i);
      ((mm_mat_bool *)(void *)m)->data[i] = c == '1';
    }
    }
  }
  fclose(f);
  mm_live++;
  return m;
}

/* --- result protocol ---------------------------------------------------- */

void mm_result_int(int v) { printf("__mm_result int %d\n", v); }

void mm_result_float(mm_float v) {
  printf("__mm_result float %lld\n", mm_double_bits(v));
}

void mm_result_bool(bool v) { printf("__mm_result bool %d\n", v ? 1 : 0); }

void mm_result_void(void) { printf("__mm_result void\n"); }

void mm_result_null(void) { printf("__mm_result null\n"); }

void mm_result_tuple(int fields) { printf("__mm_result tuple %d\n", fields); }

void mm_result_mat(const void *p) {
  const mm_mat_float *m = p;
  if (!m) {
    mm_result_null();
    return;
  }
  printf("__mm_result mat %c %d", m->kind, m->rank);
  for (int d = 0; d < m->rank; d++) printf(" %d", m->dims[d]);
  printf("\n__mm_data");
  for (int i = 0; i < m->elems; i++) {
    switch (m->kind) {
    case MM_KIND_FLOAT:
      printf(" %lld", mm_double_bits(m->data[i]));
      break;
    case MM_KIND_INT:
      printf(" %d", ((const mm_mat_int *)p)->data[i]);
      break;
    default:
      printf(" %d", ((const mm_mat_bool *)p)->data[i] ? 1 : 0);
    }
  }
  printf("\n");
}

void mm_result_live(void) { printf("__mm_live %d\n", mm_live); }

/* --- simulated SSE ------------------------------------------------------ */

/* Lane access that works for both real __m128 and the portable struct. */
typedef union {
  __m128 v;
  float f[4];
} mm_lanes;

void mm_scatter_ps(mm_float *data, int base, int stride, __m128 v) {
  mm_lanes u;
  u.v = v;
  for (int k = 0; k < 4; k++) data[base + k * stride] = (mm_float)u.f[k];
}

mm_float mm_hsum_ps(__m128 v) {
  mm_lanes u;
  u.v = v;
  mm_float s = 0.0;
  for (int k = 0; k < 4; k++) s += (mm_float)u.f[k];
  return s;
}

__m128 mm_mod_ps(__m128 a, __m128 b) {
  mm_lanes x, y, r;
  x.v = a;
  y.v = b;
  for (int k = 0; k < 4; k++) {
    /* C99 fmodf without pulling in <math.h> link requirements: the
     * interpreter rejects vector modulo, so this path is unreachable
     * from generated code and exists only for link completeness. */
    float q = x.f[k] / y.f[k];
    r.f[k] = x.f[k] - (float)(long long)q * y.f[k];
  }
  return r.v;
}
