/* mm_runtime implementation — see mm_runtime.h for the contract.  Every
 * observable behaviour (arithmetic precision, file format, result
 * printing) is matched against the mmc reference interpreter by the
 * differential test suite, so change nothing here without running it. */
#include "mm_runtime.h"

#include <fcntl.h>
#include <signal.h>
#include <stdarg.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <unistd.h>

#ifdef _OPENMP
#include <omp.h>
#endif

void mm_fatal(const char *fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  fprintf(stderr, "mm_runtime: ");
  vfprintf(stderr, fmt, ap);
  fprintf(stderr, "\n");
  va_end(ap);
  exit(70);
}

/* --- supervised execution ----------------------------------------------
 * Failpoints, runtime guards, and crash breadcrumbs; see the header for
 * the __mm_fault protocol and the exit-code split (guards 71, mm_fatal
 * 70, failpoints abort()). */

typedef struct {
  char name[48];
  int nth;        /* > 0: fire on exactly the nth hit, one-shot */
  double prob;    /* > 0: fire per hit with this probability */
  long long seed; /* coin seed for prob mode */
  long long hits;
} mm_failpoint;

#define MM_FAIL_MAX 8
static mm_failpoint mm_fail[MM_FAIL_MAX];
static int mm_nfail = 0;

int mm_guard_on = 0;
static int mm_guard_nspans = 0;
static const char *const *mm_guard_spans = 0;

/* Breadcrumb stack of guard-span ids: thread-local storage behind the
 * inline push/pop macros in the header.  Per-thread trails need no
 * atomics or omp queries, and the signal handler runs on the faulting
 * thread, so it reads the stack that actually led to the fault. */
_Thread_local int mm_crumb_stack[MM_CRUMB_MAX];
_Thread_local int mm_crumb_depth = 0;

static const char *mm_span_name(int id) {
  if (mm_guard_spans && id >= 0 && id < mm_guard_nspans)
    return mm_guard_spans[id];
  return 0;
}

const char *(*mm_crash_span_hook)(void) = 0;

/* Fatal-signal handler: write the innermost resolvable span — the crash
 * hook's answer if any, else the breadcrumb stack — to mm_crash.txt
 * (async-signal-safe: open/write/close only), then die by the original
 * signal so the supervisor still sees the true cause. */
static void mm_crash_handler(int sig) {
  const char *span = mm_crash_span_hook ? mm_crash_span_hook() : 0;
  int depth = mm_crumb_depth;
  if (depth > MM_CRUMB_MAX) depth = MM_CRUMB_MAX;
  for (int i = depth - 1; i >= 0 && !span; i--)
    span = mm_span_name(mm_crumb_stack[i]);
  if (span) {
    int fd = open("mm_crash.txt", O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      ssize_t w = write(fd, span, strlen(span));
      w += write(fd, "\n", 1);
      (void)w;
      close(fd);
    }
  }
  signal(sig, SIG_DFL);
  raise(sig);
}

static void mm_crash_install(void) {
  signal(SIGSEGV, mm_crash_handler);
  signal(SIGFPE, mm_crash_handler);
  signal(SIGBUS, mm_crash_handler);
  signal(SIGABRT, mm_crash_handler);
}

void mm_guard_init(int nspans, const char *const *spans) {
  mm_guard_nspans = nspans;
  mm_guard_spans = spans;
  mm_guard_on = 1;
  mm_crash_install();
}

_Noreturn void mm_guard_fault(int id, const char *fmt, ...) {
  const char *span = mm_span_name(id);
  printf("__mm_fault %d %s ", id, span ? span : "-");
  va_list ap;
  va_start(ap, fmt);
  vprintf(fmt, ap);
  va_end(ap);
  printf("\n");
  fflush(0);
  _exit(71);
}

/* Slow path of MM_GUARD_IDX — reached only when the inline check has
 * already failed, so it diagnoses the cause and always faults.  Being
 * _Noreturn is what makes the fast path fast: the compiler treats the
 * guard branch as terminal, so it can hoist elems loads out of loops
 * and fold repeated guards on the same subscript. */
_Noreturn void mm_guard_check(const void *p, int off, int id) {
  const mm_mat_float *m = p;
  if (!m) mm_guard_fault(id, "subscript on uninitialised matrix (NULL)");
  mm_guard_fault(id, "subscript %d out of bounds for %d elements", off,
                 m->elems);
}

/* One clause of MM_FAILPOINTS, already comma-split and trimmed:
 *   name@K        fire on the K-th hit (K a positive integer)
 *   name@P        fire each hit with probability P in (0,1]
 *   name@P:SEED   same, with an explicit coin seed
 * Mirrors Support.Failpoint.parse_clause, including the rejections. */
static void mm_fail_clause(char *clause) {
  while (*clause == ' ' || *clause == '\t') clause++;
  size_t len = strlen(clause);
  while (len > 0 && (clause[len - 1] == ' ' || clause[len - 1] == '\t'))
    clause[--len] = 0;
  if (len == 0) return; /* blank clauses are ignored, like arm_spec */
  char *at = strchr(clause, '@');
  if (!at)
    mm_fatal("MM_FAILPOINTS \"%s\": expected name@k or name@p[:seed]", clause);
  *at = 0;
  char *name = clause, *rest = at + 1;
  if (!*name || !*rest)
    mm_fatal("MM_FAILPOINTS \"%s@%s\": empty name or trigger", name, rest);
  if (mm_nfail >= MM_FAIL_MAX)
    mm_fatal("MM_FAILPOINTS: more than %d clauses", MM_FAIL_MAX);
  mm_failpoint *fp = &mm_fail[mm_nfail];
  memset(fp, 0, sizeof *fp);
  if (strlen(name) >= sizeof fp->name)
    mm_fatal("MM_FAILPOINTS: name \"%s\" too long", name);
  strcpy(fp->name, name);
  long long seed = 1;
  char *colon = strchr(rest, ':');
  if (colon) {
    char *end;
    seed = strtoll(colon + 1, &end, 10);
    if (end == colon + 1 || *end)
      mm_fatal("MM_FAILPOINTS \"%s\": bad seed \"%s\"", name, colon + 1);
    *colon = 0;
  }
  char *end;
  long long k = strtoll(rest, &end, 10);
  if (end != rest && !*end) {
    if (k < 1)
      mm_fatal("MM_FAILPOINTS \"%s\": hit count %lld must be >= 1", name, k);
    fp->nth = (int)k;
  } else {
    double p = strtod(rest, &end);
    if (end == rest || *end)
      mm_fatal("MM_FAILPOINTS \"%s\": bad trigger \"%s\"", name, rest);
    if (!(p > 0.0 && p <= 1.0))
      mm_fatal("MM_FAILPOINTS \"%s\": probability %g outside (0,1]", name, p);
    fp->prob = p;
    fp->seed = seed;
  }
  mm_nfail++;
}

void mm_fail_init(void) {
  mm_crash_install();
  const char *spec = getenv("MM_FAILPOINTS");
  if (!spec || !*spec) return;
  char *copy = malloc(strlen(spec) + 1);
  if (!copy) mm_fatal("out of memory");
  strcpy(copy, spec);
  char *start = copy;
  for (char *c = copy;; c++) {
    if (*c == ',' || *c == 0) {
      int done = *c == 0;
      *c = 0;
      mm_fail_clause(start);
      if (done) break;
      start = c + 1;
    }
  }
  free(copy);
}

/* Per-hit coin: a splitmix64 step of (seed, hit index) masked to 63 bits
 * — the same arithmetic as Support.Failpoint.coin on OCaml's native
 * ints, so a given (seed, hit sequence) fires the same hits in both
 * backends for non-negative seeds. */
static double mm_fail_coin(long long seed, long long n) {
  const unsigned long long mask = 0x7FFFFFFFFFFFFFFFULL;
  unsigned long long z = ((unsigned long long)seed * 0x9E3779B9ULL +
                          (unsigned long long)n * 0xBF58476DULL +
                          0x94D049BBULL) &
                         mask;
  z = ((z ^ (z >> 30)) * 0x4CE4E5B9BF58476DULL) & mask;
  z = ((z ^ (z >> 27)) * 0x133111EB94D049BBULL) & mask;
  unsigned long long bits = (z ^ (z >> 31)) & 0x3FFFFFFFULL;
  return (double)bits / (double)0x40000000ULL;
}

void mm_fail_hit(const char *name) {
  if (mm_nfail == 0) return;
  for (int i = 0; i < mm_nfail; i++) {
    mm_failpoint *fp = &mm_fail[i];
    if (strcmp(fp->name, name) != 0) continue;
    long long n;
    /* hits can come from inside OpenMP regions; one counter bump per
     * site keeps Nth-mode one-shot across threads */
#ifdef _OPENMP
#pragma omp critical(mm_fail_hits)
#endif
    n = ++fp->hits;
    int fire =
        fp->nth > 0 ? n == fp->nth : mm_fail_coin(fp->seed, n) < fp->prob;
    if (fire) {
      printf("__mm_fault -1 - injected fault at failpoint %s\n", name);
      fflush(stdout);
      abort();
    }
    return;
  }
}

/* --- allocation and reference counting --------------------------------- */

static int mm_live = 0;

int mm_live_count(void) { return mm_live; }

/* Payload-byte gauges (live / peak / cumulative) and the allocation
 * hook.  Updates go through one named critical section because the
 * peak needs a read-modify-write and allocations can happen inside
 * OpenMP regions; allocation is rare next to loop iterations, so the
 * serialisation is invisible. */
static long long mm_live_b = 0;
static long long mm_peak_b = 0;
static long long mm_alloc_b = 0;
void (*mm_alloc_hook)(long long bytes) = 0;

long long mm_live_bytes(void) { return mm_live_b; }
long long mm_peak_bytes(void) { return mm_peak_b; }
long long mm_allocated_bytes(void) { return mm_alloc_b; }

static void mm_account_alloc(long long bytes) {
#ifdef _OPENMP
#pragma omp critical(mm_byte_account)
#endif
  {
    mm_alloc_b += bytes;
    mm_live_b += bytes;
    if (mm_live_b > mm_peak_b) mm_peak_b = mm_live_b;
  }
  if (mm_alloc_hook) mm_alloc_hook(bytes);
}

static void mm_account_free(long long bytes) {
#ifdef _OPENMP
#pragma omp critical(mm_byte_account)
#endif
  mm_live_b -= bytes;
}

static size_t mm_elem_size(int kind) {
  switch (kind) {
  case MM_KIND_FLOAT:
    return sizeof(mm_float);
  case MM_KIND_INT:
    return sizeof(int);
  default:
    return sizeof(bool);
  }
}

/* All three mm_mat_* structs share their header prefix; allocate through
 * the float variant and set the data pointer behind a char * so the same
 * code serves every kind. */
static void *mm_alloc(int kind, int rank, va_list ap) {
  mm_fail_hit("native.alloc");
  if (rank < 0 || rank > MM_MAX_RANK)
    mm_fatal("alloc: implausible rank %d", rank);
  mm_mat_float *m = calloc(1, sizeof(mm_mat_float));
  if (!m) mm_fatal("alloc: out of memory");
  m->rc = 1;
  m->kind = kind;
  m->rank = rank;
  long long n = 1;
  for (int d = 0; d < rank; d++) {
    int e = va_arg(ap, int);
    if (e < 0) mm_fatal("alloc: negative extent %d in dimension %d", e, d);
    m->dims[d] = e;
    n *= e;
  }
  if (n > (1 << 28)) mm_fatal("alloc: %lld elements exceeds limit", n);
  m->elems = (int)n;
  m->data = calloc(n > 0 ? (size_t)n : 1, mm_elem_size(kind));
  if (!m->data) mm_fatal("alloc: out of memory for %lld elements", n);
  mm_live++;
  mm_account_alloc(n * (long long)mm_elem_size(kind));
  return m;
}

mm_mat_float *mm_alloc_float(int rank, ...) {
  va_list ap;
  va_start(ap, rank);
  void *m = mm_alloc(MM_KIND_FLOAT, rank, ap);
  va_end(ap);
  return m;
}

mm_mat_int *mm_alloc_int(int rank, ...) {
  va_list ap;
  va_start(ap, rank);
  void *m = mm_alloc(MM_KIND_INT, rank, ap);
  va_end(ap);
  return m;
}

mm_mat_bool *mm_alloc_bool(int rank, ...) {
  va_list ap;
  va_start(ap, rank);
  void *m = mm_alloc(MM_KIND_BOOL, rank, ap);
  va_end(ap);
  return m;
}

void mm_rc_inc(void *p) {
  if (p) ((mm_mat_float *)p)->rc++;
}

void mm_rc_dec(void *p) {
  if (!p) return;
  mm_mat_float *m = p;
  if (mm_guard_on && m->rc <= 0)
    mm_guard_fault(-1, "reference count underflow (rc=%d)", m->rc);
  if (--m->rc <= 0) {
    mm_account_free((long long)m->elems * (long long)mm_elem_size(m->kind));
    free(m->data);
    free(m);
    mm_live--;
  }
}

int mm_size(const void *p) { return ((const mm_mat_float *)p)->elems; }

/* --- MMAT1 container I/O ------------------------------------------------ */

/* The interpreter's virtual filesystem flattens path separators, so a
 * program's "out/result.data" and the harness's fetch of the same name
 * agree on one file name in the working directory. */
static char *mm_resolve_path(const char *path) {
  char *real = malloc(strlen(path) + 1);
  if (!real) mm_fatal("out of memory resolving path");
  strcpy(real, path);
  for (char *c = real; *c; c++)
    if (*c == '/' || *c == '\\') *c = '_';
  return real;
}

/* Header ints are 4-byte big-endian (OCaml's output_binary_int). */
static void mm_put_be32(FILE *f, int v) {
  for (int shift = 24; shift >= 0; shift -= 8)
    fputc((v >> shift) & 0xff, f);
}

static int mm_get_be32(FILE *f, const char *path, const char *what) {
  unsigned int v = 0;
  for (int i = 0; i < 4; i++) {
    int c = fgetc(f);
    if (c == EOF) mm_fatal("readMatrix \"%s\": truncated %s", path, what);
    v = (v << 8) | (unsigned int)c;
  }
  return (int)v;
}

/* Doubles travel as the decimal value of their bit pattern, one line per
 * element — the exact text the interpreter writes and parses. */
static long long mm_double_bits(double d) {
  long long i;
  memcpy(&i, &d, sizeof(i));
  return i;
}

static double mm_bits_double(long long i) {
  double d;
  memcpy(&d, &i, sizeof(d));
  return d;
}

void mm_write_matrix(const char *path, const void *p) {
  const mm_mat_float *m = p;
  if (!m) mm_fatal("writeMatrix \"%s\": uninitialised matrix", path);
  char *real = mm_resolve_path(path);
  FILE *f = fopen(real, "wb");
  if (!f) mm_fatal("writeMatrix \"%s\": cannot open %s", path, real);
  free(real);
  fputs("MMAT1\n", f);
  fputc(m->kind, f);
  mm_put_be32(f, m->rank);
  for (int d = 0; d < m->rank; d++) mm_put_be32(f, m->dims[d]);
  for (int i = 0; i < m->elems; i++) {
    switch (m->kind) {
    case MM_KIND_FLOAT:
      fprintf(f, "%lld\n", mm_double_bits(m->data[i]));
      break;
    case MM_KIND_INT:
      fprintf(f, "%d\n", ((const mm_mat_int *)p)->data[i]);
      break;
    default:
      fputc(((const mm_mat_bool *)p)->data[i] ? '1' : '0', f);
    }
  }
  if (fclose(f) != 0) mm_fatal("writeMatrix \"%s\": write failed", path);
}

static long long mm_read_line_int(FILE *f, const char *path, int i) {
  char line[64];
  if (!fgets(line, sizeof(line), f))
    mm_fatal("readMatrix \"%s\": truncated at element %d", path, i);
  char *end;
  long long v = strtoll(line, &end, 10);
  if (end == line)
    mm_fatal("readMatrix \"%s\": malformed element %d", path, i);
  return v;
}

void *mm_read_matrix(const char *path) {
  mm_fail_hit("native.io.read_matrix");
  char *real = mm_resolve_path(path);
  FILE *f = fopen(real, "rb");
  if (!f) mm_fatal("readMatrix \"%s\": cannot open: %s", path, real);
  free(real);
  char magic[7] = {0};
  if (fread(magic, 1, 6, f) != 6 || strcmp(magic, "MMAT1\n") != 0)
    mm_fatal("readMatrix \"%s\": bad magic", path);
  int kind = fgetc(f);
  if (kind != MM_KIND_FLOAT && kind != MM_KIND_INT && kind != MM_KIND_BOOL)
    mm_fatal("readMatrix \"%s\": unknown element kind", path);
  int rank = mm_get_be32(f, path, "rank");
  if (rank < 0 || rank > MM_MAX_RANK)
    mm_fatal("readMatrix \"%s\": implausible rank %d", path, rank);
  mm_mat_float *m = calloc(1, sizeof(mm_mat_float));
  if (!m) mm_fatal("out of memory");
  m->rc = 1;
  m->kind = kind;
  m->rank = rank;
  long long n = 1;
  for (int d = 0; d < rank; d++) {
    int e = mm_get_be32(f, path, "extent");
    if (e < 0 || e > (1 << 24))
      mm_fatal("readMatrix \"%s\": implausible extent %d", path, e);
    m->dims[d] = e;
    n *= e;
  }
  if (n > (1 << 28))
    mm_fatal("readMatrix \"%s\": %lld elements exceeds limit", path, n);
  m->elems = (int)n;
  m->data = calloc(n > 0 ? (size_t)n : 1, mm_elem_size(kind));
  if (!m->data) mm_fatal("out of memory for %lld elements", n);
  mm_account_alloc(n * (long long)mm_elem_size(kind));
  for (int i = 0; i < m->elems; i++) {
    switch (kind) {
    case MM_KIND_FLOAT:
      m->data[i] = mm_bits_double(mm_read_line_int(f, path, i));
      break;
    case MM_KIND_INT:
      ((mm_mat_int *)(void *)m)->data[i] =
          (int)mm_read_line_int(f, path, i);
      break;
    default: {
      int c = fgetc(f);
      if (c != '0' && c != '1')
        mm_fatal("readMatrix \"%s\": bad bool element %d", path, i);
      ((mm_mat_bool *)(void *)m)->data[i] = c == '1';
    }
    }
  }
  fclose(f);
  mm_live++;
  return m;
}

/* --- result protocol ---------------------------------------------------- */

void mm_result_int(int v) { printf("__mm_result int %d\n", v); }

void mm_result_float(mm_float v) {
  printf("__mm_result float %lld\n", mm_double_bits(v));
}

void mm_result_bool(bool v) { printf("__mm_result bool %d\n", v ? 1 : 0); }

void mm_result_void(void) { printf("__mm_result void\n"); }

void mm_result_null(void) { printf("__mm_result null\n"); }

void mm_result_tuple(int fields) { printf("__mm_result tuple %d\n", fields); }

void mm_result_mat(const void *p) {
  const mm_mat_float *m = p;
  if (!m) {
    mm_result_null();
    return;
  }
  printf("__mm_result mat %c %d", m->kind, m->rank);
  for (int d = 0; d < m->rank; d++) printf(" %d", m->dims[d]);
  printf("\n__mm_data");
  for (int i = 0; i < m->elems; i++) {
    switch (m->kind) {
    case MM_KIND_FLOAT:
      printf(" %lld", mm_double_bits(m->data[i]));
      break;
    case MM_KIND_INT:
      printf(" %d", ((const mm_mat_int *)p)->data[i]);
      break;
    default:
      printf(" %d", ((const mm_mat_bool *)p)->data[i] ? 1 : 0);
    }
  }
  printf("\n");
}

void mm_result_live(void) { printf("__mm_live %d\n", mm_live); }

/* --- simulated SSE ------------------------------------------------------ */

/* Lane access that works for both real __m128 and the portable struct. */
typedef union {
  __m128 v;
  float f[4];
} mm_lanes;

void mm_scatter_ps(mm_float *data, int base, int stride, __m128 v) {
  mm_lanes u;
  u.v = v;
  for (int k = 0; k < 4; k++) data[base + k * stride] = (mm_float)u.f[k];
}

mm_float mm_hsum_ps(__m128 v) {
  mm_lanes u;
  u.v = v;
  mm_float s = 0.0;
  for (int k = 0; k < 4; k++) s += (mm_float)u.f[k];
  return s;
}

__m128 mm_mod_ps(__m128 a, __m128 b) {
  mm_lanes x, y, r;
  x.v = a;
  y.v = b;
  for (int k = 0; k < 4; k++) {
    /* C99 fmodf without pulling in <math.h> link requirements: the
     * interpreter rejects vector modulo, so this path is unreachable
     * from generated code and exists only for link completeness. */
    float q = x.f[k] / y.f[k];
    r.f[k] = x.f[k] - (float)(long long)q * y.f[k];
  }
  return r.v;
}
