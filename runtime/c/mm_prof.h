/* mm_prof — native profiling instrumentation for the C that mmc emits
 * under --instrument.
 *
 * The emitter wraps provenance-carrying loops and statements in
 * enter/exit calls keyed by a compact span table (ids index
 * mm_prof_spans, generated into the program), mirroring the reference
 * interpreter's source-attributed profiler exactly:
 *   - a stack of open frames charges wall time per span; on exit the
 *     elapsed time goes to the span's total, the parent frame's child
 *     time grows by the same amount, and self = total - children;
 *   - a dispatching parallel loop (mm_prof_enter_par) installs a global
 *     region while OpenMP actually has > 1 thread: inside the region no
 *     new frames open, so the dispatching row's self time is the
 *     region's wall clock counted exactly once; per-thread busy time is
 *     still recorded via mm_prof_worker;
 *   - matrix allocation bytes (observed through mm_alloc_hook) are
 *     charged to the active region, else the innermost open frame.
 *
 * All calls are no-ops before mm_prof_init and after mm_prof_stop, so
 * instrumented C is also runnable without ever initialising the
 * profiler.  mm_prof_dump writes the aggregates as a JSON sidecar next
 * to the result protocol; mmc parses it back into the same report
 * `mmc profile` renders for interpreted runs.
 *
 * Overhead control: a span's timing freezes after its first 128 closes
 * (MM_PROF_FREEZE=N tunes the threshold; MM_PROF_EXACT=1 disables
 * freezing entirely).  From then on the
 * emitter-side guards below skip the enter/exit calls entirely and
 * count executions inline; mm_prof_stop extrapolates the frozen spans'
 * time from their measured per-close averages and re-credits the
 * enclosing span's self time, so a tiny span entered per element of a
 * hot loop costs a few loads per execution instead of two clock
 * readings. */
#ifndef MM_PROF_H
#define MM_PROF_H

/* Emitter-side fast-path state.  Generated code brackets sequential
 * probes as
 *   if (mm_prof_live && !mm_prof_skip[id]) mm_prof_enter(id);
 *   ...
 *   if (mm_prof_live) {
 *     if (!mm_prof_skip[id]) mm_prof_exit(id, n, 0);
 *     else { mm_prof_sentries[id]++; mm_prof_siters[id] += n; }
 *   }
 * mm_prof_live is 1 between init and stop while no parallel region is
 * dispatching (regions suppress nested probes); mm_prof_skip[id] flips
 * to 1 when span [id]'s timing freezes.  The arrays are owned by
 * mm_prof_init and only written single-threaded. */
extern volatile int mm_prof_live;
extern unsigned char *mm_prof_skip;
extern long long *mm_prof_sentries;
extern long long *mm_prof_siters;

/* Start profiling [nspans] spans named by [spans] (the generated span
 * table; entries are "line:col-..." strings).  Installs mm_alloc_hook
 * and starts the wall clock. */
void mm_prof_init(int nspans, const char *const *spans);

/* Monotonic clock in nanoseconds (CLOCK_MONOTONIC). */
long long mm_prof_now(void);

/* Open / close a sequential frame for span [id].  exit closes down to
 * the matching open frame, healing frames leaked by early exits. */
void mm_prof_enter(int id);
void mm_prof_exit(int id, long long iters, int dispatches);

/* Open / close a parallel-dispatch frame: enter_par additionally
 * installs the worker-attribution region when OpenMP runs > 1 thread;
 * exit_par tears it down and records one dispatch iff it was opened. */
void mm_prof_enter_par(int id);
void mm_prof_exit_par(int id, long long iters);

/* Record [busy_ns] of the calling OpenMP thread against span [id];
 * no-op unless [id] is the active region. */
void mm_prof_worker(int id, long long busy_ns);

/* Freeze the wall clock, close any frames still open, stop recording. */
void mm_prof_stop(void);

/* Write the profile as JSON to [path] (best effort: silent on I/O
 * failure so a read-only working directory cannot break the program). */
void mm_prof_dump(const char *path);

#endif /* MM_PROF_H */
