/* mm_prof implementation — see mm_prof.h for the attribution model.
 * The aggregates intentionally mirror the interpreter profiler
 * (lib/support/profile.ml): per-span total/self/par/seq ns, iteration
 * and dispatch counts, per-worker busy ns, allocation bytes, and folded
 * stacks for flamegraph tools. */
#include "mm_prof.h"
#include "mm_runtime.h"

#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <time.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#define MM_PROF_MAX_DEPTH 64
#define MM_PROF_MAX_WORKERS 64
#define MM_PROF_MAX_FOLDED 1024

typedef struct {
  long long entries;    /* times a frame for this span closed */
  long long total_ns;   /* wall time while the span was open */
  long long self_ns;    /* total minus time in nested spans */
  long long par_ns;     /* self time of parallel-dispatch frames */
  long long seq_ns;     /* self time of sequential frames */
  long long iters;      /* loop iterations executed */
  long long dispatches; /* parallel regions actually dispatched */
  long long alloc_bytes;
  /* Sampling freeze: after MM_PROF_FREEZE_AFTER timed closes a span
   * stops taking clock readings; further executions are counted (inline
   * by the emitted guards, via mm_prof_sentries/siters) and charged the
   * frozen per-close averages below at stop time.  Keeps the probe cost
   * of a tiny span entered per element of an enclosing loop near zero
   * while total/self stay statistically right. */
  int frozen;
  int fold_e;  /* fold entry holding this span's path at freeze time */
  int parent;  /* innermost open span at freeze time, -1 if none */
  long long est_total;
  long long est_self;
  long long frozen_self; /* self ns accumulated while frozen */
  long long worker_ns[MM_PROF_MAX_WORKERS];
} mm_prof_row;

typedef struct {
  int id;
  long long start;
  long long child; /* ns spent in nested frames */
} mm_prof_frame;

typedef struct {
  int depth;
  int ids[MM_PROF_MAX_DEPTH];
  long long self_ns;
} mm_prof_fold;

/* Emitter fast-path state (see mm_prof.h). */
volatile int mm_prof_live = 0;
unsigned char *mm_prof_skip = 0;
long long *mm_prof_sentries = 0;
long long *mm_prof_siters = 0;

static int mm_prof_enabled = 0;
static int mm_prof_nspans = 0;
static const char *const *mm_prof_names = 0;
static mm_prof_row *mm_prof_rows = 0;
static mm_prof_frame mm_prof_stack[MM_PROF_MAX_DEPTH];
static int mm_prof_depth = 0;
/* Active parallel region (span id), -1 when none.  Set before the omp
 * region starts and cleared after it joins, so worker-side reads see a
 * stable value for the region's whole lifetime. */
static volatile int mm_prof_region = -1;
static long long mm_prof_t0 = 0;
static long long mm_prof_wall = -1;
static mm_prof_fold mm_prof_folds[MM_PROF_MAX_FOLDED];
static int mm_prof_nfolds = 0;
/* Timed closes before a span's timing freezes; effectively never when
 * MM_PROF_EXACT is set in the environment. */
static long long mm_prof_freeze_after = 128;

long long mm_prof_now(void) {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (long long)ts.tv_sec * 1000000000LL + (long long)ts.tv_nsec;
}

/* Allocation attribution (mm_alloc_hook target): the active region's
 * row under an atomic add (workers allocate concurrently), else the
 * innermost open frame.  Bytes seen with neither stay unattributed and
 * are recovered at dump time as allocated-total minus attributed. */
static void mm_prof_on_alloc(long long bytes) {
  if (!mm_prof_enabled) return;
  int region = mm_prof_region;
  if (region >= 0 && region < mm_prof_nspans) {
#ifdef _OPENMP
#pragma omp atomic
#endif
    mm_prof_rows[region].alloc_bytes += bytes;
  } else if (mm_prof_depth > 0) {
    mm_prof_rows[mm_prof_stack[mm_prof_depth - 1].id].alloc_bytes += bytes;
  }
}

/* Crash-triage hook (mm_crash_span_hook target): the active region's
 * span, else the innermost open frame's.  Reads only ints and pointers
 * that are stable at signal time, so it is async-signal-safe. */
static const char *mm_prof_crash_span(void) {
  if (!mm_prof_enabled || !mm_prof_names) return 0;
  int region = mm_prof_region;
  if (region >= 0 && region < mm_prof_nspans) return mm_prof_names[region];
  if (mm_prof_depth > 0) {
    int id = mm_prof_stack[mm_prof_depth - 1].id;
    if (id >= 0 && id < mm_prof_nspans) return mm_prof_names[id];
  }
  return 0;
}

void mm_prof_init(int nspans, const char *const *spans) {
  if (nspans < 0) return;
  size_t n = nspans > 0 ? (size_t)nspans : 1;
  mm_prof_nspans = nspans;
  mm_prof_names = spans;
  mm_prof_rows = calloc(n, sizeof(mm_prof_row));
  mm_prof_skip = calloc(n, 1);
  mm_prof_sentries = calloc(n, sizeof(long long));
  mm_prof_siters = calloc(n, sizeof(long long));
  if (!mm_prof_rows || !mm_prof_skip || !mm_prof_sentries || !mm_prof_siters) {
    mm_prof_rows = 0; /* no profiling, but the program still runs */
    return;
  }
  mm_prof_depth = 0;
  mm_prof_region = -1;
  mm_prof_nfolds = 0;
  if (getenv("MM_PROF_EXACT")) mm_prof_freeze_after = (long long)1 << 62;
  else {
    /* MM_PROF_FREEZE=N overrides the freeze threshold: lower is
     * cheaper but extrapolates from fewer timed closes. */
    const char *fz = getenv("MM_PROF_FREEZE");
    if (fz) {
      long long n = atoll(fz);
      if (n > 0) mm_prof_freeze_after = n;
    }
  }
  mm_alloc_hook = mm_prof_on_alloc;
  mm_crash_span_hook = mm_prof_crash_span;
  mm_prof_t0 = mm_prof_now();
  mm_prof_enabled = 1;
  mm_prof_live = 1;
}

/* Fold the path [stack ids, bottom first, then [leaf]] with [self] ns.
 * [depth] is the number of stack entries below the leaf.  Loop bodies
 * close the same path over and over, so the last matched entry is
 * memoized and checked first; the linear scan only runs on a path
 * change. */
static int mm_prof_fold_last = -1;

static void mm_prof_fold_path(int depth, int leaf, long long self) {
  if (mm_prof_fold_last >= 0) {
    mm_prof_fold *fd = &mm_prof_folds[mm_prof_fold_last];
    if (fd->depth == depth + 1 && fd->ids[depth] == leaf) {
      int same = 1;
      for (int d = 0; d < depth; d++)
        if (fd->ids[d] != mm_prof_stack[d].id) {
          same = 0;
          break;
        }
      if (same) {
        fd->self_ns += self;
        return;
      }
    }
  }
  for (int e = 0; e < mm_prof_nfolds; e++) {
    if (mm_prof_folds[e].depth != depth + 1) continue;
    if (mm_prof_folds[e].ids[depth] != leaf) continue;
    int same = 1;
    for (int d = 0; d < depth; d++)
      if (mm_prof_folds[e].ids[d] != mm_prof_stack[d].id) {
        same = 0;
        break;
      }
    if (same) {
      mm_prof_folds[e].self_ns += self;
      mm_prof_fold_last = e;
      return;
    }
  }
  if (mm_prof_nfolds >= MM_PROF_MAX_FOLDED) return; /* drop the tail */
  mm_prof_fold *fd = &mm_prof_folds[mm_prof_nfolds];
  fd->depth = depth + 1;
  for (int d = 0; d < depth; d++) fd->ids[d] = mm_prof_stack[d].id;
  fd->ids[depth] = leaf;
  fd->self_ns = self;
  mm_prof_fold_last = mm_prof_nfolds++;
}

/* Fold the current open-stack path; the closing frame is the top. */
static void mm_prof_record_fold(long long self) {
  if (mm_prof_depth <= 0 || mm_prof_depth > MM_PROF_MAX_DEPTH) return;
  mm_prof_fold_path(mm_prof_depth - 1, mm_prof_stack[mm_prof_depth - 1].id,
                    self);
}

/* Close the top frame, charging self = total - child to its row and the
 * total to the parent's child time. */
static void mm_prof_close_top(long long iters, int dispatches, int par) {
  mm_prof_frame f = mm_prof_stack[mm_prof_depth - 1];
  long long total = mm_prof_now() - f.start;
  long long self = total - f.child;
  if (self < 0) self = 0;
  if (self > 0) mm_prof_record_fold(self);
  mm_prof_depth--;
  if (mm_prof_depth > 0) mm_prof_stack[mm_prof_depth - 1].child += total;
  mm_prof_row *r = &mm_prof_rows[f.id];
  r->entries++;
  r->total_ns += total;
  r->self_ns += self;
  r->iters += iters;
  r->dispatches += dispatches;
  if (par)
    r->par_ns += self;
  else
    r->seq_ns += self;
  if (r->entries >= mm_prof_freeze_after && !r->frozen) {
    r->frozen = 1;
    r->est_total = r->total_ns / r->entries;
    r->est_self = r->self_ns / r->entries;
    /* the fold entry this close just touched IS the span's hot path */
    r->fold_e = (self > 0) ? mm_prof_fold_last : -1;
    r->parent = mm_prof_depth > 0 ? mm_prof_stack[mm_prof_depth - 1].id : -1;
    if (mm_prof_skip) mm_prof_skip[f.id] = 1;
  }
}

/* A frozen span's execution: no frame was pushed, no clock was read.
 * Count it and charge the frozen per-close averages, crediting the
 * enclosing open frame's child time so parents don't absorb it. */
static void mm_prof_close_frozen(mm_prof_row *r, int id, long long iters,
                                 int dispatches, int par) {
  (void)id;
  r->entries++;
  r->total_ns += r->est_total;
  r->self_ns += r->est_self;
  r->frozen_self += r->est_self;
  r->iters += iters;
  r->dispatches += dispatches;
  if (par)
    r->par_ns += r->est_self;
  else
    r->seq_ns += r->est_self;
  if (mm_prof_depth > 0)
    mm_prof_stack[mm_prof_depth - 1].child += r->est_total;
}

void mm_prof_enter(int id) {
  if (!mm_prof_enabled || mm_prof_region >= 0) return;
  if (id < 0 || id >= mm_prof_nspans || mm_prof_depth >= MM_PROF_MAX_DEPTH)
    return;
  if (mm_prof_rows[id].frozen) return; /* counted at exit, no clock */
  mm_prof_frame *f = &mm_prof_stack[mm_prof_depth++];
  f->id = id;
  f->child = 0;
  f->start = mm_prof_now();
}

/* Find the matching open frame for [id] from the top down, or -1.  Exits
 * close everything above the match first (with zero counts), so a frame
 * leaked by an unusual control path heals instead of skewing parents. */
static int mm_prof_find(int id) {
  for (int i = mm_prof_depth - 1; i >= 0; i--)
    if (mm_prof_stack[i].id == id) return i;
  return -1;
}

void mm_prof_exit(int id, long long iters, int dispatches) {
  if (!mm_prof_enabled || mm_prof_region >= 0) return;
  if (id < 0 || id >= mm_prof_nspans) return;
  int at = mm_prof_find(id);
  if (at < 0) {
    mm_prof_row *r = &mm_prof_rows[id];
    if (r->frozen) mm_prof_close_frozen(r, id, iters, dispatches, 0);
    return;
  }
  while (mm_prof_depth - 1 > at) mm_prof_close_top(0, 0, 0);
  mm_prof_close_top(iters, dispatches, 0);
}

void mm_prof_enter_par(int id) {
  if (!mm_prof_enabled || mm_prof_region >= 0) return;
  if (id < 0 || id >= mm_prof_nspans) return;
#ifdef _OPENMP
  /* A frozen parallel span must still mark the region, or its workers
   * would hit the sequential probes concurrently. */
  if (mm_prof_rows[id].frozen) {
    if (omp_get_max_threads() > 1) {
      mm_prof_region = id;
      mm_prof_live = 0;
    }
    return;
  }
#endif
  mm_prof_enter(id);
#ifdef _OPENMP
  /* Only a real multi-thread dispatch suppresses nested frames: with
   * one thread the body profiles span by span, exactly like the
   * interpreter running pool-less. */
  if (omp_get_max_threads() > 1 && mm_prof_depth > 0 &&
      mm_prof_stack[mm_prof_depth - 1].id == id) {
    mm_prof_region = id;
    mm_prof_live = 0;
  }
#endif
}

void mm_prof_exit_par(int id, long long iters) {
  if (!mm_prof_enabled) return;
  int dispatched = (mm_prof_region == id);
  if (dispatched) {
    mm_prof_region = -1;
    mm_prof_live = 1;
  }
  if (mm_prof_region >= 0) return; /* nested inside another region */
  if (id < 0 || id >= mm_prof_nspans) return;
  int at = mm_prof_find(id);
  if (at < 0) {
    mm_prof_row *r = &mm_prof_rows[id];
    if (r->frozen)
      mm_prof_close_frozen(r, id, iters, dispatched ? 1 : 0, dispatched);
    return;
  }
  while (mm_prof_depth - 1 > at) mm_prof_close_top(0, 0, 0);
  mm_prof_close_top(iters, dispatched ? 1 : 0, dispatched);
}

void mm_prof_worker(int id, long long busy_ns) {
  if (!mm_prof_enabled || mm_prof_region != id) return;
  int w = 0;
#ifdef _OPENMP
  w = omp_get_thread_num();
#endif
  /* Distinct slot per thread id: no two threads write the same cell. */
  if (w >= 0 && w < MM_PROF_MAX_WORKERS)
    mm_prof_rows[id].worker_ns[w] += busy_ns;
}

void mm_prof_stop(void) {
  if (!mm_prof_enabled) return;
  mm_prof_live = 0;
  mm_prof_region = -1;
  while (mm_prof_depth > 0) mm_prof_close_top(0, 0, 0);
  /* Executions the emitted guards skipped entirely: extrapolate from
   * the frozen per-close averages, and re-credit the freeze-time parent
   * whose self time silently absorbed the skipped children's wall
   * clock. */
  for (int i = 0; i < mm_prof_nspans; i++) {
    mm_prof_row *r = &mm_prof_rows[i];
    long long k = mm_prof_sentries ? mm_prof_sentries[i] : 0;
    if (k <= 0) continue;
    long long extra_total = r->est_total * k;
    long long extra_self = r->est_self * k;
    r->entries += k;
    r->iters += mm_prof_siters[i];
    r->total_ns += extra_total;
    r->self_ns += extra_self;
    r->seq_ns += extra_self;
    r->frozen_self += extra_self;
    if (r->parent >= 0 && r->parent < mm_prof_nspans) {
      mm_prof_row *pr = &mm_prof_rows[r->parent];
      pr->self_ns -= extra_total;
      if (pr->self_ns < 0) pr->self_ns = 0;
      pr->seq_ns -= extra_total;
      if (pr->seq_ns < 0) pr->seq_ns = 0;
    }
    mm_prof_sentries[i] = 0;
    mm_prof_siters[i] = 0;
  }
  /* Frozen spans skipped per-close fold updates; credit the self time
   * they accumulated to the hot path captured at freeze time. */
  for (int i = 0; i < mm_prof_nspans; i++) {
    mm_prof_row *r = &mm_prof_rows[i];
    if (r->frozen && r->frozen_self > 0 && r->fold_e >= 0 &&
        r->fold_e < mm_prof_nfolds)
      mm_prof_folds[r->fold_e].self_ns += r->frozen_self;
  }
  mm_prof_wall = mm_prof_now() - mm_prof_t0;
  mm_prof_enabled = 0;
}

static void mm_prof_json_string(FILE *f, const char *s) {
  fputc('"', f);
  for (; *s; s++) {
    if (*s == '"' || *s == '\\') fputc('\\', f);
    fputc(*s, f);
  }
  fputc('"', f);
}

void mm_prof_dump(const char *path) {
  if (!mm_prof_rows) return;
  if (mm_prof_enabled) mm_prof_stop();
  FILE *f = fopen(path, "w");
  if (!f) return;
  long long attributed = 0, attr_alloc = 0;
  for (int i = 0; i < mm_prof_nspans; i++) {
    attributed += mm_prof_rows[i].self_ns;
    attr_alloc += mm_prof_rows[i].alloc_bytes;
  }
  fprintf(f, "{\"wall_ns\":%lld,\"attributed_ns\":%lld,\"spans\":[",
          mm_prof_wall < 0 ? 0 : mm_prof_wall, attributed);
  int first = 1;
  for (int i = 0; i < mm_prof_nspans; i++) {
    mm_prof_row *r = &mm_prof_rows[i];
    /* Every span that was ever entered is reported, even with ~0 ns:
     * the interp-vs-native differential checks span-set containment. */
    if (r->entries == 0) continue;
    if (!first) fputc(',', f);
    first = 0;
    fputs("{\"span\":", f);
    mm_prof_json_string(f, mm_prof_names ? mm_prof_names[i] : "?");
    fprintf(f,
            ",\"total_ns\":%lld,\"self_ns\":%lld,\"iters\":%lld,"
            "\"dispatches\":%lld,\"par_ns\":%lld,\"seq_ns\":%lld,"
            "\"alloc_bytes\":%lld,\"workers\":{",
            r->total_ns, r->self_ns, r->iters, r->dispatches, r->par_ns,
            r->seq_ns, r->alloc_bytes);
    int wfirst = 1;
    for (int w = 0; w < MM_PROF_MAX_WORKERS; w++) {
      if (r->worker_ns[w] == 0) continue;
      if (!wfirst) fputc(',', f);
      wfirst = 0;
      fprintf(f, "\"%d\":%lld", w, r->worker_ns[w]);
    }
    fputs("}}", f);
  }
  fputs("],\"folded\":[", f);
  for (int e = 0; e < mm_prof_nfolds; e++) {
    if (e > 0) fputc(',', f);
    fputs("{\"stack\":\"", f);
    for (int d = 0; d < mm_prof_folds[e].depth; d++) {
      if (d > 0) fputc(';', f);
      int id = mm_prof_folds[e].ids[d];
      const char *name =
          (mm_prof_names && id >= 0 && id < mm_prof_nspans) ? mm_prof_names[id]
                                                            : "?";
      /* span strings are "line:col-..." — never need JSON escapes */
      fputs(name, f);
    }
    fprintf(f, "\",\"self_ns\":%lld}", mm_prof_folds[e].self_ns);
  }
  long long total_alloc = mm_allocated_bytes();
  long long unattributed = total_alloc - attr_alloc;
  if (unattributed < 0) unattributed = 0;
  fprintf(f,
          "],\"memory\":{\"allocated_bytes\":%lld,\"peak_bytes\":%lld,"
          "\"live_bytes\":%lld,\"unattributed_alloc_bytes\":%lld}}\n",
          total_alloc, mm_peak_bytes(), mm_live_bytes(), unattributed);
  fclose(f);
}
