/* mm_runtime — the flat-buffer matrix runtime backing the C code that
 * mmc emits (§II: "translate it down to plain C code, which can then be
 * compiled for execution by a traditional compiler").
 *
 * Semantics mirror the reference interpreter exactly so `mmc exec` is
 * bit-identical to `mmc run`:
 *   - mm_float is double: the interpreter evaluates float expressions in
 *     IEEE double precision.
 *   - SSE lanes are genuine 32-bit floats: the interpreter rounds every
 *     vector load/op/store through single precision, and the horizontal
 *     sum accumulates the four lanes in double, in lane order.
 *   - readMatrix/writeMatrix speak the interpreter's MMAT1 container
 *     byte-for-byte (big-endian header, one decimal line per element,
 *     floats as the decimal value of their IEEE-754 bit pattern).
 */
#ifndef MM_RUNTIME_H
#define MM_RUNTIME_H

#include <stdbool.h>

typedef double mm_float;

#define MM_MAX_RANK 16

/* Element kinds, matching the MMAT1 container's kind byte. */
#define MM_KIND_FLOAT 'f'
#define MM_KIND_INT 'i'
#define MM_KIND_BOOL 'b'

/* All three matrix structs share a layout prefix (rc, kind, rank, elems,
 * dims) so mm_rc_inc/mm_rc_dec/mm_size/mm_write_matrix can take any of
 * them through void *. */
#define MM_MAT_HEADER                                                         \
  int rc;                                                                     \
  int kind;                                                                   \
  int rank;                                                                   \
  int elems;                                                                  \
  int dims[MM_MAX_RANK]

typedef struct {
  MM_MAT_HEADER;
  mm_float *data;
} mm_mat_float;

typedef struct {
  MM_MAT_HEADER;
  int *data;
} mm_mat_int;

typedef struct {
  MM_MAT_HEADER;
  bool *data;
} mm_mat_bool;

/* The emitter names matrix types by element and static rank
 * (mm_mat_float3, mm_mat_int1, ...); the rank is carried in the type
 * name only, so each is an alias of the per-element struct. */
typedef mm_mat_float mm_mat_float1, mm_mat_float2, mm_mat_float3,
    mm_mat_float4, mm_mat_float5, mm_mat_float6, mm_mat_float7, mm_mat_float8;
typedef mm_mat_int mm_mat_int1, mm_mat_int2, mm_mat_int3, mm_mat_int4,
    mm_mat_int5, mm_mat_int6, mm_mat_int7, mm_mat_int8;
typedef mm_mat_bool mm_mat_bool1, mm_mat_bool2, mm_mat_bool3, mm_mat_bool4,
    mm_mat_bool5, mm_mat_bool6, mm_mat_bool7, mm_mat_bool8;

/* Allocation (zero-initialised, refcount 1) and reference counting.
 * mm_rc_dec frees buffer and header when the count reaches zero; both
 * tolerate NULL so generated cleanup code needs no guards. */
mm_mat_float *mm_alloc_float(int rank, ...);
mm_mat_int *mm_alloc_int(int rank, ...);
mm_mat_bool *mm_alloc_bool(int rank, ...);
void mm_rc_inc(void *m);
void mm_rc_dec(void *m);
int mm_size(const void *m);
int mm_live_count(void);

/* Payload-byte accounting, mirroring the interpreter's RC registry
 * gauges: bytes currently live, the high-water mark, and the cumulative
 * total ever allocated.  mm_alloc_hook, when non-NULL, observes every
 * payload allocation (the native profiler points it at its per-span
 * attribution); it may be called from inside OpenMP regions. */
long long mm_live_bytes(void);
long long mm_peak_bytes(void);
long long mm_allocated_bytes(void);
extern void (*mm_alloc_hook)(long long bytes);

/* MMAT1 container I/O (readMatrix/writeMatrix builtins).  Paths resolve
 * like the interpreter's virtual filesystem: '/' and '\' map to '_',
 * relative to the current working directory. */
void *mm_read_matrix(const char *path);
void mm_write_matrix(const char *path, const void *m);

/* Abort with an "mm_runtime: ..." diagnostic on stderr and exit code 70
 * (the runtime-failure exit the mmc driver maps back to a diagnostic). */
void mm_fatal(const char *fmt, ...);

/* Result protocol: the generated main prints the entry function's result
 * as "__mm_result ..." lines that `mmc exec` parses back into the same
 * value the interpreter would return, then a final "__mm_live N" line
 * with the allocations still live (the interpreter warns on the same
 * number). */
void mm_result_int(int v);
void mm_result_float(mm_float v);
void mm_result_bool(bool v);
void mm_result_void(void);
void mm_result_null(void);
void mm_result_tuple(int fields);
void mm_result_mat(const void *m);
void mm_result_live(void);

/* --- supervised execution ----------------------------------------------
 * Runtime guards (--guards), MM_FAILPOINTS fault injection, and the
 * crash-breadcrumb sidecar the mmc supervisor uses to triage signal
 * deaths back to source spans.
 *
 * A guard trip or an injected fault reports through one structured
 * protocol line on stdout before dying:
 *   __mm_fault <span_id> <span|-> <message...>
 * Guard trips _exit(71) — deterministic, distinct from mm_fatal's 70 —
 * while injected failpoints abort() so they surface as a signal death,
 * which is what drives the driver's sequential-degrade rerun. */

/* Arm failpoints from the MM_FAILPOINTS environment variable
 * ("name@K,name@P[:SEED]" — the Support.Failpoint grammar; a malformed
 * spec is mm_fatal) and install the crash-breadcrumb signal handlers.
 * Called first thing by every generated exec harness. */
void mm_fail_init(void);

/* Count one pass through failpoint [name]; prints __mm_fault, flushes,
 * and abort()s when the armed condition is met on this hit.  The
 * disarmed fast path is one load of the clause count. */
void mm_fail_hit(const char *name);

/* Enable runtime guards with the generated guard span table: emitted
 * subscripts go through MM_GUARD_IDX and mm_rc_dec checks for refcount
 * underflow. */
void mm_guard_init(int nspans, const char *const *spans);
extern int mm_guard_on;

/* Report a guard fault attributed to span [id] (-1 = no span) and
 * _exit(71).  Does not return. */
_Noreturn void mm_guard_fault(int id, const char *fmt, ...);

/* Slow path of MM_GUARD_IDX: diagnoses the NULL-matrix or
 * out-of-bounds cause and faults.  Only ever called once the inline
 * check has failed; _Noreturn so the optimizer keeps the passing path
 * free of spills and can hoist bound loads across iterations. */
_Noreturn void mm_guard_check(const void *m, int off, int id);

/* Crash breadcrumbs: emitted code pushes the innermost provenance span
 * id around located statements and loops; a fatal signal writes the
 * innermost resolvable span to mm_crash.txt so the supervisor can
 * render a caret even for SIGSEGV/SIGFPE deaths.  The stack is
 * thread-local — every thread keeps its own trail, so pushes inside
 * parallel regions are race-free and the handler (which runs on the
 * faulting thread) reads exactly that thread's innermost span — and
 * push/pop are inline macros: a TLS load, a compare and a store, cheap
 * enough to sit in per-element code paths.  Depth keeps counting past
 * MM_CRUMB_MAX so deep nests stay balanced; only the ids below the cap
 * are recorded. */
#define MM_CRUMB_MAX 64
extern _Thread_local int mm_crumb_stack[MM_CRUMB_MAX];
extern _Thread_local int mm_crumb_depth;
#define mm_crumb_push(id)                                                     \
  ((void)((mm_crumb_depth < MM_CRUMB_MAX                                      \
               ? (void)(mm_crumb_stack[mm_crumb_depth] = (id))                \
               : (void)0),                                                    \
          mm_crumb_depth++))
#define mm_crumb_pop() ((void)(mm_crumb_depth > 0 ? mm_crumb_depth-- : 0))

/* Optional override consulted first by the crash handler (must be
 * async-signal-safe): returns the span string to record, or NULL to
 * fall back to the breadcrumb stack.  mm_prof points this at its
 * open-frame stack so instrumented builds triage without guards. */
extern const char *(*mm_crash_span_hook)(void);

/* Guarded subscript: checks [off] against [m]'s element count (and [m]
 * against NULL) before the access; a statement expression so it stays
 * usable as an lvalue on the left of an assignment.  The passing path
 * is inline — two compares the branch predictor learns immediately —
 * and only a failing subscript calls out to mm_guard_check, which
 * re-derives the cause and reports it; that keeps guarded inner loops
 * free of per-element function calls. */
#define MM_GUARD_IDX(m, off, id)                                              \
  (*({                                                                        \
    __typeof__(m) __mm_gm = (m);                                              \
    int __mm_gi = (off);                                                      \
    if (__builtin_expect(!__mm_gm || (unsigned)__mm_gi >=                     \
                                         (unsigned)__mm_gm->elems,            \
                         0))                                                  \
      mm_guard_check((const void *)__mm_gm, __mm_gi, (id));                   \
    &__mm_gm->data[__mm_gi];                                                  \
  }))

/* Integer minimum (tile-boundary bounds from the transform extension). */
static inline int mm_min(int a, int b) { return a < b ? a : b; }

/* Cilk elision (§VIII future work): serial semantics, as the paper's
 * spawn sites are all joined by an implicit sync before use. */
#define cilk_spawn
#define cilk_sync ((void)0)

/* --- simulated SSE (Fig 11) --------------------------------------------
 * With real SSE the intrinsics come from xmmintrin.h; elsewhere a plain
 * 4-lane float struct provides the same operations, so emitted C stays
 * portable.  Lanes are single precision in both cases — exactly the
 * precision the interpreter's vector unit rounds through. */
#if defined(__SSE__) || defined(_M_X64) || defined(_M_IX86_FP)
#include <xmmintrin.h>
#define MM_HAVE_SSE 1
#else
typedef struct {
  float mm_lane[4];
} __m128;

static inline __m128 _mm_set1_ps(float x) {
  __m128 r;
  for (int k = 0; k < 4; k++) r.mm_lane[k] = x;
  return r;
}

/* _mm_set_ps takes lanes highest-first. */
static inline __m128 _mm_set_ps(float w3, float w2, float w1, float w0) {
  __m128 r;
  r.mm_lane[0] = w0;
  r.mm_lane[1] = w1;
  r.mm_lane[2] = w2;
  r.mm_lane[3] = w3;
  return r;
}

#define MM_DEF_VBIN(name, op)                                                 \
  static inline __m128 name(__m128 a, __m128 b) {                             \
    __m128 r;                                                                 \
    for (int k = 0; k < 4; k++) r.mm_lane[k] = a.mm_lane[k] op b.mm_lane[k];  \
    return r;                                                                 \
  }
MM_DEF_VBIN(_mm_add_ps, +)
MM_DEF_VBIN(_mm_sub_ps, -)
MM_DEF_VBIN(_mm_mul_ps, *)
MM_DEF_VBIN(_mm_div_ps, /)
#undef MM_DEF_VBIN
#endif

/* Lane-wise float modulo (no SSE equivalent; the interpreter rejects
 * vector modulo, so this exists only to keep every emitted operator
 * linkable). */
__m128 mm_mod_ps(__m128 a, __m128 b);

/* Strided scatter of the 4 lanes into a double buffer:
 * data[base + k*stride] = lane k.  Stride 1 covers _mm_storeu_ps sites;
 * widening float -> double is exact, matching the interpreter's store. */
void mm_scatter_ps(mm_float *data, int base, int stride, __m128 v);

/* Horizontal sum: lanes accumulate in double, lane 0 first — the exact
 * order and precision of the interpreter's fold over the vector. */
mm_float mm_hsum_ps(__m128 v);

#endif /* MM_RUNTIME_H */
