(* The full extensible-translator pipeline: composition analyses over the
   real host/extension grammars, context-aware keyword behaviour,
   domain-specific semantic errors (§III-A), golden C output (Fig 3),
   end-to-end execution of every paper program against native oracles, and
   the refcounting no-leak invariant. *)

module Nd = Runtime.Ndarray
module S = Runtime.Scalar

let is_infix ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

(* One composition per extension set, shared across tests. *)
let full = Driver.compose [ Driver.matrix; Driver.transform; Driver.refptr ]
let matrix_only = Driver.compose [ Driver.matrix ]
let plain = Driver.compose []

let fresh_dir () =
  let d = Filename.temp_file "mmtest" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let run_ok ?(c = full) ?dir ?pool ?(fuse = true) ?(auto_par = false) ?optimize
    src =
  let config = Driver.config_of_flags ~fuse ~auto_par c in
  match Driver.run ?dir ?pool ~config ?optimize c src [] with
  | Driver.Ok_ v -> v
  | Driver.Failed ds -> Alcotest.failf "pipeline failed: %s" (Driver.diags_to_string ds)

let expect_error ?(c = full) src expected_fragment =
  match Driver.run c src [] with
  | Driver.Ok_ _ -> Alcotest.failf "expected error containing %S" expected_fragment
  | Driver.Failed ds ->
      let text = Driver.diags_to_string ds in
      Alcotest.(check bool)
        (Printf.sprintf "error mentions %S (got: %s)" expected_fragment text)
        true
        (is_infix ~affix:expected_fragment text)

let cube3 m n p =
  Nd.init_float [| m; n; p |] (fun ix ->
      float_of_int ((100 * ix.(0)) + (10 * ix.(1)))
      +. (0.5 *. float_of_int ix.(2)))

(* --- composition ------------------------------------------------------------- *)

let test_composition_reports () =
  List.iter
    (fun (r : Grammar.Determinism.report) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s passes isComposable" r.Grammar.Determinism.extension)
        true r.Grammar.Determinism.passes)
    full.Driver.determinism_reports;
  List.iter
    (fun (r : Ag.Wellformed.report) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s passes well-definedness" r.Ag.Wellformed.extension)
        true r.Ag.Wellformed.passes)
    full.Driver.ag_reports

let test_tuples_fails_iscomposable () =
  (* The paper's result (§VI-A): the tuples extension fails the analysis
     because its initial symbol is the host's "(". *)
  let r =
    Grammar.Determinism.check Cminus.Syntax.fragment
      Ext_tuples.Tuples_ext.grammar
  in
  Alcotest.(check bool) "tuples fails" false r.Grammar.Determinism.passes;
  Alcotest.(check bool) "marking-terminal violation" true
    (List.exists
       (fun v -> v.Grammar.Determinism.rule = "marking-terminal")
       r.Grammar.Determinism.violations)

let test_composition_theorem_subsets () =
  (* Every subset of passing extensions composes conflict-free. *)
  let subsets =
    [
      [];
      [ Driver.matrix ];
      [ Driver.transform ];
      [ Driver.refptr ];
      [ Driver.matrix; Driver.transform ];
      [ Driver.matrix; Driver.refptr ];
      [ Driver.transform; Driver.refptr ];
      [ Driver.matrix; Driver.transform; Driver.refptr ];
    ]
  in
  List.iter
    (fun sel ->
      let c = Driver.compose sel in
      Alcotest.(check bool)
        (Printf.sprintf "%d-extension composition is LALR(1)" (List.length sel))
        true
        (Grammar.Lalr.is_lalr1 c.Driver.table))
    subsets

(* --- context-aware scanning on the real language ------------------------------- *)

let test_keywords_usable_as_identifiers () =
  (* Context-aware scanning (§VI-A): transform-extension keywords are only
     valid inside a transform clause, so `split`, `by`, `tile` etc. remain
     ordinary identifiers everywhere else — even in expressions. *)
  let src =
    {|
int main() {
  int split = 4;
  int by = 2;
  int tile = 3;
  int vectorize = 1;
  return split * by + tile + vectorize;
}
|}
  in
  (match run_ok src with
  | Interp.Eval.VScal (S.I 12) -> ()
  | v -> Alcotest.failf "got %a" Interp.Eval.pp_value v);
  (* Matrix-extension keywords can start expressions (`with (...) ...`),
     so in expression positions the keyword interpretation wins and the
     name is effectively reserved there — but declaring it stays legal
     because after a type only ID is valid. *)
  (match run_ok {|
int main() {
  int with = 1;
  int end = 2;
  int init = 3;
  return 0;
}
|} with
  | Interp.Eval.VScal (S.I 0) -> ()
  | v -> Alcotest.failf "got %a" Interp.Eval.pp_value v);
  match Driver.run full "int main() { int with = 1; return with; }" [] with
  | Driver.Ok_ _ ->
      Alcotest.fail "`with` in expression position should scan as the keyword"
  | Driver.Failed _ -> ()

let test_plain_c_unaffected () =
  (* Without the matrix extension, `with` is just an identifier
     everywhere. *)
  let src = {|
int main() {
  int with = 20;
  int x = with * 2;
  return x + 2;
}
|} in
  match run_ok ~c:plain src with
  | Interp.Eval.VScal (S.I 42) -> ()
  | v -> Alcotest.failf "got %a" Interp.Eval.pp_value v

let test_matrix_syntax_requires_extension () =
  match Driver.run plain "int main() { Matrix float <2> m; return 0; }" [] with
  | Driver.Ok_ _ -> Alcotest.fail "Matrix type should not parse without the extension"
  | Driver.Failed _ -> ()

(* --- host-language semantics ------------------------------------------------------ *)

let test_host_programs () =
  let cases =
    [
      ("int main() { return 2 + 3 * 4; }", S.I 14);
      ("int main() { return (2 + 3) * 4; }", S.I 20);
      ("int main() { int x = 10; x = x - 3; return x % 4; }", S.I 3);
      ("int main() { float f = 7f; return (int)(f / 2.0); }", S.I 3);
      ( "int main() { int acc = 0; for (int i = 1; i <= 5; i++) { acc = acc + i; } return acc; }",
        S.I 15 );
      ( "int main() { int i = 0; int acc = 0; while (i < 10) { i++; if (i % 2 == 0) { continue; } acc = acc + i; } return acc; }",
        S.I 25 );
      ( "int main() { int acc = 0; for (int i = 0; i < 100; i++) { if (i == 7) { break; } acc = acc + 1; } return acc; }",
        S.I 7 );
      ( "int f(int x) { if (x <= 1) { return 1; } return x * f(x - 1); } int main() { return f(5); }",
        S.I 120 );
      ( "bool odd(int n) { return n % 2 == 1; } int main() { if (odd(3) && !odd(4)) { return 1; } return 0; }",
        S.I 1 );
      ( "int main() { int a = 1; { int a = 2; } return a; }", S.I 1 );
    ]
  in
  List.iter
    (fun (src, expect) ->
      match run_ok ~c:plain src with
      | Interp.Eval.VScal got ->
          Alcotest.(check bool)
            (Printf.sprintf "%s = %s" src (S.to_string expect))
            true (S.equal got expect)
      | v -> Alcotest.failf "got %a" Interp.Eval.pp_value v)
    cases

let test_tuples_host_packaged () =
  let src =
    {|
(int, float, bool) trio(int x) {
  return (x * 2, 1.5, x > 0);
}
int main() {
  int a = 0;
  float b = 0f;
  bool c = false;
  (a, b, c) = trio(21);
  if (c) { return a + (int) b; }
  return -1;
}
|}
  in
  match run_ok ~c:plain src with
  | Interp.Eval.VScal (S.I 43) -> ()
  | v -> Alcotest.failf "got %a" Interp.Eval.pp_value v

(* --- semantic error checks (the paper's §III analyses) ----------------------------- *)

let test_semantic_errors () =
  List.iter
    (fun (src, frag) -> expect_error src frag)
    [
      (* rank/type agreement for matrix arithmetic (§III-A2) *)
      ( {|int main() { Matrix float <2> a = init(Matrix float <2>, 2, 2);
           Matrix float <1> b = init(Matrix float <1>, 4);
           Matrix float <2> c = a + b; return 0; }|},
        "same type and rank" );
      ( {|int main() { Matrix int <1> a = init(Matrix int <1>, 3);
           Matrix float <1> b = init(Matrix float <1>, 3);
           Matrix int <1> c = a + b; return 0; }|},
        "same type and rank" );
      (* with-loop arity checks (§III-A4) *)
      ( {|int main() { Matrix float <2> m =
             with ([0] <= [i,j] < [4,4]) genarray([4,4], 0f); return 0; }|},
        "lower bound" );
      ( {|int main() { Matrix float <2> m =
             with ([0,0] <= [i,j] < [4,4]) genarray([4], 0f); return 0; }|},
        "genarray: shape has 1 dimension(s)" );
      (* subscript arity *)
      ( {|int main() { Matrix float <2> m = init(Matrix float <2>, 2, 2);
           float x = m[0]; return 0; }|},
        "rank-2 matrix subscripted with 1" );
      (* end outside a subscript *)
      ( {|int main() { int x = end; return x; }|},
        "only meaningful inside a matrix subscript" );
      (* matrixMap rank restriction (§III-A5) *)
      ( {|Matrix float <1> f(Matrix float <1> v) { return v; }
         int main() { Matrix float <3> d = init(Matrix float <3>, 2, 2, 2);
           Matrix float <3> r = matrixMap(f, d, [0, 1]); return 0; }|},
        "rank" );
      (* undefined function in matrixMap *)
      ( {|int main() { Matrix float <2> d = init(Matrix float <2>, 2, 2);
           Matrix float <2> r = matrixMap(nosuch, d, [0]); return 0; }|},
        "undefined function" );
      (* readMatrix needs a typed context *)
      ( {|int main() { int x = readMatrix("f.data"); return x; }|},
        "matrix-typed context" );
      (* boolean matrix arithmetic *)
      ( {|int main() { Matrix bool <1> b = init(Matrix bool <1>, 3);
           Matrix bool <1> c = b + b; return 0; }|},
        "arithmetic on boolean matrices" );
      (* host errors still reported with extensions loaded *)
      ({|int main() { return y; }|}, "unbound variable 'y'");
      ({|int main() { break; }|}, "break outside of a loop");
      ( {|int f() { return 1; } int f() { return 2; } int main() { return 0; }|},
        "defined twice" );
      ({|int main() { if (1) { return 1; } return 0; }|}, "expected bool");
      (* transform scripts naming unknown loops (§V error check) *)
      ( {|int main() {
           Matrix float <2> m = init(Matrix float <2>, 4, 4);
           m = with ([0,0] <= [i,j] < [4,4]) genarray([4,4], 1f)
             transform parallelize z;
           return 0; }|},
        "no loop indexed by 'z'" );
    ]

(* --- golden C output (Fig 3) -------------------------------------------------------- *)

let test_fig3_golden_c () =
  match Driver.compile_to_c full Eddy.Programs.fig1_temporal_mean with
  | Driver.Failed ds -> Alcotest.failf "emit failed: %s" (Driver.diags_to_string ds)
  | Driver.Ok_ c ->
      let contains affix = is_infix ~affix c in
      (* the Fig 3 nest: two loops, sequential accumulation, direct store *)
      Alcotest.(check bool) "outer i loop" true
        (contains "for (int i = 0; i < m; i++)");
      Alcotest.(check bool) "inner j loop" true
        (contains "for (int j = 0; j < n; j++)");
      Alcotest.(check bool) "k fold" true
        (contains "for (int k = 0; k < p; k++)");
      Alcotest.(check bool) "fused direct store (no temp copy)" false
        (contains "library-style");
      Alcotest.(check bool) "refcounting present" true
        (contains "mm_rc_dec");
      Alcotest.(check bool) "reads flat buffer" true
        (contains "mat->data[(i * mat->dims[1] + j) * mat->dims[2] + k]")

let test_fig10_fig11_golden_c () =
  match Driver.compile_to_c full Eddy.Programs.fig9_transformed with
  | Driver.Failed ds -> Alcotest.failf "emit failed: %s" (Driver.diags_to_string ds)
  | Driver.Ok_ c ->
      let contains affix = is_infix ~affix c in
      Alcotest.(check bool) "jout loop" true (contains "jout");
      Alcotest.(check bool) "omp pragma on i" true
        (contains "#pragma omp parallel for");
      Alcotest.(check bool) "SSE splat" true (contains "_mm_set1_ps");
      Alcotest.(check bool) "SSE strided pack" true (contains "_mm_set_ps");
      Alcotest.(check bool) "no scalar jin loop left" false (contains "jin++")

(* --- end-to-end program runs vs oracles ----------------------------------------------- *)

let oracle_mean c =
  let sh = Nd.shape c in
  Nd.init_float [| sh.(0); sh.(1) |] (fun ix ->
      let acc = ref 0. in
      for k = 0 to sh.(2) - 1 do
        acc := !acc +. S.to_float (Nd.get c [| ix.(0); ix.(1); k |])
      done;
      !acc /. float_of_int sh.(2))

let run_with_cube ?fuse ?auto_par ?pool ?optimize ~c src cube out_name =
  let dir = fresh_dir () in
  Interp.Eval.provide_input ~dir "ssh.data" cube;
  Runtime.Rc.reset ();
  ignore (run_ok ~c ~dir ?fuse ?auto_par ?pool ?optimize src);
  let leaks = Runtime.Rc.live_count () in
  (Interp.Eval.fetch_output ~dir out_name, leaks)

let test_fig1_run () =
  let cube = cube3 3 5 7 in
  let got, leaks =
    run_with_cube ~c:full Eddy.Programs.fig1_temporal_mean cube "means.data"
  in
  Alcotest.(check bool) "means match oracle" true
    (Nd.approx_equal ~eps:1e-4 got (oracle_mean cube));
  Alcotest.(check int) "no leaked allocations" 0 leaks

let test_fig9_run_matches_fig1 () =
  let cube = cube3 4 12 6 in
  let got, leaks =
    run_with_cube ~c:full Eddy.Programs.fig9_transformed cube "means.data"
  in
  Alcotest.(check bool) "transformed means match oracle" true
    (Nd.approx_equal ~eps:1e-4 got (oracle_mean cube));
  Alcotest.(check int) "no leaks under transforms" 0 leaks

let test_fig1_parallel_run () =
  Runtime.Pool.with_pool 3 (fun pool ->
      let cube = cube3 4 6 9 in
      let got, leaks =
        run_with_cube ~c:full ~auto_par:true ~pool
          Eddy.Programs.fig1_temporal_mean cube "means.data"
      in
      Alcotest.(check bool) "parallel means match oracle" true
        (Nd.approx_equal ~eps:1e-4 got (oracle_mean cube));
      Alcotest.(check int) "no leaks in parallel" 0 leaks)

let test_fig1_unfused_matches () =
  let cube = cube3 3 4 5 in
  let fused, _ =
    run_with_cube ~c:full ~fuse:true Eddy.Programs.fig1_temporal_mean cube
      "means.data"
  in
  let unfused, leaks =
    run_with_cube ~c:full ~fuse:false Eddy.Programs.fig1_temporal_mean cube
      "means.data"
  in
  Alcotest.(check bool) "library-style lowering same result" true
    (Nd.approx_equal fused unfused);
  Alcotest.(check int) "library-style still leak-free" 0 leaks

let test_fig8_run_vs_oracle () =
  (* planted trough signature (Fig 7) in every series *)
  let p = 40 in
  let ts k =
    let fk = float_of_int k in
    if k < 10 then 1.0 +. (0.01 *. fk)
    else if k < 20 then 1.1 -. (0.1 *. (fk -. 10.))
    else if k < 30 then 0.1 +. (0.1 *. (fk -. 20.))
    else 1.1 -. (0.005 *. (fk -. 30.))
  in
  let cube = Nd.init_float [| 2; 3; p |] (fun ix -> ts ix.(2)) in
  let got, leaks =
    run_with_cube ~c:full Eddy.Programs.fig8_scoring cube "temporalScores.data"
  in
  let oracle = Eddy.Score.score_cube cube in
  Alcotest.(check bool) "translated Fig 8 matches native oracle" true
    (Nd.approx_equal ~eps:1e-3 got oracle);
  Alcotest.(check int) "no leaks across matrixMap + tuples" 0 leaks;
  (* and the scores actually rank the trough above the noise bumps *)
  Alcotest.(check bool) "trough scored high" true
    (S.to_float (Nd.get got [| 0; 0; 15 |]) > 5.);
  Alcotest.(check bool) "flat region scored low" true
    (S.to_float (Nd.get got [| 0; 0; 35 |]) < 1.)

let test_fig4_run_vs_oracle () =
  let lat = 12 and lon = 14 and time = 4 in
  let cube, _ =
    Eddy.Ssh_gen.generate ~lat ~lon ~time ~n_eddies:2 ~seed:7 ()
  in
  let dates = Nd.init_int [| time |] (fun ix -> 1012000 + ix.(0)) in
  let dir = fresh_dir () in
  Interp.Eval.provide_input ~dir "ssh.data" cube;
  Interp.Eval.provide_input ~dir "dates.data" dates;
  Runtime.Rc.reset ();
  ignore (run_ok ~c:full ~dir Eddy.Programs.fig4_conncomp);
  Alcotest.(check int) "no leaks" 0 (Runtime.Rc.live_count ());
  let labels = Interp.Eval.fetch_output ~dir "eddyLabels.data" in
  Alcotest.(check (array int)) "label cube shape"
    [| lat; lon; time |] (Nd.shape labels);
  (* compare partitions per frame with the union-find oracle *)
  for t = 0 to time - 1 do
    let fr = Eddy.Ssh_gen.frame cube t in
    let mask = Nd.cmp_scalar S.Lt fr (S.F (-0.25)) ~scalar_left:false in
    let oracle = Eddy.Conncomp.label mask in
    let same_partition =
      let ok = ref true in
      let assoc : (int, int) Hashtbl.t = Hashtbl.create 16 in
      let rassoc : (int, int) Hashtbl.t = Hashtbl.create 16 in
      for i = 0 to lat - 1 do
        for j = 0 to lon - 1 do
          let a = S.to_int (Nd.get labels [| i; j; t |]) in
          let b = S.to_int (Nd.get oracle [| i; j |]) in
          if (a = 0) <> (b = 0) then ok := false
          else if a <> 0 then begin
            (match Hashtbl.find_opt assoc a with
            | Some b' -> if b <> b' then ok := false
            | None -> Hashtbl.replace assoc a b);
            match Hashtbl.find_opt rassoc b with
            | Some a' -> if a <> a' then ok := false
            | None -> Hashtbl.replace rassoc b a
          end
        done
      done;
      !ok
    in
    Alcotest.(check bool)
      (Printf.sprintf "frame %d partition matches union-find" t)
      true same_partition
  done

let test_slice_copy_elimination () =
  (* The §III-A5 optimization: the slice-then-fold program gives the same
     answer, and the optimizer actually removes the slice allocations. *)
  let cube = cube3 3 4 6 in
  let got, _ =
    run_with_cube ~c:full Eddy.Programs.fig1_with_slice_copy cube "means.data"
  in
  Alcotest.(check bool) "slice-copy program matches oracle" true
    (Nd.approx_equal ~eps:1e-4 got (oracle_mean cube));
  (* optimized run performs fewer allocations than the unoptimized one *)
  let count_allocs ~optimize =
    let dir = fresh_dir () in
    Interp.Eval.provide_input ~dir "ssh.data" cube;
    Runtime.Rc.reset ();
    ignore
      (run_ok ~c:full ~dir ~optimize Eddy.Programs.fig1_with_slice_copy);
    (Runtime.Rc.stats ()).Runtime.Rc.allocs
  in
  let with_opt = count_allocs ~optimize:true in
  let without_opt = count_allocs ~optimize:false in
  Alcotest.(check bool)
    (Printf.sprintf "copy-elim allocates less (%d < %d)" with_opt without_opt)
    true (with_opt < without_opt)

(* --- indexing through the translator -------------------------------------------------- *)

let test_indexing_modes_via_programs () =
  let src =
    {|
int main() {
  Matrix int <1> v = init(Matrix int <1>, 6);
  for (int i = 0; i < 6; i++) { v[i] = i * 10; }
  Matrix int <1> odd = v[v % 20 == 10];
  Matrix int <1> head = v[0::2];
  Matrix int <2> m = init(Matrix int <2>, 3, 4);
  for (int i = 0; i < 3; i++) {
    for (int j = 0; j < 4; j++) { m[i, j] = i * 4 + j; }
  }
  Matrix int <1> row = m[1, :];
  Matrix int <1> lastcol = m[:, end];
  writeMatrix("odd.data", odd);
  writeMatrix("head.data", head);
  writeMatrix("row.data", row);
  writeMatrix("lastcol.data", lastcol);
  return 0;
}
|}
  in
  let dir = fresh_dir () in
  Runtime.Rc.reset ();
  ignore (run_ok ~c:full ~dir src);
  Alcotest.(check int) "no leaks" 0 (Runtime.Rc.live_count ());
  let fetch n = Interp.Eval.fetch_output ~dir n in
  let ndt = Alcotest.testable Nd.pp Nd.equal in
  Alcotest.check ndt "logical indexing" (Nd.vec_i [ 10; 30; 50 ]) (fetch "odd.data");
  Alcotest.check ndt "range indexing" (Nd.vec_i [ 0; 10; 20 ]) (fetch "head.data");
  Alcotest.check ndt "whole row" (Nd.vec_i [ 4; 5; 6; 7 ]) (fetch "row.data");
  Alcotest.check ndt "end column" (Nd.vec_i [ 3; 7; 11 ]) (fetch "lastcol.data")

let test_matrix_ops_via_programs () =
  let src =
    {|
int main() {
  Matrix float <2> a = init(Matrix float <2>, 2, 3);
  Matrix float <2> b = init(Matrix float <2>, 3, 2);
  for (int i = 0; i < 2; i++) {
    for (int j = 0; j < 3; j++) { a[i, j] = (float)(i * 3 + j + 1); }
  }
  for (int i = 0; i < 3; i++) {
    for (int j = 0; j < 2; j++) { b[i, j] = (float)(i * 2 + j + 7); }
  }
  Matrix float <2> c = a * b;
  Matrix float <2> d = a .* a;
  Matrix float <2> e = a + 1.0;
  Matrix float <2> f = 2.0 * a;
  writeMatrix("c.data", c);
  writeMatrix("d.data", d);
  writeMatrix("e.data", e);
  writeMatrix("f.data", f);
  return 0;
}
|}
  in
  let dir = fresh_dir () in
  Runtime.Rc.reset ();
  ignore (run_ok ~c:full ~dir src);
  Alcotest.(check int) "no leaks" 0 (Runtime.Rc.live_count ());
  let fetch n = Interp.Eval.fetch_output ~dir n in
  let ndt = Alcotest.testable Nd.pp Nd.equal in
  Alcotest.check ndt "matmul"
    (Nd.of_float_array [| 2; 2 |] [| 58.; 64.; 139.; 154. |])
    (fetch "c.data");
  Alcotest.check ndt "elementwise .*"
    (Nd.of_float_array [| 2; 3 |] [| 1.; 4.; 9.; 16.; 25.; 36. |])
    (fetch "d.data");
  Alcotest.check ndt "matrix + scalar"
    (Nd.of_float_array [| 2; 3 |] [| 2.; 3.; 4.; 5.; 6.; 7. |])
    (fetch "e.data");
  Alcotest.check ndt "scalar * matrix"
    (Nd.of_float_array [| 2; 3 |] [| 2.; 4.; 6.; 8.; 10.; 12. |])
    (fetch "f.data")

let test_fold_variants () =
  let src =
    {|
int main() {
  Matrix int <1> v = init(Matrix int <1>, 5);
  for (int i = 0; i < 5; i++) { v[i] = i + 1; }
  int s = with ([0] <= [i] < [5]) fold (+, 0, v[i]);
  int pr = with ([0] <= [i] < [5]) fold (*, 1, v[i]);
  int mn = with ([0] <= [i] < [5]) fold (min, 999, v[i]);
  int mx = with ([0] <= [i] < [5]) fold (max, -999, v[i]);
  return s * 1000000 + pr * 1000 + mn * 100 + mx;
}
|}
  in
  match run_ok ~c:full src with
  | Interp.Eval.VScal (S.I r) ->
      Alcotest.(check int) "sum/prod/min/max" ((15 * 1000000) + (120 * 1000) + 100 + 5) r
  | v -> Alcotest.failf "got %a" Interp.Eval.pp_value v

let test_generator_bounds_variants () =
  (* non-zero lower bounds and <= upper bounds *)
  let src =
    {|
int main() {
  int s1 = with ([2] <= [i] < [5]) fold (+, 0, i);
  int s2 = with ([2] <= [i] <= [5]) fold (+, 0, i);
  int s3 = with ([0] < [i] < [4]) fold (+, 0, i);
  return s1 * 10000 + s2 * 100 + s3;
}
|}
  in
  match run_ok ~c:full src with
  | Interp.Eval.VScal (S.I r) ->
      Alcotest.(check int) "bounds semantics" ((9 * 10000) + (14 * 100) + 6) r
  | v -> Alcotest.failf "got %a" Interp.Eval.pp_value v

let test_genarray_subset_region () =
  (* "the shape in the operation must be a superset of the indexes in the
     generator … the programmer can perform these operations on subsets of
     a matrix" — untouched cells are 0. *)
  let src =
    {|
int main() {
  Matrix int <2> m = with ([1,1] <= [i,j] < [3,3]) genarray([4,4], i * 10 + j);
  writeMatrix("m.data", m);
  return 0;
}
|}
  in
  let dir = fresh_dir () in
  ignore (run_ok ~c:full ~dir src);
  let m = Interp.Eval.fetch_output ~dir "m.data" in
  Alcotest.(check (array int)) "shape" [| 4; 4 |] (Nd.shape m);
  Alcotest.(check bool) "inside region" true
    (S.equal (Nd.get m [| 2; 1 |]) (S.I 21));
  Alcotest.(check bool) "outside region zero" true
    (S.equal (Nd.get m [| 0; 0 |]) (S.I 0)
    && S.equal (Nd.get m [| 3; 3 |]) (S.I 0))

let suite =
  [
    Alcotest.test_case "composition reports pass" `Quick test_composition_reports;
    Alcotest.test_case "tuples fails isComposable (paper §VI-A)" `Quick
      test_tuples_fails_iscomposable;
    Alcotest.test_case "composition theorem on real extensions" `Quick
      test_composition_theorem_subsets;
    Alcotest.test_case "extension keywords usable as identifiers" `Quick
      test_keywords_usable_as_identifiers;
    Alcotest.test_case "plain C unaffected by extensions" `Quick
      test_plain_c_unaffected;
    Alcotest.test_case "matrix syntax requires extension" `Quick
      test_matrix_syntax_requires_extension;
    Alcotest.test_case "host-language programs" `Quick test_host_programs;
    Alcotest.test_case "tuples (host-packaged)" `Quick test_tuples_host_packaged;
    Alcotest.test_case "domain-specific semantic errors" `Quick
      test_semantic_errors;
    Alcotest.test_case "Fig 3 golden C" `Quick test_fig3_golden_c;
    Alcotest.test_case "Fig 10/11 golden C" `Quick test_fig10_fig11_golden_c;
    Alcotest.test_case "Fig 1 runs (oracle + no leaks)" `Quick test_fig1_run;
    Alcotest.test_case "Fig 9 transformed run" `Quick test_fig9_run_matches_fig1;
    Alcotest.test_case "Fig 1 parallel run (pool)" `Quick test_fig1_parallel_run;
    Alcotest.test_case "library-style (unfused) lowering" `Quick
      test_fig1_unfused_matches;
    Alcotest.test_case "Fig 8 eddy scoring vs oracle" `Quick test_fig8_run_vs_oracle;
    Alcotest.test_case "Fig 4 connComp vs union-find" `Quick test_fig4_run_vs_oracle;
    Alcotest.test_case "slice-copy elimination (§III-A5)" `Quick
      test_slice_copy_elimination;
    Alcotest.test_case "indexing modes via programs" `Quick
      test_indexing_modes_via_programs;
    Alcotest.test_case "matrix operators via programs" `Quick
      test_matrix_ops_via_programs;
    Alcotest.test_case "fold operators" `Quick test_fold_variants;
    Alcotest.test_case "generator bound variants" `Quick
      test_generator_bounds_variants;
    Alcotest.test_case "genarray subset region" `Quick test_genarray_subset_region;
  ]

let _ = matrix_only
