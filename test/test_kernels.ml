(* Kernel-level correctness for the parallel cache-blocked runtime
   (§III-C): the blocked/parallel matmul against the naive triple-loop
   oracle over hundreds of random shapes, parallel elementwise and
   reduction parity with the sequential paths, pool scheduling edge
   cases (chunking, nesting, exceptions, degenerate pools), and a
   differential pool-vs-no-pool pass over every paper program.

   Randomized cases use seeded [Random.State] PRNGs so every run sees
   the same shapes. *)

module Nd = Runtime.Ndarray
module Pool = Runtime.Pool
module S = Runtime.Scalar
module T = Support.Telemetry

let nd = Alcotest.testable Nd.pp Nd.equal

let full = Driver.compose [ Driver.matrix; Driver.transform; Driver.refptr ]

let fresh_dir () =
  let d = Filename.temp_file "mmkern" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

(* Temporarily lower the pool-dispatch grain so matrices of a few hundred
   elements exercise the parallel kernels. *)
let with_grain g f =
  let saved = Nd.get_par_grain () in
  Nd.set_par_grain g;
  Fun.protect ~finally:(fun () -> Nd.set_par_grain saved) f

let rand_float_mat st sh =
  Nd.init_float sh (fun _ -> Random.State.float st 20. -. 10.)

let rand_int_mat st sh =
  Nd.init_int sh (fun _ -> Random.State.int st 41 - 20)

(* --- blocked matmul vs the naive oracle -------------------------------------- *)

(* ~200 random shapes, block sizes deliberately not dividing the matrix
   extents, alternating pool/no-pool dispatch.  Float results are
   tolerance-compared (the l-tiling reassociates the dot products); int
   addition is associative, so int results must be bit-for-bit. *)
let test_matmul_oracle_random () =
  let st = Random.State.make [| 0xB10C; 42 |] in
  let blocks = [| 1; 2; 3; 5; 8; 48 |] in
  Pool.with_pool 4 @@ fun pool ->
  for trial = 1 to 100 do
    let m = 1 + Random.State.int st 33
    and k = 1 + Random.State.int st 33
    and n = 1 + Random.State.int st 33 in
    let block = blocks.(Random.State.int st (Array.length blocks)) in
    let pool = if trial mod 2 = 0 then Some pool else None in
    let a = rand_float_mat st [| m; k |] and b = rand_float_mat st [| k; n |] in
    let expect = Nd.matmul_naive a b in
    let got = Nd.matmul_blocked ?pool ~block a b in
    if not (Nd.approx_equal ~eps:1e-9 expect got) then
      Alcotest.failf "float %dx%dx%d block=%d: blocked result diverges" m k n
        block;
    let ai = rand_int_mat st [| m; k |] and bi = rand_int_mat st [| k; n |] in
    Alcotest.check nd
      (Printf.sprintf "int %dx%dx%d block=%d bit-for-bit" m k n block)
      (Nd.matmul_naive ai bi)
      (Nd.matmul_blocked ?pool ~block ai bi)
  done

(* The [matmul] dispatcher at a size over the parallel threshold: row
   blocks really go through the pool and still match the oracle. *)
let test_matmul_parallel_dispatch () =
  let st = Random.State.make [| 7; 7; 7 |] in
  let s = 70 in
  (* s^3 > 2^18 *)
  let a = rand_float_mat st [| s; s |] and b = rand_float_mat st [| s; s |] in
  let expect = Nd.matmul_naive a b in
  Pool.with_pool 4 (fun pool ->
      Alcotest.(check bool)
        "pooled matmul matches naive" true
        (Nd.approx_equal ~eps:1e-9 expect (Nd.matmul ~pool a b)));
  let ai = rand_int_mat st [| s; s |] and bi = rand_int_mat st [| s; s |] in
  Pool.with_pool 4 (fun pool ->
      Alcotest.check nd "pooled int matmul bit-for-bit"
        (Nd.matmul_naive ai bi) (Nd.matmul ~pool ai bi))

let test_matmul_errors () =
  let v = Nd.of_float_array [| 3 |] [| 1.; 2.; 3. |] in
  let a = Nd.of_float_array [| 2; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  Alcotest.check_raises "rank"
    (Runtime.Shape.Shape_error
       "matrix multiplication requires rank 2, got [3] and [3]")
    (fun () -> ignore (Nd.matmul v v));
  Alcotest.check_raises "inner dims"
    (Runtime.Shape.Shape_error
       "matrix multiplication inner dimensions: [2x3] vs [2x3]")
    (fun () -> ignore (Nd.matmul a a));
  Alcotest.check_raises "blocked kernel validates too"
    (Runtime.Shape.Shape_error
       "matrix multiplication inner dimensions: [2x3] vs [2x3]")
    (fun () -> ignore (Nd.matmul_blocked a a));
  let bm = Nd.of_bool_array [| 1; 1 |] [| true |] in
  Alcotest.check_raises "boolean"
    (Nd.Type_error "matrix multiplication on boolean matrices")
    (fun () -> ignore (Nd.matmul bm bm))

(* --- parallel elementwise parity ---------------------------------------------- *)

(* Elementwise maps are order-independent: the pooled kernels must be
   bit-for-bit identical to the sequential ones, floats included. *)
let test_elementwise_parity () =
  let st = Random.State.make [| 0xE1E; 9 |] in
  with_grain 64 @@ fun () ->
  Pool.with_pool 4 @@ fun pool ->
  for _ = 1 to 25 do
    let sh = [| 1 + Random.State.int st 20; 1 + Random.State.int st 30 |] in
    let a = rand_float_mat st sh and b = rand_float_mat st sh in
    List.iter
      (fun op ->
        Alcotest.check nd "float arith" (Nd.arith op a b)
          (Nd.arith ~pool op a b))
      [ S.Add; S.Sub; S.Mul; S.Div ];
    let ai = rand_int_mat st sh in
    let bi = Nd.init_int sh (fun _ -> 1 + Random.State.int st 9) in
    List.iter
      (fun op ->
        Alcotest.check nd "int arith" (Nd.arith op ai bi)
          (Nd.arith ~pool op ai bi))
      [ S.Add; S.Sub; S.Mul; S.Div; S.Mod ];
    List.iter
      (fun op ->
        Alcotest.check nd "float cmp" (Nd.cmp op a b) (Nd.cmp ~pool op a b);
        Alcotest.check nd "int cmp" (Nd.cmp op ai bi) (Nd.cmp ~pool op ai bi))
      [ S.Lt; S.Le; S.Gt; S.Ge; S.Eq; S.Ne ];
    List.iter
      (fun scalar_left ->
        Alcotest.check nd "arith_scalar"
          (Nd.arith_scalar S.Mul a (S.F 1.5) ~scalar_left)
          (Nd.arith_scalar ~pool S.Mul a (S.F 1.5) ~scalar_left);
        Alcotest.check nd "int-matrix float-scalar"
          (Nd.arith_scalar S.Add ai (S.F 0.5) ~scalar_left)
          (Nd.arith_scalar ~pool S.Add ai (S.F 0.5) ~scalar_left);
        Alcotest.check nd "cmp_scalar"
          (Nd.cmp_scalar S.Lt a (S.F 0.) ~scalar_left)
          (Nd.cmp_scalar ~pool S.Lt a (S.F 0.) ~scalar_left))
      [ true; false ];
    let ma = Nd.cmp_scalar S.Gt a (S.F 0.) ~scalar_left:false in
    let mb = Nd.cmp_scalar S.Gt b (S.F 0.) ~scalar_left:false in
    Alcotest.check nd "logic and" (Nd.logic S.And ma mb)
      (Nd.logic ~pool S.And ma mb);
    Alcotest.check nd "logic or" (Nd.logic S.Or ma mb)
      (Nd.logic ~pool S.Or ma mb);
    Alcotest.check nd "not" (Nd.not_ ma) (Nd.not_ ~pool ma);
    Alcotest.check nd "neg float" (Nd.neg a) (Nd.neg ~pool a);
    Alcotest.check nd "neg int" (Nd.neg ai) (Nd.neg ~pool ai)
  done

(* Error semantics survive the fast paths, sequential and pooled. *)
let test_elementwise_errors () =
  with_grain 4 @@ fun () ->
  Pool.with_pool 2 @@ fun pool ->
  let z = Nd.of_int_array [| 4 |] [| 1; 0; 2; 3 |] in
  let o = Nd.of_int_array [| 4 |] [| 9; 9; 9; 9 |] in
  Alcotest.check_raises "div by zero (seq)"
    (S.Type_error "integer division by zero") (fun () ->
      ignore (Nd.arith S.Div o z));
  Alcotest.check_raises "div by zero (pool)"
    (S.Type_error "integer division by zero") (fun () ->
      ignore (Nd.arith ~pool S.Div o z));
  Alcotest.check_raises "mod by zero"
    (S.Type_error "modulo by zero") (fun () ->
      ignore (Nd.arith ~pool S.Mod o z));
  let f = Nd.of_float_array [| 2 |] [| 1.; 2. |] in
  Alcotest.check_raises "float mod"
    (S.Type_error "% requires integer operands") (fun () ->
      ignore (Nd.arith ~pool S.Mod f f));
  let b = Nd.of_bool_array [| 2 |] [| true; false |] in
  Alcotest.check_raises "bool arith"
    (Nd.Type_error "arithmetic on boolean matrices") (fun () ->
      ignore (Nd.arith ~pool S.Add b b))

(* --- parallel reductions -------------------------------------------------------- *)

let test_reduction_parity () =
  let st = Random.State.make [| 0x5EED |] in
  with_grain 100 @@ fun () ->
  Pool.with_pool 4 @@ fun pool ->
  for _ = 1 to 20 do
    let n = 1 + Random.State.int st 5_000 in
    let v = rand_float_mat st [| n |] in
    let seq = Nd.sum_float v and par = Nd.sum_float ~pool v in
    (* per-thread partials reassociate the float sum: tolerance, scaled *)
    let scale = max 1. (abs_float seq) in
    if abs_float (seq -. par) > 1e-9 *. scale then
      Alcotest.failf "sum_float diverges: %.17g vs %.17g (n=%d)" seq par n;
    let vi = rand_int_mat st [| n |] in
    let si = Nd.sum_float vi and pi = Nd.sum_float ~pool vi in
    Alcotest.(check (float 0.)) "int sum exact" si pi;
    let mask = Nd.cmp_scalar S.Gt vi (S.I 0) ~scalar_left:false in
    Alcotest.(check int) "count_true exact" (Nd.count_true mask)
      (Nd.count_true ~pool mask)
  done

let test_parallel_fold () =
  Pool.with_pool 3 @@ fun pool ->
  let n = 10_000 in
  let expect = n * (n - 1) / 2 in
  let got =
    Pool.parallel_fold pool 0 n ~init:0 ~body:(fun acc i -> acc + i)
      ~combine:( + )
  in
  Alcotest.(check int) "sum 0..n-1" expect got;
  Alcotest.(check int) "empty fold returns init" 42
    (Pool.parallel_fold pool 9 3 ~init:42 ~body:(fun _ _ -> 0) ~combine:( + ));
  Alcotest.(check int) "grain keeps small folds inline" 6
    (Pool.parallel_fold ~grain:100 pool 0 4 ~init:0 ~body:(fun a i -> a + i)
       ~combine:( + ))

(* --- pool scheduling edge cases -------------------------------------------------- *)

(* Every index visited exactly once, for both chunking policies, a spread
   of grains and bounds (including non-zero lo). *)
let test_chunked_coverage () =
  Pool.with_pool 4 @@ fun pool ->
  List.iter
    (fun chunking ->
      List.iter
        (fun (lo, hi, grain) ->
          let n = max 0 (hi - lo) in
          let hits = Array.make (max 1 n) 0 in
          Pool.parallel_for ~chunking ~grain pool lo hi (fun i ->
              hits.(i - lo) <- hits.(i - lo) + 1);
          Array.iteri
            (fun i c ->
              if n > 0 && c <> 1 then
                Alcotest.failf "index %d visited %d times (lo=%d hi=%d grain=%d)"
                  (i + lo) c lo hi grain)
            hits)
        [ (0, 1_000, 1); (13, 977, 7); (0, 5, 1_000); (0, 1, 1); (5, 5, 1); (9, 3, 1) ])
    [ Pool.Static; Pool.Guided ];
  (* ranges variant: chunks tile [lo, hi) without gap or overlap *)
  let seen = Array.make 500 0 in
  Pool.parallel_for_ranges ~chunking:Pool.Guided ~grain:16 pool 0 500
    (fun lo hi ->
      for i = lo to hi - 1 do
        seen.(i) <- seen.(i) + 1
      done);
  Alcotest.(check bool) "guided ranges tile exactly" true
    (Array.for_all (fun c -> c = 1) seen)

let test_pool_degenerate () =
  Alcotest.check_raises "create 0"
    (Invalid_argument "Pool.create: need at least one thread") (fun () ->
      ignore (Pool.create 0));
  Pool.with_pool 1 (fun pool ->
      Alcotest.(check int) "1-thread pool" 1 (Pool.threads pool);
      let sum = ref 0 in
      Pool.parallel_for pool 0 100 (fun i -> sum := !sum + i);
      Alcotest.(check int) "inline execution" 4950 !sum);
  Pool.with_pool 4 (fun pool ->
      let hit = ref false in
      Pool.parallel_for pool 3 3 (fun _ -> hit := true);
      Pool.parallel_for pool 7 2 (fun _ -> hit := true);
      Alcotest.(check bool) "empty ranges never run the body" false !hit)

(* A parallel op issued from inside a worker's share must not deadlock on
   the single job slot: it executes inline in the outer region. *)
let test_nested_dispatch () =
  Pool.with_pool 4 @@ fun pool ->
  let outer = Pool.threads pool in
  let counts = Array.make (outer * 100) 0 in
  Pool.run pool (fun t _n ->
      Pool.parallel_for pool 0 100 (fun i ->
          let c = (t * 100) + i in
          counts.(c) <- counts.(c) + 1));
  Alcotest.(check bool) "every nested iteration ran exactly once" true
    (Array.for_all (fun c -> c = 1) counts)

exception Chunk_boom

let test_exception_mid_chunk () =
  Printexc.record_backtrace true;
  Pool.with_pool 4 @@ fun pool ->
  let raised =
    match
      Pool.parallel_for ~chunking:Pool.Guided pool 0 10_000 (fun i ->
          if i = 7_777 then raise Chunk_boom)
    with
    | () -> false
    | exception Chunk_boom -> true
  in
  Alcotest.(check bool) "exception escapes the region" true raised;
  (* the pool must be fully reusable after a failed region *)
  let sum = ref 0 in
  let cell = Atomic.make 0 in
  Pool.parallel_for pool 0 1_000 (fun _ -> Atomic.incr cell);
  sum := Atomic.get cell;
  Alcotest.(check int) "pool reusable after exception" 1_000 !sum

(* --- kernel telemetry ------------------------------------------------------------ *)

let test_kernel_counters () =
  T.reset ();
  T.set_enabled true;
  Fun.protect ~finally:(fun () ->
      T.set_enabled false;
      T.reset ())
  @@ fun () ->
  let a = Nd.init_float [| 20; 20 |] (fun ix -> float_of_int ix.(0)) in
  ignore (Nd.matmul a a);
  (* 20*20*20 = 8000 >= block threshold -> blocked kernel *)
  Alcotest.(check (option int)) "matmul_blocked counted" (Some 1)
    (List.assoc_opt "kernel.matmul_blocked" (T.counters ()));
  Pool.with_pool 2 (fun pool -> Pool.parallel_for ~grain:8 pool 0 100 ignore);
  match List.assoc_opt "pool.chunks_dispatched" (T.counters ()) with
  | Some c when c >= 1 -> ()
  | v ->
      Alcotest.failf "pool.chunks_dispatched expected >= 1, got %s"
        (match v with None -> "none" | Some c -> string_of_int c)

(* --- differential: every paper program, pool vs no pool --------------------------- *)

(* Planted trough signature (Fig 7) so Fig 8's scoring walks real series. *)
let trough_cube =
  let ts k =
    let fk = float_of_int k in
    if k < 10 then 1.0 +. (0.01 *. fk)
    else if k < 20 then 1.1 -. (0.1 *. (fk -. 10.))
    else if k < 30 then 0.1 +. (0.1 *. (fk -. 20.))
    else 1.1 -. (0.005 *. (fk -. 30.))
  in
  lazy (Nd.init_float [| 3; 4; 40 |] (fun ix -> ts ix.(2)))

(* An SSH field with actual eddies (values below the -0.25 threshold) so
   Fig 4's connected components labels something. *)
let eddy_inputs =
  lazy
    (let cube, _ = Eddy.Ssh_gen.generate ~lat:10 ~lon:12 ~time:3 ~n_eddies:2 ~seed:11 () in
     let dates = Nd.init_int [| 3 |] (fun ix -> 1012000 + ix.(0)) in
     (cube, dates))

let run_differential ?pool ~inputs ~outputs src =
  let dir = fresh_dir () in
  List.iter (fun (name, m) -> Interp.Eval.provide_input ~dir name m) inputs;
  Runtime.Rc.reset ();
  (match Driver.run ~dir ?pool ~config:(Driver.config_of_flags ~auto_par:true full) full src [] with
  | Driver.Ok_ _ -> ()
  | Driver.Failed ds ->
      Alcotest.failf "differential run failed: %s" (Driver.diags_to_string ds));
  let leaks = Runtime.Rc.live_count () in
  (List.map (fun name -> Interp.Eval.fetch_output ~dir name) outputs, leaks)

let differential_programs () =
  let cube = Lazy.force trough_cube in
  let eddy_cube, dates = Lazy.force eddy_inputs in
  [
    ("fig1", Eddy.Programs.fig1_temporal_mean, [ ("ssh.data", cube) ],
     [ "means.data" ]);
    ("fig9 transformed", Eddy.Programs.fig9_transformed,
     [ ("ssh.data", cube) ], [ "means.data" ]);
    (* tile/interchange scripts need a perfect For nest, which auto-par's
       ParFor outer loop is not — the split+unroll script transforms the
       inner fold loop and composes with parallel lowering *)
    ("fig9 split+unroll",
     Eddy.Programs.fig9_with_script "split k by 4, kin, kout. unroll kin by 4",
     [ ("ssh.data", cube) ], [ "means.data" ]);
    ("fig1 slice copy", Eddy.Programs.fig1_with_slice_copy,
     [ ("ssh.data", cube) ], [ "means.data" ]);
    ("fig8", Eddy.Programs.fig8_scoring, [ ("ssh.data", cube) ],
     [ "temporalScores.data" ]);
    ("fig4", Eddy.Programs.fig4_conncomp,
     [ ("ssh.data", eddy_cube); ("dates.data", dates) ],
     [ "eddyLabels.data" ]);
  ]

(* Scheduling must be unobservable: with auto-par lowering on both sides,
   a 4-worker pool and no pool at all must produce identical outputs
   (bit-for-bit — parallel regions only ever write disjoint elements). *)
let test_differential_pool_vs_none () =
  Pool.with_pool 4 @@ fun pool ->
  List.iter
    (fun (label, src, inputs, outputs) ->
      let seq, leaks_seq = run_differential ~inputs ~outputs src in
      let par, leaks_par = run_differential ~pool ~inputs ~outputs src in
      List.iter2
        (fun a b ->
          Alcotest.check nd (label ^ ": pool output identical") a b)
        seq par;
      Alcotest.(check int) (label ^ ": no leaks (seq)") 0 leaks_seq;
      Alcotest.(check int) (label ^ ": no leaks (pool)") 0 leaks_par)
    (differential_programs ())

(* The examples/ program (a fold with-loop over a vector) returns through
   the interpreter value, not a written matrix. *)
let test_differential_example_program () =
  let src =
    {|
int main() {
  Matrix int <1> v = init(Matrix int <1>, 8);
  for (int i = 0; i < 8; i++) { v[i] = i; }
  int total = with ([0] <= [i] < [8]) fold (+, 0, v[i]);
  return total;
}
|}
  in
  let run ?pool () =
    match Driver.run ?pool ~config:(Driver.config_of_flags ~auto_par:true full) full src [] with
    | Driver.Ok_ (Interp.Eval.VScal (S.I n)) -> n
    | Driver.Ok_ v ->
        Alcotest.failf "unexpected value %a" Interp.Eval.pp_value v
    | Driver.Failed ds -> Alcotest.failf "%s" (Driver.diags_to_string ds)
  in
  let seq = run () in
  let par = Pool.with_pool 4 (fun pool -> run ~pool ()) in
  Alcotest.(check int) "example program value" 28 seq;
  Alcotest.(check int) "pool matches" seq par

let suite =
  [
    Alcotest.test_case "blocked matmul vs oracle (random shapes)" `Quick
      test_matmul_oracle_random;
    Alcotest.test_case "matmul parallel row dispatch" `Quick
      test_matmul_parallel_dispatch;
    Alcotest.test_case "matmul error cases" `Quick test_matmul_errors;
    Alcotest.test_case "parallel elementwise bit-for-bit" `Quick
      test_elementwise_parity;
    Alcotest.test_case "elementwise error semantics" `Quick
      test_elementwise_errors;
    Alcotest.test_case "parallel reductions" `Quick test_reduction_parity;
    Alcotest.test_case "parallel_fold" `Quick test_parallel_fold;
    Alcotest.test_case "chunked scheduling coverage" `Quick
      test_chunked_coverage;
    Alcotest.test_case "degenerate pools" `Quick test_pool_degenerate;
    Alcotest.test_case "nested dispatch from a worker" `Quick
      test_nested_dispatch;
    Alcotest.test_case "exception mid-chunk, pool reusable" `Quick
      test_exception_mid_chunk;
    Alcotest.test_case "kernel telemetry counters" `Quick
      test_kernel_counters;
    Alcotest.test_case "differential: programs, pool vs none" `Quick
      test_differential_pool_vs_none;
    Alcotest.test_case "differential: example fold program" `Quick
      test_differential_example_program;
  ]
