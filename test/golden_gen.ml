(* Regenerates the pipeline-equivalence oracle under test/golden/.

   The fixtures were blessed from the pre-pass-pipeline compiler (the
   monolithic lowering that applied fuse/copy-elim/auto-par while
   building the CIR); the staged pass pipeline must reproduce them
   byte-for-byte under the default pass order.  Rerun only when the
   *intended* output changes:

     dune exec test/golden_gen.exe -- test/golden

   Each corpus entry <name> gets <name>.mc (source), <name>.par.c /
   <name>.seq.c (emitted C with auto-par on/off, fuse and copy-elim at
   their defaults).  Self-contained programs (no readMatrix) also get
   <name>.out — the interpreter result.  transform_tiling additionally
   gets .explain (the default `mmc explain` remark table with caret
   excerpts). *)

let all4 =
  Driver.compose
    [ Driver.matrix; Driver.transform; Driver.refptr; Driver.cilk ]

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let write path text =
  Out_channel.with_open_bin path (fun oc -> output_string oc text)

let emit ~auto_par src =
  let config = Driver.config_of_flags ~auto_par all4 in
  match Driver.compile_to_c ~config all4 src with
  | Driver.Ok_ text -> text
  | Driver.Failed ds -> die "emit failed: %s" (Driver.diags_to_string ds)

let run_result src =
  let config = Driver.config_of_flags ~auto_par:true all4 in
  match Driver.run ~config all4 src [] with
  | Driver.Ok_ v -> Fmt.str "%a" Interp.Eval.pp_value v
  | Driver.Failed ds -> die "run failed: %s" (Driver.diags_to_string ds)

let explain_text src =
  (* explain defaults to the explain config: auto-par on. *)
  match Driver.explain all4 src with
  | Driver.Ok_ _, report -> Driver.Explain_report.to_string ~src report
  | Driver.Failed ds, _ ->
      die "explain failed: %s" (Driver.diags_to_string ds)

(* --- deterministic random shapes -------------------------------------- *)

(* Tiny structured generator (NOT QCheck: the .mc sources are committed,
   so the generator only has to be deterministic at blessing time). *)
let rand_prog i =
  Random.init (4242 + i);
  let size () = 3 + Random.int 5 in
  let fconst () = Printf.sprintf "%d.%df" (Random.int 4) (Random.int 10) in
  let op () = match Random.int 3 with 0 -> "+" | 1 -> "-" | _ -> "*" in
  let m = size () and n = size () in
  match i mod 3 with
  | 0 ->
      (* elementwise chain + matmul + fold *)
      Printf.sprintf
        {|
int main() {
  int m = %d;
  int n = %d;
  Matrix float <2> a = init(Matrix float <2>, m, n);
  a = with ([0,0] <= [i,j] < [m,n]) genarray ([m,n], (float)(i %s j) + %s);
  Matrix float <2> b = a %s %s;
  Matrix float <2> c = init(Matrix float <2>, m, m);
  c = a * (with ([0,0] <= [i,j] < [n,m]) genarray ([n,m], b[j, i]));
  float t = with ([0,0] <= [i,j] < [m,m]) fold (+, 0f, c[i, j]);
  return (int) t;
}
|}
        m n (op ()) (fconst ()) (op ()) (fconst ())
  | 1 ->
      (* identity slice + transform script + fold *)
      let script =
        match Random.int 3 with
        | 0 -> "split j by 2, jin, jout"
        | 1 -> "interchange i, j"
        | _ -> "parallelize j"
      in
      Printf.sprintf
        {|
int main() {
  int m = %d;
  int n = %d;
  Matrix float <2> g = init(Matrix float <2>, m, n);
  g = with ([0,0] <= [i,j] < [m,n]) genarray ([m,n], (float) (i * n + j))
    transform %s;
  Matrix float <2> view = g[:, :];
  float t = with ([0,0] <= [i,j] < [m,n]) fold (+, 0f, view[i, j] %s %s);
  return (int) t;
}
|}
        m n script (op ()) (fconst ())
  | _ ->
      (* helper function (rc traffic, call temp) + row slice + fold *)
      Printf.sprintf
        {|
float rowSum(Matrix float <2> g, int i) {
  Matrix float <1> row = g[i, :];
  int n = dimSize(row, 0);
  return with ([0] <= [k] < [n]) fold (+, 0f, row[k] + %s);
}

int main() {
  int m = %d;
  int n = %d;
  Matrix float <2> g = init(Matrix float <2>, m, n);
  g = with ([0,0] <= [i,j] < [m,n]) genarray ([m,n], (float)(i %s j));
  Matrix float <1> sums = init(Matrix float <1>, m);
  sums = with ([0] <= [i] < [m]) genarray ([m], rowSum(g, i));
  return (int)(with ([0] <= [i] < [m]) fold (+, 0f, sums[i]));
}
|}
        (fconst ()) m n (op ())

(* --- corpus ------------------------------------------------------------ *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/golden" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let bless ?(runnable = false) name src =
    write (Filename.concat dir (name ^ ".mc")) src;
    write (Filename.concat dir (name ^ ".par.c")) (emit ~auto_par:true src);
    write (Filename.concat dir (name ^ ".seq.c")) (emit ~auto_par:false src);
    if runnable then
      write (Filename.concat dir (name ^ ".out")) (run_result src);
    Printf.printf "blessed %s\n%!" name
  in
  bless "fig1_temporal_mean" Eddy.Programs.fig1_temporal_mean;
  bless "fig9_transformed" Eddy.Programs.fig9_transformed;
  bless "fig9_interchange" (Eddy.Programs.fig9_with_script "interchange i, j");
  bless "fig9_tile" (Eddy.Programs.fig9_with_script "tile i, j by 4");
  bless "fig4_conncomp" Eddy.Programs.fig4_conncomp;
  bless "fig8_scoring" Eddy.Programs.fig8_scoring;
  bless "fig1_with_slice_copy" Eddy.Programs.fig1_with_slice_copy;
  let tiling = read_file "examples/transform_tiling.mc" in
  bless ~runnable:true "transform_tiling" tiling;
  write (Filename.concat dir "transform_tiling.explain") (explain_text tiling);
  bless "eddy_energy" (read_file "examples/eddy_energy.mc");
  for i = 0 to 19 do
    bless ~runnable:true (Printf.sprintf "rand%02d" i) (rand_prog i)
  done
