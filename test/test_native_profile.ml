(* Native-backend observability: `mmc profile --native` must speak the
   same report language as the interpreter profiler — identical JSON
   schema, a span set that covers every span the interpreter attributes,
   >= 90% of native wall time attributed on the acceptance program — and
   the plumbing around it must hold: instrumented binaries occupy their
   own cache slots, exec exports compile/run telemetry gauges, --keep-c
   materialises the profiling runtime and honours #line directives.

   Every case needing a real compiler probes first and skips visibly
   when none is available (same convention as test_native). *)

module Nd = Runtime.Ndarray
module P = Support.Profile
module J = Support.Json
module R = Driver.Profile_report

let full = Driver.compose [ Driver.matrix; Driver.transform; Driver.refptr ]

let fresh_dir () =
  let d = Filename.temp_file "mmnatp" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

(* One cache for the whole suite, like test_native's. *)
let suite_cache = lazy (fresh_dir ())

let ensure_cc () =
  match Native.Toolchain.probe () with
  | Ok tc -> tc
  | Error e ->
      Printf.printf "SKIP: no C compiler (%s)\n%!"
        (Native.Toolchain.describe_error e);
      Alcotest.skip ()

let is_infix ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let example name =
  In_channel.with_open_text (Filename.concat "../examples" name)
    In_channel.input_all

let cube3 m n p =
  Nd.init_float [| m; n; p |] (fun ix ->
      float_of_int ((100 * ix.(0)) + (10 * ix.(1)))
      +. (0.5 *. float_of_int ix.(2)))

(* Fig 7's planted trough, so fig8's scoring loops execute. *)
let trough_cube () =
  let ts k =
    let fk = float_of_int k in
    if k < 10 then 1.0 +. (0.01 *. fk)
    else if k < 20 then 1.1 -. (0.1 *. (fk -. 10.))
    else if k < 30 then 0.1 +. (0.1 *. (fk -. 20.))
    else 1.1 -. (0.005 *. (fk -. 30.))
  in
  Nd.init_float [| 2; 3; 40 |] (fun ix -> ts ix.(2))

(* The differential corpus: program name, source, inputs. *)
let corpus () =
  [
    ("fig1", Eddy.Programs.fig1_temporal_mean, [ ("ssh.data", cube3 3 5 7) ]);
    ("fig9", Eddy.Programs.fig9_transformed, [ ("ssh.data", cube3 4 12 6) ]);
    ("fig8", Eddy.Programs.fig8_scoring, [ ("ssh.data", trough_cube ()) ]);
    ("eddy_energy", example "eddy_energy.mc", []);
  ]

(* Both profiles of one program, lowered identically (sequential, so the
   interpreter runs pool-less and the native binary gets
   OMP_NUM_THREADS=1: both record nested frames span by span). *)
let both_profiles ~name ~inputs src : R.t * R.t * Native.Exec.outcome =
  ignore (ensure_cc ());
  let dir_i = fresh_dir () and dir_n = fresh_dir () in
  List.iter
    (fun (p, m) ->
      Interp.Eval.provide_input ~dir:dir_i p m;
      Interp.Eval.provide_input ~dir:dir_n p m)
    inputs;
  Runtime.Rc.reset ();
  let interp_report =
    match Driver.profile ~config:(Driver.config_of_flags ~auto_par:false full) ~dir:dir_i full src [] with
    | Driver.Ok_ _, report -> report
    | Driver.Failed ds, _ ->
        Alcotest.failf "%s: interp profile failed: %s" name
          (Driver.diags_to_string ds)
  in
  match
    Driver.profile_native ~config:(Driver.config_of_flags ~auto_par:false full) ~dir:dir_n
      ~cache_dir:(Lazy.force suite_cache) full src
  with
  | Driver.Ok_ (outcome, native_report) ->
      (interp_report, native_report, outcome)
  | Driver.Failed ds ->
      Alcotest.failf "%s: native profile failed: %s" name
        (Driver.diags_to_string ds)

let span_set (t : R.t) =
  List.map (fun (r : P.row) -> Support.Pos.span_to_string r.P.r_span) t.R.rows
  |> List.sort_uniq String.compare

(* --- JSON schema parity -------------------------------------------------- *)

let obj_keys = function
  | J.Obj fields -> List.sort String.compare (List.map fst fields)
  | _ -> []

(* `mmc profile --json` and `mmc profile --native --json` must produce
   the same schema: both pass the shared validator, and the key sets of
   the top-level object and of each row object agree exactly. *)
let test_schema_parity () =
  let interp_report, native_report, _ =
    both_profiles ~name:"eddy_energy" ~inputs:[] (example "eddy_energy.mc")
  in
  let src = example "eddy_energy.mc" in
  let interp_json = J.parse (R.to_json ~src interp_report) in
  let native_json = J.parse (R.to_json ~src native_report) in
  List.iter
    (fun (side, j) ->
      Alcotest.(check (list string))
        (side ^ " profile JSON passes the shared validator")
        [] (R.validate_json j))
    [ ("interp", interp_json); ("native", native_json) ];
  Alcotest.(check (list string))
    "top-level key sets agree" (obj_keys interp_json) (obj_keys native_json);
  let first_row j =
    match Option.bind (J.field "rows" j) J.arr with
    | Some (row :: _) -> row
    | _ -> Alcotest.fail "profile JSON without rows"
  in
  Alcotest.(check (list string))
    "row key sets agree"
    (obj_keys (first_row interp_json))
    (obj_keys (first_row native_json))

(* --- interp-vs-native span containment ----------------------------------- *)

(* Every provenance span the interpreter profiler attributes must appear
   in the native profile too, for every corpus program: otherwise
   --diff-native rows would silently lose their native side. *)
let test_span_containment () =
  List.iter
    (fun (name, src, inputs) ->
      let interp_report, native_report, _ = both_profiles ~name ~inputs src in
      let native_spans = span_set native_report in
      Alcotest.(check bool)
        (name ^ ": interpreter attributed at least one span")
        true
        (span_set interp_report <> []);
      List.iter
        (fun sp ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: interp span %s present in native profile"
               name sp)
            true
            (List.mem sp native_spans))
        (span_set interp_report))
    (corpus ())

(* --- acceptance: native coverage ----------------------------------------- *)

let test_native_coverage () =
  let _, native_report, outcome =
    both_profiles ~name:"eddy_energy" ~inputs:[] (example "eddy_energy.mc")
  in
  Alcotest.(check bool) "sidecar text came back" true
    (outcome.Native.Exec.profile_json <> None);
  Alcotest.(check bool) "native wall clock advanced" true
    (native_report.R.wall_ns > 0);
  let cov = R.coverage native_report in
  Alcotest.(check bool)
    (Printf.sprintf "native coverage %.3f >= 0.9" cov)
    true (cov >= 0.9);
  Alcotest.(check bool)
    (Printf.sprintf "native coverage %.3f <= 1.05" cov)
    true (cov <= 1.05);
  Alcotest.(check bool) "native rows recorded" true
    (List.length native_report.R.rows > 3);
  Alcotest.(check bool) "native iterations counted" true
    (List.exists (fun (r : P.row) -> r.P.r_iters > 0) native_report.R.rows);
  Alcotest.(check bool) "native allocation bytes attributed" true
    (List.exists
       (fun (r : P.row) -> r.P.r_alloc_bytes > 0)
       native_report.R.rows);
  Alcotest.(check bool) "native folded stacks non-empty" true
    (R.folded_lines native_report <> [])

(* --- the differential itself --------------------------------------------- *)

let test_diff_reports () =
  let src = example "eddy_energy.mc" in
  let interp_report, native_report, _ =
    both_profiles ~name:"eddy_energy" ~inputs:[] src
  in
  let d = R.diff_reports ~src ~interp:interp_report ~native:native_report in
  Alcotest.(check bool) "program ratio positive" true (d.R.program_ratio > 0.);
  Alcotest.(check bool) "diff joined at least one span" true
    (List.exists
       (fun (r : R.diff_row) ->
         r.R.d_interp_self_ns <> None && r.R.d_native_self_ns <> None)
       d.R.diff_rows);
  (* every interp row appears in the join *)
  Alcotest.(check int) "no interp span dropped by the join"
    (List.length (span_set interp_report))
    (List.length
       (List.filter (fun (r : R.diff_row) -> r.R.d_interp_self_ns <> None)
          d.R.diff_rows));
  let rendered = R.diff_to_string d in
  Alcotest.(check bool) "diff renders the program ratio header" true
    (is_infix ~affix:"interp vs native" rendered);
  let json = J.parse (R.diff_to_json d) in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "diff JSON has %s" k)
        true
        (J.num_field json k <> None))
    [ "interp_wall_ns"; "native_wall_ns"; "program_ratio" ]

(* --- binary cache: instrumented builds key separately --------------------- *)

let test_cache_isolation () =
  ignore (ensure_cc ());
  let cache_dir = fresh_dir () in
  let src = example "eddy_energy.mc" in
  let exec_plain () =
    match
      Driver.exec ~dir:(fresh_dir ()) ~config:(Driver.config_of_flags ~auto_par:false full) ~cache_dir full src
    with
    | Driver.Ok_ o -> o
    | Driver.Failed ds ->
        Alcotest.failf "plain exec failed: %s" (Driver.diags_to_string ds)
  in
  let prof () =
    match
      Driver.profile_native ~config:(Driver.config_of_flags ~auto_par:false full) ~dir:(fresh_dir ()) ~cache_dir
        full src
    with
    | Driver.Ok_ (o, _) -> o
    | Driver.Failed ds ->
        Alcotest.failf "profile_native failed: %s" (Driver.diags_to_string ds)
  in
  Alcotest.(check bool) "plain exec: cold cache compiles" false
    (exec_plain ()).Native.Exec.from_cache;
  Alcotest.(check bool)
    "instrumented build misses the plain binary's cache slot" false
    (prof ()).Native.Exec.from_cache;
  Alcotest.(check bool) "instrumented rerun hits its own slot" true
    (prof ()).Native.Exec.from_cache;
  Alcotest.(check bool) "plain rerun still hits the plain slot" true
    (exec_plain ()).Native.Exec.from_cache

(* --- exec telemetry gauges ------------------------------------------------ *)

let test_exec_telemetry_gauges () =
  ignore (ensure_cc ());
  Support.Telemetry.reset ();
  Support.Telemetry.set_enabled true;
  Fun.protect ~finally:(fun () -> Support.Telemetry.set_enabled false)
  @@ fun () ->
  (match
     Driver.exec ~dir:(fresh_dir ()) ~config:(Driver.config_of_flags ~auto_par:false full) ~cache:false
       ~cache_dir:(Lazy.force suite_cache) full (example "eddy_energy.mc")
   with
  | Driver.Ok_ _ -> ()
  | Driver.Failed ds ->
      Alcotest.failf "exec failed: %s" (Driver.diags_to_string ds));
  let gauges = Support.Telemetry.gauges () in
  List.iter
    (fun name ->
      match List.assoc_opt name gauges with
      | Some v ->
          Alcotest.(check bool) (name ^ " gauge is non-negative") true (v >= 0.)
      | None -> Alcotest.failf "gauge %s not exported" name)
    [ "native.compile_ms"; "native.run_ms"; "native.compile_ns"; "native.run_ns" ];
  let spans = Support.Telemetry.spans () in
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (name ^ " telemetry span recorded")
        true
        (List.exists
           (fun (s : Support.Telemetry.span) -> s.Support.Telemetry.sp_name = name)
           spans))
    [ "native.compile"; "native.run" ]

(* --- --keep-c with instrumentation and #line ------------------------------ *)

let test_keep_c_instrumented_line_directives () =
  ignore (ensure_cc ());
  let keep_dir = fresh_dir () in
  let keep = Filename.concat keep_dir "kept.c" in
  (match
     Driver.profile_native ~config:(Driver.config_of_flags ~auto_par:false full) ~dir:(fresh_dir ())
       ~cache_dir:(Lazy.force suite_cache) ~keep_c:keep ~line_file:"prog.mc"
       full (example "eddy_energy.mc")
   with
  | Driver.Ok_ _ -> ()
  | Driver.Failed ds ->
      Alcotest.failf "profile_native failed: %s" (Driver.diags_to_string ds));
  let kept = In_channel.with_open_text keep In_channel.input_all in
  Alcotest.(check bool) "kept C has #line directives" true
    (is_infix ~affix:"#line" kept);
  Alcotest.(check bool) "kept C includes mm_prof.h" true
    (is_infix ~affix:"#include \"mm_prof.h\"" kept);
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (f ^ " materialised next to the kept program")
        true
        (Sys.file_exists (Filename.concat keep_dir f)))
    [ "mm_runtime.h"; "mm_runtime.c"; "mm_prof.h"; "mm_prof.c" ]

(* --- uninstrumented emission is unchanged --------------------------------- *)

let test_plain_emission_has_no_instrumentation () =
  match
    Driver.compile_to_c ~exec_harness:true full (example "eddy_energy.mc")
  with
  | Driver.Failed ds ->
      Alcotest.failf "emit failed: %s" (Driver.diags_to_string ds)
  | Driver.Ok_ text ->
      Alcotest.(check bool) "no mm_prof calls without --instrument" false
        (is_infix ~affix:"mm_prof" text)

let suite =
  [
    Alcotest.test_case "json schema parity interp vs native" `Slow
      test_schema_parity;
    Alcotest.test_case "interp spans contained in native profile" `Slow
      test_span_containment;
    Alcotest.test_case "native coverage >= 90% on eddy_energy" `Slow
      test_native_coverage;
    Alcotest.test_case "diff joins spans and renders" `Slow test_diff_reports;
    Alcotest.test_case "instrumented binaries cache separately" `Slow
      test_cache_isolation;
    Alcotest.test_case "exec exports compile/run telemetry" `Slow
      test_exec_telemetry_gauges;
    Alcotest.test_case "keep-c keeps prof runtime and #line" `Slow
      test_keep_c_instrumented_line_directives;
    Alcotest.test_case "plain emission unchanged" `Quick
      test_plain_emission_has_no_instrumentation;
  ]
