(* The lowered IR: interpreter semantics, C emission shapes, and the §V
   transformations (split / reorder / unroll / parallelize / vectorize /
   tile) preserving program meaning. *)

open Cir.Ir
module T = Cir.Transforms
module S = Runtime.Scalar
module Nd = Runtime.Ndarray
module E = Interp.Eval

(* Hand-built lowered program computing the Fig 1 temporal mean over an
   m x n x p cube passed as a parameter: exactly the Fig 3 loop nest. *)
let is_infix ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let mean_body ~par =
  let m = MDim (Var "mat", Int 0)
  and n = MDim (Var "mat", Int 1)
  and p = MDim (Var "mat", Int 2) in
  let off_means = (Var "i" *: n) +: Var "j" in
  let off_mat = (((Var "i" *: n) +: Var "j") *: p) +: Var "k" in
  let jbody =
    [
      Decl (CFloat, "acc", Some (Float 0.));
      For
        (mk_loop ~index:"k" ~bound:p
           [ Assign (LVar "acc", Var "acc" +: MGetFlat (Var "mat", off_mat)) ]);
      MSetFlat (Var "means", off_means, Var "acc" /: Unop (FloatOfInt, p));
    ]
  in
  let iloop =
    mk_loop ~index:"i" ~bound:m
      [ For (mk_loop ~index:"j" ~bound:n jbody) ]
  in
  [
    Decl (CMat (Nd.EFloat, 2), "means", Some (MAlloc (Nd.EFloat, [ m; n ])));
    (if par then ParFor iloop else For iloop);
    Return (Some (Var "means"));
  ]

let mean_prog ~par =
  {
    funcs =
      [
        {
          f_name = "temporal_mean";
          f_params = [ (CMat (Nd.EFloat, 3), "mat") ];
          f_ret = CMat (Nd.EFloat, 2);
          f_body = mean_body ~par;
          f_span = None;
          f_origin = None;
        };
      ];
    main = "temporal_mean";
  }

let cube m n p =
  Nd.init_float [| m; n; p |] (fun ix ->
      Float.of_int ((100 * ix.(0)) + (10 * ix.(1))) +. (0.5 *. Float.of_int ix.(2)))

let oracle_mean c =
  let sh = Nd.shape c in
  Nd.init_float [| sh.(0); sh.(1) |] (fun ix ->
      let acc = ref 0. in
      for k = 0 to sh.(2) - 1 do
        acc := !acc +. S.to_float (Nd.get c [| ix.(0); ix.(1); k |])
      done;
      !acc /. float_of_int sh.(2))

let run_mean ?pool prog c =
  match E.run ?pool prog [ E.VMat (Runtime.Rc.alloc c) ] with
  | E.VMat rc -> Runtime.Rc.get rc
  | v -> Alcotest.failf "unexpected result %a" E.pp_value v

let nd = Alcotest.testable Nd.pp Nd.equal

let test_interp_mean () =
  let c = cube 3 4 5 in
  let got = run_mean (mean_prog ~par:false) c in
  Alcotest.(check bool) "mean matches oracle" true
    (Nd.approx_equal got (oracle_mean c))

let test_interp_parallel_mean () =
  let c = cube 6 8 10 in
  Runtime.Pool.with_pool 3 (fun pool ->
      let got = run_mean ~pool (mean_prog ~par:true) c in
      Alcotest.(check bool) "parallel mean matches oracle" true
        (Nd.approx_equal got (oracle_mean c)))

(* --- transformation semantics: every script preserves the result --------- *)

let transformed_mean ts =
  let prog = mean_prog ~par:false in
  let f = List.hd prog.funcs in
  match T.apply_all ts f.f_body with
  | Error e -> Alcotest.failf "transform failed: %s" e
  | Ok body -> { prog with funcs = [ { f with f_body = body } ] }

let check_script name ts =
  (* n = 8 is a multiple of 4 (clean split); also try n = 10 (remainder). *)
  List.iter
    (fun (m, n, p) ->
      let c = cube m n p in
      let got = run_mean (transformed_mean ts) c in
      Alcotest.(check bool)
        (Printf.sprintf "%s preserves semantics (%dx%dx%d)" name m n p)
        true
        (Nd.approx_equal ~eps:1e-4 got (oracle_mean c)))
    [ (3, 8, 5); (3, 10, 7); (2, 4, 1) ]

let split4 = T.Split { target = "j"; factor = 4; inner = "jin"; outer = "jout" }

let test_transform_split () = check_script "split" [ split4 ]

let test_transform_split_vectorize () =
  check_script "split+vectorize" [ split4; T.Vectorize "jin" ]

let test_transform_fig9 () =
  (* Fig 9: split j by 4, jin, jout. vectorize jin. parallelize i. *)
  let ts = [ split4; T.Vectorize "jin"; T.Parallelize "i" ] in
  let c = cube 5 12 6 in
  Runtime.Pool.with_pool 2 (fun pool ->
      let got = run_mean ~pool (transformed_mean ts) c in
      Alcotest.(check bool) "fig9 script preserves semantics" true
        (Nd.approx_equal ~eps:1e-4 got (oracle_mean c)))

let test_transform_interchange () =
  check_script "interchange" [ T.Interchange ("i", "j") ]

let test_transform_tile () =
  (* Tile needs a perfect i/j nest: our mean loop nest is one. *)
  check_script "tile" [ T.Tile { outer_ix = "i"; inner_ix = "j"; size = 2 } ]

let test_transform_unroll () =
  (* Unroll the k loop after fixing p statically. *)
  let prog = mean_prog ~par:false in
  let f = List.hd prog.funcs in
  (* Replace the symbolic k bound with a static 6 to allow unrolling. *)
  let body =
    map_stmts Fun.id
      (function
        | For ({ index = "k"; _ } as l) -> For { l with bound = Int 6 }
        | s -> s)
      f.f_body
  in
  match T.apply_all [ T.Unroll { target = "k"; factor = 3 } ] body with
  | Error e -> Alcotest.failf "unroll failed: %s" e
  | Ok body' ->
      let prog' = { prog with funcs = [ { f with f_body = body' } ] } in
      let c = cube 3 4 6 in
      let got = run_mean prog' c in
      Alcotest.(check bool) "unroll preserves semantics" true
        (Nd.approx_equal got (oracle_mean c))

(* --- transformation error reporting ---------------------------------------- *)

let test_transform_errors () =
  let body = (List.hd (mean_prog ~par:false).funcs).f_body in
  (match T.apply (T.Split { target = "z"; factor = 4; inner = "a"; outer = "b" }) body with
  | Error e ->
      Alcotest.(check bool) "names loops in scope" true
        (String.length e > 0
        && String.index_opt e 'i' <> None
        && is_infix ~affix:"no loop indexed by 'z'" e)
  | Ok _ -> Alcotest.fail "expected error for unknown loop");
  (match T.apply (T.Vectorize "j") body with
  | Error e ->
      Alcotest.(check bool) "vectorize needs split first" true
        (is_infix ~affix:"split it first" e)
  | Ok _ -> Alcotest.fail "expected error for unsplit vectorize");
  match T.apply (T.Reorder [ "i"; "k" ]) body with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error for non-perfect nest reorder"

(* --- golden C emission ------------------------------------------------------- *)

let test_emit_fig3_shape () =
  (* The untransformed lowering prints as the Fig 3 nest. *)
  let c = Cir.Emit.stmts (mean_body ~par:false) in
  let contains affix = is_infix ~affix c in
  Alcotest.(check bool) "allocates means" true (contains "mm_alloc_float(2");
  Alcotest.(check bool) "outer i loop" true
    (contains "for (int i = 0; i < mat->dims[0]; i++)");
  Alcotest.(check bool) "inner j loop" true
    (contains "for (int j = 0; j < mat->dims[1]; j++)");
  Alcotest.(check bool) "accumulation" true (contains "acc = acc +");
  Alcotest.(check bool) "direct store into means, no temp copy" true
    (contains "means->data[i * mat->dims[1] + j] = acc /")

let test_emit_fig10_shape () =
  (* After split j by 4: jout/jin nest with j reconstructed (Fig 10). *)
  let body =
    match T.apply split4 (mean_body ~par:false) with
    | Ok b -> b
    | Error e -> Alcotest.failf "split: %s" e
  in
  let c = Cir.Emit.stmts body in
  let contains affix = is_infix ~affix c in
  Alcotest.(check bool) "jout loop over n/4" true
    (contains "for (int jout = 0; jout < mat->dims[1] / 4; jout++)");
  Alcotest.(check bool) "jin loop over 4" true
    (contains "for (int jin = 0; jin < 4; jin++)");
  Alcotest.(check bool) "j replaced by jout*4+jin" true
    (contains "jout * 4 + jin")

let test_emit_fig11_shape () =
  (* After vectorize jin + parallelize i: SSE ops and the OpenMP pragma. *)
  let body =
    match
      T.apply_all
        [ split4; T.Vectorize "jin"; T.Parallelize "i" ]
        (mean_body ~par:false)
    with
    | Ok b -> b
    | Error e -> Alcotest.failf "fig11 script: %s" e
  in
  let c = Cir.Emit.stmts body in
  let contains affix = is_infix ~affix c in
  Alcotest.(check bool) "omp pragma" true (contains "#pragma omp parallel for");
  Alcotest.(check bool) "vector accumulator init" true (contains "_mm_set1_ps");
  Alcotest.(check bool) "strided pack (j stride = p)" true (contains "_mm_set_ps");
  Alcotest.(check bool) "vector add" true (contains "_mm_add_ps");
  Alcotest.(check bool) "vector div" true (contains "_mm_div_ps");
  Alcotest.(check bool) "no leftover jin loop" false (contains "jin++");
  (* Fig 11: loop-invariant vector constants floated above the nest. *)
  Alcotest.(check bool) "hoisted splat decl" true (contains "__m128 __mm_vc")

let test_emit_expression_precedence () =
  let e = (Var "i" *: Var "n") +: Var "j" in
  Alcotest.(check string) "no spurious parens" "i * n + j" (Cir.Emit.expr e);
  let e2 = Binop (Arith S.Mul, Var "i" +: Var "j", Var "n") in
  Alcotest.(check string) "needed parens kept" "(i + j) * n" (Cir.Emit.expr e2)

let test_fold_expr () =
  Alcotest.(check string) "8/4 folds" "2" (Cir.Emit.expr (fold_expr (Int 8 /: Int 4)));
  Alcotest.(check string) "n/4 stays" "n / 4"
    (Cir.Emit.expr (fold_expr (Var "n" /: Int 4)));
  Alcotest.(check string) "x*1 folds" "x" (Cir.Emit.expr (fold_expr (Var "x" *: Int 1)));
  Alcotest.(check string) "0+x folds" "x" (Cir.Emit.expr (fold_expr (Int 0 +: Var "x")))

(* Property: random transformation scripts either fail cleanly or preserve
   semantics. *)
let gen_script =
  QCheck.Gen.(
    list_size (1 -- 3)
      (oneofl
         [
           T.Split { target = "j"; factor = 4; inner = "jin"; outer = "jout" };
           T.Split { target = "i"; factor = 2; inner = "iin"; outer = "iout" };
           T.Interchange ("i", "j");
           T.Parallelize "i";
           T.Vectorize "jin";
           T.Tile { outer_ix = "i"; inner_ix = "j"; size = 2 };
         ]))

let prop_random_scripts =
  QCheck.Test.make ~name:"random transform scripts preserve semantics"
    ~count:60 (QCheck.make gen_script) (fun ts ->
      let f = List.hd (mean_prog ~par:false).funcs in
      match T.apply_all ts f.f_body with
      | Error _ -> true (* clean rejection is fine *)
      | Ok body ->
          let prog = { (mean_prog ~par:false) with funcs = [ { f with f_body = body } ] } in
          let c = cube 3 8 5 in
          let got = run_mean prog c in
          Nd.approx_equal ~eps:1e-4 got (oracle_mean c))

let suite =
  [
    Alcotest.test_case "interpret mean (Fig 3)" `Quick test_interp_mean;
    Alcotest.test_case "interpret parallel mean" `Quick test_interp_parallel_mean;
    Alcotest.test_case "split preserves semantics" `Quick test_transform_split;
    Alcotest.test_case "split+vectorize preserves semantics" `Quick
      test_transform_split_vectorize;
    Alcotest.test_case "Fig 9 script end-to-end" `Quick test_transform_fig9;
    Alcotest.test_case "interchange preserves semantics" `Quick
      test_transform_interchange;
    Alcotest.test_case "tile preserves semantics" `Quick test_transform_tile;
    Alcotest.test_case "unroll preserves semantics" `Quick test_transform_unroll;
    Alcotest.test_case "transform errors" `Quick test_transform_errors;
    Alcotest.test_case "emit Fig 3 shape" `Quick test_emit_fig3_shape;
    Alcotest.test_case "emit Fig 10 shape" `Quick test_emit_fig10_shape;
    Alcotest.test_case "emit Fig 11 shape" `Quick test_emit_fig11_shape;
    Alcotest.test_case "emit precedence" `Quick test_emit_expression_precedence;
    Alcotest.test_case "constant folding" `Quick test_fold_expr;
    QCheck_alcotest.to_alcotest prop_random_scripts;
  ]

let _ = nd
