(* Chaos/stress harness for the fault-tolerant execution layer: the
   failpoint registry itself, pool crash containment and degraded mode,
   cooperative resource guards, structured readMatrix diagnostics, RC
   ledger drain after aborted runs, and a fault matrix driving every
   failpoint through real paper programs in both sequential and parallel
   modes.

   Every case runs under a hard SIGALRM deadline so a containment bug
   that hangs the pool fails the test instead of wedging the suite. *)

module Nd = Runtime.Ndarray
module Pool = Runtime.Pool
module Fp = Support.Failpoint
module Limits = Runtime.Limits
module Rc = Runtime.Rc
module T = Support.Telemetry

let nd = Alcotest.testable Nd.pp Nd.equal

let full = Driver.compose [ Driver.matrix; Driver.transform; Driver.refptr ]

exception Deadline of string

(* Hard per-case timeout: cooperative containment must never hang, and if
   it does we want a named failure, not a stuck CI job.  OCaml delivers
   signals at safe points, which every loop boundary is. *)
let with_deadline ?(secs = 120) label f =
  let old =
    Sys.signal Sys.sigalrm
      (Sys.Signal_handle (fun _ -> raise (Deadline label)))
  in
  ignore (Unix.alarm secs);
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.alarm 0);
      Sys.set_signal Sys.sigalrm old)
    f

(* Failpoints and limits are process-global; leave no residue for the
   other suites regardless of how a case exits. *)
let hygiene label f =
  with_deadline label @@ fun () ->
  Fp.reset ();
  Limits.clear ();
  Rc.reset ();
  Fun.protect
    ~finally:(fun () ->
      Fp.reset ();
      Limits.clear ())
    f

let with_telemetry f =
  T.reset ();
  T.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      T.set_enabled false;
      T.reset ())
    f

let quiet_degrade f =
  let saved = !Pool.on_degrade in
  Pool.on_degrade := ignore;
  Fun.protect ~finally:(fun () -> Pool.on_degrade := saved) f

let fresh_dir () =
  let d = Filename.temp_file "mmfault" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let check_msg label needle = function
  | [] -> Alcotest.failf "%s: expected a diagnostic" label
  | (d : Support.Diag.t) :: _ ->
      if not (contains d.Support.Diag.message needle) then
        Alcotest.failf "%s: diagnostic %S does not mention %S" label
          d.Support.Diag.message needle

(* --- failpoint registry ------------------------------------------------------ *)

let test_failpoint_nth () =
  hygiene "failpoint nth" @@ fun () ->
  let fp = Fp.register "test.nth" in
  Fp.arm_spec "test.nth@3";
  let fired_at = ref [] in
  for i = 1 to 10 do
    try Fp.hit fp with Fp.Injected "test.nth" -> fired_at := i :: !fired_at
  done;
  Alcotest.(check (list int)) "fires exactly once, on the 3rd hit" [ 3 ]
    (List.rev !fired_at);
  Alcotest.(check int) "hits counted" 10 (Fp.hits "test.nth");
  Alcotest.(check int) "fired counted" 1 (Fp.fired "test.nth");
  Fp.reset ();
  Alcotest.(check int) "reset zeroes counters" 0 (Fp.hits "test.nth");
  Fp.hit fp;
  Alcotest.(check int) "reset disarms" 0 (Fp.fired "test.nth")

let test_failpoint_bad_specs () =
  hygiene "failpoint bad specs" @@ fun () ->
  List.iter
    (fun s ->
      match Fp.arm_spec s with
      | () -> Alcotest.failf "spec %S should have been rejected" s
      | exception Fp.Bad_spec _ -> ())
    [ "noat"; "x@"; "@3"; "x@0"; "x@-2"; "x@1.5"; "x@0.5:zz"; "x@abc" ];
  (* blank clauses are ignored, not errors *)
  Fp.arm_spec "";
  Fp.arm_spec " , "

let test_failpoint_prob_deterministic () =
  hygiene "failpoint prob" @@ fun () ->
  let pattern spec =
    Fp.reset ();
    let fp = Fp.register "test.prob" in
    Fp.arm_spec spec;
    List.init 200 (fun _ ->
        match Fp.hit fp with
        | () -> false
        | exception Fp.Injected _ -> true)
  in
  let a = pattern "test.prob@0.3:7" in
  Alcotest.(check (list bool)) "same seed, same fire pattern" a
    (pattern "test.prob@0.3:7");
  let fires = List.length (List.filter Fun.id a) in
  if fires < 20 || fires > 180 then
    Alcotest.failf "p=0.3 over 200 hits fired %d times" fires;
  Alcotest.(check bool) "different seed, different pattern" true
    (a <> pattern "test.prob@0.3:8")

let test_failpoint_env () =
  hygiene "failpoint env" @@ fun () ->
  Unix.putenv "MMC_FAILPOINTS" "test.env@1";
  Fun.protect ~finally:(fun () -> Unix.putenv "MMC_FAILPOINTS" "") @@ fun () ->
  Fp.arm_from_env ();
  let fp = Fp.register "test.env" in
  (match Fp.hit fp with
  | () -> Alcotest.fail "MMC_FAILPOINTS arming did not fire"
  | exception Fp.Injected "test.env" -> ());
  Unix.putenv "MMC_FAILPOINTS" "broken";
  match Fp.arm_from_env () with
  | () -> Alcotest.fail "malformed MMC_FAILPOINTS accepted"
  | exception Fp.Bad_spec _ -> ()

(* --- pool crash containment --------------------------------------------------- *)

exception Boom of int

let test_pool_collects_all_exns () =
  hygiene "pool collects exns" @@ fun () ->
  with_telemetry @@ fun () ->
  Pool.with_pool 4 @@ fun pool ->
  (match Pool.run pool (fun t _n -> raise (Boom t)) with
  | () -> Alcotest.fail "expected a worker exception at the barrier"
  | exception Boom _ -> ());
  Alcotest.(check (option int)) "other workers' exceptions suppressed+counted"
    (Some 3)
    (List.assoc_opt "pool.suppressed_exns" (T.counters ()));
  (* the pool must accept new work after a failed region *)
  let cell = Atomic.make 0 in
  Pool.parallel_for ~grain:16 pool 0 1_000 (fun _ -> Atomic.incr cell);
  Alcotest.(check int) "pool reusable after exceptions" 1_000 (Atomic.get cell)

let test_chunk_fault_recovered () =
  hygiene "chunk fault recovered" @@ fun () ->
  Pool.with_pool 4 @@ fun pool ->
  List.iter
    (fun chunking ->
      Fp.reset ();
      Pool.reset_faults pool;
      Fp.arm_spec "pool.worker_body@1";
      let hits = Array.make 10_000 0 in
      Pool.parallel_for_ranges ~chunking ~grain:64 pool 0 10_000
        (fun lo hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done);
      Alcotest.(check bool) "every index ran exactly once despite the fault"
        true
        (Array.for_all (fun c -> c = 1) hits);
      Alcotest.(check int) "one recovered fault" 1 (Pool.fault_count pool);
      Alcotest.(check bool) "default budget absorbs it" false
        (Pool.is_degraded pool))
    [ Pool.Static; Pool.Guided ]

let test_pool_degrades_after_budget () =
  hygiene "pool degrades" @@ fun () ->
  with_telemetry @@ fun () ->
  quiet_degrade @@ fun () ->
  Pool.with_pool 4 @@ fun pool ->
  Pool.set_fault_budget pool 0;
  Fp.arm_spec "pool.worker_body@1";
  let cell = Atomic.make 0 in
  Pool.parallel_for ~grain:16 pool 0 1_000 (fun _ -> Atomic.incr cell);
  Alcotest.(check int) "region completes despite the fault" 1_000
    (Atomic.get cell);
  Alcotest.(check bool) "budget 0 degrades on the first fault" true
    (Pool.is_degraded pool);
  (match List.assoc_opt "pool.degraded" (T.counters ()) with
  | Some n when n >= 1 -> ()
  | v ->
      Alcotest.failf "pool.degraded counter: %s"
        (match v with None -> "absent" | Some n -> string_of_int n));
  (* degraded pool keeps working, inline *)
  Fp.reset ();
  let cell2 = Atomic.make 0 in
  Pool.parallel_for ~grain:16 pool 0 500 (fun _ -> Atomic.incr cell2);
  Alcotest.(check int) "degraded pool runs regions inline" 500
    (Atomic.get cell2);
  Pool.reset_faults pool;
  Alcotest.(check bool) "reset_faults re-enables dispatch" false
    (Pool.is_degraded pool)

let test_parallel_fold_recovers () =
  hygiene "parallel_fold recovers" @@ fun () ->
  Pool.with_pool 4 @@ fun pool ->
  Pool.reset_faults pool;
  Fp.arm_spec "pool.worker_body@1";
  let total =
    Pool.parallel_fold ~grain:8 pool 0 1_000 ~init:0
      ~body:(fun acc i -> acc + i)
      ~combine:( + )
  in
  Alcotest.(check int) "fold exact after share recovery" 499_500 total;
  Alcotest.(check int) "fault recorded" 1 (Pool.fault_count pool)

(* --- resource guards through the driver --------------------------------------- *)

let run_with_limits ?max_steps ?max_bytes ?timeout_s src =
  Rc.reset ();
  Limits.configure ?max_steps ?max_bytes ?timeout_s ();
  Fun.protect ~finally:Limits.clear @@ fun () -> Driver.run full src []

let located_failure label = function
  | Driver.Ok_ _ -> Alcotest.failf "%s: expected a resource-limit failure" label
  | Driver.Failed ds -> (
      match ds with
      | [] -> Alcotest.failf "%s: empty diagnostic list" label
      | d :: _ ->
          if d.Support.Diag.span = Support.Pos.dummy_span then
            Alcotest.failf "%s: diagnostic lost the loop provenance span" label;
          ds)

let spin_src =
  {|
int main() {
  int total = 0;
  for (int i = 0; i < 100000000; i++) { total = total + 1; }
  return total;
}
|}

(* A large matrix held live across a long loop, so the throttled
   live-byte check (every 64 ticks) observes it mid-run. *)
let alloc_loop_src =
  {|
int main() {
  Matrix float <2> big = init(Matrix float <2>, 200, 200);
  float acc = 0f;
  for (int i = 0; i < 1000; i++) {
    big[0, 0] = (float)i;
    acc = acc + big[0, 0];
  }
  return (int)acc;
}
|}

let test_limit_max_steps () =
  hygiene "max steps" @@ fun () ->
  let ds = located_failure "max-steps" (run_with_limits ~max_steps:50 spin_src) in
  check_msg "max-steps" "--max-steps" ds;
  Alcotest.(check int) "aborted run leaves no live allocations" 0
    (Rc.live_count ())

let test_limit_timeout () =
  hygiene "timeout" @@ fun () ->
  let ds =
    located_failure "timeout" (run_with_limits ~timeout_s:0.05 spin_src)
  in
  check_msg "timeout" "--timeout" ds

let test_limit_max_bytes () =
  hygiene "max bytes" @@ fun () ->
  let ds =
    located_failure "max-bytes"
      (run_with_limits ~max_bytes:20_000 alloc_loop_src)
  in
  check_msg "max-bytes" "--max-bytes" ds;
  Alcotest.(check int) "ledger drained after abort" 0 (Rc.live_bytes ())

let test_limits_disabled_by_default () =
  hygiene "limits off" @@ fun () ->
  Limits.clear ();
  match Driver.run full alloc_loop_src [] with
  | Driver.Ok_ _ -> Alcotest.(check bool) "unlimited run completes" true true
  | Driver.Failed ds ->
      Alcotest.failf "unexpected failure: %s" (Driver.diags_to_string ds)

(* Runtime failures that are not resource limits also carry provenance:
   an out-of-bounds access inside a source loop renders at that loop. *)
let test_runtime_error_has_span () =
  hygiene "runtime error span" @@ fun () ->
  let src =
    {|
int main() {
  Matrix float <1> v = init(Matrix float <1>, 4);
  float x = 0f;
  for (int i = 0; i < 10; i++) { x = x + v[i]; }
  return (int)x;
}
|}
  in
  Rc.reset ();
  let ds =
    located_failure "oob" (Driver.run full src [])
  in
  check_msg "oob" "out of bounds" ds;
  Alcotest.(check int) "drained" 0 (Rc.live_count ())

(* --- readMatrix structured diagnostics ----------------------------------------- *)

let expect_io_error label needles f =
  match f () with
  | (_ : Nd.t) -> Alcotest.failf "%s: expected Io_error" label
  | exception Nd.Io_error m ->
      List.iter
        (fun needle ->
          if not (contains m needle) then
            Alcotest.failf "%s: %S does not mention %S" label m needle)
        needles

let test_read_matrix_missing () =
  hygiene "readMatrix missing" @@ fun () ->
  expect_io_error "missing" [ "readMatrix"; "cannot open" ] (fun () ->
      Nd.read_file "/nonexistent/mmc-chaos.data")

let test_read_matrix_truncated () =
  hygiene "readMatrix truncated" @@ fun () ->
  let dir = fresh_dir () in
  let path = Filename.concat dir "trunc.data" in
  Nd.write_file path (Nd.init_float [| 6; 7 |] (fun ix -> float_of_int ix.(1)));
  let whole = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub whole 0 (String.length whole - 25)));
  expect_io_error "truncated"
    [ "readMatrix"; "truncated"; "offset"; "[6x7]" ]
    (fun () -> Nd.read_file path)

let test_read_matrix_garbage () =
  hygiene "readMatrix garbage" @@ fun () ->
  let dir = fresh_dir () in
  let bad_magic = Filename.concat dir "junk.data" in
  Out_channel.with_open_bin bad_magic (fun oc ->
      Out_channel.output_string oc "JUNKJUNKJUNKJUNK");
  expect_io_error "bad magic" [ "bad magic" ] (fun () ->
      Nd.read_file bad_magic);
  (* valid header, garbage elements *)
  let bad_elems = Filename.concat dir "elems.data" in
  let good = Filename.concat dir "good.data" in
  Nd.write_file good (Nd.init_int [| 5 |] (fun ix -> ix.(0)));
  let whole = In_channel.with_open_bin good In_channel.input_all in
  Out_channel.with_open_bin bad_elems (fun oc ->
      (* keep the header (magic + kind + rank + one extent), replace the
         element lines with unparsable text *)
      Out_channel.output_string oc (String.sub whole 0 15);
      Out_channel.output_string oc "not-a-number\nxx\n");
  expect_io_error "garbage elements"
    [ "element"; "offset" ]
    (fun () -> Nd.read_file bad_elems);
  (* implausible header: rank decoded from binary garbage *)
  let bad_rank = Filename.concat dir "rank.data" in
  Out_channel.with_open_bin bad_rank (fun oc ->
      Out_channel.output_string oc "MMAT1\nf\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF");
  expect_io_error "implausible rank" [ "rank" ] (fun () ->
      Nd.read_file bad_rank)

let test_read_matrix_in_program () =
  hygiene "readMatrix in program" @@ fun () ->
  let dir = fresh_dir () in
  (* the program's "bad.data" resolves to <dir>/bad.data; plant a
     truncated file there *)
  let path = Filename.concat dir "bad.data" in
  Nd.write_file path (Nd.init_float [| 2; 3; 4 |] (fun _ -> 1.0));
  let whole = In_channel.with_open_bin path In_channel.input_all in
  (* drop more than one full element line: a partially truncated line can
     still parse as a shorter integer, a fully missing one cannot *)
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub whole 0 (String.length whole - 30)));
  let src =
    {|
int main() {
  Matrix float <3> m = readMatrix("bad.data");
  return dimSize(m, 0);
}
|}
  in
  Rc.reset ();
  match Driver.run ~dir full src [] with
  | Driver.Ok_ _ -> Alcotest.fail "truncated input should fail the run"
  | Driver.Failed ds ->
      check_msg "program readMatrix" "readMatrix" ds;
      Alcotest.(check int) "no allocations leaked by the abort" 0
        (Rc.live_count ())

(* --- RC ledger drain: leak property over random programs ----------------------- *)

let test_leak_drain_property () =
  hygiene "leak drain property" @@ fun () ->
  let st = Random.State.make [| 0xFA017; 3 |] in
  for trial = 1 to 15 do
    let n = 2 + Random.State.int st 6 in
    let d = 4 + Random.State.int st 20 in
    let src =
      Printf.sprintf
        {|
int main() {
  float acc = 0f;
  for (int i = 0; i < %d; i++) {
    Matrix float <2> t = init(Matrix float <2>, %d, %d);
    t[0, 0] = (float)i;
    acc = acc + t[0, 0];
  }
  return (int)acc;
}
|}
        n d d
    in
    (* the loop makes exactly [n] allocations; fire the alloc failpoint
       somewhere inside that range so every trial aborts mid-run *)
    let k = 1 + Random.State.int st n in
    Rc.reset ();
    Fp.reset ();
    Fp.arm_spec (Printf.sprintf "ndarray.alloc@%d" k);
    (match Driver.run full src [] with
    | Driver.Ok_ _ ->
        Alcotest.failf "trial %d: alloc fault at hit %d did not abort" trial k
    | Driver.Failed ds ->
        check_msg "alloc fault" "ndarray.alloc" ds);
    if Fp.fired "ndarray.alloc" < 1 then
      Alcotest.failf "trial %d: failpoint never fired" trial;
    Alcotest.(check int)
      (Printf.sprintf "trial %d: live count drained to baseline" trial)
      0 (Rc.live_count ());
    Alcotest.(check int)
      (Printf.sprintf "trial %d: live bytes drained to baseline" trial)
      0 (Rc.live_bytes ())
  done

(* --- the fault matrix ----------------------------------------------------------- *)

(* Every failpoint x {sequential, pooled} x {fire on the 1st hit, fire on
   a later hit}, driven through a real paper program (Fig 1 temporal
   mean).  The invariant is not "it fails" — a failpoint the mode never
   reaches simply does not fire, and a worker fault is recovered — it is:
   no hang (SIGALRM deadline), and either a clean structured diagnostic
   with the ledger drained, or the bit-exact oracle output. *)
let test_fault_matrix () =
  hygiene "fault matrix" @@ fun () ->
  quiet_degrade @@ fun () ->
  let cube =
    Nd.init_float [| 4; 5; 30 |] (fun ix ->
        float_of_int ((ix.(0) * 7) + (ix.(1) * 3) + ix.(2)) /. 11.0)
  in
  let src = Eddy.Programs.fig1_temporal_mean in
  let run_case ?pool () =
    let dir = fresh_dir () in
    Interp.Eval.provide_input ~dir "ssh.data" cube;
    Rc.reset ();
    let outcome = Driver.run ~dir ?pool ~config:(Driver.config_of_flags ~auto_par:true full) full src [] in
    (* disarm before touching files: fetch_output goes through the same
       read path as the io.read_matrix failpoint *)
    Fp.reset ();
    match outcome with
    | Driver.Ok_ _ -> Ok (Interp.Eval.fetch_output ~dir "means.data")
    | Driver.Failed ds -> Error ds
  in
  let oracle =
    match run_case () with
    | Ok m -> m
    | Error ds -> Alcotest.failf "clean run failed: %s" (Driver.diags_to_string ds)
  in
  Pool.with_pool 4 @@ fun pool ->
  List.iter
    (fun fp_name ->
      List.iter
        (fun parallel ->
          List.iter
            (fun k ->
              let label =
                Printf.sprintf "%s@%d %s" fp_name k
                  (if parallel then "par" else "seq")
              in
              Fp.reset ();
              Pool.reset_faults pool;
              Fp.arm_spec (Printf.sprintf "%s@%d" fp_name k);
              let r = run_case ?pool:(if parallel then Some pool else None) () in
              (match r with
              | Ok m -> Alcotest.check nd (label ^ ": output is the oracle") oracle m
              | Error [] -> Alcotest.failf "%s: failed without diagnostics" label
              | Error ((d : Support.Diag.t) :: _) ->
                  if d.Support.Diag.severity <> Support.Diag.Error then
                    Alcotest.failf "%s: non-error diagnostic" label);
              Alcotest.(check int)
                (label ^ ": rc ledger back to baseline")
                0 (Rc.live_count ()))
            [ 1; 5 ])
        [ false; true ])
    [ "ndarray.alloc"; "io.read_matrix"; "pool.dispatch"; "pool.worker_body" ]

(* --- the acceptance scenario ----------------------------------------------------- *)

(* A worker fault mid-parallel_for on the eddy detection program, with a
   zero fault budget: the pool must degrade to sequential fallback, the
   program must still complete, the output must be bit-identical to the
   pool-disabled oracle, and the degradation must be visible in
   telemetry. *)
let test_eddy_degraded_acceptance () =
  hygiene "eddy degraded acceptance" @@ fun () ->
  with_telemetry @@ fun () ->
  quiet_degrade @@ fun () ->
  let cube, dates =
    let c, _ =
      Eddy.Ssh_gen.generate ~lat:10 ~lon:12 ~time:3 ~n_eddies:2 ~seed:11 ()
    in
    (c, Nd.init_int [| 3 |] (fun ix -> 1012000 + ix.(0)))
  in
  let src = Eddy.Programs.fig4_conncomp in
  let run_case ?pool () =
    let dir = fresh_dir () in
    Interp.Eval.provide_input ~dir "ssh.data" cube;
    Interp.Eval.provide_input ~dir "dates.data" dates;
    Rc.reset ();
    match Driver.run ~dir ?pool ~config:(Driver.config_of_flags ~auto_par:true full) full src [] with
    | Driver.Ok_ _ ->
        Fp.reset ();
        Interp.Eval.fetch_output ~dir "eddyLabels.data"
    | Driver.Failed ds ->
        Alcotest.failf "run failed: %s" (Driver.diags_to_string ds)
  in
  let oracle = run_case () in
  Pool.with_pool 4 @@ fun pool ->
  Pool.set_fault_budget pool 0;
  Fp.arm_spec "pool.worker_body@1";
  let got = run_case ~pool () in
  Alcotest.check nd "degraded output bit-identical to sequential oracle"
    oracle got;
  Alcotest.(check bool) "pool degraded" true (Pool.is_degraded pool);
  match List.assoc_opt "pool.degraded" (T.counters ()) with
  | Some n when n >= 1 -> ()
  | v ->
      Alcotest.failf "pool.degraded counter: %s"
        (match v with None -> "absent" | Some n -> string_of_int n)

let suite =
  [
    Alcotest.test_case "failpoint: nth-hit one-shot firing" `Quick
      test_failpoint_nth;
    Alcotest.test_case "failpoint: malformed specs rejected" `Quick
      test_failpoint_bad_specs;
    Alcotest.test_case "failpoint: probabilistic firing is seeded" `Quick
      test_failpoint_prob_deterministic;
    Alcotest.test_case "failpoint: MMC_FAILPOINTS arming" `Quick
      test_failpoint_env;
    Alcotest.test_case "pool: collects all worker exceptions" `Quick
      test_pool_collects_all_exns;
    Alcotest.test_case "pool: chunk fault retried, exact coverage" `Quick
      test_chunk_fault_recovered;
    Alcotest.test_case "pool: fault budget degrades to sequential" `Quick
      test_pool_degrades_after_budget;
    Alcotest.test_case "pool: parallel_fold share recovery" `Quick
      test_parallel_fold_recovers;
    Alcotest.test_case "limits: --max-steps aborts with provenance" `Quick
      test_limit_max_steps;
    Alcotest.test_case "limits: --timeout aborts with provenance" `Quick
      test_limit_timeout;
    Alcotest.test_case "limits: --max-bytes aborts and drains" `Quick
      test_limit_max_bytes;
    Alcotest.test_case "limits: disabled limits cost nothing" `Quick
      test_limits_disabled_by_default;
    Alcotest.test_case "runtime errors carry loop provenance" `Quick
      test_runtime_error_has_span;
    Alcotest.test_case "readMatrix: missing file" `Quick
      test_read_matrix_missing;
    Alcotest.test_case "readMatrix: truncated file" `Quick
      test_read_matrix_truncated;
    Alcotest.test_case "readMatrix: garbage content" `Quick
      test_read_matrix_garbage;
    Alcotest.test_case "readMatrix: structured diagnostic in a program" `Quick
      test_read_matrix_in_program;
    Alcotest.test_case "rc ledger drains after random aborts" `Quick
      test_leak_drain_property;
    Alcotest.test_case "fault matrix: failpoints x modes x timing" `Quick
      test_fault_matrix;
    Alcotest.test_case "acceptance: eddy program degrades bit-identically"
      `Quick test_eddy_degraded_acceptance;
  ]
