(* Telemetry subsystem: span nesting, counter atomicity under the domain
   pool, Chrome-trace export well-formedness, pipeline instrumentation
   coverage, the copy-elimination lowering flag, pool exception
   propagation, and the --stats/--trace CLI surface. *)

module T = Support.Telemetry

let with_telemetry f =
  T.reset ();
  T.set_enabled true;
  Fun.protect ~finally:(fun () -> T.set_enabled false) f

(* JSON parsing comes from Support.Json (shared with the bench harness's
   baseline comparison and profile-schema checks). *)

module J = Support.Json

let parse_json = J.parse
let obj_field = J.field

(* --- spans -------------------------------------------------------------------- *)

let test_span_nesting () =
  with_telemetry @@ fun () ->
  let r =
    T.with_span ~phase:"test" "outer" (fun () ->
        T.with_span ~phase:"test" "inner" (fun () -> 42))
  in
  Alcotest.(check int) "body result" 42 r;
  match T.spans () with
  | [ inner; outer ] ->
      (* completion order: the nested span finishes first *)
      Alcotest.(check string) "inner first" "inner" inner.T.sp_name;
      Alcotest.(check string) "outer second" "outer" outer.T.sp_name;
      Alcotest.(check int) "inner depth" 1 inner.T.sp_depth;
      Alcotest.(check int) "outer depth" 0 outer.T.sp_depth;
      Alcotest.(check bool) "outer encloses inner" true
        (outer.T.sp_dur >= inner.T.sp_dur
        && inner.T.sp_start >= outer.T.sp_start)
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

let test_span_on_exception () =
  with_telemetry @@ fun () ->
  (try T.with_span "boom" (fun () -> raise Exit) with Exit -> ());
  Alcotest.(check int) "span recorded despite raise" 1
    (List.length (T.spans ()))

let test_disabled_is_noop () =
  T.reset ();
  let c = T.counter "test.disabled" in
  T.bump c;
  T.add c 41;
  let spans_before = List.length (T.spans ()) in
  ignore (T.with_span "invisible" (fun () -> 7));
  Alcotest.(check int) "counter untouched" 0 (T.read c);
  Alcotest.(check int) "no span recorded" spans_before
    (List.length (T.spans ()))

(* --- counters under real parallelism ------------------------------------------ *)

let test_counter_atomicity () =
  with_telemetry @@ fun () ->
  let c = T.counter "test.atomic" in
  Runtime.Pool.with_pool 4 (fun pool ->
      Runtime.Pool.parallel_for pool 0 20_000 (fun _ -> T.bump c));
  Alcotest.(check int) "every bump counted exactly once" 20_000 (T.read c);
  let jobs = List.assoc_opt "pool.jobs_dispatched" (T.counters ()) in
  Alcotest.(check (option int)) "one pool job dispatched" (Some 1) jobs

(* --- pool exception propagation (was silently swallowed) ----------------------- *)

exception Boom

let test_pool_exception_reraised () =
  Runtime.Pool.with_pool 3 (fun pool ->
      (match Runtime.Pool.run pool (fun t _ -> if t = 1 then raise Boom) with
      | () -> Alcotest.fail "worker exception was swallowed"
      | exception Boom -> ());
      (* the pool must stay usable after a failed job *)
      let hits = Atomic.make 0 in
      Runtime.Pool.parallel_for pool 0 100 (fun _ -> Atomic.incr hits);
      Alcotest.(check int) "pool usable after failure" 100 (Atomic.get hits))

let test_pool_exception_single_thread () =
  Runtime.Pool.with_pool 1 (fun pool ->
      match Runtime.Pool.run pool (fun _ _ -> raise Boom) with
      | () -> Alcotest.fail "exception lost on 1-thread pool"
      | exception Boom -> ())

let test_pool_exception_counted () =
  with_telemetry @@ fun () ->
  Runtime.Pool.with_pool 2 (fun pool ->
      match Runtime.Pool.run pool (fun _ _ -> raise Boom) with
      | () -> Alcotest.fail "worker exception was swallowed"
      | exception Boom -> ());
  match List.assoc_opt "pool.job_exceptions" (T.counters ()) with
  | Some v -> Alcotest.(check bool) "job_exceptions >= 1" true (v >= 1)
  | None -> Alcotest.fail "pool.job_exceptions counter missing"

(* --- pipeline coverage ---------------------------------------------------------- *)

let test_pipeline_spans () =
  with_telemetry @@ fun () ->
  let c = Driver.compose [ Driver.matrix ] in
  (match
     Driver.run c
       {|int main() {
           Matrix int <1> v = with ([0] <= [i] < [32]) genarray([32], i);
           return with ([0] <= [i] < [32]) fold(+, 0, v[i]);
         }|}
       []
   with
  | Driver.Ok_ _ -> ()
  | Driver.Failed ds ->
      Alcotest.failf "pipeline failed: %s" (Driver.diags_to_string ds));
  let names = List.map (fun sp -> sp.T.sp_name) (T.spans ()) in
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Printf.sprintf "span %s recorded" expected)
        true
        (List.mem expected names))
    [
      "driver.compose";
      "compose.lalr";
      "frontend.parse";
      "frontend.check";
      "driver.lower";
      "driver.run";
    ];
  (match List.assoc_opt "scan.tokens" (T.counters ()) with
  | Some v -> Alcotest.(check bool) "tokens scanned" true (v > 0)
  | None -> Alcotest.fail "scan.tokens counter missing");
  match T.gauges () with
  | g ->
      Alcotest.(check bool) "lalr.states gauge set" true
        (match List.assoc_opt "lalr.states" g with
        | Some v -> v > 0.
        | None -> false)

(* --- Chrome trace export --------------------------------------------------------- *)

let test_chrome_trace_wellformed () =
  let path = Filename.temp_file "mmtrace" ".json" in
  with_telemetry (fun () ->
      ignore
        (T.with_span ~phase:"test" "alpha" (fun () ->
             T.with_span ~phase:"test" "beta" (fun () -> 1)));
      T.bump (T.counter "test.chrome");
      T.set_gauge "test.gauge" 3.5;
      T.write_chrome_trace path);
  let text = In_channel.with_open_text path In_channel.input_all in
  Sys.remove path;
  let j = parse_json text in
  let events =
    match obj_field "traceEvents" j with
    | Some (J.Arr evs) -> evs
    | _ -> Alcotest.fail "traceEvents array missing"
  in
  let name_of e =
    match obj_field "name" e with Some (J.Str s) -> s | _ -> "?"
  in
  let ph_of e = match obj_field "ph" e with Some (J.Str s) -> s | _ -> "?" in
  Alcotest.(check bool) "alpha X event present" true
    (List.exists (fun e -> name_of e = "alpha" && ph_of e = "X") events);
  Alcotest.(check bool) "beta X event present" true
    (List.exists (fun e -> name_of e = "beta" && ph_of e = "X") events);
  Alcotest.(check bool) "counter C event present" true
    (List.exists (fun e -> name_of e = "test.chrome" && ph_of e = "C") events);
  (* every X event carries numeric ts and dur *)
  List.iter
    (fun e ->
      if ph_of e = "X" then
        match (obj_field "ts" e, obj_field "dur" e) with
        | Some (J.Num _), Some (J.Num _) -> ()
        | _ -> Alcotest.failf "X event %s lacks ts/dur" (name_of e))
    events

(* --- copy-elimination lowering flag ----------------------------------------------- *)

let copy_elim_src =
  {|int main() {
      Matrix int <2> a = with ([0,0] <= [i,j] < [6,6]) genarray([6,6], i + j);
      Matrix int <2> b = a[:, :];
      return with ([0,0] <= [i,j] < [6,6]) fold(+, 0, b[i, j]);
    }|}

let test_copy_elim_changes_emitted_c () =
  let c = Driver.compose [ Driver.matrix ] in
  let emit ~copy_elim =
    match
      Driver.compile_to_c ~config:(Driver.config_of_flags ~copy_elim c) c
        copy_elim_src
    with
    | Driver.Ok_ text -> text
    | Driver.Failed ds ->
        Alcotest.failf "emit failed: %s" (Driver.diags_to_string ds)
  in
  let with_elim = emit ~copy_elim:true in
  let without_elim = emit ~copy_elim:false in
  Alcotest.(check bool) "copy_elim changes the generated C" true
    (with_elim <> without_elim);
  (* the program only reads through the alias, so both must agree *)
  let run ~copy_elim =
    match
      Driver.run ~config:(Driver.config_of_flags ~copy_elim c) c copy_elim_src
        []
    with
    | Driver.Ok_ (Interp.Eval.VScal (Runtime.Scalar.I n)) -> n
    | Driver.Ok_ v -> Alcotest.failf "unexpected result %a" Interp.Eval.pp_value v
    | Driver.Failed ds ->
        Alcotest.failf "run failed: %s" (Driver.diags_to_string ds)
  in
  Alcotest.(check int) "same result with and without copy elimination"
    (run ~copy_elim:false) (run ~copy_elim:true)

let test_copy_elim_skips_allocation () =
  with_telemetry @@ fun () ->
  let c = Driver.compose [ Driver.matrix ] in
  (match
     Driver.run ~config:(Driver.config_of_flags ~copy_elim:true c) c
       copy_elim_src []
   with
  | Driver.Ok_ _ -> ()
  | Driver.Failed ds ->
      Alcotest.failf "run failed: %s" (Driver.diags_to_string ds));
  let counters = T.counters () in
  Alcotest.(check (option int)) "identity slice aliased" (Some 1)
    (List.assoc_opt "lower.identity_slices_aliased" counters);
  (* one genarray allocation; the slice did not allocate a second matrix *)
  Alcotest.(check (option int)) "single matrix allocation" (Some 1)
    (List.assoc_opt "interp.mat_allocs" counters)

(* Aliasing must NOT happen when the base or the alias is mutated while
   both are live — the copy semantics of the seed are observable then.
   Each program returns a value that differs if the slice aliases. *)

let run_int ~copy_elim src =
  let c = Driver.compose [ Driver.matrix ] in
  match Driver.run ~config:(Driver.config_of_flags ~copy_elim c) c src [] with
  | Driver.Ok_ (Interp.Eval.VScal (Runtime.Scalar.I n)) -> n
  | Driver.Ok_ v -> Alcotest.failf "unexpected result %a" Interp.Eval.pp_value v
  | Driver.Failed ds ->
      Alcotest.failf "run failed: %s" (Driver.diags_to_string ds)

let check_copy_semantics name src =
  with_telemetry @@ fun () ->
  let with_elim = run_int ~copy_elim:true src in
  Alcotest.(check (option int))
    (name ^ ": mutated slice is not aliased")
    (Some 0)
    (List.assoc_opt "lower.identity_slices_aliased" (T.counters ()));
  Alcotest.(check int)
    (name ^ ": same result with and without copy elimination")
    (run_int ~copy_elim:false src) with_elim

let test_no_alias_when_base_mutated () =
  check_copy_semantics "base mutated after slice"
    {|int main() {
        Matrix int <1> a = with ([0] <= [i] < [8]) genarray([8], i);
        Matrix int <1> b = a[:];
        a[0] = 100;
        return b[0] * 1000 + a[0];
      }|}

let test_no_alias_when_alias_mutated () =
  check_copy_semantics "write through the alias"
    {|int main() {
        Matrix int <1> a = with ([0] <= [i] < [8]) genarray([8], i + 1);
        Matrix int <1> b = a[:];
        b[0] = 55;
        return a[0] * 1000 + b[0];
      }|}

let test_no_alias_when_transitive_alias_mutated () =
  check_copy_semantics "write through a second-hop handle"
    {|int main() {
        Matrix int <1> a = with ([0] <= [i] < [8]) genarray([8], i + 1);
        Matrix int <1> b = a[:];
        Matrix int <1> c = b;
        c[0] = 77;
        return a[0] * 1000 + b[0];
      }|}

(* --- CLI surface -------------------------------------------------------------------- *)

let mmc_exe = Filename.concat (Filename.concat ".." "bin") "mmc.exe"

let test_cli_stats_and_trace () =
  if not (Sys.file_exists mmc_exe) then
    Alcotest.skip ()
  else begin
    let dir = Filename.temp_file "mmcli" "" in
    Sys.remove dir;
    Sys.mkdir dir 0o755;
    let prog = Filename.concat dir "prog.xc" in
    Out_channel.with_open_text prog (fun oc ->
        output_string oc
          {|int main() {
              Matrix int <1> v = with ([0] <= [i] < [64]) genarray([64], i);
              return with ([0] <= [i] < [64]) fold(+, 0, v[i]);
            }|});
    let trace = Filename.concat dir "trace.json" in
    let err = Filename.concat dir "stderr.txt" in
    let cmd =
      Printf.sprintf "%s run --threads 2 --stats --trace %s %s > /dev/null 2> %s"
        (Filename.quote mmc_exe) (Filename.quote trace) (Filename.quote prog)
        (Filename.quote err)
    in
    Alcotest.(check int) "mmc run exits 0" 0 (Sys.command cmd);
    let stderr_text = In_channel.with_open_text err In_channel.input_all in
    Alcotest.(check bool) "--stats prints a summary on stderr" true
      (let affix = "telemetry summary" in
       let n = String.length affix and m = String.length stderr_text in
       let rec go i =
         i + n <= m && (String.sub stderr_text i n = affix || go (i + 1))
       in
       go 0);
    let j = parse_json (In_channel.with_open_text trace In_channel.input_all) in
    match obj_field "traceEvents" j with
    | Some (J.Arr evs) ->
        let names =
          List.filter_map (fun e ->
              match obj_field "name" e with Some (J.Str s) -> Some s | _ -> None)
            evs
        in
        List.iter
          (fun expected ->
            Alcotest.(check bool)
              (Printf.sprintf "trace contains %s" expected)
              true (List.mem expected names))
          [
            "driver.compose";
            "frontend.parse";
            "frontend.check";
            "driver.lower";
            "driver.run";
            "pool.jobs_dispatched";
            "pool.worker0.busy_ns";
          ]
    | _ -> Alcotest.fail "--trace file has no traceEvents"
  end

(* ------------------------------------------------------------------------------------- *)

let suite =
  [
    Alcotest.test_case "span nesting and ordering" `Quick test_span_nesting;
    Alcotest.test_case "span recorded on exception" `Quick
      test_span_on_exception;
    Alcotest.test_case "disabled telemetry is a no-op" `Quick
      test_disabled_is_noop;
    Alcotest.test_case "counter atomicity under 4-domain pool" `Quick
      test_counter_atomicity;
    Alcotest.test_case "pool re-raises worker exceptions" `Quick
      test_pool_exception_reraised;
    Alcotest.test_case "pool exception on single thread" `Quick
      test_pool_exception_single_thread;
    Alcotest.test_case "pool exceptions are counted" `Quick
      test_pool_exception_counted;
    Alcotest.test_case "pipeline spans and counters" `Quick
      test_pipeline_spans;
    Alcotest.test_case "chrome trace is well-formed JSON" `Quick
      test_chrome_trace_wellformed;
    Alcotest.test_case "copy_elim changes emitted C, same result" `Quick
      test_copy_elim_changes_emitted_c;
    Alcotest.test_case "copy_elim skips the slice allocation" `Quick
      test_copy_elim_skips_allocation;
    Alcotest.test_case "no aliasing when the base is mutated" `Quick
      test_no_alias_when_base_mutated;
    Alcotest.test_case "no aliasing when the alias is mutated" `Quick
      test_no_alias_when_alias_mutated;
    Alcotest.test_case "no aliasing across handle copies" `Quick
      test_no_alias_when_transitive_alias_mutated;
    Alcotest.test_case "mmc --stats/--trace smoke" `Quick
      test_cli_stats_and_trace;
  ]
