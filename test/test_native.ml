(* Native backend execution: the emitted C compiled by the system C
   compiler and run as a real binary must agree with the reference
   interpreter bit-for-bit — on every corpus program, under every
   optimization-flag configuration, on randomized program shapes, and
   through the readMatrix/writeMatrix container files.  Plus the binary
   cache (hit on rerun, invalidation on flag change), --keep-c
   standalone recompiles, warning-clean emission under -Werror, and
   graceful degradation when there is no C compiler at all.

   Every case needing a real compiler probes first and skips visibly
   when none is available. *)

module Nd = Runtime.Ndarray
module S = Runtime.Scalar

let full = Driver.compose [ Driver.matrix; Driver.transform; Driver.refptr ]

let is_infix ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let fresh_dir () =
  let d = Filename.temp_file "mmnat" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

(* One cache for the whole suite: after the first case compiles a corpus
   program, later cases re-running it hit the cache instead of cc. *)
let suite_cache = lazy (fresh_dir ())

let ensure_cc () =
  match Native.Toolchain.probe () with
  | Ok tc -> tc
  | Error e ->
      Printf.printf "SKIP: no C compiler (%s)\n%!"
        (Native.Toolchain.describe_error e);
      Alcotest.skip ()

(* --- interp-vs-native differential harness ----------------------------- *)

let rec value_eq (i : Interp.Eval.value) (n : Native.Exec.value) =
  match (i, n) with
  | Interp.Eval.VUnit, Native.Exec.RVoid -> true
  | Interp.Eval.VNull, Native.Exec.RNull -> true
  | Interp.Eval.VScal a, Native.Exec.RScal b -> a = b
  | Interp.Eval.VMat a, Native.Exec.RMat b -> Nd.equal (Runtime.Rc.get a) b
  | Interp.Eval.VTuple a, Native.Exec.RTuple b ->
      Array.length a = Array.length b && Array.for_all2 value_eq a b
  | _ -> false

(* Run [src] through both backends with identical inputs and check that
   the result value, the live-allocation count and every output file
   agree exactly (matrix files bit-for-bit). *)
let differential ?(fuse = true) ?(copy_elim = true) ?(auto_par = false)
    ?(threads = 1) ?(cflags = []) ~name ~inputs ~outputs src =
  ignore (ensure_cc ());
  let dir_i = fresh_dir () and dir_n = fresh_dir () in
  List.iter
    (fun (p, m) ->
      Interp.Eval.provide_input ~dir:dir_i p m;
      Interp.Eval.provide_input ~dir:dir_n p m)
    inputs;
  Runtime.Rc.reset ();
  let run_interp pool =
    match
      Driver.run ~dir:dir_i
        ~config:(Driver.config_of_flags ~fuse ~copy_elim ~auto_par full)
        ?pool full src []
    with
    | Driver.Ok_ v -> v
    | Driver.Failed ds ->
        Alcotest.failf "%s: interp failed: %s" name (Driver.diags_to_string ds)
  in
  let iv =
    if threads > 1 then
      Runtime.Pool.with_pool threads (fun p -> run_interp (Some p))
    else run_interp None
  in
  let ilive = Runtime.Rc.live_count () in
  let nv =
    match
      Driver.exec ~dir:dir_n
        ~config:(Driver.config_of_flags ~fuse ~copy_elim ~auto_par full)
        ~threads ~cflags
        ~cache_dir:(Lazy.force suite_cache) full src
    with
    | Driver.Ok_ o -> o
    | Driver.Failed ds ->
        Alcotest.failf "%s: native failed: %s" name (Driver.diags_to_string ds)
  in
  if not (value_eq iv nv.Native.Exec.value) then
    Alcotest.failf "%s: value mismatch: interp=%a native=%a" name
      Interp.Eval.pp_value iv Native.Exec.pp_value nv.Native.Exec.value;
  Alcotest.(check int) (name ^ ": live allocations at exit") ilive
    nv.Native.Exec.live;
  List.iter
    (fun out ->
      let a = Interp.Eval.fetch_output ~dir:dir_i out in
      let b = Interp.Eval.fetch_output ~dir:dir_n out in
      Alcotest.(check bool)
        (Printf.sprintf "%s: output %s bit-identical" name out)
        true (Nd.equal a b))
    outputs

(* --- corpus inputs ------------------------------------------------------ *)

let cube3 m n p =
  Nd.init_float [| m; n; p |] (fun ix ->
      float_of_int ((100 * ix.(0)) + (10 * ix.(1)))
      +. (0.5 *. float_of_int ix.(2)))

(* The planted trough signature of Fig 7, so fig8's scoring has real work. *)
let trough_cube () =
  let ts k =
    let fk = float_of_int k in
    if k < 10 then 1.0 +. (0.01 *. fk)
    else if k < 20 then 1.1 -. (0.1 *. (fk -. 10.))
    else if k < 30 then 0.1 +. (0.1 *. (fk -. 20.))
    else 1.1 -. (0.005 *. (fk -. 30.))
  in
  Nd.init_float [| 2; 3; 40 |] (fun ix -> ts ix.(2))

let example name =
  In_channel.with_open_text (Filename.concat "../examples" name)
    In_channel.input_all

(* --- per-corpus-program differentials ----------------------------------- *)

let test_fig1 () =
  differential ~name:"fig1" ~inputs:[ ("ssh.data", cube3 3 5 7) ]
    ~outputs:[ "means.data" ] Eddy.Programs.fig1_temporal_mean

let test_fig9 () =
  differential ~name:"fig9" ~inputs:[ ("ssh.data", cube3 4 12 6) ]
    ~outputs:[ "means.data" ] Eddy.Programs.fig9_transformed

let test_fig8 () =
  differential ~name:"fig8" ~inputs:[ ("ssh.data", trough_cube ()) ]
    ~outputs:[ "temporalScores.data" ] Eddy.Programs.fig8_scoring

let test_fig4 () =
  let ssh, _ = Eddy.Ssh_gen.generate ~lat:12 ~lon:14 ~time:4 ~n_eddies:2 ~seed:7 () in
  let dates = Nd.init_int [| 4 |] (fun ix -> 1012000 + ix.(0)) in
  differential ~name:"fig4"
    ~inputs:[ ("ssh.data", ssh); ("dates.data", dates) ]
    ~outputs:[ "eddyLabels.data" ] Eddy.Programs.fig4_conncomp

let test_fig1_slice () =
  differential ~name:"fig1_slice" ~inputs:[ ("ssh.data", cube3 3 4 6) ]
    ~outputs:[ "means.data" ] Eddy.Programs.fig1_with_slice_copy

let test_tiling_example () =
  differential ~name:"transform_tiling" ~inputs:[] ~outputs:[]
    (example "transform_tiling.mc")

(* The acceptance program, under every optimization-flag configuration:
   default, --no-fuse, --no-copy-elim, and auto-parallelized with real
   OpenMP threads. *)
let test_eddy_flag_matrix () =
  let src = example "eddy_energy.mc" in
  List.iter
    (fun (fuse, copy_elim, auto_par, threads, tag) ->
      differential
        ~name:("eddy_energy/" ^ tag)
        ~fuse ~copy_elim ~auto_par ~threads ~inputs:[] ~outputs:[] src)
    [
      (true, true, false, 1, "default");
      (false, true, false, 1, "no-fuse");
      (true, false, false, 1, "no-copy-elim");
      (true, true, true, 2, "auto-par");
    ]

(* --- result-protocol shapes --------------------------------------------- *)

(* Every value shape the protocol can carry: float, bool, void, matrix,
   NULL and tuple results all round-trip into what the interpreter
   returns (including the returned matrix counting as live on both
   sides). *)
let test_result_shapes () =
  List.iter
    (fun (name, src) -> differential ~name ~inputs:[] ~outputs:[] src)
    [
      ("ret-float", "float main() { return 1.5 / 3.0; }");
      ("ret-bool", "bool main() { return 3 > 2; }");
      ("ret-void", "void main() { int x = 1; return; }");
      ( "ret-mat",
        {|
Matrix int <1> main() {
  Matrix int <1> v = init(Matrix int <1>, 5);
  for (int i = 0; i < 5; i++) { v[i] = i * i; }
  return v;
}
|} );
      ("ret-null", "Matrix int <1> main() { Matrix int <1> v; return v; }");
      ( "ret-tuple",
        {|
(int, float) pair() { return (7, 2.5); }
int main() {
  int a = 0;
  float b = 0.0;
  (a, b) = pair();
  return a;
}
|} );
    ]

(* Tuple-valued entry: the harness prints the struct field by field. *)
let test_tuple_entry () =
  differential ~name:"tuple-entry" ~inputs:[] ~outputs:[]
    "(int, float) main() { return (7, 2.5); }"

(* int and bool matrices through writeMatrix: the native MMAT1 container
   must be byte-compatible with the interpreter's reader. *)
let test_write_matrix_kinds () =
  differential ~name:"write-kinds" ~inputs:[]
    ~outputs:[ "ints.data"; "bools.data" ]
    {|
int main() {
  Matrix int <2> v = with ([0,0] <= [i,j] < [3,4]) genarray([3,4], i * 10 - j);
  Matrix bool <2> m = v >= 5;
  writeMatrix("ints.data", v);
  writeMatrix("bools.data", m);
  return dimSize(v, 0);
}
|}

(* --- randomized differential property ----------------------------------- *)

(* 20+ random program shapes (dims and coefficients baked into the
   source), each compiled at -O0 for speed and compared exactly. *)
let prop_random_shapes =
  QCheck.Test.make ~name:"random-shape programs match natively" ~count:20
    QCheck.(
      make
        Gen.(
          let* m = 1 -- 5 and* n = 1 -- 5 and* p = 1 -- 5 in
          let* a = 0 -- 9 and* b = 0 -- 9 in
          return (m, n, p, a, b)))
    (fun (m, n, p, a, b) ->
      let src =
        Printf.sprintf
          {|
float main() {
  Matrix float <3> g =
    with ([0,0,0] <= [i,j,k] < [%d,%d,%d])
    genarray([%d,%d,%d], (%d * i + %d * j + k) / 4.0);
  return with ([0,0,0] <= [i,j,k] < [%d,%d,%d]) fold (+, 0.0, g[i,j,k]);
}
|}
          m n p m n p a b m n p
      in
      ignore (ensure_cc ());
      let iv =
        match Driver.run full src [] with
        | Driver.Ok_ v -> v
        | Driver.Failed ds ->
            QCheck.Test.fail_reportf "interp failed: %s"
              (Driver.diags_to_string ds)
      in
      match
        Driver.exec ~cache_dir:(Lazy.force suite_cache) ~cflags:[ "-O0" ]
          full src
      with
      | Driver.Ok_ o -> value_eq iv o.Native.Exec.value
      | Driver.Failed ds ->
          QCheck.Test.fail_reportf "native failed: %s"
            (Driver.diags_to_string ds))

(* --- binary cache -------------------------------------------------------- *)

let exec_eddy ?cflags ?cache_dir () =
  let src = example "eddy_energy.mc" in
  match Driver.exec ?cflags ?cache_dir full src with
  | Driver.Ok_ o -> o
  | Driver.Failed ds -> Alcotest.failf "exec failed: %s" (Driver.diags_to_string ds)

let test_cache_hit_on_rerun () =
  ignore (ensure_cc ());
  let cache_dir = fresh_dir () in
  Native.Cache.reset_counts ();
  let first = exec_eddy ~cache_dir () in
  Alcotest.(check bool) "first run compiles" false first.Native.Exec.from_cache;
  let second = exec_eddy ~cache_dir () in
  Alcotest.(check bool) "second run hits cache" true
    second.Native.Exec.from_cache;
  Alcotest.(check bool) "hit counted" true (Native.Cache.hit_count () >= 1);
  Alcotest.(check bool) "miss counted" true (Native.Cache.miss_count () >= 1);
  Alcotest.(check string) "same binary" first.Native.Exec.exe
    second.Native.Exec.exe

let test_cache_invalidation_on_flag_change () =
  ignore (ensure_cc ());
  let cache_dir = fresh_dir () in
  let first = exec_eddy ~cache_dir () in
  let changed = exec_eddy ~cache_dir ~cflags:[ "-DMM_SALT=1" ] () in
  Alcotest.(check bool) "changed flags recompile" false
    changed.Native.Exec.from_cache;
  Alcotest.(check bool) "different binary" true
    (first.Native.Exec.exe <> changed.Native.Exec.exe);
  let again = exec_eddy ~cache_dir ~cflags:[ "-DMM_SALT=1" ] () in
  Alcotest.(check bool) "same flags hit again" true
    again.Native.Exec.from_cache

let test_cache_gauge_exported () =
  ignore (ensure_cc ());
  Support.Telemetry.reset ();
  Support.Telemetry.set_enabled true;
  Fun.protect ~finally:(fun () -> Support.Telemetry.set_enabled false)
  @@ fun () ->
  let cache_dir = fresh_dir () in
  ignore (exec_eddy ~cache_dir ());
  ignore (exec_eddy ~cache_dir ());
  let gauge n =
    match List.assoc_opt n (Support.Telemetry.gauges ()) with
    | Some v -> v
    | None -> Alcotest.failf "gauge %s not exported" n
  in
  Alcotest.(check bool) "cache.hit >= 1" true (gauge "cache.hit" >= 1.);
  Alcotest.(check bool) "cache.miss >= 1" true (gauge "cache.miss" >= 1.)

(* --- toolchain edge cases ------------------------------------------------ *)

let test_missing_compiler_graceful () =
  (* Needs no real compiler: a nonexistent one must produce a structured
     diagnostic, not an exception or a crash. *)
  match
    Driver.exec ~cc:"mmc-definitely-not-a-compiler"
      ~cache_dir:(fresh_dir ()) full "int main() { return 3; }"
  with
  | Driver.Ok_ _ -> Alcotest.fail "expected a missing-compiler failure"
  | Driver.Failed ds ->
      let text = Driver.diags_to_string ds in
      Alcotest.(check bool)
        (Printf.sprintf "diagnostic names the compiler (got: %s)" text)
        true
        (is_infix ~affix:"no working C compiler" text)

let test_runtime_failure_taxonomy () =
  ignore (ensure_cc ());
  (* readMatrix on a missing file: the binary exits 70 with an mm_runtime
     message, which must come back as a native-run diagnostic naming the
     file — mirroring the interpreter's readMatrix diagnostic. *)
  match
    Driver.exec ~dir:(fresh_dir ()) ~cache_dir:(Lazy.force suite_cache) full
      Eddy.Programs.fig1_temporal_mean
  with
  | Driver.Ok_ _ -> Alcotest.fail "expected a runtime failure"
  | Driver.Failed ds ->
      let text = Driver.diags_to_string ds in
      Alcotest.(check bool)
        (Printf.sprintf "diagnostic names readMatrix (got: %s)" text)
        true
        (is_infix ~affix:"readMatrix" text)

(* --- keep-c / standalone compile ----------------------------------------- *)

let test_keep_c_standalone_recompile () =
  let tc = ensure_cc () in
  let keep_dir = fresh_dir () in
  let keep_c = Filename.concat keep_dir "prog.c" in
  let data_dir = fresh_dir () in
  let o =
    match
      Driver.exec ~dir:data_dir ~keep_c ~cache_dir:(Lazy.force suite_cache)
        full (example "eddy_energy.mc")
    with
    | Driver.Ok_ o -> o
    | Driver.Failed ds ->
        Alcotest.failf "exec failed: %s" (Driver.diags_to_string ds)
  in
  List.iter
    (fun f ->
      Alcotest.(check bool) (f ^ " kept") true
        (Sys.file_exists (Filename.concat keep_dir f)))
    [ "prog.c"; "mm_runtime.h"; "mm_runtime.c" ];
  (* The kept sources must recompile on their own — no cache, no driver —
     and produce the same result protocol. *)
  let exe = Filename.concat keep_dir "prog.exe" in
  (match
     Native.Toolchain.compile tc
       ~c_files:[ keep_c; Filename.concat keep_dir "mm_runtime.c" ]
       ~out:exe
   with
  | Ok () -> ()
  | Error e ->
      Alcotest.failf "standalone recompile failed: %s"
        (Native.Toolchain.describe_error e));
  let out = Filename.temp_file "mmnat" ".out" in
  let code =
    Sys.command
      (Printf.sprintf "cd %s && %s > %s" (Filename.quote data_dir)
         (Filename.quote exe) (Filename.quote out))
  in
  Alcotest.(check int) "standalone binary exits 0" 0 code;
  let text = In_channel.with_open_bin out In_channel.input_all in
  Sys.remove out;
  match Native.Exec.parse_output text with
  | Ok (v, live) ->
      Alcotest.(check bool) "standalone result identical" true
        (v = o.Native.Exec.value);
      Alcotest.(check int) "standalone live identical" o.Native.Exec.live live
  | Error e ->
      Alcotest.failf "standalone output unparseable: %s"
        (Native.Exec.describe_error e)

(* --- compile-check golden: warning-clean emission ------------------------ *)

let test_corpus_compiles_werror () =
  let tc = ensure_cc () in
  let build = fresh_dir () in
  let werror = { tc with Native.Toolchain.cflags = [ "-Werror" ] } in
  List.iteri
    (fun i (name, src) ->
      match Driver.compile_to_c ~exec_harness:true full src with
      | Driver.Failed ds ->
          Alcotest.failf "%s: emit failed: %s" name (Driver.diags_to_string ds)
      | Driver.Ok_ c_text -> (
          let c_file = Filename.concat build (Printf.sprintf "p%d.c" i) in
          Out_channel.with_open_text c_file (fun oc ->
              Out_channel.output_string oc c_text);
          Out_channel.with_open_text (Filename.concat build "mm_runtime.h")
            (fun oc -> Out_channel.output_string oc Native.Runtime_c.header);
          Out_channel.with_open_text (Filename.concat build "mm_runtime.c")
            (fun oc -> Out_channel.output_string oc Native.Runtime_c.impl);
          match
            Native.Toolchain.compile werror
              ~c_files:[ c_file; Filename.concat build "mm_runtime.c" ]
              ~out:(Filename.concat build (Printf.sprintf "p%d.exe" i))
          with
          | Ok () -> ()
          | Error e ->
              Alcotest.failf "%s not warning-clean under -Werror: %s" name
                (Native.Toolchain.describe_error e)))
    [
      ("fig1", Eddy.Programs.fig1_temporal_mean);
      ("fig4", Eddy.Programs.fig4_conncomp);
      ("fig8", Eddy.Programs.fig8_scoring);
      ("fig9", Eddy.Programs.fig9_transformed);
      ("fig1_slice", Eddy.Programs.fig1_with_slice_copy);
      ("eddy_energy", example "eddy_energy.mc");
      ("transform_tiling", example "transform_tiling.mc");
    ]

let suite =
  [
    Alcotest.test_case "fig1 interp vs native" `Quick test_fig1;
    Alcotest.test_case "fig9 (SSE) interp vs native" `Quick test_fig9;
    Alcotest.test_case "fig8 (tuples) interp vs native" `Quick test_fig8;
    Alcotest.test_case "fig4 (conncomp) interp vs native" `Quick test_fig4;
    Alcotest.test_case "fig1 slice-copy interp vs native" `Quick
      test_fig1_slice;
    Alcotest.test_case "transform_tiling interp vs native" `Quick
      test_tiling_example;
    Alcotest.test_case "eddy_energy under all flag configs" `Quick
      test_eddy_flag_matrix;
    Alcotest.test_case "result protocol: every value shape" `Quick
      test_result_shapes;
    Alcotest.test_case "tuple-valued entry function" `Quick test_tuple_entry;
    Alcotest.test_case "writeMatrix int/bool container parity" `Quick
      test_write_matrix_kinds;
    QCheck_alcotest.to_alcotest prop_random_shapes;
    Alcotest.test_case "cache: hit on rerun" `Quick test_cache_hit_on_rerun;
    Alcotest.test_case "cache: invalidation on flag change" `Quick
      test_cache_invalidation_on_flag_change;
    Alcotest.test_case "cache: hit/miss gauges exported" `Quick
      test_cache_gauge_exported;
    Alcotest.test_case "missing compiler: graceful diagnostic" `Quick
      test_missing_compiler_graceful;
    Alcotest.test_case "runtime failure maps to diagnostic" `Quick
      test_runtime_failure_taxonomy;
    Alcotest.test_case "--keep-c recompiles standalone" `Quick
      test_keep_c_standalone_recompile;
    Alcotest.test_case "corpus emits -Werror-clean C" `Quick
      test_corpus_compiles_werror;
  ]
